package idio

import (
	"bytes"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"idio/internal/apps"
	"idio/internal/fault"
	fnet "idio/internal/net"
	"idio/internal/pkt"
	"idio/internal/qos"
	"idio/internal/sim"
	"idio/internal/traffic"
)

// normalizeShardArtifacts blanks the Results fields that legitimately
// differ between shard counts: per-pool recycling counters (a sharded
// run draws client packets from per-domain pools, so the host pool
// sees fewer Gets) and the metric-registry snapshot (sharded runs add
// domain.* progress counters). Everything else — every simulated
// quantity — must be deep-equal.
func normalizeShardArtifacts(r *Results) {
	r.PktPool = pkt.PoolStats{}
	r.Metrics = nil
}

// shardedResults builds and runs the given cluster workload at one
// shard count and returns the results plus the rendered stats dump
// and human summary.
func shardedResults(t *testing.T, shards int, build func(cfg *ClusterConfig), load func(cl *Cluster)) (Results, []byte, string) {
	t.Helper()
	cfg := DefaultClusterConfig(2, 3)
	cfg.Shards = shards
	if build != nil {
		build(&cfg)
	}
	cl, err := NewCluster(cfg)
	if err != nil {
		t.Fatalf("NewCluster(shards=%d): %v", shards, err)
	}
	load(cl)
	res, err := cl.Run(RunOpts{Horizon: 20 * sim.Millisecond, UntilIdle: true})
	if err != nil {
		t.Fatalf("Run(shards=%d): %v", shards, err)
	}
	// A drained topology must have returned every packet, in every
	// domain's pool.
	if res.PktPool.Outstanding != 0 {
		t.Fatalf("shards=%d: host pool leak: %+v", shards, res.PktPool)
	}
	var buf bytes.Buffer
	if err := res.WriteStats(&buf); err != nil {
		t.Fatalf("WriteStats: %v", err)
	}
	return res, buf.Bytes(), res.String()
}

// requireShardEquivalence runs the workload unsharded and at each of
// the given shard counts and demands deep-equal results and
// byte-equal rendered output.
func requireShardEquivalence(t *testing.T, shardCounts []int, build func(cfg *ClusterConfig), load func(cl *Cluster)) {
	t.Helper()
	ref, refStats, refStr := shardedResults(t, 0, build, load)
	normalizeShardArtifacts(&ref)
	for _, n := range shardCounts {
		got, gotStats, gotStr := shardedResults(t, n, build, load)
		normalizeShardArtifacts(&got)
		if !reflect.DeepEqual(ref, got) {
			t.Errorf("shards=%d: results diverge from single-domain run\n  single:  %+v\n  sharded: %+v", n, ref, got)
		}
		if !bytes.Equal(refStats, gotStats) {
			t.Errorf("shards=%d: stats dump not byte-identical", n)
		}
		if refStr != gotStr {
			t.Errorf("shards=%d: summary not byte-identical:\n--- single\n%s\n--- sharded\n%s", n, refStr, gotStr)
		}
	}
}

// closedLoopLoad is the canonical three-client RPC workload.
func closedLoopLoad(cl *Cluster) {
	for c := 0; c < 2; c++ {
		cl.DUT.AddNF(c, apps.L2Fwd{}, cl.DUT.DefaultFlow(c))
	}
	for i := 0; i < 3; i++ {
		cl.AddRPCClient(i, i%2, fnet.ClientConfig{
			Mode: fnet.ModeClosed, Outstanding: 8, Requests: 512,
		})
	}
}

// TestClusterShardedByteIdentical is the tentpole invariant: the same
// workload produces byte-identical results whether the cluster runs on
// one simulator or is partitioned into any number of event domains —
// including more domains than hosts (extra shards clamp) and a domain
// per client.
func TestClusterShardedByteIdentical(t *testing.T) {
	requireShardEquivalence(t, []int{2, 3, 4, 5, 9}, nil, closedLoopLoad)
}

// TestClusterShardedQoSByteIdentical extends the invariant to the
// class-aware data plane: mixed-DSCP clients over scheduled switch
// egress, per-class placement on the DUT, and the per-class histogram
// merge at Collect must all be shard-count-invariant, down to the
// rendered per-class stats keys.
func TestClusterShardedQoSByteIdentical(t *testing.T) {
	dscps := []uint8{46, 34, 8} // ef, af41, cs1
	requireShardEquivalence(t, []int{2, 3, 5},
		func(cfg *ClusterConfig) { cfg.QoS = qos.DefaultConfig() },
		func(cl *Cluster) {
			for c := 0; c < 2; c++ {
				cl.DUT.AddNF(c, apps.L2Fwd{}, cl.DUT.DefaultFlow(c))
			}
			for i := 0; i < 3; i++ {
				ccfg := fnet.ClientConfig{
					Mode: fnet.ModeClosed, Outstanding: 8, Requests: 512,
				}
				ccfg.Flow = cl.ClientFlow(i, i%2)
				ccfg.Flow.DSCP = dscps[i]
				cl.AddRPCClient(i, i%2, ccfg)
			}
		})
}

// TestClusterShardedGeneratorTraffic covers the other ingress path:
// generator traffic installed on a client slot's own domain simulator,
// crossing the fabric into the DUT.
func TestClusterShardedGeneratorTraffic(t *testing.T) {
	requireShardEquivalence(t, []int{2, 4, 5}, nil, func(cl *Cluster) {
		for c := 0; c < 2; c++ {
			cl.DUT.AddNF(c, apps.L2Fwd{}, cl.DUT.DefaultFlow(c))
		}
		for i := 0; i < 3; i++ {
			flow := cl.DUT.DefaultFlow(i % 2)
			traffic.Steady{
				Flow: flow, RateBps: traffic.Gbps(5), Count: 800,
			}.Install(cl.ClientSim(i), cl.ClientIngress(i))
		}
	})
}

// TestClusterShardedFaultTimeline pins phase scheduling across
// domains: a fabric outage on a client uplink (owned by a client
// domain), a degrade on the server downlink (switch domain) and a DRAM
// spike (DUT domain) must perturb a sharded run exactly as they do a
// single-simulator one.
func TestClusterShardedFaultTimeline(t *testing.T) {
	timeline := []fault.Phase{
		{Layer: "fabric", Kind: "down", Start: sim.Time(2 * sim.Millisecond), Duration: sim.Millisecond, Target: 2},
		{Layer: "fabric", Kind: "degrade", Start: sim.Time(4 * sim.Millisecond), Duration: sim.Millisecond, Magnitude: 0.25, Target: 0},
		{Layer: "dram", Kind: "spike", Start: sim.Time(6 * sim.Millisecond), Duration: 2 * sim.Millisecond, Magnitude: 200},
	}
	build := func(cfg *ClusterConfig) {
		cfg.Host.Faults = &fault.Config{Timeline: timeline}
	}
	load := func(cl *Cluster) {
		for c := 0; c < 2; c++ {
			cl.DUT.AddNF(c, apps.L2Fwd{}, cl.DUT.DefaultFlow(c))
		}
		for i := 0; i < 3; i++ {
			cl.AddRPCClient(i, i%2, fnet.ClientConfig{
				Mode: fnet.ModeClosed, Outstanding: 8, Requests: 256,
				Timeout: 500 * sim.Microsecond,
			})
		}
	}
	requireShardEquivalence(t, []int{2, 5}, build, load)
}

// TestClusterShardedRandomWorkloads is the property test: randomized
// topologies and client mixes, each run single-domain and sharded,
// must agree byte for byte. The seed is fixed so failures reproduce.
func TestClusterShardedRandomWorkloads(t *testing.T) {
	if testing.Short() {
		t.Skip("property test")
	}
	rng := rand.New(rand.NewSource(0x1D10))
	for trial := 0; trial < 6; trial++ {
		clients := 1 + rng.Intn(6)
		cores := 1 + rng.Intn(2)
		shards := 2 + rng.Intn(clients+2)
		type clientSpec struct {
			core int
			cfg  fnet.ClientConfig
		}
		specs := make([]clientSpec, clients)
		for i := range specs {
			cc := fnet.ClientConfig{Requests: uint64(64 + rng.Intn(448))}
			if rng.Intn(2) == 0 {
				cc.Mode, cc.Outstanding = fnet.ModeClosed, 1+rng.Intn(16)
			} else {
				cc.Mode, cc.RateBps = fnet.ModeOpen, traffic.Gbps(float64(1+rng.Intn(8)))
			}
			if rng.Intn(2) == 0 {
				cc.Timeout = sim.Duration(200+rng.Intn(800)) * sim.Microsecond
			}
			specs[i] = clientSpec{core: rng.Intn(cores), cfg: cc}
		}
		frameLen := []int{64, 256, 1024, 1514}[rng.Intn(4)]

		t.Run(fmt.Sprintf("trial%d_c%d_s%d", trial, clients, shards), func(t *testing.T) {
			build := func(cfg *ClusterConfig) {
				cfg.Host = DefaultConfig(cores)
				cfg.Clients = clients
			}
			load := func(cl *Cluster) {
				for c := 0; c < cores; c++ {
					cl.DUT.AddNF(c, apps.L2Fwd{}, cl.DUT.DefaultFlow(c))
				}
				for i, sp := range specs {
					cc := sp.cfg
					cc.Flow = cl.ClientFlow(i, sp.core)
					cc.Flow.FrameLen = frameLen
					cl.AddRPCClient(i, sp.core, cc)
				}
			}
			requireShardEquivalence(t, []int{shards}, build, load)
		})
	}
}

// TestClusterRunOptsAPI exercises the consolidated Run entry point in
// both modes on the same workload: repeated runs are deterministic and
// a fixed horizon stops exactly on time.
func TestClusterRunOptsAPI(t *testing.T) {
	mk := func() *Cluster {
		cl, err := NewCluster(DefaultClusterConfig(2, 3))
		if err != nil {
			t.Fatalf("NewCluster: %v", err)
		}
		closedLoopLoad(cl)
		return cl
	}
	a, err := mk().Run(RunOpts{Horizon: 20 * sim.Millisecond, UntilIdle: true})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	b, err := mk().Run(RunOpts{Horizon: 20 * sim.Millisecond, UntilIdle: true})
	if err != nil {
		t.Fatalf("Run (repeat): %v", err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("identical UntilIdle runs diverge")
	}
	c, err := mk().Run(RunOpts{Horizon: 5 * sim.Millisecond})
	if err != nil {
		t.Fatalf("Run (fixed horizon): %v", err)
	}
	if c.Now != sim.Time(5*sim.Millisecond) {
		t.Errorf("fixed-horizon run stopped at %v", c.Now)
	}
}

// TestClusterShardedPendingIdle checks the cross-domain consistency of
// Idle and Pending: both must account for work parked in mailboxes,
// and both must agree with the single-domain cluster after a drain.
func TestClusterShardedPendingIdle(t *testing.T) {
	for _, shards := range []int{0, 4} {
		cfg := DefaultClusterConfig(2, 3)
		cfg.Shards = shards
		cl, err := NewCluster(cfg)
		if err != nil {
			t.Fatalf("NewCluster: %v", err)
		}
		closedLoopLoad(cl)
		if cl.Idle() {
			t.Errorf("shards=%d: cluster idle before running with queued work", shards)
		}
		if _, err := cl.Run(RunOpts{Horizon: 20 * sim.Millisecond, UntilIdle: true}); err != nil {
			t.Fatalf("Run: %v", err)
		}
		if !cl.Idle() {
			t.Errorf("shards=%d: cluster not idle after drain", shards)
		}
	}
}

// TestClusterShardValidation covers the configuration guard rails.
func TestClusterShardValidation(t *testing.T) {
	cfg := DefaultClusterConfig(2, 2)
	cfg.Shards = -1
	if _, err := NewCluster(cfg); err == nil {
		t.Error("negative shard count accepted")
	}
	cfg = DefaultClusterConfig(2, 2)
	cfg.Shards = 4
	cfg.ClientLink.Delay = 0
	if _, err := NewCluster(cfg); err == nil {
		t.Error("sharded cluster accepted with zero link delay (no lookahead window)")
	}
	cfg = DefaultClusterConfig(2, 2)
	cfg.Shards = 4
	cfg.Host.Obs.TraceSampleN = 1
	if _, err := NewCluster(cfg); err == nil {
		t.Error("sharded cluster accepted with packet tracing")
	}
	cfg = DefaultClusterConfig(2, 2)
	cfg.Shards = 4
	cfg.Host.Faults = &fault.Config{FabricFlap: &fault.FabricFlapConfig{}}
	if _, err := NewCluster(cfg); err == nil {
		t.Error("sharded cluster accepted with a random fabric injector")
	}
}

// TestClusterShardedPhaseDomainMismatch: a timeline phase that names
// the wrong owning domain must fail the run instead of perturbing the
// wrong timeline.
func TestClusterShardedPhaseDomainMismatch(t *testing.T) {
	cfg := DefaultClusterConfig(2, 2)
	cfg.Shards = 4
	cfg.Host.Faults = &fault.Config{Timeline: []fault.Phase{
		// Target 0 is the server downlink, owned by the switch domain.
		{Layer: "fabric", Kind: "down", Start: sim.Time(sim.Millisecond), Duration: sim.Millisecond, Target: 0, Domain: "dut"},
	}}
	cl, err := NewCluster(cfg)
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	cl.DUT.AddNF(0, apps.L2Fwd{}, cl.DUT.DefaultFlow(0))
	cl.AddRPCClient(0, 0, fnet.ClientConfig{Mode: fnet.ModeClosed, Outstanding: 1, Requests: 8})
	if _, err := cl.Run(RunOpts{Horizon: 5 * sim.Millisecond, UntilIdle: true}); err == nil {
		t.Fatal("Run accepted a phase naming the wrong owning domain")
	}
}

// TestClusterShardedSharedHistRejected: per-client histograms are the
// only safe configuration across domains.
func TestClusterShardedSharedHistRejected(t *testing.T) {
	cfg := DefaultClusterConfig(2, 2)
	cfg.Shards = 4
	cl, err := NewCluster(cfg)
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	defer func() {
		if recover() == nil {
			t.Error("AddRPCClient accepted a shared histogram in a sharded cluster")
		}
	}()
	cl.AddRPCClient(0, 0, fnet.ClientConfig{
		Mode: fnet.ModeClosed, Outstanding: 1, Requests: 1, Hist: cl.Hist,
	})
}
