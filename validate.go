package idio

import (
	"errors"
	"fmt"

	"idio/internal/cache"
	"idio/internal/pcie"
)

// ConfigError reports one invalid configuration field. Validate joins
// every problem it finds, so a caller sees the full list at once;
// errors.As can still pull out individual *ConfigError values.
type ConfigError struct {
	// Field is the dotted path of the offending field, e.g.
	// "Hier.DDIOWays".
	Field string
	// Msg explains the constraint that was violated.
	Msg string
}

func (e *ConfigError) Error() string { return fmt.Sprintf("idio: config %s: %s", e.Field, e.Msg) }

// Validate checks every constraint the subsystem constructors enforce
// (and a few cross-subsystem ones they cannot see), returning nil or
// an errors.Join of *ConfigError values. It is the supported way to
// reject bad configurations with an error instead of the constructor
// panics NewSystem would otherwise hit; NewSystemE runs it for you.
func (c Config) Validate() error {
	var errs []error
	bad := func(field, format string, args ...interface{}) {
		errs = append(errs, &ConfigError{Field: field, Msg: fmt.Sprintf(format, args...)})
	}

	// cacheGeom mirrors cache.New's geometry checks.
	cacheGeom := func(field string, sizeBytes, assoc int) {
		if assoc <= 0 || assoc > 64 {
			bad(field, "associativity %d outside [1,64]", assoc)
			return
		}
		lines := sizeBytes / 64
		if lines <= 0 || lines%assoc != 0 {
			bad(field, "size %d B does not divide into %d ways of 64 B lines", sizeBytes, assoc)
			return
		}
		if sets := lines / assoc; sets&(sets-1) != 0 {
			bad(field, "set count %d not a power of two", sets)
		}
		if c.Hier.Policy == cache.TreePLRU && assoc&(assoc-1) != 0 {
			bad(field, "tree-PLRU needs power-of-two associativity, got %d", assoc)
		}
	}

	h := c.Hier
	if h.NumCores <= 0 {
		bad("Hier.NumCores", "need at least one core, got %d", h.NumCores)
	}
	if h.Clock.FreqHz() <= 0 {
		bad("Hier.Clock", "unset clock (use sim.NewClock)")
	}
	cacheGeom("Hier.L1Size", h.L1Size, h.L1Assoc)
	cacheGeom("Hier.MLCSize", h.MLCSize, h.MLCAssoc)
	for i, sz := range h.MLCSizePerCore {
		if sz > 0 {
			cacheGeom(fmt.Sprintf("Hier.MLCSizePerCore[%d]", i), sz, h.MLCAssoc)
		}
	}
	cacheGeom("Hier.LLCSize", h.LLCSize, h.LLCAssoc)
	if h.DDIOWays <= 0 || h.DDIOWays > h.LLCAssoc {
		bad("Hier.DDIOWays", "%d out of range for a %d-way LLC", h.DDIOWays, h.LLCAssoc)
	}
	if h.DirAssoc <= 0 {
		bad("Hier.DirAssoc", "directory associativity must be positive, got %d", h.DirAssoc)
	}
	if h.DirEntriesPerCore <= 0 {
		bad("Hier.DirEntriesPerCore", "must be positive, got %d", h.DirEntriesPerCore)
	}
	if h.DRAM.BytesPerSecond <= 0 {
		bad("Hier.DRAM.BytesPerSecond", "bandwidth must be positive, got %d", h.DRAM.BytesPerSecond)
	}
	if h.DRAM.Banks > 0 && h.DRAM.RowBytes < 64 {
		bad("Hier.DRAM.RowBytes", "banked model needs RowBytes >= 64, got %d", h.DRAM.RowBytes)
	}
	if h.TimelineBucket < 0 {
		bad("Hier.TimelineBucket", "must be >= 0, got %v", h.TimelineBucket)
	}

	if c.NIC.NumQueues <= 0 {
		bad("NIC.NumQueues", "need at least one queue, got %d", c.NIC.NumQueues)
	}
	if c.NIC.RingSize <= 0 {
		bad("NIC.RingSize", "ring size must be positive, got %d", c.NIC.RingSize)
	}
	if c.NIC.LineRateBps <= 0 {
		bad("NIC.LineRateBps", "line rate must be positive, got %d", c.NIC.LineRateBps)
	}
	if c.NIC.AdmissionWatermark < 0 {
		bad("NIC.AdmissionWatermark", "must be >= 0, got %d", c.NIC.AdmissionWatermark)
	} else if c.NIC.AdmissionWatermark > c.NIC.RingSize && c.NIC.RingSize > 0 {
		bad("NIC.AdmissionWatermark", "%d exceeds RingSize %d (watermark would never fire)",
			c.NIC.AdmissionWatermark, c.NIC.RingSize)
	}

	if c.CPU.BatchSize <= 0 {
		bad("CPU.BatchSize", "batch size must be positive, got %d", c.CPU.BatchSize)
	}
	if c.CPU.PollInterval <= 0 {
		bad("CPU.PollInterval", "poll interval must be positive, got %v", c.CPU.PollInterval)
	}

	if c.Classifier.NumCores <= 0 || c.Classifier.NumCores > pcie.MaxCores {
		bad("Classifier.NumCores", "%d outside [1,%d] (TLP metadata encoding limit)",
			c.Classifier.NumCores, pcie.MaxCores)
	} else if c.Classifier.NumCores != h.NumCores && h.NumCores > 0 {
		bad("Classifier.NumCores", "%d does not match Hier.NumCores %d", c.Classifier.NumCores, h.NumCores)
	}
	if c.Classifier.Window <= 0 {
		bad("Classifier.Window", "burst window must be positive, got %v", c.Classifier.Window)
	}

	if c.Controller.NumCores <= 0 {
		bad("Controller.NumCores", "need at least one core, got %d", c.Controller.NumCores)
	} else if c.Controller.NumCores != h.NumCores && h.NumCores > 0 {
		bad("Controller.NumCores", "%d does not match Hier.NumCores %d", c.Controller.NumCores, h.NumCores)
	}
	if c.Controller.AvgWindow == 0 {
		bad("Controller.AvgWindow", "averaging window must be positive")
	}
	if c.Controller.SampleInterval <= 0 {
		bad("Controller.SampleInterval", "control-plane period must be positive, got %v", c.Controller.SampleInterval)
	}

	if c.Prefetcher.QueueDepth <= 0 {
		bad("Prefetcher.QueueDepth", "queue depth must be positive, got %d", c.Prefetcher.QueueDepth)
	}
	if c.Prefetcher.IssueInterval <= 0 {
		bad("Prefetcher.IssueInterval", "issue interval must be positive, got %v", c.Prefetcher.IssueInterval)
	}

	if t := c.DynamicDDIOWays; t != nil {
		if t.MinWays <= 0 || t.MaxWays < t.MinWays {
			bad("DynamicDDIOWays", "bad way bounds [%d,%d]", t.MinWays, t.MaxWays)
		} else if t.MaxWays > h.LLCAssoc {
			bad("DynamicDDIOWays.MaxWays", "%d exceeds %d-way LLC", t.MaxWays, h.LLCAssoc)
		}
		if t.SampleInterval <= 0 {
			bad("DynamicDDIOWays.SampleInterval", "must be positive, got %v", t.SampleInterval)
		}
	}

	if c.NumPorts < 0 {
		bad("NumPorts", "must be >= 0, got %d", c.NumPorts)
	}
	if c.OccupancySampling < 0 {
		bad("OccupancySampling", "must be >= 0, got %v", c.OccupancySampling)
	}

	if w := c.Watchdog; w != nil {
		if w.MaxPendingEvents < 0 {
			bad("Watchdog.MaxPendingEvents", "must be >= 0, got %d", w.MaxPendingEvents)
		}
	}
	if c.Obs.TraceSampleN < 0 {
		bad("Obs.TraceSampleN", "must be >= 0, got %d", c.Obs.TraceSampleN)
	}
	if c.Obs.MetricsInterval < 0 {
		bad("Obs.MetricsInterval", "must be >= 0, got %v", c.Obs.MetricsInterval)
	}
	if err := c.Faults.Validate(); err != nil {
		errs = append(errs, &ConfigError{Field: "Faults", Msg: err.Error()})
	}
	if q := c.QoS; q != nil {
		if err := q.Validate(); err != nil {
			errs = append(errs, &ConfigError{Field: "QoS", Msg: err.Error()})
		} else {
			for ci := range q.Classes {
				if w := q.Classes[ci].LLCWays; w > h.LLCAssoc {
					bad(fmt.Sprintf("QoS.Classes[%d].LLCWays", ci), "%d exceeds %d-way LLC", w, h.LLCAssoc)
				}
			}
		}
	}

	return errors.Join(errs...)
}
