package idio

import (
	"fmt"
	"testing"

	"idio/internal/apps"
	fnet "idio/internal/net"
	"idio/internal/sim"
)

// BenchmarkClusterSharded measures the wall-clock scaling of the
// sharded event-domain engine: the same closed-loop RPC workload run
// on one shared simulator (shards=1) and partitioned into parallel
// domains. Results are byte-identical across the shard axis (see
// TestClusterShardedByteIdentical); only wall-clock time may differ.
// Small frames keep the per-packet DUT work light, so the client- and
// switch-side event load — the part sharding takes off the critical
// path — dominates as the client count grows.
func BenchmarkClusterSharded(b *testing.B) {
	for _, clients := range []int{1, 4, 16, 64} {
		for _, shards := range []int{1, 4, 8} {
			if shards > clients+2 {
				continue // extra domains would just idle at every barrier
			}
			b.Run(fmt.Sprintf("clients=%d/shards=%d", clients, shards), func(b *testing.B) {
				benchShardedCluster(b, clients, shards)
			})
		}
	}
}

func benchShardedCluster(b *testing.B, clients, shards int) {
	const requestsPerClient = 512
	for i := 0; i < b.N; i++ {
		cfg := DefaultClusterConfig(2, clients)
		cfg.Shards = shards
		// A wider propagation delay widens the conservative lookahead
		// window (fewer, larger epochs); it is identical across the
		// shard axis so comparisons stay apples-to-apples.
		cfg.ClientLink.Delay = 10 * sim.Microsecond
		cfg.ServerLink.Delay = 10 * sim.Microsecond
		cl, err := NewCluster(cfg)
		if err != nil {
			b.Fatal(err)
		}
		for c := 0; c < 2; c++ {
			cl.DUT.AddNF(c, apps.L2Fwd{}, cl.DUT.DefaultFlow(c))
		}
		for j := 0; j < clients; j++ {
			ccfg := fnet.ClientConfig{
				Mode: fnet.ModeClosed, Outstanding: 16, Requests: requestsPerClient,
				Retry: &fnet.RetryConfig{
					MaxRetries: 2, Backoff: 50 * sim.Microsecond,
					MaxBackoff: 400 * sim.Microsecond, JitterFrac: 0.2,
					Seed: int64(j + 1),
				},
				Timeout: 2 * sim.Millisecond,
			}
			ccfg.Flow = cl.ClientFlow(j, j%2)
			ccfg.Flow.FrameLen = 128
			cl.AddRPCClient(j, j%2, ccfg)
		}
		res, err := cl.Run(RunOpts{Horizon: sim.Duration(200 * sim.Millisecond), UntilIdle: true})
		if err != nil {
			b.Fatal(err)
		}
		if want := uint64(clients * requestsPerClient); res.RPC.Responses != want {
			b.Fatalf("responses %d, want %d", res.RPC.Responses, want)
		}
	}
}
