// Command obscheck validates that each argument file parses as JSON,
// exiting non-zero on the first failure. scripts/check.sh uses it to
// smoke-test the -trace and -json outputs without depending on jq or
// python in the build environment.
//
// Files ending in .json that carry a "traceEvents" key are further
// checked for the Chrome trace-event shape Perfetto expects (an array
// of objects with name/ph/ts fields).
//
//	obscheck trace.json results.json
package main

import (
	"encoding/json"
	"fmt"
	"os"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: obscheck file.json ...")
		os.Exit(2)
	}
	for _, path := range os.Args[1:] {
		if err := check(path); err != nil {
			fmt.Fprintf(os.Stderr, "obscheck: %s: %v\n", path, err)
			os.Exit(1)
		}
		fmt.Printf("obscheck: %s OK\n", path)
	}
}

func check(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var doc map[string]interface{}
	if err := json.Unmarshal(data, &doc); err != nil {
		return fmt.Errorf("not valid JSON: %w", err)
	}
	events, ok := doc["traceEvents"]
	if !ok {
		return nil
	}
	list, ok := events.([]interface{})
	if !ok {
		return fmt.Errorf("traceEvents is not an array")
	}
	if len(list) == 0 {
		return fmt.Errorf("traceEvents is empty")
	}
	for i, raw := range list {
		ev, ok := raw.(map[string]interface{})
		if !ok {
			return fmt.Errorf("traceEvents[%d] is not an object", i)
		}
		for _, key := range []string{"name", "ph"} {
			if _, ok := ev[key]; !ok {
				return fmt.Errorf("traceEvents[%d] missing %q", i, key)
			}
		}
		// Metadata events (ph "M") are timeless; everything else needs
		// a timestamp for Perfetto to place it.
		if ev["ph"] != "M" {
			if _, ok := ev["ts"]; !ok {
				return fmt.Errorf("traceEvents[%d] missing %q", i, "ts")
			}
		}
	}
	return nil
}
