// Command idiotrace runs a JSON scenario with per-packet tracing and
// emits one CSV row per processed packet, splitting end-to-end latency
// into the notification (descriptor coalescing), queueing and service
// stages. Useful for plotting latency CDFs and diagnosing where a
// policy's tail comes from.
//
//	idiotrace -scenario scenarios/mixed_nfs.json -o trace.csv
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"strconv"

	"idio/internal/scenario"
)

func main() {
	scenarioPath := flag.String("scenario", "", "JSON scenario file to run (required)")
	out := flag.String("o", "-", "output CSV path ('-' for stdout)")
	maxPackets := flag.Int("max", 65536, "per-core trace capacity")
	flag.Parse()
	if *scenarioPath == "" {
		fmt.Fprintln(os.Stderr, "idiotrace: -scenario is required")
		os.Exit(2)
	}
	if err := run(*scenarioPath, *out, *maxPackets); err != nil {
		fmt.Fprintln(os.Stderr, "idiotrace:", err)
		os.Exit(1)
	}
}

func run(scenarioPath, outPath string, maxPackets int) error {
	f, err := os.Open(scenarioPath)
	if err != nil {
		return err
	}
	defer f.Close()
	sc, err := scenario.Load(f)
	if err != nil {
		return err
	}
	if sc.TracePackets == 0 {
		sc.TracePackets = maxPackets
	}
	sys, res, _, err := scenario.RunSystem(sc)
	if err != nil {
		return err
	}

	w := os.Stdout
	if outPath != "-" {
		w, err = os.Create(outPath)
		if err != nil {
			return err
		}
		defer w.Close()
	}
	cw := csv.NewWriter(w)
	defer cw.Flush()
	if err := cw.Write([]string{
		"core", "seq", "arrival_us", "ready_us", "start_us", "done_us",
		"notify_us", "queue_us", "service_us", "total_us",
	}); err != nil {
		return err
	}
	rows := 0
	for coreID, c := range sys.Cores {
		if c == nil {
			continue
		}
		for _, rec := range c.Trace {
			row := []string{
				strconv.Itoa(coreID),
				strconv.FormatUint(rec.Seq, 10),
				us(rec.Arrival.Microseconds()),
				us(rec.Ready.Microseconds()),
				us(rec.Start.Microseconds()),
				us(rec.Done.Microseconds()),
				us(rec.NotifyDelay().Microseconds()),
				us(rec.QueueDelay().Microseconds()),
				us(rec.ServiceTime().Microseconds()),
				us(rec.Total().Microseconds()),
			}
			if err := cw.Write(row); err != nil {
				return err
			}
			rows++
		}
	}
	fmt.Fprintf(os.Stderr, "[%d trace rows from %d processed packets]\n", rows, res.TotalProcessed())
	return nil
}

func us(v float64) string { return strconv.FormatFloat(v, 'f', 3, 64) }
