// Command idiotrace runs a JSON scenario with per-packet tracing and
// emits one CSV row per traced packet, splitting end-to-end latency
// into the notification (descriptor coalescing), queueing and service
// stages. Useful for plotting latency CDFs and diagnosing where a
// policy's tail comes from.
//
// It is a thin shell around the observability layer's CSV sink: the
// same rows are available programmatically by running any system with
// Config.Obs.TraceSampleN > 0 and an obs.CSVSink attached.
//
//	idiotrace -scenario scenarios/mixed_nfs.json -o trace.csv
//	idiotrace -scenario scenarios/mixed_nfs.json -sample 8   # every 8th packet
package main

import (
	"flag"
	"fmt"
	"os"

	"idio/internal/obs"
	"idio/internal/scenario"
)

func main() {
	scenarioPath := flag.String("scenario", "", "JSON scenario file to run (required)")
	out := flag.String("o", "-", "output CSV path ('-' for stdout)")
	sample := flag.Int("sample", 1, "trace every Nth packet")
	flag.Parse()
	if *scenarioPath == "" {
		fmt.Fprintln(os.Stderr, "idiotrace: -scenario is required")
		os.Exit(2)
	}
	if err := run(*scenarioPath, *out, *sample); err != nil {
		fmt.Fprintln(os.Stderr, "idiotrace:", err)
		os.Exit(1)
	}
}

func run(scenarioPath, outPath string, sample int) error {
	if sample <= 0 {
		return fmt.Errorf("-sample must be positive, got %d", sample)
	}
	f, err := os.Open(scenarioPath)
	if err != nil {
		return err
	}
	defer f.Close()
	sc, err := scenario.Load(f)
	if err != nil {
		return err
	}

	w := os.Stdout
	if outPath != "-" {
		w, err = os.Create(outPath)
		if err != nil {
			return err
		}
	}
	sys, res, _, err := scenario.RunSystemOpts(sc, scenario.RunOpts{
		TraceSampleN: sample,
		TraceSink:    obs.NewCSVSink(w),
	})
	if err != nil {
		if outPath != "-" {
			w.Close()
		}
		return err
	}
	if err := sys.Observe().CloseSink(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "[%d trace events from %d processed packets]\n",
		sys.Observe().EventsEmitted(), res.TotalProcessed())
	return nil
}
