// Command benchjson converts `go test -bench` output into a JSON
// document keyed by benchmark name. Repeated runs of the same
// benchmark (-count N) are averaged, the -GOMAXPROCS suffix is
// stripped, and every reported metric — ns/op, B/op, allocs/op and
// custom b.ReportMetric units — becomes a field:
//
//	go test -bench . -benchmem -count 3 ./internal/sim | benchjson -o BENCH_sim.json
//
// Output shape:
//
//	{"BenchmarkSchedule": {"iterations": 12345678, "ns/op": 93.1,
//	                       "B/op": 0, "allocs/op": 0}, ...}
//
// Lines that are not benchmark results (pkg headers, PASS/ok, test
// logs) are ignored, so the raw `go test` stream can be piped in
// unfiltered.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	in := io.Reader(os.Stdin)
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}

	results, err := parse(in)
	if err != nil {
		fatal(err)
	}
	if len(results) == 0 {
		fatal(fmt.Errorf("no benchmark result lines found in input"))
	}

	w := io.Writer(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(results); err != nil {
		fatal(err)
	}
	if *out != "" {
		fmt.Fprintf(os.Stderr, "[%d benchmarks written to %s]\n", len(results), *out)
	}
}

// parse accumulates per-benchmark metric sums and averages them, so a
// -count N stream collapses to one entry per benchmark.
func parse(r io.Reader) (map[string]map[string]float64, error) {
	sums := map[string]map[string]float64{}
	counts := map[string]int{}
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		// A result line is "BenchmarkName-N  iters  value unit  value unit ...".
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") || len(fields)%2 != 0 {
			continue
		}
		iters, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		m := sums[name]
		if m == nil {
			m = map[string]float64{}
			sums[name] = m
		}
		m["iterations"] += iters
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("bad metric value on line %q", sc.Text())
			}
			m[fields[i+1]] += v
		}
		counts[name]++
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	names := make([]string, 0, len(sums))
	for name := range sums {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		n := float64(counts[name])
		for k := range sums[name] {
			sums[name][k] /= n
		}
	}
	return sums, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
