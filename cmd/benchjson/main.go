// Command benchjson converts `go test -bench` output into a JSON
// document keyed by benchmark name. Repeated runs of the same
// benchmark (-count N) are averaged, the -GOMAXPROCS suffix is
// stripped, and every reported metric — ns/op, B/op, allocs/op and
// custom b.ReportMetric units — becomes a field:
//
//	go test -bench . -benchmem -count 3 ./internal/sim | benchjson -o BENCH_sim.json
//
// Output shape:
//
//	{"BenchmarkSchedule": {"iterations": 12345678, "ns/op": 93.1,
//	                       "B/op": 0, "allocs/op": 0}, ...}
//
// Lines that are not benchmark results (pkg headers, PASS/ok, test
// logs) are ignored, so the raw `go test` stream can be piped in
// unfiltered.
//
// Two side modes support the perf-regression workflow:
//
//	-baseline old.json   compare against a committed baseline and print
//	                     a WARNING for every benchmark whose headline
//	                     metric (ns/pkt when present, ns/op otherwise)
//	                     regressed by more than 10%
//	-history hist.jsonl  append this run's condensed results as one
//	                     JSON line (with -label and a UTC timestamp),
//	                     building a per-PR performance ledger
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"
)

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	baseline := flag.String("baseline", "", "baseline JSON: warn on >10% ns/pkt (or ns/op) regressions")
	history := flag.String("history", "", "JSONL ledger to append this run's results to")
	label := flag.String("label", "", "label stored with the -history entry (e.g. git commit)")
	flag.Parse()

	in := io.Reader(os.Stdin)
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}

	results, err := parse(in)
	if err != nil {
		fatal(err)
	}
	if len(results) == 0 {
		fatal(fmt.Errorf("no benchmark result lines found in input"))
	}

	w := io.Writer(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(results); err != nil {
		fatal(err)
	}
	if *out != "" {
		fmt.Fprintf(os.Stderr, "[%d benchmarks written to %s]\n", len(results), *out)
	}
	if *baseline != "" {
		if err := compare(results, *baseline); err != nil {
			fatal(err)
		}
	}
	if *history != "" {
		if err := appendHistory(*history, *label, results); err != nil {
			fatal(err)
		}
	}
}

// compare warns (stderr, exit 0) about benchmarks whose headline
// latency metric regressed >10% against the baseline file. The
// comparison is advisory by design: wall-clock benchmarks on shared
// machines are too noisy for a hard gate, but a loud warning in the
// pre-merge check output is hard to miss.
func compare(results map[string]map[string]float64, path string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var base map[string]map[string]float64
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("baseline %s: %w", path, err)
	}
	names := make([]string, 0, len(results))
	for name := range results {
		names = append(names, name)
	}
	sort.Strings(names)
	warned := 0
	for _, name := range names {
		old, ok := base[name]
		if !ok {
			continue
		}
		metric := "ns/op"
		if _, a := old["ns/pkt"]; a {
			if _, b := results[name]["ns/pkt"]; b {
				metric = "ns/pkt"
			}
		}
		ov, nv := old[metric], results[name][metric]
		if ov <= 0 || nv <= ov*1.10 {
			continue
		}
		fmt.Fprintf(os.Stderr, "benchjson: WARNING: %s %s regressed %+.1f%% vs %s (%.4g -> %.4g)\n",
			name, metric, 100*(nv/ov-1), path, ov, nv)
		warned++
	}
	if warned == 0 {
		fmt.Fprintf(os.Stderr, "benchjson: no >10%% regressions vs %s\n", path)
	}
	return nil
}

// appendHistory appends one compact JSON line {label, utc, results} to
// the ledger so successive PRs accumulate a queryable perf timeline.
func appendHistory(path, label string, results map[string]map[string]float64) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()
	entry := struct {
		Label   string                        `json:"label"`
		UTC     string                        `json:"utc"`
		Results map[string]map[string]float64 `json:"results"`
	}{label, time.Now().UTC().Format(time.RFC3339), results}
	enc := json.NewEncoder(f)
	return enc.Encode(entry)
}

// parse accumulates per-benchmark metric sums and averages them, so a
// -count N stream collapses to one entry per benchmark.
func parse(r io.Reader) (map[string]map[string]float64, error) {
	sums := map[string]map[string]float64{}
	counts := map[string]int{}
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		// A result line is "BenchmarkName-N  iters  value unit  value unit ...".
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") || len(fields)%2 != 0 {
			continue
		}
		iters, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		m := sums[name]
		if m == nil {
			m = map[string]float64{}
			sums[name] = m
		}
		m["iterations"] += iters
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("bad metric value on line %q", sc.Text())
			}
			m[fields[i+1]] += v
		}
		counts[name]++
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	names := make([]string, 0, len(sums))
	for name := range sums {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		n := float64(counts[name])
		for k := range sums[name] {
			sums[name][k] /= n
		}
	}
	return sums, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
