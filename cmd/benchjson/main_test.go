package main

import (
	"math"
	"strings"
	"testing"
)

func TestParseAveragesAndStripsSuffix(t *testing.T) {
	in := `goos: linux
goarch: amd64
pkg: idio/internal/sim
BenchmarkSchedule-8   	12000000	        90.0 ns/op	       0 B/op	       0 allocs/op
BenchmarkSchedule-8   	12000000	       110.0 ns/op	       0 B/op	       0 allocs/op
BenchmarkFig9         	       2	 500000000 ns/op	        12.5 mlcWBreduction%@100G
PASS
ok  	idio/internal/sim	1.234s
`
	got, err := parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	sched, ok := got["BenchmarkSchedule"]
	if !ok {
		t.Fatalf("missing BenchmarkSchedule (suffix not stripped?): %v", got)
	}
	if math.Abs(sched["ns/op"]-100.0) > 1e-9 {
		t.Fatalf("ns/op not averaged: got %v, want 100", sched["ns/op"])
	}
	if sched["allocs/op"] != 0 {
		t.Fatalf("allocs/op = %v, want 0", sched["allocs/op"])
	}
	fig9 := got["BenchmarkFig9"]
	if fig9 == nil || fig9["mlcWBreduction%@100G"] != 12.5 {
		t.Fatalf("custom metric not captured: %v", fig9)
	}
	if len(got) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2: %v", len(got), got)
	}
}

func TestParseIgnoresGarbage(t *testing.T) {
	got, err := parse(strings.NewReader("hello\nBenchmarkOdd 3 fields\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("expected no results, got %v", got)
	}
}
