// Command idiosim regenerates the paper's figures from the simulator.
//
// Usage:
//
//	idiosim -exp fig10                    # one experiment, table to stdout
//	idiosim -exp all -csv out/            # everything, timelines as CSV
//	idiosim -exp all -j 8                 # fan the grids out over 8 workers
//	idiosim -exp fig9 -quick              # reduced-size run (CI-friendly)
//	idiosim -exp verify                   # PASS/FAIL reproduction claims
//	idiosim -report report.md             # full markdown report
//	idiosim -scenario s.json -stats s.txt # custom JSON scenario + stats dump
//	idiosim -scenario s.json -json r.json # schema-versioned metrics JSON
//	idiosim -scenario s.json -trace t.json -trace-sample 8
//	                                      # Chrome/Perfetto packet-journey trace
//	idiosim -scenario s.json -metrics-interval 10us -metrics m.csv
//	                                      # periodic metric snapshots as CSV
//	idiosim -exp all -cpuprofile cpu.pprof -memprofile mem.pprof
//	idiosim -exp rpc                      # latency-vs-load over the fabric
//	idiosim -exp rpc -scenario scenarios/rpc_closed_loop.json
//	                                      # sweep parameterised by a topology
//
// Experiments: fig4 fig5 fig9 fig10 fig11 fig12 fig13 fig14 breakdown
// ablations degradation rpc chaos qos churn verify all.
//
// Every experiment cell simulates an independent System, so -j only
// changes wall-clock time: the tables and CSVs are byte-identical for
// any parallelism level.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"time"

	"idio/internal/experiment"
	"idio/internal/obs"
	"idio/internal/scenario"
	"idio/internal/sim"
)

func main() {
	exp := flag.String("exp", "fig10", "experiment to run: fig4|fig5|fig9|fig10|fig11|fig12|fig13|fig14|breakdown|ablations|degradation|rpc|chaos|qos|churn|verify|all")
	csvDir := flag.String("csv", "", "directory to write timeline CSVs into (optional)")
	quick := flag.Bool("quick", false, "run reduced-size variants (256-entry rings, scaled caches)")
	par := flag.Int("j", 1, "worker-pool size for experiment grids (0 = GOMAXPROCS, 1 = serial)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	scenarioPath := flag.String("scenario", "", "run a JSON scenario file instead of a named experiment")
	statsPath := flag.String("stats", "", "write a flat key=value stats dump for -scenario runs")
	jsonPath := flag.String("json", "", "write schema-versioned metrics JSON for -scenario runs ('-' for stdout)")
	tracePath := flag.String("trace", "", "write a Chrome trace-event JSON (Perfetto-loadable) packet journey for -scenario runs")
	traceSample := flag.Int("trace-sample", 1, "with -trace, follow every Nth packet")
	metricsInterval := flag.Duration("metrics-interval", 0, "record metric-registry snapshots at this period for -scenario runs (e.g. 10us)")
	metricsPath := flag.String("metrics", "", "write the -metrics-interval snapshot series as CSV ('-' for stdout)")
	shards := flag.Int("shards", 0, "partition a -scenario topology into this many parallel event domains (0 = use the scenario's setting; output is byte-identical across shard counts)")
	reportPath := flag.String("report", "", "regenerate everything and write a markdown report to this path")
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer writeMemProfile(*memProfile)
	}

	r := &runner{csvDir: *csvDir, quick: *quick, par: *par}
	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fatal(err)
		}
	}
	// -exp rpc composes with -scenario: the scenario's topology
	// parameterises the sweep instead of replacing it, so the short-
	// circuit below is skipped in that combination.
	if *scenarioPath != "" && *exp == "rpc" {
		sc, err := loadScenario(*scenarioPath)
		if err != nil {
			fatal(err)
		}
		r.rpcScenario = &sc
	} else if *scenarioPath != "" {
		opts := scenarioOpts{
			statsPath:       *statsPath,
			jsonPath:        *jsonPath,
			tracePath:       *tracePath,
			traceSample:     *traceSample,
			metricsInterval: *metricsInterval,
			metricsPath:     *metricsPath,
			shards:          *shards,
		}
		if err := runScenario(*scenarioPath, opts); err != nil {
			fatal(err)
		}
		return
	}
	if *reportPath != "" {
		f, err := os.Create(*reportPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := experiment.WriteReport(f, experiment.ReportOpts{Quick: *quick, Parallelism: *par}); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "[report written to %s]\n", *reportPath)
		return
	}

	all := []string{"fig4", "fig5", "fig9", "fig10", "fig11", "fig12", "fig13", "fig14", "breakdown", "ablations", "degradation", "rpc", "chaos", "qos", "churn"}
	targets := []string{*exp}
	if *exp == "all" {
		targets = all
	}
	// Each experiment renders into a private buffer so -exp all can fan
	// the targets themselves out over the pool; buffers are flushed in
	// the fixed target order, keeping stdout byte-identical to a serial
	// run.
	type expResult struct {
		out     bytes.Buffer
		elapsed time.Duration
		err     error
	}
	results := experiment.RunCells(r.par, targets, func(name string) *expResult {
		res := &expResult{}
		start := time.Now()
		res.err = r.run(name, &res.out)
		res.elapsed = time.Since(start)
		return res
	})
	for i, res := range results {
		os.Stdout.Write(res.out.Bytes())
		if res.err != nil {
			fatal(res.err)
		}
		fmt.Fprintf(os.Stderr, "[%s done in %v]\n", targets[i], res.elapsed.Round(time.Millisecond))
	}
}

type runner struct {
	csvDir string
	quick  bool
	par    int
	// rpcScenario, when set, parameterises -exp rpc from a scenario
	// file's topology section.
	rpcScenario *scenario.Scenario
}

// scale shrinks a figure's geometry for -quick runs.
const (
	quickRing = 256
	quickMLC  = 256 << 10
	quickLLC  = 768 << 10
)

func (r *runner) run(name string, w io.Writer) error {
	switch name {
	case "fig4":
		opts := experiment.DefaultFig4Opts()
		opts.Parallelism = r.par
		if r.quick {
			opts.Rings = []int{64, quickRing}
			opts.OneWayRings = []int{quickRing}
			opts.MLCSize, opts.LLCSize = quickMLC, quickLLC
			opts.Loads["low"] = 0.5
		}
		rows := experiment.Fig4(opts)
		return experiment.WriteTable(w, "Fig 4: MLC/DRAM leaks vs load and ring size (DDIO baseline)",
			experiment.Fig4Header(), experiment.Rows(rows))

	case "fig5":
		opts := experiment.DefaultFig5Opts()
		if r.quick {
			opts.RingSize = quickRing
			opts.MLCSize, opts.LLCSize = quickMLC, quickLLC
		}
		res := experiment.Fig5(opts)
		fmt.Fprintf(w, "== Fig 5: bursty TouchDrop under DDIO ==\n")
		fmt.Fprintf(w, "processed=%d  totalMLCWB=%d  totalLLCWB=%d  (timeline: %d buckets)\n",
			res.Processed, res.TotalMLCWB, res.TotalLLCWB, len(res.MLCWB.Points))
		return r.csv("fig5_timeline.csv", res.MLCWB, res.LLCWB, res.DMA)

	case "fig9":
		opts := experiment.DefaultFig9Opts()
		opts.Parallelism = r.par
		if r.quick {
			opts.RingSize = quickRing
			opts.MLCSize, opts.LLCSize = quickMLC, quickLLC
		}
		cells := experiment.Fig9(opts)
		rows := make([]experiment.TableRow, len(cells))
		for i, c := range cells {
			rows[i] = c
		}
		if err := experiment.WriteTable(w, "Fig 9: per-mechanism burst comparison (2x TouchDrop)",
			experiment.Fig9Header(), rows); err != nil {
			return err
		}
		for _, c := range cells {
			name := fmt.Sprintf("fig9_%s_%.0fG.csv", c.Policy.Name(), c.RateGbps)
			if err := r.csv(name, c.MLCWB, c.LLCWB, c.DMA); err != nil {
				return err
			}
		}
		return nil

	case "fig10":
		opts := experiment.DefaultFig10Opts()
		opts.Parallelism = r.par
		if r.quick {
			opts.RingSize = quickRing
			opts.MLCSize, opts.LLCSize = quickMLC, quickLLC
		}
		rows := experiment.Fig10(opts)
		return experiment.WriteTable(w,
			"Fig 10: Static/IDIO normalized to DDIO (lower is better)",
			experiment.Fig10Header(), experiment.Rows(rows))

	case "fig11":
		opts := experiment.DefaultFig11Opts()
		opts.Parallelism = r.par
		if r.quick {
			opts.RingSize = quickRing
		}
		res := experiment.Fig11(opts)
		fmt.Fprintf(w, "== Fig 11: L2Fwd (zero-copy shallow NF), %d-byte packets ==\n", opts.FrameLen)
		fmt.Fprintf(w, "DDIO: mlcWB=%d llcWB=%d dramWr=%d exe=%.0fus\n",
			res.DDIO.Summary.MLCWB, res.DDIO.Summary.LLCWB, res.DDIO.Summary.DRAMWrites, res.DDIO.Summary.ExeTimeUS)
		fmt.Fprintf(w, "IDIO: mlcWB=%d llcWB=%d dramWr=%d exe=%.0fus\n",
			res.IDIO.Summary.MLCWB, res.IDIO.Summary.LLCWB, res.IDIO.Summary.DRAMWrites, res.IDIO.Summary.ExeTimeUS)
		fmt.Fprintf(w, "Direct-DRAM variant (class-1 payload): RX=%.2f Gbps, DRAM write=%.2f Gbps\n",
			res.DirectDRAM.RxGbps, res.DirectDRAM.DRAMWriteGbps)
		if err := r.csv("fig11_ddio.csv", res.DDIO.MLCWB, res.DDIO.LLCWB); err != nil {
			return err
		}
		return r.csv("fig11_idio.csv", res.IDIO.MLCWB, res.IDIO.LLCWB)

	case "fig12":
		opts := experiment.DefaultFig12Opts()
		opts.Parallelism = r.par
		if r.quick {
			opts.RingSize = quickRing
		}
		rows := experiment.Fig12(opts)
		return experiment.WriteTable(w,
			"Fig 12: p50/p99 latency normalized to DDIO solo",
			experiment.Fig12Header(), experiment.Rows(rows))

	case "fig13":
		opts := experiment.DefaultFig13Opts()
		opts.Parallelism = r.par
		if r.quick {
			opts.RingSize = quickRing
			opts.MLCSize, opts.LLCSize = quickMLC, quickLLC
			opts.Packets = 2048
		}
		res := experiment.Fig13(opts)
		fmt.Fprintf(w, "== Fig 13: steady traffic (10 Gbps per TouchDrop) ==\n")
		fmt.Fprintf(w, "DDIO: mlcWB=%d llcWB=%d drops=%d p99=%.1fus\n",
			res.DDIO.Summary.MLCWB, res.DDIO.Summary.LLCWB, res.DDIO.Summary.Drops, res.DDIO.Summary.P99US)
		fmt.Fprintf(w, "IDIO: mlcWB=%d llcWB=%d drops=%d p99=%.1fus\n",
			res.IDIO.Summary.MLCWB, res.IDIO.Summary.LLCWB, res.IDIO.Summary.Drops, res.IDIO.Summary.P99US)
		if err := r.csv("fig13_ddio.csv", res.DDIO.MLCWB, res.DDIO.LLCWB); err != nil {
			return err
		}
		return r.csv("fig13_idio.csv", res.IDIO.MLCWB, res.IDIO.LLCWB)

	case "fig14":
		opts := experiment.DefaultFig14Opts()
		opts.Parallelism = r.par
		if r.quick {
			opts.RingSize = quickRing
			opts.MLCSize, opts.LLCSize = quickMLC, quickLLC
		}
		rows := experiment.Fig14(opts)
		return experiment.WriteTable(w,
			"Fig 14: IDIO sensitivity to mlcTHR at 100 Gbps (normalized to DDIO)",
			experiment.Fig14Header(), experiment.Rows(rows))

	case "breakdown":
		opts := experiment.DefaultBreakdownOpts()
		opts.Parallelism = r.par
		if r.quick {
			opts.RingSize = quickRing
			opts.MLCSize, opts.LLCSize = quickMLC, quickLLC
		}
		rows := experiment.Breakdown(opts)
		return experiment.WriteTable(w,
			"Latency breakdown (us): notification / queueing / service",
			experiment.BreakdownHeader(), experiment.Rows(rows))

	case "rpc":
		opts := experiment.DefaultRPCOpts()
		opts.Parallelism = r.par
		if r.quick {
			opts.RingSize = quickRing
			opts.MLCSize, opts.LLCSize = quickMLC, quickLLC
			opts.Requests = 512
			opts.LoadsGbps = []float64{5, 15, 25}
			opts.Windows = []int{1, 16}
		}
		if r.rpcScenario != nil {
			if err := applyRPCScenario(&opts, r.rpcScenario); err != nil {
				return err
			}
		}
		rows := experiment.RPC(opts)
		return experiment.WriteTable(w,
			"RPC: end-to-end latency vs offered load over the fabric (DDIO vs IDIO)",
			experiment.RPCHeader(), experiment.Rows(rows))

	case "qos":
		opts := experiment.DefaultQoSOpts()
		opts.Parallelism = r.par
		if r.quick {
			opts.RingSize = quickRing
			opts.MLCSize, opts.LLCSize = quickMLC, quickLLC
			opts.EFRequests = 32
			opts.Horizon = 4 * sim.Millisecond
		}
		rows := experiment.QoS(opts)
		return experiment.WriteTable(w,
			"QoS: per-class SLOs under a saturating bulk+scavenger mix (DDIO vs IDIO vs QoS-aware IDIO)",
			experiment.QoSHeader(), experiment.Rows(rows))

	case "churn":
		opts := experiment.DefaultChurnOpts()
		opts.Parallelism = r.par
		if r.quick {
			opts.RingSize = quickRing
			opts.MLCSize, opts.LLCSize = quickMLC, quickLLC
			opts.Flows = []int{1_000, 65_536}
			opts.Horizon = 4 * sim.Millisecond
		}
		rows := experiment.Churn(opts)
		return experiment.WriteTable(w,
			"Churn: constant offered load over growing concurrent-flow populations (DDIO vs IDIO)",
			experiment.ChurnHeader(), experiment.Rows(rows))

	case "chaos":
		opts := experiment.DefaultChaosOpts()
		opts.Parallelism = r.par
		if r.quick {
			opts.RingSize = quickRing
			opts.MLCSize, opts.LLCSize = quickMLC, quickLLC
			opts.Requests = 10000
			opts.Horizon = 25 * sim.Millisecond
		}
		rows := experiment.Chaos(opts)
		return experiment.WriteTable(w,
			"Chaos: scripted fault timeline, per-phase behaviour and time-to-recover (DDIO vs IDIO)",
			experiment.ChaosHeader(), experiment.Rows(rows))

	case "degradation":
		opts := experiment.DefaultDegradationOpts()
		opts.Parallelism = r.par
		if r.quick {
			opts.RingSize = quickRing
			opts.MLCSize, opts.LLCSize = quickMLC, quickLLC
		}
		rows := experiment.Degradation(opts)
		return experiment.WriteTable(w,
			"Degradation: DDIO vs IDIO under swept fault rates (drops / p99 / WB inflation)",
			experiment.DegradationHeader(), experiment.Rows(rows))

	case "verify":
		if failed := experiment.Verify(w); failed > 0 {
			return fmt.Errorf("%d reproduction claims failed", failed)
		}
		return nil

	case "ablations":
		opts := experiment.DefaultAblationOpts()
		opts.Parallelism = r.par
		if r.quick {
			opts.RingSize = quickRing
			opts.MLCSize, opts.LLCSize = quickMLC, quickLLC
		}
		var rows []experiment.AblationRow
		rows = append(rows, experiment.AblationDDIOWays(opts, []int{1, 2, 4})...)
		rows = append(rows, experiment.AblationRingSize(opts, []int{64, 256, opts.RingSize})...)
		rows = append(rows, experiment.AblationPrefetchDepth(opts, []int{4, 32, 128})...)
		rows = append(rows, experiment.AblationDescCoalescing(opts,
			[]sim.Duration{0, 1900 * sim.Nanosecond, 20 * sim.Microsecond})...)
		hot := opts
		hot.RateGbps = 100
		rows = append(rows, experiment.AblationAdaptivePrefetch(hot)...)
		rows = append(rows, experiment.AblationMLP(hot, []int{1, 4, 8, 32})...)
		rows = append(rows, experiment.AblationReplacement(opts)...)
		rows = append(rows, experiment.AblationInclusion(opts)...)
		rows = append(rows, experiment.AblationFrameSize(opts, []int{128, 512, 1514})...)
		if err := experiment.WriteTable(w, "Ablations: design-choice sweeps (Fig. 9 scenario)",
			experiment.AblationHeader(), experiment.Rows(rows)); err != nil {
			return err
		}
		baseOpts := experiment.DefaultBaselineOpts()
		baseOpts.Parallelism = r.par
		if r.quick {
			baseOpts.RingSize = quickRing
			baseOpts.MLCSize, baseOpts.LLCSize = quickMLC, quickLLC
		}
		return experiment.WriteTable(w,
			"Baselines: static DDIO vs IAT-style dynamic ways vs IDIO (100 Gbps burst)",
			experiment.BaselineHeader(), experiment.Rows(experiment.Baselines(baseOpts)))

	default:
		return fmt.Errorf("unknown experiment %q", name)
	}
}

// csv writes series into the CSV directory; a no-op when -csv is
// unset.
func (r *runner) csv(name string, series ...experiment.Series) error {
	if r.csvDir == "" {
		return nil
	}
	f, err := os.Create(filepath.Join(r.csvDir, name))
	if err != nil {
		return err
	}
	defer f.Close()
	return experiment.WriteSeriesCSV(f, series...)
}

// loadScenario parses and validates a scenario file.
func loadScenario(path string) (scenario.Scenario, error) {
	f, err := os.Open(path)
	if err != nil {
		return scenario.Scenario{}, err
	}
	defer f.Close()
	return scenario.Load(f)
}

// applyRPCScenario maps a scenario's topology onto the RPC sweep:
// geometry (cores, clients, links, ring) and request shape come from
// the file, and the scenario's own operating point is folded into the
// swept axis so the curve always includes it.
func applyRPCScenario(o *experiment.RPCOpts, sc *scenario.Scenario) error {
	topo := sc.Topology
	if topo == nil {
		return fmt.Errorf("scenario %q has no topology section; -exp rpc needs one", sc.Name)
	}
	o.Cores = sc.Cores
	o.Clients = topo.Clients
	o.Link = topo.ClientLink.LinkConfig()
	if sc.RingSize > 0 {
		o.RingSize = sc.RingSize
	}
	if sc.HorizonMS > 0 {
		o.Horizon = sim.Duration(sc.HorizonMS * float64(sim.Millisecond))
	}
	rpc := topo.RPC
	if rpc == nil {
		return nil
	}
	if rpc.FrameLen > 0 {
		o.FrameLen = rpc.FrameLen
	}
	if rpc.Requests > 0 {
		o.Requests = rpc.Requests
	}
	if rpc.TimeoutUS > 0 {
		o.Timeout = sim.Duration(rpc.TimeoutUS * float64(sim.Microsecond))
	}
	switch rpc.Mode {
	case "closed":
		if rpc.Outstanding > 0 && !containsInt(o.Windows, rpc.Outstanding) {
			o.Windows = append(o.Windows, rpc.Outstanding)
		}
	case "open", "ramp":
		if rpc.Gbps > 0 && !containsFloat(o.LoadsGbps, rpc.Gbps) {
			o.LoadsGbps = append(o.LoadsGbps, rpc.Gbps)
		}
	}
	return nil
}

func containsInt(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

func containsFloat(xs []float64, x float64) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

// scenarioOpts bundles the -scenario output flags.
type scenarioOpts struct {
	statsPath       string
	jsonPath        string
	tracePath       string
	traceSample     int
	metricsInterval time.Duration
	metricsPath     string
	shards          int
}

// runScenario executes a JSON scenario file and prints its summary,
// optionally writing a flat stats dump, a metrics JSON document, a
// Chrome trace, and a metric-snapshot CSV series.
func runScenario(path string, o scenarioOpts) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	sc, err := scenario.Load(f)
	if err != nil {
		return err
	}
	var ropts scenario.RunOpts
	if o.tracePath != "" {
		if o.traceSample <= 0 {
			return fmt.Errorf("-trace-sample must be positive, got %d", o.traceSample)
		}
		tf, err := os.Create(o.tracePath)
		if err != nil {
			return err
		}
		ropts.TraceSampleN = o.traceSample
		ropts.TraceSink = obs.NewChromeSink(tf)
	}
	if o.metricsInterval > 0 {
		ropts.MetricsInterval = sim.Duration(o.metricsInterval.Nanoseconds()) * sim.Nanosecond
	} else if o.metricsPath != "" {
		return fmt.Errorf("-metrics needs -metrics-interval > 0")
	}
	if o.shards > 0 {
		if sc.Topology == nil {
			return fmt.Errorf("-shards needs a scenario with a topology section")
		}
		ropts.Shards = o.shards
	}
	sys, res, cpi, err := scenario.RunSystemOpts(sc, ropts)
	if err != nil {
		return err
	}
	if ropts.TraceSink != nil {
		if err := sys.Observe().CloseSink(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "[%d trace events written to %s]\n",
			sys.Observe().EventsEmitted(), o.tracePath)
	}
	fmt.Printf("== scenario %q (%s) ==\n", sc.Name, sc.Policy)
	fmt.Print(res)
	if cpi > 0 {
		fmt.Printf("  antagonist CPI: %.1f\n", cpi)
	}
	if o.statsPath != "" {
		sf, err := os.Create(o.statsPath)
		if err != nil {
			return err
		}
		defer sf.Close()
		if err := res.WriteStats(sf); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "[stats written to %s]\n", o.statsPath)
	}
	if o.jsonPath != "" {
		if err := writeTo(o.jsonPath, res.WriteJSON); err != nil {
			return err
		}
	}
	if o.metricsPath != "" {
		if err := writeTo(o.metricsPath, res.MetricSeries.WriteCSV); err != nil {
			return err
		}
	}
	return nil
}

// writeTo runs emit against the named file, or stdout for "-".
func writeTo(path string, emit func(io.Writer) error) error {
	if path == "-" {
		return emit(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := emit(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "[written to %s]\n", path)
	return nil
}

// writeMemProfile snapshots the heap after a full GC so -memprofile
// reflects live steady-state allocations, not transient garbage.
func writeMemProfile(path string) {
	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "idiosim:", err)
	os.Exit(1)
}
