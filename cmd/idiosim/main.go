// Command idiosim regenerates the paper's figures from the simulator.
//
// Usage:
//
//	idiosim -exp fig10                    # one experiment, table to stdout
//	idiosim -exp all -csv out/            # everything, timelines as CSV
//	idiosim -exp fig9 -quick              # reduced-size run (CI-friendly)
//	idiosim -exp verify                   # PASS/FAIL reproduction claims
//	idiosim -report report.md             # full markdown report
//	idiosim -scenario s.json -stats s.txt # custom JSON scenario + stats dump
//
// Experiments: fig4 fig5 fig9 fig10 fig11 fig12 fig13 fig14 breakdown
// ablations degradation verify all.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"idio/internal/experiment"
	"idio/internal/scenario"
	"idio/internal/sim"
)

func main() {
	exp := flag.String("exp", "fig10", "experiment to run: fig4|fig5|fig9|fig10|fig11|fig12|fig13|fig14|breakdown|ablations|degradation|verify|all")
	csvDir := flag.String("csv", "", "directory to write timeline CSVs into (optional)")
	quick := flag.Bool("quick", false, "run reduced-size variants (256-entry rings, scaled caches)")
	scenarioPath := flag.String("scenario", "", "run a JSON scenario file instead of a named experiment")
	statsPath := flag.String("stats", "", "write a flat key=value stats dump for -scenario runs")
	reportPath := flag.String("report", "", "regenerate everything and write a markdown report to this path")
	flag.Parse()

	runner := &runner{csvDir: *csvDir, quick: *quick}
	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fatal(err)
		}
	}
	if *scenarioPath != "" {
		if err := runScenario(*scenarioPath, *statsPath); err != nil {
			fatal(err)
		}
		return
	}
	if *reportPath != "" {
		f, err := os.Create(*reportPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := experiment.WriteReport(f, experiment.ReportOpts{Quick: *quick}); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "[report written to %s]\n", *reportPath)
		return
	}

	all := []string{"fig4", "fig5", "fig9", "fig10", "fig11", "fig12", "fig13", "fig14", "breakdown", "ablations", "degradation"}
	targets := []string{*exp}
	if *exp == "all" {
		targets = all
	}
	for _, name := range targets {
		start := time.Now()
		if err := runner.run(name); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "[%s done in %v]\n", name, time.Since(start).Round(time.Millisecond))
	}
}

type runner struct {
	csvDir string
	quick  bool
}

// scale shrinks a figure's geometry for -quick runs.
const (
	quickRing = 256
	quickMLC  = 256 << 10
	quickLLC  = 768 << 10
)

func (r *runner) run(name string) error {
	switch name {
	case "fig4":
		opts := experiment.DefaultFig4Opts()
		if r.quick {
			opts.Rings = []int{64, quickRing}
			opts.OneWayRings = []int{quickRing}
			opts.MLCSize, opts.LLCSize = quickMLC, quickLLC
			opts.Loads["low"] = 0.5
		}
		rows := experiment.Fig4(opts)
		return experiment.WriteTable(os.Stdout, "Fig 4: MLC/DRAM leaks vs load and ring size (DDIO baseline)",
			experiment.Fig4Header(), experiment.Rows(rows))

	case "fig5":
		opts := experiment.DefaultFig5Opts()
		if r.quick {
			opts.RingSize = quickRing
			opts.MLCSize, opts.LLCSize = quickMLC, quickLLC
		}
		res := experiment.Fig5(opts)
		fmt.Printf("== Fig 5: bursty TouchDrop under DDIO ==\n")
		fmt.Printf("processed=%d  totalMLCWB=%d  totalLLCWB=%d  (timeline: %d buckets)\n",
			res.Processed, res.TotalMLCWB, res.TotalLLCWB, len(res.MLCWB.Points))
		return r.csv("fig5_timeline.csv", res.MLCWB, res.LLCWB, res.DMA)

	case "fig9":
		opts := experiment.DefaultFig9Opts()
		if r.quick {
			opts.RingSize = quickRing
			opts.MLCSize, opts.LLCSize = quickMLC, quickLLC
		}
		cells := experiment.Fig9(opts)
		rows := make([]experiment.TableRow, len(cells))
		for i, c := range cells {
			rows[i] = c
		}
		if err := experiment.WriteTable(os.Stdout, "Fig 9: per-mechanism burst comparison (2x TouchDrop)",
			experiment.Fig9Header(), rows); err != nil {
			return err
		}
		for _, c := range cells {
			name := fmt.Sprintf("fig9_%s_%.0fG.csv", c.Policy.Name(), c.RateGbps)
			if err := r.csv(name, c.MLCWB, c.LLCWB, c.DMA); err != nil {
				return err
			}
		}
		return nil

	case "fig10":
		opts := experiment.DefaultFig10Opts()
		if r.quick {
			opts.RingSize = quickRing
			opts.MLCSize, opts.LLCSize = quickMLC, quickLLC
		}
		rows := experiment.Fig10(opts)
		return experiment.WriteTable(os.Stdout,
			"Fig 10: Static/IDIO normalized to DDIO (lower is better)",
			experiment.Fig10Header(), experiment.Rows(rows))

	case "fig11":
		opts := experiment.DefaultFig11Opts()
		if r.quick {
			opts.RingSize = quickRing
		}
		res := experiment.Fig11(opts)
		fmt.Printf("== Fig 11: L2Fwd (zero-copy shallow NF), %d-byte packets ==\n", opts.FrameLen)
		fmt.Printf("DDIO: mlcWB=%d llcWB=%d dramWr=%d exe=%.0fus\n",
			res.DDIO.Summary.MLCWB, res.DDIO.Summary.LLCWB, res.DDIO.Summary.DRAMWrites, res.DDIO.Summary.ExeTimeUS)
		fmt.Printf("IDIO: mlcWB=%d llcWB=%d dramWr=%d exe=%.0fus\n",
			res.IDIO.Summary.MLCWB, res.IDIO.Summary.LLCWB, res.IDIO.Summary.DRAMWrites, res.IDIO.Summary.ExeTimeUS)
		fmt.Printf("Direct-DRAM variant (class-1 payload): RX=%.2f Gbps, DRAM write=%.2f Gbps\n",
			res.DirectDRAM.RxGbps, res.DirectDRAM.DRAMWriteGbps)
		if err := r.csv("fig11_ddio.csv", res.DDIO.MLCWB, res.DDIO.LLCWB); err != nil {
			return err
		}
		return r.csv("fig11_idio.csv", res.IDIO.MLCWB, res.IDIO.LLCWB)

	case "fig12":
		opts := experiment.DefaultFig12Opts()
		if r.quick {
			opts.RingSize = quickRing
		}
		rows := experiment.Fig12(opts)
		return experiment.WriteTable(os.Stdout,
			"Fig 12: p50/p99 latency normalized to DDIO solo",
			experiment.Fig12Header(), experiment.Rows(rows))

	case "fig13":
		opts := experiment.DefaultFig13Opts()
		if r.quick {
			opts.RingSize = quickRing
			opts.MLCSize, opts.LLCSize = quickMLC, quickLLC
			opts.Packets = 2048
		}
		res := experiment.Fig13(opts)
		fmt.Printf("== Fig 13: steady traffic (10 Gbps per TouchDrop) ==\n")
		fmt.Printf("DDIO: mlcWB=%d llcWB=%d drops=%d p99=%.1fus\n",
			res.DDIO.Summary.MLCWB, res.DDIO.Summary.LLCWB, res.DDIO.Summary.Drops, res.DDIO.Summary.P99US)
		fmt.Printf("IDIO: mlcWB=%d llcWB=%d drops=%d p99=%.1fus\n",
			res.IDIO.Summary.MLCWB, res.IDIO.Summary.LLCWB, res.IDIO.Summary.Drops, res.IDIO.Summary.P99US)
		if err := r.csv("fig13_ddio.csv", res.DDIO.MLCWB, res.DDIO.LLCWB); err != nil {
			return err
		}
		return r.csv("fig13_idio.csv", res.IDIO.MLCWB, res.IDIO.LLCWB)

	case "fig14":
		opts := experiment.DefaultFig14Opts()
		if r.quick {
			opts.RingSize = quickRing
			opts.MLCSize, opts.LLCSize = quickMLC, quickLLC
		}
		rows := experiment.Fig14(opts)
		return experiment.WriteTable(os.Stdout,
			"Fig 14: IDIO sensitivity to mlcTHR at 100 Gbps (normalized to DDIO)",
			experiment.Fig14Header(), experiment.Rows(rows))

	case "breakdown":
		opts := experiment.DefaultBreakdownOpts()
		if r.quick {
			opts.RingSize = quickRing
			opts.MLCSize, opts.LLCSize = quickMLC, quickLLC
		}
		rows := experiment.Breakdown(opts)
		return experiment.WriteTable(os.Stdout,
			"Latency breakdown (us): notification / queueing / service",
			experiment.BreakdownHeader(), experiment.Rows(rows))

	case "degradation":
		opts := experiment.DefaultDegradationOpts()
		if r.quick {
			opts.RingSize = quickRing
			opts.MLCSize, opts.LLCSize = quickMLC, quickLLC
		}
		rows := experiment.Degradation(opts)
		return experiment.WriteTable(os.Stdout,
			"Degradation: DDIO vs IDIO under swept fault rates (drops / p99 / WB inflation)",
			experiment.DegradationHeader(), experiment.Rows(rows))

	case "verify":
		if failed := experiment.Verify(os.Stdout); failed > 0 {
			return fmt.Errorf("%d reproduction claims failed", failed)
		}
		return nil

	case "ablations":
		opts := experiment.DefaultAblationOpts()
		if r.quick {
			opts.RingSize = quickRing
			opts.MLCSize, opts.LLCSize = quickMLC, quickLLC
		}
		var rows []experiment.AblationRow
		rows = append(rows, experiment.AblationDDIOWays(opts, []int{1, 2, 4})...)
		rows = append(rows, experiment.AblationRingSize(opts, []int{64, 256, opts.RingSize})...)
		rows = append(rows, experiment.AblationPrefetchDepth(opts, []int{4, 32, 128})...)
		rows = append(rows, experiment.AblationDescCoalescing(opts,
			[]sim.Duration{0, 1900 * sim.Nanosecond, 20 * sim.Microsecond})...)
		hot := opts
		hot.RateGbps = 100
		rows = append(rows, experiment.AblationAdaptivePrefetch(hot)...)
		rows = append(rows, experiment.AblationMLP(hot, []int{1, 4, 8, 32})...)
		rows = append(rows, experiment.AblationReplacement(opts)...)
		rows = append(rows, experiment.AblationInclusion(opts)...)
		rows = append(rows, experiment.AblationFrameSize(opts, []int{128, 512, 1514})...)
		if err := experiment.WriteTable(os.Stdout, "Ablations: design-choice sweeps (Fig. 9 scenario)",
			experiment.AblationHeader(), experiment.Rows(rows)); err != nil {
			return err
		}
		baseOpts := experiment.DefaultBaselineOpts()
		if r.quick {
			baseOpts.RingSize = quickRing
			baseOpts.MLCSize, baseOpts.LLCSize = quickMLC, quickLLC
		}
		return experiment.WriteTable(os.Stdout,
			"Baselines: static DDIO vs IAT-style dynamic ways vs IDIO (100 Gbps burst)",
			experiment.BaselineHeader(), experiment.Rows(experiment.Baselines(baseOpts)))

	default:
		return fmt.Errorf("unknown experiment %q", name)
	}
}

// csv writes series into the CSV directory; a no-op when -csv is
// unset.
func (r *runner) csv(name string, series ...experiment.Series) error {
	if r.csvDir == "" {
		return nil
	}
	f, err := os.Create(filepath.Join(r.csvDir, name))
	if err != nil {
		return err
	}
	defer f.Close()
	return experiment.WriteSeriesCSV(f, series...)
}

// runScenario executes a JSON scenario file and prints its summary,
// optionally writing a flat stats dump.
func runScenario(path, statsPath string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	sc, err := scenario.Load(f)
	if err != nil {
		return err
	}
	res, cpi, err := scenario.Run(sc)
	if err != nil {
		return err
	}
	fmt.Printf("== scenario %q (%s) ==\n", sc.Name, sc.Policy)
	fmt.Print(res)
	if cpi > 0 {
		fmt.Printf("  antagonist CPI: %.1f\n", cpi)
	}
	if statsPath != "" {
		sf, err := os.Create(statsPath)
		if err != nil {
			return err
		}
		defer sf.Close()
		if err := res.WriteStats(sf); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "[stats written to %s]\n", statsPath)
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "idiosim:", err)
	os.Exit(1)
}
