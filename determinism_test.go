package idio

// Simulator-grade guarantees: bit-identical determinism across runs
// and conservation of packets and cachelines through the pipeline.

import (
	"strings"
	"testing"

	"idio/internal/apps"
	idiocore "idio/internal/core"
	"idio/internal/sim"
	"idio/internal/traffic"
)

// TestDeterministicReplay runs the same configuration twice and
// demands bit-identical statistics — the property that makes simulator
// results citable and bugs reproducible.
func TestDeterministicReplay(t *testing.T) {
	run := func() string {
		cfg := smallCfg(2, idiocore.PolicyIDIO)
		sys := NewSystem(cfg)
		for c := 0; c < 2; c++ {
			flow := sys.DefaultFlow(c)
			sys.AddNF(c, apps.TouchDrop{}, flow)
			traffic.Poisson{Flow: flow, RateBps: traffic.Gbps(10), Count: 512, Seed: 7}.Install(sys.Sim, sys.NIC)
		}
		ant := apps.NewLLCAntagonist(1, sys.AllocRegion(256<<10), cfg.Hier.Clock, sys.Hier, 3)
		_ = ant // antagonist shares core 1's hierarchy but runs standalone
		sys.Start()
		ant.Start(sys.Sim)
		res := sys.RunUntilIdle(20 * sim.Millisecond)
		var buf strings.Builder
		if err := res.WriteStats(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	a := run()
	b := run()
	if a != b {
		t.Fatalf("runs diverged:\n--- run1 ---\n%s\n--- run2 ---\n%s", a, b)
	}
}

// TestPacketConservation checks end-to-end accounting: every generated
// packet is exactly one of {processed, ring-dropped}, and the DMA
// write count matches the admitted packets' line footprint.
func TestPacketConservation(t *testing.T) {
	cfg := smallCfg(1, idiocore.PolicyDDIO)
	cfg.NIC.RingSize = 32 // small ring: force drops
	sys := NewSystem(cfg)
	flow := sys.DefaultFlow(0)
	sys.AddNF(0, apps.TouchDrop{}, flow)
	const generated = 512
	traffic.Bursty{
		Flow: flow, BurstRateBps: traffic.Gbps(100),
		Period: 10 * sim.Millisecond, PacketsPerBurst: generated, NumBursts: 1,
	}.Install(sys.Sim, sys.NIC)
	res := sys.RunUntilIdle(9 * sim.Millisecond)

	if res.TotalProcessed()+res.NIC.RxDrops != generated {
		t.Fatalf("conservation: processed %d + dropped %d != generated %d",
			res.TotalProcessed(), res.NIC.RxDrops, generated)
	}
	if res.NIC.RxDrops == 0 {
		t.Fatal("scenario should have forced drops")
	}
	// Admitted MTU packets DMA 24 payload + 2 descriptor lines each.
	wantWrites := res.NIC.RxPackets * 26
	if res.NIC.DMAWrites != wantWrites {
		t.Fatalf("DMA writes %d, want %d", res.NIC.DMAWrites, wantWrites)
	}
	// Every admitted packet's payload was demanded by the core.
	demand := res.Cores[0].Demand.Total()
	if demand != res.TotalProcessed()*24 {
		t.Fatalf("demand %d, want %d", demand, res.TotalProcessed()*24)
	}
}

// TestPrefetchHintConservation: hints are either issued or dropped,
// and issues are either fills or drops at the hierarchy.
func TestPrefetchHintConservation(t *testing.T) {
	cfg := smallCfg(2, idiocore.PolicyIDIO)
	sys := NewSystem(cfg)
	installTouchDrop(sys, 2, 25, 256)
	res := sys.RunUntilIdle(9 * sim.Millisecond)
	var queued, dropped, issued uint64
	for _, p := range sys.Prefetchers {
		queued += p.HintsQueued
		dropped += p.HintsDropped
		issued += p.Issued
	}
	if queued == 0 {
		t.Fatal("no prefetch hints generated")
	}
	if issued > queued {
		t.Fatalf("issued %d > queued %d", issued, queued)
	}
	if res.Hier.PrefetchFill+res.Hier.PrefetchDrop != issued {
		t.Fatalf("hierarchy saw %d+%d prefetches, prefetchers issued %d",
			res.Hier.PrefetchFill, res.Hier.PrefetchDrop, issued)
	}
}
