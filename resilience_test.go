package idio

// Resilience: a faulted fabric must degrade gracefully — requests
// retried, load shed, late responses discarded — without ever leaking
// a packet from the host pool or wedging the topology.

import (
	"reflect"
	"testing"

	"idio/internal/apps"
	"idio/internal/core"
	"idio/internal/fault"
	fnet "idio/internal/net"
	"idio/internal/sim"
)

// runChaosCluster wires a 2-core / 2-client cluster with the full
// resilience stack (retrying clients, AQM, admission control) under a
// scripted fault timeline, and runs it to drain.
func runChaosCluster(t *testing.T, pol core.Policy, tl []fault.Phase) (*Cluster, Results) {
	t.Helper()
	ccfg := DefaultClusterConfig(2, 2)
	ccfg.Host.Policy = pol
	ccfg.Host.NIC.RingSize = 256
	ccfg.Host.Hier.MLCSize = 256 << 10
	ccfg.Host.Hier.LLCSize = 768 << 10
	ccfg.Host.NIC.AdmissionWatermark = 48
	ccfg.Host.Faults = &fault.Config{Timeline: tl}
	ccfg.ClientLink.AQMTarget = 20 * sim.Microsecond
	ccfg.ServerLink.AQMTarget = 20 * sim.Microsecond
	cl, err := NewCluster(ccfg)
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	for c := 0; c < 2; c++ {
		cl.DUT.AddNF(c, apps.L2Fwd{}, cl.DUT.DefaultFlow(c))
	}
	for i := 0; i < 2; i++ {
		cl.AddRPCClient(i, i, fnet.ClientConfig{
			Mode: fnet.ModeClosed, Outstanding: 16, Requests: 4096,
			Timeout: 100 * sim.Microsecond,
			Retry: &fnet.RetryConfig{
				MaxRetries: 3, Backoff: 50 * sim.Microsecond,
				JitterFrac: 0.25, Seed: int64(13 + i),
			},
		})
	}
	res, err := cl.Run(RunOpts{Horizon: 30 * sim.Millisecond, UntilIdle: true})
	if err != nil {
		t.Fatalf("cluster run: %v", err)
	}
	return cl, res
}

// TestLossyFabricNoPoolLeak is the late-response regression gate: a
// timeline that both drops requests on the wire (fabric/down) and
// delays responses past the client timeout (nic/dma-stall) forces
// every hazardous path at once — timeouts, backoff retransmissions,
// and stale responses arriving for superseded attempts. Every packet
// on every path must return to the host pool, and every request must
// resolve to exactly one of answered or failed.
func TestLossyFabricNoPoolLeak(t *testing.T) {
	ms := sim.Millisecond
	tl := []fault.Phase{
		// Down the server downlink: in-flight requests are lost.
		{Layer: "fabric", Kind: "down", Start: sim.Time(1 * ms), Duration: 200 * sim.Microsecond, Target: 0},
		// Stall the DUT's DMA: accepted requests are served late, so
		// their responses race the clients' timeouts and retries.
		{Layer: "nic", Kind: "dma-stall", Start: sim.Time(2 * ms), Duration: 300 * sim.Microsecond, Target: 0},
	}
	for _, pol := range []core.Policy{core.PolicyDDIO, core.PolicyIDIO} {
		cl, res := runChaosCluster(t, pol, tl)
		name := pol.Name()
		for _, c := range cl.Clients {
			if !c.Done() {
				t.Fatalf("%s: client wedged: %+v", name, c.Stats())
			}
		}
		rpc := res.RPC
		if rpc.Timeouts == 0 || rpc.Retries == 0 {
			t.Fatalf("%s: timeline never provoked the retry path: %+v", name, *rpc)
		}
		if rpc.Late == 0 {
			t.Fatalf("%s: no late responses — the stalled-DMA window did not race the timeout: %+v", name, *rpc)
		}
		if got := rpc.Responses + rpc.Failed; got != rpc.Issued {
			t.Fatalf("%s: request accounting broken: responses %d + failed %d != issued %d",
				name, rpc.Responses, rpc.Failed, rpc.Issued)
		}
		if rpc.Issued != 2*4096 {
			t.Fatalf("%s: issued %d, want the full 8192 budget", name, rpc.Issued)
		}
		// The gate: drops, retries, hedge-less late arrivals, AQM and
		// admission sheds — and still not one packet unaccounted for.
		if res.PktPool.Outstanding != 0 {
			t.Fatalf("%s: pool leak on a lossy fabric: %+v", name, res.PktPool)
		}
	}
}

// TestChaosClusterDeterministicReplay: the fully-faulted resilience
// stack replays bit-identically — fault timelines, backoff jitter,
// AQM, and admission control all draw from seeded/deterministic state.
func TestChaosClusterDeterministicReplay(t *testing.T) {
	tl := []fault.Phase{
		{Layer: "fabric", Kind: "degrade", Start: sim.Time(sim.Millisecond), Duration: 500 * sim.Microsecond, Magnitude: 0.05, Target: 0},
	}
	run := func() RPCResults {
		_, res := runChaosCluster(t, core.PolicyIDIO, tl)
		return *res.RPC
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("chaos replay diverged:\n  %+v\n  %+v", a, b)
	}
	if a.Retries == 0 {
		t.Fatal("degraded link never provoked a retry")
	}
}
