// Package idio is a full-system simulation library reproducing "IDIO:
// Network-Driven, Inbound Network Data Orchestration on Server
// Processors" (MICRO 2022). It wires together a non-inclusive cache
// hierarchy with DDIO ways, a NIC model with Flow Director and a
// bandwidth-paced DMA engine, a DPDK-style polling software stack, and
// the IDIO classifier/controller/prefetcher, and exposes the paper's
// named policies (DDIO, Invalidate, Prefetch, Static, IDIO).
//
// Quick start:
//
//	cfg := idio.DefaultConfig(2)
//	cfg.Policy = idiocore.PolicyIDIO
//	sys := idio.NewSystem(cfg)
//	flow := sys.DefaultFlow(0)
//	sys.AddNF(0, apps.TouchDrop{}, flow)
//	traffic.Bursty{...}.Install(sys.Sim, sys.NIC)
//	res := sys.Run(30 * sim.Millisecond)
package idio

import (
	"errors"
	"fmt"

	idiocore "idio/internal/core"
	"idio/internal/cpu"
	"idio/internal/fault"
	"idio/internal/hier"
	fnet "idio/internal/net"
	"idio/internal/nic"
	"idio/internal/obs"
	"idio/internal/qos"
	"idio/internal/sim"
)

// Config aggregates every subsystem's configuration. DefaultConfig
// reproduces Table I; experiments override individual fields.
type Config struct {
	Hier       hier.Config
	NIC        nic.Config
	CPU        cpu.Config
	Classifier idiocore.ClassifierConfig
	Controller idiocore.ControllerConfig
	Prefetcher idiocore.PrefetcherConfig
	// Policy selects the active IDIO mechanisms (the evaluation's
	// DDIO / Invalidate / Prefetch / Static / IDIO configurations).
	Policy idiocore.Policy
	// EnforceInvalidatable turns on the PTE-bit check of Sec. V-D for
	// InvalidateNoWB.
	EnforceInvalidatable bool
	// DynamicDDIOWays, when non-nil, enables the IAT-style dynamic
	// DDIO-way baseline: the way allocation is tuned at runtime from
	// the observed DMA-leak rate. Typically combined with PolicyDDIO
	// to model prior work the paper compares against (Shortcoming S1).
	DynamicDDIOWays *idiocore.WayTunerConfig
	// NumPorts is how many independent NIC ports (each with its own
	// DMA engine and per-core rings) the system has. 0 or 1 means a
	// single port; the paper's physical setup has two 100 GbE ports.
	// Cores service all ports' rings round-robin.
	NumPorts int
	// EnableIOMMU validates every DMA target against the mapped ring
	// and buffer regions; unmapped accesses fault and are dropped.
	EnableIOMMU bool
	// OccupancySampling, when > 0, records LLC total and I/O-classified
	// occupancy (and per-core MLC occupancy) at this period — the
	// direct visualization of DMA bloating.
	OccupancySampling sim.Duration
	// Faults, when non-nil and enabled, wires the deterministic
	// fault-injection layer (internal/fault) through the PCIe path and
	// attaches its periodic injectors to the NIC ports, DRAM,
	// hierarchy, and cores. Same seed + same config = bit-identical
	// runs, faults included.
	Faults *fault.Config
	// Watchdog, when non-nil, arms the simulator's no-progress /
	// event-storm detector with these thresholds (nil leaves the
	// watchdog disabled, matching historical behaviour). A tripped
	// watchdog stops the run and surfaces a *sim.WatchdogError via
	// System.Err and Results.Aborted.
	Watchdog *sim.WatchdogConfig
	// QoS, when non-nil, arms service-class-aware orchestration on the
	// host: the DSCP→class map is installed in every NIC port's filter
	// table, each class's LLC way quota / prefetch aggressiveness /
	// direct-to-DRAM policy applies at DMA placement time, and
	// per-class RX counters appear in the obs registry. Nil (the
	// default) leaves every packet class 0 and the data plane
	// byte-identical to pre-QoS builds.
	QoS *qos.Config
	// Obs configures the observability layer: Obs.TraceSampleN > 0
	// enables the structured packet-journey tracer (attach a sink via
	// System.Observe().SetSink), Obs.MetricsInterval > 0 enables
	// periodic metric-registry snapshots. The zero value costs zero
	// work and zero allocations on the simulation's hot paths; the
	// metric registry itself is always populated.
	Obs obs.Config
}

// DefaultConfig builds the Table I system for the given core count:
// 3 GHz cores, 32KB L1D, 1MB 8-way MLC (12 CC), 1.5MB x 12-way LLC per
// core (24 CC) with 2 DDIO ways, DDR4-3200, a 2x100GbE NIC with
// 1024-entry rings, DPDK-style 32-packet bursts, and the Sec. VI
// thresholds (rxBurstTHR = 10 Gbps over 1 µs, mlcTHR = 50 MTPS).
func DefaultConfig(numCores int) Config {
	return Config{
		Hier:       hier.DefaultConfig(numCores),
		NIC:        nic.DefaultConfig(numCores),
		CPU:        cpu.DefaultConfig(),
		Classifier: idiocore.DefaultClassifierConfig(numCores),
		Controller: idiocore.DefaultControllerConfig(numCores),
		Prefetcher: idiocore.DefaultPrefetcherConfig(),
		Policy:     idiocore.PolicyDDIO,
	}
}

// Gem5Config mirrors the scaled-down gem5 setup used for the paper's
// fine-grained burst analyses (Sec. III, Fig. 5): the LLC is scaled to
// 3 MB total and two NF instances run on two cores.
func Gem5Config() Config {
	cfg := DefaultConfig(2)
	cfg.Hier.LLCSize = 3 << 20
	return cfg
}

// ClusterConfig describes a multi-host topology: one DUT server (a
// full System) plus N client host slots, connected through a switch by
// point-to-point links (see Cluster).
type ClusterConfig struct {
	// Host configures the DUT server.
	Host Config
	// Clients is the number of client host slots.
	Clients int
	// ClientLink is the per-client link template (Name is assigned per
	// slot: "c<i>.up" toward the switch, "c<i>.down" back).
	ClientLink fnet.LinkConfig
	// ServerLink is the server-side link template ("srv.down" into the
	// DUT NIC, "srv.up" for responses).
	ServerLink fnet.LinkConfig
	// QoS, when non-nil, arms the full class pipeline across the
	// cluster: the Host config inherits it (unless Host.QoS is already
	// set), and every switch egress port replaces its single FIFO with
	// per-class queues under a strict-priority + weighted-round-robin
	// scheduler. Collect then reports per-class RPC latency, goodput,
	// and drop breakdowns. Nil keeps the single-class fabric and the
	// exact historical outputs.
	QoS *qos.Config
	// Shards partitions the cluster into parallel event domains, each
	// advancing on its own goroutine and synchronized conservatively at
	// link boundaries (lookahead = the minimum link propagation delay;
	// see DESIGN.md "Sharded event domains"). 0 or 1 keep today's exact
	// single-simulator run. N >= 2 gives the DUT and the switch one
	// domain each and spreads the client hosts over the remaining N-2
	// (at least one) domains. Results and stats output are
	// byte-identical across shard counts; only wall-clock time changes.
	Shards int
}

// DefaultClusterConfig builds a topology matching the paper's testbed
// scale: the Table I server with numCores cores, nClients clients on
// 100 GbE links with 2 µs one-way propagation delay.
func DefaultClusterConfig(numCores, nClients int) ClusterConfig {
	link := fnet.LinkConfig{
		RateBps: 100e9,
		Delay:   2 * sim.Microsecond,
	}
	return ClusterConfig{
		Host:       DefaultConfig(numCores),
		Clients:    nClients,
		ClientLink: link,
		ServerLink: link,
	}
}

// Validate checks the topology parameters (the Host config is
// validated separately by NewHostE).
func (c ClusterConfig) Validate() error {
	var errs []error
	if c.Clients <= 0 {
		errs = append(errs, fmt.Errorf("idio: cluster needs at least one client slot, got %d", c.Clients))
	}
	if c.ClientLink.RateBps <= 0 {
		errs = append(errs, fmt.Errorf("idio: cluster client-link rate %d must be positive", c.ClientLink.RateBps))
	}
	if c.ServerLink.RateBps <= 0 {
		errs = append(errs, fmt.Errorf("idio: cluster server-link rate %d must be positive", c.ServerLink.RateBps))
	}
	if c.Shards < 0 {
		errs = append(errs, fmt.Errorf("idio: cluster shards %d must be >= 0", c.Shards))
	}
	if c.QoS != nil {
		if err := c.QoS.Validate(); err != nil {
			errs = append(errs, err)
		}
	}
	if c.Shards > 1 {
		// Sharding is conservative PDES: the lookahead window is the
		// minimum link propagation delay, and anything that samples or
		// mutates cross-domain state mid-epoch cannot be supported.
		if c.ClientLink.Delay <= 0 || c.ServerLink.Delay <= 0 {
			errs = append(errs, fmt.Errorf("idio: sharded cluster needs positive link propagation delays (the conservative lookahead window)"))
		}
		if c.Host.Obs.TraceSampleN > 0 {
			errs = append(errs, fmt.Errorf("idio: packet tracing requires Shards <= 1 (trace events interleave across domains)"))
		}
		if c.Host.Obs.MetricsInterval > 0 {
			errs = append(errs, fmt.Errorf("idio: periodic metric snapshots require Shards <= 1 (the registry samples cross-domain state mid-run)"))
		}
		if c.Host.Faults.FabricRandomEnabled() {
			errs = append(errs, fmt.Errorf("idio: random fabric fault injectors require Shards <= 1; use a deterministic fault Timeline"))
		}
	}
	return errors.Join(errs...)
}

// NumCores returns the configured core count.
func (c Config) NumCores() int { return c.Hier.NumCores }

// TimelineBucket returns the stats sampling interval in use.
func (c Config) TimelineBucket() sim.Duration { return c.Hier.TimelineBucket }
