package cpu

import (
	"testing"

	idiocore "idio/internal/core"
	"idio/internal/dram"
	"idio/internal/hier"
	"idio/internal/mem"
	"idio/internal/nic"
	"idio/internal/pcie"
	"idio/internal/pkt"
	"idio/internal/sim"
)

// ddioSink is a plain DDIO root complex: every DMA write goes to the
// LLC, every DMA read through the egress path.
type ddioSink struct{ h *hier.Hierarchy }

func (s ddioSink) DMAWrite(now sim.Time, tlp pcie.WriteTLP) sim.Duration {
	return s.h.PCIeWrite(now, mem.LineAddr(tlp.LineAddr))
}

func (s ddioSink) DMARead(now sim.Time, line uint64) sim.Duration {
	return s.h.PCIeRead(now, mem.LineAddr(line))
}

// touchAll is a minimal deep-touch app for tests.
type touchAll struct{}

func (touchAll) Name() string { return "touchAll" }
func (touchAll) OnPacket(env *Env, slot *nic.Slot) (sim.Duration, bool) {
	return env.ReadRegion(slot.PayloadRegion()), false
}

type rig struct {
	s    *sim.Simulator
	h    *hier.Hierarchy
	n    *nic.NIC
	core *Core
}

func newRig(t *testing.T, coreCfg Config, ringSize int) *rig {
	t.Helper()
	hcfg := hier.Config{
		Clock:    sim.NewClock(3_000_000_000),
		NumCores: 1,
		L1Size:   4 << 10, L1Assoc: 2, L1Lat: 2,
		MLCSize: 64 << 10, MLCAssoc: 8, MLCLat: 12,
		LLCSize: 128 << 10, LLCAssoc: 8, LLCLat: 24,
		DDIOWays:          2,
		DirEntriesPerCore: 4096, DirAssoc: 16,
		DRAM: dram.Config{AccessLatency: 80 * sim.Nanosecond, BytesPerSecond: 25_600_000_000},
	}
	h := hier.New(hcfg)
	ncfg := nic.DefaultConfig(1)
	ncfg.RingSize = ringSize
	ncfg.DescWBDelay = 100 * sim.Nanosecond
	cls := idiocore.NewClassifier(idiocore.DefaultClassifierConfig(1))
	n := nic.New(ncfg, mem.NewLayout(0x1000000), ddioSink{h}, cls, nic.NewFlowDirector(1))
	s := sim.New()
	c := NewCore(0, coreCfg, hcfg.Clock, h, []*nic.NIC{n}, touchAll{})
	return &rig{s: s, h: h, n: n, core: c}
}

func (r *rig) inject(t *testing.T, at sim.Time, frameLen int, srcPort uint16) {
	t.Helper()
	f, err := pkt.Build(pkt.Spec{
		SrcIP: pkt.IPv4{1, 2, 3, 4}, DstIP: pkt.IPv4{5, 6, 7, 8},
		SrcPort: srcPort, DstPort: 9, FrameLen: frameLen,
	})
	if err != nil {
		t.Fatal(err)
	}
	p := &pkt.Packet{Frame: f}
	r.s.At(at, func(sm *sim.Simulator) { r.n.Receive(sm, p) })
}

func TestPMDProcessesAllPackets(t *testing.T) {
	r := newRig(t, DefaultConfig(), 64)
	for i := 0; i < 10; i++ {
		r.inject(t, sim.Time(i*1000), 1514, uint16(i+1))
	}
	r.core.Start(r.s)
	r.s.RunUntil(sim.Time(5 * sim.Millisecond))
	if r.core.Processed != 10 {
		t.Fatalf("processed %d, want 10", r.core.Processed)
	}
	if r.core.Latencies.Count() != 10 {
		t.Fatalf("latency samples %d", r.core.Latencies.Count())
	}
	// All slots freed: ring empty again.
	if r.n.Ring(0).Occupancy() != 0 {
		t.Fatalf("ring occupancy %d after processing", r.n.Ring(0).Occupancy())
	}
}

func TestLatencyIncludesQueueing(t *testing.T) {
	r := newRig(t, DefaultConfig(), 128)
	// All packets arrive together; later ones wait behind earlier ones.
	for i := 0; i < 32; i++ {
		r.inject(t, 0, 1514, uint16(i+1))
	}
	r.core.Start(r.s)
	r.s.RunUntil(sim.Time(5 * sim.Millisecond))
	if r.core.Processed != 32 {
		t.Fatalf("processed %d", r.core.Processed)
	}
	p50, p99 := r.core.Latencies.P50(), r.core.Latencies.P99()
	if p99 <= p50 {
		t.Fatalf("queueing must stretch the tail: p50=%v p99=%v", p50, p99)
	}
}

func TestBatchRespectsBatchSize(t *testing.T) {
	cfg := DefaultConfig()
	cfg.BatchSize = 4
	r := newRig(t, cfg, 64)
	for i := 0; i < 8; i++ {
		r.inject(t, 0, 200, uint16(i+1))
	}
	r.core.Start(r.s)
	r.s.RunUntil(sim.Time(5 * sim.Millisecond))
	if r.core.Processed != 8 {
		t.Fatalf("processed %d", r.core.Processed)
	}
}

func TestSelfInvalidateEliminatesMLCWritebacks(t *testing.T) {
	run := func(selfInval bool) (mlcWB, selfInv uint64) {
		cfg := DefaultConfig()
		cfg.SelfInvalidate = selfInval
		// Ring larger than the 64KB MLC (in packets): 1514B packets
		// x 64 slots = ~96KB of buffers.
		r := newRig(t, cfg, 64)
		for i := 0; i < 256; i++ {
			r.inject(t, sim.Time(int64(i)*int64(200*sim.Nanosecond)), 1514, uint16(i%500+1))
		}
		r.core.Start(r.s)
		r.s.RunUntil(sim.Time(10 * sim.Millisecond))
		if r.core.Processed == 0 {
			t.Fatal("nothing processed")
		}
		st := r.h.Stats()
		return st.MLCWriteback, st.SelfInval
	}
	wbBase, invBase := run(false)
	wbIDIO, invIDIO := run(true)
	if invBase != 0 {
		t.Fatalf("baseline must not self-invalidate: %d", invBase)
	}
	if invIDIO == 0 {
		t.Fatal("self-invalidation must fire")
	}
	if wbBase == 0 {
		t.Fatal("baseline must produce MLC writebacks (ring exceeds MLC)")
	}
	if wbIDIO*5 > wbBase {
		t.Fatalf("self-invalidation must slash MLC writebacks: base=%d idio=%d", wbBase, wbIDIO)
	}
}

func TestRunToCompletionRepollsImmediately(t *testing.T) {
	// With a continuous backlog the core must not insert poll-interval
	// gaps: total processing time ~ N * service time.
	cfg := DefaultConfig()
	cfg.PollInterval = 100 * sim.Microsecond // obviously wrong if used between batches
	r := newRig(t, cfg, 128)
	for i := 0; i < 96; i++ {
		r.inject(t, 0, 1514, uint16(i+1))
	}
	r.core.Start(r.s)
	r.s.RunUntil(sim.Time(100 * sim.Millisecond))
	if r.core.Processed != 96 {
		t.Fatalf("processed %d", r.core.Processed)
	}
	// 96 packets at ~3us each (most lines leak to DRAM in this tiny
	// LLC) = ~320us; three inter-batch sleeps would add another 300us.
	span := r.core.LastDoneAt.Sub(r.core.FirstPacketAt)
	if span > 450*sim.Microsecond {
		t.Fatalf("backlogged run took %v; batches must chain without polling gaps", span)
	}
}

func TestMSHROverlapShortensService(t *testing.T) {
	// Identical cold region read under MSHRs 1, 4, 24: more overlap
	// must monotonically shorten (or equal) the service time, bounded
	// below by the longest single access.
	times := map[int]sim.Duration{}
	for _, mshrs := range []int{1, 4, 24} {
		cfg := DefaultConfig()
		cfg.MSHRs = mshrs
		r := newRig(t, cfg, 64)
		r.core.env.Sim = r.s
		region := r.n.Ring(0).Slots()[0].Buf
		times[mshrs] = r.core.env.ReadRegion(mem.Region{Base: region.Base, Size: 1514})
	}
	if !(times[24] <= times[4] && times[4] <= times[1]) {
		t.Fatalf("overlap must not slow reads: %v", times)
	}
	if times[4] >= times[1] {
		t.Fatalf("4 MSHRs on cold DRAM reads must overlap: serial=%v mlp4=%v", times[1], times[4])
	}
	// 24 lines with >=24 MSHRs: all misses overlap; the service time
	// approaches a single DRAM access plus bus serialisation, far
	// below the serial sum.
	if times[24]*4 > times[1] {
		t.Fatalf("full overlap too weak: serial=%v mlp24=%v", times[1], times[24])
	}
}

func TestMSHRDefaultSerialEquivalence(t *testing.T) {
	// MSHRs=1 must be exactly the serial sum (the calibrated model).
	cfg := DefaultConfig()
	r := newRig(t, cfg, 64)
	r.core.env.Sim = r.s
	buf := r.n.Ring(0).Slots()[0].Buf
	var serial sim.Duration
	region := mem.Region{Base: buf.Base, Size: 1514}
	region.Lines(func(l mem.LineAddr) { serial += r.h.CoreRead(0, 0, l) })
	// Fresh rig for the same cold state.
	r2 := newRig(t, cfg, 64)
	r2.core.env.Sim = r2.s
	buf2 := r2.n.Ring(0).Slots()[0].Buf
	got := r2.core.env.ReadRegion(mem.Region{Base: buf2.Base, Size: 1514})
	if got != serial {
		t.Fatalf("MSHRs=1 ReadRegion %v != serial sum %v", got, serial)
	}
}

func TestInterruptDriverProcessesAndSleeps(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Driver = DriverInterrupt
	r := newRig(t, cfg, 64)
	for i := 0; i < 8; i++ {
		r.inject(t, sim.Time(int64(i)*int64(50*sim.Microsecond)), 1514, uint16(i+1))
	}
	r.core.Start(r.s)
	r.s.RunUntil(sim.Time(5 * sim.Millisecond))
	if r.core.Processed != 8 {
		t.Fatalf("processed %d, want 8", r.core.Processed)
	}
	// Well-spaced packets: one interrupt each (the ring drains between
	// arrivals, so the driver re-arms every time).
	if r.core.Interrupts != 8 {
		t.Fatalf("interrupts = %d, want 8", r.core.Interrupts)
	}
	// No poll events should be burning cycles while idle: with all
	// packets handled, the simulator's queue must drain completely
	// (the PMD, in contrast, re-schedules forever).
	if r.s.Pending() != 0 {
		t.Fatalf("%d events still pending; interrupt driver must sleep", r.s.Pending())
	}
}

func TestInterruptDriverCoalescesBackToBackPackets(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Driver = DriverInterrupt
	r := newRig(t, cfg, 64)
	// A tight burst: the first interrupt wakes the core; the rest are
	// consumed under the same wake-up (NAPI coalescing).
	for i := 0; i < 16; i++ {
		r.inject(t, sim.Time(int64(i)*100), 1514, uint16(i+1))
	}
	r.core.Start(r.s)
	r.s.RunUntil(sim.Time(5 * sim.Millisecond))
	if r.core.Processed != 16 {
		t.Fatalf("processed %d", r.core.Processed)
	}
	if r.core.Interrupts >= 16 {
		t.Fatalf("interrupts = %d; burst must coalesce", r.core.Interrupts)
	}
}

func TestInterruptAddsWakeupLatencyVsPolling(t *testing.T) {
	run := func(driver Driver) sim.Duration {
		cfg := DefaultConfig()
		cfg.Driver = driver
		r := newRig(t, cfg, 64)
		r.inject(t, 0, 1514, 1)
		r.core.Start(r.s)
		r.s.RunUntil(sim.Time(5 * sim.Millisecond))
		if r.core.Processed != 1 {
			t.Fatalf("processed %d", r.core.Processed)
		}
		return r.core.Latencies.P50()
	}
	pmd := run(DriverPolling)
	irq := run(DriverInterrupt)
	if irq <= pmd {
		t.Fatalf("interrupt latency %v must exceed polling %v", irq, pmd)
	}
	// The gap is roughly the IRQ wake-up cost.
	if gap := irq - pmd; gap > 5*sim.Microsecond {
		t.Fatalf("latency gap %v implausibly large", gap)
	}
}

func TestTraceRecordsStages(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TraceCapacity = 16
	r := newRig(t, cfg, 64)
	for i := 0; i < 4; i++ {
		r.inject(t, sim.Time(int64(i)*1000), 1514, uint16(i+1))
	}
	r.core.Start(r.s)
	r.s.RunUntil(sim.Time(5 * sim.Millisecond))
	if len(r.core.Trace) != 4 {
		t.Fatalf("trace records %d, want 4", len(r.core.Trace))
	}
	for i, rec := range r.core.Trace {
		if !(rec.Arrival <= rec.Ready && rec.Ready <= rec.Start && rec.Start < rec.Done) {
			t.Fatalf("record %d stages out of order: %+v", i, rec)
		}
		if rec.Total() != rec.NotifyDelay()+rec.QueueDelay()+rec.ServiceTime() {
			t.Fatalf("record %d breakdown does not sum: %+v", i, rec)
		}
		if rec.ServiceTime() <= 0 {
			t.Fatalf("record %d zero service time", i)
		}
		// Descriptor coalescing contributes the configured 100ns floor.
		if rec.NotifyDelay() < 100*sim.Nanosecond {
			t.Fatalf("record %d notify delay %v below coalescing floor", i, rec.NotifyDelay())
		}
	}
}

func TestTraceCapacityBounds(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TraceCapacity = 2
	r := newRig(t, cfg, 64)
	for i := 0; i < 8; i++ {
		r.inject(t, sim.Time(int64(i)*1000), 200, uint16(i+1))
	}
	r.core.Start(r.s)
	r.s.RunUntil(sim.Time(5 * sim.Millisecond))
	if len(r.core.Trace) != 2 {
		t.Fatalf("trace must cap at 2, got %d", len(r.core.Trace))
	}
	// Disabled tracing allocates nothing.
	r2 := newRig(t, DefaultConfig(), 64)
	r2.inject(t, 0, 200, 1)
	r2.core.Start(r2.s)
	r2.s.RunUntil(sim.Time(5 * sim.Millisecond))
	if r2.core.Trace != nil {
		t.Fatal("tracing disabled must record nothing")
	}
}

func TestCoreValidation(t *testing.T) {
	for _, cfg := range []Config{
		{BatchSize: 0, PollInterval: 1},
		{BatchSize: 1, PollInterval: 0},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("expected panic for %+v", cfg)
				}
			}()
			NewCore(0, cfg, sim.NewClock(3e9), nil, nil, touchAll{})
		}()
	}
}

func TestDoubleStartPanics(t *testing.T) {
	r := newRig(t, DefaultConfig(), 16)
	r.core.Start(r.s)
	defer func() {
		if recover() == nil {
			t.Fatal("double start must panic")
		}
	}()
	r.core.Start(r.s)
}
