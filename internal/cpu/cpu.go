// Package cpu models the processing side of the system: a per-core
// polling-mode driver (PMD) in the style of DPDK, batch packet
// processing with run-to-completion semantics (Sec. II-B, mode M3),
// and the glue that lets network-function models touch memory through
// the simulated cache hierarchy.
//
// Timing model: each packet costs a fixed instruction overhead
// (PerPacketCycles, covering driver + application compute) plus the
// accumulated latency of its memory accesses, which are resolved
// against the hierarchy. Packets are processed one per simulator event
// so DMA traffic and CPU progress interleave at sub-microsecond
// granularity — the interleaving that produces the DMA-phase /
// execution-phase dynamics of Fig. 5 and Fig. 9.
package cpu

import (
	"idio/internal/hier"
	"idio/internal/mem"
	"idio/internal/nic"
	"idio/internal/obs"
	"idio/internal/sim"
	"idio/internal/stats"
)

// Driver selects the notification model (Sec. II-A: completions can
// be signalled by interrupts or detected by a polling-mode driver).
type Driver int

const (
	// DriverPolling is the DPDK-style PMD: the core spins, re-polling
	// every PollInterval when idle.
	DriverPolling Driver = iota
	// DriverInterrupt is a NAPI-style driver: the core sleeps until
	// the NIC's completion interrupt fires, pays IRQLatency to wake,
	// processes until the ring drains, then re-arms the interrupt.
	DriverInterrupt
)

// Config tunes one processing core.
type Config struct {
	// Driver selects polling or interrupt notification.
	Driver Driver
	// IRQLatency is the wake-up cost in interrupt mode (context
	// switch + handler entry).
	IRQLatency sim.Duration
	// BatchSize is the PMD burst size (DPDK default 32).
	BatchSize int
	// PollInterval is the idle re-poll spacing.
	PollInterval sim.Duration
	// PerPacketCycles is the fixed instruction cost per packet
	// (driver + application compute, excluding memory stalls).
	PerPacketCycles int64
	// MSHRs bounds how many of a packet's line fetches may overlap
	// (memory-level parallelism). 1 serialises every access — the
	// calibrated default for this repo's service-time model; Table I's
	// out-of-order cores sustain up to 32. The MLP ablation shows how
	// overlap compresses cache-placement effects into smaller
	// execution-time deltas.
	MSHRs int
	// SelfInvalidate makes the stack invalidate DMA buffers (payload
	// and descriptor lines) without writeback when freeing them —
	// IDIO's Sec. IV-A mechanism.
	SelfInvalidate bool
	// InvalCyclesPerLine is the instruction cost of the
	// multi-cacheline invalidate (Sec. V-D) charged per invalidated
	// line when SelfInvalidate is on — the mechanism is cheap but not
	// free.
	InvalCyclesPerLine int64
	// TraceCapacity enables per-packet stage tracing when > 0,
	// retaining up to that many records (oldest first).
	TraceCapacity int
}

// TraceRecord captures one packet's life-cycle timestamps, letting
// experiments split end-to-end latency into notification delay
// (descriptor coalescing), queueing delay (waiting behind the
// backlog), and service time (driver + NF processing).
type TraceRecord struct {
	Seq     uint64
	Arrival sim.Time // frame fully received at the NIC
	Ready   sim.Time // descriptor write-back visible to the driver
	Start   sim.Time // processing began on the core
	Done    sim.Time // NF finished with the packet
}

// NotifyDelay is the descriptor-visibility lag.
func (r TraceRecord) NotifyDelay() sim.Duration { return r.Ready.Sub(r.Arrival) }

// QueueDelay is time spent waiting for the core.
func (r TraceRecord) QueueDelay() sim.Duration { return r.Start.Sub(r.Ready) }

// ServiceTime is the processing time proper.
func (r TraceRecord) ServiceTime() sim.Duration { return r.Done.Sub(r.Start) }

// Total is the end-to-end latency.
func (r TraceRecord) Total() sim.Duration { return r.Done.Sub(r.Arrival) }

// DefaultConfig reflects the DPDK setup of Sec. VI on the Table I
// core: 32-packet bursts and a per-packet cost calibrated so a single
// core saturates at ~12 Gbps of MTU traffic (the drop threshold the
// paper reports).
func DefaultConfig() Config {
	return Config{
		Driver:          DriverPolling,
		IRQLatency:      3 * sim.Microsecond,
		BatchSize:       32,
		PollInterval:    200 * sim.Nanosecond,
		PerPacketCycles: 1800,
		MSHRs:           1,
		// One cycle per line: the multi-cacheline invalidate iterates
		// set lookups but needs no data movement.
		InvalCyclesPerLine: 1,
	}
}

// App is a network-function model. OnPacket performs the packet's
// memory accesses through env and returns any additional processing
// latency beyond env-accumulated memory time, plus whether the slot's
// release is deferred (the app will call env.FreeSlot itself, e.g.
// after a TX completion).
type App interface {
	Name() string
	OnPacket(env *Env, slot *nic.Slot) (extra sim.Duration, deferred bool)
}

// Env is the per-core execution environment handed to apps.
type Env struct {
	Sim    *sim.Simulator
	CoreID int
	Hier   *hier.Hierarchy
	// Ports are the NICs this core receives from (one ring per port);
	// single-port systems have exactly one entry.
	Ports []*nic.NIC
	// Rings are the core's RX rings, parallel to Ports.
	Rings []*nic.Ring
	// Obs receives packet-service and slot-free trace events for
	// sampled packets; nil (the default) disables emission at the cost
	// of one branch per packet.
	Obs   *obs.Observer
	cfg   Config
	clock sim.Clock

	// outstanding is the reusable MSHR completion buffer for
	// ReadRegion (MSHRs > 1), sized once to the MSHR count.
	outstanding []sim.Duration
}

// Transmit forwards a slot's payload back out of the port it arrived
// on (zero-copy TX), invoking done when the TX DMA reads complete.
// This is the lightweight egress model; TransmitQueued drives the
// full TX-descriptor-ring path. When the port has an egress wire
// installed (a network fabric), the transmitted frame is handed to it
// at TX completion, after done has run.
func (e *Env) Transmit(slot *nic.Slot, payload mem.Region, done func(sim.Time)) {
	port := slot.NIC()
	if !port.HasWire() {
		port.Transmit(e.Sim, payload, done)
		return
	}
	// Capture the packet now: done typically frees the slot, and the
	// ring clears the packet pointer on free.
	p := slot.Pkt
	port.Transmit(e.Sim, payload, func(t sim.Time) {
		if done != nil {
			done(t)
		}
		port.WirePacket(e.Sim, p)
	})
}

// TransmitQueued forwards a slot's payload through the TX descriptor
// ring: the driver writes the descriptor through the cache hierarchy
// (the returned latency is that store cost), then the NIC fetches the
// descriptor and payload over PCIe and writes back a completion. It
// reports false when the TX ring is full (the packet is dropped, as a
// real driver would on a stuck queue).
func (e *Env) TransmitQueued(slot *nic.Slot, payload mem.Region, done func(sim.Time)) (sim.Duration, bool) {
	port := slot.NIC()
	tx := port.PrepareTX(e.CoreID)
	if tx == nil {
		return 0, false
	}
	var lat sim.Duration
	tx.Desc.Lines(func(l mem.LineAddr) { lat += e.Write(l) })
	if port.HasWire() {
		p := slot.Pkt // capture before the slot recycles
		inner := done
		done = func(t sim.Time) {
			if inner != nil {
				inner(t)
			}
			port.WirePacket(e.Sim, p)
		}
	}
	port.KickTX(e.Sim, e.CoreID, tx, payload, done)
	return lat, true
}

// TransmitAndFree is the allocation-free fast path for zero-copy
// forwarders: Transmit the slot's payload and free the slot when the
// TX DMA reads complete, equivalent to
//
//	e.Transmit(slot, payload, func(sim.Time) { e.FreeSlot(slot) })
//
// but with a package-level completion event instead of per-packet
// closures. As with Transmit, a port wire (network fabric) receives
// the frame after the free.
func (e *Env) TransmitAndFree(slot *nic.Slot, payload mem.Region) {
	slot.NIC().TransmitArg(e.Sim, payload, txFreeEv, sim.Arg{Obj: e, Obj2: slot})
}

// TransmitQueuedAndFree is TransmitAndFree through the full TX
// descriptor ring (see TransmitQueued). It reports false when the TX
// ring is full; the caller should then drop the packet.
func (e *Env) TransmitQueuedAndFree(slot *nic.Slot, payload mem.Region) (sim.Duration, bool) {
	port := slot.NIC()
	tx := port.PrepareTX(e.CoreID)
	if tx == nil {
		return 0, false
	}
	var lat sim.Duration
	first := tx.Desc.Base.Line()
	for i, n := 0, tx.Desc.NumLines(); i < n; i++ {
		lat += e.Write(first + mem.LineAddr(i))
	}
	port.KickTXArg(e.Sim, e.CoreID, tx, payload, txFreeEv, sim.Arg{Obj: e, Obj2: slot})
	return lat, true
}

// txFreeEv is the TX completion for TransmitAndFree /
// TransmitQueuedAndFree: Arg.Obj is the *Env, Obj2 the *nic.Slot.
// Free first, then hand the frame to the wire — the same order as the
// closure form (done before WirePacket); the wire hook reads the
// frame synchronously in this event, before any later event can
// recycle the packet.
func txFreeEv(sm *sim.Simulator, a sim.Arg) {
	e := a.Obj.(*Env)
	slot := a.Obj2.(*nic.Slot)
	port := slot.NIC()
	p := slot.Pkt // capture: FreeSlot clears the slot's packet pointer
	e.FreeSlot(slot)
	if port.HasWire() {
		port.WirePacket(sm, p)
	}
}

// Read performs a demand load of one line, returning its latency.
func (e *Env) Read(line mem.LineAddr) sim.Duration {
	return e.Hier.CoreRead(e.Sim.Now(), e.CoreID, line)
}

// Write performs a demand store of one line, returning its latency.
func (e *Env) Write(line mem.LineAddr) sim.Duration {
	return e.Hier.CoreWrite(e.Sim.Now(), e.CoreID, line)
}

// ReadRegion loads every line of a region, returning the region's
// service time under the core's MSHR budget: with MSHRs == 1 the
// latencies simply sum; with more, up to MSHRs fetches overlap and the
// result is the critical path of the resulting schedule.
func (e *Env) ReadRegion(r mem.Region) sim.Duration {
	mshrs := e.cfg.MSHRs
	first := r.Base.Line()
	n := r.NumLines()
	if mshrs <= 1 {
		var total sim.Duration
		for i := 0; i < n; i++ {
			total += e.Read(first + mem.LineAddr(i))
		}
		return total
	}
	// Mini MSHR schedule: issue in order, each fetch occupies a slot
	// for its latency; a full MSHR file stalls issue until the oldest
	// outstanding fetch completes. The completion buffer is reused
	// across calls so the per-packet path allocates nothing.
	if cap(e.outstanding) < mshrs {
		e.outstanding = make([]sim.Duration, 0, mshrs)
	}
	var (
		outstanding = e.outstanding[:0] // completion times relative to start
		now         sim.Duration        // issue cursor
		finish      sim.Duration
	)
	for i := 0; i < n; i++ {
		if len(outstanding) == mshrs {
			// Pop the earliest completion; issue can't proceed before it.
			min, idx := outstanding[0], 0
			for j, c := range outstanding {
				if c < min {
					min, idx = c, j
				}
			}
			outstanding = append(outstanding[:idx], outstanding[idx+1:]...)
			if min > now {
				now = min
			}
		}
		done := now + e.Read(first+mem.LineAddr(i))
		outstanding = append(outstanding, done)
		if done > finish {
			finish = done
		}
	}
	e.outstanding = outstanding[:0]
	return finish
}

// WriteRegion stores every line of a region, returning total latency.
func (e *Env) WriteRegion(r mem.Region) sim.Duration {
	var total sim.Duration
	first := r.Base.Line()
	for i, n := 0, r.NumLines(); i < n; i++ {
		total += e.Write(first + mem.LineAddr(i))
	}
	return total
}

// FreeSlot returns a consumed slot to its ring, self-invalidating its
// buffer and descriptor lines first when the policy says so. Slots
// must be freed in ring order (the ring enforces it). The returned
// duration is the instruction cost of the invalidations (zero when
// self-invalidation is off); run-to-completion callers charge it to
// the core before the next poll.
func (e *Env) FreeSlot(slot *nic.Slot) sim.Duration {
	// Capture identity before Free: the ring clears the tail slot's
	// packet pointer as part of returning it.
	if e.Obs.Tracing() && slot.Pkt != nil && e.Obs.TracingPacket(slot.Pkt.Seq) {
		e.Obs.Emit(obs.Event{Kind: obs.EvFree, Seq: slot.Pkt.Seq, Core: e.CoreID, At: e.Sim.Now()})
	}
	if !e.cfg.SelfInvalidate {
		slot.Ring().Free()
		return 0
	}
	lines := slot.PayloadRegion().NumLines() + slot.Desc.NumLines()
	e.Hier.InvalidateRegionNoWB(e.Sim.Now(), e.CoreID, slot.PayloadRegion())
	e.Hier.InvalidateRegionNoWB(e.Sim.Now(), e.CoreID, slot.Desc)
	slot.Ring().Free()
	return e.invalCost(lines)
}

// invalCost converts an invalidated line count to instruction time.
func (e *Env) invalCost(lines int) sim.Duration {
	if e.cfg.InvalCyclesPerLine <= 0 {
		return 0
	}
	return e.clock.Cycles(e.cfg.InvalCyclesPerLine * int64(lines))
}

// Core runs the polling loop for one physical core.
type Core struct {
	id  int
	cfg Config
	env Env
	app App
	cc  sim.Clock

	// Latencies collects per-packet service latency (arrival at NIC to
	// processing completion).
	Latencies *stats.LatencyDist
	Processed uint64
	// BusyTime accumulates time spent processing (vs. idle polling).
	BusyTime sim.Duration
	// FirstPacketAt / LastDoneAt bracket the measurement for burst
	// processing time (Fig. 10's Exe Time).
	FirstPacketAt sim.Time
	LastDoneAt    sim.Time
	// Interrupts counts wake-ups taken in interrupt mode.
	Interrupts uint64
	// Trace holds per-packet stage records when tracing is enabled.
	Trace []TraceRecord

	// StallsTaken counts injected stalls the polling loop honoured;
	// StallTime accumulates the injected delay actually served.
	StallsTaken uint64
	StallTime   sim.Duration

	started    bool
	irqArmed   bool
	rrNext     int      // round-robin port cursor
	stallUntil sim.Time // injected slow-core stall: no polling before this

	// pollFn is c.poll bound once at Start, so re-poll scheduling does
	// not allocate a method value per event.
	pollFn sim.Event
	// batch and releasable are reused across polls (capacity
	// BatchSize) so the steady-state driver loop allocates nothing.
	batch      []*nic.Slot
	releasable []*nic.Slot
	// In-flight packet state for the argful pkt-done event. A core
	// processes strictly one packet at a time (run to completion), so
	// a single set of fields replaces the per-packet closure captures.
	curIdx     int
	curLat     sim.Duration
	curStart   sim.Time
	curArrival sim.Time
	curSeq     uint64
	curSlot    *nic.Slot
}

// NewCore builds a core bound to its per-port rings and an app.
// Single-port systems pass one NIC; multi-port systems pass all ports
// and the polling loop services them round-robin.
func NewCore(id int, cfg Config, clock sim.Clock, h *hier.Hierarchy, ports []*nic.NIC, app App) *Core {
	if cfg.BatchSize <= 0 {
		panic("cpu: batch size must be positive")
	}
	if cfg.PollInterval <= 0 {
		panic("cpu: poll interval must be positive")
	}
	env := Env{
		CoreID: id,
		Hier:   h,
		Ports:  ports,
		cfg:    cfg,
		clock:  clock,
	}
	for _, p := range ports {
		if p != nil {
			env.Rings = append(env.Rings, p.Ring(id))
		}
	}
	c := &Core{
		id:        id,
		cfg:       cfg,
		app:       app,
		cc:        clock,
		env:       env,
		Latencies: stats.NewLatencyDist(),
	}
	return c
}

// Env exposes the core's environment (used by standalone app drivers).
func (c *Core) Env() *Env { return &c.env }

// Start schedules the driver loop (polling or interrupt-driven).
func (c *Core) Start(s *sim.Simulator) {
	if c.started {
		panic("cpu: core already started")
	}
	c.started = true
	c.env.Sim = s
	if len(c.env.Rings) == 0 {
		panic("cpu: core has no RX rings")
	}
	c.pollFn = c.poll
	c.batch = make([]*nic.Slot, 0, c.cfg.BatchSize)
	c.releasable = make([]*nic.Slot, 0, c.cfg.BatchSize)
	if c.cfg.TraceCapacity > 0 {
		c.Trace = make([]TraceRecord, 0, c.cfg.TraceCapacity)
	}
	switch c.cfg.Driver {
	case DriverInterrupt:
		for _, p := range c.env.Ports {
			p.OnCompletion(c.id, c.interrupt)
		}
		c.irqArmed = true
	default:
		s.At(s.Now(), c.pollFn)
	}
}

// interrupt is the NIC's completion handler: if the core was asleep,
// wake it after the IRQ latency and disable further interrupts until
// the ring drains (NAPI semantics).
func (c *Core) interrupt(s *sim.Simulator) {
	if !c.irqArmed {
		return
	}
	c.irqArmed = false
	c.Interrupts++
	s.After(c.cfg.IRQLatency, c.pollFn)
}

// InjectStall freezes the core's driver loop until now+d — the fault
// model of a slow core (SMI, thermal throttle, noisy-neighbour
// preemption) starving its polling loop while the NIC keeps filling
// the ring. Extending an active stall is allowed; shortening is not.
func (c *Core) InjectStall(now sim.Time, d sim.Duration) {
	until := now.Add(d)
	if until > c.stallUntil {
		c.stallUntil = until
	}
}

// Stalled reports whether the core is inside an injected stall at now.
func (c *Core) Stalled(now sim.Time) bool { return now < c.stallUntil }

// poll implements the driver loop: gather a burst of visible
// descriptors and process it. When idle, a polling driver re-polls
// after PollInterval; an interrupt driver re-arms and sleeps.
func (c *Core) poll(s *sim.Simulator) {
	for {
		if s.Now() < c.stallUntil {
			// Injected slow-core stall: defer the whole loop (including
			// interrupt-mode wakeups) until the stall expires.
			c.StallsTaken++
			c.StallTime += c.stallUntil.Sub(s.Now())
			s.At(c.stallUntil, c.pollFn)
			return
		}
		c.batch = c.batch[:0]
		// Service the ports round-robin, rotating the starting port each
		// poll so no port starves another.
		nRings := len(c.env.Rings)
		start := c.rrNext
		c.rrNext = (c.rrNext + 1) % nRings
		empty := 0
		for len(c.batch) < c.cfg.BatchSize && empty < nRings {
			ring := c.env.Rings[start]
			start = (start + 1) % nRings
			slot := ring.Poll(s.Now())
			if slot == nil {
				empty++
				continue
			}
			empty = 0
			ring.Consume()
			c.batch = append(c.batch, slot)
		}
		if len(c.batch) > 0 {
			break
		}
		if c.cfg.Driver == DriverInterrupt {
			c.irqArmed = true
			return
		}
		// Fuse the idle re-poll: while no other event is pending before
		// the next poll instant, spin the poll loop inline instead of
		// paying a scheduler round trip per empty poll. FuseAt's strict
		// tie handling (any pending event at or before the instant
		// refuses the fuse) makes the inline spin order-identical to the
		// scheduled re-poll, and its horizon check bounds the spin.
		if !s.FuseAt(s.Now().Add(c.cfg.PollInterval)) {
			s.After(c.cfg.PollInterval, c.pollFn)
			return
		}
	}
	if c.FirstPacketAt == 0 && c.Processed == 0 {
		c.FirstPacketAt = s.Now()
	}
	c.releasable = c.releasable[:0]
	c.processNext(s, 0)
}

// processNext runs the batch from entry i: each packet's OnPacket fires
// at its start instant and its retirement at start+lat. When no other
// event is pending in between, the retirement is fused inline
// (sim.FuseAt) and the loop continues to the next packet without a
// scheduler round trip; otherwise the packet's pkt-done is scheduled as
// its own event exactly as before fusion — FuseAt's strict tie handling
// means the fused path is taken only when the two are indistinguishable.
// Per-packet state lives on the Core — a core runs exactly one packet
// at a time, so the fields replace what used to be closure captures.
func (c *Core) processNext(s *sim.Simulator, i int) {
	for {
		slot := c.batch[i]
		start := s.Now()
		extra, deferred := c.app.OnPacket(&c.env, slot)
		// Memory latency accrued by OnPacket is measured by how much the
		// app reports plus the fixed instruction cost.
		lat := c.memLatencyOf(extra) // extra already includes mem time from env calls made by app
		done := start.Add(lat)
		// Capture packet identity now: a fast TX completion can recycle
		// the slot (clearing Pkt) before the pkt-done event fires.
		c.curIdx = i
		c.curLat = lat
		c.curStart = start
		c.curArrival = sim.Time(slot.Pkt.ArrivalTimePS)
		c.curSeq = slot.Pkt.Seq
		c.curSlot = slot
		if !deferred {
			c.releasable = append(c.releasable, slot)
		}
		if !s.FuseAt(done) {
			s.AtArgNamed(done, "pkt-done", pktDoneEv, sim.Arg{Obj: c})
			return
		}
		c.retire(s)
		if c.curIdx+1 >= len(c.batch) {
			c.endBatch(s)
			return
		}
		i = c.curIdx + 1
	}
}

// retire books the in-flight packet's completion at s.Now() (its done
// instant): counters, latency histogram, trace, observability.
func (c *Core) retire(s *sim.Simulator) {
	c.Processed++
	c.BusyTime += c.curLat
	c.LastDoneAt = s.Now()
	c.Latencies.Record(s.Now().Sub(c.curArrival))
	if c.cfg.TraceCapacity > 0 && len(c.Trace) < c.cfg.TraceCapacity {
		c.Trace = append(c.Trace, TraceRecord{
			Seq:     c.curSeq,
			Arrival: c.curArrival,
			Ready:   c.curSlot.ReadyAt,
			Start:   c.curStart,
			Done:    s.Now(),
		})
	}
	if c.env.Obs.TracingPacket(c.curSeq) {
		c.env.Obs.Emit(obs.Event{
			Kind: obs.EvDone, Seq: c.curSeq, Core: c.id, At: s.Now(),
			Arrival: c.curArrival, Ready: c.curSlot.ReadyAt, Start: c.curStart,
		})
	}
}

// endBatch releases the batch's non-deferred buffers in ring order
// (charging the invalidate-instruction cost) and re-polls — inline when
// the free-cost delay fuses, via a scheduled event otherwise.
func (c *Core) endBatch(s *sim.Simulator) {
	c.curSlot = nil
	var freeCost sim.Duration
	for _, sl := range c.releasable {
		freeCost += c.env.FreeSlot(sl)
	}
	c.BusyTime += freeCost
	if freeCost > 0 {
		if s.FuseAt(s.Now().Add(freeCost)) {
			c.poll(s)
			return
		}
		s.After(freeCost, c.pollFn)
		return
	}
	c.poll(s)
}

// pktDoneEv retires the in-flight packet (Arg.Obj is the *Core) and
// either chains to the next batch entry or frees the batch and
// re-polls. It fires only when the retirement could not be fused
// inline (another event interleaved the service interval).
func pktDoneEv(sm *sim.Simulator, a sim.Arg) {
	c := a.Obj.(*Core)
	c.retire(sm)
	if c.curIdx+1 < len(c.batch) {
		c.processNext(sm, c.curIdx+1)
		return
	}
	c.endBatch(sm)
}

// memLatencyOf combines app-reported latency with the per-packet
// instruction cost.
func (c *Core) memLatencyOf(appTime sim.Duration) sim.Duration {
	return appTime + c.cc.Cycles(c.cfg.PerPacketCycles)
}
