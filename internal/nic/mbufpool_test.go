package nic

import (
	"testing"

	"idio/internal/mem"
)

func TestMbufPoolAllocFreeCycle(t *testing.T) {
	p := NewMbufPool(4, mem.NewLayout(0x10000))
	if p.Capacity() != 4 || p.Available() != 4 {
		t.Fatalf("capacity=%d available=%d", p.Capacity(), p.Available())
	}
	a, ok := p.Alloc()
	if !ok {
		t.Fatal("alloc from full pool failed")
	}
	b, _ := p.Alloc()
	if a.Base == b.Base {
		t.Fatal("two live mbufs share a base address")
	}
	if p.Available() != 2 {
		t.Fatalf("available %d, want 2", p.Available())
	}
	p.Free(b)
	// LIFO: the hot buffer comes back first.
	c, _ := p.Alloc()
	if c.Base != b.Base {
		t.Fatal("alloc after free did not return the hot buffer")
	}
	p.Free(c)
	p.Free(a)
	if p.Available() != 4 {
		t.Fatalf("available %d after draining, want 4", p.Available())
	}
}

func TestMbufPoolExhaustionCounts(t *testing.T) {
	p := NewMbufPool(1, mem.NewLayout(0x10000))
	if _, ok := p.Alloc(); !ok {
		t.Fatal("first alloc failed")
	}
	if _, ok := p.Alloc(); ok {
		t.Fatal("alloc on empty pool succeeded")
	}
	if p.AllocFailures != 1 {
		t.Fatalf("AllocFailures %d, want 1", p.AllocFailures)
	}
}

// Double frees would alias two packets onto one buffer; the O(1)
// occupancy check must still catch them, with another buffer in
// between so the failure is not just the full-pool overflow check.
func TestMbufPoolDoubleFreePanics(t *testing.T) {
	p := NewMbufPool(2, mem.NewLayout(0x10000))
	a, _ := p.Alloc()
	b, _ := p.Alloc()
	p.Free(a)
	_ = b // still outstanding: pool is not full when a is freed again
	defer func() {
		if recover() == nil {
			t.Fatal("double free must panic")
		}
	}()
	p.Free(a)
}

// Freeing more buffers than the pool owns trips the overflow check.
func TestMbufPoolOverflowPanics(t *testing.T) {
	p := NewMbufPool(1, mem.NewLayout(0x10000))
	a, _ := p.Alloc()
	p.Free(a)
	defer func() {
		if recover() == nil {
			t.Fatal("free into a full pool must panic")
		}
	}()
	p.Free(a)
}

// A region the pool never handed out must be rejected, not silently
// enqueued as if it were pool-owned.
func TestMbufPoolForeignFreePanics(t *testing.T) {
	p := NewMbufPool(2, mem.NewLayout(0x10000))
	p.Alloc() // keep the pool non-full so the overflow check can't mask this
	foreign := mem.NewLayout(0x200000).Alloc(mem.MbufBytes, mem.MbufBytes)
	defer func() {
		if recover() == nil {
			t.Fatal("foreign free must panic")
		}
	}()
	p.Free(foreign)
}
