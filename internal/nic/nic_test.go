package nic

import (
	"testing"

	idiocore "idio/internal/core"
	"idio/internal/mem"
	"idio/internal/pcie"
	"idio/internal/pkt"
	"idio/internal/sim"
)

// --- Ring tests ---

func newRing(size int) *Ring {
	return NewRing(size, mem.NewLayout(0x10000))
}

func mkPacket(t *testing.T, frameLen int, dscp uint8, srcPort uint16) *pkt.Packet {
	t.Helper()
	f, err := pkt.Build(pkt.Spec{
		SrcIP: pkt.IPv4{10, 0, 0, 1}, DstIP: pkt.IPv4{10, 0, 0, 2},
		SrcPort: srcPort, DstPort: 9000, DSCP: dscp, FrameLen: frameLen,
	})
	if err != nil {
		t.Fatal(err)
	}
	return &pkt.Packet{Frame: f}
}

func TestRingGeometry(t *testing.T) {
	r := newRing(4)
	if r.Size() != 4 || r.Occupancy() != 0 || r.Full() {
		t.Fatal("fresh ring state wrong")
	}
	slots := r.Slots()
	// Descriptors are 128B apart; mbufs 2KB-aligned, non-overlapping.
	for i := 1; i < len(slots); i++ {
		if slots[i].Desc.Base != slots[0].Desc.Base+mem.Addr(i*mem.DescBytes) {
			t.Fatalf("descriptor %d at %v", i, slots[i].Desc.Base)
		}
		if slots[i].Buf.Base%mem.MbufBytes != 0 {
			t.Fatalf("mbuf %d misaligned at %v", i, slots[i].Buf.Base)
		}
	}
}

func TestRingProduceConsumeFreeCycle(t *testing.T) {
	r := newRing(2)
	p := &pkt.Packet{Frame: make([]byte, 100)}
	s1 := r.Produce(p)
	if s1 == nil {
		t.Fatal("produce failed on empty ring")
	}
	if r.Poll(0) != nil {
		t.Fatal("slot must be invisible before Complete")
	}
	r.Complete(s1, 50)
	if r.Poll(49) != nil {
		t.Fatal("slot invisible before ReadyAt")
	}
	got := r.Poll(50)
	if got != s1 {
		t.Fatal("poll must return the completed slot")
	}
	r.Consume()
	if r.Poll(100) != nil {
		t.Fatal("nothing left to poll")
	}
	if r.FreeCount() != 1 {
		t.Fatalf("free count %d", r.FreeCount())
	}
	r.Free()
	if r.Occupancy() != 0 {
		t.Fatal("occupancy after free")
	}
}

func TestRingDropsWhenFull(t *testing.T) {
	r := newRing(2)
	p := &pkt.Packet{Frame: make([]byte, 64)}
	r.Produce(p)
	r.Produce(p)
	if !r.Full() {
		t.Fatal("ring must be full")
	}
	if r.Produce(p) != nil {
		t.Fatal("produce on full ring must fail")
	}
	if r.Drops != 1 {
		t.Fatalf("drops = %d", r.Drops)
	}
}

func TestRingUseDistance(t *testing.T) {
	r := newRing(8)
	p := &pkt.Packet{Frame: make([]byte, 64)}
	for i := 0; i < 5; i++ {
		s := r.Produce(p)
		r.Complete(s, 0)
	}
	if r.UseDistance() != 5 {
		t.Fatalf("use distance %d, want 5", r.UseDistance())
	}
	r.Poll(0)
	r.Consume()
	if r.UseDistance() != 4 {
		t.Fatalf("use distance %d, want 4", r.UseDistance())
	}
}

func TestRingWrapAround(t *testing.T) {
	r := newRing(2)
	p := &pkt.Packet{Frame: make([]byte, 64)}
	for cycle := 0; cycle < 5; cycle++ {
		s := r.Produce(p)
		if s == nil {
			t.Fatalf("cycle %d: produce failed", cycle)
		}
		r.Complete(s, 0)
		if r.Poll(0) != s {
			t.Fatalf("cycle %d: poll mismatch", cycle)
		}
		r.Consume()
		r.Free()
	}
	if r.Occupancy() != 0 {
		t.Fatal("ring must be empty after cycles")
	}
}

func TestRingMisusePanics(t *testing.T) {
	r := newRing(2)
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s must panic", name)
			}
		}()
		fn()
	}
	mustPanic("consume empty", r.Consume)
	mustPanic("free unconsumed", r.Free)
}

// --- Flow Director / RSS tests ---

func tuple(srcPort uint16) pkt.FiveTuple {
	return pkt.FiveTuple{
		Src: pkt.IPv4{10, 0, 0, 1}, Dst: pkt.IPv4{10, 0, 0, 2},
		SrcPort: srcPort, DstPort: 9000, Proto: pkt.ProtoUDP,
	}
}

// Known-answer test for Toeplitz using the canonical Microsoft test
// vectors (IPv4 with ports).
func TestToeplitzKnownVectors(t *testing.T) {
	cases := []struct {
		t    pkt.FiveTuple
		want uint32
	}{
		{pkt.FiveTuple{Src: pkt.IPv4{66, 9, 149, 187}, Dst: pkt.IPv4{161, 142, 100, 80}, SrcPort: 2794, DstPort: 1766}, 0x51ccc178},
		{pkt.FiveTuple{Src: pkt.IPv4{199, 92, 111, 2}, Dst: pkt.IPv4{65, 69, 140, 83}, SrcPort: 14230, DstPort: 4739}, 0xc626b0ea},
		{pkt.FiveTuple{Src: pkt.IPv4{24, 19, 198, 95}, Dst: pkt.IPv4{12, 22, 207, 184}, SrcPort: 12898, DstPort: 38024}, 0x5c2b394a},
		{pkt.FiveTuple{Src: pkt.IPv4{38, 27, 205, 30}, Dst: pkt.IPv4{209, 142, 163, 6}, SrcPort: 48228, DstPort: 2217}, 0xafc7327f},
		{pkt.FiveTuple{Src: pkt.IPv4{153, 39, 163, 191}, Dst: pkt.IPv4{202, 188, 127, 2}, SrcPort: 44251, DstPort: 1303}, 0x10e828a2},
	}
	for i, c := range cases {
		if got := Toeplitz(c.t); got != c.want {
			t.Errorf("vector %d: hash %#x, want %#x", i, got, c.want)
		}
	}
}

func TestFlowDirectorEPBeatsATRAndRSS(t *testing.T) {
	fd := NewFlowDirector(4)
	tp := tuple(1000)
	fd.Learn(tp, 2)
	fd.AddEPRule(tp, 3)
	if got := fd.Steer(tp); got != 3 {
		t.Fatalf("EP rule must win: steered to %d", got)
	}
	if fd.EPHits != 1 {
		t.Fatal("EP hit not counted")
	}
}

func TestFlowDirectorATR(t *testing.T) {
	fd := NewFlowDirector(4)
	tp := tuple(2000)
	fd.Learn(tp, 1)
	if got := fd.Steer(tp); got != 1 {
		t.Fatalf("ATR steered to %d, want 1", got)
	}
	if fd.ATRHits != 1 {
		t.Fatal("ATR hit not counted")
	}
}

func TestFlowDirectorRSSFallbackDeterministicAndBounded(t *testing.T) {
	fd := NewFlowDirector(4)
	seen := map[int]bool{}
	for port := uint16(1); port < 200; port++ {
		c1 := fd.Steer(tuple(port))
		c2 := fd.Steer(tuple(port))
		if c1 != c2 {
			t.Fatal("RSS must be deterministic per flow")
		}
		if c1 < 0 || c1 >= 4 {
			t.Fatalf("core %d out of range", c1)
		}
		seen[c1] = true
	}
	if len(seen) < 2 {
		t.Fatal("RSS should spread flows across cores")
	}
	if fd.RSSFalls == 0 {
		t.Fatal("fallbacks not counted")
	}
}

// --- NIC DMA tests ---

// recordingSink captures the TLP stream.
type recordingSink struct {
	writes []pcie.WriteTLP
	wTimes []sim.Time
	reads  []uint64
	rTimes []sim.Time
}

func (r *recordingSink) DMAWrite(now sim.Time, tlp pcie.WriteTLP) sim.Duration {
	r.writes = append(r.writes, tlp)
	r.wTimes = append(r.wTimes, now)
	return 0
}

func (r *recordingSink) DMARead(now sim.Time, line uint64) sim.Duration {
	r.reads = append(r.reads, line)
	r.rTimes = append(r.rTimes, now)
	return 0
}

func newNIC(t *testing.T, queues, ringSize int) (*NIC, *recordingSink, *sim.Simulator) {
	t.Helper()
	sink := &recordingSink{}
	cls := idiocore.NewClassifier(idiocore.DefaultClassifierConfig(queues))
	fd := NewFlowDirector(queues)
	cfg := DefaultConfig(queues)
	cfg.RingSize = ringSize
	cfg.DescWBDelay = 100 * sim.Nanosecond
	n := New(cfg, mem.NewLayout(0x100000), sink, cls, fd)
	return n, sink, sim.New()
}

func TestReceiveDMAsPayloadThenDescriptor(t *testing.T) {
	n, sink, s := newNIC(t, 1, 16)
	p := mkPacket(t, 1514, 0, 1234)
	s.At(0, func(sm *sim.Simulator) { n.Receive(sm, p) })
	s.Run()
	// 1514B = 24 lines (mbuf is 2KB aligned) + 2 descriptor lines.
	if len(sink.writes) != 26 {
		t.Fatalf("DMA writes = %d, want 26", len(sink.writes))
	}
	// First line carries the header flag; subsequent payload lines
	// don't.
	if !sink.writes[0].Meta().IsHeader {
		t.Fatal("first line must be tagged isHeader")
	}
	for i := 1; i < 24; i++ {
		if sink.writes[i].Meta().IsHeader {
			t.Fatalf("line %d tagged isHeader", i)
		}
	}
	// Lines are paced at the wire rate: monotonically increasing
	// timestamps with equal spacing.
	lt := n.lineTime()
	for i := 1; i < len(sink.wTimes); i++ {
		if sink.wTimes[i].Sub(sink.wTimes[i-1]) != lt {
			t.Fatalf("pacing gap %v at line %d, want %v", sink.wTimes[i].Sub(sink.wTimes[i-1]), i, lt)
		}
	}
	// Payload lines cover the slot's buffer contiguously.
	slot := &n.Ring(0).Slots()[0]
	if sink.writes[0].LineAddr != uint64(slot.Buf.Base.Line()) {
		t.Fatal("first payload line must be the mbuf base")
	}
	// Descriptor lines target the descriptor region.
	if sink.writes[24].LineAddr != uint64(slot.Desc.Base.Line()) {
		t.Fatal("descriptor line mismatch")
	}
}

func TestReceiveVisibilityAfterCoalescing(t *testing.T) {
	n, _, s := newNIC(t, 1, 16)
	p := mkPacket(t, 1514, 0, 42)
	var readyAt sim.Time
	s.At(0, func(sm *sim.Simulator) { n.Receive(sm, p) })
	s.Run()
	ring := n.Ring(0)
	slot := ring.Poll(sim.Time(1 * sim.Millisecond))
	if slot == nil {
		t.Fatal("slot never became visible")
	}
	readyAt = slot.ReadyAt
	// Visibility = 26 line times + 100ns coalescing delay.
	want := sim.Time(26*int64(n.lineTime())) + sim.Time(100*sim.Nanosecond)
	if readyAt != want {
		t.Fatalf("ready at %v, want %v", readyAt, want)
	}
}

func TestReceiveFullRingDrops(t *testing.T) {
	n, sink, s := newNIC(t, 1, 2)
	for i := 0; i < 5; i++ {
		p := mkPacket(t, 1514, 0, uint16(100+i))
		s.At(sim.Time(i), func(sm *sim.Simulator) { n.Receive(sm, p) })
	}
	s.Run()
	st := n.Stats()
	if st.RxPackets != 2 || st.RxDrops != 3 {
		t.Fatalf("rx=%d drops=%d", st.RxPackets, st.RxDrops)
	}
	// Dropped packets generate no DMA traffic.
	if len(sink.writes) != 2*26 {
		t.Fatalf("writes = %d, want 52", len(sink.writes))
	}
}

func TestReceiveSteersByFlowDirector(t *testing.T) {
	sink := &recordingSink{}
	cls := idiocore.NewClassifier(idiocore.DefaultClassifierConfig(2))
	fd := NewFlowDirector(2)
	cfg := DefaultConfig(2)
	cfg.RingSize = 8
	n := New(cfg, mem.NewLayout(0x100000), sink, cls, fd)
	s := sim.New()
	p := mkPacket(t, 200, 0, 7777)
	fields, _ := pkt.Parse(p.Frame)
	fd.AddEPRule(fields.Tuple(), 1)
	s.At(0, func(sm *sim.Simulator) { n.Receive(sm, p) })
	s.Run()
	if n.Ring(1).Occupancy() != 1 || n.Ring(0).Occupancy() != 0 {
		t.Fatal("packet must land on ring 1")
	}
	// TLP metadata must carry destCore 1.
	if sink.writes[0].Meta().DestCore != 1 {
		t.Fatalf("meta %+v", sink.writes[0].Meta())
	}
}

func TestReceiveTagsAppClassFromDSCP(t *testing.T) {
	sink := &recordingSink{}
	clsCfg := idiocore.DefaultClassifierConfig(1)
	clsCfg.ClassOneDSCPs = []uint8{46}
	cls := idiocore.NewClassifier(clsCfg)
	n := New(DefaultConfig(1), mem.NewLayout(0x100000), sink, cls, NewFlowDirector(1))
	s := sim.New()
	p := mkPacket(t, 500, 46, 1)
	s.At(0, func(sm *sim.Simulator) { n.Receive(sm, p) })
	s.Run()
	m := sink.writes[1].Meta() // payload line
	if m.AppClass != 1 {
		t.Fatalf("payload meta %+v", m)
	}
	// Header line is class 1 too but flagged header.
	if !sink.writes[0].Meta().IsHeader || sink.writes[0].Meta().AppClass != 1 {
		t.Fatalf("header meta %+v", sink.writes[0].Meta())
	}
}

func TestBurstTaggingAboveThreshold(t *testing.T) {
	n, sink, s := newNIC(t, 1, 64)
	// A 600B packet stays under the 1250B/1us threshold; the next
	// packet in the same window crosses it.
	s.At(0, func(sm *sim.Simulator) { n.Receive(sm, mkPacket(t, 600, 0, 1)) })
	s.At(1, func(sm *sim.Simulator) { n.Receive(sm, mkPacket(t, 1514, 0, 2)) })
	s.Run()
	if sink.writes[0].Meta().IsBurst {
		t.Fatal("first packet under threshold must not be burst-tagged")
	}
	last := sink.writes[len(sink.writes)-1]
	if !last.Meta().IsBurst {
		t.Fatal("second packet must be burst-tagged")
	}
}

func TestTransmitPacedReadsAndCompletion(t *testing.T) {
	n, sink, s := newNIC(t, 1, 16)
	region := mem.Region{Base: 0x200000, Size: 1514}
	var doneAt sim.Time
	s.At(0, func(sm *sim.Simulator) {
		n.Transmit(sm, region, func(at sim.Time) { doneAt = at })
	})
	s.Run()
	if len(sink.reads) != 24 {
		t.Fatalf("reads = %d, want 24", len(sink.reads))
	}
	wantDone := sim.Time(24 * int64(n.lineTime()))
	if doneAt != wantDone {
		t.Fatalf("done at %v, want %v", doneAt, wantDone)
	}
	if n.Stats().TxPackets != 1 {
		t.Fatal("tx not counted")
	}
}

func TestDMAEngineSerialisesAcrossQueues(t *testing.T) {
	n, sink, s := newNIC(t, 2, 16)
	fd := n.flowdir
	p0 := mkPacket(t, 1514, 0, 10)
	p1 := mkPacket(t, 1514, 0, 11)
	f0, _ := pkt.Parse(p0.Frame)
	f1, _ := pkt.Parse(p1.Frame)
	fd.AddEPRule(f0.Tuple(), 0)
	fd.AddEPRule(f1.Tuple(), 1)
	s.At(0, func(sm *sim.Simulator) {
		n.Receive(sm, p0)
		n.Receive(sm, p1)
	})
	s.Run()
	// The second packet's lines must start after the first finishes:
	// all timestamps strictly increasing with uniform spacing.
	for i := 1; i < len(sink.wTimes); i++ {
		if sink.wTimes[i] <= sink.wTimes[i-1] {
			t.Fatalf("engine overlap at %d", i)
		}
	}
	if len(sink.writes) != 52 {
		t.Fatalf("writes %d", len(sink.writes))
	}
}

func TestMalformedFrameDropped(t *testing.T) {
	n, sink, s := newNIC(t, 1, 16)
	s.At(0, func(sm *sim.Simulator) {
		n.Receive(sm, &pkt.Packet{Frame: make([]byte, 20)})
	})
	s.Run()
	if len(sink.writes) != 0 {
		t.Fatal("malformed frame must not DMA")
	}
	if n.Stats().RxDrops != 1 {
		t.Fatal("drop not counted")
	}
}
