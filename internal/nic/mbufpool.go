// MbufPool implements the DPDK-style packet buffer pool that backs the
// "re-allocate" recycling mode (Sec. II-B, M2): the ring's descriptors
// point at pool buffers, the application detaches a filled buffer for
// deferred processing and replenishes the descriptor with a fresh one,
// returning the detached buffer to the pool once processed.

package nic

import (
	"fmt"

	"idio/internal/mem"
)

// MbufPool hands out fixed-size 2 KB buffers from a preallocated
// region, LIFO (hot buffers are reused first, as DPDK mempools with
// per-core caches behave). The free list holds buffer indices and an
// occupancy bit per buffer tracks residency, so Alloc and Free — both
// on the per-packet path in re-allocate mode — are O(1); Free's
// double-free and foreign-buffer checks are index lookups, not scans.
type MbufPool struct {
	free   []int32          // indices into all, LIFO
	all    []mem.Region     // every buffer, for DMA mapping/registration
	byBase map[uint64]int32 // buffer base address → index
	inPool []bool           // occupancy: true when the buffer sits in free

	// AllocFailures counts allocation attempts on an empty pool.
	AllocFailures uint64
	capacity      int
}

// NewMbufPool carves n buffers out of the layout.
func NewMbufPool(n int, ly *mem.Layout) *MbufPool {
	if n <= 0 {
		panic(fmt.Sprintf("nic: mbuf pool size %d", n))
	}
	p := &MbufPool{
		capacity: n,
		byBase:   make(map[uint64]int32, n),
		inPool:   make([]bool, n),
	}
	for i := 0; i < n; i++ {
		b := ly.Alloc(mem.MbufBytes, mem.MbufBytes)
		p.free = append(p.free, int32(i))
		p.all = append(p.all, b)
		p.byBase[uint64(b.Base)] = int32(i)
		p.inPool[i] = true
	}
	return p
}

// Buffers returns every buffer in the pool (free or not), for
// registering DMA mappings and Invalidatable pages.
func (p *MbufPool) Buffers() []mem.Region { return p.all }

// Capacity returns the total buffer count.
func (p *MbufPool) Capacity() int { return p.capacity }

// Available returns the free buffer count.
func (p *MbufPool) Available() int { return len(p.free) }

// Alloc takes a buffer from the pool.
func (p *MbufPool) Alloc() (mem.Region, bool) {
	if len(p.free) == 0 {
		p.AllocFailures++
		return mem.Region{}, false
	}
	i := p.free[len(p.free)-1]
	p.free = p.free[:len(p.free)-1]
	p.inPool[i] = false
	return p.all[i], true
}

// Free returns a buffer to the pool. Double frees are a programming
// error and panic (they would alias two packets onto one buffer), as
// is returning a buffer the pool never owned. Both checks are O(1):
// the buffer's base address indexes its occupancy bit.
func (p *MbufPool) Free(b mem.Region) {
	if len(p.free) == p.capacity {
		panic("nic: mbuf pool overflow (double free?)")
	}
	i, ok := p.byBase[uint64(b.Base)]
	if !ok {
		panic(fmt.Sprintf("nic: free of foreign mbuf %v", b.Base))
	}
	if p.inPool[i] {
		panic(fmt.Sprintf("nic: double free of mbuf %v", b.Base))
	}
	p.inPool[i] = true
	p.free = append(p.free, i)
}
