// MbufPool implements the DPDK-style packet buffer pool that backs the
// "re-allocate" recycling mode (Sec. II-B, M2): the ring's descriptors
// point at pool buffers, the application detaches a filled buffer for
// deferred processing and replenishes the descriptor with a fresh one,
// returning the detached buffer to the pool once processed.

package nic

import (
	"fmt"

	"idio/internal/mem"
)

// MbufPool hands out fixed-size 2 KB buffers from a preallocated
// region, LIFO (hot buffers are reused first, as DPDK mempools with
// per-core caches behave).
type MbufPool struct {
	free []mem.Region
	all  []mem.Region // every buffer, for DMA mapping/registration

	// AllocFailures counts allocation attempts on an empty pool.
	AllocFailures uint64
	capacity      int
}

// NewMbufPool carves n buffers out of the layout.
func NewMbufPool(n int, ly *mem.Layout) *MbufPool {
	if n <= 0 {
		panic(fmt.Sprintf("nic: mbuf pool size %d", n))
	}
	p := &MbufPool{capacity: n}
	for i := 0; i < n; i++ {
		b := ly.Alloc(mem.MbufBytes, mem.MbufBytes)
		p.free = append(p.free, b)
		p.all = append(p.all, b)
	}
	return p
}

// Buffers returns every buffer in the pool (free or not), for
// registering DMA mappings and Invalidatable pages.
func (p *MbufPool) Buffers() []mem.Region { return p.all }

// Capacity returns the total buffer count.
func (p *MbufPool) Capacity() int { return p.capacity }

// Available returns the free buffer count.
func (p *MbufPool) Available() int { return len(p.free) }

// Alloc takes a buffer from the pool.
func (p *MbufPool) Alloc() (mem.Region, bool) {
	if len(p.free) == 0 {
		p.AllocFailures++
		return mem.Region{}, false
	}
	b := p.free[len(p.free)-1]
	p.free = p.free[:len(p.free)-1]
	return b, true
}

// Free returns a buffer to the pool. Double frees are a programming
// error and panic (they would alias two packets onto one buffer).
func (p *MbufPool) Free(b mem.Region) {
	if len(p.free) == p.capacity {
		panic("nic: mbuf pool overflow (double free?)")
	}
	for _, f := range p.free {
		if f.Base == b.Base {
			panic(fmt.Sprintf("nic: double free of mbuf %v", b.Base))
		}
	}
	p.free = append(p.free, b)
}
