// Package nic models the network interface card: per-core RX
// descriptor rings, a bandwidth-paced DMA engine, Flow Director packet
// steering, the IDIO classifier hookup, descriptor write-back
// coalescing, and the TX (egress) DMA read path.
package nic

import (
	"fmt"

	idiocore "idio/internal/core"
	"idio/internal/mem"
	"idio/internal/pcie"
	"idio/internal/pkt"
	"idio/internal/sim"
)

// Sink is the host side of the PCIe link — the root complex. The NIC
// pushes write TLPs (RX DMA) and read TLPs (TX DMA) into it.
type Sink interface {
	DMAWrite(now sim.Time, tlp pcie.WriteTLP) sim.Duration
	DMARead(now sim.Time, lineAddr uint64) sim.Duration
}

// Config describes the NIC.
type Config struct {
	NumQueues int // one RX queue (and ring) per core
	RingSize  int // descriptors per ring (DPDK default 1024)
	// LineRateBps is the PCIe-side DMA bandwidth in bits per second.
	// Two 100 Gbps ports behind a x16 link give ~200 Gbps usable.
	LineRateBps int64
	// DescWBDelay is the descriptor write-back coalescing delay: the
	// lag between a packet's last payload line landing and its
	// descriptor becoming visible to the polling driver. Sec. VII
	// observes ~1.9 µs between first DMA and execution start.
	DescWBDelay sim.Duration
}

// DefaultConfig follows Table I and Sec. VI.
func DefaultConfig(queues int) Config {
	return Config{
		NumQueues:   queues,
		RingSize:    1024,
		LineRateBps: 200_000_000_000,
		DescWBDelay: 1900 * sim.Nanosecond,
	}
}

// Stats aggregates NIC-side counters.
type Stats struct {
	RxPackets uint64
	RxBytes   uint64
	RxDrops   uint64
	TxPackets uint64
	DMAWrites uint64 // payload+descriptor line writes
	DMAReads  uint64 // TX line reads
	// PoolDrops counts packets rejected because the mbuf pool was
	// exhausted (pooled rings only).
	PoolDrops uint64
	// LinkDownDrops counts packets lost while the link was down
	// (injected flaps).
	LinkDownDrops uint64
	// MisSteers counts packets the flow director steered to a
	// non-existent queue; they are dropped instead of crashing.
	MisSteers uint64
	// InvariantViolations counts internal errors (e.g. metadata that
	// failed to encode) handled by dropping the affected DMA instead of
	// panicking. Non-zero values indicate a bug or an injected fault
	// reaching an encode path.
	InvariantViolations uint64
}

// NIC is the device model. Incoming packets (from a traffic generator)
// enter via Receive; the CPU model polls rings via Ring and transmits
// via Transmit.
type NIC struct {
	cfg        Config
	sink       Sink
	classifier *idiocore.Classifier
	flowdir    *FlowDirector
	rings      []*Ring
	txRings    []*TXRing
	layout     *mem.Layout

	// engineFree is when the DMA engine can start the next line
	// transfer (shared across queues — one PCIe link).
	engineFree sim.Time

	// completionHooks fire after a descriptor write-back makes a
	// packet visible on a queue — the interrupt line for
	// interrupt-mode drivers. Polling-mode drivers leave them nil.
	completionHooks []func(*sim.Simulator)

	// linkDown, when true, drops every arriving packet (an injected
	// link flap). In-flight DMA is unaffected, as on real hardware.
	linkDown bool

	// invariantHook, when set, observes invariant violations (for
	// logging or test assertions) after the counter increments.
	invariantHook func(error)

	stats Stats
}

// New builds a NIC, carving its rings out of the layout.
func New(cfg Config, ly *mem.Layout, sink Sink, classifier *idiocore.Classifier, fd *FlowDirector) *NIC {
	if cfg.NumQueues <= 0 {
		panic("nic: need at least one queue")
	}
	if cfg.LineRateBps <= 0 {
		panic("nic: line rate must be positive")
	}
	n := &NIC{
		cfg: cfg, sink: sink, classifier: classifier, flowdir: fd,
		completionHooks: make([]func(*sim.Simulator), cfg.NumQueues),
		txRings:         make([]*TXRing, cfg.NumQueues),
		layout:          ly,
	}
	for i := 0; i < cfg.NumQueues; i++ {
		n.rings = append(n.rings, NewRing(cfg.RingSize, ly))
		n.txRings[i] = NewTXRing(cfg.RingSize, ly)
	}
	return n
}

// SetCompletionHook installs the queue's completion interrupt handler.
func (n *NIC) SetCompletionHook(q int, fn func(*sim.Simulator)) {
	n.completionHooks[q] = fn
}

// Ring returns queue q's descriptor ring.
func (n *NIC) Ring(q int) *Ring { return n.rings[q] }

// Stats returns a copy of the counters.
func (n *NIC) Stats() Stats {
	s := n.stats
	for _, r := range n.rings {
		s.RxDrops += r.Drops
		s.PoolDrops += r.PoolDrops
	}
	return s
}

// SetLinkState raises or drops the link. While down, arriving packets
// are lost (counted in LinkDownDrops); DMA already scheduled keeps
// flowing, matching a MAC-level flap.
func (n *NIC) SetLinkState(up bool) { n.linkDown = !up }

// LinkUp reports the current link state.
func (n *NIC) LinkUp() bool { return !n.linkDown }

// StallDMA holds the DMA engine for d beyond its current free point —
// a paced-DMA stall (PCIe credit exhaustion, retrained link). Returns
// when the engine will next be available.
func (n *NIC) StallDMA(now sim.Time, d sim.Duration) sim.Time {
	if n.engineFree < now {
		n.engineFree = now
	}
	n.engineFree = n.engineFree.Add(d)
	return n.engineFree
}

// SetInvariantHook installs an observer called on every invariant
// violation (after the counter increments).
func (n *NIC) SetInvariantHook(fn func(error)) { n.invariantHook = fn }

// invariant records an internal error on a named path and drops the
// offending work instead of crashing the process. A faulted DMA must
// degrade the run, not kill it.
func (n *NIC) invariant(path string, err error) {
	n.stats.InvariantViolations++
	if n.invariantHook != nil {
		n.invariantHook(fmt.Errorf("nic: invariant violation on %s: %w", path, err))
	}
}

// lineTime is the wire time of one 64-byte transfer at the DMA rate.
func (n *NIC) lineTime() sim.Duration {
	return sim.Duration(64 * 8 * int64(sim.Second) / n.cfg.LineRateBps)
}

// reserveEngine serialises the DMA engine: returns the start time for
// a transfer of nLines beginning no earlier than now.
func (n *NIC) reserveEngine(now sim.Time, nLines int) (start, end sim.Time) {
	start = now
	if n.engineFree > start {
		start = n.engineFree
	}
	end = start.Add(sim.Duration(int64(n.lineTime()) * int64(nLines)))
	n.engineFree = end
	return start, end
}

// Receive ingests one packet at the current simulation time: steer to
// a core, admit to the ring (or drop), and schedule the paced DMA of
// payload lines followed by the coalesced descriptor write-back.
func (n *NIC) Receive(s *sim.Simulator, p *pkt.Packet) {
	if n.linkDown {
		n.stats.LinkDownDrops++
		return
	}
	fields, err := pkt.Parse(p.Frame)
	if err != nil {
		// Undecodable frames are dropped by the parser stage.
		n.stats.RxDrops++
		return
	}
	coreID := n.flowdir.Steer(fields.Tuple())
	if coreID < 0 || coreID >= n.cfg.NumQueues {
		// A rule steering to a non-existent queue (misprogrammed flow
		// director) drops the packet rather than crashing the device.
		n.stats.MisSteers++
		n.invariant("rx-steer", fmt.Errorf("flow director steered to core %d with %d queues", coreID, n.cfg.NumQueues))
		return
	}
	ring := n.rings[coreID]
	slot := ring.Produce(p)
	if slot == nil {
		return // ring full: counted by the ring
	}
	slot.owner = n
	now := s.Now()
	p.ArrivalTimePS = int64(now)
	n.stats.RxPackets++
	n.stats.RxBytes += uint64(p.Len())

	appClass := n.classifier.AppClass(fields.DSCP)
	inBurst := n.classifier.AccountPacket(now, coreID, p.Len())
	slot.AppClass = appClass

	payload := slot.PayloadRegion()
	nLines := payload.NumLines()
	descLines := slot.Desc.NumLines()
	start, _ := n.reserveEngine(now, nLines+descLines)

	// Schedule each payload line write at its paced instant.
	lt := n.lineTime()
	i := 0
	payload.Lines(func(line mem.LineAddr) {
		idx := i
		i++
		at := start.Add(sim.Duration(int64(lt) * int64(idx)))
		meta := n.classifier.Tag(appClass, coreID, idx == 0, inBurst)
		tlp, err := pcie.NewWriteTLP(uint64(line), meta)
		if err != nil {
			// The line's DMA is skipped; the packet degrades rather
			// than the process dying mid-run.
			n.invariant("dma-write", err)
			return
		}
		s.AtNamed(at, "dma-write", func(sm *sim.Simulator) {
			n.stats.DMAWrites++
			n.sink.DMAWrite(sm.Now(), tlp)
		})
	})
	// Descriptor lines follow the payload on the wire; visibility to
	// the driver is additionally delayed by the coalescing window.
	descStart := start.Add(sim.Duration(int64(lt) * int64(nLines)))
	j := 0
	slot.Desc.Lines(func(line mem.LineAddr) {
		idx := j
		j++
		at := descStart.Add(sim.Duration(int64(lt) * int64(idx)))
		meta := n.classifier.Tag(appClass, coreID, false, inBurst)
		tlp, err := pcie.NewWriteTLP(uint64(line), meta)
		if err != nil {
			n.invariant("desc-write", err)
			return
		}
		s.AtNamed(at, "desc-write", func(sm *sim.Simulator) {
			n.stats.DMAWrites++
			n.sink.DMAWrite(sm.Now(), tlp)
		})
	})
	readyAt := descStart.Add(sim.Duration(int64(lt)*int64(descLines)) + n.cfg.DescWBDelay)
	s.AtNamed(readyAt, "desc-visible", func(sm *sim.Simulator) {
		ring.Complete(slot, sm.Now())
		if hook := n.completionHooks[coreID]; hook != nil {
			hook(sm)
		}
	})
}

// Transmit performs the egress path for a zero-copy forwarder: paced
// PCIe reads of the packet's lines, then the done callback (used by
// the software stack to recycle the buffer). Descriptor bookkeeping on
// TX is folded into the per-line reads.
func (n *NIC) Transmit(s *sim.Simulator, payload mem.Region, done func(sim.Time)) {
	nLines := payload.NumLines()
	start, end := n.reserveEngine(s.Now(), nLines)
	lt := n.lineTime()
	i := 0
	payload.Lines(func(line mem.LineAddr) {
		idx := i
		i++
		at := start.Add(sim.Duration(int64(lt) * int64(idx)))
		la := uint64(line)
		s.AtNamed(at, "dma-read", func(sm *sim.Simulator) {
			n.stats.DMAReads++
			n.sink.DMARead(sm.Now(), la)
		})
	})
	n.stats.TxPackets++
	if done != nil {
		s.AtNamed(end, "tx-done", func(sm *sim.Simulator) { done(sm.Now()) })
	}
}
