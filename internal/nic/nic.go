// Package nic models the network interface card: per-core RX
// descriptor rings, a bandwidth-paced DMA engine, Flow Director packet
// steering, the IDIO classifier hookup, descriptor write-back
// coalescing, and the TX (egress) DMA read path.
package nic

import (
	"fmt"

	idiocore "idio/internal/core"
	"idio/internal/mem"
	"idio/internal/obs"
	"idio/internal/pcie"
	"idio/internal/pkt"
	"idio/internal/qos"
	"idio/internal/sim"
)

// Sink is the host side of the PCIe link — the root complex. The NIC
// pushes write TLPs (RX DMA) and read TLPs (TX DMA) into it.
type Sink interface {
	DMAWrite(now sim.Time, tlp pcie.WriteTLP) sim.Duration
	DMARead(now sim.Time, lineAddr uint64) sim.Duration
}

// Config describes the NIC.
type Config struct {
	NumQueues int // one RX queue (and ring) per core
	RingSize  int // descriptors per ring (DPDK default 1024)
	// LineRateBps is the PCIe-side DMA bandwidth in bits per second.
	// Two 100 Gbps ports behind a x16 link give ~200 Gbps usable.
	LineRateBps int64
	// DescWBDelay is the descriptor write-back coalescing delay: the
	// lag between a packet's last payload line landing and its
	// descriptor becoming visible to the polling driver. Sec. VII
	// observes ~1.9 µs between first DMA and execution start.
	DescWBDelay sim.Duration
	// AdmissionWatermark, when > 0, enables host admission control:
	// a packet steered to a ring whose occupancy has reached the
	// watermark is shed (AdmissionDrops) before consuming a descriptor,
	// modeling graceful load-shedding when the service path is
	// saturated. 0 admits until the ring itself is full.
	AdmissionWatermark int
}

// DefaultConfig follows Table I and Sec. VI.
func DefaultConfig(queues int) Config {
	return Config{
		NumQueues:   queues,
		RingSize:    1024,
		LineRateBps: 200_000_000_000,
		DescWBDelay: 1900 * sim.Nanosecond,
	}
}

// Stats aggregates NIC-side counters.
type Stats struct {
	RxPackets uint64
	RxBytes   uint64
	RxDrops   uint64
	TxPackets uint64
	DMAWrites uint64 // payload+descriptor line writes
	DMAReads  uint64 // TX line reads
	// PoolDrops counts packets rejected because the mbuf pool was
	// exhausted (pooled rings only).
	PoolDrops uint64
	// LinkDownDrops counts packets lost while the link was down
	// (injected flaps).
	LinkDownDrops uint64
	// MisSteers counts packets the flow director steered to a
	// non-existent queue; they are dropped instead of crashing.
	MisSteers uint64
	// AdmissionDrops counts packets shed by the admission-control
	// watermark before reaching the ring (0 with the watermark unset).
	AdmissionDrops uint64
	// InvariantViolations counts internal errors (e.g. metadata that
	// failed to encode) handled by dropping the affected DMA instead of
	// panicking. Non-zero values indicate a bug or an injected fault
	// reaching an encode path.
	InvariantViolations uint64
}

// NIC is the device model. Incoming packets (from a traffic generator)
// enter via Receive; the CPU model polls rings via Ring and transmits
// via Transmit.
type NIC struct {
	cfg        Config
	sink       Sink
	classifier *idiocore.Classifier
	flowdir    *FlowDirector
	rings      []*Ring
	txRings    []*TXRing
	layout     *mem.Layout

	// engineFree is when the DMA engine can start the next line
	// transfer (shared across queues — one PCIe link).
	engineFree sim.Time

	// completionHooks are the per-queue handlers registered through
	// OnCompletion — the interrupt line for interrupt-mode drivers
	// plus any observers — fired in registration order.
	completionHooks [][]func(*sim.Simulator)

	// linkDown, when true, drops every arriving packet (an injected
	// link flap). In-flight DMA is unaffected, as on real hardware.
	linkDown bool

	// invariantHooks are the OnInvariant registrations, fired in
	// registration order on every invariant violation.
	invariantHooks []func(error)

	// obs receives the packet-journey trace events (rx, drop, dma)
	// for sampled packets. A nil observer costs one branch per packet.
	obs *obs.Observer

	// wire is the egress hook: when set, every transmitted packet is
	// handed to it at TX-DMA completion time (the instant the frame
	// would hit the wire). The network fabric installs it to carry NF
	// responses back to clients; nil (the default) keeps the historical
	// transmit-and-forget behaviour.
	wire func(s *sim.Simulator, p *pkt.Packet)

	// pktPool, when set, is the packet pool generators feeding this
	// port draw from (see traffic.PacketPooler): packets recycle
	// generator → ring → service → Ring.Free → pool without touching
	// the heap. The System installs its per-host pool here.
	pktPool *pkt.Pool

	// qosMap, when set, is the DSCP→class filter-table entry: every
	// admitted packet's class is cached in its slot, carried in the
	// DMA TLP metadata, and counted per class. Nil (the default)
	// leaves every packet class 0 — the exact pre-QoS data plane.
	qosMap       *qos.Map
	classRxPkts  [qos.NumClasses]uint64
	classRxBytes [qos.NumClasses]uint64

	stats Stats
}

// New builds a NIC, carving its rings out of the layout.
func New(cfg Config, ly *mem.Layout, sink Sink, classifier *idiocore.Classifier, fd *FlowDirector) *NIC {
	if cfg.NumQueues <= 0 {
		panic("nic: need at least one queue")
	}
	if cfg.LineRateBps <= 0 {
		panic("nic: line rate must be positive")
	}
	n := &NIC{
		cfg: cfg, sink: sink, classifier: classifier, flowdir: fd,
		completionHooks: make([][]func(*sim.Simulator), cfg.NumQueues),
		txRings:         make([]*TXRing, cfg.NumQueues),
		layout:          ly,
	}
	for i := 0; i < cfg.NumQueues; i++ {
		n.rings = append(n.rings, NewRing(cfg.RingSize, ly))
		n.txRings[i] = NewTXRing(cfg.RingSize, ly)
	}
	return n
}

// OnCompletion registers a handler fired after each descriptor
// write-back on queue q, in registration order. Interrupt-mode
// drivers register their interrupt line here; observers compose by
// registering alongside it (use System.OnCompletion to register
// across ports).
func (n *NIC) OnCompletion(q int, fn func(*sim.Simulator)) {
	if fn == nil {
		return
	}
	n.completionHooks[q] = append(n.completionHooks[q], fn)
}

// SetObserver attaches the observability layer. A nil observer (the
// default) disables all trace emission at the cost of one branch.
func (n *NIC) SetObserver(o *obs.Observer) { n.obs = o }

// SetWire installs the egress hook: fn receives every transmitted
// packet at its TX-DMA completion time. Nil (the default) disables
// egress delivery — TX stays the historical transmit-and-forget path,
// so single-host runs are unaffected.
func (n *NIC) SetWire(fn func(s *sim.Simulator, p *pkt.Packet)) { n.wire = fn }

// HasWire reports whether an egress hook is installed; callers use it
// to skip packet capture entirely on the historical path.
func (n *NIC) HasWire() bool { return n.wire != nil }

// WirePacket hands a transmitted packet to the egress hook, if one is
// installed. The software stack calls it from TX done callbacks with
// the packet captured before the slot was recycled.
func (n *NIC) WirePacket(s *sim.Simulator, p *pkt.Packet) {
	if n.wire != nil && p != nil {
		n.wire(s, p)
	}
}

// SetPacketPool installs the pool handed to generators that feed this
// port (nil disables discovery; generators fall back to private pools).
func (n *NIC) SetPacketPool(p *pkt.Pool) { n.pktPool = p }

// PacketPool exposes the port's packet pool to traffic generators
// (implements traffic.PacketPooler).
func (n *NIC) PacketPool() *pkt.Pool { return n.pktPool }

// SetQoSMap installs the DSCP→class map in the filter table (nil
// disarms class mapping; every packet reverts to class 0).
func (n *NIC) SetQoSMap(m *qos.Map) { n.qosMap = m }

// ClassRx returns the per-class admitted packet and byte counters
// (all zero without a QoS map installed).
func (n *NIC) ClassRx() (pkts, bytes [qos.NumClasses]uint64) {
	return n.classRxPkts, n.classRxBytes
}

// Ring returns queue q's descriptor ring.
func (n *NIC) Ring(q int) *Ring { return n.rings[q] }

// Stats returns a copy of the counters.
func (n *NIC) Stats() Stats {
	s := n.stats
	for _, r := range n.rings {
		s.RxDrops += r.Drops
		s.PoolDrops += r.PoolDrops
	}
	return s
}

// SetLinkState raises or drops the link. While down, arriving packets
// are lost (counted in LinkDownDrops); DMA already scheduled keeps
// flowing, matching a MAC-level flap.
func (n *NIC) SetLinkState(up bool) { n.linkDown = !up }

// LinkUp reports the current link state.
func (n *NIC) LinkUp() bool { return !n.linkDown }

// StallDMA holds the DMA engine for d beyond its current free point —
// a paced-DMA stall (PCIe credit exhaustion, retrained link). Returns
// when the engine will next be available.
func (n *NIC) StallDMA(now sim.Time, d sim.Duration) sim.Time {
	if n.engineFree < now {
		n.engineFree = now
	}
	n.engineFree = n.engineFree.Add(d)
	return n.engineFree
}

// OnInvariant registers an additional observer called on every
// invariant violation (after the counter increments), in registration
// order.
func (n *NIC) OnInvariant(fn func(error)) {
	if fn == nil {
		return
	}
	n.invariantHooks = append(n.invariantHooks, fn)
}

// invariant records an internal error on a named path and drops the
// offending work instead of crashing the process. A faulted DMA must
// degrade the run, not kill it.
func (n *NIC) invariant(path string, err error) {
	if n.stats.InvariantViolations++; len(n.invariantHooks) == 0 {
		return
	}
	werr := fmt.Errorf("nic: invariant violation on %s: %w", path, err)
	for _, fn := range n.invariantHooks {
		fn(werr)
	}
}

// lineTime is the wire time of one 64-byte transfer at the DMA rate.
func (n *NIC) lineTime() sim.Duration {
	return sim.Duration(64 * 8 * int64(sim.Second) / n.cfg.LineRateBps)
}

// reserveEngine serialises the DMA engine: returns the start time for
// a transfer of nLines beginning no earlier than now.
func (n *NIC) reserveEngine(now sim.Time, nLines int) (start, end sim.Time) {
	start = now
	if n.engineFree > start {
		start = n.engineFree
	}
	end = start.Add(sim.Duration(int64(n.lineTime()) * int64(nLines)))
	n.engineFree = end
	return start, end
}

// Receive ingests one packet at the current simulation time: steer to
// a core, admit to the ring (or drop), and schedule the paced DMA of
// payload lines followed by the coalesced descriptor write-back.
func (n *NIC) Receive(s *sim.Simulator, p *pkt.Packet) {
	if n.linkDown {
		n.stats.LinkDownDrops++
		n.traceDrop(s, p, -1, "link-down")
		p.Release()
		return
	}
	fields, err := pkt.Parse(p.Frame)
	if err != nil {
		// Undecodable frames are dropped by the parser stage.
		n.stats.RxDrops++
		n.traceDrop(s, p, -1, "parse")
		p.Release()
		return
	}
	coreID := n.flowdir.Steer(fields.Tuple())
	if coreID < 0 || coreID >= n.cfg.NumQueues {
		// A rule steering to a non-existent queue (misprogrammed flow
		// director) drops the packet rather than crashing the device.
		n.stats.MisSteers++
		n.invariant("rx-steer", fmt.Errorf("flow director steered to core %d with %d queues", coreID, n.cfg.NumQueues))
		n.traceDrop(s, p, -1, "missteer")
		p.Release()
		return
	}
	ring := n.rings[coreID]
	if n.cfg.AdmissionWatermark > 0 && ring.Occupancy() >= n.cfg.AdmissionWatermark {
		n.stats.AdmissionDrops++
		n.traceDrop(s, p, coreID, "admission")
		p.Release()
		return
	}
	slot := ring.Produce(p)
	if slot == nil {
		n.traceDrop(s, p, coreID, "ring-full")
		p.Release()
		return // ring full: counted by the ring
	}
	slot.owner = n
	now := s.Now()
	p.ArrivalTimePS = int64(now)
	n.stats.RxPackets++
	n.stats.RxBytes += uint64(p.Len())
	n.flowdir.Note(fields.Tuple(), p.Len())

	appClass := n.classifier.AppClass(fields.DSCP)
	inBurst := n.classifier.AccountPacket(now, coreID, p.Len())
	slot.AppClass = appClass
	// Slots are recycled without clearing, so the class is always
	// (re)stamped here: 0 when no map is installed.
	slot.QoS = 0
	if n.qosMap != nil {
		slot.QoS = uint8(n.qosMap.Class(fields.DSCP))
		n.classRxPkts[slot.QoS]++
		n.classRxBytes[slot.QoS] += uint64(p.Len())
	}

	payload := slot.PayloadRegion()
	nLines := payload.NumLines()
	descLines := slot.Desc.NumLines()
	start, end := n.reserveEngine(now, nLines+descLines)

	if n.obs.TracingPacket(p.Seq) {
		// Attribute the slot's payload and descriptor lines to this
		// packet so downstream placement/writeback/prefetch events can
		// be stitched into its journey, then record admission and the
		// paced DMA span.
		n.obs.MarkLines(p.Seq, payload)
		n.obs.MarkLines(p.Seq, slot.Desc)
		n.obs.Emit(obs.Event{Kind: obs.EvRx, Seq: p.Seq, Core: coreID, At: now, Bytes: p.Len()})
		n.obs.Emit(obs.Event{Kind: obs.EvDMA, Seq: p.Seq, Core: coreID, At: start, Dur: end.Sub(start), Bytes: p.Len()})
	}

	// One fused event walks the whole descriptor burst — every payload
	// line followed by every descriptor line at its paced instant —
	// instead of one event per line (see dmaBurstEv). The walk yields
	// back to the scheduler only when another event interleaves the
	// paced schedule, so the per-packet DMA chain costs ~1 scheduler
	// round trip instead of nLines+descLines of them, while the model
	// still observes every line write at its exact paced time and in
	// the exact pre-fusion order.
	lt := n.lineTime()
	s.AtArgNamed(start, "dma-burst", dmaBurstEv, sim.Arg{Obj: n, Obj2: slot, U0: boolBit(inBurst), I0: coreID})
	descStart := start.Add(sim.Duration(int64(lt) * int64(nLines)))
	readyAt := descStart.Add(sim.Duration(int64(lt)*int64(descLines)) + n.cfg.DescWBDelay)
	s.AtArgNamed(readyAt, "desc-visible", descVisibleEv, sim.Arg{Obj: slot, I0: coreID})
}

// boolBit encodes a flag into an Arg integer field.
func boolBit(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// dmaBurstEv walks one packet's paced DMA line writes — payload lines
// then descriptor lines — inline: Arg.Obj is the *NIC, Obj2 the *Slot,
// U0 the cursor (line index << 1) and the burst-classification bit,
// I0 the destination core. Each line fires at burstStart + idx·lt; the
// walk continues inline while sim.ContinueAt grants the next instant
// and re-queues itself (preserving its ordering seq) when an
// interleaving event preempts the pacing, so fusion never reorders the
// DMA stream against CPU or fabric events.
func dmaBurstEv(sm *sim.Simulator, a sim.Arg) {
	n := a.Obj.(*NIC)
	slot := a.Obj2.(*Slot)
	idx := int(a.U0 >> 1)
	inBurst := a.U0&1 != 0
	coreID := a.I0
	payload := slot.PayloadRegion()
	nLines := payload.NumLines()
	total := nLines + slot.Desc.NumLines()
	firstPayload := uint64(payload.Base.Line())
	firstDesc := uint64(slot.Desc.Base.Line())
	lt := n.lineTime()
	t := sm.Now()
	for {
		var lineAddr uint64
		if idx < nLines {
			lineAddr = firstPayload + uint64(idx)
		} else {
			lineAddr = firstDesc + uint64(idx-nLines)
		}
		meta := n.classifier.Tag(slot.AppClass, coreID, idx == 0, inBurst)
		meta.QoS = slot.QoS
		tlp, err := pcie.NewWriteTLP(lineAddr, meta)
		if err != nil {
			// The line's DMA is skipped; the packet degrades rather
			// than the process dying mid-run.
			if idx < nLines {
				n.invariant("dma-write", err)
			} else {
				n.invariant("desc-write", err)
			}
		} else {
			n.stats.DMAWrites++
			n.sink.DMAWrite(t, tlp)
		}
		if idx++; idx >= total {
			return
		}
		t = t.Add(lt)
		if !sm.ContinueAt(t) {
			sm.YieldArg(t, dmaBurstEv, sim.Arg{Obj: n, Obj2: slot, U0: uint64(idx)<<1 | a.U0&1, I0: coreID})
			return
		}
	}
}

// descVisibleEv fires a descriptor write-back becoming visible to the
// driver: Arg.Obj is the *Slot (which knows its ring and port), I0 the
// queue. It completes the slot and runs the completion hooks.
func descVisibleEv(sm *sim.Simulator, a sim.Arg) {
	slot := a.Obj.(*Slot)
	n := slot.owner
	coreID := a.I0
	slot.ring.Complete(slot, sm.Now())
	for _, hook := range n.completionHooks[coreID] {
		hook(sm)
	}
}

// traceDrop emits a drop event for a sampled packet.
func (n *NIC) traceDrop(s *sim.Simulator, p *pkt.Packet, coreID int, reason string) {
	if n.obs.TracingPacket(p.Seq) {
		n.obs.Emit(obs.Event{Kind: obs.EvDrop, Seq: p.Seq, Core: coreID, At: s.Now(), Bytes: p.Len(), Arg: reason})
	}
}

// Transmit performs the egress path for a zero-copy forwarder: paced
// PCIe reads of the packet's lines, then the done callback (used by
// the software stack to recycle the buffer). Descriptor bookkeeping on
// TX is folded into the per-line reads.
func (n *NIC) Transmit(s *sim.Simulator, payload mem.Region, done func(sim.Time)) {
	end := n.transmitLines(s, payload)
	n.stats.TxPackets++
	if done != nil {
		s.AtArgNamed(end, "tx-done", txDoneEv, sim.Arg{Obj: done})
	}
}

// TransmitArg is Transmit with an argful completion event instead of a
// callback: fn fires at TX-DMA completion with arg. With a
// package-level fn this makes the whole egress schedule
// allocation-free (see cpu.Env.TransmitAndFree).
func (n *NIC) TransmitArg(s *sim.Simulator, payload mem.Region, fn sim.ArgEvent, arg sim.Arg) {
	end := n.transmitLines(s, payload)
	n.stats.TxPackets++
	if fn != nil {
		s.AtArgNamed(end, "tx-done", fn, arg)
	}
}

// transmitLines schedules the paced PCIe reads of the payload's lines
// and returns the engine completion time.
func (n *NIC) transmitLines(s *sim.Simulator, payload mem.Region) sim.Time {
	nLines := payload.NumLines()
	start, end := n.reserveEngine(s.Now(), nLines)
	if nLines > 0 {
		s.AtArgNamed(start, "dma-read", dmaReadBurstEv,
			sim.Arg{Obj: n, U0: uint64(payload.Base.Line()), U1: uint64(nLines)})
	}
	return end
}

// dmaReadBurstEv walks a run of consecutive paced TX DMA line reads
// inline: Arg.Obj is the *NIC, U0 the first line address, U1 the line
// count, I0 the cursor. Like dmaBurstEv it continues in-event while
// sim.ContinueAt grants the next paced instant and yields (keeping its
// seq) when another event interleaves.
func dmaReadBurstEv(sm *sim.Simulator, a sim.Arg) {
	n := a.Obj.(*NIC)
	idx := uint64(a.I0)
	lt := n.lineTime()
	t := sm.Now()
	for {
		n.stats.DMAReads++
		n.sink.DMARead(t, a.U0+idx)
		if idx++; idx >= a.U1 {
			return
		}
		t = t.Add(lt)
		if !sm.ContinueAt(t) {
			sm.YieldArg(t, dmaReadBurstEv, sim.Arg{Obj: n, U0: a.U0, U1: a.U1, I0: int(idx)})
			return
		}
	}
}

// txDoneEv invokes a caller-supplied TX completion callback stored in
// Arg.Obj. (The callback itself is the caller's allocation; the
// zero-allocation forwarding path uses cpu.Env.TransmitAndFree, which
// needs no callback at all.)
func txDoneEv(sm *sim.Simulator, a sim.Arg) {
	a.Obj.(func(sim.Time))(sm.Now())
}

// RegisterMetrics registers the NIC counter set under prefix (e.g.
// "nic.") into the observability registry, reading through statsFn so
// multi-port systems can register one port-aggregated view. Metric
// names mirror the keys Results.WriteStats prints.
func RegisterMetrics(reg *obs.Registry, prefix string, statsFn func() Stats) {
	reg.CounterFunc(prefix+"rx_packets", func() uint64 { return statsFn().RxPackets })
	reg.CounterFunc(prefix+"rx_bytes", func() uint64 { return statsFn().RxBytes })
	reg.CounterFunc(prefix+"rx_drops", func() uint64 { return statsFn().RxDrops })
	reg.CounterFunc(prefix+"pool_drops", func() uint64 { return statsFn().PoolDrops })
	reg.CounterFunc(prefix+"linkdown_drops", func() uint64 { return statsFn().LinkDownDrops })
	reg.CounterFunc(prefix+"missteers", func() uint64 { return statsFn().MisSteers })
	reg.CounterFunc(prefix+"invariant_violations", func() uint64 { return statsFn().InvariantViolations })
	reg.CounterFunc(prefix+"tx_packets", func() uint64 { return statsFn().TxPackets })
	reg.CounterFunc(prefix+"dma_writes", func() uint64 { return statsFn().DMAWrites })
	reg.CounterFunc(prefix+"dma_reads", func() uint64 { return statsFn().DMAReads })
}
