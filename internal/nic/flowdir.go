// Flow Director and RSS: the NIC's packet-steering machinery
// (Sec. II-C). Externally-Programmed (EP) mode installs exact-match
// 5-tuple rules; Application Targeting Routing (ATR) mode learns
// destinations into a hashed filter table (8K entries on modern
// adapters). Packets matching neither fall back to Toeplitz RSS over
// an indirection table, as real hardware does.

package nic

import (
	"encoding/binary"

	"idio/internal/flow"
	"idio/internal/pkt"
)

// FilterTableSize matches modern Intel Ethernet adapters (Sec. II-C).
const FilterTableSize = 8192

// DefaultFlowStatsEntries is the default capacity of the per-flow
// statistics table (see EnableFlowStats): 128K entries, the order of
// a modern adapter's flow-tracking SRAM. A million-flow workload
// overflows it by design — the refusal counter is the observable.
const DefaultFlowStatsEntries = 1 << 17

// toeplitzKey is the de-facto standard 40-byte Microsoft RSS key.
var toeplitzKey = [40]byte{
	0x6d, 0x5a, 0x56, 0xda, 0x25, 0x5b, 0x0e, 0xc2,
	0x41, 0x67, 0x25, 0x3d, 0x43, 0xa3, 0x8f, 0xb0,
	0xd0, 0xca, 0x2b, 0xcb, 0xae, 0x7b, 0x30, 0xb4,
	0x77, 0xcb, 0x2d, 0xa3, 0x80, 0x30, 0xf2, 0x0c,
	0x6a, 0x42, 0xb7, 0x3b, 0xbe, 0xac, 0x01, 0xfa,
}

// Toeplitz computes the RSS hash over the IPv4 4-tuple input
// (srcIP, dstIP, srcPort, dstPort) using the standard algorithm.
func Toeplitz(t pkt.FiveTuple) uint32 {
	var input [12]byte
	copy(input[0:4], t.Src[:])
	copy(input[4:8], t.Dst[:])
	binary.BigEndian.PutUint16(input[8:10], t.SrcPort)
	binary.BigEndian.PutUint16(input[10:12], t.DstPort)

	var hash uint32
	// Sliding 32-bit window over the key, one shift per input bit.
	window := binary.BigEndian.Uint32(toeplitzKey[0:4])
	keyBit := 32 // next key bit to shift in
	for _, b := range input {
		for m := byte(0x80); m != 0; m >>= 1 {
			if b&m != 0 {
				hash ^= window
			}
			next := uint32(0)
			if toeplitzKey[keyBit/8]&(0x80>>(uint(keyBit)%8)) != 0 {
				next = 1
			}
			window = window<<1 | next
			keyBit++
		}
	}
	return hash
}

// filterEntry is one ATR filter-table slot.
type filterEntry struct {
	valid bool
	hash  uint32 // full hash kept to reduce (not eliminate) aliasing
	core  int
}

// FlowDirector steers packets to cores: EP rules first, then the ATR
// filter table, then RSS fallback.
type FlowDirector struct {
	ep       map[pkt.FiveTuple]int
	table    [FilterTableSize]filterEntry
	rssTable []int // indirection table mapping hash to core

	// flowStats, when armed via EnableFlowStats, tracks per-flow
	// packet/byte counters in a fixed-capacity compact table — the
	// model of the NIC's flow-statistics SRAM. Fixed capacity means
	// flows past the hardware bound are simply not tracked (counted
	// as refusals), never evicted and never allocated for.
	flowStats *flow.Table[FlowStat]

	// Stats.
	EPHits   uint64
	ATRHits  uint64
	RSSFalls uint64
}

// FlowStat is one tracked flow's counters.
type FlowStat struct {
	Packets uint64
	Bytes   uint64
}

// NewFlowDirector builds a director whose RSS indirection table spreads
// over numCores cores (128-entry table, as common hardware defaults).
func NewFlowDirector(numCores int) *FlowDirector {
	if numCores <= 0 {
		panic("nic: flow director needs cores")
	}
	fd := &FlowDirector{
		ep:       make(map[pkt.FiveTuple]int),
		rssTable: make([]int, 128),
	}
	for i := range fd.rssTable {
		fd.rssTable[i] = i % numCores
	}
	return fd
}

// AddEPRule installs an externally-programmed exact-match rule.
func (fd *FlowDirector) AddEPRule(t pkt.FiveTuple, core int) {
	fd.ep[t] = core
}

// Learn populates the ATR filter table for a flow (hardware does this
// by observing TX traffic; tests and the system call it directly).
func (fd *FlowDirector) Learn(t pkt.FiveTuple, core int) {
	h := Toeplitz(t)
	fd.table[h%FilterTableSize] = filterEntry{valid: true, hash: h, core: core}
}

// EnableFlowStats arms per-flow packet/byte tracking with a hardware
// capacity bound. Tracking is pure device state — it schedules no
// events and emits nothing unless its metrics are registered — so
// arming it never perturbs simulation output.
func (fd *FlowDirector) EnableFlowStats(capacity int) {
	if capacity <= 0 {
		panic("nic: flow stats need capacity")
	}
	fd.flowStats = flow.NewFixed[FlowStat](capacity)
}

// FlowStatsEnabled reports whether per-flow tracking is armed.
func (fd *FlowDirector) FlowStatsEnabled() bool { return fd.flowStats != nil }

// Note records one admitted packet against its flow's counters (no-op
// until EnableFlowStats). Flows beyond the table's capacity bound are
// refused, not evicted — TrackedFlows/FlowRefusals expose the split.
func (fd *FlowDirector) Note(t pkt.FiveTuple, bytes int) {
	if fd.flowStats == nil {
		return
	}
	k := flowKey(t)
	if st := fd.flowStats.Ref(k); st != nil {
		st.Packets++
		st.Bytes += uint64(bytes)
		return
	}
	fd.flowStats.Put(k, FlowStat{Packets: 1, Bytes: uint64(bytes)})
}

// TrackedFlows returns the number of flows resident in the stats
// table (0 when tracking is off).
func (fd *FlowDirector) TrackedFlows() int { return fd.flowStats.Len() }

// FlowRefusals returns insertions refused by the capacity bound.
func (fd *FlowDirector) FlowRefusals() uint64 { return fd.flowStats.Refusals() }

// FlowStatsLoad returns the stats table's occupancy fraction.
func (fd *FlowDirector) FlowStatsLoad() float64 {
	if fd.flowStats == nil {
		return 0
	}
	return fd.flowStats.LoadFactor()
}

// FlowStat returns the counters tracked for a flow.
func (fd *FlowDirector) FlowStat(t pkt.FiveTuple) (FlowStat, bool) {
	if fd.flowStats == nil {
		return FlowStat{}, false
	}
	return fd.flowStats.Get(flowKey(t))
}

// flowKey folds a 5-tuple into the 64-bit key the stats table hashes,
// splitmix-mixing both halves so any tuple field perturbs the whole
// key (the hardware analogue is a hashed flow-key CAM; with 64-bit
// keys the collision probability at a million flows is ~1e-8).
func flowKey(t pkt.FiveTuple) uint64 {
	a := uint64(binary.BigEndian.Uint32(t.Src[:]))<<32 | uint64(binary.BigEndian.Uint32(t.Dst[:]))
	b := uint64(t.SrcPort)<<32 | uint64(t.DstPort)<<16 | uint64(t.Proto)
	a ^= (b ^ 0x9e3779b97f4a7c15) * 0xbf58476d1ce4e5b9
	a ^= a >> 30
	a *= 0x94d049bb133111eb
	return a ^ a>>31
}

// Steer resolves the destination core for a packet.
func (fd *FlowDirector) Steer(t pkt.FiveTuple) int {
	if core, ok := fd.ep[t]; ok {
		fd.EPHits++
		return core
	}
	h := Toeplitz(t)
	e := fd.table[h%FilterTableSize]
	if e.valid && e.hash == h {
		fd.ATRHits++
		return e.core
	}
	fd.RSSFalls++
	return fd.rssTable[h%uint32(len(fd.rssTable))]
}
