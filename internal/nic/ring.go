// Ring implements the RX descriptor ring / DMA buffer structure of
// Fig. 3: a circular array of descriptor+mbuf slots with the three
// pointers the paper reasons about — the NIC head (last produced), the
// CPU pointer (last consumed by the polling driver), and the NIC tail
// (last freed, i.e. available for reuse by the NIC).

package nic

import (
	"fmt"

	"idio/internal/mem"
	"idio/internal/pkt"
	"idio/internal/sim"
)

// Slot is one ring entry: a 128-byte descriptor in the ring itself and
// a 2 KB mbuf from the buffer pool.
type Slot struct {
	Index int
	Desc  mem.Region // 128 B descriptor (2 cachelines)
	Buf   mem.Region // 2 KB DMA buffer

	ring  *Ring // owning ring (for in-order Free)
	owner *NIC  // port the packet arrived on (for zero-copy TX)

	// Pkt is the packet occupying the slot (nil when free).
	Pkt *pkt.Packet
	// PayloadBytes is the frame length DMA'd into Buf.
	PayloadBytes int
	// ReadyAt is when the descriptor writeback made the packet visible
	// to the polling driver.
	ReadyAt sim.Time
	ready   bool
	// AppClass as classified on arrival (cached for the CPU model).
	AppClass uint8
	// QoS is the service class mapped from the DSCP on arrival
	// (always 0 when no QoS map is installed).
	QoS uint8
}

// PayloadRegion returns the buffer subregion actually holding data.
func (s *Slot) PayloadRegion() mem.Region {
	return mem.Region{Base: s.Buf.Base, Size: uint64(s.PayloadBytes)}
}

// Ring returns the slot's owning ring.
func (s *Slot) Ring() *Ring { return s.ring }

// NIC returns the port the slot's packet arrived on (nil until a
// packet is produced into it by a NIC).
func (s *Slot) NIC() *NIC { return s.owner }

// Ring is a fixed-size descriptor ring. Pointers are monotonic
// counters; the slot index is counter mod size.
type Ring struct {
	size  int
	slots []Slot
	pool  *MbufPool // non-nil in re-allocate (M2) mode

	head uint64 // NIC head: next slot to produce into
	cpu  uint64 // CPU pointer: next slot to consume
	tail uint64 // NIC tail: next slot to free

	// Drops counts packets rejected because the ring was full.
	Drops uint64
	// PoolDrops counts packets rejected because the mbuf pool was
	// exhausted (pooled rings only).
	PoolDrops uint64
}

// NewRing allocates a ring of the given size, carving descriptor and
// buffer regions out of the layout. Each slot owns a fixed buffer, as
// in the run-to-completion and copy recycling modes of Sec. II-B.
func NewRing(size int, ly *mem.Layout) *Ring {
	if size <= 0 {
		panic(fmt.Sprintf("nic: ring size %d", size))
	}
	r := &Ring{size: size, slots: make([]Slot, size)}
	descArea := ly.Alloc(uint64(size)*mem.DescBytes, mem.LineBytes)
	for i := range r.slots {
		r.slots[i].Index = i
		r.slots[i].ring = r
		r.slots[i].Desc = mem.Region{Base: descArea.Base + mem.Addr(i*mem.DescBytes), Size: mem.DescBytes}
		r.slots[i].Buf = ly.Alloc(mem.MbufBytes, mem.MbufBytes)
	}
	return r
}

// AttachPool converts the ring to pooled (re-allocate, M2) operation:
// slots draw their buffers from the pool at produce time, and an
// application may detach a filled buffer for deferred processing,
// replenishing the slot implicitly. The slots' original fixed buffers
// are returned to no one — call this before any traffic flows.
func (r *Ring) AttachPool(p *MbufPool) {
	r.pool = p
	for i := range r.slots {
		r.slots[i].Buf = mem.Region{}
	}
}

// Pool returns the attached mbuf pool (nil for fixed-buffer rings).
func (r *Ring) Pool() *MbufPool { return r.pool }

// Size returns the ring capacity.
func (r *Ring) Size() int { return r.size }

// Occupancy returns produced-but-not-freed slots (head - tail).
func (r *Ring) Occupancy() int { return int(r.head - r.tail) }

// UseDistance returns the lag between the NIC head and the CPU pointer
// — the quantity the paper's Observation 4 correlates with LLC
// pressure.
func (r *Ring) UseDistance() int { return int(r.head - r.cpu) }

// Full reports whether the NIC has no free slot to produce into.
func (r *Ring) Full() bool { return r.Occupancy() == r.size }

// Produce reserves the next slot for an incoming packet. Returns nil
// (and counts a drop) when the ring is full, or — on pooled rings —
// when the slot needs a buffer and the pool is empty.
func (r *Ring) Produce(p *pkt.Packet) *Slot {
	if r.Full() {
		r.Drops++
		return nil
	}
	s := &r.slots[r.head%uint64(r.size)]
	if r.pool != nil && s.Buf.Size == 0 {
		buf, ok := r.pool.Alloc()
		if !ok {
			r.PoolDrops++
			return nil
		}
		s.Buf = buf
	}
	s.Pkt = p
	s.PayloadBytes = p.Len()
	s.ready = false
	r.head++
	return s
}

// DetachBuf transfers ownership of the slot's buffer to the caller
// (the M2 "re-allocate" move): the slot is left bufferless and will
// draw a fresh buffer from the pool on its next Produce. Only valid on
// pooled rings. The caller must eventually return the buffer via
// Pool().Free.
func (s *Slot) DetachBuf() mem.Region {
	if s.ring.pool == nil {
		panic("nic: DetachBuf on a fixed-buffer ring")
	}
	b := s.Buf
	s.Buf = mem.Region{}
	return b
}

// Complete marks a produced slot's descriptor as written back, making
// it visible to the polling driver at time t.
func (r *Ring) Complete(s *Slot, t sim.Time) {
	s.ready = true
	s.ReadyAt = t
}

// Poll returns the next consumable slot if its descriptor writeback is
// visible at time now; nil otherwise. It does not advance the CPU
// pointer — Consume does.
func (r *Ring) Poll(now sim.Time) *Slot {
	if r.cpu == r.head {
		return nil
	}
	s := &r.slots[r.cpu%uint64(r.size)]
	if !s.ready || s.ReadyAt > now {
		return nil
	}
	return s
}

// Consume advances the CPU pointer past the slot returned by Poll.
func (r *Ring) Consume() {
	if r.cpu == r.head {
		panic("nic: consume past head")
	}
	r.cpu++
}

// Free returns the oldest consumed slot to the NIC (advances the
// tail). Slots must be freed in order, as DPDK rings do. Freeing the
// slot is the end of the packet's life: a pooled packet goes back to
// its generator's pool here. (The zero-copy TX path reads the frame
// synchronously in the same event that frees the slot, before any
// later event can recycle the buffer.)
func (r *Ring) Free() {
	if r.tail == r.cpu {
		panic("nic: free past CPU pointer")
	}
	s := &r.slots[r.tail%uint64(r.size)]
	if s.Pkt != nil {
		s.Pkt.Release()
		s.Pkt = nil
	}
	s.ready = false
	r.tail++
}

// FreeCount returns how many consumed slots await freeing.
func (r *Ring) FreeCount() int { return int(r.cpu - r.tail) }

// BufferRegion returns the union region spanned by all mbufs plus
// descriptors — used to register Invalidatable pages.
func (r *Ring) Slots() []Slot { return r.slots }
