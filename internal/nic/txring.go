// TX descriptor ring: the egress counterpart of the RX ring. The
// driver writes a descriptor (CPU stores into the ring memory), the
// NIC fetches the descriptor and the payload over PCIe, transmits, and
// writes a completion back into the descriptor — which the driver
// polls to recycle buffers. Zero-copy forwarders point TX descriptors
// at RX mbufs, which is what drags consumed RX buffers back through
// the cache hierarchy on the egress path (Fig. 3, right).

package nic

import (
	"fmt"

	"idio/internal/mem"
	"idio/internal/pcie"
	"idio/internal/sim"
)

// TXSlot is one TX ring entry: a 128-byte descriptor.
type TXSlot struct {
	Index int
	Desc  mem.Region
}

// TXRing is a fixed-size transmit descriptor ring.
type TXRing struct {
	size  int
	slots []TXSlot
	head  uint64 // next slot the driver produces into
	tail  uint64 // next slot to complete (NIC completes in order)

	// Drops counts transmissions rejected because the ring was full.
	Drops uint64
}

// NewTXRing allocates the ring's descriptor memory from the layout.
func NewTXRing(size int, ly *mem.Layout) *TXRing {
	if size <= 0 {
		panic(fmt.Sprintf("nic: tx ring size %d", size))
	}
	r := &TXRing{size: size, slots: make([]TXSlot, size)}
	area := ly.Alloc(uint64(size)*mem.DescBytes, mem.LineBytes)
	for i := range r.slots {
		r.slots[i].Index = i
		r.slots[i].Desc = mem.Region{Base: area.Base + mem.Addr(i*mem.DescBytes), Size: mem.DescBytes}
	}
	return r
}

// Size returns the ring capacity.
func (r *TXRing) Size() int { return r.size }

// Occupancy returns in-flight (produced but not completed) slots.
func (r *TXRing) Occupancy() int { return int(r.head - r.tail) }

// Produce reserves the next TX slot; nil when the ring is full.
func (r *TXRing) Produce() *TXSlot {
	if r.Occupancy() == r.size {
		r.Drops++
		return nil
	}
	s := &r.slots[r.head%uint64(r.size)]
	r.head++
	return s
}

// Complete retires the oldest in-flight slot.
func (r *TXRing) Complete() {
	if r.tail == r.head {
		panic("nic: tx complete past head")
	}
	r.tail++
}

// Slots exposes the ring's slots (for Invalidatable registration).
func (r *TXRing) Slots() []TXSlot { return r.slots }

// TXRing returns queue q's transmit ring.
func (n *NIC) TXRing(q int) *TXRing { return n.txRings[q] }

// PrepareTX reserves the next TX descriptor slot for queue q, or nil
// when the ring is full. The driver writes the descriptor (CPU stores
// through the cache hierarchy) and then calls KickTX.
func (n *NIC) PrepareTX(q int) *TXSlot {
	return n.TXRing(q).Produce()
}

// KickTX performs the NIC side of the egress path for a slot returned
// by PrepareTX: fetch the TX descriptor (PCIe reads), fetch the
// payload (PCIe reads — invalidating MLC copies per Fig. 1), and write
// a completion back into the descriptor (a DDIO write). done fires
// once the completion lands.
func (n *NIC) KickTX(s *sim.Simulator, q int, slot *TXSlot, payload mem.Region, done func(sim.Time)) {
	end := n.kickTX(s, q, slot, payload)
	if done != nil {
		s.AtArgNamed(end, "tx-done", txDoneEv, sim.Arg{Obj: done})
	}
}

// KickTXArg is KickTX with an argful completion event instead of a
// callback (the allocation-free form; see NIC.TransmitArg).
func (n *NIC) KickTXArg(s *sim.Simulator, q int, slot *TXSlot, payload mem.Region, fn sim.ArgEvent, arg sim.Arg) {
	end := n.kickTX(s, q, slot, payload)
	if fn != nil {
		s.AtArgNamed(end, "tx-done", fn, arg)
	}
}

// kickTX schedules the descriptor/payload fetches and the completion
// write-back, returning the engine completion time.
func (n *NIC) kickTX(s *sim.Simulator, q int, slot *TXSlot, payload mem.Region) sim.Time {
	ring := n.TXRing(q)
	descLines := slot.Desc.NumLines()
	payloadLines := payload.NumLines()
	// Engine reservation: descriptor fetch + payload fetch + 1
	// completion write.
	start, end := n.reserveEngine(s.Now(), descLines+payloadLines+1)
	lt := n.lineTime()
	// Descriptor fetch then payload fetch, each a fused burst of paced
	// line reads (see dmaReadBurstEv) — the two runs cover disjoint
	// paced intervals, so two walker events reproduce the exact
	// pre-fusion line schedule with ~2 scheduler round trips instead of
	// one per line.
	if descLines > 0 {
		s.AtArgNamed(start, "tx-read", dmaReadBurstEv,
			sim.Arg{Obj: n, U0: uint64(slot.Desc.Base.Line()), U1: uint64(descLines)})
	}
	if payloadLines > 0 {
		payloadAt := start.Add(sim.Duration(int64(lt) * int64(descLines)))
		s.AtArgNamed(payloadAt, "tx-read", dmaReadBurstEv,
			sim.Arg{Obj: n, U0: uint64(payload.Base.Line()), U1: uint64(payloadLines)})
	}
	// Completion write-back: one cacheline PCIe write into the
	// descriptor, tagged for the owning core (class 0, not a header).
	complAt := end.Add(-sim.Duration(int64(lt)))
	complLine := slot.Desc.Base.Line()
	meta := n.classifier.Tag(0, q, false, false)
	tlp, err := pcie.NewWriteTLP(uint64(complLine), meta)
	if err != nil {
		// The completion write is skipped but the ring still retires
		// the slot so a faulted DMA cannot wedge the TX path.
		n.invariant("tx-completion", err)
		s.AtArgNamed(complAt, "tx-completion", txCompleteFaultedEv, sim.Arg{Obj: ring})
	} else {
		s.AtArgNamed(complAt, "tx-completion", txCompleteEv,
			sim.Arg{Obj: n, Obj2: ring, U0: tlp.LineAddr, U1: uint64(tlp.DW0)})
	}
	n.stats.TxPackets++
	return end
}

// txCompleteEv writes the TX completion line and retires the oldest
// in-flight TX slot: Arg.Obj is the *NIC, Obj2 the *TXRing, U0/U1 the
// completion TLP.
func txCompleteEv(sm *sim.Simulator, a sim.Arg) {
	n := a.Obj.(*NIC)
	n.stats.DMAWrites++
	n.sink.DMAWrite(sm.Now(), pcie.WriteTLP{LineAddr: a.U0, DW0: uint32(a.U1)})
	a.Obj2.(*TXRing).Complete()
}

// txCompleteFaultedEv retires the slot without the (faulted, skipped)
// completion write: Arg.Obj is the *TXRing.
func txCompleteFaultedEv(sm *sim.Simulator, a sim.Arg) {
	a.Obj.(*TXRing).Complete()
}
