package stats

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"idio/internal/sim"
)

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram(5)
	if h.Count() != 0 || h.P99() != 0 || h.Mean() != 0 || h.Min() != 0 {
		t.Fatal("empty histogram must report zeros")
	}
	for i := 1; i <= 1000; i++ {
		h.Record(sim.Duration(i))
	}
	if h.Count() != 1000 {
		t.Fatalf("count %d", h.Count())
	}
	if h.Min() != 1 || h.Max() != 1000 {
		t.Fatalf("min=%v max=%v", h.Min(), h.Max())
	}
	if h.Mean() != 500 { // floor of 500.5
		t.Fatalf("mean %v", h.Mean())
	}
}

func TestHistogramQuantileAccuracy(t *testing.T) {
	// Against a uniform distribution the bucketed quantiles must stay
	// within the resolution bound (1/2^5 ~ 3.1%).
	h := NewHistogram(5)
	for i := 1; i <= 100000; i++ {
		h.Record(sim.Duration(i))
	}
	for _, q := range []float64{0.10, 0.50, 0.90, 0.99, 0.999} {
		want := float64(q) * 100000
		got := float64(h.Quantile(q))
		if rel := (got - want) / want; rel > 0.04 || rel < -0.04 {
			t.Errorf("q%.3f = %.0f, want ~%.0f (rel %.3f)", q, got, want, rel)
		}
	}
}

func TestHistogramHeavyTail(t *testing.T) {
	// 99% fast, 1% slow: p99 must land in the slow mode's vicinity.
	h := NewHistogram(5)
	for i := 0; i < 9900; i++ {
		h.Record(sim.Duration(1000))
	}
	for i := 0; i < 100; i++ {
		h.Record(sim.Duration(1000000))
	}
	if p := h.Quantile(0.98); p > 1100 {
		t.Fatalf("p98 = %v, want ~1000", p)
	}
	if p := h.Quantile(0.995); p < 900000 {
		t.Fatalf("p99.5 = %v, want ~1e6", p)
	}
}

func TestHistogramExtremes(t *testing.T) {
	h := NewHistogram(3)
	h.Record(0)
	h.Record(sim.Duration(1) << 50)
	if h.Min() != 0 || h.Max() != sim.Duration(1)<<50 {
		t.Fatalf("min=%v max=%v", h.Min(), h.Max())
	}
	if h.Quantile(0) != 0 || h.Quantile(1) != h.Max() {
		t.Fatal("quantile extremes must be exact")
	}
	// Negative values clamp to zero rather than panicking.
	h.Record(-5)
	if h.Count() != 3 {
		t.Fatal("negative record lost")
	}
}

func TestHistogramSubBitsValidation(t *testing.T) {
	for _, bad := range []uint{0, 9} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("subBits %d must panic", bad)
				}
			}()
			NewHistogram(bad)
		}()
	}
}

// Property: a histogram quantile always lies within one rank of the
// exact order statistics, up to the bucket resolution (the rank slack
// absorbs the differing rank conventions; the multiplicative slack is
// the log-bucket error bound).
func TestQuickHistogramVsExact(t *testing.T) {
	f := func(raw []uint32) bool {
		if len(raw) < 10 {
			return true
		}
		h := NewHistogram(5)
		vals := make([]float64, 0, len(raw))
		for _, r := range raw {
			v := sim.Duration(r%1_000_000 + 1)
			h.Record(v)
			vals = append(vals, float64(v))
		}
		sort.Float64s(vals)
		n := len(vals)
		at := func(i int) float64 {
			if i < 0 {
				i = 0
			}
			if i >= n {
				i = n - 1
			}
			return vals[i]
		}
		for _, q := range []float64{0.50, 0.99} {
			approx := float64(h.Quantile(q))
			rank := int(q * float64(n))
			lo := at(rank-1) * 0.93
			hi := at(rank+1) * 1.01
			if approx < lo || approx > hi {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: monotonic in q.
func TestQuickHistogramMonotonic(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	h := NewHistogram(4)
	for i := 0; i < 10000; i++ {
		h.Record(sim.Duration(rng.Int63n(1 << 30)))
	}
	prev := sim.Duration(-1)
	for q := 0.01; q <= 1.0; q += 0.01 {
		v := h.Quantile(q)
		if v < prev {
			t.Fatalf("quantile not monotonic at %.2f: %v < %v", q, v, prev)
		}
		prev = v
	}
}

func BenchmarkHistogramRecord(b *testing.B) {
	h := NewHistogram(5)
	for i := 0; i < b.N; i++ {
		h.Record(sim.Duration(i * 1337 % 1000000))
	}
}
