package stats

import (
	"math/rand"
	"testing"
	"testing/quick"

	"idio/internal/sim"
)

func TestCounterBasics(t *testing.T) {
	var c Counter
	if c.Value() != 0 {
		t.Fatal("zero counter should be 0")
	}
	c.Inc()
	c.Add(9)
	if c.Value() != 10 {
		t.Fatalf("value = %d, want 10", c.Value())
	}
	snap := c.Snap()
	c.Add(5)
	if c.Delta(snap) != 5 {
		t.Fatalf("delta = %d, want 5", c.Delta(snap))
	}
	c.Reset()
	if c.Value() != 0 {
		t.Fatal("reset failed")
	}
}

func TestTimelineBuckets(t *testing.T) {
	tl := NewTimeline(10 * sim.Microsecond)
	tl.Record(0, 1)
	tl.Record(sim.Time(9999*sim.Nanosecond), 2)  // still bucket 0
	tl.Record(sim.Time(10000*sim.Nanosecond), 4) // bucket 1
	tl.Record(sim.Time(35*sim.Microsecond), 8)   // bucket 3
	if tl.Count(0) != 3 || tl.Count(1) != 4 || tl.Count(2) != 0 || tl.Count(3) != 8 {
		t.Fatalf("bucket counts wrong: %d %d %d %d", tl.Count(0), tl.Count(1), tl.Count(2), tl.Count(3))
	}
	if tl.Total() != 15 {
		t.Fatalf("total = %d, want 15", tl.Total())
	}
	if tl.NumBuckets() != 4 {
		t.Fatalf("buckets = %d, want 4", tl.NumBuckets())
	}
}

func TestTimelineRateMTPS(t *testing.T) {
	tl := NewTimeline(10 * sim.Microsecond)
	// 500 events in 10us = 50 M/s.
	tl.Record(sim.Time(5*sim.Microsecond), 500)
	if got := tl.RateMTPS(0); got < 49.99 || got > 50.01 {
		t.Fatalf("rate = %v MTPS, want 50", got)
	}
	if got := tl.PeakMTPS(); got < 49.99 || got > 50.01 {
		t.Fatalf("peak = %v, want 50", got)
	}
}

func TestTimelineSeries(t *testing.T) {
	tl := NewTimeline(10 * sim.Microsecond)
	tl.Record(sim.Time(25*sim.Microsecond), 100)
	s := tl.Series()
	if len(s) != 3 {
		t.Fatalf("series len = %d, want 3", len(s))
	}
	if s[2].TimeUS != 20 {
		t.Fatalf("bucket 2 starts at %v us, want 20", s[2].TimeUS)
	}
	if s[0].MTPS != 0 || s[2].MTPS <= 0 {
		t.Fatal("series rates wrong")
	}
}

func TestTimelineOutOfRangeCount(t *testing.T) {
	tl := NewTimeline(sim.Microsecond)
	if tl.Count(-1) != 0 || tl.Count(5) != 0 {
		t.Fatal("out-of-range buckets must read 0")
	}
}

func TestLatencyPercentilesExact(t *testing.T) {
	d := NewLatencyDist()
	for i := 1; i <= 100; i++ {
		d.Record(sim.Duration(i))
	}
	if d.P50() != 50 {
		t.Fatalf("p50 = %d, want 50", d.P50())
	}
	if d.P99() != 99 {
		t.Fatalf("p99 = %d, want 99", d.P99())
	}
	if d.Percentile(100) != 100 {
		t.Fatalf("p100 = %d, want 100", d.Percentile(100))
	}
	if d.Percentile(1) != 1 {
		t.Fatalf("p1 = %d, want 1", d.Percentile(1))
	}
}

func TestLatencySingleSample(t *testing.T) {
	d := NewLatencyDist()
	d.Record(42)
	for _, p := range []float64{1, 50, 99, 100} {
		if d.Percentile(p) != 42 {
			t.Fatalf("p%v of single sample = %d", p, d.Percentile(p))
		}
	}
}

func TestLatencyEmpty(t *testing.T) {
	d := NewLatencyDist()
	if d.P99() != 0 || d.Mean() != 0 || d.Max() != 0 {
		t.Fatal("empty distribution must report zeros")
	}
}

func TestLatencyMeanMax(t *testing.T) {
	d := NewLatencyDist()
	d.Record(10)
	d.Record(20)
	d.Record(30)
	if d.Mean() != 20 {
		t.Fatalf("mean = %d, want 20", d.Mean())
	}
	if d.Max() != 30 {
		t.Fatalf("max = %d, want 30", d.Max())
	}
}

func TestLatencyRecordAfterQueryResorts(t *testing.T) {
	d := NewLatencyDist()
	d.Record(100)
	_ = d.P50()
	d.Record(1)
	if d.P50() != 1 && d.P50() != 100 {
		t.Fatalf("p50 = %d", d.P50())
	}
	if d.Percentile(100) != 100 {
		t.Fatal("max percentile must see later sample")
	}
}

func TestGbpsConversion(t *testing.T) {
	// 12.5 GB over 1 second = 100 Gbps.
	if got := Gbps(12_500_000_000, sim.Second); got < 99.99 || got > 100.01 {
		t.Fatalf("Gbps = %v, want 100", got)
	}
	if Gbps(1, 0) != 0 {
		t.Fatal("zero duration must yield 0")
	}
}

func TestMTPSConversion(t *testing.T) {
	if got := MTPS(50, sim.Microsecond); got < 49.99 || got > 50.01 {
		t.Fatalf("MTPS = %v, want 50", got)
	}
}

// Property: percentile is monotonic in p and bounded by min/max.
func TestQuickPercentileMonotonic(t *testing.T) {
	f := func(raw []uint32) bool {
		if len(raw) == 0 {
			return true
		}
		d := NewLatencyDist()
		min, max := sim.Duration(raw[0]), sim.Duration(raw[0])
		for _, r := range raw {
			v := sim.Duration(r)
			d.Record(v)
			if v < min {
				min = v
			}
			if v > max {
				max = v
			}
		}
		prev := sim.Duration(-1)
		for p := 1.0; p <= 100; p += 7 {
			v := d.Percentile(p)
			if v < prev || v < min || v > max {
				return false
			}
			prev = v
		}
		return d.Percentile(100) == max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: timeline total equals sum of recorded amounts regardless of
// recording order.
func TestQuickTimelineTotal(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for iter := 0; iter < 50; iter++ {
		tl := NewTimeline(sim.Duration(rng.Intn(1000) + 1))
		var want uint64
		for i := 0; i < 200; i++ {
			n := uint64(rng.Intn(100))
			tl.Record(sim.Time(rng.Intn(100000)), n)
			want += n
		}
		if tl.Total() != want {
			t.Fatalf("total = %d, want %d", tl.Total(), want)
		}
	}
}

func TestLevelSeriesGauge(t *testing.T) {
	ls := NewLevelSeries()
	if ls.Len() != 0 || ls.Max() != 0 || ls.Last() != 0 {
		t.Fatal("empty gauge must report zeros")
	}
	ls.Record(sim.Time(10*sim.Microsecond), 5)
	ls.Record(sim.Time(20*sim.Microsecond), 12)
	ls.Record(sim.Time(30*sim.Microsecond), 3)
	if ls.Len() != 3 {
		t.Fatalf("len %d", ls.Len())
	}
	if ls.Max() != 12 || ls.Last() != 3 {
		t.Fatalf("max %v last %v", ls.Max(), ls.Last())
	}
	pts := ls.Points()
	if pts[0].TimeUS != 10 || pts[2].Value != 3 {
		t.Fatalf("points %v", pts)
	}
}
