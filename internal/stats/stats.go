// Package stats provides the measurement machinery used across the
// simulator: monotonic counters, fixed-interval timeline samplers (the
// paper reports rates over 10 µs buckets), and latency distributions
// with percentile queries.
package stats

import (
	"fmt"
	"sort"

	"idio/internal/sim"
)

// Counter is a monotonically increasing event counter.
type Counter struct {
	n uint64
}

// Add increments the counter by delta.
func (c *Counter) Add(delta uint64) { c.n += delta }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.n++ }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.n }

// Reset zeroes the counter.
func (c *Counter) Reset() { c.n = 0 }

// Snapshot captures a counter value at a point in time; Delta computes
// the increment since a prior snapshot.
type Snapshot uint64

// Snap returns a snapshot of the counter.
func (c *Counter) Snap() Snapshot { return Snapshot(c.n) }

// Delta returns the counter increment since the snapshot was taken.
func (c *Counter) Delta(s Snapshot) uint64 { return c.n - uint64(s) }

// Timeline accumulates event counts into fixed-width time buckets so
// that per-interval rates (e.g. MLC writebacks per 10 µs) can be
// reported the way the paper's timeline figures do.
type Timeline struct {
	bucket  sim.Duration
	counts  []uint64
	horizon sim.Time
}

// NewTimeline creates a timeline with the given bucket width.
func NewTimeline(bucket sim.Duration) *Timeline {
	if bucket <= 0 {
		panic("stats: non-positive timeline bucket")
	}
	return &Timeline{bucket: bucket}
}

// Bucket returns the bucket width.
func (tl *Timeline) Bucket() sim.Duration { return tl.bucket }

// Record adds n events at time t.
func (tl *Timeline) Record(t sim.Time, n uint64) {
	idx := int(int64(t) / int64(tl.bucket))
	for len(tl.counts) <= idx {
		tl.counts = append(tl.counts, 0)
	}
	tl.counts[idx] += n
	if t > tl.horizon {
		tl.horizon = t
	}
}

// NumBuckets returns the number of buckets with recorded data range.
func (tl *Timeline) NumBuckets() int { return len(tl.counts) }

// Count returns the raw event count in bucket i.
func (tl *Timeline) Count(i int) uint64 {
	if i < 0 || i >= len(tl.counts) {
		return 0
	}
	return tl.counts[i]
}

// Total returns the total number of events recorded.
func (tl *Timeline) Total() uint64 {
	var sum uint64
	for _, c := range tl.counts {
		sum += c
	}
	return sum
}

// RateMTPS returns the bucket-i event rate in millions of transactions
// per second, the unit used throughout the paper's figures.
func (tl *Timeline) RateMTPS(i int) float64 {
	secs := sim.Duration(tl.bucket).Seconds()
	return float64(tl.Count(i)) / secs / 1e6
}

// Series returns (time in µs of bucket start, rate in MTPS) pairs for
// every bucket, suitable for CSV output.
type SeriesPoint struct {
	TimeUS float64
	MTPS   float64
}

// Series materialises the whole timeline.
func (tl *Timeline) Series() []SeriesPoint {
	out := make([]SeriesPoint, len(tl.counts))
	for i := range tl.counts {
		out[i] = SeriesPoint{
			TimeUS: float64(int64(tl.bucket)*int64(i)) / float64(sim.Microsecond),
			MTPS:   tl.RateMTPS(i),
		}
	}
	return out
}

// PeakMTPS returns the maximum bucket rate.
func (tl *Timeline) PeakMTPS() float64 {
	var peak float64
	for i := range tl.counts {
		if r := tl.RateMTPS(i); r > peak {
			peak = r
		}
	}
	return peak
}

// LevelPoint is one sample of a level (gauge) series.
type LevelPoint struct {
	TimeUS float64
	Value  float64
}

// LevelSeries records point-in-time samples of a level quantity —
// occupancies, queue depths — as opposed to Timeline's event rates.
type LevelSeries struct {
	points []LevelPoint
}

// NewLevelSeries returns an empty gauge series.
func NewLevelSeries() *LevelSeries { return &LevelSeries{} }

// Record appends one sample taken at time t.
func (ls *LevelSeries) Record(t sim.Time, v float64) {
	ls.points = append(ls.points, LevelPoint{TimeUS: t.Microseconds(), Value: v})
}

// Points returns the recorded samples in order.
func (ls *LevelSeries) Points() []LevelPoint { return ls.points }

// Len returns the sample count.
func (ls *LevelSeries) Len() int { return len(ls.points) }

// Max returns the largest recorded value (0 when empty).
func (ls *LevelSeries) Max() float64 {
	var m float64
	for _, p := range ls.points {
		if p.Value > m {
			m = p.Value
		}
	}
	return m
}

// Last returns the most recent value (0 when empty).
func (ls *LevelSeries) Last() float64 {
	if len(ls.points) == 0 {
		return 0
	}
	return ls.points[len(ls.points)-1].Value
}

// LatencyDist collects per-packet latencies and answers percentile
// queries. Samples are stored raw (the experiments collect at most a
// few hundred thousand packets) so percentiles are exact.
type LatencyDist struct {
	samples []sim.Duration
	sorted  bool
}

// NewLatencyDist returns an empty distribution.
func NewLatencyDist() *LatencyDist { return &LatencyDist{} }

// Record adds one latency sample.
func (d *LatencyDist) Record(v sim.Duration) {
	d.samples = append(d.samples, v)
	d.sorted = false
}

// Reserve pre-grows the sample store to hold at least n samples, so a
// measured steady-state loop records without reallocating.
func (d *LatencyDist) Reserve(n int) {
	if cap(d.samples) >= n {
		return
	}
	grown := make([]sim.Duration, len(d.samples), n)
	copy(grown, d.samples)
	d.samples = grown
}

// Count returns the number of samples.
func (d *LatencyDist) Count() int { return len(d.samples) }

// Percentile returns the p-th percentile (0 < p <= 100) using the
// nearest-rank method. It returns 0 for an empty distribution.
func (d *LatencyDist) Percentile(p float64) sim.Duration {
	if len(d.samples) == 0 {
		return 0
	}
	if p <= 0 || p > 100 {
		panic(fmt.Sprintf("stats: percentile %v out of range", p))
	}
	if !d.sorted {
		sort.Slice(d.samples, func(i, j int) bool { return d.samples[i] < d.samples[j] })
		d.sorted = true
	}
	rank := int(p/100*float64(len(d.samples))+0.9999999) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(d.samples) {
		rank = len(d.samples) - 1
	}
	return d.samples[rank]
}

// P50 returns the median latency.
func (d *LatencyDist) P50() sim.Duration { return d.Percentile(50) }

// P99 returns the 99th-percentile latency.
func (d *LatencyDist) P99() sim.Duration { return d.Percentile(99) }

// Mean returns the average latency.
func (d *LatencyDist) Mean() sim.Duration {
	if len(d.samples) == 0 {
		return 0
	}
	var sum int64
	for _, v := range d.samples {
		sum += int64(v)
	}
	return sim.Duration(sum / int64(len(d.samples)))
}

// Max returns the maximum sample.
func (d *LatencyDist) Max() sim.Duration {
	var m sim.Duration
	for _, v := range d.samples {
		if v > m {
			m = v
		}
	}
	return m
}

// Gbps converts a byte count over a duration to gigabits per second.
func Gbps(bytes uint64, over sim.Duration) float64 {
	if over <= 0 {
		return 0
	}
	return float64(bytes) * 8 / over.Seconds() / 1e9
}

// MTPS converts a transaction count over a duration to millions of
// transactions per second.
func MTPS(n uint64, over sim.Duration) float64 {
	if over <= 0 {
		return 0
	}
	return float64(n) / over.Seconds() / 1e6
}
