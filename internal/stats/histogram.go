package stats

import (
	"fmt"
	"math/bits"

	"idio/internal/sim"
)

// Histogram is a log-bucketed latency histogram with bounded memory,
// for arbitrarily long steady-state runs where LatencyDist's exact
// sample storage would grow without bound. Buckets are arranged HDR
// style: 2^subBits linear sub-buckets per power-of-two magnitude, so
// the relative quantile error is bounded by 1/2^subBits.
type Histogram struct {
	subBits uint
	counts  [][]uint64 // [magnitude][sub-bucket]
	total   uint64
	min     sim.Duration
	max     sim.Duration
	sum     int64
}

// NewHistogram builds a histogram with 2^subBits sub-buckets per
// magnitude (subBits in [1,8]; 5 gives ~3% worst-case quantile error).
func NewHistogram(subBits uint) *Histogram {
	if subBits < 1 || subBits > 8 {
		panic(fmt.Sprintf("stats: histogram subBits %d out of range", subBits))
	}
	return &Histogram{subBits: subBits, min: -1}
}

// bucketFor maps a value to (magnitude, sub-bucket).
func (h *Histogram) bucketFor(v sim.Duration) (int, int) {
	if v < 0 {
		v = 0
	}
	u := uint64(v)
	mag := bits.Len64(u) // 0 for v==0
	if mag <= int(h.subBits) {
		return 0, int(u)
	}
	// Top subBits bits below the leading one select the sub-bucket.
	sub := int((u >> (uint(mag) - 1 - h.subBits)) & (1<<h.subBits - 1))
	return mag - int(h.subBits), sub
}

// lowerBound returns the smallest value mapping to (mag, sub).
func (h *Histogram) lowerBound(mag, sub int) sim.Duration {
	if mag == 0 {
		return sim.Duration(sub)
	}
	base := uint64(1) << (uint(mag) + h.subBits - 1)
	step := uint64(1) << (uint(mag) - 1)
	return sim.Duration(base + uint64(sub)*step)
}

// Record adds one sample.
func (h *Histogram) Record(v sim.Duration) {
	mag, sub := h.bucketFor(v)
	for len(h.counts) <= mag {
		h.counts = append(h.counts, make([]uint64, 1<<h.subBits))
	}
	h.counts[mag][sub]++
	h.total++
	h.sum += int64(v)
	if h.min < 0 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
}

// Reset clears every recorded sample while keeping the allocated
// bucket storage, so windowed collectors (per-phase percentiles in
// chaos runs) can reuse one histogram without per-window allocation.
func (h *Histogram) Reset() {
	for mag := range h.counts {
		row := h.counts[mag]
		for i := range row {
			row[i] = 0
		}
	}
	h.total = 0
	h.min = -1
	h.max = 0
	h.sum = 0
}

// Merge folds o's samples into h by bucket addition. Both histograms
// must use the same sub-bucket resolution. Because every tracked
// quantity (bucket counts, total, exact sum/min/max) is
// order-independent, merging per-domain histograms at collection time
// reproduces exactly the state one shared histogram would have
// reached recording the same samples — which is how a sharded cluster
// keeps its aggregate latency percentiles byte-identical to the
// single-domain run.
func (h *Histogram) Merge(o *Histogram) {
	if o == nil || o.total == 0 {
		return
	}
	if o.subBits != h.subBits {
		panic(fmt.Sprintf("stats: merging histograms with subBits %d and %d", o.subBits, h.subBits))
	}
	for len(h.counts) < len(o.counts) {
		h.counts = append(h.counts, make([]uint64, 1<<h.subBits))
	}
	for mag := range o.counts {
		row := h.counts[mag]
		for sub, c := range o.counts[mag] {
			row[sub] += c
		}
	}
	h.total += o.total
	h.sum += o.sum
	if h.min < 0 || o.min < h.min {
		h.min = o.min
	}
	if o.max > h.max {
		h.max = o.max
	}
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() uint64 { return h.total }

// Mean returns the exact average (the sum is tracked exactly).
func (h *Histogram) Mean() sim.Duration {
	if h.total == 0 {
		return 0
	}
	return sim.Duration(h.sum / int64(h.total))
}

// Min and Max are exact.
func (h *Histogram) Min() sim.Duration {
	if h.min < 0 {
		return 0
	}
	return h.min
}

// Max returns the largest recorded sample.
func (h *Histogram) Max() sim.Duration { return h.max }

// Quantile returns an estimate of the q-quantile (0 < q <= 1), with
// relative error bounded by the bucket resolution. Exact min/max are
// returned at the extremes.
func (h *Histogram) Quantile(q float64) sim.Duration {
	if h.total == 0 {
		return 0
	}
	if q <= 0 {
		return h.Min()
	}
	if q >= 1 {
		return h.max
	}
	rank := uint64(q * float64(h.total))
	if rank >= h.total {
		rank = h.total - 1
	}
	var seen uint64
	for mag := range h.counts {
		for sub, c := range h.counts[mag] {
			seen += c
			if seen > rank {
				v := h.lowerBound(mag, sub)
				if v < h.Min() {
					v = h.Min()
				}
				if v > h.max {
					v = h.max
				}
				return v
			}
		}
	}
	return h.max
}

// P50 returns the median estimate.
func (h *Histogram) P50() sim.Duration { return h.Quantile(0.50) }

// P99 returns the 99th-percentile estimate.
func (h *Histogram) P99() sim.Duration { return h.Quantile(0.99) }
