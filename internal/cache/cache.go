// Package cache implements a set-associative cache tag store with
// pluggable replacement and per-allocation way masks.
//
// Way masks are the mechanism behind two policies the paper depends on:
// DDIO write-allocates are confined to a small number of LLC ways
// (2 of 11 on Skylake-SP), and Fig. 4's "_1way" configurations confine
// an application to a single LLC way via way partitioning. A mask
// restricts only *victim selection* on fills; hits are serviced from
// any way, matching real CAT/DDIO semantics.
package cache

import (
	"fmt"
	"math/bits"
)

// WayMask selects the ways an allocation may victimise. Bit i set means
// way i is allowed.
type WayMask uint64

// AllWays allows allocation into every way.
const AllWays WayMask = ^WayMask(0)

// FirstN returns a mask of the first n ways (the convention used for
// DDIO ways throughout this repo).
func FirstN(n int) WayMask {
	if n <= 0 {
		return 0
	}
	if n >= 64 {
		return AllWays
	}
	return WayMask(1<<uint(n)) - 1
}

// ExceptFirstN returns a mask of every way except the first n.
func ExceptFirstN(n int) WayMask { return ^FirstN(n) }

// Count returns the number of ways enabled in the mask (capped at 64).
func (m WayMask) Count() int { return bits.OnesCount64(uint64(m)) }

// Policy selects the replacement algorithm.
type Policy int

const (
	// LRU is true least-recently-used via a monotonic use clock.
	LRU Policy = iota
	// TreePLRU is the tree pseudo-LRU used by real MLC/LLC designs.
	// It requires power-of-two associativity.
	TreePLRU
	// SRRIP is static re-reference interval prediction (2-bit RRPV),
	// the family modern Intel LLCs approximate. Streaming DMA data
	// inserts with a long predicted re-reference interval, so it ages
	// out ahead of hot application lines — a behaviour LRU cannot
	// express.
	SRRIP
)

func (p Policy) String() string {
	switch p {
	case LRU:
		return "lru"
	case TreePLRU:
		return "tree-plru"
	case SRRIP:
		return "srrip"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// SRRIP constants: 2-bit re-reference prediction values.
const (
	rrpvBits    = 2
	rrpvMax     = 1<<rrpvBits - 1 // 3: predicted distant re-reference
	rrpvInsert  = rrpvMax - 1     // 2: long interval on insertion
	rrpvPromote = 0               // hit promotes to near-immediate
)

// Line is a tag-store entry. Addr is the full line address (the tag and
// index are not split out; the set index is derived on lookup).
type Line struct {
	Addr  uint64 // line address (byte address >> 6)
	Valid bool
	Dirty bool
	// IO marks lines written by a PCIe transaction that have not yet
	// been re-classified by a CPU-side fill. The DMA-bloating analysis
	// (Sec. III, Observation 3) depends on tracking when I/O data loses
	// this classification.
	IO      bool
	lastUse uint64
}

// invalidTag marks an empty way in Cache.tags. Simulated line
// addresses are byte addresses >> 6 and never reach 2^64-1.
const invalidTag = ^uint64(0)

// Victim describes a line displaced by an Insert.
type Victim struct {
	Addr  uint64
	Dirty bool
	IO    bool
}

// Stats are the cache's aggregate event counts.
type Stats struct {
	Hits       uint64
	Misses     uint64
	Inserts    uint64
	Evictions  uint64 // valid victims displaced by fills
	DirtyEvict uint64 // subset of Evictions with the dirty bit set
	Invals     uint64 // explicit invalidations that hit
}

// Config describes cache geometry.
type Config struct {
	Name      string
	SizeBytes int
	Assoc     int
	Policy    Policy
}

// Cache is a single-level tag store. It tracks no data payloads: the
// simulator reasons purely about residency and state transitions.
type Cache struct {
	cfg      Config
	sets     int
	setShift uint
	lines    []Line // sets*assoc, row-major
	// tags mirrors lines' (Valid, Addr) pairs as one word per way —
	// invalidTag when the way is empty, the line address otherwise. A
	// 16-way set's tags span two cache lines instead of the eight that
	// the Line structs occupy, which matters because find is the
	// hottest loop in the whole simulator (every DMA line write, CPU
	// access and prefetch probes a set).
	tags     []uint64
	plru     []uint64 // one tree per set (TreePLRU only)
	useClock uint64
	occ      int // valid-line count, maintained incrementally
	stats    Stats
}

// New builds a cache from the configuration. SizeBytes must be a
// multiple of Assoc*64 and the resulting set count a power of two.
func New(cfg Config) *Cache {
	if cfg.Assoc <= 0 || cfg.Assoc > 64 {
		panic(fmt.Sprintf("cache %s: bad associativity %d", cfg.Name, cfg.Assoc))
	}
	lineCount := cfg.SizeBytes / 64
	if lineCount <= 0 || lineCount%cfg.Assoc != 0 {
		panic(fmt.Sprintf("cache %s: size %d not divisible into %d ways", cfg.Name, cfg.SizeBytes, cfg.Assoc))
	}
	sets := lineCount / cfg.Assoc
	if sets&(sets-1) != 0 {
		panic(fmt.Sprintf("cache %s: set count %d not a power of two", cfg.Name, sets))
	}
	if cfg.Policy == TreePLRU && cfg.Assoc&(cfg.Assoc-1) != 0 {
		panic(fmt.Sprintf("cache %s: tree-PLRU needs power-of-two associativity, got %d", cfg.Name, cfg.Assoc))
	}
	c := &Cache{
		cfg:      cfg,
		sets:     sets,
		setShift: uint(bits.TrailingZeros(uint(sets))),
		lines:    make([]Line, sets*cfg.Assoc),
		tags:     make([]uint64, sets*cfg.Assoc),
	}
	for i := range c.tags {
		c.tags[i] = invalidTag
	}
	if cfg.Policy == TreePLRU {
		c.plru = make([]uint64, sets)
	}
	return c
}

// Name returns the configured name.
func (c *Cache) Name() string { return c.cfg.Name }

// NumSets returns the set count.
func (c *Cache) NumSets() int { return c.sets }

// Assoc returns the associativity.
func (c *Cache) Assoc() int { return c.cfg.Assoc }

// SizeBytes returns the capacity in bytes.
func (c *Cache) SizeBytes() int { return c.cfg.SizeBytes }

// Stats returns a copy of the aggregate counters.
func (c *Cache) Stats() Stats { return c.stats }

func (c *Cache) setIndex(lineAddr uint64) int {
	return int(lineAddr & uint64(c.sets-1))
}

func (c *Cache) set(lineAddr uint64) []Line {
	si := c.setIndex(lineAddr)
	return c.lines[si*c.cfg.Assoc : (si+1)*c.cfg.Assoc]
}

func (c *Cache) find(lineAddr uint64) (int, *Line) {
	base := c.setIndex(lineAddr) * c.cfg.Assoc
	tags := c.tags[base : base+c.cfg.Assoc]
	for w := range tags {
		if tags[w] == lineAddr {
			return w, &c.lines[base+w]
		}
	}
	return -1, nil
}

// Lookup probes for lineAddr. When touch is true a hit updates
// replacement state (a snoop or occupancy probe passes false). It
// returns the entry (valid until the next mutation) or nil on miss.
// Lookup counts hits/misses only when touch is true so that occupancy
// scans do not pollute the statistics.
func (c *Cache) Lookup(lineAddr uint64, touch bool) *Line {
	way, ln := c.find(lineAddr)
	if ln == nil {
		if touch {
			c.stats.Misses++
		}
		return nil
	}
	if touch {
		c.stats.Hits++
		c.touch(lineAddr, way)
	}
	return ln
}

// Contains reports residency without touching replacement state or
// statistics.
func (c *Cache) Contains(lineAddr uint64) bool {
	_, ln := c.find(lineAddr)
	return ln != nil
}

// touch updates replacement state on a hit. The lastUse field holds a
// use clock under LRU and the RRPV under SRRIP.
func (c *Cache) touch(lineAddr uint64, way int) {
	switch c.cfg.Policy {
	case LRU:
		c.useClock++
		c.set(lineAddr)[way].lastUse = c.useClock
	case TreePLRU:
		c.plruTouch(c.setIndex(lineAddr), way)
	case SRRIP:
		c.set(lineAddr)[way].lastUse = rrpvPromote
	}
}

// place initialises replacement state for a fresh fill.
func (c *Cache) place(lineAddr uint64, way int) {
	if c.cfg.Policy == SRRIP {
		c.set(lineAddr)[way].lastUse = rrpvInsert
		return
	}
	c.touch(lineAddr, way)
}

// Insert fills lineAddr with the given state. If the line is already
// present it is updated in place (dirty/IO bits OR in, IO bit is
// *replaced*: a CPU-side insert clears I/O classification). The fill
// victimises only ways allowed by mask. It returns the displaced victim
// if one was valid.
func (c *Cache) Insert(lineAddr uint64, dirty, io bool, mask WayMask) (Victim, bool) {
	c.stats.Inserts++
	if way, ln := c.find(lineAddr); ln != nil {
		ln.Dirty = ln.Dirty || dirty
		ln.IO = io
		c.touch(lineAddr, way)
		return Victim{}, false
	}
	way := c.victimWay(lineAddr, mask)
	set := c.set(lineAddr)
	var v Victim
	evicted := false
	if set[way].Valid {
		v = Victim{Addr: set[way].Addr, Dirty: set[way].Dirty, IO: set[way].IO}
		evicted = true
		c.stats.Evictions++
		if v.Dirty {
			c.stats.DirtyEvict++
		}
	}
	if !evicted {
		c.occ++
	}
	set[way] = Line{Addr: lineAddr, Valid: true, Dirty: dirty, IO: io}
	c.tags[c.setIndex(lineAddr)*c.cfg.Assoc+way] = lineAddr
	c.place(lineAddr, way)
	return v, evicted
}

// victimWay picks the fill way: an invalid allowed way if any exists,
// otherwise the replacement policy's choice among allowed ways.
//
// Invalid ways are scanned from the HIGHEST index down. DDIO ways sit
// at the low indices by convention, so unmasked (CPU-side) fills
// prefer invalid slots outside the DDIO region and only squat in a
// DDIO way when nothing else is free. Without this bias, slots freed
// by IDIO's prefetcher attract application victims that the very next
// DMA write-allocate clobbers — wrecking the LLC isolation the
// mechanism is supposed to provide.
func (c *Cache) victimWay(lineAddr uint64, mask WayMask) int {
	if mask == 0 {
		panic(fmt.Sprintf("cache %s: empty way mask", c.cfg.Name))
	}
	set := c.set(lineAddr)
	base := c.setIndex(lineAddr) * c.cfg.Assoc
	for w := len(set) - 1; w >= 0; w-- {
		if mask&(1<<uint(w)) != 0 && c.tags[base+w] == invalidTag {
			return w
		}
	}
	switch c.cfg.Policy {
	case TreePLRU:
		return c.plruVictim(c.setIndex(lineAddr), mask)
	case SRRIP:
		// Find a distant-re-reference line among allowed ways; if none,
		// age every allowed way and retry (guaranteed to terminate in
		// at most rrpvMax rounds).
		for {
			for w := range set {
				if mask&(1<<uint(w)) != 0 && set[w].lastUse >= rrpvMax {
					return w
				}
			}
			for w := range set {
				if mask&(1<<uint(w)) != 0 {
					set[w].lastUse++
				}
			}
		}
	default:
		best, bestUse := -1, ^uint64(0)
		for w := range set {
			if mask&(1<<uint(w)) == 0 {
				continue
			}
			if set[w].lastUse < bestUse {
				best, bestUse = w, set[w].lastUse
			}
		}
		if best < 0 {
			panic(fmt.Sprintf("cache %s: mask %x selects no way of %d", c.cfg.Name, mask, c.cfg.Assoc))
		}
		return best
	}
}

// Invalidate drops lineAddr if present, returning whether it was
// present and whether it was dirty. No writeback is generated here;
// the caller decides what to do with a dirty victim (this is exactly
// the distinction IDIO's invalidate-without-writeback exploits).
func (c *Cache) Invalidate(lineAddr uint64) (present, dirty bool) {
	way, ln := c.find(lineAddr)
	if ln == nil {
		return false, false
	}
	c.stats.Invals++
	dirty = ln.Dirty
	*ln = Line{}
	c.tags[c.setIndex(lineAddr)*c.cfg.Assoc+way] = invalidTag
	c.occ--
	return true, dirty
}

// SetDirty marks a resident line dirty; it reports whether the line was
// present.
func (c *Cache) SetDirty(lineAddr uint64) bool {
	_, ln := c.find(lineAddr)
	if ln == nil {
		return false
	}
	ln.Dirty = true
	return true
}

// Occupancy returns the number of valid lines in O(1).
func (c *Cache) Occupancy() int { return c.occ }

// LoadFraction returns occupancy as a fraction of capacity.
func (c *Cache) LoadFraction() float64 {
	return float64(c.occ) / float64(len(c.lines))
}

// OccupancyIO returns the number of valid lines still classified as
// I/O data.
func (c *Cache) OccupancyIO() int {
	n := 0
	for i := range c.lines {
		if c.lines[i].Valid && c.lines[i].IO {
			n++
		}
	}
	return n
}

// ForEach visits every valid line. Mutating the cache during iteration
// is not allowed.
func (c *Cache) ForEach(fn func(Line)) {
	for i := range c.lines {
		if c.lines[i].Valid {
			fn(c.lines[i])
		}
	}
}

// Flush invalidates the entire cache, returning the dirty lines that
// would have been written back.
func (c *Cache) Flush() []Victim {
	var out []Victim
	for i := range c.lines {
		if c.lines[i].Valid {
			if c.lines[i].Dirty {
				out = append(out, Victim{Addr: c.lines[i].Addr, Dirty: true, IO: c.lines[i].IO})
			}
			c.lines[i] = Line{}
		}
		c.tags[i] = invalidTag
	}
	c.occ = 0
	return out
}

// --- tree pseudo-LRU ---
//
// The PLRU tree for an a-way set is a complete binary tree with a-1
// internal nodes stored as bits of a uint64; bit k is node k in
// heap order. A 0 bit points left, 1 points right; on a touch every
// node on the path is set to point *away* from the touched way.

func (c *Cache) plruTouch(setIdx, way int) {
	a := c.cfg.Assoc
	node := 0
	lo, hi := 0, a
	tree := c.plru[setIdx]
	// Bit semantics: node bit set means the next victim lies in the
	// right subtree. Touching a way flips each node on its path to
	// point at the opposite subtree.
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if way < mid {
			tree |= 1 << uint(node)
			node = 2*node + 1
			hi = mid
		} else {
			tree &^= 1 << uint(node)
			node = 2*node + 2
			lo = mid
		}
	}
	c.plru[setIdx] = tree
}

// plruVictim walks the tree toward the pseudo-LRU way; if that way is
// excluded by the mask, it falls back to the lowest allowed way whose
// subtree the walk would have abandoned (a standard hardware
// simplification for partitioned PLRU).
func (c *Cache) plruVictim(setIdx int, mask WayMask) int {
	a := c.cfg.Assoc
	tree := c.plru[setIdx]
	node := 0
	lo, hi := 0, a
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		goRight := tree&(1<<uint(node)) != 0
		// Respect the mask: if the chosen half has no allowed way,
		// take the other half.
		if goRight {
			if !maskHasWayIn(mask, mid, hi) {
				goRight = false
			}
		} else {
			if !maskHasWayIn(mask, lo, mid) {
				goRight = true
			}
		}
		if goRight {
			node = 2*node + 2
			lo = mid
		} else {
			node = 2*node + 1
			hi = mid
		}
	}
	if mask&(1<<uint(lo)) == 0 {
		panic(fmt.Sprintf("cache %s: PLRU walk reached disallowed way %d (mask %x)", c.cfg.Name, lo, mask))
	}
	return lo
}

func maskHasWayIn(mask WayMask, lo, hi int) bool {
	for w := lo; w < hi; w++ {
		if mask&(1<<uint(w)) != 0 {
			return true
		}
	}
	return false
}
