package cache

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func mk(t *testing.T, size, assoc int, p Policy) *Cache {
	t.Helper()
	return New(Config{Name: "t", SizeBytes: size, Assoc: assoc, Policy: p})
}

func TestWayMaskHelpers(t *testing.T) {
	if FirstN(2) != 0b11 {
		t.Fatalf("FirstN(2) = %b", FirstN(2))
	}
	if FirstN(0) != 0 {
		t.Fatal("FirstN(0) must be empty")
	}
	if FirstN(64) != AllWays || FirstN(100) != AllWays {
		t.Fatal("FirstN saturates at 64")
	}
	if ExceptFirstN(2)&0b11 != 0 {
		t.Fatal("ExceptFirstN(2) must exclude first two ways")
	}
	if FirstN(3).Count() != 3 {
		t.Fatalf("count = %d", FirstN(3).Count())
	}
}

func TestGeometryValidation(t *testing.T) {
	cases := []Config{
		{SizeBytes: 0, Assoc: 4},
		{SizeBytes: 4096, Assoc: 0},
		{SizeBytes: 4096, Assoc: 65},
		{SizeBytes: 64 * 3, Assoc: 2},                    // lines not divisible by assoc
		{SizeBytes: 64 * 12, Assoc: 4},                   // 3 sets, not power of two
		{SizeBytes: 64 * 12, Assoc: 3, Policy: TreePLRU}, // non-pow2 assoc for PLRU
	}
	for i, cfg := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic for %+v", i, cfg)
				}
			}()
			New(cfg)
		}()
	}
}

func TestBasicInsertLookup(t *testing.T) {
	c := mk(t, 64*8, 4, LRU) // 2 sets, 4 ways
	if c.NumSets() != 2 || c.Assoc() != 4 {
		t.Fatalf("geometry %d sets %d ways", c.NumSets(), c.Assoc())
	}
	if c.Lookup(10, true) != nil {
		t.Fatal("empty cache should miss")
	}
	_, ev := c.Insert(10, true, false, AllWays)
	if ev {
		t.Fatal("insert into empty set should not evict")
	}
	ln := c.Lookup(10, true)
	if ln == nil || !ln.Dirty || ln.IO {
		t.Fatalf("lookup after insert: %+v", ln)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Inserts != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestInsertUpdatesInPlace(t *testing.T) {
	c := mk(t, 64*8, 4, LRU)
	c.Insert(10, false, true, FirstN(2))
	// Re-insert as clean CPU data: dirty stays false, IO is cleared.
	_, ev := c.Insert(10, false, false, AllWays)
	if ev {
		t.Fatal("in-place update must not evict")
	}
	ln := c.Lookup(10, false)
	if ln.Dirty || ln.IO {
		t.Fatalf("update in place: %+v", ln)
	}
	// Dirty bit ORs in.
	c.Insert(10, true, false, AllWays)
	if !c.Lookup(10, false).Dirty {
		t.Fatal("dirty must OR in")
	}
	if c.Occupancy() != 1 {
		t.Fatalf("occupancy = %d, want 1", c.Occupancy())
	}
}

func TestLRUEviction(t *testing.T) {
	c := mk(t, 64*4, 4, LRU) // 1 set, 4 ways
	for i := uint64(0); i < 4; i++ {
		c.Insert(i, false, false, AllWays)
	}
	c.Lookup(0, true) // make 0 most recent; LRU is now 1
	v, ev := c.Insert(100, false, false, AllWays)
	if !ev || v.Addr != 1 {
		t.Fatalf("victim %+v (ev=%v), want line 1", v, ev)
	}
}

func TestDirtyVictimReported(t *testing.T) {
	c := mk(t, 64*2, 2, LRU)
	c.Insert(0, true, true, AllWays)
	c.Insert(2, false, false, AllWays)
	v, ev := c.Insert(4, false, false, AllWays)
	if !ev || !v.Dirty || !v.IO || v.Addr != 0 {
		t.Fatalf("victim %+v", v)
	}
	st := c.Stats()
	if st.Evictions != 1 || st.DirtyEvict != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestWayMaskConfinesFills(t *testing.T) {
	c := mk(t, 64*8, 8, LRU) // 1 set, 8 ways
	// Fill ways 0-1 via DDIO mask repeatedly: occupancy must never
	// exceed 2 for distinct lines.
	for i := uint64(0); i < 16; i++ {
		c.Insert(i, true, true, FirstN(2))
	}
	if c.Occupancy() != 2 {
		t.Fatalf("occupancy = %d, want 2 (mask confines fills)", c.Occupancy())
	}
	// Non-DDIO fills never displace lines outside their mask.
	c.Insert(100, false, false, ExceptFirstN(2))
	if c.Occupancy() != 3 {
		t.Fatalf("occupancy = %d, want 3", c.Occupancy())
	}
}

func TestMaskedHitStillServed(t *testing.T) {
	c := mk(t, 64*4, 4, LRU)
	c.Insert(7, false, true, FirstN(2))
	// A lookup with no mask involvement must hit even though a future
	// fill with a different mask wouldn't allocate there.
	if c.Lookup(7, true) == nil {
		t.Fatal("hit must be served from any way")
	}
}

func TestEmptyMaskPanics(t *testing.T) {
	c := mk(t, 64*4, 4, LRU)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for empty mask")
		}
	}()
	c.Insert(1, false, false, 0)
}

func TestInvalidate(t *testing.T) {
	c := mk(t, 64*4, 4, LRU)
	c.Insert(5, true, false, AllWays)
	present, dirty := c.Invalidate(5)
	if !present || !dirty {
		t.Fatalf("invalidate: present=%v dirty=%v", present, dirty)
	}
	if c.Contains(5) {
		t.Fatal("line still present after invalidate")
	}
	present, _ = c.Invalidate(5)
	if present {
		t.Fatal("double invalidate must miss")
	}
	if c.Stats().Invals != 1 {
		t.Fatalf("inval count %d", c.Stats().Invals)
	}
}

func TestSetDirty(t *testing.T) {
	c := mk(t, 64*4, 4, LRU)
	if c.SetDirty(9) {
		t.Fatal("SetDirty on absent line must return false")
	}
	c.Insert(9, false, false, AllWays)
	if !c.SetDirty(9) || !c.Lookup(9, false).Dirty {
		t.Fatal("SetDirty failed")
	}
}

func TestFlush(t *testing.T) {
	c := mk(t, 64*4, 4, LRU)
	c.Insert(1, true, false, AllWays)
	c.Insert(2, false, false, AllWays)
	c.Insert(3, true, true, AllWays)
	dirty := c.Flush()
	if len(dirty) != 2 {
		t.Fatalf("flush returned %d dirty lines, want 2", len(dirty))
	}
	if c.Occupancy() != 0 {
		t.Fatal("cache not empty after flush")
	}
}

func TestOccupancyIO(t *testing.T) {
	c := mk(t, 64*8, 8, LRU)
	c.Insert(1, true, true, AllWays)
	c.Insert(2, true, false, AllWays)
	c.Insert(3, false, true, AllWays)
	if c.OccupancyIO() != 2 {
		t.Fatalf("io occupancy = %d, want 2", c.OccupancyIO())
	}
}

func TestLookupNoTouchDoesNotCount(t *testing.T) {
	c := mk(t, 64*4, 4, LRU)
	c.Insert(1, false, false, AllWays)
	c.Lookup(1, false)
	c.Lookup(99, false)
	st := c.Stats()
	if st.Hits != 0 || st.Misses != 0 {
		t.Fatalf("untouched lookups counted: %+v", st)
	}
}

func TestTreePLRUAscendingTouchVictimisesWayZero(t *testing.T) {
	c := mk(t, 64*8, 8, TreePLRU) // 1 set
	for i := uint64(0); i < 8; i++ {
		c.Insert(i, false, false, AllWays)
	}
	// An ascending full-set touch leaves every tree node pointing left,
	// so the unambiguous tree-PLRU victim is way 0.
	for i := uint64(0); i < 8; i++ {
		c.Lookup(i, true)
	}
	v, ev := c.Insert(100, false, false, AllWays)
	if !ev || v.Addr != 0 {
		t.Fatalf("PLRU victim %+v, want line 0", v)
	}
}

// Tree-PLRU guarantee: the victim is never the most recently touched way.
func TestTreePLRUNeverEvictsMostRecent(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	c := mk(t, 64*8, 8, TreePLRU)
	for i := uint64(0); i < 8; i++ {
		c.Insert(i, false, false, AllWays)
	}
	resident := map[uint64]bool{0: true, 1: true, 2: true, 3: true, 4: true, 5: true, 6: true, 7: true}
	last := uint64(7)
	for n := uint64(100); n < 400; n++ {
		// Touch a random resident line, then fill a new one.
		var pick uint64
		for pick = range resident {
			break
		}
		_ = rng
		c.Lookup(pick, true)
		last = pick
		v, ev := c.Insert(n, false, false, AllWays)
		if !ev {
			t.Fatalf("full set must evict")
		}
		if v.Addr == last {
			t.Fatalf("PLRU evicted most recently touched line %d", last)
		}
		delete(resident, v.Addr)
		resident[n] = true
	}
}

func TestTreePLRUMaskedVictim(t *testing.T) {
	c := mk(t, 64*8, 8, TreePLRU)
	for i := uint64(0); i < 8; i++ {
		c.Insert(i, false, false, AllWays)
	}
	// With a mask of only ways 0-1, fills must always land there.
	for i := uint64(10); i < 30; i++ {
		c.Insert(i, false, true, FirstN(2))
	}
	io := c.OccupancyIO()
	if io > 2 {
		t.Fatalf("masked PLRU fills spilled: %d IO lines", io)
	}
}

func TestSRRIPHitPromotion(t *testing.T) {
	c := mk(t, 64*4, 4, SRRIP) // 1 set
	for i := uint64(0); i < 4; i++ {
		c.Insert(i, false, false, AllWays)
	}
	// Promote line 0 (hit); lines 1-3 stay at the insertion RRPV, so
	// the next fill must victimise one of them, never line 0.
	c.Lookup(0, true)
	for n := uint64(10); n < 13; n++ {
		v, ev := c.Insert(n, false, false, AllWays)
		if !ev {
			t.Fatal("full set must evict")
		}
		if v.Addr == 0 {
			t.Fatal("SRRIP must not evict the promoted hot line")
		}
	}
	if !c.Contains(0) {
		t.Fatal("hot line must survive the streaming fills")
	}
}

func TestSRRIPStreamingDoesNotThrashHotSet(t *testing.T) {
	// The SRRIP selling point: a hot working set re-referenced between
	// streaming fills survives, while under LRU-style insertion the
	// stream would cycle everything out.
	c := mk(t, 64*8, 8, SRRIP)
	hot := []uint64{0, 1, 2, 3}
	for _, h := range hot {
		c.Insert(h, false, false, AllWays)
		c.Lookup(h, true) // promote
	}
	for n := uint64(100); n < 200; n++ {
		c.Insert(n, false, false, AllWays) // stream
		for _, h := range hot {
			c.Lookup(h, true) // keep re-referencing
		}
	}
	for _, h := range hot {
		if !c.Contains(h) {
			t.Fatalf("hot line %d evicted by stream", h)
		}
	}
}

func TestSRRIPMaskedVictimStaysInMask(t *testing.T) {
	c := mk(t, 64*8, 8, SRRIP)
	for i := uint64(0); i < 8; i++ {
		c.Insert(i, false, false, AllWays)
	}
	for n := uint64(50); n < 80; n++ {
		c.Insert(n, false, true, FirstN(2))
	}
	if io := c.OccupancyIO(); io > 2 {
		t.Fatalf("masked SRRIP fills spilled: %d IO lines", io)
	}
	// Invalid-way scans run high-to-low, so the initial fills placed
	// lines 0..7 into ways 7..0; the mask (ways 0-1) can only have
	// displaced lines 6 and 7. Lines 0..5 must survive.
	for i := uint64(0); i < 6; i++ {
		if !c.Contains(i) {
			t.Fatalf("line %d outside the mask was evicted", i)
		}
	}
}

func TestForEachVisitsAllValid(t *testing.T) {
	c := mk(t, 64*16, 4, LRU)
	want := map[uint64]bool{}
	for i := uint64(0); i < 10; i++ {
		c.Insert(i*3, false, false, AllWays)
		want[i*3] = true
	}
	got := map[uint64]bool{}
	c.ForEach(func(l Line) { got[l.Addr] = true })
	if len(got) != len(want) {
		t.Fatalf("ForEach visited %d lines, want %d", len(got), len(want))
	}
}

// Property: occupancy never exceeds capacity; a line just inserted is
// always resident; eviction only reports lines that were inserted.
func TestQuickCacheInvariants(t *testing.T) {
	f := func(ops []uint16, usePLRU bool) bool {
		policy := LRU
		if usePLRU {
			policy = TreePLRU
		}
		c := New(Config{Name: "q", SizeBytes: 64 * 32, Assoc: 4, Policy: policy})
		inserted := map[uint64]bool{}
		for _, op := range ops {
			line := uint64(op % 97)
			switch op % 3 {
			case 0:
				v, ev := c.Insert(line, op%5 == 0, op%7 == 0, AllWays)
				inserted[line] = true
				if !c.Contains(line) {
					return false
				}
				if ev && !inserted[v.Addr] {
					return false
				}
			case 1:
				c.Lookup(line, true)
			case 2:
				c.Invalidate(line)
			}
			if c.Occupancy() > 32 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: with an n-way mask, at most n distinct masked fills survive
// per set.
func TestQuickMaskOccupancyBound(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for iter := 0; iter < 30; iter++ {
		n := rng.Intn(3) + 1
		c := New(Config{Name: "q", SizeBytes: 64 * 64, Assoc: 8, Policy: LRU})
		for i := 0; i < 500; i++ {
			c.Insert(uint64(rng.Intn(4096)), false, true, FirstN(n))
		}
		if got, max := c.OccupancyIO(), n*c.NumSets(); got > max {
			t.Fatalf("n=%d: IO occupancy %d > %d", n, got, max)
		}
	}
}

// Property: the O(1) occupancy counter always equals a full scan, for
// every policy and any op sequence.
func TestQuickOccupancyCounterMatchesScan(t *testing.T) {
	scan := func(c *Cache) int {
		n := 0
		c.ForEach(func(Line) { n++ })
		return n
	}
	f := func(ops []uint16, policyPick bool) bool {
		policy := LRU
		if policyPick {
			policy = SRRIP
		}
		c := New(Config{Name: "q", SizeBytes: 64 * 32, Assoc: 4, Policy: policy})
		for _, op := range ops {
			line := uint64(op % 61)
			switch op % 4 {
			case 0, 1:
				c.Insert(line, op%5 == 0, op%3 == 0, AllWays)
			case 2:
				c.Invalidate(line)
			case 3:
				if op%7 == 0 {
					c.Flush()
				} else {
					c.Lookup(line, true)
				}
			}
			if c.Occupancy() != scan(c) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: SRRIP victim selection always terminates and stays within
// the mask for arbitrary fill sequences.
func TestQuickSRRIPMaskedFills(t *testing.T) {
	f := func(lines []uint16, maskN uint8) bool {
		n := int(maskN%3) + 1
		c := New(Config{Name: "q", SizeBytes: 64 * 32, Assoc: 8, Policy: SRRIP})
		for _, l := range lines {
			c.Insert(uint64(l), false, true, FirstN(n))
		}
		return c.OccupancyIO() <= n*c.NumSets()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkInsertLookupLRU(b *testing.B) {
	c := New(Config{Name: "b", SizeBytes: 1 << 20, Assoc: 16, Policy: LRU})
	rng := rand.New(rand.NewSource(1))
	addrs := make([]uint64, 4096)
	for i := range addrs {
		addrs[i] = rng.Uint64() % 65536
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := addrs[i%len(addrs)]
		if c.Lookup(a, true) == nil {
			c.Insert(a, false, false, AllWays)
		}
	}
}
