package flow

import "testing"

// BenchmarkFlowTableLookup measures hit lookups at the populations the
// churn sweep runs (1k → 1M resident flows); ns/op should stay flat —
// the O(1) claim the million-flow engine rests on.
func BenchmarkFlowTableLookup(b *testing.B) {
	for _, n := range []int{1 << 10, 1 << 17, 1 << 20} {
		b.Run(sizeName(n), func(b *testing.B) {
			tb := New[uint64](n)
			for k := 0; k < n; k++ {
				tb.Put(uint64(k), uint64(k))
			}
			b.ReportAllocs()
			b.ResetTimer()
			var sink uint64
			for i := 0; i < b.N; i++ {
				v, _ := tb.Get(uint64(i & (n - 1)))
				sink += v
			}
			_ = sink
		})
	}
}

// BenchmarkFlowTableChurn measures the steady-state delete+insert pair
// (one flow departs, one arrives) at a resident population of 1M.
func BenchmarkFlowTableChurn(b *testing.B) {
	const n = 1 << 20
	tb := New[uint64](n)
	for k := 0; k < n; k++ {
		tb.Put(uint64(k), uint64(k))
	}
	b.ReportAllocs()
	b.ResetTimer()
	old, next := uint64(0), uint64(n)
	for i := 0; i < b.N; i++ {
		tb.Delete(old)
		tb.Put(next, next)
		old++
		next++
	}
}

func sizeName(n int) string {
	switch {
	case n >= 1<<20:
		return "1M"
	case n >= 1<<17:
		return "128k"
	default:
		return "1k"
	}
}
