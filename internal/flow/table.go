// Package flow provides a compact open-addressing hash table for
// per-flow simulation state, sized for millions of entries.
//
// The design targets are the million-flow engine's (ROADMAP) three
// constraints, which rule out the obvious alternatives:
//
//   - Inline slots, no per-entry pointers: a map[uint64]V allocates a
//     bucket chain and hides its layout from the allocator; a slice of
//     robin-hood slots is one allocation, cache-dense, and invisible
//     to the GC when V holds no pointers. sync.Map is worse still —
//     every store boxes, and its amortized guarantees assume
//     concurrent readers the single-threaded event loop never has.
//   - Deterministic iteration: Go map range order is randomized per
//     run, so any model decision derived from it would break the
//     byte-identical-output guarantee. Robin-hood layout is a pure
//     function of the insert/delete history, and Range walks slots in
//     index order — same history, same order, every run.
//   - Zero steady-state allocations: a warm table recycles its slots
//     forever. Growth (growable mode) rehashes into a doubled array —
//     amortized, and absent entirely once the population peak has
//     been seen. Fixed mode never allocates after construction and
//     models a hardware table: inserts beyond capacity are refused
//     and counted, exactly like a full NIC filter table.
//
// Robin-hood hashing keeps probe sequences short at high load by
// displacing rich entries (small probe distance) in favour of poor
// ones: the variance of probe lengths stays low up to the 7/8 load
// bound enforced here, so lookups stay O(1) with tight constants.
// Deletion backward-shifts the displaced run instead of tombstoning,
// so mixed insert/delete churn never degrades the table.
package flow

// maxLoadNum/maxLoadDen bound the load factor at 7/8: robin-hood probe
// variance is still small there, and the bound makes fixed-capacity
// tables refuse inserts before probe chains degenerate.
const (
	maxLoadNum = 7
	maxLoadDen = 8
)

// slot is one inline table entry. dist is the probe distance plus one
// (the "riches" of robin-hood hashing); zero marks the slot empty, so
// any uint64 — including zero — is a legal key.
type slot[V any] struct {
	key  uint64
	dist uint16
	val  V
}

// Table is a robin-hood open-addressing hash table keyed by uint64.
// The zero value is not usable; construct with New or NewFixed. Not
// safe for concurrent use — it lives inside a single event domain,
// like everything else in the simulator.
type Table[V any] struct {
	slots []slot[V]
	mask  uint64
	n     int
	// fixedCap > 0 marks a fixed-capacity table: Put refuses (and
	// counts) inserts past fixedCap instead of growing.
	fixedCap int
	grows    uint64
	refusals uint64
}

// mix is the splitmix64 finalizer: a full-avalanche bijection, so
// sequential keys (flow IDs, wire sequence numbers) spread uniformly
// across the slot array.
func mix(k uint64) uint64 {
	k ^= k >> 33
	k *= 0xff51afd7ed558ccd
	k ^= k >> 33
	k *= 0xc4ceb9fe1a85ec53
	k ^= k >> 33
	return k
}

// pow2 returns the smallest power of two >= n (minimum 8).
func pow2(n int) int {
	p := 8
	for p < n {
		p <<= 1
	}
	return p
}

// New returns a growable table pre-sized for about hint entries.
func New[V any](hint int) *Table[V] {
	if hint < 0 {
		hint = 0
	}
	cap := pow2(hint * maxLoadDen / maxLoadNum)
	return &Table[V]{slots: make([]slot[V], cap), mask: uint64(cap - 1)}
}

// NewFixed returns a fixed-capacity table holding at most capacity
// entries. It never allocates after construction: a Put that would
// exceed capacity is refused and counted — the model of a hardware
// flow table running out of entries.
func NewFixed[V any](capacity int) *Table[V] {
	if capacity <= 0 {
		panic("flow: fixed table needs positive capacity")
	}
	cap := pow2(capacity * maxLoadDen / maxLoadNum)
	return &Table[V]{slots: make([]slot[V], cap), mask: uint64(cap - 1), fixedCap: capacity}
}

// Len returns the number of entries. Safe on a nil table (0).
func (t *Table[V]) Len() int {
	if t == nil {
		return 0
	}
	return t.n
}

// Cap returns the fixed capacity, or 0 for a growable table.
func (t *Table[V]) Cap() int { return t.fixedCap }

// LoadFactor returns entries per slot in [0,1].
func (t *Table[V]) LoadFactor() float64 {
	if t == nil || len(t.slots) == 0 {
		return 0
	}
	return float64(t.n) / float64(len(t.slots))
}

// Grows returns how many times the backing array doubled (0 forever
// once the population peak has been seen — the steady-state guarantee).
func (t *Table[V]) Grows() uint64 { return t.grows }

// Refusals returns inserts refused by a full fixed-capacity table.
func (t *Table[V]) Refusals() uint64 {
	if t == nil {
		return 0
	}
	return t.refusals
}

// Ref returns a pointer to the value stored under key, or nil when
// absent. The pointer is valid only until the next Put or Delete —
// both may move slots (growth rehashes, robin-hood displaces,
// deletion backward-shifts).
func (t *Table[V]) Ref(key uint64) *V {
	if t == nil || t.n == 0 {
		return nil
	}
	i := mix(key) & t.mask
	d := uint16(1)
	for {
		s := &t.slots[i]
		if s.dist < d { // empty (0) or a richer resident: key absent
			return nil
		}
		if s.dist == d && s.key == key {
			return &s.val
		}
		i = (i + 1) & t.mask
		d++
	}
}

// Get returns the value stored under key.
func (t *Table[V]) Get(key uint64) (V, bool) {
	if p := t.Ref(key); p != nil {
		return *p, true
	}
	var zero V
	return zero, false
}

// Put inserts or updates key. It returns false only when a
// fixed-capacity table is full and key is absent (the insert is
// refused and counted); growable tables always succeed.
func (t *Table[V]) Put(key uint64, val V) bool {
	if t.fixedCap > 0 {
		if t.n >= t.fixedCap {
			// Full: updates of resident keys are still legal, new keys
			// are refused before any displacement can begin.
			if p := t.Ref(key); p != nil {
				*p = val
				return true
			}
			t.refusals++
			return false
		}
	} else if (t.n+1)*maxLoadDen > len(t.slots)*maxLoadNum {
		t.grow()
	}
	t.insert(key, val)
	return true
}

// insert places key/val with room guaranteed. Robin-hood: carry the
// entry along its probe sequence, swapping with any resident that is
// richer (smaller dist); a resident equal in key can only be met
// before the first swap, because resident keys are unique.
func (t *Table[V]) insert(key uint64, val V) {
	k, v, d := key, val, uint16(1)
	i := mix(key) & t.mask
	for {
		s := &t.slots[i]
		if s.dist == 0 {
			s.key, s.val, s.dist = k, v, d
			t.n++
			return
		}
		if s.dist == d && s.key == k {
			s.val = v // update in place
			return
		}
		if s.dist < d {
			k, s.key = s.key, k
			v, s.val = s.val, v
			d, s.dist = s.dist, d
		}
		i = (i + 1) & t.mask
		d++
	}
}

// Delete removes key, reporting whether it was present. The displaced
// run following the hole is shifted back one slot (no tombstones), so
// churny workloads keep their probe lengths.
func (t *Table[V]) Delete(key uint64) bool {
	if t == nil || t.n == 0 {
		return false
	}
	i := mix(key) & t.mask
	d := uint16(1)
	for {
		s := &t.slots[i]
		if s.dist < d {
			return false
		}
		if s.dist == d && s.key == key {
			break
		}
		i = (i + 1) & t.mask
		d++
	}
	t.n--
	for {
		j := (i + 1) & t.mask
		s := &t.slots[j]
		if s.dist <= 1 { // next is empty or at home: run ends here
			break
		}
		t.slots[i] = *s
		t.slots[i].dist = s.dist - 1
		i = j
	}
	t.slots[i] = slot[V]{} // clear: releases any pointers in V
	return true
}

// Range calls fn for every entry in slot order — a deterministic
// order: the layout is a pure function of the operation history, so
// two runs with identical histories iterate identically. fn may
// mutate the value through the pointer but must not Put or Delete.
// Returning false stops the walk.
func (t *Table[V]) Range(fn func(key uint64, val *V) bool) {
	if t == nil {
		return
	}
	for i := range t.slots {
		if t.slots[i].dist != 0 {
			if !fn(t.slots[i].key, &t.slots[i].val) {
				return
			}
		}
	}
}

// grow doubles the slot array and reinserts every entry. Amortized
// O(1) per insert; a table that has seen its peak population never
// grows again.
func (t *Table[V]) grow() {
	old := t.slots
	t.slots = make([]slot[V], len(old)*2)
	t.mask = uint64(len(t.slots) - 1)
	t.n = 0
	t.grows++
	for i := range old {
		if old[i].dist != 0 {
			t.insert(old[i].key, old[i].val)
		}
	}
}
