package flow

import (
	"math/rand"
	"testing"
)

// TestTableBasic covers the fundamental contract on a handful of keys,
// including key zero (legal: emptiness is tracked by probe distance,
// not a reserved key).
func TestTableBasic(t *testing.T) {
	tb := New[int](0)
	if _, ok := tb.Get(0); ok {
		t.Fatal("empty table claims key 0")
	}
	tb.Put(0, 10)
	tb.Put(1, 11)
	tb.Put(1<<63, 12)
	if v, ok := tb.Get(0); !ok || v != 10 {
		t.Fatalf("Get(0) = %d,%v", v, ok)
	}
	if v, ok := tb.Get(1<<63); !ok || v != 12 {
		t.Fatalf("Get(1<<63) = %d,%v", v, ok)
	}
	tb.Put(1, 21) // update
	if v, _ := tb.Get(1); v != 21 {
		t.Fatalf("update lost: %d", v)
	}
	if tb.Len() != 3 {
		t.Fatalf("Len = %d", tb.Len())
	}
	if !tb.Delete(1) || tb.Delete(1) {
		t.Fatal("Delete(1) contract")
	}
	if _, ok := tb.Get(1); ok {
		t.Fatal("deleted key still present")
	}
	if tb.Len() != 2 {
		t.Fatalf("Len after delete = %d", tb.Len())
	}
}

// TestTableVsMapProperty drives a long randomized insert/update/
// delete/lookup sequence against a map reference. Key space is kept
// narrow so collisions, displacement chains and backward shifts are
// exercised constantly; the table must agree with the map after every
// operation batch and at the end entry-for-entry via Range.
func TestTableVsMapProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	tb := New[uint64](0)
	ref := make(map[uint64]uint64)
	const ops = 200000
	for i := 0; i < ops; i++ {
		k := uint64(rng.Intn(4096)) // narrow: heavy collision pressure
		switch rng.Intn(10) {
		case 0, 1, 2, 3: // insert/update
			v := rng.Uint64()
			tb.Put(k, v)
			ref[k] = v
		case 4, 5: // delete
			want := false
			if _, ok := ref[k]; ok {
				want = true
				delete(ref, k)
			}
			if got := tb.Delete(k); got != want {
				t.Fatalf("op %d: Delete(%d) = %v, want %v", i, k, got, want)
			}
		default: // lookup
			wv, wok := ref[k]
			gv, gok := tb.Get(k)
			if gok != wok || (gok && gv != wv) {
				t.Fatalf("op %d: Get(%d) = %d,%v want %d,%v", i, k, gv, gok, wv, wok)
			}
		}
		if tb.Len() != len(ref) {
			t.Fatalf("op %d: Len %d != map %d", i, tb.Len(), len(ref))
		}
	}
	seen := make(map[uint64]uint64)
	tb.Range(func(k uint64, v *uint64) bool {
		if _, dup := seen[k]; dup {
			t.Fatalf("Range yielded key %d twice", k)
		}
		seen[k] = *v
		return true
	})
	if len(seen) != len(ref) {
		t.Fatalf("Range yielded %d entries, want %d", len(seen), len(ref))
	}
	for k, v := range ref {
		if seen[k] != v {
			t.Fatalf("Range[%d] = %d, want %d", k, seen[k], v)
		}
	}
}

// TestTableLoadFactorSweep fills a growable table to several load
// levels, checking the 7/8 bound holds and that every key stays
// reachable through each doubling.
func TestTableLoadFactorSweep(t *testing.T) {
	tb := New[uint64](0)
	for n := uint64(1); n <= 1<<16; n++ {
		tb.Put(n*0x9E3779B9, n)
		if lf := tb.LoadFactor(); lf > float64(maxLoadNum)/float64(maxLoadDen) {
			t.Fatalf("n=%d: load factor %.3f exceeds bound", n, lf)
		}
	}
	if tb.Grows() == 0 {
		t.Fatal("64k inserts never grew the table")
	}
	for n := uint64(1); n <= 1<<16; n++ {
		if v, ok := tb.Get(n * 0x9E3779B9); !ok || v != n {
			t.Fatalf("key %d lost across growth: %d,%v", n, v, ok)
		}
	}
}

// TestTableFixedRefusal checks the hardware-table mode: a fixed table
// accepts exactly its capacity, refuses (and counts) further inserts,
// still updates resident keys while full, never grows, and frees a
// slot for a new key after a delete.
func TestTableFixedRefusal(t *testing.T) {
	const cap = 1000
	tb := NewFixed[int](cap)
	for k := 0; k < cap; k++ {
		if !tb.Put(uint64(k), k) {
			t.Fatalf("Put %d refused below capacity", k)
		}
	}
	if tb.Put(uint64(cap), 0) {
		t.Fatal("Put beyond capacity accepted")
	}
	if tb.Refusals() != 1 {
		t.Fatalf("Refusals = %d", tb.Refusals())
	}
	if !tb.Put(5, 500) { // resident update while full
		t.Fatal("update of resident key refused while full")
	}
	if v, _ := tb.Get(5); v != 500 {
		t.Fatalf("full-table update lost: %d", v)
	}
	if tb.Grows() != 0 {
		t.Fatal("fixed table grew")
	}
	if !tb.Delete(7) {
		t.Fatal("Delete(7) failed")
	}
	if !tb.Put(uint64(cap), 1) {
		t.Fatal("Put refused after a delete freed a slot")
	}
	if tb.Len() != cap {
		t.Fatalf("Len = %d, want %d", tb.Len(), cap)
	}
}

// TestTableRangeDeterministic re-runs one operation history twice and
// requires identical Range order — the property the byte-identical
// output guarantee leans on.
func TestTableRangeDeterministic(t *testing.T) {
	build := func() []uint64 {
		rng := rand.New(rand.NewSource(7))
		tb := New[int](0)
		for i := 0; i < 20000; i++ {
			k := uint64(rng.Intn(2048))
			if rng.Intn(3) == 0 {
				tb.Delete(k)
			} else {
				tb.Put(k, i)
			}
		}
		var order []uint64
		tb.Range(func(k uint64, _ *int) bool {
			order = append(order, k)
			return true
		})
		return order
	}
	a, b := build(), build()
	if len(a) != len(b) {
		t.Fatalf("orders differ in length: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("order diverges at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

// TestTableSteadyStateAllocs proves the churn steady state stays off
// the heap: once the population peak has been seen, endless
// insert/delete cycles allocate nothing.
func TestTableSteadyStateAllocs(t *testing.T) {
	tb := New[uint64](0)
	for k := uint64(0); k < 1<<14; k++ {
		tb.Put(k, k)
	}
	next := uint64(1 << 14)
	old := uint64(0)
	avg := testing.AllocsPerRun(1000, func() {
		tb.Delete(old)
		tb.Put(next, next)
		old++
		next++
	})
	if avg != 0 {
		t.Fatalf("steady-state churn allocates %.2f per op", avg)
	}
}
