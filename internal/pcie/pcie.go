// Package pcie models the PCIe transaction layer at the fidelity IDIO
// requires: memory-write/read TLPs carrying one cacheline each, with
// the IDIO classifier's metadata embedded in the reserved bits of the
// TLP header's first DWord exactly as Fig. 7 of the paper specifies.
//
// Encoding (DW0 bit positions, Fig. 7):
//
//	bit 31           isHeader — this DMA carries the packet's first
//	                 cacheline (and therefore the protocol headers)
//	bit 23, 19:16, 11  destCore[5:0] — target physical core; the
//	                 all-ones value 63 signals application class 1
//	                 (direct DRAM), so at most 63 cores are addressable
//	bit 10           isBurst — the classifier detected an RX burst for
//	                 this core in the current 1 µs window
package pcie

import "fmt"

// MaxCores is the largest encodable destination core number; the
// all-ones pattern is reserved for application class 1.
const MaxCores = 63

// classOneCore is the reserved destCore encoding signalling appClass 1.
const classOneCore = 63

// Bit positions of the destCore field within DW0, most significant
// first: destCore[5] is bit 23, destCore[4:1] are bits 19:16, and
// destCore[0] is bit 11.
var destCoreBits = [6]uint{23, 19, 18, 17, 16, 11}

const (
	isHeaderBit = 31
	isBurstBit  = 10
	// qosShift places the 2-bit service class in DW0 bits 9:8. Class 0
	// (EF / unclassified) encodes as zero bits, so a data plane without
	// QoS armed emits the exact pre-QoS DW0 values. These bits are
	// deliberately absent from MetaBits: fault injectors keep flipping
	// the same historical bit set.
	qosShift = 8
	// MaxQoSClass bounds the encodable service class.
	MaxQoSClass = 3
)

// Meta is the IDIO classifier metadata carried by one DMA transaction
// (Alg. 1's [appClass, isHeader, isBurst, destCore] vector).
type Meta struct {
	// AppClass is 0 (short use distance: cache steering applies) or 1
	// (long use distance: payload goes straight to DRAM).
	AppClass uint8
	// IsHeader marks the transaction carrying the packet's first line.
	IsHeader bool
	// IsBurst marks transactions arriving within a detected burst.
	IsBurst bool
	// DestCore is the consuming core (meaningful for AppClass 0).
	DestCore int
	// QoS is the service class mapped from the packet's DSCP (bits
	// 9:8; 0 = EF or unclassified).
	QoS uint8
}

// EncodeDW0 packs the metadata into the reserved bits of a TLP DW0.
// Non-reserved bits are left zero; hardware would OR these into the
// regular header fields.
func EncodeDW0(m Meta) (uint32, error) {
	var dw uint32
	core := m.DestCore
	if m.AppClass == 1 {
		core = classOneCore
	} else if m.AppClass != 0 {
		return 0, fmt.Errorf("pcie: bad app class %d", m.AppClass)
	} else if core < 0 || core >= MaxCores {
		return 0, fmt.Errorf("pcie: destCore %d out of range [0,%d)", core, MaxCores)
	}
	for i, bit := range destCoreBits {
		if core&(1<<(5-i)) != 0 {
			dw |= 1 << bit
		}
	}
	if m.IsHeader {
		dw |= 1 << isHeaderBit
	}
	if m.IsBurst {
		dw |= 1 << isBurstBit
	}
	if m.QoS > MaxQoSClass {
		return 0, fmt.Errorf("pcie: qos class %d out of range [0,%d]", m.QoS, MaxQoSClass)
	}
	dw |= uint32(m.QoS) << qosShift
	return dw, nil
}

// DecodeDW0 extracts the metadata from a TLP DW0.
func DecodeDW0(dw uint32) Meta {
	var core int
	for i, bit := range destCoreBits {
		if dw&(1<<bit) != 0 {
			core |= 1 << (5 - i)
		}
	}
	m := Meta{
		IsHeader: dw&(1<<isHeaderBit) != 0,
		IsBurst:  dw&(1<<isBurstBit) != 0,
		QoS:      uint8(dw>>qosShift) & MaxQoSClass,
	}
	if core == classOneCore {
		m.AppClass = 1
	} else {
		m.DestCore = core
	}
	return m
}

// WriteTLP is one inbound (NIC-to-host) posted memory write of a single
// cacheline.
type WriteTLP struct {
	LineAddr uint64 // cacheline address (byte addr >> 6)
	DW0      uint32
}

// ReadTLP is one outbound (host-to-NIC) memory read of a single
// cacheline.
type ReadTLP struct {
	LineAddr uint64
}

// NewWriteTLP builds a write TLP with encoded metadata.
func NewWriteTLP(lineAddr uint64, m Meta) (WriteTLP, error) {
	dw, err := EncodeDW0(m)
	if err != nil {
		return WriteTLP{}, err
	}
	return WriteTLP{LineAddr: lineAddr, DW0: dw}, nil
}

// Meta decodes the transaction's metadata.
func (t WriteTLP) Meta() Meta { return DecodeDW0(t.DW0) }

// MetaBits lists every DW0 bit position carrying IDIO metadata, in
// descending order. Fault injectors flip these to model single-event
// upsets in the reserved header bits (a mis-steer the classifier's
// consumer must tolerate).
func MetaBits() []uint {
	bits := []uint{isHeaderBit, isBurstBit}
	return append(bits, destCoreBits[:]...)
}

// FlipMetaBit returns the TLP with the i-th metadata bit (an index
// into MetaBits) inverted. The TLP itself is unchanged; the caller
// forwards the corrupted copy.
func (t WriteTLP) FlipMetaBit(i int) WriteTLP {
	bits := MetaBits()
	t.DW0 ^= 1 << bits[i%len(bits)]
	return t
}
