package pcie

import (
	"testing"
	"testing/quick"

	"idio/internal/mem"
)

func TestIOMMUEmptyFaultsEverything(t *testing.T) {
	u := NewIOMMU()
	if u.Allowed(0) || u.Allowed(12345) {
		t.Fatal("empty IOMMU must reject all")
	}
	if u.CheckWrite(1) || u.CheckRead(2) {
		t.Fatal("checks must fail")
	}
	if u.WriteFaults != 1 || u.ReadFaults != 1 {
		t.Fatalf("faults w=%d r=%d", u.WriteFaults, u.ReadFaults)
	}
}

func TestIOMMUMappedRegionsAllowed(t *testing.T) {
	u := NewIOMMU()
	u.Map(mem.Region{Base: 0x1000, Size: 0x1000})
	u.Map(mem.Region{Base: 0x10000, Size: 2048})
	cases := []struct {
		line uint64
		want bool
	}{
		{0x1000 >> 6, true},
		{(0x1000 + 0xFC0) >> 6, true}, // last line of first region
		{0x2000 >> 6, false},          // first byte past it
		{0x10000 >> 6, true},
		{(0x10000 + 2048) >> 6, false},
		{0, false},
	}
	for _, c := range cases {
		if got := u.Allowed(c.line); got != c.want {
			t.Errorf("line %#x allowed=%v, want %v", c.line, got, c.want)
		}
	}
	if u.Mapped() != 2 {
		t.Fatalf("mapped %d", u.Mapped())
	}
	// Zero-size maps are ignored.
	u.Map(mem.Region{Base: 0x99, Size: 0})
	if u.Mapped() != 2 {
		t.Fatal("zero-size region must be ignored")
	}
}

func TestIOMMUCoalescesOverlaps(t *testing.T) {
	u := NewIOMMU()
	u.Map(mem.Region{Base: 0x1000, Size: 0x100})
	u.Map(mem.Region{Base: 0x1080, Size: 0x200}) // overlaps first
	u.Map(mem.Region{Base: 0x1280, Size: 0x80})  // adjacent to merged end
	if u.Mapped() != 1 {
		t.Fatalf("overlapping maps must coalesce: %d regions", u.Mapped())
	}
	// Every byte of the union is allowed; the byte past it is not.
	for a := uint64(0x1000); a < 0x1300; a += 64 {
		if !u.Allowed(a >> 6) {
			t.Fatalf("line %#x must be allowed", a)
		}
	}
	if u.Allowed(0x1300 >> 6) {
		t.Fatal("line past the union must fault")
	}
	// A deep stack of small regions inside a large one must not
	// confuse the lookup.
	u2 := NewIOMMU()
	u2.Map(mem.Region{Base: 0, Size: 0x10000})
	for i := 0; i < 16; i++ {
		u2.Map(mem.Region{Base: mem.Addr(0x100 + i*0x40), Size: 0x40})
	}
	if !u2.Allowed(0x8000 >> 6) {
		t.Fatal("address inside the big region must be allowed")
	}
}

// Property: a line is Allowed iff its first byte lies in some mapped
// region (brute force cross-check), for arbitrary region sets.
func TestQuickIOMMUMatchesBruteForce(t *testing.T) {
	f := func(bases []uint16, probe uint16) bool {
		u := NewIOMMU()
		var regs []mem.Region
		for _, b := range bases {
			r := mem.Region{Base: mem.Addr(b) * 64, Size: uint64(b%7+1) * 64}
			u.Map(r)
			regs = append(regs, r)
		}
		line := uint64(probe)
		want := false
		for _, r := range regs {
			if r.Contains(mem.LineAddr(line).Addr()) {
				want = true
			}
		}
		return u.Allowed(line) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
