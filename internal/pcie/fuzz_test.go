package pcie

import "testing"

// FuzzDecodeDW0 checks that decoding any 32-bit word never panics and
// always yields metadata that re-encodes to a word carrying the same
// metadata (decode is total; encode∘decode is idempotent on the
// reserved bits).
func FuzzDecodeDW0(f *testing.F) {
	f.Add(uint32(0))
	f.Add(^uint32(0))
	f.Add(uint32(1<<31 | 1<<10))
	f.Add(uint32(1<<23 | 1<<19 | 1<<18 | 1<<17 | 1<<16 | 1<<11))
	f.Fuzz(func(t *testing.T, dw uint32) {
		m := DecodeDW0(dw)
		if m.AppClass > 1 {
			t.Fatalf("decoded app class %d", m.AppClass)
		}
		if m.DestCore < 0 || m.DestCore >= MaxCores {
			t.Fatalf("decoded core %d", m.DestCore)
		}
		re, err := EncodeDW0(m)
		if err != nil {
			t.Fatalf("re-encode of decoded meta failed: %v", err)
		}
		if DecodeDW0(re) != m {
			t.Fatalf("encode/decode not idempotent: %+v", m)
		}
	})
}
