package pcie

import (
	"sort"

	"idio/internal/mem"
	"idio/internal/obs"
)

// IOMMU validates DMA targets against registered mappings, as the
// platform's address-translation unit would: a device may only reach
// memory the driver has mapped for it (descriptor rings and packet
// buffers). Unmapped accesses fault and are dropped instead of
// corrupting arbitrary memory — both a safety net for the simulated
// driver stack and a realism feature.
type IOMMU struct {
	regions []mem.Region // sorted by Base, non-overlapping

	// ReadFaults/WriteFaults count rejected accesses.
	ReadFaults  uint64
	WriteFaults uint64
}

// NewIOMMU returns an IOMMU with no mappings (everything faults).
func NewIOMMU() *IOMMU { return &IOMMU{} }

// Map registers a region as DMA-able. Overlapping and adjacent
// regions are coalesced so that lookups only ever need to inspect a
// single predecessor; mapping is idempotent.
func (u *IOMMU) Map(r mem.Region) {
	if r.Size == 0 {
		return
	}
	u.regions = append(u.regions, r)
	sort.Slice(u.regions, func(i, j int) bool { return u.regions[i].Base < u.regions[j].Base })
	merged := u.regions[:1]
	for _, next := range u.regions[1:] {
		last := &merged[len(merged)-1]
		if next.Base <= last.End() {
			if next.End() > last.End() {
				last.Size = uint64(next.End() - last.Base)
			}
			continue
		}
		merged = append(merged, next)
	}
	u.regions = merged
}

// Mapped reports how many regions are registered.
func (u *IOMMU) Mapped() int { return len(u.regions) }

// Allowed reports whether the cacheline at lineAddr is inside any
// mapping. Regions are disjoint after coalescing, so only the single
// region with the greatest Base <= addr can contain it.
func (u *IOMMU) Allowed(lineAddr uint64) bool {
	addr := mem.LineAddr(lineAddr).Addr()
	i := sort.Search(len(u.regions), func(i int) bool { return u.regions[i].Base > addr })
	return i > 0 && u.regions[i-1].Contains(addr)
}

// CheckWrite validates a DMA write target, counting a fault when
// rejected.
func (u *IOMMU) CheckWrite(lineAddr uint64) bool {
	if u.Allowed(lineAddr) {
		return true
	}
	u.WriteFaults++
	return false
}

// CheckRead validates a DMA read target.
func (u *IOMMU) CheckRead(lineAddr uint64) bool {
	if u.Allowed(lineAddr) {
		return true
	}
	u.ReadFaults++
	return false
}

// RegisterMetrics registers the IOMMU fault counters under prefix
// (e.g. "iommu.") into the observability registry. Metric names mirror
// the keys Results.WriteStats prints.
func (u *IOMMU) RegisterMetrics(reg *obs.Registry, prefix string) {
	reg.CounterFunc(prefix+"read_faults", func() uint64 { return u.ReadFaults })
	reg.CounterFunc(prefix+"write_faults", func() uint64 { return u.WriteFaults })
}
