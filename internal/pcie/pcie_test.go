package pcie

import (
	"testing"
	"testing/quick"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	for core := 0; core < MaxCores; core++ {
		for _, hdr := range []bool{false, true} {
			for _, burst := range []bool{false, true} {
				m := Meta{AppClass: 0, IsHeader: hdr, IsBurst: burst, DestCore: core}
				dw, err := EncodeDW0(m)
				if err != nil {
					t.Fatalf("core %d: %v", core, err)
				}
				got := DecodeDW0(dw)
				if got != m {
					t.Fatalf("round trip: %+v -> %+v", m, got)
				}
			}
		}
	}
}

func TestClassOneEncoding(t *testing.T) {
	m := Meta{AppClass: 1, DestCore: 5} // DestCore ignored for class 1
	dw, err := EncodeDW0(m)
	if err != nil {
		t.Fatal(err)
	}
	got := DecodeDW0(dw)
	if got.AppClass != 1 {
		t.Fatalf("decoded %+v", got)
	}
	if got.DestCore != 0 {
		t.Fatalf("class-1 decode must not report a core: %+v", got)
	}
	// All six destCore bits must be set in the raw word.
	for _, bit := range destCoreBits {
		if dw&(1<<bit) == 0 {
			t.Fatalf("class-1 DW0 %#x missing bit %d", dw, bit)
		}
	}
}

func TestExactBitPositions(t *testing.T) {
	// destCore = 0b100001 (33): MSB -> bit 23, LSB -> bit 11.
	dw, err := EncodeDW0(Meta{DestCore: 33})
	if err != nil {
		t.Fatal(err)
	}
	want := uint32(1<<23 | 1<<11)
	if dw != want {
		t.Fatalf("DW0 = %#x, want %#x", dw, want)
	}
	// destCore = 0b011110 (30): bits 19:16.
	dw, _ = EncodeDW0(Meta{DestCore: 30})
	if dw != 1<<19|1<<18|1<<17|1<<16 {
		t.Fatalf("DW0 = %#x", dw)
	}
	dw, _ = EncodeDW0(Meta{DestCore: 0, IsHeader: true, IsBurst: true})
	if dw != 1<<31|1<<10 {
		t.Fatalf("DW0 = %#x", dw)
	}
}

func TestEncodeRejectsBadInput(t *testing.T) {
	if _, err := EncodeDW0(Meta{DestCore: 63}); err == nil {
		t.Fatal("core 63 is reserved for class 1")
	}
	if _, err := EncodeDW0(Meta{DestCore: -1}); err == nil {
		t.Fatal("negative core must fail")
	}
	if _, err := EncodeDW0(Meta{AppClass: 2}); err == nil {
		t.Fatal("app class 2 must fail")
	}
}

func TestWriteTLPMeta(t *testing.T) {
	m := Meta{DestCore: 7, IsHeader: true}
	tlp, err := NewWriteTLP(0x1234, m)
	if err != nil {
		t.Fatal(err)
	}
	if tlp.LineAddr != 0x1234 {
		t.Fatalf("addr %#x", tlp.LineAddr)
	}
	if tlp.Meta() != m {
		t.Fatalf("meta %+v", tlp.Meta())
	}
}

// Property: encode/decode is the identity on valid metadata, and the
// encoder only ever touches the reserved bits from Fig. 7.
func TestQuickEncodeOnlyReservedBits(t *testing.T) {
	reserved := uint32(1<<31 | 1<<23 | 1<<19 | 1<<18 | 1<<17 | 1<<16 | 1<<11 | 1<<10)
	f := func(core uint8, hdr, burst, class1 bool) bool {
		m := Meta{IsHeader: hdr, IsBurst: burst}
		if class1 {
			m.AppClass = 1
		} else {
			m.DestCore = int(core) % MaxCores
		}
		dw, err := EncodeDW0(m)
		if err != nil {
			return false
		}
		if dw&^reserved != 0 {
			return false
		}
		return DecodeDW0(dw) == m
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
