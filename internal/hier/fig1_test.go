package hier

// Spec-level tests that walk the DDIO ingress and egress flows of the
// paper's Fig. 1 case by case. Each P-case places a line in one of the
// five locations the figure distinguishes and checks the transition
// the figure prescribes:
//
//	P1 — exclusively in an MLC
//	P2 — in MLC and LLC (cannot arise under this model's move-on-hit
//	     exclusivity; the in-place-update path is covered via P3)
//	P3 — exclusively in non-DDIO LLC ways
//	P4 — exclusively in DDIO LLC ways
//	P5 — not cached

import (
	"testing"

	"idio/internal/mem"
)

// placeP1 puts the line exclusively in core 0's MLC (dirty).
func placeP1(h *Hierarchy, l mem.LineAddr) {
	h.CoreWrite(0, 0, l)
	if h.LLCOccupancy() != 0 {
		panic("P1 setup leaked into LLC")
	}
}

// placeP3 puts the line exclusively in a non-DDIO LLC way: write it
// from the core, then evict it from the MLC by filling the set.
func placeP3(h *Hierarchy, l mem.LineAddr) {
	h.CoreWrite(0, 0, l)
	// MLC in small(): 4KB, 4-way, 16 sets. Fill l's set with 4 more
	// conflicting lines (stride = number of sets).
	for i := mem.LineAddr(1); i <= 4; i++ {
		h.CoreRead(0, 0, l+i*16)
	}
	if h.mlc[0].Contains(uint64(l)) {
		panic("P3 setup: line still in MLC")
	}
	if !h.llc.Contains(uint64(l)) {
		panic("P3 setup: line not in LLC")
	}
}

// placeP4 puts the line exclusively in a DDIO LLC way via a PCIe
// write.
func placeP4(h *Hierarchy, l mem.LineAddr) {
	h.PCIeWrite(0, l)
}

func TestFig1IngressP1InvalidateThenAllocate(t *testing.T) {
	h := small(t)
	placeP1(h, 5)
	h.PCIeWrite(0, 5)
	// P1-1: MLC copy invalidated without writeback; P1-2: allocated in
	// DDIO ways.
	st := h.Stats()
	if st.MLCInval != 1 {
		t.Fatalf("P1-1 invalidation missing: %+v", st)
	}
	if st.MLCWriteback != 0 {
		t.Fatalf("invalidation must not write back: %+v", st)
	}
	if st.DDIOAlloc != 1 {
		t.Fatalf("P1-2 DDIO allocation missing: %+v", st)
	}
	if h.LLCOccupancyIO() != 1 || h.MLCOccupancy(0) != 0 {
		t.Fatal("line must now live in DDIO ways only")
	}
}

func TestFig1IngressP3InPlaceUpdate(t *testing.T) {
	h := small(t)
	placeP3(h, 5)
	ddioAllocsBefore := h.Stats().DDIOAlloc
	h.PCIeWrite(0, 5)
	st := h.Stats()
	// P3-1: updated in place — no new DDIO allocation, no eviction.
	if st.DDIOUpdate != 1 {
		t.Fatalf("P3-1 in-place update missing: %+v", st)
	}
	if st.DDIOAlloc != ddioAllocsBefore {
		t.Fatalf("in-place update must not allocate: %+v", st)
	}
	// The line is re-classified as I/O data.
	if ln := h.llc.Lookup(5, false); ln == nil || !ln.IO || !ln.Dirty {
		t.Fatalf("updated line state wrong: %+v", ln)
	}
}

func TestFig1IngressP4InPlaceUpdate(t *testing.T) {
	h := small(t)
	placeP4(h, 5)
	h.PCIeWrite(0, 5)
	st := h.Stats()
	if st.DDIOAlloc != 1 || st.DDIOUpdate != 1 {
		t.Fatalf("P4 reuse must update in place: %+v", st)
	}
}

func TestFig1IngressP5WriteAllocate(t *testing.T) {
	h := small(t)
	h.PCIeWrite(0, 99)
	st := h.Stats()
	if st.DDIOAlloc != 1 || st.MLCInval != 0 || st.DDIOUpdate != 0 {
		t.Fatalf("P5-1 write-allocate: %+v", st)
	}
}

func TestFig1EgressP1WritebackToLLCThenServe(t *testing.T) {
	h := small(t)
	placeP1(h, 7)
	dramReadsAfterSetup := h.DRAM().Reads() // setup cold-missed once
	lat := h.PCIeRead(0, 7)
	// P1-1: dirty MLC line written back to LLC, served from there.
	if h.mlc[0].Contains(7) {
		t.Fatal("egress must remove the MLC copy")
	}
	if !h.llc.Contains(7) {
		t.Fatal("egress must leave the line in LLC")
	}
	if h.Stats().MLCWriteback != 1 {
		t.Fatalf("P1-1 writeback missing: %+v", h.Stats())
	}
	if lat <= h.llcLat {
		t.Fatalf("egress from MLC latency %v must exceed LLC hit", lat)
	}
	if h.DRAM().Reads() != dramReadsAfterSetup {
		t.Fatal("on-chip egress must not read DRAM")
	}
}

func TestFig1EgressP3P4ServedFromLLC(t *testing.T) {
	for _, place := range []struct {
		name string
		fn   func(*Hierarchy, mem.LineAddr)
	}{{"P3", placeP3}, {"P4", placeP4}} {
		h := small(t)
		place.fn(h, 7)
		r := h.DRAM().Reads()
		lat := h.PCIeRead(0, 7)
		if lat != h.llcLat {
			t.Fatalf("%s egress latency %v, want LLC hit %v", place.name, lat, h.llcLat)
		}
		if h.DRAM().Reads() != r {
			t.Fatalf("%s egress must not read DRAM", place.name)
		}
		// Egress reads do not deallocate the LLC copy.
		if !h.llc.Contains(7) {
			t.Fatalf("%s egress removed the LLC copy", place.name)
		}
	}
}

func TestFig1EgressP5FromDRAM(t *testing.T) {
	h := small(t)
	lat := h.PCIeRead(0, 42)
	if h.DRAM().Reads() != 1 {
		t.Fatal("uncached egress must read DRAM")
	}
	if lat <= h.llcLat {
		t.Fatalf("uncached egress latency %v too low", lat)
	}
	// Conventional DMA read: no allocation anywhere on chip.
	if h.LLCOccupancy() != 0 || h.MLCOccupancy(0) != 0 {
		t.Fatal("egress DRAM read must not allocate on chip")
	}
}
