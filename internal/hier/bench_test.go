package hier

// Micro-benchmarks for the hierarchy's hot paths: these bound how fast
// the simulator itself can run (every simulated cacheline movement
// costs one of these calls).

import (
	"math/rand"
	"testing"

	"idio/internal/mem"
)

func benchHier(b *testing.B) *Hierarchy {
	b.Helper()
	return New(DefaultConfig(2))
}

func BenchmarkPCIeWriteStream(b *testing.B) {
	h := benchHier(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.PCIeWrite(0, mem.LineAddr(i%32768))
	}
}

func BenchmarkCoreReadHot(b *testing.B) {
	h := benchHier(b)
	// Working set fits in the MLC: steady-state L1/MLC hits.
	for i := 0; i < 4096; i++ {
		h.CoreRead(0, 0, mem.LineAddr(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.CoreRead(0, 0, mem.LineAddr(i%4096))
	}
}

func BenchmarkCoreReadStreaming(b *testing.B) {
	h := benchHier(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// A DDIO-then-consume stream: write-allocate + demand read.
		l := mem.LineAddr(i % 1048576)
		h.PCIeWrite(0, l)
		h.CoreRead(0, 0, l)
	}
}

func BenchmarkInvalidateRegion(b *testing.B) {
	h := benchHier(b)
	region := mem.Region{Base: 0, Size: 2048}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		region.Lines(func(l mem.LineAddr) { h.PCIeWrite(0, l) })
		h.InvalidateRegionNoWB(0, 0, region)
	}
}

func BenchmarkPrefetchToMLC(b *testing.B) {
	h := benchHier(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l := mem.LineAddr(i % 262144)
		h.PCIeWrite(0, l)
		h.PrefetchToMLC(0, 0, l)
	}
}

func BenchmarkInvalidateNoWBEnforced(b *testing.B) {
	// Measures the PTE-bit lookup on the enforcement path: every
	// InvalidateNoWB consults the invalidatable set (a struct{}-valued
	// membership map) before dropping the line.
	h := benchHier(b)
	region := mem.Region{Base: 0, Size: 64 * 4096}
	h.RegisterInvalidatable(region)
	h.EnforceInvalidatable(true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.InvalidateNoWB(0, 0, mem.LineAddr(i%4096))
	}
}

func BenchmarkMixedRandomOps(b *testing.B) {
	h := benchHier(b)
	rng := rand.New(rand.NewSource(1))
	ops := make([]int, 4096)
	lines := make([]mem.LineAddr, 4096)
	for i := range ops {
		ops[i] = rng.Intn(4)
		lines[i] = mem.LineAddr(rng.Intn(65536))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j := i % 4096
		switch ops[j] {
		case 0:
			h.PCIeWrite(0, lines[j])
		case 1:
			h.CoreRead(0, j%2, lines[j])
		case 2:
			h.PCIeRead(0, lines[j])
		case 3:
			h.InvalidateNoWB(0, j%2, lines[j])
		}
	}
}
