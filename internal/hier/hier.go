// Package hier implements the non-inclusive Skylake-SP-style cache
// hierarchy that IDIO targets: a private L1D and MLC (L2) per core, a
// shared non-inclusive LLC acting as a victim cache with dedicated DDIO
// ways, a snoop-filter directory tracking MLC-resident lines, and a
// bandwidth-limited DRAM behind it.
//
// The package exposes exactly the transactions the paper reasons about:
//
//   - CoreRead / CoreWrite     — demand accesses from a core
//   - PCIeWrite                — inbound DMA (DDIO ingress, Fig. 1)
//   - PCIeRead                 — outbound DMA (TX egress, Fig. 1)
//   - DirectDRAMWrite          — IDIO's selective direct DRAM access
//   - PrefetchToMLC            — IDIO's network-driven MLC prefetch
//   - InvalidateNoWB           — IDIO's self-invalidating I/O buffers
//
// Modeling decisions (see DESIGN.md): lines move (rather than copy)
// from LLC to MLC on core demand, DRAM fills bypass the LLC, and MLC
// victims allocate into any LLC way — which is precisely what lets DMA
// data bloat beyond the DDIO ways (Sec. III, Observation 3).
package hier

import (
	"fmt"

	"idio/internal/cache"
	"idio/internal/dram"
	"idio/internal/mem"
	"idio/internal/obs"
	"idio/internal/sim"
	"idio/internal/stats"
)

// Config describes the hierarchy geometry and latencies. Cycle counts
// follow Table I of the paper.
type Config struct {
	Clock    sim.Clock
	NumCores int

	L1Size  int // bytes, per core
	L1Assoc int
	L1Lat   int64 // cycles

	MLCSize  int // bytes, per core
	MLCAssoc int
	MLCLat   int64 // cycles
	// MLCSizePerCore overrides MLCSize for individual cores when
	// non-nil (index = core). Sec. VI shrinks the LLCAntagonist core's
	// MLC to 256 KB to make it LLC-sensitive. Zero entries fall back
	// to MLCSize.
	MLCSizePerCore []int

	LLCSize  int // bytes, shared
	LLCAssoc int
	LLCLat   int64 // cycles
	// DDIOWays is how many LLC ways PCIe write-allocates may fill
	// (2 of 11 on Skylake-SP).
	DDIOWays int
	// AppWayMask restricts CPU-side LLC allocations (MLC victims and
	// egress writebacks). AllWays models the unpartitioned default;
	// Fig. 4's "_1way" runs confine the app to a single non-DDIO way.
	AppWayMask cache.WayMask

	// DirEntriesPerCore sizes the snoop-filter directory. Skylake-SP
	// over-provisions the directory relative to aggregate MLC capacity;
	// we default to 1.5x the per-core MLC line count.
	DirEntriesPerCore int
	DirAssoc          int

	DRAM dram.Config

	// TimelineBucket enables per-interval rate sampling when > 0.
	TimelineBucket sim.Duration

	// Policy selects replacement for MLC and LLC.
	Policy cache.Policy

	// RetainLLCOnHit selects NINE (non-inclusive non-exclusive)
	// semantics: an LLC hit for a core demand copies the line to the
	// MLC but leaves a clean copy in the LLC, enabling Fig. 1's "P2"
	// state (valid in both MLC and LLC). The default (false) is the
	// victim-cache move-on-hit the paper's data-movement discussion
	// assumes ("its tag will be moved to the directory"). Real
	// Skylake-SP behaves adaptively between the two.
	RetainLLCOnHit bool
}

// DefaultConfig mirrors the gem5 configuration in Table I for the given
// number of cores: per-core 32 KB L1D (2-way, 2 CC), 1 MB MLC (8-way,
// 12 CC), and a shared LLC of 1.5 MB x 12 ways per core (24 CC) with
// 2 DDIO ways.
func DefaultConfig(cores int) Config {
	return Config{
		Clock:             sim.NewClock(3_000_000_000),
		NumCores:          cores,
		L1Size:            32 << 10,
		L1Assoc:           2,
		L1Lat:             2,
		MLCSize:           1 << 20,
		MLCAssoc:          8,
		MLCLat:            12,
		LLCSize:           llcSizeFor(cores, 12), // ~1.5MB per core
		LLCAssoc:          12,
		LLCLat:            24,
		DDIOWays:          2,
		AppWayMask:        cache.AllWays,
		DirEntriesPerCore: (1 << 20) / 64 * 3 / 2, // 1.5x MLC lines
		DirAssoc:          16,
		DRAM:              dram.DefaultConfig(),
		TimelineBucket:    10 * sim.Microsecond,
		Policy:            cache.LRU,
	}
}

// llcSizeFor sizes a shared LLC at ~1.5 MB per core, rounded down so
// the set count is a power of two for the given associativity (core
// counts that are not powers of two would otherwise produce invalid
// geometry).
func llcSizeFor(cores, assoc int) int {
	want := cores * 3 * (1 << 19) // 1.5MB per core
	sets := want / 64 / assoc
	p := 1
	for p*2 <= sets {
		p *= 2
	}
	return p * 64 * assoc
}

// Stats aggregates hierarchy-wide transition counts. All are exact
// transaction counts (one per 64-byte line).
type Stats struct {
	// MLCWriteback counts every MLC victim allocated into the LLC —
	// the MLC-to-LLC traffic the paper's "MLC writeback" rates measure.
	// In a non-inclusive victim hierarchy clean victims transfer too,
	// and they pressure the LLC identically.
	MLCWriteback uint64
	MLCWBDirty   uint64 // subset of MLCWriteback carrying dirty data
	MLCInval     uint64 // MLC line invalidated by a PCIe write
	LLCWriteback uint64 // dirty LLC victim written to DRAM
	LLCWBIO      uint64 // subset of LLCWriteback still classified I/O ("DMA leak")
	DirBackInval uint64 // MLC lines back-invalidated by directory conflicts
	SelfInval    uint64 // lines dropped by InvalidateNoWB
	DDIOUpdate   uint64 // PCIe writes hitting the LLC in place
	DDIOAlloc    uint64 // PCIe writes allocating a DDIO way
	DDIOToDRAM   uint64 // PCIe writes sent straight to DRAM
	PrefetchFill uint64 // prefetches that moved a line into an MLC
	PrefetchDrop uint64 // prefetches dropped (already resident or inflight)
	DemandL1Hit  uint64
	DemandMLCHit uint64
	DemandLLCHit uint64
	DemandDRAM   uint64
}

// CoreDemand is one core's demand-access breakdown by service level.
type CoreDemand struct {
	L1Hit  uint64
	MLCHit uint64
	LLCHit uint64
	DRAM   uint64
}

// Total returns the core's demand access count.
func (d CoreDemand) Total() uint64 { return d.L1Hit + d.MLCHit + d.LLCHit + d.DRAM }

// HitRateOnChip returns the fraction of accesses served without DRAM.
func (d CoreDemand) HitRateOnChip() float64 {
	t := d.Total()
	if t == 0 {
		return 0
	}
	return float64(t-d.DRAM) / float64(t)
}

// Hierarchy is the complete cache system shared by all cores and the
// NIC's DMA engine.
type Hierarchy struct {
	cfg  Config
	l1   []*cache.Cache
	mlc  []*cache.Cache
	llc  *cache.Cache
	dir  *directory
	dram *dram.DRAM

	ddioMask cache.WayMask
	appMask  cache.WayMask
	// classMask holds per-QoS-class DDIO way quotas (index =
	// qos.Class); a zero mask falls back to the host-wide ddioMask,
	// so an unarmed hierarchy behaves exactly as before.
	classMask [4]cache.WayMask

	l1Lat, mlcLat, llcLat sim.Duration

	stats       Stats
	demand      []CoreDemand // per-core demand breakdowns
	mlcWBByCore []uint64     // per-core dirty MLC writeback counters (IDIO control plane samples these)

	// Timelines for the paper's rate figures; nil when disabled.
	MLCWBTL  *stats.Timeline
	LLCWBTL  *stats.Timeline
	MLCInvTL *stats.Timeline
	DMAReqTL *stats.Timeline

	invalidatable map[mem.LineAddr]struct{} // pages registered as Invalidatable (Sec. V-D)
	invalCheck    bool

	// obs receives line-level trace events (writeback, DMA
	// invalidation, prefetch outcome) for lines belonging to sampled
	// packets. A nil observer costs one branch per event site.
	obs *obs.Observer
}

// New constructs the hierarchy.
func New(cfg Config) *Hierarchy {
	if cfg.NumCores <= 0 {
		panic("hier: need at least one core")
	}
	if cfg.DDIOWays <= 0 || cfg.DDIOWays > cfg.LLCAssoc {
		panic(fmt.Sprintf("hier: DDIO ways %d out of range for %d-way LLC", cfg.DDIOWays, cfg.LLCAssoc))
	}
	if cfg.AppWayMask == 0 {
		cfg.AppWayMask = cache.AllWays
	}
	h := &Hierarchy{
		cfg:         cfg,
		llc:         cache.New(cache.Config{Name: "llc", SizeBytes: cfg.LLCSize, Assoc: cfg.LLCAssoc, Policy: cfg.Policy}),
		dram:        dram.New(cfg.DRAM, cfg.TimelineBucket),
		ddioMask:    cache.FirstN(cfg.DDIOWays),
		appMask:     cfg.AppWayMask,
		mlcWBByCore: make([]uint64, cfg.NumCores),
		demand:      make([]CoreDemand, cfg.NumCores),
	}
	for i := 0; i < cfg.NumCores; i++ {
		h.l1 = append(h.l1, cache.New(cache.Config{
			Name: fmt.Sprintf("l1d%d", i), SizeBytes: cfg.L1Size, Assoc: cfg.L1Assoc, Policy: cfg.Policy,
		}))
		mlcSize := cfg.MLCSize
		if i < len(cfg.MLCSizePerCore) && cfg.MLCSizePerCore[i] > 0 {
			mlcSize = cfg.MLCSizePerCore[i]
		}
		h.mlc = append(h.mlc, cache.New(cache.Config{
			Name: fmt.Sprintf("mlc%d", i), SizeBytes: mlcSize, Assoc: cfg.MLCAssoc, Policy: cfg.Policy,
		}))
	}
	h.dir = newDirectory(cfg.NumCores*cfg.DirEntriesPerCore, cfg.DirAssoc)
	h.l1Lat = cfg.Clock.Cycles(cfg.L1Lat)
	h.mlcLat = cfg.Clock.Cycles(cfg.MLCLat)
	h.llcLat = cfg.Clock.Cycles(cfg.LLCLat)
	if cfg.TimelineBucket > 0 {
		h.MLCWBTL = stats.NewTimeline(cfg.TimelineBucket)
		h.LLCWBTL = stats.NewTimeline(cfg.TimelineBucket)
		h.MLCInvTL = stats.NewTimeline(cfg.TimelineBucket)
		h.DMAReqTL = stats.NewTimeline(cfg.TimelineBucket)
	}
	return h
}

// Config returns the construction-time configuration.
func (h *Hierarchy) Config() Config { return h.cfg }

// Stats returns a copy of the aggregate counters.
func (h *Hierarchy) Stats() Stats { return h.stats }

// DRAM exposes the memory device (read-only use intended).
func (h *Hierarchy) DRAM() *dram.DRAM { return h.dram }

// MLCWritebacks returns the per-core dirty-MLC-writeback count. The
// IDIO controller samples this every 1 µs (Alg. 1, control plane).
func (h *Hierarchy) MLCWritebacks(core int) uint64 { return h.mlcWBByCore[core] }

// Demand returns a core's demand-access breakdown by service level.
func (h *Hierarchy) Demand(core int) CoreDemand { return h.demand[core] }

// MLCOccupancy returns valid-line counts for a core's MLC.
func (h *Hierarchy) MLCOccupancy(core int) int { return h.mlc[core].Occupancy() }

// MLCLoadFraction returns the core's MLC occupancy as a fraction of
// capacity (O(1); used by the adaptive prefetcher).
func (h *Hierarchy) MLCLoadFraction(core int) float64 { return h.mlc[core].LoadFraction() }

// SetDDIOWays reconfigures how many LLC ways PCIe write-allocates may
// fill, as dynamic DDIO policies (IAT-style) do at runtime. Lines
// already resident outside the new mask stay where they are, exactly
// like CAT repartitioning on real hardware.
func (h *Hierarchy) SetDDIOWays(n int) {
	if n <= 0 || n > h.cfg.LLCAssoc {
		panic(fmt.Sprintf("hier: DDIO ways %d out of range for %d-way LLC", n, h.cfg.LLCAssoc))
	}
	h.ddioMask = cache.FirstN(n)
}

// DDIOWays returns the current DDIO way count.
func (h *Hierarchy) DDIOWays() int { return h.ddioMask.Count() }

// SetClassDDIOWays gives one QoS class a private DDIO way quota:
// inbound DMA carrying that class write-allocates only into the first
// n LLC ways. n = 0 clears the quota (the class reverts to the
// host-wide DDIO mask).
func (h *Hierarchy) SetClassDDIOWays(class, n int) {
	if class < 0 || class >= len(h.classMask) {
		panic(fmt.Sprintf("hier: qos class %d out of range", class))
	}
	if n == 0 {
		h.classMask[class] = 0
		return
	}
	if n < 0 || n > h.cfg.LLCAssoc {
		panic(fmt.Sprintf("hier: class DDIO ways %d out of range for %d-way LLC", n, h.cfg.LLCAssoc))
	}
	h.classMask[class] = cache.FirstN(n)
}

// LLCWBIOCount returns the cumulative DMA-leak count (I/O-classified
// LLC writebacks) — the signal dynamic DDIO policies monitor.
func (h *Hierarchy) LLCWBIOCount() uint64 { return h.stats.LLCWBIO }

// Residency reports where a line currently lives: "mlcN" (core N's
// private cache, which subsumes its L1), "llc", or "" when uncached.
// It is a state probe for tests and tracing; it touches no replacement
// state or statistics.
func (h *Hierarchy) Residency(line mem.LineAddr) string {
	la := uint64(line)
	for i := range h.mlc {
		if h.mlc[i].Contains(la) {
			return fmt.Sprintf("mlc%d", i)
		}
	}
	if h.llc.Contains(la) {
		return "llc"
	}
	return ""
}

// LLCOccupancyIO returns the number of LLC lines still classified I/O.
func (h *Hierarchy) LLCOccupancyIO() int { return h.llc.OccupancyIO() }

// LLCOccupancy returns the total number of valid LLC lines.
func (h *Hierarchy) LLCOccupancy() int { return h.llc.Occupancy() }

// --- CPU demand path ---

// CoreRead performs a demand load of one cacheline by the given core
// and returns its latency.
func (h *Hierarchy) CoreRead(now sim.Time, core int, line mem.LineAddr) sim.Duration {
	return h.coreAccess(now, core, line, false)
}

// CoreWrite performs a demand store (write-allocate, writeback) of one
// cacheline and returns its latency.
func (h *Hierarchy) CoreWrite(now sim.Time, core int, line mem.LineAddr) sim.Duration {
	return h.coreAccess(now, core, line, true)
}

func (h *Hierarchy) coreAccess(now sim.Time, core int, line mem.LineAddr, store bool) sim.Duration {
	la := uint64(line)
	// L1 hit.
	if ln := h.l1[core].Lookup(la, true); ln != nil {
		if store {
			ln.Dirty = true
			h.mlc[core].SetDirty(la) // keep MLC state conservative for inclusion
		}
		h.stats.DemandL1Hit++
		h.demand[core].L1Hit++
		return h.l1Lat
	}
	// MLC hit: fill L1.
	if ln := h.mlc[core].Lookup(la, true); ln != nil {
		if store {
			ln.Dirty = true
		}
		h.fillL1(core, la, store)
		h.stats.DemandMLCHit++
		h.demand[core].MLCHit++
		return h.mlcLat
	}
	// LLC hit: bring the line MLC-ward. Exclusive mode deallocates the
	// LLC copy; NINE mode keeps a clean copy behind (the dirtiness
	// moves with the MLC copy so only one level ever writes back).
	if ln := h.llc.Lookup(la, true); ln != nil {
		dirty, io := ln.Dirty, ln.IO
		if h.cfg.RetainLLCOnHit {
			ln.Dirty = false
		} else {
			h.llc.Invalidate(la)
		}
		h.fillMLC(now, core, la, dirty || store, io)
		h.fillL1(core, la, store)
		h.stats.DemandLLCHit++
		h.demand[core].LLCHit++
		return h.llcLat
	}
	// Check other cores' MLCs via directory (cross-core transfer).
	if owner, ok := h.dir.owner(la); ok && owner != core {
		// Remote MLC hit: transfer the line (invalidate remote copy).
		if ln := h.mlc[owner].Lookup(la, false); ln != nil {
			dirty, io := ln.Dirty, ln.IO
			h.mlc[owner].Invalidate(la)
			h.l1[owner].Invalidate(la)
			h.dir.remove(la)
			h.fillMLC(now, core, la, dirty || store, io)
			h.fillL1(core, la, store)
			h.stats.DemandLLCHit++ // charged as an on-chip hit
			h.demand[core].LLCHit++
			return h.llcLat
		}
		h.dir.remove(la) // stale entry
	}
	// DRAM: fill MLC directly (non-inclusive DRAM fills bypass the LLC).
	lat := h.dram.Read(now, la)
	h.fillMLC(now, core, la, store, false)
	h.fillL1(core, la, store)
	h.stats.DemandDRAM++
	h.demand[core].DRAM++
	return h.llcLat + lat
}

// fillL1 inserts the line into a core's L1, spilling a dirty victim's
// state into the MLC (L1 is kept a subset of the MLC).
func (h *Hierarchy) fillL1(core int, la uint64, dirty bool) {
	v, ev := h.l1[core].Insert(la, dirty, false, cache.AllWays)
	if ev && v.Dirty {
		h.mlc[core].SetDirty(v.Addr)
	}
}

// fillMLC inserts the line into a core's MLC, handling the victim and
// directory bookkeeping.
func (h *Hierarchy) fillMLC(now sim.Time, core int, la uint64, dirty, io bool) {
	v, ev := h.mlc[core].Insert(la, dirty, io, cache.AllWays)
	if ev {
		h.l1[core].Invalidate(v.Addr) // maintain L1 subset of MLC
		h.dir.remove(v.Addr)
		h.allocLLCVictim(now, core, v)
	}
	if vd, evd := h.dir.insert(la, core); evd {
		// Directory conflict: back-invalidate the displaced MLC line.
		h.backInvalidate(now, vd.owner, vd.line)
	}
}

// allocLLCVictim places an MLC victim into the LLC (victim-cache fill).
// The line loses its I/O classification here — that is the DMA-bloating
// mechanism: it may now occupy ANY way permitted to the application.
func (h *Hierarchy) allocLLCVictim(now sim.Time, core int, v cache.Victim) {
	h.stats.MLCWriteback++
	h.mlcWBByCore[core]++
	if h.MLCWBTL != nil {
		h.MLCWBTL.Record(now, 1)
	}
	if v.Dirty {
		h.stats.MLCWBDirty++
	}
	lv, ev := h.llc.Insert(v.Addr, v.Dirty, false, h.appMask)
	if ev && lv.Dirty {
		h.llcWriteback(now, lv)
	}
}

func (h *Hierarchy) llcWriteback(now sim.Time, v cache.Victim) {
	h.stats.LLCWriteback++
	if v.IO {
		h.stats.LLCWBIO++
	}
	if h.LLCWBTL != nil {
		h.LLCWBTL.Record(now, 1)
	}
	if h.obs.Tracing() {
		h.obs.LineEvent(obs.EvWriteback, now, v.Addr, -1, "llc", 0)
	}
	h.dram.Write(now, v.Addr)
}

// backInvalidate removes a line from a core's MLC because the directory
// ran out of tracking space; a dirty line is written back to the LLC.
func (h *Hierarchy) backInvalidate(now sim.Time, core int, la uint64) {
	h.stats.DirBackInval++
	h.l1[core].Invalidate(la)
	present, dirty := h.mlc[core].Invalidate(la)
	if present {
		h.allocLLCVictim(now, core, cache.Victim{Addr: la, Dirty: dirty})
	}
}

// --- PCIe ingress (DMA write) path ---

// PCIeWrite performs one full-cacheline inbound DMA write following the
// DDIO ingress flow of Fig. 1 and returns the latency charged to the
// DMA engine.
func (h *Hierarchy) PCIeWrite(now sim.Time, line mem.LineAddr) sim.Duration {
	return h.pcieWriteMask(now, line, h.ddioMask)
}

// PCIeWriteClass is PCIeWrite under a QoS class's way quota: the
// write-allocate is confined to the class's mask when one is set,
// falling back to the host-wide DDIO mask otherwise.
func (h *Hierarchy) PCIeWriteClass(now sim.Time, line mem.LineAddr, class int) sim.Duration {
	mask := h.ddioMask
	if class >= 0 && class < len(h.classMask) && h.classMask[class] != 0 {
		mask = h.classMask[class]
	}
	return h.pcieWriteMask(now, line, mask)
}

func (h *Hierarchy) pcieWriteMask(now sim.Time, line mem.LineAddr, mask cache.WayMask) sim.Duration {
	la := uint64(line)
	if h.DMAReqTL != nil {
		h.DMAReqTL.Record(now, 1)
	}
	// Invalidate any MLC-resident copy (P1/P2 steps in Fig. 1). The data
	// is dead — it is being overwritten — so no writeback happens.
	wasInMLC := h.snoopInvalMLC(now, la)
	if ln := h.llc.Lookup(la, true); ln != nil {
		// In-place update (P2-2/P3-1 in Fig. 1).
		ln.Dirty = true
		ln.IO = true
		h.stats.DDIOUpdate++
		return h.llcLat
	}
	// Write-allocate into the DDIO ways (P1-2/P5-1 in Fig. 1).
	v, ev := h.llc.Insert(la, true, true, mask)
	if ev && v.Dirty {
		h.llcWriteback(now, v)
	}
	h.stats.DDIOAlloc++
	_ = wasInMLC
	return h.llcLat
}

// snoopInvalMLC invalidates la from every core's L1/MLC without
// writeback, returning whether any copy existed.
func (h *Hierarchy) snoopInvalMLC(now sim.Time, la uint64) bool {
	owner, ok := h.dir.owner(la)
	if !ok {
		return false
	}
	h.l1[owner].Invalidate(la)
	present, _ := h.mlc[owner].Invalidate(la)
	h.dir.remove(la)
	if present {
		h.stats.MLCInval++
		if h.MLCInvTL != nil {
			h.MLCInvTL.Record(now, 1)
		}
		if h.obs.Tracing() {
			h.obs.LineEvent(obs.EvInval, now, la, owner, "dma-snoop", 0)
		}
	}
	return present
}

// DirectDRAMWrite implements IDIO's selective direct DRAM access: the
// inbound line bypasses the cache hierarchy entirely. Stale cached
// copies are dropped (they are being overwritten).
func (h *Hierarchy) DirectDRAMWrite(now sim.Time, line mem.LineAddr) sim.Duration {
	la := uint64(line)
	if h.DMAReqTL != nil {
		h.DMAReqTL.Record(now, 1)
	}
	h.snoopInvalMLC(now, la)
	h.llc.Invalidate(la)
	h.stats.DDIOToDRAM++
	return h.dram.Write(now, la)
}

// --- PCIe egress (DMA read) path ---

// PCIeRead performs one outbound DMA read (TX) following the egress
// flow of Fig. 1 and returns its latency.
func (h *Hierarchy) PCIeRead(now sim.Time, line mem.LineAddr) sim.Duration {
	la := uint64(line)
	// MLC-resident: write the line back to LLC and serve from there
	// (P1-1/P2-1 in Fig. 1). The MLC copy is invalidated.
	if owner, ok := h.dir.owner(la); ok {
		if ln := h.mlc[owner].Lookup(la, false); ln != nil {
			dirty, io := ln.Dirty, ln.IO
			h.l1[owner].Invalidate(la)
			h.mlc[owner].Invalidate(la)
			h.dir.remove(la)
			h.allocLLCVictimEgress(now, owner, la, dirty, io)
			return h.llcLat + h.mlcLat
		}
		h.dir.remove(la)
	}
	if h.llc.Lookup(la, true) != nil {
		return h.llcLat
	}
	return h.llcLat + h.dram.Read(now, la)
}

// allocLLCVictimEgress places an egress-evicted MLC line into the LLC.
// Unlike a capacity victim it keeps its I/O classification (it is, by
// definition, a DMA buffer being transmitted).
func (h *Hierarchy) allocLLCVictimEgress(now sim.Time, core int, la uint64, dirty, io bool) {
	h.stats.MLCWriteback++
	h.mlcWBByCore[core]++
	if h.MLCWBTL != nil {
		h.MLCWBTL.Record(now, 1)
	}
	if dirty {
		h.stats.MLCWBDirty++
	}
	lv, ev := h.llc.Insert(la, dirty, io, h.appMask)
	if ev && lv.Dirty {
		h.llcWriteback(now, lv)
	}
}

// --- IDIO mechanisms ---

// RegisterInvalidatable marks a region's lines as safe to invalidate
// without writeback, modeling the kernel-allocated Invalidatable buffer
// of Sec. V-D. When enforcement is enabled (EnforceInvalidatable),
// InvalidateNoWB panics on unregistered lines, catching the privacy bug
// class the paper describes.
func (h *Hierarchy) RegisterInvalidatable(r mem.Region) {
	if h.invalidatable == nil {
		h.invalidatable = make(map[mem.LineAddr]struct{})
	}
	r.Lines(func(l mem.LineAddr) { h.invalidatable[l] = struct{}{} })
}

// EnforceInvalidatable turns on PTE-bit checking for InvalidateNoWB.
func (h *Hierarchy) EnforceInvalidatable(on bool) { h.invalCheck = on }

// InvalidateNoWB drops one cacheline from the requesting core's L1 and
// MLC and from the LLC without any writeback — the new cache
// maintenance instruction of Sec. IV-A / V-D.
func (h *Hierarchy) InvalidateNoWB(now sim.Time, core int, line mem.LineAddr) {
	la := uint64(line)
	if h.invalCheck {
		if _, ok := h.invalidatable[line]; !ok {
			panic(fmt.Sprintf("hier: InvalidateNoWB on non-Invalidatable line %v", line))
		}
	}
	dropped := false
	if p, _ := h.l1[core].Invalidate(la); p {
		dropped = true
	}
	if p, _ := h.mlc[core].Invalidate(la); p {
		h.dir.remove(la)
		dropped = true
	}
	if p, _ := h.llc.Invalidate(la); p {
		dropped = true
	}
	if dropped {
		h.stats.SelfInval++
	}
}

// InvalidateRegionNoWB applies InvalidateNoWB to every line of a region
// (the multi-cacheline invalidate instruction of Sec. V).
func (h *Hierarchy) InvalidateRegionNoWB(now sim.Time, core int, r mem.Region) {
	r.Lines(func(l mem.LineAddr) { h.InvalidateNoWB(now, core, l) })
}

// PrefetchToMLC services a prefetch hint from the IDIO controller: pull
// the line from LLC (or DRAM) into the destination core's MLC. It does
// not fill the L1 and charges no latency to any core. It reports
// whether a fill actually happened.
func (h *Hierarchy) PrefetchToMLC(now sim.Time, core int, line mem.LineAddr) bool {
	la := uint64(line)
	if h.mlc[core].Contains(la) || h.l1[core].Contains(la) {
		h.stats.PrefetchDrop++
		h.tracePrefetch(now, la, core, "drop-resident")
		return false
	}
	if owner, ok := h.dir.owner(la); ok && owner != core {
		// Resident in another MLC: leave it alone.
		h.stats.PrefetchDrop++
		h.tracePrefetch(now, la, core, "drop-foreign")
		return false
	}
	if ln := h.llc.Lookup(la, false); ln != nil {
		dirty, io := ln.Dirty, ln.IO
		h.llc.Invalidate(la)
		h.fillMLC(now, core, la, dirty, io)
		h.stats.PrefetchFill++
		h.tracePrefetch(now, la, core, "fill-llc")
		return true
	}
	// Not on chip: fetch from DRAM.
	h.dram.Read(now, la)
	h.fillMLC(now, core, la, false, false)
	h.stats.PrefetchFill++
	h.tracePrefetch(now, la, core, "fill-dram")
	return true
}

// tracePrefetch emits a prefetch-outcome trace event for a sampled
// line.
func (h *Hierarchy) tracePrefetch(now sim.Time, la uint64, core int, outcome string) {
	if h.obs.Tracing() {
		h.obs.LineEvent(obs.EvPrefetch, now, la, core, outcome, 0)
	}
}

// InjectSnoopPressure force-inserts synthetic entries into the
// snoop-filter directory on behalf of owner — the fault model of a
// co-runner (another socket's coherence traffic, an SGX enclave, a
// noisy VM) thrashing the directory. Conflict victims back-invalidate
// real MLC-resident lines exactly as organic pressure would
// (Skylake-SP's directory side channel works the same way). It
// returns how many synthetic insertions displaced an existing entry.
func (h *Hierarchy) InjectSnoopPressure(now sim.Time, owner int, lines []uint64) int {
	if owner < 0 || owner >= h.cfg.NumCores {
		owner = 0
	}
	evicted := 0
	for _, la := range lines {
		if vd, evd := h.dir.insert(la, owner); evd {
			h.backInvalidate(now, vd.owner, vd.line)
			evicted++
		}
	}
	return evicted
}

// WarmWrite installs a line into a core's MLC as cache warm-up: no
// latency is charged, no DRAM traffic is generated, and no statistics
// are recorded. Victims displaced by the warm fill spill into the LLC
// silently (LLC victims are dropped — warm-up data is DRAM-backed by
// construction). Sec. VI warms the LLCAntagonist's buffer before
// collecting stats; doing it through the timed path would absurdly
// backlog the DRAM bus at t=0.
func (h *Hierarchy) WarmWrite(core int, line mem.LineAddr) {
	la := uint64(line)
	if h.mlc[core].Contains(la) {
		return
	}
	h.llc.Invalidate(la) // keep exclusivity
	v, ev := h.mlc[core].Insert(la, false, false, cache.AllWays)
	if ev {
		h.l1[core].Invalidate(v.Addr)
		h.dir.remove(v.Addr)
		// Spill silently into the LLC; drop its victim.
		h.llc.Insert(v.Addr, v.Dirty, false, h.appMask)
	}
	if vd, evd := h.dir.insert(la, core); evd {
		// Silent back-invalidation (no stats) during warm-up.
		h.l1[vd.owner].Invalidate(vd.line)
		h.mlc[vd.owner].Invalidate(vd.line)
	}
}

// --- directory (snoop filter) ---

// dirEntry tracks one MLC-resident line and its owning core.
type dirEntry struct {
	line  uint64
	owner int
	valid bool
	use   uint64
}

type dirVictim struct {
	line  uint64
	owner int
}

// directory is a set-associative snoop filter. A conflict eviction
// back-invalidates the tracked MLC line, as in Skylake-SP (and as
// exploited by the directory side-channel literature the paper cites).
type directory struct {
	sets  int
	assoc int
	ents  []dirEntry
	// tags packs the entries' (valid, line) pairs one word per way —
	// dirInvalid when empty, the line address otherwise — so the owner
	// probe on every memory access scans a compact array instead of
	// striding across 32-byte dirEntry records.
	tags  []uint64
	clock uint64
}

// dirInvalid marks an empty way in directory.tags (line addresses are
// byte addresses >> 6 and never reach 2^64-1).
const dirInvalid = ^uint64(0)

func newDirectory(entries, assoc int) *directory {
	if assoc <= 0 {
		panic("hier: directory assoc must be positive")
	}
	sets := entries / assoc
	if sets <= 0 {
		sets = 1
	}
	// Round set count down to a power of two for cheap indexing.
	for sets&(sets-1) != 0 {
		sets &= sets - 1
	}
	d := &directory{sets: sets, assoc: assoc, ents: make([]dirEntry, sets*assoc)}
	d.tags = make([]uint64, sets*assoc)
	for i := range d.tags {
		d.tags[i] = dirInvalid
	}
	return d
}

func (d *directory) set(line uint64) []dirEntry {
	si := int(line & uint64(d.sets-1))
	return d.ents[si*d.assoc : (si+1)*d.assoc]
}

func (d *directory) owner(line uint64) (int, bool) {
	base := int(line&uint64(d.sets-1)) * d.assoc
	tags := d.tags[base : base+d.assoc]
	for i := range tags {
		if tags[i] == line {
			return d.ents[base+i].owner, true
		}
	}
	return 0, false
}

// insert records line as resident in owner's MLC. If the set is full a
// victim entry is evicted and returned for back-invalidation.
func (d *directory) insert(line uint64, owner int) (dirVictim, bool) {
	d.clock++
	base := int(line&uint64(d.sets-1)) * d.assoc
	tags := d.tags[base : base+d.assoc]
	set := d.ents[base : base+d.assoc]
	for i := range tags {
		if tags[i] == line {
			set[i].owner = owner
			set[i].use = d.clock
			return dirVictim{}, false
		}
	}
	for i := range tags {
		if tags[i] == dirInvalid {
			set[i] = dirEntry{line: line, owner: owner, valid: true, use: d.clock}
			tags[i] = line
			return dirVictim{}, false
		}
	}
	// Evict LRU entry.
	vi, minUse := 0, ^uint64(0)
	for i := range set {
		if set[i].use < minUse {
			vi, minUse = i, set[i].use
		}
	}
	v := dirVictim{line: set[vi].line, owner: set[vi].owner}
	set[vi] = dirEntry{line: line, owner: owner, valid: true, use: d.clock}
	tags[vi] = line
	return v, true
}

func (d *directory) remove(line uint64) {
	base := int(line&uint64(d.sets-1)) * d.assoc
	tags := d.tags[base : base+d.assoc]
	for i := range tags {
		if tags[i] == line {
			d.ents[base+i].valid = false
			tags[i] = dirInvalid
			return
		}
	}
}

// entries returns the number of valid directory entries (testing aid).
func (d *directory) entries() int {
	n := 0
	for i := range d.ents {
		if d.ents[i].valid {
			n++
		}
	}
	return n
}

// SetObserver attaches the observability layer. A nil observer (the
// default) disables line-level trace emission.
func (h *Hierarchy) SetObserver(o *obs.Observer) { h.obs = o }

// RegisterMetrics registers the hierarchy's counters and occupancy
// gauges under prefix (e.g. "hier."). Counter names mirror the keys
// Results.WriteStats prints; the occupancy/way gauges additionally
// expose the live state the periodic metric snapshots sample.
func (h *Hierarchy) RegisterMetrics(reg *obs.Registry, prefix string) {
	reg.CounterFunc(prefix+"mlc_writebacks", func() uint64 { return h.stats.MLCWriteback })
	reg.CounterFunc(prefix+"mlc_writebacks_dirty", func() uint64 { return h.stats.MLCWBDirty })
	reg.CounterFunc(prefix+"mlc_invalidations", func() uint64 { return h.stats.MLCInval })
	reg.CounterFunc(prefix+"llc_writebacks", func() uint64 { return h.stats.LLCWriteback })
	reg.CounterFunc(prefix+"llc_writebacks_io", func() uint64 { return h.stats.LLCWBIO })
	reg.CounterFunc(prefix+"dir_back_invalidations", func() uint64 { return h.stats.DirBackInval })
	reg.CounterFunc(prefix+"self_invalidations", func() uint64 { return h.stats.SelfInval })
	reg.CounterFunc(prefix+"ddio_updates", func() uint64 { return h.stats.DDIOUpdate })
	reg.CounterFunc(prefix+"ddio_allocations", func() uint64 { return h.stats.DDIOAlloc })
	reg.CounterFunc(prefix+"ddio_direct_dram", func() uint64 { return h.stats.DDIOToDRAM })
	reg.CounterFunc(prefix+"prefetch_fills", func() uint64 { return h.stats.PrefetchFill })
	reg.CounterFunc(prefix+"prefetch_drops", func() uint64 { return h.stats.PrefetchDrop })
	reg.CounterFunc(prefix+"demand_l1_hits", func() uint64 { return h.stats.DemandL1Hit })
	reg.CounterFunc(prefix+"demand_mlc_hits", func() uint64 { return h.stats.DemandMLCHit })
	reg.CounterFunc(prefix+"demand_llc_hits", func() uint64 { return h.stats.DemandLLCHit })
	reg.CounterFunc(prefix+"demand_dram", func() uint64 { return h.stats.DemandDRAM })
	reg.GaugeFunc(prefix+"llc_occupancy", func() float64 { return float64(h.LLCOccupancy()) })
	reg.GaugeFunc(prefix+"llc_occupancy_io", func() float64 { return float64(h.LLCOccupancyIO()) })
	reg.GaugeFunc(prefix+"ddio_ways", func() float64 { return float64(h.DDIOWays()) })
	for i := 0; i < h.cfg.NumCores; i++ {
		i := i
		reg.GaugeFunc(fmt.Sprintf("%smlc%d_occupancy", prefix, i), func() float64 { return float64(h.MLCOccupancy(i)) })
		reg.GaugeFunc(fmt.Sprintf("%smlc%d_load", prefix, i), func() float64 { return h.MLCLoadFraction(i) })
	}
}
