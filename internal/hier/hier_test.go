package hier

import (
	"math/rand"
	"testing"

	"idio/internal/cache"
	"idio/internal/dram"
	"idio/internal/mem"
	"idio/internal/sim"
)

// small returns a deliberately tiny hierarchy so capacity effects are
// easy to trigger: 2 cores, 1KB L1 (2-way), 4KB MLC (4-way), 16KB LLC
// (8-way, 2 DDIO ways), generous directory.
func small(t *testing.T) *Hierarchy {
	t.Helper()
	cfg := Config{
		Clock:    sim.NewClock(3_000_000_000),
		NumCores: 2,
		L1Size:   1 << 10, L1Assoc: 2, L1Lat: 2,
		MLCSize: 4 << 10, MLCAssoc: 4, MLCLat: 12,
		LLCSize: 16 << 10, LLCAssoc: 8, LLCLat: 24,
		DDIOWays:          2,
		DirEntriesPerCore: 256,
		DirAssoc:          8,
		DRAM:              dram.Config{AccessLatency: 80 * sim.Nanosecond, BytesPerSecond: 25_600_000_000},
	}
	return New(cfg)
}

func TestDemandMissGoesToDRAMAndFillsMLC(t *testing.T) {
	h := small(t)
	lat := h.CoreRead(0, 0, 100)
	if lat <= h.llcLat {
		t.Fatalf("cold miss latency %v should include DRAM", lat)
	}
	st := h.Stats()
	if st.DemandDRAM != 1 {
		t.Fatalf("stats %+v", st)
	}
	// DRAM fill bypasses LLC (non-inclusive).
	if h.LLCOccupancy() != 0 {
		t.Fatal("DRAM fill must not allocate in LLC")
	}
	if h.MLCOccupancy(0) != 1 {
		t.Fatal("DRAM fill must land in MLC")
	}
	// Second access: L1 hit.
	lat = h.CoreRead(0, 0, 100)
	if lat != h.l1Lat {
		t.Fatalf("L1 hit latency %v, want %v", lat, h.l1Lat)
	}
	if h.Stats().DemandL1Hit != 1 {
		t.Fatalf("stats %+v", h.Stats())
	}
}

func TestPCIeWriteAllocatesDDIOWays(t *testing.T) {
	h := small(t)
	lat := h.PCIeWrite(0, 7)
	if lat != h.llcLat {
		t.Fatalf("ddio write latency %v", lat)
	}
	st := h.Stats()
	if st.DDIOAlloc != 1 || st.DDIOUpdate != 0 {
		t.Fatalf("stats %+v", st)
	}
	if h.LLCOccupancyIO() != 1 {
		t.Fatal("line must be IO-classified in LLC")
	}
	// Same line again: in-place update.
	h.PCIeWrite(0, 7)
	if h.Stats().DDIOUpdate != 1 {
		t.Fatalf("stats %+v", h.Stats())
	}
}

func TestDDIOWayConfinementCausesDMALeak(t *testing.T) {
	h := small(t)
	// LLC: 16KB / 64B = 256 lines / 8 ways = 32 sets; DDIO capacity is
	// 2 ways x 32 sets = 64 lines. Write 256 distinct lines: residency
	// stays within 64 IO lines and the rest leak to DRAM (DMA leak).
	for i := mem.LineAddr(0); i < 256; i++ {
		h.PCIeWrite(0, i)
	}
	if got := h.LLCOccupancyIO(); got > 64 {
		t.Fatalf("IO lines %d exceed DDIO capacity 64", got)
	}
	st := h.Stats()
	if st.LLCWriteback != 256-64 {
		t.Fatalf("LLC writebacks %d, want 192", st.LLCWriteback)
	}
	if st.LLCWBIO != st.LLCWriteback {
		t.Fatalf("all leaks should be IO-classified: %+v", st)
	}
	if h.DRAM().Writes() != 192 {
		t.Fatalf("DRAM writes %d, want 192", h.DRAM().Writes())
	}
}

func TestLLCHitMovesLineToMLC(t *testing.T) {
	h := small(t)
	h.PCIeWrite(0, 9) // lands in LLC DDIO ways, dirty+IO
	lat := h.CoreRead(0, 0, 9)
	if lat != h.llcLat {
		t.Fatalf("LLC hit latency %v, want %v", lat, h.llcLat)
	}
	if h.LLCOccupancy() != 0 {
		t.Fatal("LLC copy must be deallocated on core demand (move semantics)")
	}
	if h.MLCOccupancy(0) != 1 {
		t.Fatal("line must now be in MLC")
	}
	if h.Stats().DemandLLCHit != 1 {
		t.Fatalf("stats %+v", h.Stats())
	}
}

func TestMLCEvictionWritesBackDirtyToLLCAndBloats(t *testing.T) {
	h := small(t)
	// Bring 64+16 dirty IO lines through MLC of core 0 (MLC = 64 lines).
	n := mem.LineAddr(64 + 16)
	for i := mem.LineAddr(0); i < n; i++ {
		h.PCIeWrite(0, i)
		h.CoreRead(0, 0, i) // moves to MLC, dirty
	}
	st := h.Stats()
	if st.MLCWriteback != 16 {
		t.Fatalf("MLC writebacks %d, want 16", st.MLCWriteback)
	}
	if h.MLCWritebacks(0) != 16 || h.MLCWritebacks(1) != 0 {
		t.Fatalf("per-core WB %d/%d", h.MLCWritebacks(0), h.MLCWritebacks(1))
	}
	// Bloating: the evicted lines allocate in the LLC as non-IO data.
	found := false
	// (IO occupancy counts only PCIe-classified lines; victims lose it.)
	if h.LLCOccupancyIO() != 0 && h.LLCOccupancy() > 0 {
		t.Fatalf("victims must lose IO classification: io=%d", h.LLCOccupancyIO())
	}
	if h.LLCOccupancy() >= 16 {
		found = true
	}
	if !found {
		t.Fatalf("LLC occupancy %d; MLC victims must allocate into LLC", h.LLCOccupancy())
	}
}

func TestAppWayMaskLimitsBloating(t *testing.T) {
	cfg := Config{
		Clock:    sim.NewClock(3_000_000_000),
		NumCores: 1,
		L1Size:   1 << 10, L1Assoc: 2, L1Lat: 2,
		MLCSize: 4 << 10, MLCAssoc: 4, MLCLat: 12,
		LLCSize: 16 << 10, LLCAssoc: 8, LLCLat: 24,
		DDIOWays:          2,
		AppWayMask:        cache.WayMask(1 << 2), // single non-DDIO way
		DirEntriesPerCore: 256, DirAssoc: 8,
		DRAM: dram.Config{AccessLatency: 80 * sim.Nanosecond, BytesPerSecond: 25_600_000_000},
	}
	h := New(cfg)
	// Stream many dirty lines through the MLC; victims may only occupy
	// 1 way x 4 sets = 4 LLC lines, so the rest go to DRAM.
	for i := mem.LineAddr(0); i < 200; i++ {
		h.PCIeWrite(0, i)
		h.CoreRead(0, 0, i)
	}
	if h.DRAM().Writes() == 0 {
		t.Fatal("way-partitioned app must leak writebacks to DRAM")
	}
	// Compare against unpartitioned: strictly fewer DRAM writes.
	h2 := small(t)
	for i := mem.LineAddr(0); i < 200; i++ {
		h2.PCIeWrite(0, i)
		h2.CoreRead(0, 0, i)
	}
	if h2.DRAM().Writes() >= h.DRAM().Writes() {
		t.Fatalf("bloating should absorb writebacks: full=%d 1way=%d",
			h2.DRAM().Writes(), h.DRAM().Writes())
	}
}

func TestPCIeWriteInvalidatesMLCCopy(t *testing.T) {
	h := small(t)
	h.PCIeWrite(0, 5)
	h.CoreRead(0, 0, 5) // line now in MLC core 0
	h.PCIeWrite(0, 5)   // NIC reuses the buffer
	st := h.Stats()
	if st.MLCInval != 1 {
		t.Fatalf("MLC invalidations %d, want 1", st.MLCInval)
	}
	if h.MLCOccupancy(0) != 0 {
		t.Fatal("MLC copy must be gone")
	}
	// No writeback happened for the invalidated line.
	if st.MLCWriteback != 0 {
		t.Fatalf("invalidation must not write back: %+v", st)
	}
	if h.LLCOccupancyIO() != 1 {
		t.Fatal("fresh copy must be in DDIO ways")
	}
}

func TestPCIeReadMovesMLCLineToLLC(t *testing.T) {
	h := small(t)
	h.PCIeWrite(0, 3)
	h.CoreRead(0, 0, 3) // in MLC, dirty
	lat := h.PCIeRead(0, 3)
	if lat != h.llcLat+h.mlcLat {
		t.Fatalf("egress from MLC latency %v", lat)
	}
	if h.MLCOccupancy(0) != 0 {
		t.Fatal("egress read must invalidate the MLC copy")
	}
	if h.LLCOccupancy() != 1 {
		t.Fatal("line must be back in the LLC")
	}
	if h.Stats().MLCWriteback != 1 {
		t.Fatalf("egress of dirty MLC line counts as MLC WB: %+v", h.Stats())
	}
	// Egress keeps IO classification.
	if h.LLCOccupancyIO() != 1 {
		t.Fatal("egress-evicted DMA line keeps IO classification")
	}
}

func TestPCIeReadFromLLCAndDRAM(t *testing.T) {
	h := small(t)
	h.PCIeWrite(0, 3)
	if lat := h.PCIeRead(0, 3); lat != h.llcLat {
		t.Fatalf("LLC egress latency %v", lat)
	}
	if lat := h.PCIeRead(0, 99); lat <= h.llcLat {
		t.Fatalf("uncached egress latency %v should include DRAM", lat)
	}
}

func TestInvalidateNoWBDropsEverywhereWithoutDRAMTraffic(t *testing.T) {
	h := small(t)
	h.PCIeWrite(0, 11)
	h.CoreRead(0, 0, 11) // dirty line in MLC
	h.PCIeWrite(0, 12)   // dirty line in LLC
	wBefore := h.DRAM().Writes()
	h.InvalidateNoWB(0, 0, 11)
	h.InvalidateNoWB(0, 0, 12)
	if h.DRAM().Writes() != wBefore {
		t.Fatal("InvalidateNoWB must not generate DRAM writes")
	}
	if h.MLCOccupancy(0) != 0 || h.LLCOccupancy() != 0 {
		t.Fatal("lines must be dropped from MLC and LLC")
	}
	if h.Stats().SelfInval != 2 {
		t.Fatalf("self invals %d, want 2", h.Stats().SelfInval)
	}
	// Invalidating an absent line is a no-op.
	h.InvalidateNoWB(0, 0, 999)
	if h.Stats().SelfInval != 2 {
		t.Fatal("absent-line invalidate must not count")
	}
}

func TestInvalidateRegionNoWB(t *testing.T) {
	h := small(t)
	r := mem.Region{Base: 0, Size: 2048}
	for l := mem.LineAddr(0); l < 32; l++ {
		h.PCIeWrite(0, l)
		h.CoreRead(0, 0, l)
	}
	h.InvalidateRegionNoWB(0, 0, r)
	if h.MLCOccupancy(0) != 0 {
		t.Fatalf("MLC still holds %d lines", h.MLCOccupancy(0))
	}
}

func TestInvalidatableEnforcement(t *testing.T) {
	h := small(t)
	h.EnforceInvalidatable(true)
	h.RegisterInvalidatable(mem.Region{Base: 0, Size: 2048})
	h.PCIeWrite(0, 1)
	h.InvalidateNoWB(0, 0, 1) // registered: fine
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for unregistered line")
		}
	}()
	h.InvalidateNoWB(0, 0, 1000)
}

func TestPrefetchToMLCMovesLLCLine(t *testing.T) {
	h := small(t)
	h.PCIeWrite(0, 21)
	if !h.PrefetchToMLC(0, 1, 21) {
		t.Fatal("prefetch should fill")
	}
	if h.MLCOccupancy(1) != 1 || h.LLCOccupancy() != 0 {
		t.Fatal("prefetch must move the line LLC -> MLC")
	}
	// Demand read now hits MLC.
	if lat := h.CoreRead(0, 1, 21); lat != h.mlcLat {
		t.Fatalf("post-prefetch latency %v, want MLC hit %v", lat, h.mlcLat)
	}
	// Prefetching a resident line is dropped.
	if h.PrefetchToMLC(0, 1, 21) {
		t.Fatal("resident prefetch must be dropped")
	}
	st := h.Stats()
	if st.PrefetchFill != 1 || st.PrefetchDrop != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestPrefetchFromDRAM(t *testing.T) {
	h := small(t)
	r := h.DRAM().Reads()
	if !h.PrefetchToMLC(0, 0, 77) {
		t.Fatal("uncached prefetch should fill from DRAM")
	}
	if h.DRAM().Reads() != r+1 {
		t.Fatal("prefetch must read DRAM")
	}
}

func TestPrefetchDoesNotStealFromOtherMLC(t *testing.T) {
	h := small(t)
	h.PCIeWrite(0, 5)
	h.CoreRead(0, 0, 5) // in core 0's MLC
	if h.PrefetchToMLC(0, 1, 5) {
		t.Fatal("prefetch must not move a line resident in another MLC")
	}
}

func TestCrossCoreTransfer(t *testing.T) {
	h := small(t)
	h.PCIeWrite(0, 8)
	h.CoreWrite(0, 0, 8) // dirty in core 0
	lat := h.CoreRead(0, 1, 8)
	if lat != h.llcLat {
		t.Fatalf("cross-core transfer latency %v", lat)
	}
	if h.MLCOccupancy(0) != 0 || h.MLCOccupancy(1) != 1 {
		t.Fatal("line must move core0 -> core1")
	}
	// Dirtiness must be preserved across the transfer.
	h2 := small(t)
	h2.PCIeWrite(0, 8)
	h2.CoreRead(0, 0, 8)
	h2.CoreRead(0, 1, 8)
	// Evict it from core 1 and check it writes back as dirty.
	for i := mem.LineAddr(100); i < 100+64; i++ {
		h2.PCIeWrite(0, i)
		h2.CoreRead(0, 1, i)
	}
	if h2.Stats().MLCWriteback == 0 {
		t.Fatal("transferred dirty line must eventually write back dirty")
	}
}

func TestCoreWriteMarksDirtyThroughL1(t *testing.T) {
	h := small(t)
	h.CoreRead(0, 0, 30)  // clean fill from DRAM
	h.CoreWrite(0, 0, 30) // L1 hit store
	// Evict from MLC by streaming the set; dirty line must write back.
	// MLC is 4-way, 16 sets; line 30 maps to set 30%16=14. Fill 4 more
	// lines in set 14: 46, 62, 78, 94.
	for _, l := range []mem.LineAddr{46, 62, 78, 94} {
		h.CoreRead(0, 0, l)
	}
	if h.Stats().MLCWriteback != 1 {
		t.Fatalf("store-dirtied line must write back: %+v", h.Stats())
	}
}

func TestDirectDRAMWriteBypassesCaches(t *testing.T) {
	h := small(t)
	h.PCIeWrite(0, 40)
	h.CoreRead(0, 0, 40) // cached copy in MLC
	w := h.DRAM().Writes()
	h.DirectDRAMWrite(0, 40)
	if h.DRAM().Writes() != w+1 {
		t.Fatal("direct write must hit DRAM")
	}
	if h.MLCOccupancy(0) != 0 || h.LLCOccupancy() != 0 {
		t.Fatal("stale cached copies must be dropped")
	}
	if h.Stats().DDIOToDRAM != 1 {
		t.Fatalf("stats %+v", h.Stats())
	}
	// Next core read must come from DRAM.
	r := h.DRAM().Reads()
	h.CoreRead(0, 0, 40)
	if h.DRAM().Reads() != r+1 {
		t.Fatal("read after direct DRAM write must miss on chip")
	}
}

func TestDirectoryBackInvalidation(t *testing.T) {
	cfg := Config{
		Clock:    sim.NewClock(3_000_000_000),
		NumCores: 1,
		L1Size:   1 << 10, L1Assoc: 2, L1Lat: 2,
		MLCSize: 64 << 10, MLCAssoc: 16, MLCLat: 12, // big MLC (1024 lines)
		LLCSize: 64 << 10, LLCAssoc: 8, LLCLat: 24,
		DDIOWays:          2,
		DirEntriesPerCore: 16, // tiny directory forces conflicts
		DirAssoc:          4,
		DRAM:              dram.Config{AccessLatency: 80 * sim.Nanosecond, BytesPerSecond: 25_600_000_000},
	}
	h := New(cfg)
	for i := mem.LineAddr(0); i < 256; i++ {
		h.CoreRead(0, 0, i)
	}
	if h.Stats().DirBackInval == 0 {
		t.Fatal("tiny directory must force back-invalidations")
	}
	// Every MLC-resident line must still be tracked (inclusion of the
	// directory over MLC contents).
	if h.MLCOccupancy(0) > h.dir.entries() {
		t.Fatalf("MLC holds %d lines but directory only tracks %d",
			h.MLCOccupancy(0), h.dir.entries())
	}
}

func TestMLCWBTimelineRecords(t *testing.T) {
	cfg := DefaultConfig(1)
	cfg.MLCSize = 4 << 10
	cfg.MLCAssoc = 4
	cfg.LLCSize = 16 << 10
	cfg.LLCAssoc = 8
	cfg.DirEntriesPerCore = 256
	h := New(cfg)
	now := sim.Time(15 * sim.Microsecond)
	for i := mem.LineAddr(0); i < 128; i++ {
		h.PCIeWrite(now, i)
		h.CoreRead(now, 0, i)
	}
	if h.MLCWBTL.Total() == 0 {
		t.Fatal("timeline must record MLC writebacks")
	}
	if h.MLCWBTL.Count(1) != h.MLCWBTL.Total() {
		t.Fatal("all events at 15us belong to bucket 1")
	}
}

// Exclusivity invariant: after any interleaving of operations, no line
// is simultaneously valid in an MLC and the LLC, and no line is valid
// in two MLCs.
func TestExclusivityInvariantUnderRandomOps(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	h := small(t)
	lines := 96
	for op := 0; op < 5000; op++ {
		l := mem.LineAddr(rng.Intn(lines))
		core := rng.Intn(2)
		switch rng.Intn(6) {
		case 0:
			h.PCIeWrite(0, l)
		case 1:
			h.CoreRead(0, core, l)
		case 2:
			h.CoreWrite(0, core, l)
		case 3:
			h.PCIeRead(0, l)
		case 4:
			h.InvalidateNoWB(0, core, l)
		case 5:
			h.PrefetchToMLC(0, core, l)
		}
	}
	for l := mem.LineAddr(0); l < mem.LineAddr(lines); l++ {
		inMLC := 0
		for c := 0; c < 2; c++ {
			if h.mlc[c].Contains(uint64(l)) {
				inMLC++
			}
		}
		if inMLC > 1 {
			t.Fatalf("line %v valid in %d MLCs", l, inMLC)
		}
		if inMLC == 1 && h.llc.Contains(uint64(l)) {
			t.Fatalf("line %v valid in both MLC and LLC", l)
		}
	}
}

// L1 must remain a subset of the MLC.
func TestL1SubsetInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	h := small(t)
	for op := 0; op < 5000; op++ {
		l := mem.LineAddr(rng.Intn(64))
		switch rng.Intn(4) {
		case 0:
			h.CoreRead(0, 0, l)
		case 1:
			h.CoreWrite(0, 0, l)
		case 2:
			h.PCIeWrite(0, l)
		case 3:
			h.InvalidateNoWB(0, 0, l)
		}
		bad := false
		h.l1[0].ForEach(func(ln cache.Line) {
			if !h.mlc[0].Contains(ln.Addr) {
				bad = true
			}
		})
		if bad {
			t.Fatalf("op %d: L1 holds a line absent from MLC", op)
		}
	}
}

func nine(t *testing.T) *Hierarchy {
	t.Helper()
	cfg := Config{
		Clock:    sim.NewClock(3_000_000_000),
		NumCores: 2,
		L1Size:   1 << 10, L1Assoc: 2, L1Lat: 2,
		MLCSize: 4 << 10, MLCAssoc: 4, MLCLat: 12,
		LLCSize: 16 << 10, LLCAssoc: 8, LLCLat: 24,
		DDIOWays:          2,
		DirEntriesPerCore: 256,
		DirAssoc:          8,
		DRAM:              dram.Config{AccessLatency: 80 * sim.Nanosecond, BytesPerSecond: 25_600_000_000},
		RetainLLCOnHit:    true,
	}
	return New(cfg)
}

func TestNINERetainsLLCCopyOnHit(t *testing.T) {
	h := nine(t)
	h.PCIeWrite(0, 9)
	h.CoreRead(0, 0, 9)
	// Fig. 1's P2 state: valid in both MLC and LLC.
	if !h.mlc[0].Contains(9) || !h.llc.Contains(9) {
		t.Fatal("NINE hit must leave copies in both levels")
	}
	// Only one dirty copy: dirtiness moved to the MLC.
	if ln := h.llc.Lookup(9, false); ln.Dirty {
		t.Fatal("retained LLC copy must be clean")
	}
	if ln := h.mlc[0].Lookup(9, false); !ln.Dirty {
		t.Fatal("MLC copy must carry the dirtiness")
	}
}

func TestNINEP2IngressInvalidatesMLCAndUpdatesLLC(t *testing.T) {
	h := nine(t)
	h.PCIeWrite(0, 9)
	h.CoreRead(0, 0, 9) // P2: both levels
	h.PCIeWrite(0, 9)   // NIC reuse
	st := h.Stats()
	// P2-1: MLC invalidated; P2-2: LLC updated in place.
	if st.MLCInval != 1 {
		t.Fatalf("P2-1 invalidation missing: %+v", st)
	}
	if st.DDIOUpdate != 1 {
		t.Fatalf("P2-2 in-place update missing: %+v", st)
	}
	if h.mlc[0].Contains(9) {
		t.Fatal("MLC copy must be gone")
	}
	if ln := h.llc.Lookup(9, false); ln == nil || !ln.Dirty || !ln.IO {
		t.Fatalf("LLC copy state: %+v", ln)
	}
}

func TestNINEMLCEvictionUpdatesRetainedCopyInPlace(t *testing.T) {
	h := nine(t)
	h.PCIeWrite(0, 9)
	h.CoreWrite(0, 0, 9) // P2 with dirty MLC copy
	llcOcc := h.LLCOccupancy()
	// Evict line 9 from the MLC by filling its set (16 sets, stride 16).
	for i := mem.LineAddr(1); i <= 4; i++ {
		h.CoreRead(0, 0, 9+i*16)
	}
	if h.mlc[0].Contains(9) {
		t.Fatal("line must have been evicted from MLC")
	}
	// The writeback lands in the retained LLC copy: dirty again, no
	// extra allocation beyond the demand fills' own footprint.
	if ln := h.llc.Lookup(9, false); ln == nil || !ln.Dirty {
		t.Fatalf("retained copy must absorb the writeback: %+v", ln)
	}
	_ = llcOcc
	if h.Stats().MLCWriteback == 0 {
		t.Fatal("eviction still counts as MLC->LLC writeback traffic")
	}
}

func TestConfigValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for zero cores")
		}
	}()
	New(Config{NumCores: 0})
}
