// Package dram models main memory. Two fidelity levels are supported:
//
//   - flat: every access costs AccessLatency plus bus serialisation
//     (Banks == 0);
//   - banked: a row-buffer model — each bank keeps one row open; an
//     access to the open row costs RowHitLatency, any other row costs
//     RowMissLatency (precharge + activate + CAS). Sequential DMA
//     streams mostly hit open rows while the LLC antagonist's random
//     accesses mostly miss, which is exactly the asymmetry that
//     matters for the paper's traffic mix.
//
// Both levels share a bandwidth pipe: each 64-byte burst occupies the
// data bus for 64B/BytesPerSecond, so writeback storms back-pressure
// the hierarchy.
package dram

import (
	"idio/internal/obs"
	"idio/internal/sim"
	"idio/internal/stats"
)

// Config describes the memory device.
type Config struct {
	// AccessLatency is the flat access cost when Banks == 0, and the
	// row-miss cost when the banked model is active and RowMissLatency
	// is unset.
	AccessLatency sim.Duration
	// BytesPerSecond is the peak sustained bandwidth across channels.
	BytesPerSecond int64

	// Banks enables the row-buffer model when > 0.
	Banks int
	// RowBytes is the DRAM row (page) size per bank.
	RowBytes int
	// RowHitLatency is the open-row access cost.
	RowHitLatency sim.Duration
	// RowMissLatency is the closed/conflicting-row cost; falls back to
	// AccessLatency when zero.
	RowMissLatency sim.Duration
}

// DefaultConfig models one channel of DDR4-3200 as in Table I's gem5
// configuration: 25.6 GB/s peak, 8 banks with 8 KB rows, ~42 ns
// open-row hits and ~95 ns row misses (precharge+activate+CAS).
func DefaultConfig() Config {
	return Config{
		AccessLatency:  80 * sim.Nanosecond,
		BytesPerSecond: 25_600_000_000,
		Banks:          8,
		RowBytes:       8 << 10,
		RowHitLatency:  42 * sim.Nanosecond,
		RowMissLatency: 95 * sim.Nanosecond,
	}
}

// FlatConfig is the simple fixed-latency model (useful for tests that
// want deterministic per-access costs).
func FlatConfig() Config {
	return Config{
		AccessLatency:  80 * sim.Nanosecond,
		BytesPerSecond: 25_600_000_000,
	}
}

// DRAM serialises cacheline transfers through a bandwidth pipe and
// charges per-access latency from the row-buffer state.
type DRAM struct {
	cfg Config
	// busFree is the earliest instant the data bus can begin the next
	// 64-byte transfer.
	busFree sim.Time
	// openRow[b] is bank b's open row (-1 when none).
	openRow []int64

	// extraLat is a transient injected per-access penalty (fault
	// injection); penalized counts accesses that paid it.
	extraLat  sim.Duration
	penalized stats.Counter

	reads     stats.Counter
	writes    stats.Counter
	rowHits   stats.Counter
	rowMisses stats.Counter
	// Timelines sample read/write transaction rates for figure output.
	ReadTL  *stats.Timeline
	WriteTL *stats.Timeline
}

// New builds a DRAM model. Timelines use the given bucket (pass 0 to
// disable timeline collection).
func New(cfg Config, timelineBucket sim.Duration) *DRAM {
	if cfg.BytesPerSecond <= 0 {
		panic("dram: non-positive bandwidth")
	}
	if cfg.Banks > 0 && cfg.RowBytes < 64 {
		panic("dram: banked model needs RowBytes >= 64")
	}
	if cfg.RowMissLatency == 0 {
		cfg.RowMissLatency = cfg.AccessLatency
	}
	d := &DRAM{cfg: cfg}
	if cfg.Banks > 0 {
		d.openRow = make([]int64, cfg.Banks)
		for i := range d.openRow {
			d.openRow[i] = -1
		}
	}
	if timelineBucket > 0 {
		d.ReadTL = stats.NewTimeline(timelineBucket)
		d.WriteTL = stats.NewTimeline(timelineBucket)
	}
	return d
}

// lineTransferTime is how long one 64-byte burst occupies the bus.
func (d *DRAM) lineTransferTime() sim.Duration {
	return sim.Duration(64 * int64(sim.Second) / d.cfg.BytesPerSecond)
}

// SetExtraLatency adds a transient per-access latency penalty — the
// fault injector's model of thermal throttling, refresh storms, or a
// contended memory channel. Zero clears the penalty. PenalizedAccesses
// counts accesses served while a penalty was active.
func (d *DRAM) SetExtraLatency(extra sim.Duration) { d.extraLat = extra }

// ExtraLatency returns the currently active penalty.
func (d *DRAM) ExtraLatency() sim.Duration { return d.extraLat }

// PenalizedAccesses returns how many accesses paid an injected
// latency penalty.
func (d *DRAM) PenalizedAccesses() uint64 { return d.penalized.Value() }

// access reserves the bus and returns the completion latency as seen
// by the requester at time now for the cacheline at lineAddr.
func (d *DRAM) access(now sim.Time, lineAddr uint64) sim.Duration {
	lat := d.cfg.AccessLatency
	if d.cfg.Banks > 0 {
		row := int64(lineAddr * 64 / uint64(d.cfg.RowBytes))
		bank := int(row % int64(d.cfg.Banks))
		if d.openRow[bank] == row {
			d.rowHits.Inc()
			lat = d.cfg.RowHitLatency
		} else {
			d.rowMisses.Inc()
			lat = d.cfg.RowMissLatency
			d.openRow[bank] = row
		}
	}
	if d.extraLat > 0 {
		lat += d.extraLat
		d.penalized.Inc()
	}
	start := now
	if d.busFree > start {
		start = d.busFree
	}
	d.busFree = start.Add(d.lineTransferTime())
	return d.busFree.Sub(now) + lat
}

// Read performs a cacheline read at time now and returns its latency.
func (d *DRAM) Read(now sim.Time, lineAddr uint64) sim.Duration {
	d.reads.Inc()
	if d.ReadTL != nil {
		d.ReadTL.Record(now, 1)
	}
	return d.access(now, lineAddr)
}

// Write performs a cacheline write at time now and returns its
// latency. Writes are posted by callers in practice, but the latency
// lets a caller model write-queue back-pressure if it wants to.
func (d *DRAM) Write(now sim.Time, lineAddr uint64) sim.Duration {
	d.writes.Inc()
	if d.WriteTL != nil {
		d.WriteTL.Record(now, 1)
	}
	return d.access(now, lineAddr)
}

// Reads returns the total read transaction count.
func (d *DRAM) Reads() uint64 { return d.reads.Value() }

// Writes returns the total write transaction count.
func (d *DRAM) Writes() uint64 { return d.writes.Value() }

// RowHits returns open-row accesses (banked model only).
func (d *DRAM) RowHits() uint64 { return d.rowHits.Value() }

// RowMisses returns closed/conflicting-row accesses.
func (d *DRAM) RowMisses() uint64 { return d.rowMisses.Value() }

// ReadBytes returns total bytes read.
func (d *DRAM) ReadBytes() uint64 { return d.reads.Value() * 64 }

// WriteBytes returns total bytes written.
func (d *DRAM) WriteBytes() uint64 { return d.writes.Value() * 64 }

// RegisterMetrics registers the DRAM counter set under prefix (e.g.
// "dram.") into the observability registry. Metric names mirror the
// keys Results.WriteStats prints.
func (d *DRAM) RegisterMetrics(reg *obs.Registry, prefix string) {
	reg.CounterFunc(prefix+"reads", d.Reads)
	reg.CounterFunc(prefix+"writes", d.Writes)
	reg.CounterFunc(prefix+"row_hits", d.RowHits)
	reg.CounterFunc(prefix+"row_misses", d.RowMisses)
	reg.CounterFunc(prefix+"penalized_accesses", d.PenalizedAccesses)
}
