package dram

import (
	"testing"

	"idio/internal/sim"
)

func TestUnloadedLatency(t *testing.T) {
	d := New(FlatConfig(), 0)
	lat := d.Read(0, 0)
	// 64B at 25.6GB/s = 2.5ns transfer + 80ns access.
	want := 80*sim.Nanosecond + 2500*sim.Picosecond
	if lat != want {
		t.Fatalf("latency = %v ps, want %v", lat, want)
	}
}

func TestBandwidthSerialisation(t *testing.T) {
	d := New(Config{AccessLatency: 0, BytesPerSecond: 6_400_000_000}, 0) // 10ns per line
	l1 := d.Read(0, 0)
	l2 := d.Read(0, 0)
	l3 := d.Read(0, 0)
	if l1 != 10*sim.Nanosecond || l2 != 20*sim.Nanosecond || l3 != 30*sim.Nanosecond {
		t.Fatalf("queueing latencies %v %v %v", l1, l2, l3)
	}
	// After the bus drains, latency returns to unloaded.
	l4 := d.Read(sim.Time(1*sim.Microsecond), 0)
	if l4 != 10*sim.Nanosecond {
		t.Fatalf("post-drain latency %v", l4)
	}
}

func TestReadWriteShareBus(t *testing.T) {
	d := New(Config{AccessLatency: 0, BytesPerSecond: 6_400_000_000}, 0)
	d.Write(0, 0)
	lat := d.Read(0, 0)
	if lat != 20*sim.Nanosecond {
		t.Fatalf("read after write latency %v, want 20ns", lat)
	}
}

func TestCounters(t *testing.T) {
	d := New(FlatConfig(), 0)
	for i := 0; i < 3; i++ {
		d.Read(0, 0)
	}
	d.Write(0, 0)
	if d.Reads() != 3 || d.Writes() != 1 {
		t.Fatalf("reads=%d writes=%d", d.Reads(), d.Writes())
	}
	if d.ReadBytes() != 192 || d.WriteBytes() != 64 {
		t.Fatalf("bytes r=%d w=%d", d.ReadBytes(), d.WriteBytes())
	}
}

func TestTimelines(t *testing.T) {
	d := New(FlatConfig(), 10*sim.Microsecond)
	d.Read(sim.Time(5*sim.Microsecond), 0)
	d.Write(sim.Time(15*sim.Microsecond), 0)
	if d.ReadTL.Count(0) != 1 || d.WriteTL.Count(1) != 1 {
		t.Fatal("timeline buckets not recorded")
	}
	dNo := New(FlatConfig(), 0)
	if dNo.ReadTL != nil || dNo.WriteTL != nil {
		t.Fatal("timelines must be nil when disabled")
	}
	dNo.Read(0, 0) // must not panic
}

func TestZeroBandwidthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(Config{AccessLatency: 1, BytesPerSecond: 0}, 0)
}

func TestRowBufferHitsAndMisses(t *testing.T) {
	cfg := Config{
		BytesPerSecond: 25_600_000_000,
		Banks:          4, RowBytes: 4096,
		RowHitLatency: 40 * sim.Nanosecond, RowMissLatency: 100 * sim.Nanosecond,
	}
	d := New(cfg, 0)
	// First access to a row: miss; subsequent lines of the same row: hits.
	// 4096B row = 64 lines.
	lat0 := d.Read(0, 0)
	if lat0 < 100*sim.Nanosecond {
		t.Fatalf("cold access must row-miss: %v", lat0)
	}
	lat1 := d.Read(sim.Time(sim.Microsecond), 1)
	if lat1 >= 100*sim.Nanosecond {
		t.Fatalf("same-row access must hit: %v", lat1)
	}
	if d.RowHits() != 1 || d.RowMisses() != 1 {
		t.Fatalf("hits=%d misses=%d", d.RowHits(), d.RowMisses())
	}
	// A different row on the same bank evicts the open row.
	// Row r maps to bank r%4; rows 0 and 4 share bank 0.
	d.Read(sim.Time(2*sim.Microsecond), 4*64) // row 4 -> bank 0
	lat3 := d.Read(sim.Time(3*sim.Microsecond), 2)
	if lat3 < 100*sim.Nanosecond {
		t.Fatalf("conflicting row must miss: %v", lat3)
	}
}

func TestSequentialStreamMostlyRowHits(t *testing.T) {
	d := New(DefaultConfig(), 0)
	for l := uint64(0); l < 1024; l++ {
		d.Read(sim.Time(int64(l)*int64(sim.Microsecond)), l)
	}
	// 8KB rows = 128 lines: 1024 sequential lines = 8 misses, 1016 hits.
	if d.RowMisses() != 8 || d.RowHits() != 1016 {
		t.Fatalf("sequential stream: hits=%d misses=%d", d.RowHits(), d.RowMisses())
	}
}

func TestRandomStreamMostlyRowMisses(t *testing.T) {
	d := New(DefaultConfig(), 0)
	// Stride far beyond the row size: every access opens a new row.
	for i := uint64(0); i < 256; i++ {
		d.Read(sim.Time(int64(i)*int64(sim.Microsecond)), i*1024*1024)
	}
	if d.RowHits() != 0 {
		t.Fatalf("strided stream must never row-hit: %d hits", d.RowHits())
	}
}

func TestBankedValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for tiny rows")
		}
	}()
	New(Config{BytesPerSecond: 1, Banks: 2, RowBytes: 32}, 0)
}
