package qos

import (
	"math"
	"testing"
)

func TestDefaultMap(t *testing.T) {
	m, err := DefaultConfig().BuildMap()
	if err != nil {
		t.Fatalf("BuildMap: %v", err)
	}
	cases := []struct {
		dscp uint8
		want Class
	}{
		{46, ClassEF},
		{34, ClassAF41}, {36, ClassAF41}, {38, ClassAF41},
		{18, ClassAF21}, {20, ClassAF21}, {22, ClassAF21},
		{8, ClassCS1},
		{0, ClassAF21},  // unlisted codepoints default to AF21
		{63, ClassAF21}, // top of the range, unlisted
	}
	for _, c := range cases {
		if got := m.Class(c.dscp); got != c.want {
			t.Errorf("Class(%d) = %v, want %v", c.dscp, got, c.want)
		}
	}
	if got := m.Class(200); got != ClassAF21 {
		t.Errorf("out-of-range dscp = %v, want af21 fallback", got)
	}
}

func TestValidateRejects(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.Classes[ClassEF].DSCPs = []uint8{64} },
		func(c *Config) { c.Classes[ClassCS1].DSCPs = []uint8{46} }, // duplicate of EF
		func(c *Config) { c.Classes[ClassAF41].Weight = -1 },
		func(c *Config) { c.Classes[ClassAF21].QueueDepth = -1 },
		func(c *Config) { c.Classes[ClassAF21].LLCWays = -2 },
		func(c *Config) { c.Classes[ClassCS1].PrefetchEvery = -2 },
		func(c *Config) { c.Quantum = -1 },
	}
	for i, mutate := range bad {
		cfg := DefaultConfig()
		mutate(cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted a malformed config", i)
		}
	}
	if err := DefaultConfig().Validate(); err != nil {
		t.Errorf("default config rejected: %v", err)
	}
}

// TestWRRFairness is the weights-respected property: with both
// weighted classes permanently backlogged, the byte shares served
// converge to the configured weight ratio, and within any single
// refill round no class exceeds its weight×quantum allowance by more
// than one frame.
func TestWRRFairness(t *testing.T) {
	cfg := DefaultConfig()
	s := NewSched(cfg)
	backlog := [NumClasses]int{ClassAF41: 1 << 20, ClassAF21: 1 << 20}
	const frame = 1500
	var served [NumClasses]int64
	// Track per-round service: a round ends when credits refill, which
	// we observe as the credit of a backlogged class jumping upward.
	roundServed := [NumClasses]int64{}
	maxRound := [NumClasses]int64{}
	prevCredit := s.credit
	for i := 0; i < 20000; i++ {
		c := s.Pick(&backlog)
		if c != int(ClassAF41) && c != int(ClassAF21) {
			t.Fatalf("Pick = %d, want a weighted class", c)
		}
		if s.credit[c] > prevCredit[c] {
			// Refill happened inside Pick: close the round.
			for k := range roundServed {
				if roundServed[k] > maxRound[k] {
					maxRound[k] = roundServed[k]
				}
				roundServed[k] = 0
			}
		}
		s.Charge(c, frame)
		served[c] += frame
		roundServed[c] += frame
		backlog[c]--
		backlog[c]++ // stays saturated
		prevCredit = s.credit
	}
	ratio := float64(served[ClassAF41]) / float64(served[ClassAF21])
	want := float64(cfg.Classes[ClassAF41].Weight) / float64(cfg.Classes[ClassAF21].Weight)
	if math.Abs(ratio-want) > 0.2 {
		t.Errorf("served ratio af41:af21 = %.3f, want ~%.1f (af41=%d af21=%d)",
			ratio, want, served[ClassAF41], served[ClassAF21])
	}
	for _, c := range []Class{ClassAF41, ClassAF21} {
		allow := int64(cfg.Classes[c].Weight)*DefaultQuantum + frame
		if maxRound[c] > allow {
			t.Errorf("class %v served %d bytes in one round, allowance %d", c, maxRound[c], allow)
		}
	}
}

// TestStrictPriorityStarvation: with EF permanently backlogged, no
// other class — weighted or scavenger — is ever scheduled.
func TestStrictPriorityStarvation(t *testing.T) {
	s := NewSched(DefaultConfig())
	backlog := [NumClasses]int{ClassEF: 1, ClassAF41: 10, ClassAF21: 10, ClassCS1: 10}
	for i := 0; i < 10000; i++ {
		if c := s.Pick(&backlog); c != int(ClassEF) {
			t.Fatalf("iteration %d: Pick = %d with EF backlogged, want EF", i, c)
		}
		s.Charge(int(ClassEF), 64)
	}
}

// TestScavengerOnlyOnIdle: CS1 is served iff every other queue is
// empty, and the empty scheduler reports -1.
func TestScavengerOnlyOnIdle(t *testing.T) {
	s := NewSched(DefaultConfig())
	backlog := [NumClasses]int{ClassAF21: 1, ClassCS1: 5}
	if c := s.Pick(&backlog); c != int(ClassAF21) {
		t.Fatalf("Pick = %d with AF21 backlogged, want AF21", c)
	}
	backlog[ClassAF21] = 0
	if c := s.Pick(&backlog); c != int(ClassCS1) {
		t.Fatalf("Pick = %d with only CS1 backlogged, want CS1", c)
	}
	backlog[ClassCS1] = 0
	if c := s.Pick(&backlog); c != -1 {
		t.Fatalf("Pick = %d on empty backlog, want -1", c)
	}
}
