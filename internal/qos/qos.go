// Package qos defines the service-class model threaded through the
// data plane: a DSCP→class map applied in the NIC filter table,
// per-class placement policy (LLC way quota, prefetch aggressiveness,
// direct-to-DRAM for scavengers), and a deterministic strict-priority
// + weighted-round-robin egress scheduler used by fabric links.
//
// The class scheme follows the classic DiffServ quartet:
//
//	EF    — expedited forwarding: latency-critical RPCs
//	AF41  — assured forwarding, high weight: interactive bulk
//	AF21  — assured forwarding, low weight: background bulk (default)
//	CS1   — scavenger: antagonist traffic, served only on idle
//
// ClassEF is deliberately class 0 so an unarmed data plane (every
// packet class 0) encodes to all-zero QoS bits on the wire and stays
// byte-identical to pre-QoS builds.
package qos

import "fmt"

// Class is a service class index.
type Class uint8

const (
	ClassEF Class = iota
	ClassAF41
	ClassAF21
	ClassCS1
	// NumClasses bounds every per-class array in the data plane.
	NumClasses = 4
)

// String names the class as used in stats keys and table columns.
func (c Class) String() string {
	switch c {
	case ClassEF:
		return "ef"
	case ClassAF41:
		return "af41"
	case ClassAF21:
		return "af21"
	case ClassCS1:
		return "cs1"
	}
	return fmt.Sprintf("class%d", uint8(c))
}

// Map is the DSCP→class lookup installed in the NIC filter table and
// consulted by scheduled fabric links. Index by the 6-bit DSCP.
type Map [64]Class

// Class looks up the service class for a DSCP codepoint. Out-of-range
// values (corrupted TOS bytes) fall back to the default class.
func (m *Map) Class(dscp uint8) Class {
	if dscp >= 64 {
		return ClassAF21
	}
	return m[dscp]
}

// ClassPolicy is one class's treatment, end to end.
type ClassPolicy struct {
	// DSCPs are the codepoints mapped to this class. Unlisted
	// codepoints fall to AF21, the default class.
	DSCPs []uint8
	// Priority marks the class strict-priority at egress: served
	// before any weighted or scavenger class, in class order.
	Priority bool
	// Weight is the WRR share for non-priority classes. Weight 0 and
	// no Priority marks a scavenger, served only when every other
	// queue is empty.
	Weight int
	// QueueDepth bounds the class's egress queue on scheduled links
	// (0 = inherit the link's queue depth).
	QueueDepth int
	// LLCWays is the DDIO way quota for this class's inbound DMA
	// placement (0 = inherit the host-wide DDIO mask).
	LLCWays int
	// PrefetchEvery decimates IDIO prefetch hints for this class:
	// 0 or 1 hints every line, N>1 every Nth line, -1 never.
	PrefetchEvery int
	// DirectDRAM bypasses the LLC for this class's payload lines
	// (headers keep the normal path so descriptors stay pollable).
	DirectDRAM bool
}

// Config is the full per-class policy table. A nil *Config anywhere in
// the stack means QoS is disarmed and the legacy single-class path
// runs unchanged.
type Config struct {
	Classes [NumClasses]ClassPolicy
	// Quantum is the WRR byte quantum per weight unit (0 = 2048,
	// comfortably above one MTU frame so weight 1 advances every
	// round).
	Quantum int
}

// DefaultQuantum is the WRR byte quantum used when Config.Quantum is 0.
const DefaultQuantum = 2048

// DefaultConfig is the canonical four-class policy: EF strict-priority
// with a generous way quota, AF41:AF21 sharing 3:1, and CS1 as a
// direct-to-DRAM scavenger that never prefetches.
func DefaultConfig() *Config {
	return &Config{
		Classes: [NumClasses]ClassPolicy{
			ClassEF:   {DSCPs: []uint8{46}, Priority: true, LLCWays: 4},
			ClassAF41: {DSCPs: []uint8{34, 36, 38}, Weight: 3, LLCWays: 2},
			ClassAF21: {DSCPs: []uint8{18, 20, 22}, Weight: 1, LLCWays: 2, PrefetchEvery: 2},
			ClassCS1:  {DSCPs: []uint8{8}, Weight: 0, LLCWays: 1, DirectDRAM: true, PrefetchEvery: -1},
		},
	}
}

// Validate rejects malformed policies: out-of-range or duplicated
// DSCPs, negative weights/depths/quotas, and prefetch strides below
// the -1 sentinel.
func (c *Config) Validate() error {
	var owner [64]int
	for i := range owner {
		owner[i] = -1
	}
	for ci := range c.Classes {
		p := &c.Classes[ci]
		for _, d := range p.DSCPs {
			if d >= 64 {
				return fmt.Errorf("qos: class %v dscp %d out of range [0,63]", Class(ci), d)
			}
			if prev := owner[d]; prev >= 0 && prev != ci {
				return fmt.Errorf("qos: dscp %d mapped to both %v and %v", d, Class(prev), Class(ci))
			}
			owner[d] = ci
		}
		if p.Weight < 0 {
			return fmt.Errorf("qos: class %v negative weight %d", Class(ci), p.Weight)
		}
		if p.QueueDepth < 0 {
			return fmt.Errorf("qos: class %v negative queue depth %d", Class(ci), p.QueueDepth)
		}
		if p.LLCWays < 0 {
			return fmt.Errorf("qos: class %v negative llc ways %d", Class(ci), p.LLCWays)
		}
		if p.PrefetchEvery < -1 {
			return fmt.Errorf("qos: class %v prefetch stride %d below -1", Class(ci), p.PrefetchEvery)
		}
	}
	if c.Quantum < 0 {
		return fmt.Errorf("qos: negative quantum %d", c.Quantum)
	}
	return nil
}

// BuildMap compiles the DSCP→class table. Unlisted codepoints map to
// AF21, the default best-effort class.
func (c *Config) BuildMap() (*Map, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	var m Map
	for i := range m {
		m[i] = ClassAF21
	}
	for ci := range c.Classes {
		for _, d := range c.Classes[ci].DSCPs {
			m[d] = Class(ci)
		}
	}
	return &m, nil
}

// Sched is the deterministic egress scheduler state for one link:
// strict-priority classes drain first in class order, weighted classes
// share by byte-credit WRR, and scavengers (weight 0, non-priority)
// run only when everything else is empty. Pure decision state — the
// link owns the queues and calls Pick/Charge; no allocation, no clock.
type Sched struct {
	cfg     *Config
	quantum int64
	credit  [NumClasses]int64
}

// NewSched builds scheduler state over a validated config.
func NewSched(cfg *Config) *Sched {
	q := int64(cfg.Quantum)
	if q == 0 {
		q = DefaultQuantum
	}
	return &Sched{cfg: cfg, quantum: q}
}

// Pick chooses the next class to serve given the per-class queue
// backlog (packet counts). Returns -1 when every queue is empty. The
// decision depends only on the backlog and accumulated charges, so
// replaying the same sequence reproduces the same schedule.
func (s *Sched) Pick(backlog *[NumClasses]int) int {
	// Strict-priority classes first, in class order.
	for c := 0; c < NumClasses; c++ {
		if s.cfg.Classes[c].Priority && backlog[c] > 0 {
			return c
		}
	}
	// Weighted round-robin by byte credit. When no backlogged weighted
	// class holds positive credit, refill backlogged classes by
	// weight×quantum and clamp idle ones so stale credit cannot burst.
	for {
		anyWeighted := false
		for c := 0; c < NumClasses; c++ {
			p := &s.cfg.Classes[c]
			if p.Priority || p.Weight == 0 || backlog[c] == 0 {
				continue
			}
			anyWeighted = true
			if s.credit[c] > 0 {
				return c
			}
		}
		if !anyWeighted {
			break
		}
		for c := 0; c < NumClasses; c++ {
			p := &s.cfg.Classes[c]
			if p.Priority || p.Weight == 0 {
				continue
			}
			if backlog[c] > 0 {
				s.credit[c] += int64(p.Weight) * s.quantum
			} else {
				s.credit[c] = 0
			}
		}
	}
	// Scavengers only when all priority and weighted queues are empty.
	for c := 0; c < NumClasses; c++ {
		p := &s.cfg.Classes[c]
		if !p.Priority && p.Weight == 0 && backlog[c] > 0 {
			return c
		}
	}
	return -1
}

// Charge debits a served packet against the class's WRR credit.
// Priority and scavenger classes carry no credit and are unaffected.
func (s *Sched) Charge(class, bytes int) {
	if class < 0 || class >= NumClasses {
		return
	}
	p := &s.cfg.Classes[class]
	if !p.Priority && p.Weight > 0 {
		s.credit[class] -= int64(bytes)
	}
}
