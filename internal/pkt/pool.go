// Deterministic packet recycling. The simulator's hot loop used to
// heap-allocate a ~1.5 KB frame plus a Packet header for every
// simulated packet; at the rates the harness targets that makes the Go
// allocator — not the cache model — the throughput ceiling. Pool is a
// plain LIFO free list: explicitly Get, explicitly Release, no
// sync.Pool. sync.Pool's per-P caches and GC-driven eviction make
// reuse order depend on goroutine scheduling and collection timing;
// this list's reuse order depends only on the simulated event order,
// so replays (and -j1 vs -jN runs, which give each cell its own pools)
// stay bit-identical.
package pkt

// PoolStats counts a pool's traffic. Outstanding (Gets - Puts) at the
// end of a drained run is the leak detector: every packet that came
// out must have been released back.
type PoolStats struct {
	// Gets and Puts count packets handed out and returned.
	Gets, Puts uint64
	// Allocs counts Gets that had to allocate because the free list was
	// empty (or a frame outgrew its buffer): the pool's miss count. In
	// an allocation-free steady state this stops growing once the
	// in-flight high-water mark has been reached.
	Allocs uint64
	// Outstanding is Gets - Puts: packets currently held by callers.
	Outstanding uint64
	// HighWater is the maximum Outstanding ever observed — the pool's
	// working-set size.
	HighWater uint64
}

// Pool recycles Packets and their frame storage through the packet
// lifecycle: generator → NIC ring → service → free → back here. It is
// deliberately not safe for concurrent use — each simulated System
// owns its pools, and parallel experiment cells never share one.
type Pool struct {
	free     []*Packet
	frameCap int
	null     bool
	stats    PoolStats
}

// DefaultFrameCap sizes pool buffers to hold any standard frame.
const DefaultFrameCap = MTUFrameLen

// NewPool returns a pool whose recycled buffers hold frames up to
// frameCap bytes (0 means DefaultFrameCap). The free list starts
// empty; buffers are allocated on demand and retained forever after,
// so a run's total allocation is bounded by its in-flight high-water
// mark, not its packet count.
func NewPool(frameCap int) *Pool {
	if frameCap <= 0 {
		frameCap = DefaultFrameCap
	}
	return &Pool{frameCap: frameCap}
}

// NewNullPool returns a pool that never recycles: Get always
// allocates and Release discards. It exists for differential tests —
// running the same workload over a real pool and a null pool must
// produce byte-identical simulation output, proving recycling changes
// memory reuse and nothing else.
func NewNullPool() *Pool {
	return &Pool{frameCap: DefaultFrameCap, null: true}
}

// Get hands out a packet whose Frame has the requested length (its
// contents are whatever the previous user left — callers stamp or copy
// over it). The packet must be returned with Release exactly once.
func (p *Pool) Get(frameLen int) *Packet {
	p.stats.Gets++
	p.stats.Outstanding++
	if p.stats.Outstanding > p.stats.HighWater {
		p.stats.HighWater = p.stats.Outstanding
	}
	var pk *Packet
	if n := len(p.free); n > 0 && !p.null {
		pk = p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		pk.released = false
	} else {
		cap := p.frameCap
		if frameLen > cap {
			cap = frameLen
		}
		p.stats.Allocs++
		pk = &Packet{pool: p, store: make([]byte, cap)}
	}
	if cap(pk.store) < frameLen {
		p.stats.Allocs++
		pk.store = make([]byte, frameLen)
	}
	pk.Frame = pk.store[:frameLen]
	pk.ArrivalTimePS = 0
	pk.Seq = 0
	return pk
}

// put returns a packet to the free list (via Packet.Release).
func (p *Pool) put(pk *Packet) {
	if pk.released {
		panic("pkt: packet released twice")
	}
	pk.released = true
	p.stats.Puts++
	p.stats.Outstanding--
	if !p.null {
		p.free = append(p.free, pk)
	}
}

// Outstanding returns the packets currently held by callers.
func (p *Pool) Outstanding() uint64 { return p.stats.Outstanding }

// Stats snapshots the pool's counters.
func (p *Pool) Stats() PoolStats { return p.stats }
