package pkt

import (
	"testing"
)

// FuzzParse feeds arbitrary bytes to the frame parser: it must never
// panic, and any frame it accepts must re-serialise consistently
// (fields within their domains).
func FuzzParse(f *testing.F) {
	good, _ := Build(Spec{
		SrcIP: IPv4{10, 0, 0, 1}, DstIP: IPv4{10, 0, 0, 2},
		SrcPort: 1234, DstPort: 80, DSCP: 46, FrameLen: 128,
	})
	f.Add(good)
	f.Add([]byte{})
	f.Add(make([]byte, HeadersLen))
	truncated := append([]byte(nil), good[:20]...)
	f.Add(truncated)
	corrupt := append([]byte(nil), good...)
	corrupt[EthHeaderLen+10] ^= 0xff
	f.Add(corrupt)

	f.Fuzz(func(t *testing.T, data []byte) {
		fields, err := Parse(data)
		if err != nil {
			return // rejected inputs are fine; panics are not
		}
		if fields.DSCP > 63 {
			t.Fatalf("accepted frame with DSCP %d", fields.DSCP)
		}
		if fields.EtherType != EtherTypeIPv4 {
			t.Fatalf("accepted non-IPv4 ethertype %#x", fields.EtherType)
		}
		// Accepted frames must carry a checksum-valid IPv4 header, so
		// rewriting the DSCP and reparsing must also succeed.
		buf := append([]byte(nil), data...)
		if err := SetDSCP(buf, 1); err != nil {
			t.Fatalf("SetDSCP on accepted frame: %v", err)
		}
		if _, err := Parse(buf); err != nil {
			t.Fatalf("reparse after SetDSCP: %v", err)
		}
	})
}

// FuzzBuildParseRoundTrip drives Build with arbitrary field values:
// any spec Build accepts must parse back to identical fields.
func FuzzBuildParseRoundTrip(f *testing.F) {
	f.Add(uint8(0), uint16(1), uint16(2), 64)
	f.Add(uint8(46), uint16(5000), uint16(9000), 1514)
	f.Add(uint8(63), uint16(0), uint16(65535), HeadersLen)
	f.Fuzz(func(t *testing.T, dscp uint8, sp, dp uint16, frameLen int) {
		spec := Spec{
			SrcIP: IPv4{192, 168, 1, 1}, DstIP: IPv4{192, 168, 1, 2},
			SrcPort: sp, DstPort: dp, DSCP: dscp, FrameLen: frameLen,
		}
		frame, err := Build(spec)
		if err != nil {
			return
		}
		got, err := Parse(frame)
		if err != nil {
			t.Fatalf("built frame failed to parse: %v", err)
		}
		if got.DSCP != dscp || got.SrcPort != sp || got.DstPort != dp {
			t.Fatalf("round trip mismatch: %+v", got)
		}
	})
}
