// Package pkt models network packets at the fidelity IDIO needs: real
// Ethernet/IPv4/UDP header layouts (so the NIC classifier can parse
// DSCP and 5-tuples from bytes, exactly as hardware would), plus the
// simulation metadata carried alongside each packet.
package pkt

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Header sizes in bytes.
const (
	EthHeaderLen  = 14
	IPv4HeaderLen = 20
	UDPHeaderLen  = 8
	HeadersLen    = EthHeaderLen + IPv4HeaderLen + UDPHeaderLen
	MinFrameLen   = 64
	MTUFrameLen   = 1514
)

// EtherType values.
const EtherTypeIPv4 = 0x0800

// IP protocol numbers.
const (
	ProtoUDP = 17
	ProtoTCP = 6
)

// MAC is a 6-byte Ethernet address.
type MAC [6]byte

func (m MAC) String() string {
	return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x", m[0], m[1], m[2], m[3], m[4], m[5])
}

// IPv4 is a 4-byte address.
type IPv4 [4]byte

func (ip IPv4) String() string {
	return fmt.Sprintf("%d.%d.%d.%d", ip[0], ip[1], ip[2], ip[3])
}

// FiveTuple identifies a flow: the key Flow Director hashes to pick a
// filter-table entry.
type FiveTuple struct {
	Src, Dst         IPv4
	SrcPort, DstPort uint16
	Proto            uint8
}

// Packet is one network frame plus simulation metadata.
type Packet struct {
	// Frame is the on-wire bytes (headers + payload).
	Frame []byte
	// ArrivalTime is stamped by the generator when the packet reaches
	// the NIC; latency measurements are relative to it.
	ArrivalTimePS int64
	// Seq is a generator-assigned sequence number (diagnostics).
	Seq uint64

	// pool is the owning free-list when the packet is recycled; nil for
	// one-shot packets, which Release ignores. store is the full-capacity
	// backing array Frame slices into, retained so a recycled packet can
	// serve any frame length up to its capacity without reallocating.
	pool     *Pool
	store    []byte
	released bool
}

// Len returns the frame length in bytes.
func (p *Packet) Len() int { return len(p.Frame) }

// Release returns the packet to its owning pool, if any. A packet (and
// its frame storage) must not be used after Release — the next Get may
// hand it out again. Releasing a packet twice panics: it is the
// use-after-free of this codebase and would silently alias two live
// packets onto one buffer. Packets built outside a pool ignore Release.
func (p *Packet) Release() {
	if p.pool == nil {
		return
	}
	p.pool.put(p)
}

// Fields is the parsed view of a frame's headers.
type Fields struct {
	SrcMAC, DstMAC MAC
	EtherType      uint16
	DSCP           uint8 // differentiated services code point (6 bits)
	ECN            uint8
	TotalLen       uint16
	TTL            uint8
	Proto          uint8
	SrcIP, DstIP   IPv4
	SrcPort        uint16
	DstPort        uint16
}

// Tuple returns the flow 5-tuple.
func (f *Fields) Tuple() FiveTuple {
	return FiveTuple{Src: f.SrcIP, Dst: f.DstIP, SrcPort: f.SrcPort, DstPort: f.DstPort, Proto: f.Proto}
}

// Spec describes a frame to build.
type Spec struct {
	SrcMAC, DstMAC MAC
	SrcIP, DstIP   IPv4
	SrcPort        uint16
	DstPort        uint16
	// DSCP carries the application class (Sec. V-A): the sender encodes
	// its class in the IP header's DS field.
	DSCP uint8
	TTL  uint8
	// FrameLen is the total frame size including all headers; payload
	// is zero-filled. Must be >= HeadersLen.
	FrameLen int
	// Seq is the per-packet sequence number, stamped into the IPv4
	// Identification field (low 16 bits) so consecutive frames of a flow
	// are distinguishable on the wire. Generators stamp it via
	// Template.Stamp on the hot path; Build writes the same bytes, so
	// the two construction paths are byte-equal for any seq.
	Seq uint64
}

// Build marshals a UDP/IPv4/Ethernet frame from the spec.
func Build(s Spec) ([]byte, error) {
	if s.FrameLen < HeadersLen {
		return nil, fmt.Errorf("pkt: frame length %d below header size %d", s.FrameLen, HeadersLen)
	}
	if s.DSCP > 63 {
		return nil, fmt.Errorf("pkt: DSCP %d exceeds 6 bits", s.DSCP)
	}
	if s.TTL == 0 {
		s.TTL = 64
	}
	f := make([]byte, s.FrameLen)
	// Ethernet.
	copy(f[0:6], s.DstMAC[:])
	copy(f[6:12], s.SrcMAC[:])
	binary.BigEndian.PutUint16(f[12:14], EtherTypeIPv4)
	// IPv4.
	ip := f[EthHeaderLen:]
	ip[0] = 0x45 // version 4, IHL 5
	ip[1] = s.DSCP << 2
	ipTotal := s.FrameLen - EthHeaderLen
	binary.BigEndian.PutUint16(ip[2:4], uint16(ipTotal))
	binary.BigEndian.PutUint16(ip[4:6], uint16(s.Seq)) // Identification
	ip[8] = s.TTL
	ip[9] = ProtoUDP
	copy(ip[12:16], s.SrcIP[:])
	copy(ip[16:20], s.DstIP[:])
	binary.BigEndian.PutUint16(ip[10:12], ipChecksum(ip[:IPv4HeaderLen]))
	// UDP.
	udp := ip[IPv4HeaderLen:]
	binary.BigEndian.PutUint16(udp[0:2], s.SrcPort)
	binary.BigEndian.PutUint16(udp[2:4], s.DstPort)
	binary.BigEndian.PutUint16(udp[4:6], uint16(ipTotal-IPv4HeaderLen))
	// UDP checksum left zero (optional for IPv4).
	return f, nil
}

// Errors returned by Parse.
var (
	ErrTruncated   = errors.New("pkt: truncated frame")
	ErrNotIPv4     = errors.New("pkt: not an IPv4 frame")
	ErrBadChecksum = errors.New("pkt: bad IPv4 header checksum")
	ErrBadVersion  = errors.New("pkt: bad IP version/IHL")
)

// Parse decodes the headers of a frame. It validates the IPv4 header
// checksum, as a NIC parsing engine would.
func Parse(f []byte) (Fields, error) {
	var out Fields
	if len(f) < HeadersLen {
		return out, ErrTruncated
	}
	copy(out.DstMAC[:], f[0:6])
	copy(out.SrcMAC[:], f[6:12])
	out.EtherType = binary.BigEndian.Uint16(f[12:14])
	if out.EtherType != EtherTypeIPv4 {
		return out, ErrNotIPv4
	}
	ip := f[EthHeaderLen:]
	if ip[0] != 0x45 {
		return out, ErrBadVersion
	}
	if ipChecksum(ip[:IPv4HeaderLen]) != 0 {
		return out, ErrBadChecksum
	}
	out.DSCP = ip[1] >> 2
	out.ECN = ip[1] & 3
	out.TotalLen = binary.BigEndian.Uint16(ip[2:4])
	out.TTL = ip[8]
	out.Proto = ip[9]
	copy(out.SrcIP[:], ip[12:16])
	copy(out.DstIP[:], ip[16:20])
	l4 := ip[IPv4HeaderLen:]
	out.SrcPort = binary.BigEndian.Uint16(l4[0:2])
	out.DstPort = binary.BigEndian.Uint16(l4[2:4])
	return out, nil
}

// ipChecksum computes the standard one's-complement sum over the
// header. Computing it over a header with the checksum field filled in
// yields zero iff the checksum is valid.
func ipChecksum(hdr []byte) uint16 {
	var sum uint32
	for i := 0; i+1 < len(hdr); i += 2 {
		sum += uint32(binary.BigEndian.Uint16(hdr[i : i+2]))
	}
	if len(hdr)%2 == 1 {
		sum += uint32(hdr[len(hdr)-1]) << 8
	}
	for sum>>16 != 0 {
		sum = (sum & 0xffff) + (sum >> 16)
	}
	return ^uint16(sum)
}

// EchoResponse builds the reply frame for a request: a copy with the
// Ethernet MACs, IPv4 addresses, and UDP ports each swapped, payload
// and sequence number retained. Swapping the 16-bit-aligned source and
// destination address words leaves the IPv4 header checksum valid (the
// one's-complement sum is order-independent), so the reply parses like
// any generator-built frame.
func EchoResponse(p *Packet) *Packet {
	r := &Packet{}
	echoInto(r, p)
	return r
}

// EchoInto is EchoResponse into a pool-recycled packet: the reply
// frame is built in r's recycled buffer (resized only if undersized),
// so the steady-state echo path allocates nothing. r must come from a
// Pool.Get (any frame length — it is resized to match p).
func EchoInto(r *Packet, p *Packet) *Packet {
	echoInto(r, p)
	return r
}

// echoInto copies p's frame into r with the address pairs swapped.
func echoInto(r *Packet, p *Packet) {
	if cap(r.store) < len(p.Frame) {
		r.store = make([]byte, len(p.Frame))
	}
	f := r.store[:len(p.Frame)]
	copy(f, p.Frame)
	for i := 0; i < 6; i++ { // Ethernet dst ↔ src
		f[i], f[6+i] = f[6+i], f[i]
	}
	ip := EthHeaderLen
	for i := 0; i < 4; i++ { // IPv4 src ↔ dst
		f[ip+12+i], f[ip+16+i] = f[ip+16+i], f[ip+12+i]
	}
	udp := EthHeaderLen + IPv4HeaderLen
	for i := 0; i < 2; i++ { // UDP src port ↔ dst port
		f[udp+i], f[udp+2+i] = f[udp+2+i], f[udp+i]
	}
	r.Frame = f
	r.Seq = p.Seq
	r.ArrivalTimePS = 0
}

// SetDSCP rewrites the DS field of an already-built frame and fixes the
// IPv4 checksum. This models applications updating their class on the
// fly via setsockopt (Sec. V-A).
func SetDSCP(f []byte, dscp uint8) error {
	if len(f) < EthHeaderLen+IPv4HeaderLen {
		return ErrTruncated
	}
	if dscp > 63 {
		return fmt.Errorf("pkt: DSCP %d exceeds 6 bits", dscp)
	}
	ip := f[EthHeaderLen:]
	ip[1] = dscp<<2 | ip[1]&3
	ip[10], ip[11] = 0, 0
	binary.BigEndian.PutUint16(ip[10:12], ipChecksum(ip[:IPv4HeaderLen]))
	return nil
}
