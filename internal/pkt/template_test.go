package pkt

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// Stamped frames must be byte-identical to a full Build of the same
// spec — the template fast path may not change a single bit on the
// wire, across frame sizes, DSCP values, and sequence numbers whose
// low 16 bits exercise the Identification/checksum stamping.
func TestTemplateStampMatchesBuild(t *testing.T) {
	seqs := []uint64{0, 1, 2, 255, 256, 0x7fff, 0xfffe, 0xffff,
		0x10000, 0x12345, 1<<32 + 9, 1<<48 + 0xbeef}
	for _, frameLen := range []int{MinFrameLen, 64, 128, 1514} {
		for _, dscp := range []uint8{0, 1, 7, 46, 63} {
			s := spec(frameLen, dscp)
			tmpl, err := NewTemplate(s)
			if err != nil {
				t.Fatalf("len=%d dscp=%d: %v", frameLen, dscp, err)
			}
			if tmpl.FrameLen() != frameLen {
				t.Fatalf("template len %d, want %d", tmpl.FrameLen(), frameLen)
			}
			p := &Packet{}
			for _, seq := range seqs {
				s.Seq = seq
				want, err := Build(s)
				if err != nil {
					t.Fatal(err)
				}
				tmpl.Stamp(p, seq)
				if !bytes.Equal(p.Frame, want) {
					t.Fatalf("len=%d dscp=%d seq=%#x: stamped frame differs from Build", frameLen, dscp, seq)
				}
				if p.Seq != seq {
					t.Fatalf("stamped packet Seq = %d, want %d", p.Seq, seq)
				}
			}
		}
	}
}

// Every possible Identification value must stamp to a frame that is
// byte-equal to Build's and carries a checksum Parse accepts — the
// incremental-checksum shortcut has exactly 2^16 distinct outcomes, so
// sweep them all.
func TestTemplateStampExhaustiveIDSweep(t *testing.T) {
	s := spec(64, 0)
	tmpl := MustTemplate(s)
	p := &Packet{}
	for seq := uint64(0); seq <= 0xffff; seq++ {
		s.Seq = seq
		want, err := Build(s)
		if err != nil {
			t.Fatal(err)
		}
		tmpl.Stamp(p, seq)
		if !bytes.Equal(p.Frame, want) {
			t.Fatalf("seq=%#x: stamped frame differs from Build", seq)
		}
		if _, err := Parse(p.Frame); err != nil {
			t.Fatalf("seq=%#x: Parse rejects stamped frame: %v", seq, err)
		}
	}
}

// Stamping must parse back to the template's flow with the sequence
// number in the Identification field.
func TestTemplateStampParsesToFlow(t *testing.T) {
	tmpl := MustTemplate(spec(256, 46))
	p := tmpl.Packet(0xabcd1234)
	got, err := Parse(p.Frame)
	if err != nil {
		t.Fatal(err)
	}
	if id := binary.BigEndian.Uint16(p.Frame[EthHeaderLen+4 : EthHeaderLen+6]); id != 0x1234 {
		t.Fatalf("Identification %#x, want low 16 bits of seq", id)
	}
	if got.DSCP != 46 || got.SrcPort != 5000 || got.DstPort != 8080 {
		t.Fatalf("parsed %+v", got)
	}
}

// A packet whose buffer already fits the template must be re-stamped
// in place: no storage growth, so pool-recycled packets never
// reallocate.
func TestTemplateStampReusesStorage(t *testing.T) {
	tmpl := MustTemplate(spec(1514, 0))
	p := &Packet{}
	tmpl.Stamp(p, 1)
	before := &p.store[0]
	for seq := uint64(2); seq < 10; seq++ {
		tmpl.Stamp(p, seq)
		if &p.store[0] != before {
			t.Fatalf("seq=%d: stamp reallocated the frame storage", seq)
		}
	}
	// A smaller template into the same buffer reuses it too.
	small := MustTemplate(spec(64, 0))
	small.Stamp(p, 3)
	if &p.store[0] != before {
		t.Fatal("smaller stamp reallocated the frame storage")
	}
	if len(p.Frame) != 64 {
		t.Fatalf("frame len %d after smaller stamp", len(p.Frame))
	}
}

// NewTemplate must reject what Build rejects.
func TestTemplateRejectsBadSpec(t *testing.T) {
	if _, err := NewTemplate(spec(10, 0)); err == nil {
		t.Fatal("short frame must be rejected")
	}
	if _, err := NewTemplate(spec(100, 64)); err == nil {
		t.Fatal("7-bit DSCP must be rejected")
	}
}
