package pkt

import (
	"testing"
	"testing/quick"
)

func spec(frameLen int, dscp uint8) Spec {
	return Spec{
		SrcMAC:  MAC{0x02, 0, 0, 0, 0, 1},
		DstMAC:  MAC{0x02, 0, 0, 0, 0, 2},
		SrcIP:   IPv4{10, 0, 0, 1},
		DstIP:   IPv4{10, 0, 0, 2},
		SrcPort: 5000, DstPort: 8080,
		DSCP: dscp, FrameLen: frameLen,
	}
}

func TestBuildParseRoundTrip(t *testing.T) {
	f, err := Build(spec(1514, 7))
	if err != nil {
		t.Fatal(err)
	}
	if len(f) != 1514 {
		t.Fatalf("frame len %d", len(f))
	}
	got, err := Parse(f)
	if err != nil {
		t.Fatal(err)
	}
	if got.DSCP != 7 || got.Proto != ProtoUDP || got.SrcPort != 5000 || got.DstPort != 8080 {
		t.Fatalf("parsed %+v", got)
	}
	if got.SrcIP != (IPv4{10, 0, 0, 1}) || got.DstIP != (IPv4{10, 0, 0, 2}) {
		t.Fatalf("IPs %v %v", got.SrcIP, got.DstIP)
	}
	if got.TotalLen != 1500 {
		t.Fatalf("ip total len %d, want 1500", got.TotalLen)
	}
	if got.TTL != 64 {
		t.Fatalf("default TTL %d", got.TTL)
	}
}

func TestBuildRejectsBadInputs(t *testing.T) {
	if _, err := Build(spec(10, 0)); err == nil {
		t.Fatal("short frame must be rejected")
	}
	if _, err := Build(spec(100, 64)); err == nil {
		t.Fatal("7-bit DSCP must be rejected")
	}
}

func TestParseValidatesChecksum(t *testing.T) {
	f, _ := Build(spec(128, 0))
	f[EthHeaderLen+8] ^= 0xff // corrupt TTL
	if _, err := Parse(f); err != ErrBadChecksum {
		t.Fatalf("err = %v, want checksum error", err)
	}
}

func TestParseRejectsTruncatedAndNonIP(t *testing.T) {
	if _, err := Parse(make([]byte, 10)); err != ErrTruncated {
		t.Fatalf("err = %v", err)
	}
	f, _ := Build(spec(128, 0))
	f[12], f[13] = 0x86, 0xdd // IPv6 ethertype
	if _, err := Parse(f); err != ErrNotIPv4 {
		t.Fatalf("err = %v", err)
	}
	f2, _ := Build(spec(128, 0))
	f2[EthHeaderLen] = 0x46 // IHL 6
	if _, err := Parse(f2); err != ErrBadVersion {
		t.Fatalf("err = %v", err)
	}
}

func TestSetDSCPPreservesChecksumValidity(t *testing.T) {
	f, _ := Build(spec(256, 1))
	if err := SetDSCP(f, 63); err != nil {
		t.Fatal(err)
	}
	got, err := Parse(f)
	if err != nil {
		t.Fatalf("reparse after SetDSCP: %v", err)
	}
	if got.DSCP != 63 {
		t.Fatalf("dscp = %d", got.DSCP)
	}
	if err := SetDSCP(f, 64); err == nil {
		t.Fatal("out-of-range DSCP must fail")
	}
	if err := SetDSCP(make([]byte, 5), 1); err == nil {
		t.Fatal("short frame must fail")
	}
}

func TestTupleExtraction(t *testing.T) {
	f, _ := Build(spec(200, 0))
	fl, _ := Parse(f)
	tp := fl.Tuple()
	want := FiveTuple{Src: IPv4{10, 0, 0, 1}, Dst: IPv4{10, 0, 0, 2}, SrcPort: 5000, DstPort: 8080, Proto: ProtoUDP}
	if tp != want {
		t.Fatalf("tuple %+v", tp)
	}
}

func TestStringFormats(t *testing.T) {
	if (MAC{0xde, 0xad, 0xbe, 0xef, 0, 1}).String() != "de:ad:be:ef:00:01" {
		t.Fatal("MAC format")
	}
	if (IPv4{192, 168, 0, 1}).String() != "192.168.0.1" {
		t.Fatal("IP format")
	}
}

// Property: any valid spec builds a frame that parses back to the same
// field values.
func TestQuickRoundTrip(t *testing.T) {
	f := func(srcIP, dstIP [4]byte, sp, dp uint16, dscpRaw uint8, extra uint16) bool {
		s := Spec{
			SrcIP: IPv4(srcIP), DstIP: IPv4(dstIP),
			SrcPort: sp, DstPort: dp,
			DSCP:     dscpRaw & 63,
			FrameLen: HeadersLen + int(extra%1473),
		}
		frame, err := Build(s)
		if err != nil {
			return false
		}
		got, err := Parse(frame)
		if err != nil {
			return false
		}
		return got.SrcIP == s.SrcIP && got.DstIP == s.DstIP &&
			got.SrcPort == sp && got.DstPort == dp && got.DSCP == s.DSCP
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkBuild(b *testing.B) {
	s := spec(1514, 3)
	for i := 0; i < b.N; i++ {
		if _, err := Build(s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkParse(b *testing.B) {
	f, _ := Build(spec(1514, 3))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Parse(f); err != nil {
			b.Fatal(err)
		}
	}
}
