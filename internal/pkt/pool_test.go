package pkt

import "testing"

func TestPoolRecyclesLIFO(t *testing.T) {
	pool := NewPool(0)
	a := pool.Get(64)
	b := pool.Get(64)
	if a == b {
		t.Fatal("two outstanding Gets returned the same packet")
	}
	a.Release()
	b.Release()
	// LIFO: the most recently released packet comes back first.
	if got := pool.Get(64); got != b {
		t.Fatal("first Get after release is not the last-released packet")
	}
	if got := pool.Get(64); got != a {
		t.Fatal("second Get after release is not the first-released packet")
	}
	if st := pool.Stats(); st.Allocs != 2 {
		t.Fatalf("allocs %d after warm reuse, want 2", st.Allocs)
	}
}

func TestPoolDoubleReleasePanics(t *testing.T) {
	pool := NewPool(0)
	p := pool.Get(64)
	p.Release()
	defer func() {
		if recover() == nil {
			t.Fatal("double release must panic")
		}
	}()
	p.Release()
}

func TestPoolResetsRecycledPacket(t *testing.T) {
	pool := NewPool(0)
	p := pool.Get(128)
	p.Seq = 42
	p.ArrivalTimePS = 99
	p.Release()
	q := pool.Get(64)
	if q != p {
		t.Fatal("expected the released packet back")
	}
	if q.Seq != 0 || q.ArrivalTimePS != 0 {
		t.Fatalf("recycled packet not reset: Seq=%d ArrivalTimePS=%d", q.Seq, q.ArrivalTimePS)
	}
	if len(q.Frame) != 64 {
		t.Fatalf("recycled frame len %d, want 64", len(q.Frame))
	}
}

func TestPoolGrowsUndersizedBuffer(t *testing.T) {
	pool := NewPool(64)
	p := pool.Get(64)
	p.Release()
	q := pool.Get(1514) // outgrows the recycled 64-byte buffer
	if q != p {
		t.Fatal("expected the released packet back")
	}
	if len(q.Frame) != 1514 {
		t.Fatalf("frame len %d, want 1514", len(q.Frame))
	}
	if st := pool.Stats(); st.Allocs != 2 {
		t.Fatalf("allocs %d, want 2 (initial + regrow)", st.Allocs)
	}
}

func TestPoolStatsAccounting(t *testing.T) {
	pool := NewPool(0)
	a := pool.Get(64)
	b := pool.Get(64)
	c := pool.Get(64)
	a.Release()
	b.Release()
	st := pool.Stats()
	want := PoolStats{Gets: 3, Puts: 2, Allocs: 3, Outstanding: 1, HighWater: 3}
	if st != want {
		t.Fatalf("stats %+v, want %+v", st, want)
	}
	if pool.Outstanding() != 1 {
		t.Fatalf("Outstanding() = %d, want 1", pool.Outstanding())
	}
	c.Release()
	if st := pool.Stats(); st.Outstanding != 0 || st.HighWater != 3 {
		t.Fatalf("drained stats %+v", st)
	}
}

func TestNullPoolNeverRecycles(t *testing.T) {
	pool := NewNullPool()
	a := pool.Get(64)
	a.Release()
	b := pool.Get(64)
	if a == b {
		t.Fatal("null pool recycled a packet")
	}
	b.Release()
	st := pool.Stats()
	if st.Allocs != 2 {
		t.Fatalf("allocs %d, want one per Get", st.Allocs)
	}
	if st.Outstanding != 0 || st.Gets != 2 || st.Puts != 2 {
		t.Fatalf("stats %+v", st)
	}
}

func TestNullPoolStillCatchesDoubleRelease(t *testing.T) {
	pool := NewNullPool()
	p := pool.Get(64)
	p.Release()
	defer func() {
		if recover() == nil {
			t.Fatal("double release must panic even on a null pool")
		}
	}()
	p.Release()
}

func TestOneShotPacketIgnoresRelease(t *testing.T) {
	tmpl := MustTemplate(spec(64, 0))
	p := tmpl.Packet(1)
	p.Release() // no pool: must be a no-op, not a panic
	p.Release()
}
