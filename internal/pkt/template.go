package pkt

import (
	"encoding/binary"
	"fmt"
)

// Template is a flow's frame built once, with the per-packet fields
// stamped into a recycled buffer per transmission instead of
// marshalling the whole frame. Only the IPv4 Identification field (the
// low 16 bits of the sequence number) and the header checksum vary
// between a flow's packets, so Stamp is a copy plus two 16-bit stores —
// no per-packet marshalling and no per-packet allocation when the
// destination buffer comes from a Pool.
type Template struct {
	base []byte // frame built for Seq 0
	// sumNoID is the raw (unfolded) one's-complement partial sum of the
	// IPv4 header with the Identification and checksum fields zero.
	// checksum(id) = ^fold(sumNoID + id), bit-exact with what Build
	// computes over the full header, because 16-bit word addition into a
	// uint32 is commutative and the end-around-carry fold of the total is
	// taken identically in both paths.
	sumNoID uint32
}

// NewTemplate builds the flow's immutable frame template. The spec's
// Seq is ignored (templates stamp it per packet).
func NewTemplate(s Spec) (*Template, error) {
	s.Seq = 0
	base, err := Build(s)
	if err != nil {
		return nil, err
	}
	t := &Template{base: base}
	ip := base[EthHeaderLen : EthHeaderLen+IPv4HeaderLen]
	for i := 0; i < IPv4HeaderLen; i += 2 {
		if i == 4 || i == 10 { // Identification, checksum
			continue
		}
		t.sumNoID += uint32(binary.BigEndian.Uint16(ip[i : i+2]))
	}
	return t, nil
}

// FrameLen returns the template's frame length in bytes.
func (t *Template) FrameLen() int { return len(t.base) }

// Stamp writes the template frame with the given sequence number into
// p, resizing p's frame storage only if its capacity is below the
// template length (pool-recycled packets of the right class never
// resize). p.Seq is set alongside the stamped Identification field.
func (t *Template) Stamp(p *Packet, seq uint64) {
	if cap(p.store) < len(t.base) {
		p.store = make([]byte, len(t.base))
	}
	p.Frame = p.store[:len(t.base)]
	copy(p.Frame, t.base)
	p.Seq = seq
	if id := uint16(seq); id != 0 {
		ip := p.Frame[EthHeaderLen:]
		binary.BigEndian.PutUint16(ip[4:6], id)
		sum := t.sumNoID + uint32(id)
		for sum>>16 != 0 {
			sum = (sum & 0xffff) + (sum >> 16)
		}
		binary.BigEndian.PutUint16(ip[10:12], ^uint16(sum))
	}
}

// Packet is the one-shot convenience: allocate a fresh packet carrying
// the stamped frame (equivalent to Build with the same spec and seq).
func (t *Template) Packet(seq uint64) *Packet {
	p := &Packet{}
	t.Stamp(p, seq)
	return p
}

// MustTemplate is NewTemplate for specs known valid at construction
// time (generators validate their flow specs eagerly).
func MustTemplate(s Spec) *Template {
	t, err := NewTemplate(s)
	if err != nil {
		panic(fmt.Sprintf("pkt: %v", err))
	}
	return t
}
