package core

import (
	"testing"
	"testing/quick"

	"idio/internal/pcie"
	"idio/internal/sim"
)

// --- Classifier ---

func TestAppClassFromDSCP(t *testing.T) {
	cfg := DefaultClassifierConfig(4)
	cfg.ClassOneDSCPs = []uint8{46, 10}
	c := NewClassifier(cfg)
	if c.AppClass(46) != 1 || c.AppClass(10) != 1 {
		t.Fatal("listed DSCPs must map to class 1")
	}
	if c.AppClass(0) != 0 || c.AppClass(47) != 0 {
		t.Fatal("unlisted DSCPs must map to class 0")
	}
}

func TestBurstDetectionThreshold(t *testing.T) {
	cfg := DefaultClassifierConfig(2)
	c := NewClassifier(cfg) // 1250 B per 1us window
	now := sim.Time(0)
	if c.AccountPacket(now, 0, 1000) {
		t.Fatal("1000B must not trip a 1250B threshold")
	}
	if !c.AccountPacket(now, 0, 1000) {
		t.Fatal("2000B cumulative must trip the threshold")
	}
	if c.BurstsSeen != 1 {
		t.Fatalf("bursts = %d, want 1", c.BurstsSeen)
	}
	// Per-core isolation: core 1 unaffected.
	if c.AccountPacket(now, 1, 100) {
		t.Fatal("core 1 counter must be independent")
	}
}

func TestBurstCounterResetsAfterIdleGap(t *testing.T) {
	c := NewClassifier(DefaultClassifierConfig(1))
	c.AccountPacket(0, 0, 2000) // burst in window 0
	if c.BurstsSeen != 1 {
		t.Fatal("first burst missed")
	}
	// After an idle window the counter restarts and a new burst can be
	// notified.
	later := sim.Time(2 * sim.Microsecond)
	if c.AccountPacket(later, 0, 1000) {
		t.Fatal("counter must have reset in a new window")
	}
	if !c.AccountPacket(later, 0, 1000) {
		t.Fatal("a fresh burst after idle must notify")
	}
	if c.BurstsSeen != 2 {
		t.Fatalf("bursts = %d, want 2", c.BurstsSeen)
	}
}

func TestBurstNotificationIsEdgeTriggered(t *testing.T) {
	c := NewClassifier(DefaultClassifierConfig(1))
	if !c.AccountPacket(0, 0, 2000) {
		t.Fatal("crossing packet must notify")
	}
	// Later packets in the same window do not re-notify.
	if c.AccountPacket(100, 0, 100) {
		t.Fatal("same-window packets must not re-notify")
	}
	// A sustained burst (adjacent hot windows) does not re-notify
	// either — the FSM stays free to regulate (Fig. 8).
	w1 := sim.Time(sim.Microsecond)
	if c.AccountPacket(w1, 0, 2000) {
		t.Fatal("adjacent hot window must not re-notify")
	}
	w2 := sim.Time(2 * sim.Microsecond)
	if c.AccountPacket(w2, 0, 2000) {
		t.Fatal("sustained burst must not re-notify")
	}
	if c.BurstsSeen != 1 {
		t.Fatalf("bursts = %d, want 1", c.BurstsSeen)
	}
	// After a cold window, the next crossing notifies again.
	w5 := sim.Time(5 * sim.Microsecond)
	if !c.AccountPacket(w5, 0, 2000) {
		t.Fatal("burst after idle gap must notify")
	}
}

func TestClassifierTagProducesMeta(t *testing.T) {
	c := NewClassifier(DefaultClassifierConfig(8))
	m := c.Tag(0, 5, true, false)
	if m.DestCore != 5 || !m.IsHeader || m.IsBurst || m.AppClass != 0 {
		t.Fatalf("meta %+v", m)
	}
	// Tags must round-trip through the TLP encoding.
	tlp, err := pcie.NewWriteTLP(77, m)
	if err != nil {
		t.Fatal(err)
	}
	if tlp.Meta() != m {
		t.Fatalf("TLP round trip %+v", tlp.Meta())
	}
}

func TestClassifierValidation(t *testing.T) {
	for _, cfg := range []ClassifierConfig{
		{NumCores: 0, Window: 1},
		{NumCores: 64, Window: 1},
		{NumCores: 2, Window: 0},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("expected panic for %+v", cfg)
				}
			}()
			NewClassifier(cfg)
		}()
	}
}

// --- Controller ---

func newCtl(policy Policy, wb *[]uint64) *Controller {
	cfg := DefaultControllerConfig(2)
	return NewController(cfg, policy, func(core int) uint64 { return (*wb)[core] })
}

func TestSteerHeaderAlwaysMLC(t *testing.T) {
	wb := []uint64{0, 0}
	c := newCtl(PolicyIDIO, &wb)
	// Even class-1 headers go MLC-ward (Alg. 1 lines 4-5 precede the
	// class check).
	if got := c.Steer(pcie.Meta{AppClass: 1, IsHeader: true}); got != SteerMLC {
		t.Fatalf("class-1 header steered %v", got)
	}
}

func TestSteerClassOnePayloadDRAM(t *testing.T) {
	wb := []uint64{0, 0}
	c := newCtl(PolicyIDIO, &wb)
	if got := c.Steer(pcie.Meta{AppClass: 1}); got != SteerDRAM {
		t.Fatalf("class-1 payload steered %v", got)
	}
	if c.SteerDRAMCount != 1 {
		t.Fatal("stats not counted")
	}
}

func TestSteerPayloadFollowsStatus(t *testing.T) {
	wb := []uint64{0, 0}
	c := newCtl(PolicyIDIO, &wb)
	// Default FSM state 0b11: status LLC.
	if got := c.Steer(pcie.Meta{DestCore: 0}); got != SteerLLC {
		t.Fatalf("default-status payload steered %v", got)
	}
	// A burst resets the FSM: status flips to MLC for that core only.
	if got := c.Steer(pcie.Meta{DestCore: 0, IsBurst: true}); got != SteerMLC {
		t.Fatalf("post-burst payload steered %v", got)
	}
	if got := c.Steer(pcie.Meta{DestCore: 1}); got != SteerLLC {
		t.Fatalf("other core's status must be unaffected: %v", got)
	}
}

func TestDDIOPolicySteersEverythingLLC(t *testing.T) {
	wb := []uint64{0, 0}
	c := newCtl(PolicyDDIO, &wb)
	metas := []pcie.Meta{
		{IsHeader: true},
		{AppClass: 1},
		{IsBurst: true},
		{DestCore: 1},
	}
	for _, m := range metas {
		if got := c.Steer(m); got != SteerLLC {
			t.Fatalf("DDIO policy steered %+v to %v", m, got)
		}
	}
}

func TestStaticPolicyAlwaysMLCForClassZero(t *testing.T) {
	wb := []uint64{0, 0}
	c := newCtl(PolicyStatic, &wb)
	if got := c.Steer(pcie.Meta{DestCore: 0}); got != SteerMLC {
		t.Fatalf("static payload steered %v", got)
	}
	if !c.StatusMLC(0) || !c.StatusMLC(1) {
		t.Fatal("static status must read MLC everywhere")
	}
	// Class-1 payload still goes to DRAM under Static (it enables
	// direct DRAM).
	if got := c.Steer(pcie.Meta{AppClass: 1}); got != SteerDRAM {
		t.Fatalf("static class-1 steered %v", got)
	}
}

func TestFSMSaturatingCounter(t *testing.T) {
	wb := []uint64{0, 0}
	c := newCtl(PolicyIDIO, &wb)
	// Burst: state 0.
	c.Steer(pcie.Meta{DestCore: 0, IsBurst: true})
	if c.FSMState(0) != 0 {
		t.Fatalf("state %d after burst, want 0", c.FSMState(0))
	}
	// Three high-pressure samples saturate at 3 (status LLC).
	for i := 0; i < 5; i++ {
		wb[0] += 100 // 100 WB per 1us > avg(0) + THR(50)
		c.sampleOnce()
	}
	if c.FSMState(0) != 3 || c.StatusMLC(0) {
		t.Fatalf("state %d after pressure, want 3/LLC", c.FSMState(0))
	}
	// Low-pressure samples walk it back to 0 (status MLC).
	for i := 0; i < 5; i++ {
		c.sampleOnce() // no new writebacks
	}
	if c.FSMState(0) != 0 || !c.StatusMLC(0) {
		t.Fatalf("state %d after calm, want 0/MLC", c.FSMState(0))
	}
}

func TestFSMHysteresis(t *testing.T) {
	wb := []uint64{0, 0}
	c := newCtl(PolicyIDIO, &wb)
	c.Steer(pcie.Meta{DestCore: 0, IsBurst: true}) // state 0
	// One high-pressure sample: state 1, still MLC (hysteresis).
	wb[0] += 100
	c.sampleOnce()
	if c.FSMState(0) != 1 || !c.StatusMLC(0) {
		t.Fatalf("state %d, want 1/MLC", c.FSMState(0))
	}
	// Two more: state 3, LLC.
	wb[0] += 100
	c.sampleOnce()
	wb[0] += 100
	c.sampleOnce()
	if c.FSMState(0) != 3 || c.StatusMLC(0) {
		t.Fatalf("state %d, want 3/LLC", c.FSMState(0))
	}
}

// TestFig8TransitionTable drives the 2-bit saturating FSM through its
// complete transition table: from every state, one high-pressure
// sample moves toward 0b11 (saturating) and one low-pressure sample
// moves toward 0b00 (saturating), and a burst notification jumps to
// 0b00 from anywhere.
func TestFig8TransitionTable(t *testing.T) {
	cases := []struct {
		state int
		press bool
		want  int
	}{
		{0, false, 0}, // saturate low
		{0, true, 1},
		{1, false, 0},
		{1, true, 2},
		{2, false, 1},
		{2, true, 3},
		{3, false, 2},
		{3, true, 3}, // saturate high
	}
	for _, c := range cases {
		wb := []uint64{0, 0}
		ctl := newCtl(PolicyIDIO, &wb)
		// Drive the FSM to the starting state: burst reset to 0, then
		// `state` high-pressure samples.
		ctl.Steer(pcie.Meta{DestCore: 0, IsBurst: true})
		for i := 0; i < c.state; i++ {
			wb[0] += 100
			ctl.sampleOnce()
		}
		if ctl.FSMState(0) != c.state {
			t.Fatalf("setup for state %d landed at %d", c.state, ctl.FSMState(0))
		}
		if c.press {
			wb[0] += 100
		}
		ctl.sampleOnce()
		if got := ctl.FSMState(0); got != c.want {
			t.Errorf("state %d press=%v -> %d, want %d", c.state, c.press, got, c.want)
		}
	}
	// Burst jump: from every state a burst notification lands at 0.
	for start := 0; start <= 3; start++ {
		wb := []uint64{0, 0}
		ctl := newCtl(PolicyIDIO, &wb)
		ctl.Steer(pcie.Meta{DestCore: 0, IsBurst: true})
		for i := 0; i < start; i++ {
			wb[0] += 100
			ctl.sampleOnce()
		}
		ctl.Steer(pcie.Meta{DestCore: 0, IsBurst: true})
		if ctl.FSMState(0) != 0 {
			t.Errorf("burst from state %d -> %d, want 0", start, ctl.FSMState(0))
		}
	}
}

// TestAlg1DataPlanePriorities checks the line order of Alg. 1: the
// header rule (lines 4-5) outranks the class rule (6-7), which
// outranks the status rule (8-9), which outranks the default (10-11).
func TestAlg1DataPlanePriorities(t *testing.T) {
	wb := []uint64{0, 0}
	c := newCtl(PolicyIDIO, &wb)
	// status[0] = MLC via burst; status[1] stays LLC.
	c.Steer(pcie.Meta{DestCore: 0, IsBurst: true})
	cases := []struct {
		meta pcie.Meta
		want Steering
	}{
		{pcie.Meta{AppClass: 1, IsHeader: true}, SteerMLC},              // header beats class
		{pcie.Meta{AppClass: 1, DestCore: 0}, SteerDRAM},                // class beats status
		{pcie.Meta{AppClass: 0, DestCore: 0}, SteerMLC},                 // status MLC
		{pcie.Meta{AppClass: 0, DestCore: 1}, SteerLLC},                 // default
		{pcie.Meta{AppClass: 0, DestCore: 1, IsHeader: true}, SteerMLC}, // header always
	}
	for i, tc := range cases {
		if got := c.Steer(tc.meta); got != tc.want {
			t.Errorf("case %d %+v -> %v, want %v", i, tc.meta, got, tc.want)
		}
	}
}

func TestRollingAverageWindow(t *testing.T) {
	wb := []uint64{0, 0}
	cfg := DefaultControllerConfig(2)
	cfg.AvgWindow = 4 // small window for the test
	c := NewController(cfg, PolicyIDIO, func(core int) uint64 { return wb[core] })
	// 4 samples of 10 WB each -> avg 10.
	for i := 0; i < 4; i++ {
		wb[0] += 10
		c.sampleOnce()
	}
	if c.MLCWBAvg(0) != 10 {
		t.Fatalf("avg = %d, want 10", c.MLCWBAvg(0))
	}
	// Pressure threshold is now avg+THR = 60.
	wb[0] += 55
	c.sampleOnce()
	if c.FSMState(0) == fsmMax+1 {
		t.Fatal("impossible state")
	}
	st := c.FSMState(0)
	wb[0] += 61
	c.sampleOnce()
	if c.FSMState(0) <= st && st < fsmMax {
		t.Fatalf("61 WB at avg 10 must raise pressure: %d -> %d", st, c.FSMState(0))
	}
}

func TestControllerControlPlaneRunsOnSim(t *testing.T) {
	wb := []uint64{0, 0}
	cfg := DefaultControllerConfig(2)
	c := NewController(cfg, PolicyIDIO, func(core int) uint64 { return wb[core] })
	s := sim.New()
	c.Start(s)
	s.RunUntil(sim.Time(100 * sim.Microsecond))
	if c.samples != 100 {
		t.Fatalf("samples = %d, want 100", c.samples)
	}
}

// Property: FSM state is always within [0,3] whatever the sample and
// burst sequence.
func TestQuickFSMBounds(t *testing.T) {
	f := func(ops []uint8) bool {
		wb := []uint64{0, 0}
		c := newCtl(PolicyIDIO, &wb)
		for _, op := range ops {
			switch op % 3 {
			case 0:
				c.Steer(pcie.Meta{DestCore: int(op) % 2, IsBurst: true})
			case 1:
				wb[int(op)%2] += uint64(op)
				c.sampleOnce()
			case 2:
				c.sampleOnce()
			}
			for core := 0; core < 2; core++ {
				if s := c.FSMState(core); s < fsmMin || s > fsmMax {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// --- Prefetcher ---

type fakeTarget struct {
	lines []uint64
	times []sim.Time
}

func (f *fakeTarget) PrefetchToMLC(now sim.Time, coreID int, line uint64) bool {
	f.lines = append(f.lines, line)
	f.times = append(f.times, now)
	return true
}

func TestPrefetcherIssuesInOrderAtRate(t *testing.T) {
	s := sim.New()
	tgt := &fakeTarget{}
	p := NewPrefetcher(PrefetcherConfig{QueueDepth: 32, IssueInterval: 10 * sim.Nanosecond}, 0, tgt)
	s.At(0, func(sm *sim.Simulator) {
		for i := uint64(0); i < 5; i++ {
			p.Hint(sm, i)
		}
	})
	s.Run()
	if len(tgt.lines) != 5 {
		t.Fatalf("issued %d, want 5", len(tgt.lines))
	}
	for i, l := range tgt.lines {
		if l != uint64(i) {
			t.Fatalf("issue order %v", tgt.lines)
		}
		want := sim.Time((int64(i) + 1) * 10 * int64(sim.Nanosecond))
		if tgt.times[i] != want {
			t.Fatalf("issue %d at %v, want %v", i, tgt.times[i], want)
		}
	}
	if p.Issued != 5 || p.HintsQueued != 5 || p.HintsDropped != 0 {
		t.Fatalf("stats issued=%d queued=%d dropped=%d", p.Issued, p.HintsQueued, p.HintsDropped)
	}
}

func TestPrefetcherDropsWhenFull(t *testing.T) {
	s := sim.New()
	tgt := &fakeTarget{}
	p := NewPrefetcher(PrefetcherConfig{QueueDepth: 4, IssueInterval: 100 * sim.Nanosecond}, 0, tgt)
	s.At(0, func(sm *sim.Simulator) {
		for i := uint64(0); i < 10; i++ {
			p.Hint(sm, i)
		}
	})
	s.Run()
	if p.HintsDropped != 6 {
		t.Fatalf("dropped %d, want 6", p.HintsDropped)
	}
	if len(tgt.lines) != 4 {
		t.Fatalf("issued %d, want 4", len(tgt.lines))
	}
}

func TestPrefetcherRestartsAfterDrain(t *testing.T) {
	s := sim.New()
	tgt := &fakeTarget{}
	p := NewPrefetcher(DefaultPrefetcherConfig(), 1, tgt)
	s.At(0, func(sm *sim.Simulator) { p.Hint(sm, 1) })
	s.At(sim.Time(1*sim.Microsecond), func(sm *sim.Simulator) { p.Hint(sm, 2) })
	s.Run()
	if len(tgt.lines) != 2 {
		t.Fatalf("issued %d, want 2", len(tgt.lines))
	}
	if p.QueueLen() != 0 {
		t.Fatal("queue must drain")
	}
}

// loadableTarget is a fake that reports a controllable MLC load.
type loadableTarget struct {
	fakeTarget
	loadFrac float64
}

func (l *loadableTarget) MLCLoadFraction(int) float64 { return l.loadFrac }

func TestAdaptivePrefetcherThrottlesOnHighLoad(t *testing.T) {
	s := sim.New()
	tgt := &loadableTarget{loadFrac: 1.0}
	cfg := PrefetcherConfig{QueueDepth: 8, IssueInterval: 10 * sim.Nanosecond, Adaptive: true}
	p := NewPrefetcher(cfg, 0, tgt)
	s.At(0, func(sm *sim.Simulator) {
		p.Hint(sm, 1)
		p.Hint(sm, 2)
	})
	// Lower the load after a while: the queue must then drain.
	s.At(sim.Time(sim.Microsecond), func(*sim.Simulator) { tgt.loadFrac = 0.1 })
	s.RunUntil(sim.Time(10 * sim.Microsecond))
	if p.Throttled == 0 {
		t.Fatal("full MLC must throttle the adaptive prefetcher")
	}
	if len(tgt.lines) != 2 {
		t.Fatalf("queue must drain after load drops: issued %d", len(tgt.lines))
	}
	// Every issue happened after the load dropped.
	for _, at := range tgt.times {
		if at < sim.Time(sim.Microsecond) {
			t.Fatalf("issued at %v while throttled", at)
		}
	}
}

func TestNonAdaptivePrefetcherIgnoresLoad(t *testing.T) {
	s := sim.New()
	tgt := &loadableTarget{loadFrac: 1.0}
	p := NewPrefetcher(PrefetcherConfig{QueueDepth: 8, IssueInterval: 10 * sim.Nanosecond}, 0, tgt)
	s.At(0, func(sm *sim.Simulator) { p.Hint(sm, 1) })
	s.RunUntil(sim.Time(sim.Microsecond))
	if p.Throttled != 0 || len(tgt.lines) != 1 {
		t.Fatal("non-adaptive prefetcher must never throttle")
	}
}

func TestSteeringStrings(t *testing.T) {
	if SteerLLC.String() != "LLC" || SteerMLC.String() != "MLC" || SteerDRAM.String() != "DRAM" {
		t.Fatal("steering names")
	}
	if Steering(42).String() == "" {
		t.Fatal("unknown steering must still print")
	}
}

func TestControllerPolicyAccessorAndValidation(t *testing.T) {
	wb := []uint64{0, 0}
	c := newCtl(PolicyStatic, &wb)
	if c.Policy() != PolicyStatic {
		t.Fatal("policy accessor")
	}
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s must panic", name)
			}
		}()
		fn()
	}
	mustPanic("zero cores", func() {
		NewController(ControllerConfig{NumCores: 0, AvgWindow: 1}, PolicyIDIO, nil)
	})
	mustPanic("zero window", func() {
		NewController(ControllerConfig{NumCores: 1, AvgWindow: 0}, PolicyIDIO, nil)
	})
	mustPanic("start without sampler", func() {
		ctl := NewController(ControllerConfig{NumCores: 1, AvgWindow: 1, SampleInterval: 1}, PolicyIDIO, nil)
		ctl.Start(sim.New())
	})
}

func TestWayTunerBoundsDirect(t *testing.T) {
	leaks := uint64(0)
	ways := 0
	cfg := DefaultWayTunerConfig()
	w := NewWayTuner(cfg, func() uint64 { return leaks }, func(n int) { ways = n })
	s := sim.New()
	w.Start(s)
	s.RunUntil(0)
	if w.Ways() != cfg.MinWays || ways != cfg.MinWays {
		t.Fatalf("tuner start: %d", ways)
	}
	// Pressure every interval until well past the cap.
	for i := 0; i < 10; i++ {
		leaks += cfg.GrowTHR * 2
		s.RunUntil(sim.Time(int64(i+1) * int64(cfg.SampleInterval)))
	}
	if w.Ways() != cfg.MaxWays || w.PeakWays != cfg.MaxWays {
		t.Fatalf("tuner must cap at %d: %d", cfg.MaxWays, w.Ways())
	}
}

func TestPrefetcherValidation(t *testing.T) {
	for _, cfg := range []PrefetcherConfig{
		{QueueDepth: 0, IssueInterval: 1},
		{QueueDepth: 1, IssueInterval: 0},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("expected panic for %+v", cfg)
				}
			}()
			NewPrefetcher(cfg, 0, &fakeTarget{})
		}()
	}
}

func TestPolicyNames(t *testing.T) {
	names := map[string]Policy{
		"DDIO":       PolicyDDIO,
		"Invalidate": PolicyInvalidate,
		"Prefetch":   PolicyPrefetch,
		"Static":     PolicyStatic,
		"IDIO":       PolicyIDIO,
	}
	for want, p := range names {
		if p.Name() != want {
			t.Errorf("policy name %q, want %q", p.Name(), want)
		}
	}
}
