// Package core implements the paper's contribution: the IDIO
// classifier (NIC-resident, Sec. V-A), the IDIO controller with its
// data plane and control plane (Alg. 1) and per-core FSM (Fig. 8,
// Sec. V-B), and the queued MLC prefetcher (Sec. V-C).
//
// The package is deliberately free of NIC/CPU mechanics: the NIC model
// consults the classifier to tag DMA transactions, and the root complex
// consults the controller to steer each transaction. This mirrors the
// hardware split in Fig. 6.
package core

import (
	"fmt"

	"idio/internal/obs"
	"idio/internal/pcie"
	"idio/internal/sim"
)

// Policy selects which IDIO mechanisms are active, matching the
// evaluation's configurations (Sec. VII):
//
//	DDIO      — everything off (baseline)
//	Invalidate— self-invalidating buffers only
//	Prefetch  — network-driven MLC prefetching only
//	Static    — invalidate + prefetch with status hardwired to MLC
//	IDIO      — invalidate + prefetch with the dynamic FSM
type Policy struct {
	// SelfInvalidate instructs the software stack to invalidate DMA
	// buffers (without writeback) after consumption (Sec. IV-A).
	SelfInvalidate bool
	// MLCPrefetch enables the network-driven prefetching data plane
	// (Sec. IV-B): headers are always hinted, payloads when the
	// per-core status register says MLC.
	MLCPrefetch bool
	// StaticStatus hardwires every core's status register to MLC,
	// bypassing the FSM — the paper's "Static" configuration.
	StaticStatus bool
	// DirectDRAM enables selective direct DRAM access for the payload
	// of appClass-1 packets (Sec. IV-C).
	DirectDRAM bool
}

// Predefined policies for the paper's named configurations.
var (
	PolicyDDIO       = Policy{}
	PolicyInvalidate = Policy{SelfInvalidate: true}
	PolicyPrefetch   = Policy{MLCPrefetch: true}
	PolicyStatic     = Policy{SelfInvalidate: true, MLCPrefetch: true, StaticStatus: true, DirectDRAM: true}
	PolicyIDIO       = Policy{SelfInvalidate: true, MLCPrefetch: true, DirectDRAM: true}
)

// Name returns the evaluation-section name for a policy.
func (p Policy) Name() string {
	switch p {
	case PolicyDDIO:
		return "DDIO"
	case PolicyInvalidate:
		return "Invalidate"
	case PolicyPrefetch:
		return "Prefetch"
	case PolicyStatic:
		return "Static"
	case PolicyIDIO:
		return "IDIO"
	}
	return fmt.Sprintf("custom%+v", p)
}

// --- Classifier (NIC side, Sec. V-A) ---

// ClassifierConfig tunes the NIC-resident classifier.
type ClassifierConfig struct {
	NumCores int
	// RxBurstTHR is the per-core byte threshold within one window that
	// flags a burst. The paper sets it to the bytes of 10 Gbps over
	// 1 µs = 1250 B... (10e9/8 bits/s * 1e-6 s) = 1250 bytes.
	RxBurstTHR uint32
	// Window is the burst-counter reset period (1 µs in the paper).
	Window sim.Duration
	// ClassOneDSCPs lists the DSCP values that mark application
	// class 1 (long use distance).
	ClassOneDSCPs []uint8
}

// DefaultClassifierConfig follows Sec. VI: rxBurstTHR equivalent to
// 10 Gbps over a 1 µs window.
func DefaultClassifierConfig(cores int) ClassifierConfig {
	return ClassifierConfig{
		NumCores:   cores,
		RxBurstTHR: 1250,
		Window:     sim.Microsecond,
	}
}

// Classifier tags each DMA transaction with [appClass, isHeader,
// isBurst, destCore] metadata. Destination-core resolution itself is
// the NIC's job (Flow Director); the classifier consumes its output.
type Classifier struct {
	cfg       ClassifierConfig
	classOne  map[uint8]bool
	byteCount []uint32 // per-core burst counters (32-bit per Sec. V-A)
	winStart  []sim.Time
	exceeded  []bool // current window crossed the threshold
	prevHot   []bool // previous (adjacent) window crossed the threshold
	// BurstsSeen counts burst-arrival notifications (stats).
	BurstsSeen uint64
}

// NewClassifier builds a classifier.
func NewClassifier(cfg ClassifierConfig) *Classifier {
	if cfg.NumCores <= 0 || cfg.NumCores > pcie.MaxCores {
		panic(fmt.Sprintf("core: classifier core count %d out of range", cfg.NumCores))
	}
	if cfg.Window <= 0 {
		panic("core: classifier window must be positive")
	}
	c := &Classifier{
		cfg:       cfg,
		classOne:  make(map[uint8]bool),
		byteCount: make([]uint32, cfg.NumCores),
		winStart:  make([]sim.Time, cfg.NumCores),
		exceeded:  make([]bool, cfg.NumCores),
		prevHot:   make([]bool, cfg.NumCores),
	}
	for _, d := range cfg.ClassOneDSCPs {
		c.classOne[d] = true
	}
	return c
}

// AppClass maps a packet's DSCP to its application class.
func (c *Classifier) AppClass(dscp uint8) uint8 {
	if c.classOne[dscp] {
		return 1
	}
	return 0
}

// AccountPacket updates the destination core's burst counter with the
// packet's bytes at time now and reports whether this packet is a
// burst-ARRIVAL notification. Counters reset every Window, implemented
// lazily from timestamps (equivalent to the hardware's periodic reset
// because only arrivals can change the outcome).
//
// Notification is edge-triggered: it fires on the packet that crosses
// rxBurstTHR in a window whose immediately preceding window was below
// threshold. Sec. V-A says the classifier "notifies IDIO controller of
// a burst arrival"; a level-triggered signal would re-arm the FSM
// every window of a sustained burst and defeat the Fig. 8 regulation
// the evaluation demonstrates (Static vs. IDIO at 100 Gbps), so the
// rising edge is the faithful reading.
func (c *Classifier) AccountPacket(now sim.Time, destCore int, bytes int) bool {
	if now.Sub(c.winStart[destCore]) >= c.cfg.Window {
		// Align the new window to a Window boundary.
		w := int64(c.cfg.Window)
		newStart := sim.Time(int64(now) / w * w)
		// The previous window counts as "hot" only if it is adjacent
		// and crossed the threshold; after an idle gap the history is
		// cold.
		adjacent := newStart == c.winStart[destCore].Add(c.cfg.Window)
		c.prevHot[destCore] = adjacent && c.exceeded[destCore]
		c.winStart[destCore] = newStart
		c.byteCount[destCore] = 0
		c.exceeded[destCore] = false
	}
	c.byteCount[destCore] += uint32(bytes)
	if c.byteCount[destCore] > c.cfg.RxBurstTHR && !c.exceeded[destCore] {
		c.exceeded[destCore] = true
		if !c.prevHot[destCore] {
			c.BurstsSeen++
			return true
		}
	}
	return false
}

// Tag produces the per-transaction metadata for one cacheline of a
// packet. isFirstLine marks the DMA transfer containing the packet's
// first byte (which holds all protocol headers, Sec. V-A).
func (c *Classifier) Tag(appClass uint8, destCore int, isFirstLine, inBurst bool) pcie.Meta {
	return pcie.Meta{
		AppClass: appClass,
		IsHeader: isFirstLine,
		IsBurst:  inBurst,
		DestCore: destCore,
	}
}

// --- Controller (CPU side, Sec. V-B) ---

// Steering is the controller's per-transaction placement decision.
type Steering int

const (
	// SteerLLC write-allocates/updates in the LLC (default DDIO path).
	SteerLLC Steering = iota
	// SteerMLC writes to the LLC and enqueues a prefetch hint toward
	// the destination core's MLC.
	SteerMLC
	// SteerDRAM bypasses the cache hierarchy entirely.
	SteerDRAM
)

func (s Steering) String() string {
	switch s {
	case SteerLLC:
		return "LLC"
	case SteerMLC:
		return "MLC"
	case SteerDRAM:
		return "DRAM"
	default:
		return fmt.Sprintf("steer(%d)", int(s))
	}
}

// FSM states (Fig. 8): a 2-bit saturating counter. State 3 means the
// status register reads LLC; any other state reads MLC. A detected
// burst forces state 0.
const (
	fsmMin = 0
	fsmMax = 3
)

// ControllerConfig tunes the IDIO controller.
type ControllerConfig struct {
	NumCores int
	// MLCTHR is the writeback-pressure threshold in transactions per
	// sample interval. The paper's 50 MTPS over 1 µs = 50.
	MLCTHR uint64
	// SampleInterval is the control-plane period (1 µs).
	SampleInterval sim.Duration
	// AvgWindow is how many samples form the long-run average (8192).
	AvgWindow uint64
}

// DefaultControllerConfig follows Sec. V-B / Sec. VI.
func DefaultControllerConfig(cores int) ControllerConfig {
	return ControllerConfig{
		NumCores:       cores,
		MLCTHR:         50,
		SampleInterval: sim.Microsecond,
		AvgWindow:      8192,
	}
}

// WBSampler reads a core's cumulative MLC writeback count; the
// controller samples it each interval (the hierarchy provides this).
type WBSampler func(core int) uint64

// Controller implements Alg. 1. The data plane runs per DMA
// transaction (Steer); the control plane runs on the simulator's
// periodic task (Start).
type Controller struct {
	cfg    ControllerConfig
	policy Policy

	fsmState []int    // per-core 2-bit saturating counter
	lastWB   []uint64 // previous cumulative writeback sample
	mlcWB    []uint64 // writebacks during the last interval
	mlcWBAcc []uint64 // accumulator over AvgWindow samples
	mlcWBAvg []uint64 // average per interval over the last window
	samples  uint64

	sampler WBSampler

	// Stats.
	SteerLLCCount  uint64
	SteerMLCCount  uint64
	SteerDRAMCount uint64
	BurstResets    uint64
	// MisSteers counts transactions whose metadata decoded to an
	// out-of-range destination core (corrupted TLP bits); they fall
	// back to the default DDIO placement.
	MisSteers uint64

	// qosArmed enables per-service-class steering overrides; the
	// arrays index by the TLP's 2-bit QoS field. Disarmed (the
	// default), class bits are ignored and Steer behaves exactly as
	// before.
	qosArmed      bool
	qosDirectDRAM [4]bool
	// QoSDRAMCount counts payload lines sent direct-to-DRAM by class
	// policy (a subset of SteerDRAMCount).
	QoSDRAMCount uint64
}

// NewController builds a controller for the given policy.
func NewController(cfg ControllerConfig, policy Policy, sampler WBSampler) *Controller {
	if cfg.NumCores <= 0 {
		panic("core: controller needs cores")
	}
	if cfg.AvgWindow == 0 {
		panic("core: AvgWindow must be positive")
	}
	c := &Controller{
		cfg:      cfg,
		policy:   policy,
		fsmState: make([]int, cfg.NumCores),
		lastWB:   make([]uint64, cfg.NumCores),
		mlcWB:    make([]uint64, cfg.NumCores),
		mlcWBAcc: make([]uint64, cfg.NumCores),
		mlcWBAvg: make([]uint64, cfg.NumCores),
		sampler:  sampler,
	}
	// Default FSM state is 0b11: prefetching disabled (Fig. 8).
	for i := range c.fsmState {
		c.fsmState[i] = fsmMax
	}
	return c
}

// Policy returns the active policy.
func (c *Controller) Policy() Policy { return c.policy }

// StatusMLC reports whether the core's status register currently reads
// MLC (prefetching enabled).
func (c *Controller) StatusMLC(core int) bool {
	if c.policy.StaticStatus {
		return true
	}
	return c.fsmState[core] != fsmMax
}

// FSMState exposes the raw 2-bit counter (testing/telemetry).
func (c *Controller) FSMState(core int) int { return c.fsmState[core] }

// SetQoSPolicy arms per-class steering: classes flagged directDRAM
// have their payload lines bypass the cache hierarchy regardless of
// burst state. Headers keep the normal path so descriptors and
// protocol headers stay pollable from cache.
func (c *Controller) SetQoSPolicy(directDRAM [4]bool) {
	c.qosArmed = true
	c.qosDirectDRAM = directDRAM
}

// MLCWBAvg exposes the rolling average (testing/telemetry).
func (c *Controller) MLCWBAvg(core int) uint64 { return c.mlcWBAvg[core] }

// Steer implements the data plane of Alg. 1 for one DMA write
// transaction and returns the placement decision.
//
// Metadata arriving over the wire can be corrupted (the reserved TLP
// bits carry no ECC), so an out-of-range destCore is treated as a
// mis-steer: the transaction falls back to the safe DDIO placement
// and is counted rather than indexing out of the per-core state.
func (c *Controller) Steer(m pcie.Meta) Steering {
	if m.AppClass == 0 && (m.DestCore < 0 || m.DestCore >= c.cfg.NumCores) {
		c.MisSteers++
		c.SteerLLCCount++
		return SteerLLC
	}
	// Line 3: a burst notification resets the FSM to state 0.
	if m.IsBurst && m.AppClass == 0 && c.policy.MLCPrefetch && !c.policy.StaticStatus {
		if c.fsmState[m.DestCore] != fsmMin {
			c.BurstResets++
		}
		c.fsmState[m.DestCore] = fsmMin
	}
	// Scavenger-class payload bypasses the caches when QoS is armed;
	// headers keep the normal path (lines 4-5 below) so the polling
	// driver still finds descriptors and headers on chip.
	if c.qosArmed && !m.IsHeader && c.qosDirectDRAM[m.QoS&3] {
		c.QoSDRAMCount++
		c.SteerDRAMCount++
		return SteerDRAM
	}
	switch {
	// Lines 4-5: headers always go toward the MLC.
	case m.IsHeader && c.policy.MLCPrefetch:
		c.SteerMLCCount++
		return SteerMLC
	// Lines 6-7: class-1 payload goes straight to DRAM.
	case m.AppClass == 1 && c.policy.DirectDRAM:
		c.SteerDRAMCount++
		return SteerDRAM
	// Lines 8-9: payload follows the status register.
	case m.AppClass == 0 && c.policy.MLCPrefetch && c.StatusMLC(m.DestCore):
		c.SteerMLCCount++
		return SteerMLC
	// Lines 10-11: default DDIO placement.
	default:
		c.SteerLLCCount++
		return SteerLLC
	}
}

// Start registers the control plane with the simulator: the 1 µs
// pressure sampling loop and the 8192 µs averaging loop of Alg. 1
// (lines 13-24).
func (c *Controller) Start(s *sim.Simulator) {
	if c.sampler == nil {
		panic("core: controller has no writeback sampler")
	}
	s.Every(sim.Time(c.cfg.SampleInterval), c.cfg.SampleInterval, func(*sim.Simulator) {
		c.sampleOnce()
	})
}

// sampleOnce performs one control-plane interval: computes per-core
// MLC pressure, steps the FSM, and maintains the rolling average.
func (c *Controller) sampleOnce() {
	for i := 0; i < c.cfg.NumCores; i++ {
		cum := c.sampler(i)
		c.mlcWB[i] = cum - c.lastWB[i]
		c.lastWB[i] = cum

		press := c.mlcWB[i] > c.mlcWBAvg[i]+c.cfg.MLCTHR
		if press {
			if c.fsmState[i] < fsmMax {
				c.fsmState[i]++
			}
		} else {
			if c.fsmState[i] > fsmMin {
				c.fsmState[i]--
			}
		}
		c.mlcWBAcc[i] += c.mlcWB[i]
	}
	c.samples++
	if c.samples%c.cfg.AvgWindow == 0 {
		for i := 0; i < c.cfg.NumCores; i++ {
			c.mlcWBAvg[i] = c.mlcWBAcc[i] / c.cfg.AvgWindow
			c.mlcWBAcc[i] = 0
		}
	}
}

// --- IAT-style dynamic DDIO-way tuner (prior work baseline) ---

// WayTunerConfig tunes the dynamic DDIO baseline modeled on IAT
// ("Don't forget the I/O when allocating your LLC", ISCA'21), which
// the paper's Shortcoming S1 argues still cannot exploit the MLC: it
// re-sizes the DDIO way allocation from runtime leak monitoring but
// all inbound data stays in the LLC.
type WayTunerConfig struct {
	MinWays, MaxWays int
	// SampleInterval is how often the leak rate is evaluated.
	SampleInterval sim.Duration
	// GrowTHR is the per-interval DMA-leak count above which one more
	// way is granted; ShrinkTHR the count below which one is
	// reclaimed for the applications.
	GrowTHR   uint64
	ShrinkTHR uint64
}

// DefaultWayTunerConfig bounds the allocation between the Skylake
// default (2) and a third of a 12-way LLC. The 20 µs sampling interval
// is fast enough to react within a single 100 Gbps burst's DMA phase
// (~124 µs for a 1024-entry ring), which is where leaks concentrate.
func DefaultWayTunerConfig() WayTunerConfig {
	return WayTunerConfig{
		MinWays:        2,
		MaxWays:        4,
		SampleInterval: 20 * sim.Microsecond,
		GrowTHR:        64,
		ShrinkTHR:      8,
	}
}

// WayTuner periodically adjusts the DDIO way count from the observed
// DMA-leak rate.
type WayTuner struct {
	cfg    WayTunerConfig
	sample func() uint64 // cumulative DMA-leak counter
	set    func(n int)
	cur    int
	last   uint64

	Grows   uint64
	Shrinks uint64
	// PeakWays is the largest allocation reached during the run.
	PeakWays int
}

// NewWayTuner builds a tuner starting at MinWays.
func NewWayTuner(cfg WayTunerConfig, sample func() uint64, set func(n int)) *WayTuner {
	if cfg.MinWays <= 0 || cfg.MaxWays < cfg.MinWays {
		panic("core: bad way tuner bounds")
	}
	if cfg.SampleInterval <= 0 {
		panic("core: way tuner needs a sample interval")
	}
	return &WayTuner{cfg: cfg, sample: sample, set: set, cur: cfg.MinWays, PeakWays: cfg.MinWays}
}

// Ways returns the current allocation.
func (w *WayTuner) Ways() int { return w.cur }

// Start registers the periodic adjustment loop.
func (w *WayTuner) Start(s *sim.Simulator) {
	w.set(w.cur)
	s.Every(sim.Time(w.cfg.SampleInterval), w.cfg.SampleInterval, func(*sim.Simulator) {
		w.step()
	})
}

func (w *WayTuner) step() {
	cum := w.sample()
	leaks := cum - w.last
	w.last = cum
	switch {
	case leaks > w.cfg.GrowTHR && w.cur < w.cfg.MaxWays:
		w.cur++
		w.Grows++
		if w.cur > w.PeakWays {
			w.PeakWays = w.cur
		}
		w.set(w.cur)
	case leaks < w.cfg.ShrinkTHR && w.cur > w.cfg.MinWays:
		w.cur--
		w.Shrinks++
		w.set(w.cur)
	}
}

// --- MLC prefetcher (Sec. V-C) ---

// PrefetchTarget is the hierarchy operation the prefetcher drives.
type PrefetchTarget interface {
	PrefetchToMLC(now sim.Time, coreID int, line uint64) bool
}

// MLCLoadReader is optionally implemented by the target to let an
// adaptive prefetcher observe MLC pressure.
type MLCLoadReader interface {
	MLCLoadFraction(coreID int) float64
}

// PrefetcherConfig tunes one core's queued prefetcher.
type PrefetcherConfig struct {
	// QueueDepth is the hint queue size (32 in Sec. V-C).
	QueueDepth int
	// IssueInterval is the time between successive prefetch issues,
	// modeling the MLC controller's request pacing.
	IssueInterval sim.Duration

	// Adaptive enables the consumption-following refinement the paper
	// sketches as future work (Sec. VII): "a more sophisticated
	// prefetcher that follows the CPU pointer in the ring buffer to
	// regulate the MLC prefetching rate". Instead of tracking the ring
	// pointer directly, the prefetcher pauses while the destination
	// MLC's occupancy is above HighWater, resuming after Backoff —
	// which regulates the prefetch rate to the CPU's consumption rate
	// (self-invalidation is what frees MLC space).
	Adaptive bool
	// HighWater is the MLC load fraction above which an adaptive
	// prefetcher pauses (default 0.6 — leaving headroom below the
	// ~0.8 occupancy where bursty prefetch floods start forcing
	// capacity evictions, so the prefetcher tracks the CPU's
	// consumption instead of racing ahead of it).
	HighWater float64
	// Backoff is how long a paused adaptive prefetcher waits before
	// re-checking (default 8x IssueInterval).
	Backoff sim.Duration
}

// DefaultPrefetcherConfig matches Sec. V-C (32-entry queue) with an
// issue rate of one prefetch per 8 ns (roughly one LLC access).
func DefaultPrefetcherConfig() PrefetcherConfig {
	return PrefetcherConfig{QueueDepth: 32, IssueInterval: 8 * sim.Nanosecond}
}

// Prefetcher is one core's queued MLC prefetcher: hints from the IDIO
// controller enter a fixed-depth queue and issue to the hierarchy at a
// bounded rate. Hints arriving at a full queue are dropped.
type Prefetcher struct {
	cfg    PrefetcherConfig
	coreID int
	target PrefetchTarget
	load   MLCLoadReader // non-nil only for adaptive prefetchers

	// queue is a fixed-capacity ring (head/count) so the per-line
	// enqueue/dequeue cycle never reallocates; issueFn is the issue
	// method bound once, so rescheduling it never closes over p again.
	queue   []uint64
	head    int
	count   int
	busy    bool
	issueFn sim.Event

	HintsQueued  uint64
	HintsDropped uint64
	Issued       uint64
	Throttled    uint64 // adaptive pauses taken

	// classEvery decimates hints per QoS class (HintClass): 0 or 1
	// hints every line, N>1 every Nth line, -1 never. classSeen is
	// the per-class line counter driving the stride; ClassSuppressed
	// counts hints dropped by class policy (distinct from queue-full
	// HintsDropped).
	classEvery      [4]int
	classSeen       [4]uint64
	ClassSuppressed uint64
}

// NewPrefetcher builds a prefetcher for coreID.
func NewPrefetcher(cfg PrefetcherConfig, coreID int, target PrefetchTarget) *Prefetcher {
	if cfg.QueueDepth <= 0 {
		panic("core: prefetcher queue depth must be positive")
	}
	if cfg.IssueInterval <= 0 {
		panic("core: prefetcher issue interval must be positive")
	}
	if cfg.HighWater <= 0 || cfg.HighWater > 1 {
		cfg.HighWater = 0.6
	}
	if cfg.Backoff <= 0 {
		cfg.Backoff = 8 * cfg.IssueInterval
	}
	p := &Prefetcher{cfg: cfg, coreID: coreID, target: target, queue: make([]uint64, cfg.QueueDepth)}
	p.issueFn = p.issue
	if cfg.Adaptive {
		p.load, _ = target.(MLCLoadReader)
	}
	return p
}

// QueueLen returns the current hint-queue occupancy.
func (p *Prefetcher) QueueLen() int { return p.count }

// Hint enqueues a prefetch for a cacheline; a full queue drops the
// hint (prefetching is best-effort).
func (p *Prefetcher) Hint(s *sim.Simulator, line uint64) {
	if p.count >= p.cfg.QueueDepth {
		p.HintsDropped++
		return
	}
	p.queue[(p.head+p.count)%p.cfg.QueueDepth] = line
	p.count++
	p.HintsQueued++
	if !p.busy {
		p.busy = true
		s.After(p.cfg.IssueInterval, p.issueFn)
	}
}

// SetClassEvery installs per-QoS-class hint decimation strides (see
// classEvery). The zero array keeps every class at full aggressiveness.
func (p *Prefetcher) SetClassEvery(every [4]int) { p.classEvery = every }

// HintClass is Hint under a class's aggressiveness policy: scavenger
// classes (stride -1) never hint, decimated classes (stride N>1) hint
// every Nth line. Class 0 with no policy set behaves exactly as Hint.
func (p *Prefetcher) HintClass(s *sim.Simulator, line uint64, class uint8) {
	every := p.classEvery[class&3]
	if every < 0 {
		p.ClassSuppressed++
		return
	}
	if every > 1 {
		p.classSeen[class&3]++
		if p.classSeen[class&3]%uint64(every) != 0 {
			p.ClassSuppressed++
			return
		}
	}
	p.Hint(s, line)
}

func (p *Prefetcher) issue(s *sim.Simulator) {
	for {
		if p.count == 0 {
			p.busy = false
			return
		}
		// Adaptive regulation: while the MLC is nearly full, hold the
		// queue and retry later — the CPU's consumption (plus
		// self-invalidation) is what drains it.
		if p.load != nil && p.load.MLCLoadFraction(p.coreID) > p.cfg.HighWater {
			p.Throttled++
			s.After(p.cfg.Backoff, p.issueFn)
			return
		}
		line := p.queue[p.head]
		p.head = (p.head + 1) % p.cfg.QueueDepth
		p.count--
		p.target.PrefetchToMLC(s.Now(), p.coreID, line)
		p.Issued++
		if p.count == 0 {
			p.busy = false
			return
		}
		// Drain the queue inline while nothing else is due before the
		// next paced issue instant (sim.FuseAt matches the ordering of
		// the fresh event s.After would schedule).
		if !s.FuseAt(s.Now().Add(p.cfg.IssueInterval)) {
			s.After(p.cfg.IssueInterval, p.issueFn)
			return
		}
	}
}

// RegisterMetrics registers the controller's steering counters under
// prefix (e.g. "ctrl."). The missteers key mirrors Results.WriteStats;
// the steering breakdown extends it with the paper's per-target DMA
// placement counts.
func (c *Controller) RegisterMetrics(reg *obs.Registry, prefix string) {
	reg.CounterFunc(prefix+"missteers", func() uint64 { return c.MisSteers })
	reg.CounterFunc(prefix+"steer_llc", func() uint64 { return c.SteerLLCCount })
	reg.CounterFunc(prefix+"steer_mlc", func() uint64 { return c.SteerMLCCount })
	reg.CounterFunc(prefix+"steer_dram", func() uint64 { return c.SteerDRAMCount })
	reg.CounterFunc(prefix+"burst_resets", func() uint64 { return c.BurstResets })
}

// RegisterMetrics registers the classifier's burst-detection counter
// under prefix (e.g. "classifier.").
func (c *Classifier) RegisterMetrics(reg *obs.Registry, prefix string) {
	reg.CounterFunc(prefix+"bursts_seen", func() uint64 { return c.BurstsSeen })
}

// RegisterMetrics registers one prefetcher's hint counters under
// prefix (e.g. "prefetch.core0.").
func (p *Prefetcher) RegisterMetrics(reg *obs.Registry, prefix string) {
	reg.CounterFunc(prefix+"hints_queued", func() uint64 { return p.HintsQueued })
	reg.CounterFunc(prefix+"hints_dropped", func() uint64 { return p.HintsDropped })
	reg.CounterFunc(prefix+"issued", func() uint64 { return p.Issued })
	reg.CounterFunc(prefix+"throttled", func() uint64 { return p.Throttled })
}
