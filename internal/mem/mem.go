// Package mem defines physical-address and cacheline arithmetic shared
// by every level of the simulated memory hierarchy.
package mem

import "fmt"

// Addr is a physical byte address.
type Addr uint64

// LineAddr identifies one 64-byte cacheline (Addr >> 6).
type LineAddr uint64

// Cacheline geometry. 64-byte lines match every system discussed in the
// paper (Skylake-SP, the gem5 config, and PCIe full-cacheline writes).
const (
	LineBytes   = 64
	LineShift   = 6
	LineMask    = LineBytes - 1
	DescBytes   = 128  // NIC descriptor size (Sec. III, Observation 1)
	MbufBytes   = 2048 // DMA buffer slot: MTU rounded to 2 KB (Sec. IV-A)
	EthernetMTU = 1514
)

// Line returns the cacheline containing a.
func (a Addr) Line() LineAddr { return LineAddr(a >> LineShift) }

// Offset returns the byte offset of a within its cacheline.
func (a Addr) Offset() uint64 { return uint64(a) & LineMask }

// Aligned reports whether a is cacheline-aligned.
func (a Addr) Aligned() bool { return a.Offset() == 0 }

// Addr returns the first byte address of the line.
func (l LineAddr) Addr() Addr { return Addr(l << LineShift) }

func (a Addr) String() string     { return fmt.Sprintf("0x%x", uint64(a)) }
func (l LineAddr) String() string { return fmt.Sprintf("line:0x%x", uint64(l)) }

// LinesCovering returns the number of cachelines needed to hold n bytes
// starting at a (accounting for a possibly unaligned start).
func LinesCovering(a Addr, n int) int {
	if n <= 0 {
		return 0
	}
	first := a.Line()
	last := (a + Addr(n) - 1).Line()
	return int(last-first) + 1
}

// Region is a contiguous physical range [Base, Base+Size).
type Region struct {
	Base Addr
	Size uint64
}

// End returns the first address past the region.
func (r Region) End() Addr { return r.Base + Addr(r.Size) }

// Contains reports whether a falls inside the region.
func (r Region) Contains(a Addr) bool { return a >= r.Base && a < r.End() }

// ContainsLine reports whether the region fully contains line l.
func (r Region) ContainsLine(l LineAddr) bool {
	return r.Contains(l.Addr()) && r.Contains(l.Addr()+LineBytes-1)
}

// Lines iterates over the region's cachelines, calling fn for each.
func (r Region) Lines(fn func(LineAddr)) {
	if r.Size == 0 {
		return
	}
	for l := r.Base.Line(); l <= (r.End() - 1).Line(); l++ {
		fn(l)
	}
}

// NumLines returns the number of cachelines touched by the region.
func (r Region) NumLines() int { return LinesCovering(r.Base, int(r.Size)) }

// Layout hands out non-overlapping, naturally aligned physical regions.
// It is how the system places descriptor rings, mbuf pools and
// application heaps without collisions.
type Layout struct {
	next Addr
}

// NewLayout starts allocation at base (rounded up to a line boundary).
func NewLayout(base Addr) *Layout {
	return &Layout{next: alignUp(base, LineBytes)}
}

// Alloc reserves size bytes aligned to align (power of two, >= 64) and
// returns the region.
func (ly *Layout) Alloc(size uint64, align uint64) Region {
	if align < LineBytes {
		align = LineBytes
	}
	if align&(align-1) != 0 {
		panic(fmt.Sprintf("mem: alignment %d not a power of two", align))
	}
	base := alignUp(ly.next, Addr(align))
	ly.next = base + Addr(size)
	return Region{Base: base, Size: size}
}

func alignUp(a Addr, align Addr) Addr {
	return (a + align - 1) &^ (align - 1)
}
