package mem

import (
	"testing"
	"testing/quick"
)

func TestLineArithmetic(t *testing.T) {
	a := Addr(0x1234)
	if a.Line() != LineAddr(0x48) {
		t.Fatalf("line = %v", a.Line())
	}
	if a.Offset() != 0x34 {
		t.Fatalf("offset = %d", a.Offset())
	}
	if a.Aligned() {
		t.Fatal("0x1234 is not aligned")
	}
	if !Addr(0x1240).Aligned() {
		t.Fatal("0x1240 is aligned")
	}
	if LineAddr(0x48).Addr() != 0x1200 {
		t.Fatalf("line addr = %v", LineAddr(0x48).Addr())
	}
}

func TestLinesCovering(t *testing.T) {
	cases := []struct {
		a    Addr
		n    int
		want int
	}{
		{0, 0, 0},
		{0, 1, 1},
		{0, 64, 1},
		{0, 65, 2},
		{63, 2, 2},
		{0, 1514, 24},  // MTU packet, aligned
		{32, 1514, 25}, // MTU packet, misaligned
		{0, 2048, 32},  // full mbuf
	}
	for _, c := range cases {
		if got := LinesCovering(c.a, c.n); got != c.want {
			t.Errorf("LinesCovering(%v,%d) = %d, want %d", c.a, c.n, got, c.want)
		}
	}
}

func TestRegionContains(t *testing.T) {
	r := Region{Base: 0x1000, Size: 0x100}
	if !r.Contains(0x1000) || !r.Contains(0x10ff) {
		t.Fatal("region must contain endpoints")
	}
	if r.Contains(0xfff) || r.Contains(0x1100) {
		t.Fatal("region must exclude outside")
	}
	if r.End() != 0x1100 {
		t.Fatalf("end = %v", r.End())
	}
}

func TestRegionLines(t *testing.T) {
	r := Region{Base: 0x1000, Size: 130}
	var lines []LineAddr
	r.Lines(func(l LineAddr) { lines = append(lines, l) })
	if len(lines) != 3 {
		t.Fatalf("lines = %d, want 3", len(lines))
	}
	if lines[0] != Addr(0x1000).Line() || lines[2] != Addr(0x1081).Line() {
		t.Fatalf("wrong lines: %v", lines)
	}
	if r.NumLines() != 3 {
		t.Fatalf("NumLines = %d", r.NumLines())
	}
	empty := Region{Base: 0x1000, Size: 0}
	empty.Lines(func(LineAddr) { t.Fatal("empty region should have no lines") })
}

func TestLayoutNonOverlapping(t *testing.T) {
	ly := NewLayout(0x1000)
	a := ly.Alloc(100, 64)
	b := ly.Alloc(2048, 2048)
	c := ly.Alloc(64, 64)
	regs := []Region{a, b, c}
	for i := range regs {
		if regs[i].Base%64 != 0 {
			t.Errorf("region %d base %v not line aligned", i, regs[i].Base)
		}
		for j := i + 1; j < len(regs); j++ {
			if regs[i].Base < regs[j].End() && regs[j].Base < regs[i].End() {
				t.Errorf("regions %d and %d overlap", i, j)
			}
		}
	}
	if b.Base%2048 != 0 {
		t.Errorf("2KB-aligned alloc at %v", b.Base)
	}
}

func TestLayoutBadAlignPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on non-power-of-two alignment")
		}
	}()
	NewLayout(0).Alloc(1, 96)
}

// Property: every address in an allocated region maps to a line the
// region reports via Lines.
func TestQuickRegionLineConsistency(t *testing.T) {
	f := func(base uint32, size uint16) bool {
		r := Region{Base: Addr(base), Size: uint64(size)}
		seen := map[LineAddr]bool{}
		r.Lines(func(l LineAddr) { seen[l] = true })
		if len(seen) != r.NumLines() {
			return false
		}
		for off := uint64(0); off < uint64(size); off += 17 {
			if !seen[(r.Base + Addr(off)).Line()] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
