package traffic

import (
	"testing"

	"idio/internal/pkt"
	"idio/internal/sim"
)

type captureRx struct {
	times []sim.Time
	pkts  []*pkt.Packet
}

func (c *captureRx) Receive(s *sim.Simulator, p *pkt.Packet) {
	c.times = append(c.times, s.Now())
	c.pkts = append(c.pkts, p)
}

func flow(frameLen int) Flow {
	return Flow{
		Src: pkt.IPv4{10, 0, 0, 1}, Dst: pkt.IPv4{10, 0, 0, 2},
		SrcPort: 1000, DstPort: 2000, FrameLen: frameLen,
	}
}

func TestInterArrival(t *testing.T) {
	// 1514B at 100Gbps: 1514*8/100e9 s = 121.12 ns.
	got := InterArrival(Gbps(100), 1514)
	if got != 121120*sim.Picosecond {
		t.Fatalf("gap = %v ps, want 121120", got)
	}
	// 1514B at 10Gbps = 1211.2ns.
	if InterArrival(Gbps(10), 1514) != 1211200*sim.Picosecond {
		t.Fatalf("gap10 = %v", InterArrival(Gbps(10), 1514))
	}
}

func TestSteadyCountAndSpacing(t *testing.T) {
	s := sim.New()
	rx := &captureRx{}
	g := Steady{Flow: flow(1514), RateBps: Gbps(10), Start: 0, Count: 10}
	n := g.Install(s, rx)
	s.Run()
	if n != 10 || len(rx.times) != 10 {
		t.Fatalf("generated %d, want 10", len(rx.times))
	}
	gap := InterArrival(Gbps(10), 1514)
	for i := 1; i < len(rx.times); i++ {
		if rx.times[i].Sub(rx.times[i-1]) != gap {
			t.Fatalf("spacing %v at %d", rx.times[i].Sub(rx.times[i-1]), i)
		}
	}
	// Sequence numbers are consecutive.
	for i, p := range rx.pkts {
		if p.Seq != uint64(i) {
			t.Fatalf("seq %d at %d", p.Seq, i)
		}
	}
}

func TestSteadyStopBound(t *testing.T) {
	s := sim.New()
	rx := &captureRx{}
	g := Steady{Flow: flow(1514), RateBps: Gbps(10), Start: 0, Stop: sim.Time(10 * sim.Microsecond)}
	g.Install(s, rx)
	s.Run()
	// 1.2112us gap over 10us -> 9 packets (0..8*gap) fit; allow the
	// formula's inclusive estimate.
	if len(rx.times) < 8 || len(rx.times) > 10 {
		t.Fatalf("generated %d packets in 10us at 10Gbps", len(rx.times))
	}
	last := rx.times[len(rx.times)-1]
	if last > sim.Time(11*sim.Microsecond) {
		t.Fatalf("packet after stop at %v", last)
	}
}

func TestSteadyValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("steady without Count or Stop must panic")
		}
	}()
	Steady{Flow: flow(100), RateBps: Gbps(1)}.Install(sim.New(), &captureRx{})
}

func TestBurstyMatchesPaperGeometry(t *testing.T) {
	// Sec. VI: ring 1024, 1514B packets -> burst lengths 1.155, 0.231
	// and 0.115 ms for 10, 25 and 100 Gbps nominal rates... the paper
	// computes these slightly loosely; verify we're within 5%.
	cases := []struct {
		gbps   float64
		wantMS float64
	}{
		{10, 1.2389}, // 1023 * 1211.2ns = 1.239ms (paper rounds to 1.155 via 1024*... approximations)
		{25, 0.4956},
		{100, 0.1239},
	}
	for _, c := range cases {
		g := Bursty{Flow: flow(1514), BurstRateBps: Gbps(c.gbps), Period: 10 * sim.Millisecond, PacketsPerBurst: 1024, NumBursts: 1}
		got := g.BurstLength().Seconds() * 1e3
		if got < c.wantMS*0.95 || got > c.wantMS*1.05 {
			t.Errorf("%vGbps burst length %.4fms, want ~%.4fms", c.gbps, got, c.wantMS)
		}
	}
}

func TestBurstyGeneratesAllBursts(t *testing.T) {
	s := sim.New()
	rx := &captureRx{}
	g := Bursty{Flow: flow(1514), BurstRateBps: Gbps(100), Period: sim.Millisecond, PacketsPerBurst: 64, NumBursts: 3}
	n := g.Install(s, rx)
	s.Run()
	if n != 192 || len(rx.times) != 192 {
		t.Fatalf("generated %d, want 192", len(rx.times))
	}
	// Packets 0..63 in burst 0 (within ~64*121ns), packet 64 at 1ms.
	if rx.times[64] != sim.Time(sim.Millisecond) {
		t.Fatalf("second burst starts at %v", rx.times[64])
	}
	if rx.times[128] != sim.Time(2*sim.Millisecond) {
		t.Fatalf("third burst starts at %v", rx.times[128])
	}
	// Intra-burst spacing at the burst rate.
	gap := InterArrival(Gbps(100), 1514)
	if rx.times[1].Sub(rx.times[0]) != gap {
		t.Fatalf("intra-burst gap %v", rx.times[1].Sub(rx.times[0]))
	}
}

func TestBurstyRejectsOverlappingBursts(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("burst longer than period must panic")
		}
	}()
	Bursty{
		Flow: flow(1514), BurstRateBps: Gbps(1),
		Period: sim.Millisecond, PacketsPerBurst: 1024, NumBursts: 2,
	}.Install(sim.New(), &captureRx{})
}

func TestPoissonRateAndDeterminism(t *testing.T) {
	run := func(seed int64) []sim.Time {
		s := sim.New()
		rx := &captureRx{}
		Poisson{Flow: flow(1514), RateBps: Gbps(10), Count: 2000, Seed: seed}.Install(s, rx)
		s.Run()
		return rx.times
	}
	a := run(1)
	b := run(1)
	c := run(2)
	if len(a) != 2000 {
		t.Fatalf("generated %d", len(a))
	}
	// Deterministic for a fixed seed.
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed must reproduce the schedule")
		}
	}
	// Different seeds differ.
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical schedules")
	}
	// Average rate ~10Gbps: total span ~ 1999 * 1.2112us = 2.42ms ±20%.
	span := a[len(a)-1].Sub(a[0])
	want := float64(InterArrival(Gbps(10), 1514)) * 1999
	if got := float64(span); got < want*0.8 || got > want*1.2 {
		t.Fatalf("poisson span %.0f, want ~%.0f", got, want)
	}
	// Inter-arrival variance: exponential gaps must not be constant.
	g1 := a[1].Sub(a[0])
	constant := true
	for i := 2; i < 100; i++ {
		if a[i].Sub(a[i-1]) != g1 {
			constant = false
			break
		}
	}
	if constant {
		t.Fatal("poisson gaps look deterministic")
	}
}

func TestTraceReplaysExactSchedule(t *testing.T) {
	s := sim.New()
	rx := &captureRx{}
	times := []sim.Time{500, 100, 900} // unsorted on purpose
	n := Trace{
		Flow: flow(1514), Times: times,
		FrameLen: []int{200, 0, 1000},
	}.Install(s, rx)
	s.Run()
	if n != 3 || len(rx.times) != 3 {
		t.Fatalf("replayed %d", len(rx.times))
	}
	// Delivered in time order regardless of slice order.
	if rx.times[0] != 100 || rx.times[1] != 500 || rx.times[2] != 900 {
		t.Fatalf("delivery times %v", rx.times)
	}
	// Per-packet frame lengths: seq 1 (at t=100) uses flow default,
	// seq 0 (t=500) uses 200, seq 2 (t=900) uses 1000.
	if len(rx.pkts[0].Frame) != 1514 {
		t.Fatalf("default frame len %d", len(rx.pkts[0].Frame))
	}
	if len(rx.pkts[1].Frame) != 200 || len(rx.pkts[2].Frame) != 1000 {
		t.Fatalf("per-packet lens %d %d", len(rx.pkts[1].Frame), len(rx.pkts[2].Frame))
	}
}

func TestFlowTupleAndDSCPPropagate(t *testing.T) {
	f := flow(500)
	f.DSCP = 46
	s := sim.New()
	rx := &captureRx{}
	Steady{Flow: f, RateBps: Gbps(1), Count: 1}.Install(s, rx)
	s.Run()
	fields, err := pkt.Parse(rx.pkts[0].Frame)
	if err != nil {
		t.Fatal(err)
	}
	if fields.DSCP != 46 {
		t.Fatalf("dscp %d", fields.DSCP)
	}
	if fields.Tuple() != f.Tuple() {
		t.Fatalf("tuple %+v vs %+v", fields.Tuple(), f.Tuple())
	}
	if len(rx.pkts[0].Frame) != 500 {
		t.Fatalf("frame len %d", len(rx.pkts[0].Frame))
	}
}
