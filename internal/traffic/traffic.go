// Package traffic implements the load generators of Sec. VI: steady
// constant-rate streams and bursty streams defined by burst period,
// burst rate, and packets-per-burst (the paper sizes each burst to
// exactly fill the DMA ring). This stands in for DPDK pktgen and the
// hardware load-generator model used with gem5.
package traffic

import (
	"fmt"
	"math/rand"

	"idio/internal/pkt"
	"idio/internal/sim"
)

// Receiver consumes generated packets (the NIC implements this).
type Receiver interface {
	Receive(s *sim.Simulator, p *pkt.Packet)
}

// Flow describes the packets of one generated stream.
type Flow struct {
	Src, Dst         pkt.IPv4
	SrcPort, DstPort uint16
	// DSCP encodes the sender's application class (Sec. V-A).
	DSCP uint8
	// FrameLen is the total frame size (1514 unless stated otherwise).
	FrameLen int
}

// Tuple returns the flow's 5-tuple as seen by the NIC.
func (f Flow) Tuple() pkt.FiveTuple {
	return pkt.FiveTuple{Src: f.Src, Dst: f.Dst, SrcPort: f.SrcPort, DstPort: f.DstPort, Proto: pkt.ProtoUDP}
}

func (f Flow) build(seq uint64) (*pkt.Packet, error) {
	frame, err := pkt.Build(pkt.Spec{
		SrcMAC: pkt.MAC{0x02, 0, 0, 0, 0, 0x10}, DstMAC: pkt.MAC{0x02, 0, 0, 0, 0, 0x20},
		SrcIP: f.Src, DstIP: f.Dst, SrcPort: f.SrcPort, DstPort: f.DstPort,
		DSCP: f.DSCP, FrameLen: f.FrameLen,
	})
	if err != nil {
		return nil, err
	}
	return &pkt.Packet{Frame: frame, Seq: seq}, nil
}

// Packet builds the flow's seq-th frame — the exported form of the
// generators' internal builder, used by fabric clients (internal/net)
// that construct request packets outside this package.
func (f Flow) Packet(seq uint64) (*pkt.Packet, error) { return f.build(seq) }

// InterArrival returns the packet spacing for a given rate and frame
// length (frame bits divided by rate).
func InterArrival(rateBps int64, frameLen int) sim.Duration {
	if rateBps <= 0 {
		panic("traffic: non-positive rate")
	}
	return sim.Duration(int64(frameLen) * 8 * int64(sim.Second) / rateBps)
}

// Steady generates a constant-rate stream of Count packets starting at
// Start. Count 0 means "until Stop".
type Steady struct {
	Flow    Flow
	RateBps int64
	Start   sim.Time
	// Count limits the number of packets; if zero, Stop bounds the
	// stream instead.
	Count uint64
	Stop  sim.Time
}

// Install schedules the stream's arrivals on the simulator. It returns
// the number of packets that will be generated when Count is set,
// otherwise an estimate from the window.
func (g Steady) Install(s *sim.Simulator, rx Receiver) uint64 {
	gap := InterArrival(g.RateBps, g.Flow.FrameLen)
	n := g.Count
	if n == 0 {
		if g.Stop <= g.Start {
			panic("traffic: steady stream needs Count or Stop > Start")
		}
		n = uint64(g.Stop.Sub(g.Start)/gap) + 1
	}
	var emit func(sm *sim.Simulator, seq uint64)
	emit = func(sm *sim.Simulator, seq uint64) {
		p, err := g.Flow.build(seq)
		if err != nil {
			panic(fmt.Sprintf("traffic: %v", err))
		}
		rx.Receive(sm, p)
		if seq+1 < n {
			sm.After(gap, func(sm2 *sim.Simulator) { emit(sm2, seq+1) })
		}
	}
	s.AtNamed(g.Start, "steady-start", func(sm *sim.Simulator) { emit(sm, 0) })
	return n
}

// Bursty generates bursts per Sec. VI: every Period, a burst of
// PacketsPerBurst packets paced at BurstRateBps. The burst length
// therefore equals (PacketsPerBurst-1) * frame_bits / rate, matching
// the paper's "receive exactly ring-buffer-size packets per burst"
// construction.
type Bursty struct {
	Flow            Flow
	BurstRateBps    int64
	Period          sim.Duration // 10 ms in the paper
	PacketsPerBurst int
	Start           sim.Time
	NumBursts       int
}

// BurstLength returns the intra-burst duration from first to last
// packet.
func (g Bursty) BurstLength() sim.Duration {
	gap := InterArrival(g.BurstRateBps, g.Flow.FrameLen)
	return sim.Duration(int64(gap) * int64(g.PacketsPerBurst-1))
}

// Install schedules all bursts. Returns total packets generated.
func (g Bursty) Install(s *sim.Simulator, rx Receiver) uint64 {
	if g.PacketsPerBurst <= 0 || g.NumBursts <= 0 {
		panic("traffic: bursty stream needs packets and bursts")
	}
	if g.Period <= 0 {
		panic("traffic: bursty stream needs a period")
	}
	if g.BurstLength() >= g.Period {
		panic(fmt.Sprintf("traffic: burst length %v exceeds period %v", g.BurstLength(), g.Period))
	}
	gap := InterArrival(g.BurstRateBps, g.Flow.FrameLen)
	seq := uint64(0)
	for b := 0; b < g.NumBursts; b++ {
		burstStart := g.Start.Add(sim.Duration(int64(g.Period) * int64(b)))
		for i := 0; i < g.PacketsPerBurst; i++ {
			at := burstStart.Add(sim.Duration(int64(gap) * int64(i)))
			mySeq := seq
			seq++
			s.AtNamed(at, "burst-pkt", func(sm *sim.Simulator) {
				p, err := g.Flow.build(mySeq)
				if err != nil {
					panic(fmt.Sprintf("traffic: %v", err))
				}
				rx.Receive(sm, p)
			})
		}
	}
	return seq
}

// Poisson generates a memoryless arrival process at the given average
// rate: exponential inter-arrival times with mean frame_bits/rate.
// Deterministic for a fixed seed. Poisson arrivals produce the bursty
// micro-scale queueing that stresses tail latency even at moderate
// average load.
type Poisson struct {
	Flow    Flow
	RateBps int64
	Start   sim.Time
	Count   uint64
	Seed    int64
}

// Install schedules the stream's arrivals.
func (g Poisson) Install(s *sim.Simulator, rx Receiver) uint64 {
	if g.Count == 0 {
		panic("traffic: poisson stream needs Count")
	}
	mean := float64(InterArrival(g.RateBps, g.Flow.FrameLen))
	rng := rand.New(rand.NewSource(g.Seed))
	var emit func(sm *sim.Simulator, seq uint64)
	emit = func(sm *sim.Simulator, seq uint64) {
		p, err := g.Flow.build(seq)
		if err != nil {
			panic(fmt.Sprintf("traffic: %v", err))
		}
		rx.Receive(sm, p)
		if seq+1 < g.Count {
			gap := sim.Duration(rng.ExpFloat64() * mean)
			if gap < 1 {
				gap = 1
			}
			sm.After(gap, func(sm2 *sim.Simulator) { emit(sm2, seq+1) })
		}
	}
	s.AtNamed(g.Start, "poisson-start", func(sm *sim.Simulator) { emit(sm, 0) })
	return g.Count
}

// Trace replays an explicit arrival schedule: one packet per entry at
// the given absolute times, with per-packet frame lengths (zero
// entries fall back to the flow's FrameLen). This models pcap-style
// workload replay.
type Trace struct {
	Flow     Flow
	Times    []sim.Time
	FrameLen []int // optional; parallel to Times
}

// Install schedules every arrival. Times need not be sorted.
func (g Trace) Install(s *sim.Simulator, rx Receiver) uint64 {
	for i, at := range g.Times {
		flow := g.Flow
		if i < len(g.FrameLen) && g.FrameLen[i] > 0 {
			flow.FrameLen = g.FrameLen[i]
		}
		seq := uint64(i)
		f := flow
		s.AtNamed(at, "trace-pkt", func(sm *sim.Simulator) {
			p, err := f.build(seq)
			if err != nil {
				panic(fmt.Sprintf("traffic: %v", err))
			}
			rx.Receive(sm, p)
		})
	}
	return uint64(len(g.Times))
}

// Gbps converts a gigabit-per-second figure to bits per second.
func Gbps(g float64) int64 { return int64(g * 1e9) }
