// Package traffic implements the load generators of Sec. VI: steady
// constant-rate streams and bursty streams defined by burst period,
// burst rate, and packets-per-burst (the paper sizes each burst to
// exactly fill the DMA ring). This stands in for DPDK pktgen and the
// hardware load-generator model used with gem5.
//
// Generators are allocation-free in steady state: each flow's frame is
// built once as an immutable pkt.Template, and every emission stamps
// the per-packet fields (sequence number, checksum delta) into a
// packet recycled through a pkt.Pool. The pool is discovered from the
// receiver when it exposes one (the NIC does — so packets return to
// the pool when the ring slot is freed), otherwise the generator owns
// a private pool that packets come back to via Packet.Release.
package traffic

import (
	"fmt"
	"math/rand"

	"idio/internal/pkt"
	"idio/internal/sim"
)

// Receiver consumes generated packets (the NIC implements this).
type Receiver interface {
	Receive(s *sim.Simulator, p *pkt.Packet)
}

// PacketPooler is implemented by receivers that own a packet pool the
// generator should draw from (the NIC's System pool; links delegate to
// their endpoint). Drawing from the consumer's pool closes the recycle
// loop — generator → ring → service → free — inside one pool.
type PacketPooler interface {
	PacketPool() *pkt.Pool
}

// poolFor resolves the pool a generator draws from: an explicit
// override first, then the receiver's own pool, then a private one.
func poolFor(override *pkt.Pool, rx Receiver) *pkt.Pool {
	if override != nil {
		return override
	}
	if pp, ok := rx.(PacketPooler); ok {
		if p := pp.PacketPool(); p != nil {
			return p
		}
	}
	return pkt.NewPool(0)
}

// Flow describes the packets of one generated stream.
type Flow struct {
	Src, Dst         pkt.IPv4
	SrcPort, DstPort uint16
	// DSCP encodes the sender's application class (Sec. V-A).
	DSCP uint8
	// FrameLen is the total frame size (1514 unless stated otherwise).
	FrameLen int
}

// Tuple returns the flow's 5-tuple as seen by the NIC.
func (f Flow) Tuple() pkt.FiveTuple {
	return pkt.FiveTuple{Src: f.Src, Dst: f.Dst, SrcPort: f.SrcPort, DstPort: f.DstPort, Proto: pkt.ProtoUDP}
}

// Spec returns the frame spec for the flow's seq-th packet.
func (f Flow) Spec(seq uint64) pkt.Spec {
	return pkt.Spec{
		SrcMAC: pkt.MAC{0x02, 0, 0, 0, 0, 0x10}, DstMAC: pkt.MAC{0x02, 0, 0, 0, 0, 0x20},
		SrcIP: f.Src, DstIP: f.Dst, SrcPort: f.SrcPort, DstPort: f.DstPort,
		DSCP: f.DSCP, FrameLen: f.FrameLen, Seq: seq,
	}
}

// Template builds the flow's immutable frame template (see
// pkt.Template): the once-per-flow half of the zero-allocation path.
func (f Flow) Template() (*pkt.Template, error) {
	return pkt.NewTemplate(f.Spec(0))
}

func (f Flow) build(seq uint64) (*pkt.Packet, error) {
	frame, err := pkt.Build(f.Spec(seq))
	if err != nil {
		return nil, err
	}
	return &pkt.Packet{Frame: frame, Seq: seq}, nil
}

// Packet builds the flow's seq-th frame — the exported one-shot form,
// byte-identical to what the template path stamps, used for validation
// and tests (fabric clients stamp templates on their hot path).
func (f Flow) Packet(seq uint64) (*pkt.Packet, error) { return f.build(seq) }

// InterArrival returns the packet spacing for a given rate and frame
// length (frame bits divided by rate).
func InterArrival(rateBps int64, frameLen int) sim.Duration {
	if rateBps <= 0 {
		panic("traffic: non-positive rate")
	}
	return sim.Duration(int64(frameLen) * 8 * int64(sim.Second) / rateBps)
}

// Steady generates a constant-rate stream of Count packets starting at
// Start. Count 0 means "until Stop".
type Steady struct {
	Flow    Flow
	RateBps int64
	Start   sim.Time
	// Count limits the number of packets; if zero, Stop bounds the
	// stream instead.
	Count uint64
	Stop  sim.Time
	// Pool, when non-nil, overrides packet-pool discovery (see
	// PacketPooler). Tests inject pkt.NewNullPool here to prove pooling
	// does not perturb simulation output.
	Pool *pkt.Pool
}

// steadyRun is the per-stream emission state: one of these (plus one
// stored event closure) is the stream's entire allocation budget —
// every packet after that comes stamped out of the pool.
type steadyRun struct {
	tmpl   *pkt.Template
	pool   *pkt.Pool
	rx     Receiver
	gap    sim.Duration
	n      uint64
	seq    uint64
	emitFn sim.Event
}

func (r *steadyRun) emit(sm *sim.Simulator) {
	p := r.pool.Get(r.tmpl.FrameLen())
	r.tmpl.Stamp(p, r.seq)
	r.seq++
	r.rx.Receive(sm, p)
	if r.seq < r.n {
		sm.After(r.gap, r.emitFn)
	}
}

// Install schedules the stream's arrivals on the simulator. It returns
// the number of packets that will be generated when Count is set,
// otherwise an estimate from the window.
func (g Steady) Install(s *sim.Simulator, rx Receiver) uint64 {
	gap := InterArrival(g.RateBps, g.Flow.FrameLen)
	n := g.Count
	if n == 0 {
		if g.Stop <= g.Start {
			panic("traffic: steady stream needs Count or Stop > Start")
		}
		n = uint64(g.Stop.Sub(g.Start)/gap) + 1
	}
	tmpl, err := g.Flow.Template()
	if err != nil {
		panic(fmt.Sprintf("traffic: %v", err))
	}
	run := &steadyRun{tmpl: tmpl, pool: poolFor(g.Pool, rx), rx: rx, gap: gap, n: n}
	run.emitFn = run.emit
	s.AtNamed(g.Start, "steady-start", run.emitFn)
	return n
}

// Bursty generates bursts per Sec. VI: every Period, a burst of
// PacketsPerBurst packets paced at BurstRateBps. The burst length
// therefore equals (PacketsPerBurst-1) * frame_bits / rate, matching
// the paper's "receive exactly ring-buffer-size packets per burst"
// construction.
type Bursty struct {
	Flow            Flow
	BurstRateBps    int64
	Period          sim.Duration // 10 ms in the paper
	PacketsPerBurst int
	Start           sim.Time
	NumBursts       int
	// Pool overrides packet-pool discovery (see Steady.Pool).
	Pool *pkt.Pool
}

// BurstLength returns the intra-burst duration from first to last
// packet.
func (g Bursty) BurstLength() sim.Duration {
	gap := InterArrival(g.BurstRateBps, g.Flow.FrameLen)
	return sim.Duration(int64(gap) * int64(g.PacketsPerBurst-1))
}

// burstRun is the shared state of one bursty stream's pre-scheduled
// emissions; the per-packet sequence number rides in the event's Arg.
type burstRun struct {
	tmpl *pkt.Template
	pool *pkt.Pool
	rx   Receiver
}

// emitBurstPkt fires one pre-scheduled emission: Arg.Obj is the
// *burstRun, Arg.U0 the packet's sequence number.
func emitBurstPkt(sm *sim.Simulator, a sim.Arg) {
	r := a.Obj.(*burstRun)
	p := r.pool.Get(r.tmpl.FrameLen())
	r.tmpl.Stamp(p, a.U0)
	r.rx.Receive(sm, p)
}

// Install schedules all bursts. Returns total packets generated.
func (g Bursty) Install(s *sim.Simulator, rx Receiver) uint64 {
	if g.PacketsPerBurst <= 0 || g.NumBursts <= 0 {
		panic("traffic: bursty stream needs packets and bursts")
	}
	if g.Period <= 0 {
		panic("traffic: bursty stream needs a period")
	}
	if g.BurstLength() >= g.Period {
		panic(fmt.Sprintf("traffic: burst length %v exceeds period %v", g.BurstLength(), g.Period))
	}
	tmpl, err := g.Flow.Template()
	if err != nil {
		panic(fmt.Sprintf("traffic: %v", err))
	}
	run := &burstRun{tmpl: tmpl, pool: poolFor(g.Pool, rx), rx: rx}
	gap := InterArrival(g.BurstRateBps, g.Flow.FrameLen)
	seq := uint64(0)
	for b := 0; b < g.NumBursts; b++ {
		burstStart := g.Start.Add(sim.Duration(int64(g.Period) * int64(b)))
		for i := 0; i < g.PacketsPerBurst; i++ {
			at := burstStart.Add(sim.Duration(int64(gap) * int64(i)))
			s.AtArgNamed(at, "burst-pkt", emitBurstPkt, sim.Arg{Obj: run, U0: seq})
			seq++
		}
	}
	return seq
}

// Poisson generates a memoryless arrival process at the given average
// rate: exponential inter-arrival times with mean frame_bits/rate.
// Deterministic for a fixed seed. Poisson arrivals produce the bursty
// micro-scale queueing that stresses tail latency even at moderate
// average load.
type Poisson struct {
	Flow    Flow
	RateBps int64
	Start   sim.Time
	Count   uint64
	Seed    int64
	// Pool overrides packet-pool discovery (see Steady.Pool).
	Pool *pkt.Pool
}

// poissonRun mirrors steadyRun with an exponential gap draw per
// emission (the rng is seeded at install, so replays are identical).
type poissonRun struct {
	tmpl   *pkt.Template
	pool   *pkt.Pool
	rx     Receiver
	rng    *rand.Rand
	mean   float64
	n      uint64
	seq    uint64
	emitFn sim.Event
}

func (r *poissonRun) emit(sm *sim.Simulator) {
	p := r.pool.Get(r.tmpl.FrameLen())
	r.tmpl.Stamp(p, r.seq)
	r.seq++
	r.rx.Receive(sm, p)
	if r.seq < r.n {
		gap := sim.Duration(r.rng.ExpFloat64() * r.mean)
		if gap < 1 {
			gap = 1
		}
		sm.After(gap, r.emitFn)
	}
}

// Install schedules the stream's arrivals.
func (g Poisson) Install(s *sim.Simulator, rx Receiver) uint64 {
	if g.Count == 0 {
		panic("traffic: poisson stream needs Count")
	}
	tmpl, err := g.Flow.Template()
	if err != nil {
		panic(fmt.Sprintf("traffic: %v", err))
	}
	run := &poissonRun{
		tmpl: tmpl, pool: poolFor(g.Pool, rx), rx: rx,
		rng:  rand.New(rand.NewSource(g.Seed)),
		mean: float64(InterArrival(g.RateBps, g.Flow.FrameLen)),
		n:    g.Count,
	}
	run.emitFn = run.emit
	s.AtNamed(g.Start, "poisson-start", run.emitFn)
	return g.Count
}

// Trace replays an explicit arrival schedule: one packet per entry at
// the given absolute times, with per-packet frame lengths (zero
// entries fall back to the flow's FrameLen). This models pcap-style
// workload replay.
type Trace struct {
	Flow     Flow
	Times    []sim.Time
	FrameLen []int // optional; parallel to Times
	// Pool overrides packet-pool discovery (see Steady.Pool).
	Pool *pkt.Pool
}

// traceRun is the shared state of one trace replay; each entry's
// template (cached by frame length) rides in the event's Arg.
type traceRun struct {
	pool *pkt.Pool
	rx   Receiver
}

func emitTracePkt(sm *sim.Simulator, a sim.Arg) {
	r := a.Obj.(*traceRun)
	tmpl := a.Obj2.(*pkt.Template)
	p := r.pool.Get(tmpl.FrameLen())
	tmpl.Stamp(p, a.U0)
	r.rx.Receive(sm, p)
}

// Install schedules every arrival. Times need not be sorted.
func (g Trace) Install(s *sim.Simulator, rx Receiver) uint64 {
	run := &traceRun{pool: poolFor(g.Pool, rx), rx: rx}
	tmpls := make(map[int]*pkt.Template) // one template per distinct frame length
	for i, at := range g.Times {
		flen := g.Flow.FrameLen
		if i < len(g.FrameLen) && g.FrameLen[i] > 0 {
			flen = g.FrameLen[i]
		}
		tmpl, ok := tmpls[flen]
		if !ok {
			flow := g.Flow
			flow.FrameLen = flen
			var err error
			tmpl, err = flow.Template()
			if err != nil {
				panic(fmt.Sprintf("traffic: %v", err))
			}
			tmpls[flen] = tmpl
		}
		s.AtArgNamed(at, "trace-pkt", emitTracePkt, sim.Arg{Obj: run, Obj2: tmpl, U0: uint64(i)})
	}
	return uint64(len(g.Times))
}

// Gbps converts a gigabit-per-second figure to bits per second.
func Gbps(g float64) int64 { return int64(g * 1e9) }
