package sim

// Micro-benchmarks for the event kernel's hot path. A full figure run
// processes ~10M events, so push/pop cost and per-event allocation
// bound the whole simulator. The steady-state benchmarks must report
// 0 allocs/op: events are stored by value in the queue's backing
// array, which is reused across RunUntil segments.

import (
	"math/rand"
	"testing"
)

// BenchmarkSchedule measures the raw push cost into a queue at its
// steady-state depth (events are drained block-wise so the backing
// array never grows once warm). One op = one scheduled event.
func BenchmarkSchedule(b *testing.B) {
	s := New()
	fn := func(*Simulator) {}
	const block = 1024
	// Warm the backing array to its steady-state capacity.
	for i := 0; i < block; i++ {
		s.At(s.Now().Add(Duration(i&63)*Nanosecond), fn)
	}
	s.Run()
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n += block {
		base := s.Now()
		for i := 0; i < block; i++ {
			s.At(base.Add(Duration(i&63)*Nanosecond), fn)
		}
		s.Run()
	}
}

// BenchmarkRunUntil measures the full schedule-pop-execute cycle: 64
// self-rescheduling periodic events advanced one period per op. This
// is the simulator's steady state (periodic control-plane tasks plus
// in-flight packet events) and must be allocation-free.
func BenchmarkRunUntil(b *testing.B) {
	s := New()
	const tickers = 64
	var tick Event
	tick = func(sm *Simulator) { sm.After(Microsecond, tick) }
	for i := 0; i < tickers; i++ {
		s.At(Time(i), tick)
	}
	s.RunUntil(s.Now().Add(4 * Microsecond)) // reach steady state
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.RunUntil(s.Now().Add(1 * Microsecond))
	}
}

// BenchmarkScheduleDeep exercises push/pop against a deep queue
// (64k pending events), the regime where heap arity matters.
func BenchmarkScheduleDeep(b *testing.B) {
	s := New()
	fn := func(*Simulator) {}
	rng := rand.New(rand.NewSource(1))
	const depth = 1 << 16
	offsets := make([]Duration, depth)
	for i := range offsets {
		offsets[i] = Duration(rng.Intn(1<<20)) * Picosecond
	}
	for i := 0; i < depth; i++ {
		s.At(s.Now().Add(offsets[i]), fn)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Replace the queue head: one pop, one push, depth constant.
		// Addressed through the facade so both scheduler levels are
		// exercised at depth.
		e, _ := s.popWithin(Never)
		s.enqueue(schedEvent{at: e.at + Time(offsets[i&(depth-1)]), seq: e.seq, fn: fn})
	}
}

// BenchmarkWheelArmCancel measures the hashed timer wheel's arm+cancel
// pair against a standing population of outstanding timers. The O(1)
// claim of the million-flow engine is that ns/op stays flat from 1k to
// 1M outstanding — arm is a slab pop plus list append, cancel an
// unlink, neither touching the population.
func BenchmarkWheelArmCancel(b *testing.B) {
	for _, n := range []struct {
		name string
		pop  int
	}{{"1k", 1 << 10}, {"32k", 1 << 15}, {"1M", 1 << 20}} {
		b.Run(n.name, func(b *testing.B) {
			s := New()
			w := NewTimerWheel(s, 64*Microsecond, 4096)
			fn := func(*Simulator, Arg) {}
			// Standing population: timers spread across the horizon.
			for i := 0; i < n.pop; i++ {
				w.Arm(Duration(i%100_000+1)*Microsecond, fn, Arg{})
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				h := w.Arm(Duration(i%50_000+1)*Microsecond, fn, Arg{})
				w.Cancel(h)
			}
		})
	}
}

// TestHotSchedulingPathZeroAllocs is the regression guard behind the
// observability layer's zero-cost claim: with observability disabled
// (the simulator never links it at all), the steady-state
// schedule-pop-execute cycle must not allocate. Run as a benchmark so
// the number is allocs/op over the real hot loop, not a hand-rolled
// approximation of it.
func TestHotSchedulingPathZeroAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark-backed guard")
	}
	for _, bench := range []struct {
		name string
		fn   func(*testing.B)
	}{
		{"RunUntil", BenchmarkRunUntil},
		{"Schedule", BenchmarkSchedule},
	} {
		res := testing.Benchmark(bench.fn)
		if a := res.AllocsPerOp(); a != 0 {
			t.Errorf("%s: %d allocs/op on the hot scheduling path, want 0", bench.name, a)
		}
	}
}

// TestEventQueueHeapOrder cross-checks the 4-ary heap against a
// reference sort over random schedules, including heavy same-instant
// ties (the FIFO case the simulator depends on).
func TestEventQueueHeapOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 100; trial++ {
		var q eventQueue
		n := rng.Intn(500) + 1
		for i := 0; i < n; i++ {
			q.push(schedEvent{at: Time(rng.Intn(16)), seq: uint64(i)})
		}
		var prev schedEvent
		for i := 0; i < n; i++ {
			e := q.pop()
			if i > 0 && lessEv(e, prev) {
				t.Fatalf("trial %d: pop %d out of order: %+v after %+v", trial, i, e, prev)
			}
			prev = e
		}
		if len(q) != 0 {
			t.Fatalf("queue not drained: %d left", len(q))
		}
	}
}

// TestEventQueueInterleaved pushes and pops in random interleavings and
// checks the popped sequence is always the global minimum remaining.
func TestEventQueueInterleaved(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var q eventQueue
	pending := map[uint64]Time{}
	seq := uint64(0)
	for op := 0; op < 5000; op++ {
		if len(q) == 0 || rng.Intn(2) == 0 {
			at := Time(rng.Intn(1000))
			seq++
			q.push(schedEvent{at: at, seq: seq})
			pending[seq] = at
		} else {
			e := q.pop()
			want, ok := pending[e.seq]
			if !ok || want != e.at {
				t.Fatalf("popped unknown event %+v", e)
			}
			for s2, at := range pending {
				if at < e.at || (at == e.at && s2 < e.seq) {
					t.Fatalf("popped %+v but %d@%d was smaller", e, s2, at)
				}
			}
			delete(pending, e.seq)
		}
	}
}
