package sim

// Property tests for the two-level scheduler: the time wheel plus the
// 4-ary spill heap, merged by enqueue/popWithin, must pop the exact
// (at, seq) sequence a single reference heap would — that equivalence
// is what makes the wheel invisible to every replay and golden test.
// These extend TestEventQueueHeapOrder (bench_test.go), which checks
// the heap alone.

import (
	"math/rand"
	"testing"
)

// TestTwoLevelVsHeapProperty drives randomized (at, seq) streams
// through the two-level scheduler and a reference single heap in
// lockstep and asserts both pop identical sequences. The stream mix is
// chosen to hit every wheel path: same-instant ties (duplicate at,
// distinct seq), dense bursts into one wheel slot (bucket overflow
// spills), arrivals into the sorted cursor slot (in-order tail
// insertion), events beyond one wheel rotation (far-future spills),
// and interleaved pops that march the cursor across slot and rotation
// boundaries. Millions of events in the default mode; -short trims
// the stream, not the mix.
func TestTwoLevelVsHeapProperty(t *testing.T) {
	total := 2_000_000
	if testing.Short() {
		total = 200_000
	}
	rng := rand.New(rand.NewSource(1234))
	s := New()
	var ref eventQueue
	fn := func(*Simulator) {}

	var seq uint64
	var vnow Time // at of the last popped event: the causality floor
	var lastAt Time
	pending, pushed := 0, 0
	push := func(at Time) {
		seq++
		e := schedEvent{at: at, seq: seq, fn: fn}
		s.enqueue(e)
		ref.push(e)
		lastAt = at
		pending++
		pushed++
	}

	for pushed < total || pending > 0 {
		if pushed < total {
			burst := rng.Intn(32) + 1
			for i := 0; i < burst && pushed < total; i++ {
				switch r := rng.Intn(100); {
				case r < 10:
					// Same instant as the event being dispatched.
					push(vnow)
				case r < 20 && lastAt >= vnow:
					// Exact duplicate of the previous at: a seq-only tie.
					push(lastAt)
				case r < 35:
					// Dense burst into the cursor's own slot — with >8
					// events this overflows the bucket and spills.
					push(vnow.Add(Duration(rng.Int63n(int64(wheelGran)))))
				case r < 90:
					// Anywhere within the wheel's rotation.
					push(vnow.Add(Duration(rng.Int63n(int64(wheelSpan)))))
				default:
					// Beyond one rotation: must divert to the heap (an
					// aliased wheel slot would fire a rotation early).
					push(vnow.Add(Duration(wheelSpan) + Duration(rng.Int63n(int64(10*wheelSpan)))))
				}
			}
		}
		k := rng.Intn(8) + 1
		if pushed >= total {
			k = pending
		}
		for i := 0; i < k && pending > 0; i++ {
			got, ok := s.popWithin(Never)
			if !ok {
				t.Fatalf("two-level scheduler empty with %d events pending", pending)
			}
			want := ref.pop()
			if got.at != want.at || got.seq != want.seq {
				t.Fatalf("after %d pops: two-level popped (at=%d seq=%d), reference heap (at=%d seq=%d)",
					pushed-pending, got.at, got.seq, want.at, want.seq)
			}
			vnow = got.at
			pending--
		}
	}
	if s.Pending() != 0 || len(ref) != 0 {
		t.Fatalf("drained scheduler still pending: two-level=%d ref=%d", s.Pending(), len(ref))
	}
}

// TestTwoLevelFacadeOrder repeats the cross-check through the public
// facade (AtArgNamed + RunUntil) rather than the raw queue API: events
// carry their identity in the Arg payload and the executed order must
// be the (at, seq)-sorted order, i.e. nondecreasing at with FIFO among
// equal times.
func TestTwoLevelFacadeOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(4321))
	s := New()
	type rec struct {
		at Time
		id uint64
	}
	var fired []rec
	record := func(sm *Simulator, a Arg) {
		fired = append(fired, rec{at: sm.Now(), id: a.U0})
	}
	const total = 50_000
	var id uint64
	var schedule ArgEvent
	schedule = func(sm *Simulator, _ Arg) {
		// Schedule a burst from inside a running event — the regime
		// where arrivals land in the sorted cursor slot.
		for i := 0; i < 16 && id < total; i++ {
			off := Duration(rng.Int63n(int64(2 * wheelSpan)))
			sm.AtArgNamed(sm.Now().Add(off), "rec", record, Arg{U0: id})
			id++
		}
		if id < total {
			sm.AfterArg(Duration(rng.Int63n(int64(wheelGran*4)))+1, schedule, Arg{})
		}
	}
	s.AtArgNamed(0, "seed", schedule, Arg{})
	s.Run()
	if len(fired) != total {
		t.Fatalf("fired %d of %d events", len(fired), total)
	}
	for i := 1; i < len(fired); i++ {
		if fired[i].at < fired[i-1].at {
			t.Fatalf("event %d fired at %v after %v", i, fired[i].at, fired[i-1].at)
		}
	}
}

// TestEventStormNoRetention is the GC-leak regression guard for the
// scheduler's three retention surfaces: the arg slab, the heap's
// backing array, and the wheel's bucket slab. It schedules and drains
// a million argful events (the wheel cursor wraps its rotation dozens
// of times, the heap churns through far-future spills) and then
// asserts that every released slot was zeroed — a stale schedEvent or
// Arg left in a backing array would pin its closure/object graph for
// the life of the simulator, the leak class this test exists to catch.
func TestEventStormNoRetention(t *testing.T) {
	s := New()
	var fired uint64
	count := func(*Simulator, Arg) { fired++ }
	rng := rand.New(rand.NewSource(99))
	const total = 1_000_000
	const wave = 4096
	scheduled := 0
	for scheduled < total {
		base := s.Now()
		for i := 0; i < wave && scheduled < total; i++ {
			var off Duration
			if rng.Intn(10) == 0 {
				off = Duration(wheelSpan) + Duration(rng.Int63n(int64(4*wheelSpan)))
			} else {
				off = Duration(rng.Int63n(int64(wheelSpan)))
			}
			s.AtArgNamed(base.Add(off), "storm", count, Arg{U0: uint64(scheduled)})
			scheduled++
		}
		s.Run()
	}
	if fired != total {
		t.Fatalf("fired %d of %d events", fired, total)
	}

	// Arg slab: every slot recycled and zeroed, and the slab's
	// high-water mark tracks the peak pending population (one wave),
	// not the total event count — growth past that is a leak.
	if len(s.argFree) != len(s.args) {
		t.Errorf("arg slab: %d slots but only %d free after drain", len(s.args), len(s.argFree))
	}
	for i, a := range s.args {
		if a != (Arg{}) {
			t.Errorf("arg slab slot %d retains payload %+v after drain", i, a)
		}
	}
	if len(s.args) > wave+64 {
		t.Errorf("arg slab high-water %d exceeds the %d-event wave population", len(s.args), wave)
	}

	// Heap: drained, and the backing array's released slots zeroed.
	if len(s.heap) != 0 {
		t.Fatalf("heap not drained: %d left", len(s.heap))
	}
	for i, e := range s.heap[:cap(s.heap)] {
		if e.fn != nil || e.afn != nil || e.at != 0 || e.seq != 0 || e.arg != 0 {
			t.Errorf("heap backing slot %d retains event (at=%d seq=%d) after drain", i, e.at, e.seq)
		}
	}

	// Wheel: every bucket reset to zero length with its full slab
	// capacity zeroed (pop zeroes each consumed element; peek resets
	// the drained cursor slot).
	if s.wheel.count != 0 {
		t.Fatalf("wheel not drained: count=%d", s.wheel.count)
	}
	for si := range s.wheel.slots {
		b := s.wheel.slots[si]
		if len(b) != 0 {
			t.Errorf("wheel slot %d not reset: len=%d", si, len(b))
			continue
		}
		for k, e := range b[:wheelSlotCap] {
			if e.fn != nil || e.afn != nil || e.at != 0 || e.seq != 0 || e.arg != 0 {
				t.Errorf("wheel slot %d[%d] retains event (at=%d seq=%d) after drain", si, k, e.at, e.seq)
			}
		}
	}
}
