package sim

import (
	"errors"
	"testing"
)

// TestWatchdogNoProgress: a zero-delay self-rescheduling event must
// trip the no-progress detector instead of hanging the run.
func TestWatchdogNoProgress(t *testing.T) {
	s := New()
	s.SetWatchdog(WatchdogConfig{MaxEventsPerInstant: 1000})
	var spin Event
	spin = func(sm *Simulator) { sm.At(sm.Now(), spin) }
	s.At(0, spin)
	s.RunUntil(Time(Second))
	var werr *WatchdogError
	if !errors.As(s.Err(), &werr) {
		t.Fatalf("expected WatchdogError, got %v", s.Err())
	}
	if werr.Kind != "no-progress" {
		t.Fatalf("kind = %q, want no-progress", werr.Kind)
	}
	if s.Now() != 0 {
		t.Fatalf("clock advanced to %v during a zero-delay livelock", s.Now())
	}
}

// TestWatchdogEventStorm: unbounded scheduling fan-out must trip the
// pending-queue bound.
func TestWatchdogEventStorm(t *testing.T) {
	s := New()
	s.SetWatchdog(WatchdogConfig{MaxPendingEvents: 1 << 12})
	var fanout Event
	fanout = func(sm *Simulator) {
		sm.After(Nanosecond, fanout)
		sm.After(Nanosecond, fanout)
	}
	s.At(0, fanout)
	s.RunUntil(Time(Second))
	var werr *WatchdogError
	if !errors.As(s.Err(), &werr) || werr.Kind != "event-storm" {
		t.Fatalf("expected event-storm abort, got %v", s.Err())
	}
}

// TestWatchdogEventBudget: the hard per-run event budget bounds
// unattended runs.
func TestWatchdogEventBudget(t *testing.T) {
	s := New()
	s.SetWatchdog(WatchdogConfig{MaxProcessedEvents: 100})
	s.Every(0, Nanosecond, func(*Simulator) {})
	s.RunUntil(Time(Second))
	var werr *WatchdogError
	if !errors.As(s.Err(), &werr) || werr.Kind != "event-budget" {
		t.Fatalf("expected event-budget abort, got %v", s.Err())
	}
}

// TestWatchdogCleanRun: an armed watchdog must not perturb a healthy
// run, and Err must be nil (not a typed-nil interface).
func TestWatchdogCleanRun(t *testing.T) {
	s := New()
	s.SetWatchdog(DefaultWatchdogConfig())
	n := 0
	s.Every(0, Microsecond, func(*Simulator) { n++ })
	s.RunUntil(Time(Millisecond))
	if err := s.Err(); err != nil {
		t.Fatalf("clean run reported %v", err)
	}
	if n == 0 {
		t.Fatal("periodic task never ran")
	}
}

// TestWatchdogErrResets: a trip in one RunUntil must not leak into the
// next (fresh) run.
func TestWatchdogErrResets(t *testing.T) {
	s := New()
	s.SetWatchdog(WatchdogConfig{MaxEventsPerInstant: 10})
	var spin Event
	spin = func(sm *Simulator) { sm.At(sm.Now(), spin) }
	s.At(0, spin)
	s.RunUntil(Time(Millisecond))
	var werr *WatchdogError
	if !errors.As(s.Err(), &werr) || werr.Kind != "no-progress" {
		t.Fatalf("expected no-progress trip, got %v", s.Err())
	}
	// Re-arm with a different bound: the next run's error must reflect
	// that run, not the stale no-progress trip.
	s.SetWatchdog(WatchdogConfig{MaxProcessedEvents: 5})
	s.RunUntil(Time(2 * Millisecond))
	if !errors.As(s.Err(), &werr) || werr.Kind != "event-budget" {
		t.Fatalf("second run reported %v, want event-budget", s.Err())
	}
}
