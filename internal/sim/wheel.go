package sim

import "math/bits"

// Time-wheel scheduling constants. The wheel covers the short-horizon
// bulk of the event population — per-packet DMA line pacing (a few ns
// apart), poll intervals (hundreds of ns), descriptor write-back
// coalescing (~2 µs), link serialization/propagation (µs) — with O(1)
// insertion instead of an O(log n) heap sift. Events past the wheel's
// horizon (sparse long timers: client timeouts, watchdogs, metric
// snapshots) spill to the 4-ary heap, which stays shallow.
const (
	// wheelSlotBits sizes the wheel at 4096 slots.
	wheelSlotBits = 12
	wheelSlots    = 1 << wheelSlotBits
	wheelMask     = wheelSlots - 1
	// wheelGranBits sets the slot granularity to 8192 ps (~8.2 ns) —
	// fine enough that a slot holds only a handful of events once the
	// per-packet DMA chain is fused into burst events.
	wheelGranBits = 13
	// wheelGran is one slot's span; wheelSpan the whole rotation
	// (4096 slots × 8192 ps ≈ 33.5 µs).
	wheelGran = Duration(1) << wheelGranBits
	wheelSpan = Duration(wheelSlots) << wheelGranBits
	// wheelSlotCap fixes each slot's bucket capacity. Buckets are carved
	// out of one contiguous slab at construction and never grow: a full
	// bucket refuses the push and the event spills to the heap, so the
	// steady state allocates nothing no matter how lumpy the schedule.
	wheelSlotCap = 8
)

// timeWheel is the dense half of the two-level scheduler: a circular
// calendar of per-slot buckets plus an occupancy bitmap. Scheduling
// appends to a bucket in O(1); buckets are sorted by (at, seq) only
// when the consuming cursor reaches them, so the amortized per-event
// cost is one append plus a share of a small-bucket sort.
//
// Determinism argument: the simulator's total order is (at, seq) with
// seq unique, and the wheel preserves it exactly. Every event in slot
// k fires before every event in slot k+1 (slot ranges are disjoint
// time intervals), and within a slot the sort recovers the (at, seq)
// order; late arrivals into the already-sorted cursor slot are
// inserted in (at, seq) position within its unconsumed tail, which is
// always ahead of the consume cursor (see push). The only events that
// could violate the "sorted then drained" discipline — events behind
// an already-advanced cursor, events a full rotation or more ahead
// (which would alias into an earlier slot), and overflow of a full
// bucket — are refused by push and diverted to the heap, whose pop
// order is compared against the wheel head on every dispatch. The
// merged stream is therefore the exact (at, seq) sequence a single
// heap would produce.
type timeWheel struct {
	slots  [][]schedEvent
	bitmap []uint64
	// cursor is the slot currently being (or next to be) drained; base
	// is that slot's absolute start time. All wheel events lie in
	// [base, base+wheelSpan).
	cursor int
	base   Time
	// pos/sorted describe the cursor slot: once sorted, slots[cursor]
	// is consumed in order from pos; new arrivals are inserted in order
	// into the unconsumed tail (see push).
	pos    int
	sorted bool
	count  int
}

func newTimeWheel() timeWheel {
	w := timeWheel{
		slots:  make([][]schedEvent, wheelSlots),
		bitmap: make([]uint64, wheelSlots/64),
	}
	slab := make([]schedEvent, wheelSlots*wheelSlotCap)
	for i := range w.slots {
		w.slots[i] = slab[i*wheelSlotCap : i*wheelSlotCap : (i+1)*wheelSlotCap]
	}
	return w
}

// push files e into its slot, returning false when the event must go
// to the heap instead: at behind the cursor slot's start, at beyond
// one full rotation (it would alias into a stale slot), or into a
// bucket already at capacity. A push into the cursor slot after it was
// sorted — the common case for events scheduled a few ns ahead by a
// running handler — is inserted in order into the slot's unconsumed
// tail instead of spilling: any event scheduled while dispatching
// orders at or after the event being dispatched (scheduling into the
// past panics upstream, and fresh seqs exceed consumed ones), so a
// valid position at or after the consume cursor always exists.
func (w *timeWheel) push(e schedEvent) bool {
	if e.at < w.base || e.at-w.base >= Time(wheelSpan) {
		return false
	}
	slot := int(e.at>>wheelGranBits) & wheelMask
	b := w.slots[slot]
	if len(b) == wheelSlotCap {
		return false
	}
	if slot == w.cursor && w.sorted {
		b = append(b, e)
		k := len(b) - 1
		for k > w.pos && lessEv(e, b[k-1]) {
			b[k] = b[k-1]
			k--
		}
		b[k] = e
		w.slots[slot] = b
	} else {
		w.slots[slot] = append(b, e)
	}
	w.bitmap[slot>>6] |= 1 << (slot & 63)
	w.count++
	return true
}

// peek returns the wheel's minimum event without consuming it,
// advancing the cursor (and sorting the next occupied slot) as needed.
func (w *timeWheel) peek() (schedEvent, bool) {
	if w.sorted {
		if b := w.slots[w.cursor]; w.pos < len(b) {
			return b[w.pos], true
		}
		// Cursor slot drained: reset its bucket (elements were zeroed
		// as they were popped) and step past it.
		w.slots[w.cursor] = w.slots[w.cursor][:0]
		w.bitmap[w.cursor>>6] &^= 1 << (w.cursor & 63)
		w.sorted = false
		w.cursor = (w.cursor + 1) & wheelMask
		w.base += Time(wheelGran)
	}
	if w.count == 0 {
		return schedEvent{}, false
	}
	c := w.nextOccupied(w.cursor)
	w.base += Time(Duration((c-w.cursor)&wheelMask) << wheelGranBits)
	w.cursor = c
	b := w.slots[c]
	sortSched(b)
	w.sorted = true
	w.pos = 0
	return b[0], true
}

// pop consumes the event peek exposed, zeroing the vacated slot so the
// bucket's backing array does not pin closures or arg payloads for the
// GC. Must be preceded by a peek that returned a wheel event.
func (w *timeWheel) pop() schedEvent {
	b := w.slots[w.cursor]
	e := b[w.pos]
	b[w.pos] = schedEvent{}
	w.pos++
	w.count--
	return e
}

// nextOccupied scans the occupancy bitmap circularly from slot `from`
// (inclusive) to the next slot holding events. Callers guarantee
// count > 0, so the scan terminates within one rotation.
func (w *timeWheel) nextOccupied(from int) int {
	word, bit := from>>6, from&63
	if masked := w.bitmap[word] &^ ((1 << bit) - 1); masked != 0 {
		return word<<6 + bits.TrailingZeros64(masked)
	}
	for i := 1; ; i++ {
		wd := (word + i) & (len(w.bitmap) - 1)
		if w.bitmap[wd] != 0 {
			return wd<<6 + bits.TrailingZeros64(w.bitmap[wd])
		}
	}
}

// sortSched orders a bucket by (at, seq) — insertion sort for the
// common handful-of-events case, quicksort above it. Hand-rolled so
// sorting a slot performs no allocation (sort.Slice's closure and
// interface conversions would put the steady state back on the heap).
func sortSched(a []schedEvent) {
	for len(a) > 24 {
		// Median-of-three pivot, recursing into the smaller side so the
		// stack stays logarithmic.
		m := len(a) / 2
		last := len(a) - 1
		if lessEv(a[m], a[0]) {
			a[m], a[0] = a[0], a[m]
		}
		if lessEv(a[last], a[m]) {
			a[m], a[last] = a[last], a[m]
			if lessEv(a[m], a[0]) {
				a[m], a[0] = a[0], a[m]
			}
		}
		pivot := a[m]
		i, j := 0, last
		for i <= j {
			for lessEv(a[i], pivot) {
				i++
			}
			for lessEv(pivot, a[j]) {
				j--
			}
			if i <= j {
				a[i], a[j] = a[j], a[i]
				i++
				j--
			}
		}
		if j+1 < len(a)-i {
			sortSched(a[:j+1])
			a = a[i:]
		} else {
			sortSched(a[i:])
			a = a[:j+1]
		}
	}
	for i := 1; i < len(a); i++ {
		e := a[i]
		j := i - 1
		for j >= 0 && lessEv(e, a[j]) {
			a[j+1] = a[j]
			j--
		}
		a[j+1] = e
	}
}
