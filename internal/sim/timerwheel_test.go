package sim

import (
	"math/rand"
	"testing"
)

// firing records one observed timer callback.
type firing struct {
	at Time
	id uint64
}

// TestTimerWheelVsHeapProperty drives an identical randomized
// arm/cancel schedule through the hashed wheel and through a
// per-event reference on the plain scheduler heap, and asserts both
// fire the same timers at the same instants in the same order — the
// wheel analogue of TestTwoLevelVsHeapProperty. The reference encodes
// the wheel's contract directly: a timer with expiry E fires at
// ceil(E/gran)*gran, ties in arm order, cancelled timers never fire.
// The op mix stresses every wheel path: same-tick ties, timers beyond
// one rotation (cascades), cancels of armed, fired and stale handles,
// and arm-from-callback re-arming.
func TestTimerWheelVsHeapProperty(t *testing.T) {
	total := 200_000
	if testing.Short() {
		total = 20_000
	}
	const gran = 64 * Microsecond
	const slots = 256 // small: forces rotation cascades constantly

	type clock struct{ fired []firing }
	quantize := func(e Time) Time {
		return Time((uint64(e) + uint64(gran) - 1) / uint64(gran) * uint64(gran))
	}

	// Wheel run.
	rng := rand.New(rand.NewSource(99))
	ws := New()
	w := NewTimerWheel(ws, gran, slots)
	var wgot clock
	fire := func(_ *Simulator, a Arg) {
		wgot.fired = append(wgot.fired, firing{at: ws.Now(), id: a.U0})
	}
	// Reference run: one scheduler event per timer at the quantized
	// instant; cancels are a live-set removal, so a cancelled timer's
	// event fires as a no-op — semantically identical, structurally the
	// legacy per-event pattern.
	rrng := rand.New(rand.NewSource(99)) // same stream: identical schedule
	rs := New()
	live := map[uint64]bool{}
	var rgot clock
	rfire := func(_ *Simulator, a Arg) {
		if live[a.U0] {
			delete(live, a.U0)
			rgot.fired = append(rgot.fired, firing{at: rs.Now(), id: a.U0})
		}
	}

	run := func(s *Simulator, rng *rand.Rand, arm func(d Duration, id uint64) TimerHandle, cancel func(h TimerHandle, id uint64)) {
		type armed struct {
			h  TimerHandle
			id uint64
		}
		var handles []armed
		var nextID uint64
		var step Event
		ops := 0
		step = func(sm *Simulator) {
			if ops >= total {
				return
			}
			burst := rng.Intn(16) + 1
			for i := 0; i < burst && ops < total; i++ {
				ops++
				switch r := rng.Intn(100); {
				case r < 55:
					// Arm within ~2 rotations; small deltas hit same-tick
					// ties, large ones cascade.
					d := Duration(rng.Int63n(int64(gran)*slots*2) + 1)
					id := nextID
					nextID++
					handles = append(handles, armed{h: arm(d, id), id: id})
				case r < 75 && len(handles) > 0:
					// Cancel a random handle — possibly already fired
					// (stale): both sides must treat that as a no-op.
					k := rng.Intn(len(handles))
					cancel(handles[k].h, handles[k].id)
					handles[k] = handles[len(handles)-1]
					handles = handles[:len(handles)-1]
				default:
					// Arm a short timer: fires within a tick or two.
					d := Duration(rng.Int63n(int64(gran)*3) + 1)
					id := nextID
					nextID++
					handles = append(handles, armed{h: arm(d, id), id: id})
				}
			}
			sm.After(Duration(rng.Int63n(int64(gran)*4)+1), step)
		}
		s.At(0, step)
		s.Run()
	}

	run(ws, rng,
		func(d Duration, id uint64) TimerHandle {
			return w.Arm(d, fire, Arg{U0: id})
		},
		func(h TimerHandle, _ uint64) { w.Cancel(h) })
	run(rs, rrng,
		func(d Duration, id uint64) TimerHandle {
			live[id] = true
			rs.AtArgNamed(quantize(rs.Now().Add(d)), "ref-timer", rfire, Arg{U0: id})
			return TimerHandle(id)
		},
		func(_ TimerHandle, id uint64) { delete(live, id) })

	if len(wgot.fired) != len(rgot.fired) {
		t.Fatalf("wheel fired %d timers, reference %d", len(wgot.fired), len(rgot.fired))
	}
	for i := range wgot.fired {
		if wgot.fired[i] != rgot.fired[i] {
			t.Fatalf("firing %d diverges: wheel {at=%v id=%d}, reference {at=%v id=%d}",
				i, wgot.fired[i].at, wgot.fired[i].id, rgot.fired[i].at, rgot.fired[i].id)
		}
	}
	if w.Len() != 0 {
		t.Fatalf("wheel still holds %d timers after drain", w.Len())
	}
	st := w.Stats()
	if st.Fired+st.Canceled != st.Armed {
		t.Fatalf("timer accounting leak: armed=%d fired=%d canceled=%d", st.Armed, st.Fired, st.Canceled)
	}
	if st.Cascades == 0 {
		t.Fatal("op mix never cascaded: rotation path untested")
	}
}

// TestTimerWheelCancel covers the handle lifecycle: live cancel,
// double cancel, stale cancel after fire, zero handle, and slot reuse
// (a recycled slab slot must not honour the old generation's handle).
func TestTimerWheelCancel(t *testing.T) {
	s := New()
	w := NewTimerWheel(s, Microsecond, 64)
	fired := 0
	fn := func(*Simulator, Arg) { fired++ }

	h1 := w.Arm(10*Microsecond, fn, Arg{})
	if !w.Cancel(h1) {
		t.Fatal("live cancel failed")
	}
	if w.Cancel(h1) {
		t.Fatal("double cancel succeeded")
	}
	if w.Cancel(0) {
		t.Fatal("zero handle cancelled")
	}
	h2 := w.Arm(5*Microsecond, fn, Arg{})
	s.Run()
	if fired != 1 {
		t.Fatalf("fired = %d, want 1", fired)
	}
	if w.Cancel(h2) {
		t.Fatal("cancel after fire succeeded")
	}
	// h3 reuses h2's slab slot (free-list LIFO); the stale h2 handle
	// must stay dead.
	h3 := w.Arm(5*Microsecond, fn, Arg{})
	if w.Cancel(h2) {
		t.Fatal("stale handle cancelled a recycled slot")
	}
	if !w.Cancel(h3) {
		t.Fatal("live cancel of recycled slot failed")
	}
	if w.Len() != 0 {
		t.Fatalf("Len = %d", w.Len())
	}
}

// TestTimerWheelRearmFromCallback checks the collect-then-fire tick:
// a callback arming a fresh timer (the churn client's timeout-resend
// pattern) must not be swept into the current tick, and a callback
// cancelling a later due timer of the same tick must suppress it.
func TestTimerWheelRearmFromCallback(t *testing.T) {
	s := New()
	w := NewTimerWheel(s, Microsecond, 64)
	var order []uint64
	var hB TimerHandle
	var rearm func(*Simulator, Arg)
	rearm = func(sm *Simulator, a Arg) {
		order = append(order, a.U0)
		if a.U0 == 1 {
			// Fires first (arm order); cancels sibling B (id 2) due in
			// this same tick, and re-arms itself as id 3 one tick out.
			w.Cancel(hB)
			w.Arm(Microsecond, rearm, Arg{U0: 3})
		}
	}
	w.Arm(Microsecond, rearm, Arg{U0: 1})
	hB = w.Arm(Microsecond, rearm, Arg{U0: 2})
	s.Run()
	if len(order) != 2 || order[0] != 1 || order[1] != 3 {
		t.Fatalf("fire order = %v, want [1 3]", order)
	}
	st := w.Stats()
	if st.Armed != 3 || st.Fired != 2 || st.Canceled != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestTimerWheelSuspend verifies an emptied wheel stops scheduling
// tick events (idle wheels must not keep the simulator busy) and
// resumes cleanly on the next Arm.
func TestTimerWheelSuspend(t *testing.T) {
	s := New()
	w := NewTimerWheel(s, Microsecond, 64)
	fired := 0
	fn := func(*Simulator, Arg) { fired++ }
	w.Arm(3*Microsecond, fn, Arg{})
	s.Run() // drains: wheel fires, suspends, queue empties
	if fired != 1 {
		t.Fatalf("fired = %d", fired)
	}
	if s.Pending() != 0 {
		t.Fatalf("idle wheel left %d events queued", s.Pending())
	}
	w.Arm(2*Microsecond, fn, Arg{})
	s.Run()
	if fired != 2 {
		t.Fatalf("fired = %d after resume", fired)
	}
	ticks := w.Stats().Ticks
	if ticks == 0 {
		t.Fatal("no ticks recorded")
	}
}

// TestTimerWheelSteadyStateAllocs proves a warm wheel's arm/cancel
// cycle never touches the heap — the property that lets a million
// outstanding timeouts ride one slab.
func TestTimerWheelSteadyStateAllocs(t *testing.T) {
	s := New()
	w := NewTimerWheel(s, Microsecond, 1024)
	fn := func(*Simulator, Arg) {}
	hs := make([]TimerHandle, 4096)
	for i := range hs {
		hs[i] = w.Arm(Duration(i+1)*Microsecond, fn, Arg{})
	}
	k := 0
	avg := testing.AllocsPerRun(10000, func() {
		w.Cancel(hs[k])
		hs[k] = w.Arm(Duration(k%4096+1)*Microsecond, fn, Arg{})
		k = (k + 1) % 4096
	})
	if avg != 0 {
		t.Fatalf("steady-state arm/cancel allocates %.2f per op", avg)
	}
}
