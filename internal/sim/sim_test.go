package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestClockCycleConversion(t *testing.T) {
	c := NewClock(3_000_000_000)
	if got := c.Cycles(3); got != 1*Nanosecond {
		t.Fatalf("3 cycles at 3GHz = %d ps, want 1000", got)
	}
	if got := c.Cycles(1); got != 333 {
		t.Fatalf("1 cycle at 3GHz = %d ps, want 333", got)
	}
	if got := c.ToCycles(1 * Microsecond); got != 3000 {
		t.Fatalf("1us at 3GHz = %v cycles, want 3000", got)
	}
}

func TestClockRoundTripApprox(t *testing.T) {
	c := NewClock(3_000_000_000)
	for _, n := range []int64{1, 2, 3, 10, 100, 12345, 1 << 30} {
		d := c.Cycles(n)
		back := c.ToCycles(d)
		if diff := back - float64(n); diff > 0.01*float64(n)+0.01 || diff < -0.01*float64(n)-0.01 {
			t.Errorf("cycles %d -> %d ps -> %v cycles", n, d, back)
		}
	}
}

func TestNewClockPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for zero frequency")
		}
	}()
	NewClock(0)
}

func TestEventsRunInTimeOrder(t *testing.T) {
	s := New()
	var order []Time
	for _, at := range []Time{500, 100, 300, 200, 400} {
		at := at
		s.At(at, func(sm *Simulator) {
			if sm.Now() != at {
				t.Errorf("event at %d fired at %d", at, sm.Now())
			}
			order = append(order, at)
		})
	}
	s.Run()
	if !sort.SliceIsSorted(order, func(i, j int) bool { return order[i] < order[j] }) {
		t.Fatalf("events out of order: %v", order)
	}
	if len(order) != 5 {
		t.Fatalf("executed %d events, want 5", len(order))
	}
}

func TestSameTimeEventsFIFO(t *testing.T) {
	s := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(100, func(*Simulator) { order = append(order, i) })
	}
	s.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events not FIFO: %v", order)
		}
	}
}

func TestSchedulingPastPanics(t *testing.T) {
	s := New()
	s.At(100, func(sm *Simulator) {
		defer func() {
			if recover() == nil {
				t.Error("expected panic scheduling into the past")
			}
		}()
		sm.At(50, func(*Simulator) {})
	})
	s.Run()
}

func TestAfterSchedulesRelative(t *testing.T) {
	s := New()
	var fired Time
	s.At(100, func(sm *Simulator) {
		sm.After(25, func(sm2 *Simulator) { fired = sm2.Now() })
	})
	s.Run()
	if fired != 125 {
		t.Fatalf("After fired at %d, want 125", fired)
	}
}

func TestRunUntilHorizon(t *testing.T) {
	s := New()
	ran := 0
	for i := Time(1); i <= 10; i++ {
		s.At(i*100, func(*Simulator) { ran++ })
	}
	n := s.RunUntil(500)
	if n != 5 || ran != 5 {
		t.Fatalf("ran %d events until 500, want 5", ran)
	}
	if s.Now() != 500 {
		t.Fatalf("now = %v after horizon run, want 500", s.Now())
	}
	if s.Pending() != 5 {
		t.Fatalf("pending = %d, want 5", s.Pending())
	}
	s.RunUntil(Never)
	if ran != 10 {
		t.Fatalf("ran %d total, want 10", ran)
	}
}

func TestClockAdvancesToHorizonWhenQueueDrains(t *testing.T) {
	s := New()
	s.At(10, func(*Simulator) {})
	s.RunUntil(1000)
	if s.Now() != 1000 {
		t.Fatalf("now = %v, want 1000", s.Now())
	}
}

func TestStopHaltsLoop(t *testing.T) {
	s := New()
	ran := 0
	s.At(1, func(sm *Simulator) { ran++; sm.Stop() })
	s.At(2, func(*Simulator) { ran++ })
	s.RunUntil(Never)
	if ran != 1 {
		t.Fatalf("ran %d, want 1 (Stop should halt)", ran)
	}
}

func TestEveryPeriodicTask(t *testing.T) {
	s := New()
	ticks := 0
	s.Every(0, Time(1*Microsecond).Sub(0), func(*Simulator) { ticks++ })
	s.RunUntil(Time(10 * Microsecond))
	// Fires at 0,1,...,10us inclusive = 11 ticks.
	if ticks != 11 {
		t.Fatalf("periodic task ticked %d times, want 11", ticks)
	}
}

func TestEveryStopsAtHorizon(t *testing.T) {
	s := New()
	ticks := 0
	s.Every(0, 100, func(*Simulator) { ticks++ })
	s.RunUntil(350)
	if ticks != 4 { // 0,100,200,300
		t.Fatalf("ticks = %d, want 4", ticks)
	}
	if s.Pending() > 1 {
		t.Fatalf("periodic task leaked events: %d pending", s.Pending())
	}
}

func TestCascadingEvents(t *testing.T) {
	s := New()
	depth := 0
	var recurse Event
	recurse = func(sm *Simulator) {
		depth++
		if depth < 1000 {
			sm.After(1, recurse)
		}
	}
	s.At(0, recurse)
	s.Run()
	if depth != 1000 {
		t.Fatalf("depth = %d, want 1000", depth)
	}
	if s.Now() != 999 {
		t.Fatalf("now = %v, want 999", s.Now())
	}
}

func TestProcessedCount(t *testing.T) {
	s := New()
	for i := 0; i < 42; i++ {
		s.At(Time(i), func(*Simulator) {})
	}
	s.Run()
	if s.Processed() != 42 {
		t.Fatalf("processed = %d, want 42", s.Processed())
	}
}

// Property: for any random schedule, execution order is a stable sort of
// the schedule by (time, insertion order).
func TestQuickOrderingProperty(t *testing.T) {
	f := func(times []uint16) bool {
		s := New()
		type rec struct {
			at  Time
			idx int
		}
		var fired []rec
		for i, raw := range times {
			at := Time(raw)
			i := i
			s.At(at, func(sm *Simulator) { fired = append(fired, rec{sm.Now(), i}) })
		}
		s.Run()
		if len(fired) != len(times) {
			return false
		}
		for k := 1; k < len(fired); k++ {
			a, b := fired[k-1], fired[k]
			if a.at > b.at {
				return false
			}
			if a.at == b.at && a.idx > b.idx {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: interleaving At and RunUntil segments never executes an event
// outside its scheduled time and never loses events.
func TestQuickHorizonSegments(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 50; iter++ {
		s := New()
		total, ran := 0, 0
		horizons := []Time{}
		h := Time(0)
		for i := 0; i < 5; i++ {
			h += Time(rng.Intn(1000) + 1)
			horizons = append(horizons, h)
		}
		deadline := horizons[len(horizons)-1]
		for i := 0; i < 100; i++ {
			at := Time(rng.Intn(int(deadline)))
			total++
			s.At(at, func(sm *Simulator) {
				ran++
				if sm.Now() != at {
					t.Fatalf("fired at %v, scheduled %v", sm.Now(), at)
				}
			})
		}
		for _, h := range horizons {
			s.RunUntil(h)
			if s.Now() < h {
				t.Fatalf("now %v < horizon %v", s.Now(), h)
			}
		}
		if ran != total {
			t.Fatalf("ran %d of %d events", ran, total)
		}
	}
}

func BenchmarkEventThroughput(b *testing.B) {
	s := New()
	var pump Event
	n := 0
	pump = func(sm *Simulator) {
		n++
		if n < b.N {
			sm.After(1, pump)
		}
	}
	b.ResetTimer()
	s.At(0, pump)
	s.Run()
}
