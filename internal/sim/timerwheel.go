// TimerWheel: a hashed timing wheel for bulk cancellable timeouts,
// layered on the simulator.
//
// The per-event timeout pattern — one scheduled event per outstanding
// request, firing as a no-op when the response won (the legacy client
// path) — costs a heap/wheel entry and a dispatch per request even
// when nothing times out. At a million outstanding requests that is a
// million queued events doing nothing. The hashed wheel replaces them
// with ONE scheduled event per granularity tick: timers live in
// per-slot intrusive doubly-linked lists carved from a single slab,
// so Arm is a list append, Cancel an unlink (both O(1), both
// allocation-free once the slab is warm), and each tick fires only
// the due timers of one slot. Timers beyond one rotation stay in
// their slot and are revisited ("cascaded") once per rotation — the
// classic hashed-wheel trade: O(1) operations against a bounded
// inspection overhead of population/slots per tick.
//
// Determinism contract: a timer armed at time A with expiry E fires
// at T = ceil(E/gran)*gran — the first wheel tick at or after E — and
// timers sharing a tick fire in arm order (slot lists append, and
// rotation survivors keep their relative order). T depends only on E
// and the granularity, never on the population or on cancel history,
// so wheel-driven models stay byte-identical at any -shards/-j
// setting: each wheel is private to one event domain and its tick is
// an ordinary simulator event.
//
// Note the wheel path is NOT event-identical to per-event timeouts:
// expiries quantize to the granularity and cancels remove (rather
// than fire-and-noop) the timer, changing the simulator's event
// sequence. Models that must preserve historical outputs keep the
// per-event path as their default and opt into the wheel explicitly.

package sim

// TimerHandle identifies an armed timer for cancellation. The zero
// handle is never issued and is safe to cancel (a no-op). Handles are
// generation-tagged: a handle kept past its timer's fire or cancel
// stays invalid even after the slab slot is recycled.
type TimerHandle uint64

// timer slot states (wheelTimer.slot).
const (
	timerFree    = -1 // on the free list
	timerPending = -2 // unlinked by the current tick, fire imminent
)

// wheelTimer is one slab entry: intrusive list links, the absolute
// expiry, and the callback. 8-byte fields first keeps the struct
// packed; the Arg payload is inline so arming allocates nothing.
type wheelTimer struct {
	expiry Time
	fn     ArgEvent
	arg    Arg
	next   int32
	prev   int32
	slot   int32 // owning wheel slot, or timerFree/timerPending
	gen    uint32
}

// timerList is one wheel slot's intrusive list (indices into the
// slab; -1 empty).
type timerList struct {
	head, tail int32
}

// TimerWheelStats counts wheel activity for the observability
// registry.
type TimerWheelStats struct {
	Armed    uint64 // Arm calls
	Fired    uint64 // timers whose callback ran
	Canceled uint64 // live timers removed by Cancel
	Ticks    uint64 // tick events executed
	Cascades uint64 // timers inspected but kept for a later rotation
}

// TimerWheel is a hashed timing wheel. Construct with NewTimerWheel;
// not safe for concurrent use (one wheel per event domain).
type TimerWheel struct {
	s     *Simulator
	gran  Duration
	slots []timerList
	mask  uint64

	slab []wheelTimer
	free []int32

	count  int
	cursor uint64 // absolute index of the next tick; tick time = cursor*gran
	armed  bool   // a tick event is scheduled
	stats  TimerWheelStats

	// due is the current tick's unlinked-but-unfired batch, reused
	// across ticks. Gen-tagged so a callback cancelling a later due
	// timer skips it instead of firing stale state.
	due []TimerHandle
}

// NewTimerWheel builds a wheel on s with the given slot granularity
// and slot count (rounded up to a power of two). One rotation spans
// gran*slots; timers beyond it cascade — still correct, just
// re-inspected once per rotation.
func NewTimerWheel(s *Simulator, gran Duration, slots int) *TimerWheel {
	if s == nil {
		panic("sim: timer wheel needs a simulator")
	}
	if gran <= 0 {
		panic("sim: timer wheel granularity must be positive")
	}
	if slots <= 0 {
		panic("sim: timer wheel needs slots")
	}
	n := 1
	for n < slots {
		n <<= 1
	}
	w := &TimerWheel{s: s, gran: gran, slots: make([]timerList, n), mask: uint64(n - 1)}
	for i := range w.slots {
		w.slots[i] = timerList{head: -1, tail: -1}
	}
	return w
}

// Gran returns the wheel's tick granularity.
func (w *TimerWheel) Gran() Duration { return w.gran }

// Len returns the number of armed timers.
func (w *TimerWheel) Len() int { return w.count }

// Stats returns the activity counters.
func (w *TimerWheel) Stats() TimerWheelStats { return w.stats }

// Arm schedules fn(arg) to fire at the first wheel tick at or after
// now+d (d must be positive) and returns a handle for Cancel. O(1):
// a slab allocation off the free list and a list append.
func (w *TimerWheel) Arm(d Duration, fn ArgEvent, arg Arg) TimerHandle {
	if d <= 0 {
		panic("sim: timer wheel delay must be positive")
	}
	return w.armAt(w.s.Now().Add(d), fn, arg)
}

func (w *TimerWheel) armAt(expiry Time, fn ArgEvent, arg Arg) TimerHandle {
	if fn == nil {
		panic("sim: nil timer callback")
	}
	// First tick at or after the expiry. expiry > now always (positive
	// delay), so this tick index is never behind the wheel cursor: the
	// cursor trails now by at most one granularity.
	tick := (uint64(expiry) + uint64(w.gran) - 1) / uint64(w.gran)
	if !w.armed {
		w.cursor = uint64(w.s.Now())/uint64(w.gran) + 1
		w.armed = true
		w.s.AtArgNamed(Time(w.cursor*uint64(w.gran)), "timer-wheel-tick", timerWheelTickEv, Arg{Obj: w})
	}
	i := w.alloc()
	tm := &w.slab[i]
	tm.expiry = expiry
	tm.fn = fn
	tm.arg = arg
	sl := &w.slots[tick&w.mask]
	tm.slot = int32(tick & w.mask)
	tm.next = -1
	tm.prev = sl.tail
	if sl.tail >= 0 {
		w.slab[sl.tail].next = i
	} else {
		sl.head = i
	}
	sl.tail = i
	w.count++
	w.stats.Armed++
	return handleOf(i, tm.gen)
}

// Cancel disarms the timer identified by h, reporting whether it was
// still live (armed, or unlinked by the running tick but not yet
// fired). O(1): a list unlink and a free-list push. Stale handles —
// fired, already cancelled, or zero — return false.
func (w *TimerWheel) Cancel(h TimerHandle) bool {
	i := int32(h >> 32)
	if h == 0 || int(i) >= len(w.slab) {
		return false
	}
	tm := &w.slab[i]
	if tm.gen != uint32(h) {
		return false
	}
	switch tm.slot {
	case timerFree:
		return false
	case timerPending:
		// Unlinked by the in-progress tick: count was already taken at
		// unlink; releasing bumps gen so the fire loop skips it.
		w.release(i)
	default:
		w.unlink(i)
		w.count--
		w.release(i)
	}
	w.stats.Canceled++
	return true
}

// unlink removes slab entry i from its slot list.
func (w *TimerWheel) unlink(i int32) {
	tm := &w.slab[i]
	sl := &w.slots[tm.slot]
	if tm.prev >= 0 {
		w.slab[tm.prev].next = tm.next
	} else {
		sl.head = tm.next
	}
	if tm.next >= 0 {
		w.slab[tm.next].prev = tm.prev
	} else {
		sl.tail = tm.prev
	}
}

// alloc takes a slab slot off the free list (or extends the slab —
// amortized; never in steady state once the peak population has been
// seen).
func (w *TimerWheel) alloc() int32 {
	if n := len(w.free); n > 0 {
		i := w.free[n-1]
		w.free = w.free[:n-1]
		return i
	}
	w.slab = append(w.slab, wheelTimer{gen: 1})
	return int32(len(w.slab) - 1)
}

// release recycles slab entry i: the generation bump invalidates
// every outstanding handle to it.
func (w *TimerWheel) release(i int32) {
	tm := &w.slab[i]
	tm.gen++
	if tm.gen == 0 { // keep handles non-zero after wrap
		tm.gen = 1
	}
	tm.slot = timerFree
	tm.fn = nil
	tm.arg = Arg{}
	w.free = append(w.free, i)
}

func handleOf(i int32, gen uint32) TimerHandle {
	return TimerHandle(uint64(uint32(i))<<32 | uint64(gen))
}

// timerWheelTickEv advances the wheel one slot: due timers (expiry at
// or before the tick time) are unlinked in arm order and fired;
// survivors cascade to the next rotation. The wheel reschedules its
// tick while timers remain and suspends when empty — an idle wheel
// costs the simulator nothing.
func timerWheelTickEv(s *Simulator, a Arg) {
	a.Obj.(*TimerWheel).tick(s)
}

func (w *TimerWheel) tick(s *Simulator) {
	t := Time(w.cursor * uint64(w.gran))
	sl := &w.slots[w.cursor&w.mask]
	w.stats.Ticks++

	// Phase 1: unlink the due batch. Collect-then-fire keeps the walk
	// safe against callbacks that arm into (or cancel from) this same
	// slot mid-tick.
	w.due = w.due[:0]
	for i := sl.head; i >= 0; {
		tm := &w.slab[i]
		next := tm.next
		if tm.expiry <= t {
			w.unlink(i)
			tm.slot = timerPending
			w.count--
			w.due = append(w.due, handleOf(i, tm.gen))
		} else {
			w.stats.Cascades++
		}
		i = next
	}
	// Phase 2: fire in arm order. A due timer cancelled by an earlier
	// callback in this batch has a bumped generation and is skipped.
	for _, h := range w.due {
		i := int32(h >> 32)
		tm := &w.slab[i]
		if tm.gen != uint32(h) {
			continue
		}
		fn, arg := tm.fn, tm.arg
		w.release(i)
		w.stats.Fired++
		fn(s, arg)
	}
	w.cursor++
	if w.count > 0 {
		s.AtArgNamed(Time(w.cursor*uint64(w.gran)), "timer-wheel-tick", timerWheelTickEv, Arg{Obj: w})
	} else {
		w.armed = false
	}
}
