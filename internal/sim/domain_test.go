package sim

import (
	"errors"
	"strings"
	"testing"
)

// TestEngineEpochBarriers checks the conservative epoch loop: every
// domain reaches each barrier before the flush runs, and flushed
// injections land in the destination domain at their exact timestamps.
func TestEngineEpochBarriers(t *testing.T) {
	a, b := New(), New()
	const W = 2 * Microsecond

	// Domain a produces a handoff at every 3 µs tick; the flush
	// delivers it to b at t+W, mimicking a cross-domain link.
	type handoff struct{ deliverAt Time }
	var mailbox []handoff
	var delivered []Time
	for i := 0; i < 5; i++ {
		at := Time((i + 1) * 3 * int(Microsecond))
		a.AtNamed(at, "produce", func(s *Simulator) {
			mailbox = append(mailbox, handoff{deliverAt: s.Now() + Time(W)})
		})
	}
	e := NewEngine(W, func() {
		for _, h := range mailbox {
			h := h
			b.AtNamed(h.deliverAt, "deliver", func(s *Simulator) {
				if s.Now() != h.deliverAt {
					t.Errorf("delivery ran at %v, want %v", s.Now(), h.deliverAt)
				}
				delivered = append(delivered, s.Now())
			})
		}
		mailbox = mailbox[:0]
	})
	e.AddDomain(&Domain{Name: "a", Sim: a})
	e.AddDomain(&Domain{Name: "b", Sim: b})

	if err := e.Run(Time(20*Microsecond), 0, nil); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(delivered) != 5 {
		t.Fatalf("delivered %d handoffs, want 5", len(delivered))
	}
	for i, at := range delivered {
		want := Time((i+1)*3*int(Microsecond)) + Time(W)
		if at != want {
			t.Errorf("handoff %d delivered at %v, want %v", i, at, want)
		}
	}
	if e.Now() != Time(20*Microsecond) {
		t.Errorf("engine now %v, want horizon", e.Now())
	}
	if e.Epochs() != 10 { // 20 µs / 2 µs lookahead
		t.Errorf("epochs %d, want 10", e.Epochs())
	}
}

// TestEngineIdleStopsAtCheckpoint checks that the until-idle predicate
// is consulted only at checkpoint multiples — the contract that keeps
// sharded runs stopping at exactly the same instant as the
// single-simulator 100 µs slicing loop.
func TestEngineIdleStopsAtCheckpoint(t *testing.T) {
	a := New()
	done := false
	a.AtNamed(Time(30*Microsecond), "finish", func(*Simulator) { done = true })

	var checkedAt []Time
	e := NewEngine(2*Microsecond, nil)
	e.AddDomain(&Domain{Name: "a", Sim: a})
	err := e.Run(Time(1*Millisecond), 100*Microsecond, func() bool {
		checkedAt = append(checkedAt, e.Now())
		return done
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	// Work finishes at 30 µs, so the first checkpoint (100 µs) already
	// sees the system idle; the predicate must not have been consulted
	// at any of the 2 µs epoch barriers before it.
	if len(checkedAt) != 1 || checkedAt[0] != Time(100*Microsecond) {
		t.Fatalf("idle checked at %v, want exactly [100µs]", checkedAt)
	}
	if e.Now() != Time(100*Microsecond) {
		t.Errorf("engine stopped at %v, want the 100µs checkpoint", e.Now())
	}
}

// TestEngineWatchdogAbort checks that a watchdog trip in any domain is
// caught at the next barrier (RunUntil resets the error on entry, so a
// checkpoint-only check would silently lose it) and is attributed to
// the tripping domain by name.
func TestEngineWatchdogAbort(t *testing.T) {
	a, b := New(), New()
	b.SetWatchdog(WatchdogConfig{MaxEventsPerInstant: 8})
	// A zero-delay self-rescheduling event trips the no-progress
	// detector partway through the run.
	var spin func(s *Simulator)
	spin = func(s *Simulator) { s.At(s.Now(), spin) }
	b.AtNamed(Time(5*Microsecond), "spin", spin)

	e := NewEngine(2*Microsecond, nil)
	e.AddDomain(&Domain{Name: "dut", Sim: a})
	e.AddDomain(&Domain{Name: "clients.0", Sim: b})
	err := e.Run(Time(1*Millisecond), 0, nil)
	if err == nil {
		t.Fatal("Run returned nil, want watchdog abort")
	}
	var wd *WatchdogError
	if !errors.As(err, &wd) {
		t.Fatalf("Run error %v does not wrap *WatchdogError", err)
	}
	if !strings.Contains(err.Error(), "clients.0") {
		t.Errorf("error %q does not name the tripping domain", err)
	}
	if e.Err() == nil {
		t.Error("Err() nil after aborted run")
	}
	if e.Now() >= Time(1*Millisecond) {
		t.Errorf("engine ran to horizon (%v) despite the abort", e.Now())
	}
}

// TestEnginePending sums queued events and parked external handoffs.
func TestEnginePending(t *testing.T) {
	a, b := New(), New()
	a.AtNamed(Time(Microsecond), "x", func(*Simulator) {})
	parked := 3
	e := NewEngine(Microsecond, nil)
	e.AddDomain(&Domain{Name: "a", Sim: a, PendingExternal: func() int { return parked }})
	e.AddDomain(&Domain{Name: "b", Sim: b})
	if got := e.Pending(); got != 4 {
		t.Fatalf("Pending = %d, want 4 (1 queued + 3 parked)", got)
	}
}

// TestEngineLookaheadValidation rejects a non-positive window: with
// zero lookahead a handoff could land inside the very epoch that
// produced it, after its delivery time has already passed.
func TestEngineLookaheadValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewEngine(0, nil) did not panic")
		}
	}()
	NewEngine(0, nil)
}
