// Package sim provides a deterministic discrete-event simulation kernel.
//
// Time is kept in integer picoseconds so that a 3 GHz CPU cycle (333⅓ ps)
// and cache latencies expressed in core cycles convert without rounding
// drift accumulating across billions of events. Events scheduled for the
// same instant fire in FIFO order of scheduling, which keeps runs
// reproducible regardless of map iteration or goroutine scheduling.
package sim

import (
	"container/heap"
	"fmt"
	"math"
)

// Time is an absolute simulation timestamp in picoseconds.
type Time int64

// Duration is a span of simulated time in picoseconds.
type Duration int64

// Common durations.
const (
	Picosecond  Duration = 1
	Nanosecond           = 1000 * Picosecond
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// Never is a sentinel Time later than any reachable simulation instant.
const Never Time = math.MaxInt64

// Add returns t shifted by d.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration elapsed from u to t.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Microseconds reports t as a float64 count of microseconds.
func (t Time) Microseconds() float64 { return float64(t) / float64(Microsecond) }

// Seconds reports d as a float64 count of seconds.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

// Microseconds reports d as a float64 count of microseconds.
func (d Duration) Microseconds() float64 { return float64(d) / float64(Microsecond) }

func (t Time) String() string { return fmt.Sprintf("%.3fus", t.Microseconds()) }

// Clock converts between core cycles and simulated time for a fixed
// frequency. It is shared by every component that reasons in cycles.
type Clock struct {
	freqHz int64 // e.g. 3e9
}

// NewClock returns a clock for the given frequency in Hz.
func NewClock(freqHz int64) Clock {
	if freqHz <= 0 {
		panic("sim: clock frequency must be positive")
	}
	return Clock{freqHz: freqHz}
}

// FreqHz returns the clock frequency in Hz.
func (c Clock) FreqHz() int64 { return c.freqHz }

// Cycles converts a cycle count to a duration. The conversion rounds to
// the nearest picosecond; at 3 GHz one cycle is 333 ps. The computation
// is split so that n*Second never overflows int64 even for cycle counts
// in the billions.
func (c Clock) Cycles(n int64) Duration {
	q, r := n/c.freqHz, n%c.freqHz
	whole := Duration(q * int64(Second))
	psPerCycle := int64(Second) / c.freqHz
	rem := int64(Second) % c.freqHz
	frac := Duration(r*psPerCycle + (r*rem+c.freqHz/2)/c.freqHz)
	return whole + frac
}

// ToCycles converts a duration to a (possibly fractional) cycle count.
func (c Clock) ToCycles(d Duration) float64 {
	return float64(d) * float64(c.freqHz) / float64(Second)
}

// Event is a scheduled callback. The callback receives the simulator so
// that handlers can schedule follow-up work.
type Event func(s *Simulator)

type schedEvent struct {
	at   Time
	seq  uint64 // tiebreaker: FIFO among same-time events
	fn   Event
	name string
}

type eventHeap []*schedEvent

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*schedEvent)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// Simulator owns the event queue and the current simulated time.
// The zero value is not usable; construct with New.
type Simulator struct {
	now       Time
	seq       uint64
	events    eventHeap
	processed uint64
	horizon   Time // hard stop; events beyond are not executed
	stopped   bool
}

// New returns an empty simulator positioned at time zero.
func New() *Simulator {
	return &Simulator{horizon: Never}
}

// Now returns the current simulation time.
func (s *Simulator) Now() Time { return s.now }

// Processed returns the number of events executed so far.
func (s *Simulator) Processed() uint64 { return s.processed }

// Pending returns the number of events currently queued.
func (s *Simulator) Pending() int { return len(s.events) }

// At schedules fn to run at absolute time at. Scheduling into the past
// panics: it would silently reorder causality.
func (s *Simulator) At(at Time, fn Event) {
	s.AtNamed(at, "", fn)
}

// AtNamed is At with a diagnostic label used in panic messages.
func (s *Simulator) AtNamed(at Time, name string, fn Event) {
	if at < s.now {
		panic(fmt.Sprintf("sim: event %q scheduled at %v before now %v", name, at, s.now))
	}
	if fn == nil {
		panic("sim: nil event")
	}
	s.seq++
	heap.Push(&s.events, &schedEvent{at: at, seq: s.seq, fn: fn, name: name})
}

// After schedules fn to run d after the current time.
func (s *Simulator) After(d Duration, fn Event) {
	if d < 0 {
		panic("sim: negative delay")
	}
	s.At(s.now.Add(d), fn)
}

// Every schedules fn to run at a fixed period, starting at start. The
// task reschedules itself forever; RunUntil simply leaves the next
// tick queued when it lies past the horizon, so periodic tasks survive
// segmented runs (RunUntil called repeatedly). Periodic tasks drive
// the IDIO controller's 1 µs and 8192 µs control-plane loops. A
// simulation with periodic tasks must be driven with RunUntil, not
// Run.
func (s *Simulator) Every(start Time, period Duration, fn Event) {
	if period <= 0 {
		panic("sim: non-positive period")
	}
	var tick Event
	tick = func(sm *Simulator) {
		fn(sm)
		sm.At(sm.now.Add(period), tick)
	}
	s.At(start, tick)
}

// Stop halts the run loop after the current event completes.
func (s *Simulator) Stop() { s.stopped = true }

// RunUntil executes events in timestamp order until the queue is empty
// or the next event is later than horizon. It returns the number of
// events executed.
func (s *Simulator) RunUntil(horizon Time) uint64 {
	s.horizon = horizon
	s.stopped = false
	start := s.processed
	for len(s.events) > 0 && !s.stopped {
		next := s.events[0]
		if next.at > horizon {
			break
		}
		heap.Pop(&s.events)
		s.now = next.at
		s.processed++
		next.fn(s)
	}
	// Advance the clock to the horizon even if the queue drained early,
	// so rate computations over [0, horizon] are well defined.
	if !s.stopped && s.now < horizon && horizon != Never {
		s.now = horizon
	}
	return s.processed - start
}

// Run executes until the event queue is empty.
func (s *Simulator) Run() uint64 { return s.RunUntil(Never) }
