// Package sim provides a deterministic discrete-event simulation kernel.
//
// Time is kept in integer picoseconds so that a 3 GHz CPU cycle (333⅓ ps)
// and cache latencies expressed in core cycles convert without rounding
// drift accumulating across billions of events. Events scheduled for the
// same instant fire in FIFO order of scheduling, which keeps runs
// reproducible regardless of map iteration or goroutine scheduling.
package sim

import (
	"container/heap"
	"fmt"
	"math"
)

// Time is an absolute simulation timestamp in picoseconds.
type Time int64

// Duration is a span of simulated time in picoseconds.
type Duration int64

// Common durations.
const (
	Picosecond  Duration = 1
	Nanosecond           = 1000 * Picosecond
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// Never is a sentinel Time later than any reachable simulation instant.
const Never Time = math.MaxInt64

// Add returns t shifted by d.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration elapsed from u to t.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Microseconds reports t as a float64 count of microseconds.
func (t Time) Microseconds() float64 { return float64(t) / float64(Microsecond) }

// Seconds reports d as a float64 count of seconds.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

// Microseconds reports d as a float64 count of microseconds.
func (d Duration) Microseconds() float64 { return float64(d) / float64(Microsecond) }

func (t Time) String() string { return fmt.Sprintf("%.3fus", t.Microseconds()) }

// Clock converts between core cycles and simulated time for a fixed
// frequency. It is shared by every component that reasons in cycles.
type Clock struct {
	freqHz int64 // e.g. 3e9
}

// NewClock returns a clock for the given frequency in Hz.
func NewClock(freqHz int64) Clock {
	if freqHz <= 0 {
		panic("sim: clock frequency must be positive")
	}
	return Clock{freqHz: freqHz}
}

// FreqHz returns the clock frequency in Hz.
func (c Clock) FreqHz() int64 { return c.freqHz }

// Cycles converts a cycle count to a duration. The conversion rounds to
// the nearest picosecond; at 3 GHz one cycle is 333 ps. The computation
// is split so that n*Second never overflows int64 even for cycle counts
// in the billions.
func (c Clock) Cycles(n int64) Duration {
	q, r := n/c.freqHz, n%c.freqHz
	whole := Duration(q * int64(Second))
	psPerCycle := int64(Second) / c.freqHz
	rem := int64(Second) % c.freqHz
	frac := Duration(r*psPerCycle + (r*rem+c.freqHz/2)/c.freqHz)
	return whole + frac
}

// ToCycles converts a duration to a (possibly fractional) cycle count.
func (c Clock) ToCycles(d Duration) float64 {
	return float64(d) * float64(c.freqHz) / float64(Second)
}

// Event is a scheduled callback. The callback receives the simulator so
// that handlers can schedule follow-up work.
type Event func(s *Simulator)

type schedEvent struct {
	at   Time
	seq  uint64 // tiebreaker: FIFO among same-time events
	fn   Event
	name string
}

type eventHeap []*schedEvent

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*schedEvent)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// WatchdogConfig bounds a run so that a buggy model (or an injected
// fault storm) produces a structured abort instead of a hang. Zero
// fields disable the corresponding check.
type WatchdogConfig struct {
	// MaxEventsPerInstant trips the "no-progress" detector: if more
	// than this many consecutive events execute without simulated time
	// advancing, the run is stuck in a zero-delay loop.
	MaxEventsPerInstant uint64
	// MaxPendingEvents trips the "event-storm" detector: a queue that
	// grows past this bound means events are being scheduled faster
	// than they drain (unbounded fan-out).
	MaxPendingEvents int
	// MaxProcessedEvents bounds the total events of one RunUntil call
	// (a hard budget for unattended runs).
	MaxProcessedEvents uint64
}

// DefaultWatchdogConfig returns bounds generous enough for every
// workload in this repo (the heaviest figure runs execute ~10M events
// with queues in the tens of thousands) while still catching
// zero-delay livelocks and runaway scheduling within seconds.
func DefaultWatchdogConfig() WatchdogConfig {
	return WatchdogConfig{
		MaxEventsPerInstant: 10_000_000,
		MaxPendingEvents:    50_000_000,
		MaxProcessedEvents:  0, // unbounded by default
	}
}

// WatchdogError is the structured abort produced when a watchdog
// bound is exceeded.
type WatchdogError struct {
	// Kind is "no-progress", "event-storm", or "event-budget".
	Kind string
	// At is the simulated instant the watchdog tripped.
	At Time
	// Events is the count that exceeded the bound (same-instant events
	// for no-progress, total processed for event-budget).
	Events uint64
	// Pending is the queue length at the trip point.
	Pending int
}

func (e *WatchdogError) Error() string {
	return fmt.Sprintf("sim: watchdog %s at %v (events=%d pending=%d)",
		e.Kind, e.At, e.Events, e.Pending)
}

// Simulator owns the event queue and the current simulated time.
// The zero value is not usable; construct with New.
type Simulator struct {
	now       Time
	seq       uint64
	events    eventHeap
	processed uint64
	horizon   Time // hard stop; events beyond are not executed
	stopped   bool

	wd          WatchdogConfig
	wdEnabled   bool
	wdErr       *WatchdogError
	sameInstant uint64 // consecutive events at the current instant
}

// New returns an empty simulator positioned at time zero.
func New() *Simulator {
	return &Simulator{horizon: Never}
}

// Now returns the current simulation time.
func (s *Simulator) Now() Time { return s.now }

// Processed returns the number of events executed so far.
func (s *Simulator) Processed() uint64 { return s.processed }

// Pending returns the number of events currently queued.
func (s *Simulator) Pending() int { return len(s.events) }

// At schedules fn to run at absolute time at. Scheduling into the past
// panics: it would silently reorder causality.
func (s *Simulator) At(at Time, fn Event) {
	s.AtNamed(at, "", fn)
}

// AtNamed is At with a diagnostic label used in panic messages.
func (s *Simulator) AtNamed(at Time, name string, fn Event) {
	if at < s.now {
		panic(fmt.Sprintf("sim: event %q scheduled at %v before now %v", name, at, s.now))
	}
	if fn == nil {
		panic("sim: nil event")
	}
	s.seq++
	heap.Push(&s.events, &schedEvent{at: at, seq: s.seq, fn: fn, name: name})
}

// After schedules fn to run d after the current time.
func (s *Simulator) After(d Duration, fn Event) {
	if d < 0 {
		panic("sim: negative delay")
	}
	s.At(s.now.Add(d), fn)
}

// Every schedules fn to run at a fixed period, starting at start. The
// task reschedules itself forever; RunUntil simply leaves the next
// tick queued when it lies past the horizon, so periodic tasks survive
// segmented runs (RunUntil called repeatedly). Periodic tasks drive
// the IDIO controller's 1 µs and 8192 µs control-plane loops. A
// simulation with periodic tasks must be driven with RunUntil, not
// Run.
func (s *Simulator) Every(start Time, period Duration, fn Event) {
	if period <= 0 {
		panic("sim: non-positive period")
	}
	var tick Event
	tick = func(sm *Simulator) {
		fn(sm)
		sm.At(sm.now.Add(period), tick)
	}
	s.At(start, tick)
}

// Stop halts the run loop after the current event completes.
func (s *Simulator) Stop() { s.stopped = true }

// SetWatchdog installs (or, with a zero config, removes) run-loop
// bounds. The watchdog converts hangs — zero-delay event loops,
// unbounded event fan-out — into a structured abort retrievable via
// Err after RunUntil returns.
func (s *Simulator) SetWatchdog(cfg WatchdogConfig) {
	s.wd = cfg
	s.wdEnabled = cfg.MaxEventsPerInstant > 0 || cfg.MaxPendingEvents > 0 || cfg.MaxProcessedEvents > 0
}

// Err reports the watchdog abort of the most recent run, or nil when
// the run ended normally.
func (s *Simulator) Err() error {
	if s.wdErr == nil {
		return nil // typed-nil guard: never wrap a nil *WatchdogError
	}
	return s.wdErr
}

// checkWatchdog enforces the configured bounds after one event; a trip
// records the error and stops the loop.
func (s *Simulator) checkWatchdog(start uint64) {
	if s.wd.MaxEventsPerInstant > 0 && s.sameInstant > s.wd.MaxEventsPerInstant {
		s.wdErr = &WatchdogError{Kind: "no-progress", At: s.now, Events: s.sameInstant, Pending: len(s.events)}
		s.stopped = true
		return
	}
	if s.wd.MaxPendingEvents > 0 && len(s.events) > s.wd.MaxPendingEvents {
		s.wdErr = &WatchdogError{Kind: "event-storm", At: s.now, Events: s.processed - start, Pending: len(s.events)}
		s.stopped = true
		return
	}
	if s.wd.MaxProcessedEvents > 0 && s.processed-start > s.wd.MaxProcessedEvents {
		s.wdErr = &WatchdogError{Kind: "event-budget", At: s.now, Events: s.processed - start, Pending: len(s.events)}
		s.stopped = true
	}
}

// RunUntil executes events in timestamp order until the queue is empty
// or the next event is later than horizon. It returns the number of
// events executed.
func (s *Simulator) RunUntil(horizon Time) uint64 {
	s.horizon = horizon
	s.stopped = false
	s.wdErr = nil
	start := s.processed
	for len(s.events) > 0 && !s.stopped {
		next := s.events[0]
		if next.at > horizon {
			break
		}
		heap.Pop(&s.events)
		if next.at > s.now {
			s.sameInstant = 0
		}
		s.now = next.at
		s.processed++
		s.sameInstant++
		next.fn(s)
		if s.wdEnabled {
			s.checkWatchdog(start)
		}
	}
	// Advance the clock to the horizon even if the queue drained early,
	// so rate computations over [0, horizon] are well defined.
	if !s.stopped && s.now < horizon && horizon != Never {
		s.now = horizon
	}
	return s.processed - start
}

// Run executes until the event queue is empty.
func (s *Simulator) Run() uint64 { return s.RunUntil(Never) }
