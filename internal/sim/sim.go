// Package sim provides a deterministic discrete-event simulation kernel.
//
// Time is kept in integer picoseconds so that a 3 GHz CPU cycle (333⅓ ps)
// and cache latencies expressed in core cycles convert without rounding
// drift accumulating across billions of events. Events scheduled for the
// same instant fire in FIFO order of scheduling, which keeps runs
// reproducible regardless of map iteration or goroutine scheduling.
package sim

import (
	"fmt"
	"math"
)

// Time is an absolute simulation timestamp in picoseconds.
type Time int64

// Duration is a span of simulated time in picoseconds.
type Duration int64

// Common durations.
const (
	Picosecond  Duration = 1
	Nanosecond           = 1000 * Picosecond
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// Never is a sentinel Time later than any reachable simulation instant.
const Never Time = math.MaxInt64

// Add returns t shifted by d.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration elapsed from u to t.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Microseconds reports t as a float64 count of microseconds.
func (t Time) Microseconds() float64 { return float64(t) / float64(Microsecond) }

// Seconds reports d as a float64 count of seconds.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

// Microseconds reports d as a float64 count of microseconds.
func (d Duration) Microseconds() float64 { return float64(d) / float64(Microsecond) }

func (t Time) String() string { return fmt.Sprintf("%.3fus", t.Microseconds()) }

// Clock converts between core cycles and simulated time for a fixed
// frequency. It is shared by every component that reasons in cycles.
type Clock struct {
	freqHz int64 // e.g. 3e9
}

// NewClock returns a clock for the given frequency in Hz.
func NewClock(freqHz int64) Clock {
	if freqHz <= 0 {
		panic("sim: clock frequency must be positive")
	}
	return Clock{freqHz: freqHz}
}

// FreqHz returns the clock frequency in Hz.
func (c Clock) FreqHz() int64 { return c.freqHz }

// Cycles converts a cycle count to a duration. The conversion rounds to
// the nearest picosecond; at 3 GHz one cycle is 333 ps. The computation
// is split so that n*Second never overflows int64 even for cycle counts
// in the billions.
func (c Clock) Cycles(n int64) Duration {
	q, r := n/c.freqHz, n%c.freqHz
	whole := Duration(q * int64(Second))
	psPerCycle := int64(Second) / c.freqHz
	rem := int64(Second) % c.freqHz
	frac := Duration(r*psPerCycle + (r*rem+c.freqHz/2)/c.freqHz)
	return whole + frac
}

// ToCycles converts a duration to a (possibly fractional) cycle count.
func (c Clock) ToCycles(d Duration) float64 {
	return float64(d) * float64(c.freqHz) / float64(Second)
}

// Event is a scheduled callback. The callback receives the simulator so
// that handlers can schedule follow-up work.
type Event func(s *Simulator)

// Arg is the inline payload of an argful event (see ArgEvent). Hot
// paths that would otherwise capture per-packet state in a fresh
// closure — a NIC and a TLP, a slot and a core index — put it here and
// schedule a package-level handler instead: storing pointers in the
// any fields and integers in U0/U1/I0 allocates nothing, whereas every
// capturing closure is a fresh heap object. The fields are generic on
// purpose; each scheduling site documents its own convention.
type Arg struct {
	Obj  any // primary object (component pointer)
	Obj2 any // secondary object (packet, slot, ...)
	U0   uint64
	U1   uint64
	I0   int
}

// ArgEvent is a scheduled callback carrying an inline Arg payload.
// Handlers meant for the steady-state path must be package-level
// functions (or otherwise pre-allocated), so that scheduling one is
// allocation-free.
type ArgEvent func(s *Simulator, arg Arg)

// schedEvent is one queued callback. Events are stored by value inside
// the queue's backing array (which doubles as the slab), so steady-state
// scheduling performs no per-event heap allocation. Diagnostic names
// passed to AtNamed are used at schedule time only and deliberately not
// stored — a figure run processes ~10M events and the names would cost
// 16 bytes each for a string nobody reads after the push. Exactly one
// of fn/afn is set. An argful event's payload lives in the simulator's
// arg slab, not here: heap sifts copy every element they touch, and
// keeping the element at 40 bytes instead of 88 (Arg is 56 bytes) is
// worth the one extra indexed load at dispatch.
type schedEvent struct {
	at  Time
	seq uint64 // tiebreaker: FIFO among same-time events
	fn  Event
	afn ArgEvent
	arg int32 // index into Simulator.args; valid only when afn != nil
}

// lessEv orders events by (time, scheduling order). The order is total
// (seq is unique), so any correct heap pops the exact same sequence —
// which is what keeps runs reproducible.
func lessEv(a, b schedEvent) bool {
	return a.at < b.at || (a.at == b.at && a.seq < b.seq)
}

// eventQueue is a 4-ary min-heap of schedEvent values. Compared to
// container/heap over boxed pointers this removes the per-event
// allocation, the interface{} round trips, and half the comparison
// depth: a 4-ary heap is log4(n) levels deep, and the extra sibling
// comparisons per level are cheap because all four children share one
// cache line's worth of adjacent slots.
type eventQueue []schedEvent

// push inserts e, sifting it up with a hole instead of pairwise swaps.
func (q *eventQueue) push(e schedEvent) {
	h := append(*q, e)
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) >> 2
		if !lessEv(e, h[p]) {
			break
		}
		h[i] = h[p]
		i = p
	}
	h[i] = e
	*q = h
}

// pop removes and returns the minimum event.
func (q *eventQueue) pop() schedEvent {
	h := *q
	top := h[0]
	n := len(h) - 1
	last := h[n]
	h[n] = schedEvent{} // release the closure reference for GC
	h = h[:n]
	if n > 0 {
		i := 0
		for {
			c := i<<2 + 1
			if c >= n {
				break
			}
			m := c
			end := c + 4
			if end > n {
				end = n
			}
			for k := c + 1; k < end; k++ {
				if lessEv(h[k], h[m]) {
					m = k
				}
			}
			if !lessEv(h[m], last) {
				break
			}
			h[i] = h[m]
			i = m
		}
		h[i] = last
	}
	*q = h
	return top
}

// WatchdogConfig bounds a run so that a buggy model (or an injected
// fault storm) produces a structured abort instead of a hang. Zero
// fields disable the corresponding check.
type WatchdogConfig struct {
	// MaxEventsPerInstant trips the "no-progress" detector: if more
	// than this many consecutive events execute without simulated time
	// advancing, the run is stuck in a zero-delay loop.
	MaxEventsPerInstant uint64
	// MaxPendingEvents trips the "event-storm" detector: a queue that
	// grows past this bound means events are being scheduled faster
	// than they drain (unbounded fan-out).
	MaxPendingEvents int
	// MaxProcessedEvents bounds the total events of one RunUntil call
	// (a hard budget for unattended runs).
	MaxProcessedEvents uint64
}

// DefaultWatchdogConfig returns bounds generous enough for every
// workload in this repo (the heaviest figure runs execute ~10M events
// with queues in the tens of thousands) while still catching
// zero-delay livelocks and runaway scheduling within seconds.
func DefaultWatchdogConfig() WatchdogConfig {
	return WatchdogConfig{
		MaxEventsPerInstant: 10_000_000,
		MaxPendingEvents:    50_000_000,
		MaxProcessedEvents:  0, // unbounded by default
	}
}

// WatchdogError is the structured abort produced when a watchdog
// bound is exceeded.
type WatchdogError struct {
	// Kind is "no-progress", "event-storm", or "event-budget".
	Kind string
	// At is the simulated instant the watchdog tripped.
	At Time
	// Events is the count that exceeded the bound (same-instant events
	// for no-progress, total processed for event-budget).
	Events uint64
	// Pending is the queue length at the trip point.
	Pending int
}

func (e *WatchdogError) Error() string {
	return fmt.Sprintf("sim: watchdog %s at %v (events=%d pending=%d)",
		e.Kind, e.At, e.Events, e.Pending)
}

// Simulator owns the event queues and the current simulated time.
// The zero value is not usable; construct with New.
//
// Scheduling is two-level: a time wheel (wheel.go) absorbs the dense
// short-horizon bulk — per-packet DMA, service, poll and link events —
// with O(1) insertion, while the 4-ary heap keeps sparse long-horizon
// timers and the wheel's refusals. Dispatch merges the two by
// (at, seq), so the executed sequence is identical to a single heap's.
type Simulator struct {
	now       Time
	seq       uint64
	heap      eventQueue
	wheel     timeWheel
	processed uint64
	horizon   Time // hard stop; events beyond are not executed
	stopped   bool

	// curSeq is the seq of the event currently being dispatched — the
	// anchor for the inline-continuation API (ContinueAt / YieldArg).
	curSeq uint64

	// nextEv/nextSrc cache peekEvent's answer while nextValid: fused
	// burst walks probe the scheduler head between every link
	// (ContinueAt/FuseAt), and the cache turns those probes into two
	// comparisons. enqueue keeps the cache exact (a smaller arrival
	// replaces it, tagged with the queue that accepted it); popWithin
	// invalidates it. nextSrc records where the cached minimum lives so
	// the pop needn't re-derive it: srcWheel means wheel.peek has
	// already positioned the consume cursor on it, srcWheelRaw that the
	// event was cached at enqueue time and the cursor still needs a
	// wheel.peek before popping.
	nextEv    schedEvent
	nextSrc   uint8
	nextValid bool

	wd          WatchdogConfig
	wdEnabled   bool
	wdErr       *WatchdogError
	sameInstant uint64 // consecutive events at the current instant

	// args is the payload slab for argful events: slots are handed out
	// at schedule time and recycled through argFree at dispatch, so the
	// steady state reuses a fixed working set and the heap elements stay
	// small (see schedEvent.arg).
	args    []Arg
	argFree []int32
}

// putArg stores an argful payload in the slab and returns its slot.
func (s *Simulator) putArg(a Arg) int32 {
	if n := len(s.argFree); n > 0 {
		i := s.argFree[n-1]
		s.argFree = s.argFree[:n-1]
		s.args[i] = a
		return i
	}
	s.args = append(s.args, a)
	return int32(len(s.args) - 1)
}

// takeArg removes and returns the payload in slot i, recycling the slot.
func (s *Simulator) takeArg(i int32) Arg {
	a := s.args[i]
	s.args[i] = Arg{} // release the object references for GC
	s.argFree = append(s.argFree, i)
	return a
}

// New returns an empty simulator positioned at time zero.
func New() *Simulator {
	return &Simulator{horizon: Never, wheel: newTimeWheel()}
}

// enqueue files one event into the two-level scheduler: the wheel when
// it can hold it, the heap otherwise (past-cursor, sorted-slot, or
// far-future overflow spills).
// Sources of the cached scheduler minimum (Simulator.nextSrc).
const (
	srcNone     = iota // no pending events
	srcHeap            // minimum is heap[0]
	srcWheel           // minimum is at the wheel cursor (peeked)
	srcWheelRaw        // minimum is in the wheel, cursor not yet there
)

func (s *Simulator) enqueue(e schedEvent) {
	inWheel := s.wheel.push(e)
	if !inWheel {
		s.heap.push(e)
	}
	if s.nextValid && (s.nextSrc == srcNone || lessEv(e, s.nextEv)) {
		s.nextEv = e
		if inWheel {
			s.nextSrc = srcWheelRaw
		} else {
			s.nextSrc = srcHeap
		}
	}
}

// refreshNext recomputes the cached global minimum of the two queues
// by (at, seq). The cache stays valid until the next pop; a cheaper
// arrival refreshes it in enqueue, so a valid cache is always exact.
// An enqueue-cached wheel minimum (srcWheelRaw) is safe even though
// the cursor hasn't visited it: anything smaller than it would have
// been refused by the wheel (behind the cursor) and cached from the
// heap instead. Hot callers (FuseAt, ContinueAt, popWithin) test the
// cached fields in place rather than going through peekEvent, which
// would copy the 40-byte event on every return.
func (s *Simulator) refreshNext() {
	we, wok := s.wheel.peek()
	src := srcNone
	if wok {
		src = srcWheel
	}
	if len(s.heap) > 0 && (!wok || lessEv(s.heap[0], we)) {
		we, src = s.heap[0], srcHeap
	}
	s.nextEv, s.nextSrc, s.nextValid = we, uint8(src), true
}

// peekEvent returns the global minimum without consuming it.
func (s *Simulator) peekEvent() (schedEvent, bool) {
	if !s.nextValid {
		s.refreshNext()
	}
	return s.nextEv, s.nextSrc != srcNone
}

// popWithin consumes and returns the global minimum event if its time
// is within the horizon.
func (s *Simulator) popWithin(horizon Time) (schedEvent, bool) {
	if !s.nextValid {
		s.refreshNext()
	}
	if s.nextSrc == srcNone || s.nextEv.at > horizon {
		return schedEvent{}, false
	}
	src := s.nextSrc
	s.nextValid = false
	if src == srcHeap {
		return s.heap.pop(), true
	}
	if src == srcWheelRaw {
		// Position the wheel cursor on its minimum — which is the
		// cached one, since anything smaller was diverted to the heap.
		s.wheel.peek()
	}
	return s.wheel.pop(), true
}

// Now returns the current simulation time.
func (s *Simulator) Now() Time { return s.now }

// Processed returns the number of events executed so far.
func (s *Simulator) Processed() uint64 { return s.processed }

// Pending returns the number of events currently queued.
func (s *Simulator) Pending() int { return len(s.heap) + s.wheel.count }

// At schedules fn to run at absolute time at. Scheduling into the past
// panics: it would silently reorder causality.
func (s *Simulator) At(at Time, fn Event) {
	s.AtNamed(at, "", fn)
}

// AtNamed is At with a diagnostic label used in panic messages. The
// label is consumed at schedule time only; it is not retained in the
// queue (see schedEvent), so naming events costs nothing on the hot
// path.
func (s *Simulator) AtNamed(at Time, name string, fn Event) {
	if at < s.now {
		panic(fmt.Sprintf("sim: event %q scheduled at %v before now %v", name, at, s.now))
	}
	if fn == nil {
		panic("sim: nil event")
	}
	s.seq++
	s.enqueue(schedEvent{at: at, seq: s.seq, fn: fn})
}

// After schedules fn to run d after the current time.
func (s *Simulator) After(d Duration, fn Event) {
	if d < 0 {
		panic("sim: negative delay")
	}
	s.At(s.now.Add(d), fn)
}

// AtArgNamed schedules an argful event at absolute time at. It is the
// allocation-free twin of AtNamed: fn should be a package-level
// handler and arg its inline payload, so nothing escapes to the heap.
// Ordering is shared with plain events — both draw from the same seq
// counter, so interleaving At and AtArgNamed calls preserves FIFO
// order among same-time events exactly as before.
func (s *Simulator) AtArgNamed(at Time, name string, fn ArgEvent, arg Arg) {
	if at < s.now {
		panic(fmt.Sprintf("sim: event %q scheduled at %v before now %v", name, at, s.now))
	}
	if fn == nil {
		panic("sim: nil event")
	}
	s.seq++
	s.enqueue(schedEvent{at: at, seq: s.seq, afn: fn, arg: s.putArg(arg)})
}

// ContinueAt is the inline-continuation check for fused (batched)
// events: called from inside a running event's handler, it reports
// whether that handler may keep executing inline at time t — i.e.
// whether an event re-scheduled at (t, curSeq) would be the very next
// thing the dispatch loop ran anyway. On success the clock advances to
// t and the handler continues; on failure the handler must YieldArg
// the remainder of its work and return. Because continuation is
// granted only when (t, curSeq) precedes every pending event (and t is
// within the run horizon), fusing a chain of events into one handler
// executes the exact same model actions at the exact same times and in
// the exact same total order as scheduling each link separately —
// which is what keeps fused runs byte-identical to unfused ones.
func (s *Simulator) ContinueAt(t Time) bool {
	if s.stopped || t > s.horizon {
		return false
	}
	if !s.nextValid {
		s.refreshNext()
	}
	if s.nextSrc != srcNone && (s.nextEv.at < t || (s.nextEv.at == t && s.nextEv.seq < s.curSeq)) {
		return false
	}
	if t > s.now {
		s.now = t
	}
	return true
}

// FuseAt is ContinueAt for work that would otherwise be scheduled as a
// fresh event: it reports whether an event scheduled now for time t
// would run immediately next. A fresh event's seq would exceed every
// pending seq, so ties at t defer to the pending event — the strict
// form of the ContinueAt check. On success the clock advances to t.
func (s *Simulator) FuseAt(t Time) bool {
	if s.stopped || t > s.horizon {
		return false
	}
	if !s.nextValid {
		s.refreshNext()
	}
	if s.nextSrc != srcNone && s.nextEv.at <= t {
		return false
	}
	if t > s.now {
		s.now = t
	}
	return true
}

// YieldArg re-queues the running argful event at time at, preserving
// its original ordering seq — the hand-off path when ContinueAt
// refuses. The remainder of the fused work keeps its place in the
// (at, seq) total order, so interleaving events observe the same
// schedule as if every link had been a separate event.
func (s *Simulator) YieldArg(at Time, fn ArgEvent, arg Arg) {
	if at < s.now {
		panic(fmt.Sprintf("sim: yield at %v before now %v", at, s.now))
	}
	if fn == nil {
		panic("sim: nil event")
	}
	s.enqueue(schedEvent{at: at, seq: s.curSeq, afn: fn, arg: s.putArg(arg)})
}

// AfterArg schedules an argful event d after the current time.
func (s *Simulator) AfterArg(d Duration, fn ArgEvent, arg Arg) {
	if d < 0 {
		panic("sim: negative delay")
	}
	s.AtArgNamed(s.now.Add(d), "", fn, arg)
}

// Every schedules fn to run at a fixed period, starting at start. The
// task reschedules itself forever; RunUntil simply leaves the next
// tick queued when it lies past the horizon, so periodic tasks survive
// segmented runs (RunUntil called repeatedly). Periodic tasks drive
// the IDIO controller's 1 µs and 8192 µs control-plane loops. A
// simulation with periodic tasks must be driven with RunUntil, not
// Run.
//
// One closure is allocated here and reused for every tick: each
// reschedule passes the same func value back to At, so the periodic
// steady state performs no per-tick allocation.
func (s *Simulator) Every(start Time, period Duration, fn Event) {
	if period <= 0 {
		panic("sim: non-positive period")
	}
	var tick Event
	tick = func(sm *Simulator) {
		fn(sm)
		sm.At(sm.now.Add(period), tick)
	}
	s.At(start, tick)
}

// Stop halts the run loop after the current event completes.
func (s *Simulator) Stop() { s.stopped = true }

// SetWatchdog installs (or, with a zero config, removes) run-loop
// bounds. The watchdog converts hangs — zero-delay event loops,
// unbounded event fan-out — into a structured abort retrievable via
// Err after RunUntil returns.
func (s *Simulator) SetWatchdog(cfg WatchdogConfig) {
	s.wd = cfg
	s.wdEnabled = cfg.MaxEventsPerInstant > 0 || cfg.MaxPendingEvents > 0 || cfg.MaxProcessedEvents > 0
}

// Err reports the watchdog abort of the most recent run, or nil when
// the run ended normally.
func (s *Simulator) Err() error {
	if s.wdErr == nil {
		return nil // typed-nil guard: never wrap a nil *WatchdogError
	}
	return s.wdErr
}

// checkWatchdog enforces the configured bounds after one event; a trip
// records the error and stops the loop.
func (s *Simulator) checkWatchdog(start uint64) {
	if s.wd.MaxEventsPerInstant > 0 && s.sameInstant > s.wd.MaxEventsPerInstant {
		s.wdErr = &WatchdogError{Kind: "no-progress", At: s.now, Events: s.sameInstant, Pending: s.Pending()}
		s.stopped = true
		return
	}
	if s.wd.MaxPendingEvents > 0 && s.Pending() > s.wd.MaxPendingEvents {
		s.wdErr = &WatchdogError{Kind: "event-storm", At: s.now, Events: s.processed - start, Pending: s.Pending()}
		s.stopped = true
		return
	}
	if s.wd.MaxProcessedEvents > 0 && s.processed-start > s.wd.MaxProcessedEvents {
		s.wdErr = &WatchdogError{Kind: "event-budget", At: s.now, Events: s.processed - start, Pending: s.Pending()}
		s.stopped = true
	}
}

// RunUntil executes events in timestamp order until the queue is empty
// or the next event is later than horizon. It returns the number of
// events executed.
func (s *Simulator) RunUntil(horizon Time) uint64 {
	s.horizon = horizon
	s.stopped = false
	s.wdErr = nil
	start := s.processed
	for !s.stopped {
		next, ok := s.popWithin(horizon)
		if !ok {
			break
		}
		if next.at > s.now {
			s.sameInstant = 0
		}
		s.now = next.at
		s.processed++
		s.sameInstant++
		s.curSeq = next.seq
		if next.afn != nil {
			next.afn(s, s.takeArg(next.arg))
		} else {
			next.fn(s)
		}
		if s.wdEnabled {
			s.checkWatchdog(start)
		}
	}
	// Advance the clock to the horizon even if the queue drained early,
	// so rate computations over [0, horizon] are well defined.
	if !s.stopped && s.now < horizon && horizon != Never {
		s.now = horizon
	}
	return s.processed - start
}

// Run executes until the event queue is empty.
func (s *Simulator) Run() uint64 { return s.RunUntil(Never) }
