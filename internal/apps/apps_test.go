package apps

import (
	"testing"

	idiocore "idio/internal/core"
	"idio/internal/cpu"
	"idio/internal/dram"
	"idio/internal/hier"
	"idio/internal/mem"
	"idio/internal/nic"
	"idio/internal/pcie"
	"idio/internal/pkt"
	"idio/internal/sim"
)

type ddioSink struct{ h *hier.Hierarchy }

func (s ddioSink) DMAWrite(now sim.Time, tlp pcie.WriteTLP) sim.Duration {
	return s.h.PCIeWrite(now, mem.LineAddr(tlp.LineAddr))
}

func (s ddioSink) DMARead(now sim.Time, line uint64) sim.Duration {
	return s.h.PCIeRead(now, mem.LineAddr(line))
}

type rig struct {
	s  *sim.Simulator
	h  *hier.Hierarchy
	n  *nic.NIC
	fd *nic.FlowDirector
	ly *mem.Layout
}

func newRig(t *testing.T) *rig {
	t.Helper()
	hcfg := hier.DefaultConfig(2)
	hcfg.MLCSize = 256 << 10
	hcfg.LLCSize = 768 << 10
	hcfg.DRAM = dram.DefaultConfig()
	h := hier.New(hcfg)
	ncfg := nic.DefaultConfig(2)
	ncfg.RingSize = 64
	ncfg.DescWBDelay = 100 * sim.Nanosecond
	ly := mem.NewLayout(1 << 30)
	cls := idiocore.NewClassifier(idiocore.DefaultClassifierConfig(2))
	fd := nic.NewFlowDirector(2)
	n := nic.New(ncfg, ly, ddioSink{h}, cls, fd)
	return &rig{s: sim.New(), h: h, n: n, fd: fd, ly: ly}
}

func (r *rig) startCore(t *testing.T, coreID int, app cpu.App, selfInval bool) *cpu.Core {
	t.Helper()
	cfg := cpu.DefaultConfig()
	cfg.SelfInvalidate = selfInval
	c := cpu.NewCore(coreID, cfg, sim.NewClock(3e9), r.h, []*nic.NIC{r.n}, app)
	c.Start(r.s)
	return c
}

func (r *rig) inject(t *testing.T, at sim.Time, frameLen int, srcPort uint16) {
	t.Helper()
	f, err := pkt.Build(pkt.Spec{
		SrcIP: pkt.IPv4{10, 0, 0, 1}, DstIP: pkt.IPv4{10, 0, 0, 9},
		SrcPort: srcPort, DstPort: 80, FrameLen: frameLen,
	})
	if err != nil {
		t.Fatal(err)
	}
	fields, err := pkt.Parse(f)
	if err != nil {
		t.Fatal(err)
	}
	// Pin the flow to core 0, where the tests install their app.
	r.fd.AddEPRule(fields.Tuple(), 0)
	p := &pkt.Packet{Frame: f}
	r.s.At(at, func(sm *sim.Simulator) { r.n.Receive(sm, p) })
}

func TestTouchDropTouchesWholePayload(t *testing.T) {
	r := newRig(t)
	c := r.startCore(t, 0, TouchDrop{}, false)
	r.inject(t, 0, 1514, 1)
	r.s.RunUntil(sim.Time(sim.Millisecond))
	if c.Processed != 1 {
		t.Fatalf("processed %d", c.Processed)
	}
	st := r.h.Stats()
	// 24 payload lines demanded by the core (plus nothing else on this
	// quiet system).
	demand := st.DemandL1Hit + st.DemandMLCHit + st.DemandLLCHit + st.DemandDRAM
	if demand != 24 {
		t.Fatalf("demand accesses = %d, want 24", demand)
	}
}

func TestL2FwdReadsOnlyHeaderAndTransmits(t *testing.T) {
	r := newRig(t)
	c := r.startCore(t, 0, L2Fwd{}, false)
	r.inject(t, 0, 1024, 2)
	r.s.RunUntil(sim.Time(sim.Millisecond))
	if c.Processed != 1 {
		t.Fatalf("processed %d", c.Processed)
	}
	st := r.h.Stats()
	demand := st.DemandL1Hit + st.DemandMLCHit + st.DemandLLCHit + st.DemandDRAM
	if demand != 1 {
		t.Fatalf("demand accesses = %d, want 1 (header only)", demand)
	}
	// TX happened: 16 egress line reads for the 1024B frame.
	if r.n.Stats().DMAReads != 16 {
		t.Fatalf("DMA reads = %d, want 16", r.n.Stats().DMAReads)
	}
	if r.n.Stats().TxPackets != 1 {
		t.Fatal("tx not counted")
	}
	// The slot must be recycled after TX completion.
	if r.n.Ring(0).Occupancy() != 0 {
		t.Fatal("slot not freed after TX")
	}
}

func TestL2FwdZeroCopyEgressMovesHeaderBackToLLC(t *testing.T) {
	r := newRig(t)
	r.startCore(t, 0, L2Fwd{}, false)
	r.inject(t, 0, 1024, 3)
	r.s.RunUntil(sim.Time(sim.Millisecond))
	// The header was read into the MLC and then PCIe-read on TX: Fig. 3
	// (right) — it must be back in LLC, not MLC.
	if r.h.MLCOccupancy(0) != 0 {
		t.Fatalf("MLC still holds %d lines after TX", r.h.MLCOccupancy(0))
	}
	if r.h.Stats().MLCWriteback == 0 {
		t.Fatal("egress of the MLC-resident header must count as an MLC writeback")
	}
}

func TestL2FwdWithSelfInvalidationDropsBuffersAfterTX(t *testing.T) {
	r := newRig(t)
	r.startCore(t, 0, L2Fwd{}, true)
	r.inject(t, 0, 1024, 4)
	r.s.RunUntil(sim.Time(sim.Millisecond))
	// After TX + self-invalidation nothing of the buffer remains
	// on-chip.
	if r.h.LLCOccupancyIO() != 0 {
		t.Fatalf("LLC still holds %d IO lines", r.h.LLCOccupancyIO())
	}
	if r.h.Stats().SelfInval == 0 {
		t.Fatal("self invalidation must fire")
	}
}

func TestL2FwdDropPayloadNeverTouchesPayload(t *testing.T) {
	r := newRig(t)
	c := r.startCore(t, 0, L2FwdDropPayload{}, false)
	r.inject(t, 0, 1514, 5)
	r.s.RunUntil(sim.Time(sim.Millisecond))
	if c.Processed != 1 {
		t.Fatalf("processed %d", c.Processed)
	}
	st := r.h.Stats()
	demand := st.DemandL1Hit + st.DemandMLCHit + st.DemandLLCHit + st.DemandDRAM
	if demand != 1 {
		t.Fatalf("demand accesses = %d, want 1", demand)
	}
	if r.n.Stats().DMAReads != 0 {
		t.Fatal("drop-payload app must not transmit")
	}
}

func TestCopyNFCopiesIntoAppBuffer(t *testing.T) {
	r := newRig(t)
	dst := r.ly.Alloc(64<<10, 64)
	app := &CopyNF{Dst: dst}
	c := r.startCore(t, 0, app, false)
	r.inject(t, 0, 1514, 6)
	r.s.RunUntil(sim.Time(sim.Millisecond))
	if c.Processed != 1 {
		t.Fatalf("processed %d", c.Processed)
	}
	st := r.h.Stats()
	// 24 reads + 24 writes.
	demand := st.DemandL1Hit + st.DemandMLCHit + st.DemandLLCHit + st.DemandDRAM
	if demand != 48 {
		t.Fatalf("demand accesses = %d, want 48", demand)
	}
	// Destination lines are dirty in the core's caches.
	if r.h.MLCOccupancy(0) == 0 {
		t.Fatal("copied lines must be cached")
	}
}

func TestL2FwdQueuedFullTXPath(t *testing.T) {
	r := newRig(t)
	app := &L2FwdQueued{}
	c := r.startCore(t, 0, app, false)
	r.inject(t, 0, 1024, 7)
	r.s.RunUntil(sim.Time(sim.Millisecond))
	if c.Processed != 1 {
		t.Fatalf("processed %d", c.Processed)
	}
	st := r.n.Stats()
	// Egress reads: 2 descriptor lines + 16 payload lines.
	if st.DMAReads != 18 {
		t.Fatalf("DMA reads = %d, want 18", st.DMAReads)
	}
	// Ingress writes (26 for the RX of a 1024B frame: 16 payload + 2
	// desc... RX of 1024B = 16 payload + 2 desc = 18) plus 1 TX
	// completion write-back.
	if st.DMAWrites != 19 {
		t.Fatalf("DMA writes = %d, want 19", st.DMAWrites)
	}
	if st.TxPackets != 1 {
		t.Fatal("tx not counted")
	}
	// The driver's descriptor stores went through the hierarchy: the
	// demand count includes header read + 2 descriptor writes.
	hs := r.h.Stats()
	demand := hs.DemandL1Hit + hs.DemandMLCHit + hs.DemandLLCHit + hs.DemandDRAM
	if demand != 3 {
		t.Fatalf("demand accesses = %d, want 3", demand)
	}
	// Egress ordering per Fig. 1: the NIC's descriptor fetch (PCIe
	// read) moves the CPU-dirtied descriptor lines (and the header)
	// from MLC to LLC, so the later completion write finds the line
	// LLC-resident and updates it in place.
	if hs.MLCWriteback < 3 {
		t.Fatalf("descriptor+header egress must write back from MLC: %d", hs.MLCWriteback)
	}
	if hs.DDIOUpdate != 1 {
		t.Fatalf("TX completion must update the LLC-resident descriptor in place: %d", hs.DDIOUpdate)
	}
	// RX slot recycled after completion.
	if r.n.Ring(0).Occupancy() != 0 {
		t.Fatal("RX slot not freed")
	}
	if r.n.TXRing(0).Occupancy() != 0 {
		t.Fatal("TX slot not completed")
	}
	if r.n.TXRing(0).Size() == 0 || len(r.n.TXRing(0).Slots()) == 0 {
		t.Fatal("tx ring accessors")
	}
}

func TestReallocNFDetachesAndDefers(t *testing.T) {
	r := newRig(t)
	pool := nic.NewMbufPool(128, r.ly)
	r.n.Ring(0).AttachPool(pool)
	app := &ReallocNF{DeferDelay: 50 * sim.Microsecond}
	c := r.startCore(t, 0, app, false)
	for i := 0; i < 8; i++ {
		r.inject(t, sim.Time(int64(i)*1000), 1514, uint16(i+1))
	}
	r.s.RunUntil(sim.Time(5 * sim.Millisecond))
	if c.Processed != 8 {
		t.Fatalf("processed %d", c.Processed)
	}
	if app.Stashed != 8 || app.Deferred != 8 {
		t.Fatalf("stashed %d deferred %d", app.Stashed, app.Deferred)
	}
	// Every detached buffer was returned.
	if pool.Available() != pool.Capacity() {
		t.Fatalf("pool leaked: %d of %d free", pool.Available(), pool.Capacity())
	}
	// The ring itself drained (descriptors recycled immediately).
	if r.n.Ring(0).Occupancy() != 0 {
		t.Fatal("ring not drained")
	}
	// Deferred processing touched every payload line (header read at
	// RX + 24 lines deferred per packet, with the header line re-hit).
	st := r.h.Stats()
	demand := st.DemandL1Hit + st.DemandMLCHit + st.DemandLLCHit + st.DemandDRAM
	if demand != 8*25 {
		t.Fatalf("demand accesses %d, want 200", demand)
	}
}

func TestReallocNFUsesFreshBuffers(t *testing.T) {
	// While buffers sit stashed, the NIC must write incoming packets
	// into different pool buffers (no overwrite of unprocessed data).
	r := newRig(t)
	pool := nic.NewMbufPool(16, r.ly)
	r.n.Ring(0).AttachPool(pool)
	app := &ReallocNF{DeferDelay: 4 * sim.Millisecond} // defer past injections
	r.startCore(t, 0, app, false)
	for i := 0; i < 4; i++ {
		r.inject(t, sim.Time(int64(i)*1000), 1514, uint16(i+1))
	}
	r.s.RunUntil(sim.Time(2 * sim.Millisecond))
	// 4 buffers are stashed, none deferred yet.
	if app.Stashed != 4 || app.Deferred != 0 {
		t.Fatalf("stashed %d deferred %d", app.Stashed, app.Deferred)
	}
	if pool.Available() != 16-4 {
		t.Fatalf("pool available %d, want 12", pool.Available())
	}
	r.s.RunUntil(sim.Time(20 * sim.Millisecond))
	if app.Deferred != 4 || pool.Available() != 16 {
		t.Fatalf("deferred %d, pool %d", app.Deferred, pool.Available())
	}
}

func TestReallocNFPoolExhaustionDrops(t *testing.T) {
	r := newRig(t)
	pool := nic.NewMbufPool(2, r.ly)
	r.n.Ring(0).AttachPool(pool)
	app := &ReallocNF{DeferDelay: 10 * sim.Millisecond}
	r.startCore(t, 0, app, false)
	for i := 0; i < 6; i++ {
		r.inject(t, sim.Time(int64(i)*1000), 1514, uint16(i+1))
	}
	r.s.RunUntil(sim.Time(5 * sim.Millisecond))
	if app.Stashed != 2 {
		t.Fatalf("stashed %d, want 2 (pool bounded)", app.Stashed)
	}
	if r.n.Ring(0).PoolDrops != 4 {
		t.Fatalf("pool drops %d, want 4", r.n.Ring(0).PoolDrops)
	}
	if pool.AllocFailures != 4 {
		t.Fatalf("alloc failures %d", pool.AllocFailures)
	}
}

func TestMbufPoolDoubleFreePanics(t *testing.T) {
	ly := mem.NewLayout(0x8000000)
	p := nic.NewMbufPool(2, ly)
	b, ok := p.Alloc()
	if !ok {
		t.Fatal("alloc failed")
	}
	p.Free(b)
	defer func() {
		if recover() == nil {
			t.Fatal("double free must panic")
		}
	}()
	p.Free(b)
}

func TestDetachOnFixedRingPanics(t *testing.T) {
	r := newRig(t)
	slot := &r.n.Ring(0).Slots()[0]
	defer func() {
		if recover() == nil {
			t.Fatal("DetachBuf on fixed ring must panic")
		}
	}()
	slot.DetachBuf()
}

func TestTXRingFullDrops(t *testing.T) {
	ly := mem.NewLayout(0x4000000)
	r := nic.NewTXRing(2, ly)
	if r.Produce() == nil || r.Produce() == nil {
		t.Fatal("ring should accept 2")
	}
	if r.Produce() != nil {
		t.Fatal("full ring must reject")
	}
	if r.Drops != 1 {
		t.Fatalf("drops %d", r.Drops)
	}
	r.Complete()
	if r.Produce() == nil {
		t.Fatal("completion must free a slot")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("complete past head must panic")
		}
	}()
	r.Complete()
	r.Complete()
	r.Complete()
}

func TestNATLooksUpFlowTable(t *testing.T) {
	r := newRig(t)
	table := r.ly.Alloc(64<<10, 64)
	nat := &NAT{Table: table}
	c := r.startCore(t, 0, nat, false)
	// Two packets of the same flow, one of a different flow.
	r.inject(t, 0, 200, 100)
	r.inject(t, 1000, 200, 100)
	r.inject(t, 2000, 200, 200)
	r.s.RunUntil(sim.Time(sim.Millisecond))
	if c.Processed != 3 {
		t.Fatalf("processed %d", c.Processed)
	}
	if nat.Lookups != 3 {
		t.Fatalf("lookups %d", nat.Lookups)
	}
	// Per packet: 1 header read + 1 bucket read + 1 bucket write = 3
	// accesses; the repeated flow's second bucket access hits cache.
	st := r.h.Stats()
	demand := st.DemandL1Hit + st.DemandMLCHit + st.DemandLLCHit + st.DemandDRAM
	if demand != 9 {
		t.Fatalf("demand accesses %d, want 9", demand)
	}
	if st.DemandL1Hit == 0 {
		t.Fatal("bucket write after read must hit L1; repeated flow must hit cache")
	}
}

func TestNATBucketDistribution(t *testing.T) {
	r := newRig(t)
	table := r.ly.Alloc(4<<10, 64) // 64 buckets
	nat := &NAT{Table: table}
	seen := map[mem.LineAddr]bool{}
	for port := uint16(1); port <= 128; port++ {
		tp := pkt.FiveTuple{Src: pkt.IPv4{10, 0, 0, 1}, Dst: pkt.IPv4{10, 0, 0, 2}, SrcPort: port, DstPort: 80, Proto: pkt.ProtoUDP}
		b := nat.bucketFor(tp)
		if !table.ContainsLine(b) {
			t.Fatalf("bucket %v outside table", b)
		}
		seen[b] = true
	}
	// FNV over 128 flows must spread well beyond a handful of buckets.
	if len(seen) < 32 {
		t.Fatalf("only %d distinct buckets for 128 flows", len(seen))
	}
	_ = r
}

func TestAntagonistCPIAndAccessCount(t *testing.T) {
	r := newRig(t)
	buf := r.ly.Alloc(512<<10, 64)
	a := NewLLCAntagonist(1, buf, sim.NewClock(3e9), r.h, 7)
	a.Start(r.s)
	r.s.RunUntil(sim.Time(100 * sim.Microsecond))
	if a.Accesses == 0 {
		t.Fatal("antagonist made no accesses")
	}
	cpi := a.CPI()
	if cpi <= 4 {
		t.Fatalf("CPI %.1f implausibly low (must include memory latency)", cpi)
	}
	if cpi > 1000 {
		t.Fatalf("CPI %.1f implausibly high", cpi)
	}
}

func TestAntagonistSuffersFromLLCContention(t *testing.T) {
	// Baseline: antagonist alone.
	r1 := newRig(t)
	buf1 := r1.ly.Alloc(768<<10, 64)
	solo := NewLLCAntagonist(1, buf1, sim.NewClock(3e9), r1.h, 7)
	solo.Start(r1.s)
	r1.s.RunUntil(sim.Time(2 * sim.Millisecond))

	// Contended: TouchDrop streaming on core 0.
	r2 := newRig(t)
	buf2 := r2.ly.Alloc(768<<10, 64)
	cont := NewLLCAntagonist(1, buf2, sim.NewClock(3e9), r2.h, 7)
	cont.Start(r2.s)
	r2.startCore(t, 0, TouchDrop{}, false)
	for i := 0; i < 512; i++ {
		r2.inject(t, sim.Time(int64(i)*int64(1300*sim.Nanosecond)), 1514, uint16(i%400+10))
	}
	r2.s.RunUntil(sim.Time(2 * sim.Millisecond))

	if cont.CPI() <= solo.CPI() {
		t.Fatalf("co-run CPI %.2f must exceed solo CPI %.2f", cont.CPI(), solo.CPI())
	}
}

func TestAntagonistValidation(t *testing.T) {
	r := newRig(t)
	defer func() {
		if recover() == nil {
			t.Fatal("tiny buffer must panic")
		}
	}()
	NewLLCAntagonist(0, mem.Region{Base: 0, Size: 32}, sim.NewClock(3e9), r.h, 1)
}

func TestAntagonistCPIBetweenWindows(t *testing.T) {
	r := newRig(t)
	buf := r.ly.Alloc(256<<10, 64)
	a := NewLLCAntagonist(1, buf, sim.NewClock(3e9), r.h, 3)
	a.Start(r.s)
	r.s.RunUntil(sim.Time(500 * sim.Microsecond))
	whole := a.CPIBetween(0, sim.Time(500*sim.Microsecond))
	if whole <= 0 {
		t.Fatalf("windowed CPI %v", whole)
	}
	// A window inside the run gives a comparable figure.
	mid := a.CPIBetween(sim.Time(100*sim.Microsecond), sim.Time(400*sim.Microsecond))
	if mid <= 0 {
		t.Fatalf("mid-window CPI %v", mid)
	}
	// Degenerate windows return 0.
	if a.CPIBetween(100, 100) != 0 {
		t.Fatal("empty window must be 0")
	}
	if a.CPIBetween(sim.Time(400*sim.Microsecond), sim.Time(100*sim.Microsecond)) != 0 {
		t.Fatal("inverted window must be 0")
	}
	// A window before any iteration completed returns 0.
	if got := a.CPIBetween(0, 1); got != 0 {
		t.Fatalf("pre-history window = %v", got)
	}
}

func TestAppNames(t *testing.T) {
	if (TouchDrop{}).Name() != "TouchDrop" || (L2Fwd{}).Name() != "L2Fwd" ||
		(L2FwdDropPayload{}).Name() != "L2FwdDropPayload" || (&CopyNF{}).Name() != "CopyNF" {
		t.Fatal("app names wrong")
	}
}
