// Package apps implements the workloads of Table II plus the buffer
// recycling modes of Sec. II-B:
//
//   - TouchDrop        — receive, touch every payload byte, drop
//     (deep-inspection stand-in; run-to-completion)
//   - L2Fwd            — receive, read the Ethernet header, forward the
//     packet zero-copy out of the same buffer (shallow NF)
//   - L2FwdDropPayload — the Sec. VII variant that drops the payload
//     after header processing (application class 1)
//   - CopyNF           — the Linux-stack-style M1 "copy" recycling mode:
//     copy the frame into an application buffer, release immediately
//   - LLCAntagonist    — Table II's cache-thrashing co-runner, with CPI
//     accounting
package apps

import (
	"math/rand"

	"idio/internal/cpu"
	"idio/internal/hier"
	"idio/internal/mem"
	"idio/internal/nic"
	"idio/internal/pkt"
	"idio/internal/sim"
)

// TouchDrop receives packets, touches their entire data, and drops
// them (Table II). Buffers are released at end of batch.
type TouchDrop struct{}

// Name implements cpu.App.
func (TouchDrop) Name() string { return "TouchDrop" }

// OnPacket reads every payload line through the hierarchy.
func (TouchDrop) OnPacket(env *cpu.Env, slot *nic.Slot) (sim.Duration, bool) {
	lat := env.ReadRegion(slot.PayloadRegion())
	return lat, false
}

// L2Fwd receives packets, reads the Ethernet header, and forwards the
// packet zero-copy: the same DMA buffer is handed to the NIC for TX,
// and the slot is released only after the TX DMA reads complete
// (run-to-completion with deferred release, Sec. VII).
type L2Fwd struct{}

// Name implements cpu.App.
func (L2Fwd) Name() string { return "L2Fwd" }

// OnPacket reads only the first line (all protocol headers fit in
// 64 bytes, Sec. V-A) and schedules the TX.
func (L2Fwd) OnPacket(env *cpu.Env, slot *nic.Slot) (sim.Duration, bool) {
	lat := env.Read(slot.Buf.Base.Line())
	env.TransmitAndFree(slot, slot.PayloadRegion())
	return lat, true
}

// L2FwdQueued is L2Fwd driven through the full TX descriptor ring: the
// driver writes a TX descriptor (CPU stores), the NIC fetches
// descriptor + payload over PCIe and writes back a completion. This is
// the most faithful egress model; plain L2Fwd skips the descriptor
// bookkeeping.
type L2FwdQueued struct {
	// TXDrops counts packets lost to a full TX ring.
	TXDrops uint64
}

// Name implements cpu.App.
func (f *L2FwdQueued) Name() string { return "L2FwdQueued" }

// OnPacket reads the header and pushes the packet through the TX ring.
func (f *L2FwdQueued) OnPacket(env *cpu.Env, slot *nic.Slot) (sim.Duration, bool) {
	lat := env.Read(slot.Buf.Base.Line())
	descLat, ok := env.TransmitQueuedAndFree(slot, slot.PayloadRegion())
	lat += descLat
	if !ok {
		f.TXDrops++
		return lat, false // TX full: drop and release at end of batch
	}
	return lat, true
}

// L2FwdDropPayload processes the header and drops the payload without
// ever touching it — the class-1 application of Sec. VII used to
// evaluate selective direct DRAM access.
type L2FwdDropPayload struct{}

// Name implements cpu.App.
func (L2FwdDropPayload) Name() string { return "L2FwdDropPayload" }

// OnPacket reads only the header line.
func (L2FwdDropPayload) OnPacket(env *cpu.Env, slot *nic.Slot) (sim.Duration, bool) {
	lat := env.Read(slot.Buf.Base.Line())
	return lat, false
}

// CopyNF models the M1 "copy" recycling mode of Sec. II-B: the frame
// is copied out of the DMA buffer into an application-owned region, so
// the DMA buffer is dead after the first touch.
type CopyNF struct {
	// Dst is the application buffer the frames are copied into; the
	// copy cursor wraps around it.
	Dst    mem.Region
	cursor uint64
}

// Name implements cpu.App.
func (c *CopyNF) Name() string { return "CopyNF" }

// OnPacket reads each payload line and writes it to the app buffer.
func (c *CopyNF) OnPacket(env *cpu.Env, slot *nic.Slot) (sim.Duration, bool) {
	payload := slot.PayloadRegion()
	var lat sim.Duration
	payload.Lines(func(l mem.LineAddr) {
		lat += env.Read(l)
		if c.Dst.Size > 0 {
			dst := c.Dst.Base + mem.Addr(c.cursor%c.Dst.Size)
			lat += env.Write(dst.Line())
			c.cursor += mem.LineBytes
		}
	})
	return lat, false
}

// ReallocNF implements the M2 "re-allocate" recycling mode of
// Sec. II-B, used inside the Linux kernel to avoid copies for large
// packets: on reception it reads only the header, detaches the filled
// buffer from the descriptor (stashing it for later), and immediately
// replenishes the ring — the NIC keeps writing into fresh pool
// buffers. A deferred processing loop drains the stash at its own
// pace, touching the payloads and returning buffers to the pool.
//
// The cache consequence the paper cares about: consumed buffers are
// NOT promptly overwritten by the NIC (no invalidation-on-reuse), so
// their dead cachelines linger until the deferred pass touches and
// frees them — a longer effective use distance than run-to-completion.
type ReallocNF struct {
	// DeferDelay is how long a stashed buffer waits before the
	// deferred pass processes it.
	DeferDelay sim.Duration
	// SelfInvalidate applies IDIO's invalidate-without-writeback to
	// the payload after deferred processing.
	SelfInvalidate bool

	Stashed  uint64
	Deferred uint64 // deferred-pass completions
	env      *cpu.Env
	pending  []stashEntry
	draining bool
}

type stashEntry struct {
	buf  mem.Region
	pool *nic.MbufPool
}

// Name implements cpu.App.
func (a *ReallocNF) Name() string { return "ReallocNF" }

// OnPacket reads the header, detaches and stashes the buffer, and
// releases the descriptor immediately.
func (a *ReallocNF) OnPacket(env *cpu.Env, slot *nic.Slot) (sim.Duration, bool) {
	a.env = env
	lat := env.Read(slot.Buf.Base.Line())
	payloadBytes := slot.PayloadBytes
	buf := slot.DetachBuf()
	a.pending = append(a.pending, stashEntry{
		buf:  mem.Region{Base: buf.Base, Size: uint64(payloadBytes)},
		pool: slot.Ring().Pool(),
	})
	a.Stashed++
	if !a.draining {
		a.draining = true
		delay := a.DeferDelay
		if delay <= 0 {
			delay = 10 * sim.Microsecond
		}
		env.Sim.After(delay, a.drain)
	}
	return lat, false
}

// drain processes one stashed buffer per event: touch the payload,
// optionally self-invalidate, and return the 2 KB buffer to the pool.
func (a *ReallocNF) drain(s *sim.Simulator) {
	if len(a.pending) == 0 {
		a.draining = false
		return
	}
	e := a.pending[0]
	a.pending = a.pending[1:]
	elapsed := a.env.ReadRegion(e.buf)
	if a.SelfInvalidate {
		a.env.Hier.InvalidateRegionNoWB(s.Now(), a.env.CoreID, e.buf)
	}
	e.pool.Free(mem.Region{Base: e.buf.Base, Size: mem.MbufBytes})
	a.Deferred++
	s.After(elapsed, a.drain)
}

// NAT models a stateful shallow NF (Sec. II-B names NATs and load
// balancers as header-only applications): it parses the header, looks
// up the flow in a hash table kept in application memory, updates the
// translation entry, and drops the packet. Unlike TouchDrop/L2Fwd its
// cache footprint mixes DMA buffers with application state, so the
// flow table competes with inbound data for MLC and LLC space.
type NAT struct {
	// Table is the flow-table region; each bucket is one cacheline.
	Table mem.Region
	// Lookups/Hits count table accesses (a new flow writes its entry,
	// a known flow updates it — both touch exactly one bucket line).
	Lookups uint64
}

// Name implements cpu.App.
func (n *NAT) Name() string { return "NAT" }

// OnPacket reads the header line, then reads and updates the flow's
// table bucket.
func (n *NAT) OnPacket(env *cpu.Env, slot *nic.Slot) (sim.Duration, bool) {
	lat := env.Read(slot.Buf.Base.Line())
	fields, err := pkt.Parse(slot.Pkt.Frame)
	if err != nil {
		return lat, false
	}
	n.Lookups++
	bucket := n.bucketFor(fields.Tuple())
	lat += env.Read(bucket)
	lat += env.Write(bucket)
	return lat, false
}

// bucketFor hashes a 5-tuple onto a table cacheline (FNV-1a).
func (n *NAT) bucketFor(t pkt.FiveTuple) mem.LineAddr {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	mix := func(b byte) { h = (h ^ uint64(b)) * prime }
	for _, b := range t.Src {
		mix(b)
	}
	for _, b := range t.Dst {
		mix(b)
	}
	mix(byte(t.SrcPort >> 8))
	mix(byte(t.SrcPort))
	mix(byte(t.DstPort >> 8))
	mix(byte(t.DstPort))
	mix(t.Proto)
	nLines := uint64(n.Table.Size / mem.LineBytes)
	return n.Table.Base.Line() + mem.LineAddr(h%nLines)
}

// LLCAntagonist allocates a buffer and randomly accesses its elements
// (Table II), generating LLC pressure. It runs as a free-standing
// event loop rather than a packet app and reports CPI over its
// accesses, the metric Fig. 10/12 use for isolation.
type LLCAntagonist struct {
	CoreID int
	Buf    mem.Region
	// AccessesPerIter is how many random line accesses each loop
	// iteration performs before yielding an event.
	AccessesPerIter int
	// ComputeCycles is the fixed instruction cost per access
	// (address generation etc.).
	ComputeCycles int64

	rng   *rand.Rand
	clock sim.Clock
	h     *hier.Hierarchy

	// WarmupAccesses are excluded from the CPI measurement so that
	// the cold-start transient does not skew comparisons between runs
	// of different lengths.
	WarmupAccesses uint64

	Accesses   uint64 // measured accesses (post warm-up)
	TotalTime  sim.Duration
	rawAccess  uint64
	rawTime    sim.Duration
	warmupDone bool

	// History records cumulative progress after each iteration so
	// callers can compute CPI over an arbitrary window (e.g. only
	// while a burst was being processed).
	History []CPISample
}

// CPISample is a cumulative progress point of the antagonist.
type CPISample struct {
	At       sim.Time
	Accesses uint64
	Time     sim.Duration
}

// NewLLCAntagonist builds the antagonist over the given buffer.
func NewLLCAntagonist(coreID int, buf mem.Region, clock sim.Clock, h *hier.Hierarchy, seed int64) *LLCAntagonist {
	if buf.Size < mem.LineBytes {
		panic("apps: antagonist buffer too small")
	}
	return &LLCAntagonist{
		CoreID:          coreID,
		Buf:             buf,
		AccessesPerIter: 64,
		ComputeCycles:   4,
		WarmupAccesses:  4096,
		rng:             rand.New(rand.NewSource(seed)),
		clock:           clock,
		h:               h,
	}
}

// Warmup installs the buffer into the cache hierarchy without charging
// time or polluting statistics (the paper warms caches by initialising
// the buffer before collecting stats).
func (a *LLCAntagonist) Warmup(now sim.Time) {
	a.Buf.Lines(func(l mem.LineAddr) { a.h.WarmWrite(a.CoreID, l) })
	a.warmupDone = true
}

// Start schedules the access loop.
func (a *LLCAntagonist) Start(s *sim.Simulator) {
	if !a.warmupDone {
		a.Warmup(s.Now())
	}
	s.At(s.Now(), a.iter)
}

func (a *LLCAntagonist) iter(s *sim.Simulator) {
	var elapsed sim.Duration
	nLines := int64(a.Buf.Size / mem.LineBytes)
	for i := 0; i < a.AccessesPerIter; i++ {
		l := a.Buf.Base.Line() + mem.LineAddr(a.rng.Int63n(nLines))
		elapsed += a.h.CoreRead(s.Now(), a.CoreID, l)
		elapsed += a.clock.Cycles(a.ComputeCycles)
	}
	a.rawAccess += uint64(a.AccessesPerIter)
	a.rawTime += elapsed
	if a.rawAccess > a.WarmupAccesses {
		a.Accesses += uint64(a.AccessesPerIter)
		a.TotalTime += elapsed
	}
	a.History = append(a.History, CPISample{
		At:       s.Now().Add(elapsed),
		Accesses: a.rawAccess,
		Time:     a.rawTime,
	})
	s.After(elapsed, a.iter)
}

// CPI returns average cycles per access over the run (warm-up
// excluded).
func (a *LLCAntagonist) CPI() float64 {
	if a.Accesses == 0 {
		return 0
	}
	return a.clock.ToCycles(a.TotalTime) / float64(a.Accesses)
}

// CPIBetween returns the average cycles per access over [t0, t1],
// using the nearest iteration boundaries. It returns 0 when the
// window covers no completed iterations.
func (a *LLCAntagonist) CPIBetween(t0, t1 sim.Time) float64 {
	if t1 <= t0 || len(a.History) == 0 {
		return 0
	}
	// Last sample at or before t0 (zero progress if none), and last
	// sample at or before t1.
	var lo, hi CPISample
	hiSet := false
	for _, s := range a.History {
		if s.At <= t0 {
			lo = s
		}
		if s.At <= t1 {
			hi = s
			hiSet = true
		} else {
			break
		}
	}
	if !hiSet || hi.Accesses <= lo.Accesses {
		return 0
	}
	return a.clock.ToCycles(hi.Time-lo.Time) / float64(hi.Accesses-lo.Accesses)
}
