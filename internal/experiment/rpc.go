package experiment

import (
	"fmt"

	"idio"
	"idio/internal/apps"
	idiocore "idio/internal/core"
	fnet "idio/internal/net"
	"idio/internal/sim"
	"idio/internal/traffic"
)

// RPCRow is one cell of the end-to-end RPC sweep: a policy run at one
// offered-load point (an open-loop rate or a closed-loop window),
// measured at the clients — latency from request send to response
// receive, across the full fabric → NIC → core → TX → fabric journey.
type RPCRow struct {
	Policy idiocore.Policy
	Mode   fnet.Mode
	// OfferedGbps is the aggregate open-loop offered load (0 for
	// closed mode); Window is the per-client closed-loop outstanding
	// count (0 for open mode).
	OfferedGbps float64
	Window      int

	Issued    uint64
	Responses uint64
	Timeouts  uint64
	// Drops aggregates fabric losses (tail + link-down) with DUT-side
	// ring/pool drops.
	Drops       uint64
	GoodputGbps float64
	P50US       float64
	P99US       float64
	P999US      float64
	Aborted     bool
}

// RPCOpts parameterises the sweep.
type RPCOpts struct {
	// Cores is the DUT core count; each core runs an L2Fwd NF echoing
	// requests back. Clients round-robin over the cores.
	Cores   int
	Clients int
	// Link is the per-hop link template (rate, propagation delay,
	// egress queue depth) used for client and server links alike.
	Link     fnet.LinkConfig
	FrameLen int
	// Requests is the per-client request budget for each cell.
	Requests uint64
	// LoadsGbps are the aggregate open-loop offered loads to sweep;
	// Windows are the per-client closed-loop outstanding counts.
	LoadsGbps []float64
	Windows   []int
	// Timeout bounds the per-request response wait (0 = default).
	Timeout sim.Duration
	Horizon sim.Duration
	// RingSize/MLCSize/LLCSize scale the DUT for reduced-size runs
	// (0 keeps the gem5-scale defaults).
	RingSize int
	MLCSize  int
	LLCSize  int
	// Parallelism bounds the worker pool running independent cells
	// (0 = GOMAXPROCS, 1 = serial).
	Parallelism int
}

// DefaultRPCOpts sweeps open-loop loads up to and past the two-core
// DUT's service capacity plus a ladder of closed-loop windows, with
// four clients on 100 GbE links.
func DefaultRPCOpts() RPCOpts {
	return RPCOpts{
		Cores:     2,
		Clients:   4,
		Link:      fnet.LinkConfig{RateBps: 100e9, Delay: 2 * sim.Microsecond},
		FrameLen:  1514,
		Requests:  4096,
		LoadsGbps: []float64{5, 10, 20, 30, 40, 50},
		Windows:   []int{1, 4, 16, 64},
		Horizon:   80 * sim.Millisecond,
		RingSize:  1024,
	}
}

// rpcCluster wires the sweep topology: a gem5-scale DUT running one
// L2Fwd NF per core, opts.Clients client hosts, and the fabric
// between them.
func rpcCluster(opts RPCOpts, pol idiocore.Policy) *idio.Cluster {
	ccfg := idio.DefaultClusterConfig(opts.Cores, opts.Clients)
	ccfg.ClientLink = opts.Link
	ccfg.ServerLink = opts.Link
	ccfg.Host.Policy = pol
	ccfg.Host.Hier.LLCSize = 3 << 20 // gem5 scale, as the burst figures use
	if opts.RingSize > 0 {
		ccfg.Host.NIC.RingSize = opts.RingSize
	}
	if opts.MLCSize > 0 {
		ccfg.Host.Hier.MLCSize = opts.MLCSize
	}
	if opts.LLCSize > 0 {
		ccfg.Host.Hier.LLCSize = opts.LLCSize
	}
	wd := sim.DefaultWatchdogConfig()
	ccfg.Host.Watchdog = &wd
	cl, err := idio.NewCluster(ccfg)
	if err != nil {
		panic(err)
	}
	for core := 0; core < opts.Cores; core++ {
		cl.DUT.AddNF(core, apps.L2Fwd{}, cl.DUT.DefaultFlow(core))
	}
	return cl
}

// runRPCCell runs one sweep point to completion and summarises it.
func runRPCCell(opts RPCOpts, pol idiocore.Policy, mode fnet.Mode, loadGbps float64, window int) RPCRow {
	cl := rpcCluster(opts, pol)
	for i := 0; i < opts.Clients; i++ {
		core := i % opts.Cores
		ccfg := fnet.ClientConfig{
			Mode:     mode,
			Requests: opts.Requests,
			Timeout:  opts.Timeout,
		}
		ccfg.Flow = cl.ClientFlow(i, core)
		if opts.FrameLen > 0 {
			ccfg.Flow.FrameLen = opts.FrameLen
		}
		switch mode {
		case fnet.ModeOpen:
			ccfg.RateBps = traffic.Gbps(loadGbps) / int64(opts.Clients)
		case fnet.ModeClosed:
			ccfg.Outstanding = window
		}
		cl.AddRPCClient(i, core, ccfg)
	}
	res, _ := cl.Run(idio.RunOpts{Horizon: opts.Horizon, UntilIdle: true})

	row := RPCRow{
		Policy:      pol,
		Mode:        mode,
		OfferedGbps: loadGbps,
		Window:      window,
		Drops:       res.NIC.RxDrops + res.NIC.PoolDrops + res.NIC.LinkDownDrops,
		Aborted:     res.Aborted != nil,
	}
	if f := res.Fabric; f != nil {
		for _, l := range f.Links {
			row.Drops += l.Stats.TailDrops + l.Stats.DownDrops
		}
	}
	if rpc := res.RPC; rpc != nil {
		row.Issued = rpc.Issued
		row.Responses = rpc.Responses
		row.Timeouts = rpc.Timeouts
		row.GoodputGbps = rpc.GoodputBps / 1e9
		row.P50US = rpc.P50.Microseconds()
		row.P99US = rpc.P99.Microseconds()
		row.P999US = rpc.P999.Microseconds()
	}
	return row
}

// RPC runs the latency-vs-offered-load sweep for DDIO and IDIO: every
// open-loop load point and every closed-loop window, each an
// independent cluster, fanned out over the worker pool. Row order is
// fixed (policies × loads, then policies × windows) regardless of
// parallelism.
func RPC(opts RPCOpts) []RPCRow {
	type cell struct {
		pol    idiocore.Policy
		mode   fnet.Mode
		load   float64
		window int
	}
	var cells []cell
	for _, pol := range []idiocore.Policy{idiocore.PolicyDDIO, idiocore.PolicyIDIO} {
		for _, load := range opts.LoadsGbps {
			cells = append(cells, cell{pol: pol, mode: fnet.ModeOpen, load: load})
		}
		for _, w := range opts.Windows {
			cells = append(cells, cell{pol: pol, mode: fnet.ModeClosed, window: w})
		}
	}
	return RunCells(opts.Parallelism, cells, func(c cell) RPCRow {
		return runRPCCell(opts, c.pol, c.mode, c.load, c.window)
	})
}

// RPCHeader describes the table columns.
func RPCHeader() []string {
	return []string{"policy", "mode", "offered", "issued", "resp", "timeouts", "drops", "goodputGbps", "p50us", "p99us", "p999us", "aborted"}
}

// Row renders one sweep cell. The offered column carries the swept
// axis: aggregate Gbps for open loops, window size for closed loops.
func (r RPCRow) Row() []string {
	offered := fmt.Sprintf("%.0fG", r.OfferedGbps)
	if r.Mode == fnet.ModeClosed {
		offered = fmt.Sprintf("w=%d", r.Window)
	}
	return []string{
		r.Policy.Name(),
		r.Mode.String(),
		offered,
		fmt.Sprintf("%d", r.Issued),
		fmt.Sprintf("%d", r.Responses),
		fmt.Sprintf("%d", r.Timeouts),
		fmt.Sprintf("%d", r.Drops),
		fmt.Sprintf("%.2f", r.GoodputGbps),
		fmt.Sprintf("%.2f", r.P50US),
		fmt.Sprintf("%.2f", r.P99US),
		fmt.Sprintf("%.2f", r.P999US),
		fmt.Sprintf("%t", r.Aborted),
	}
}
