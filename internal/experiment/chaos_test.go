package experiment

import (
	"bytes"
	"testing"

	"idio/internal/sim"
)

// quickChaosOpts shrinks the chaos run to CI size while keeping every
// mechanism engaged: all four fault layers, AQM, admission control,
// and retrying clients.
func quickChaosOpts() ChaosOpts {
	opts := DefaultChaosOpts()
	opts.RingSize = 256
	opts.MLCSize = 256 << 10
	opts.LLCSize = 768 << 10
	opts.Requests = 10000
	opts.Horizon = 25 * sim.Millisecond
	return opts
}

// renderChaos runs the timeline at the given parallelism and renders
// the table exactly as idiosim prints it.
func renderChaos(t *testing.T, parallelism int) []byte {
	t.Helper()
	opts := quickChaosOpts()
	opts.Parallelism = parallelism
	var buf bytes.Buffer
	if err := WriteTable(&buf, "chaos", ChaosHeader(), Rows(Chaos(opts))); err != nil {
		t.Fatalf("WriteTable: %v", err)
	}
	return buf.Bytes()
}

// TestChaosRun checks the experiment's shape and the headline claims:
// one row per timeline segment plus a recovery row per policy, fault
// phases that visibly perturb (retries fire), graceful degradation
// (sheds counted, nothing aborted), and a finite time-to-recover.
func TestChaosRun(t *testing.T) {
	opts := quickChaosOpts()
	rows := Chaos(opts)
	segs := chaosSegments(opts.Timeline)
	if want := 2 * (len(segs) + 1); len(rows) != want {
		t.Fatalf("%d rows, want %d (2 policies x %d segments + recover)", len(rows), want, len(segs))
	}
	perPolicy := map[string][]ChaosRow{}
	for _, r := range rows {
		perPolicy[r.Policy.Name()] = append(perPolicy[r.Policy.Name()], r)
	}
	for pol, rs := range perPolicy {
		if rs[0].Phase != "pre" {
			t.Errorf("%s: first row is %q, want pre", pol, rs[0].Phase)
		}
		last := rs[len(rs)-1]
		if last.Phase != "recover" {
			t.Errorf("%s: last row is %q, want recover", pol, last.Phase)
		}
		if last.TTRUS < 0 {
			t.Errorf("%s: never recovered (TTR %v) after transient faults", pol, last.TTRUS)
		}
		var retries, sheds uint64
		for _, r := range rs {
			retries += r.Retries
			sheds += r.Sheds
			if r.Phase != "recover" && r.TTRUS != -1 {
				t.Errorf("%s %s: TTR %v set outside the recover row", pol, r.Phase, r.TTRUS)
			}
		}
		if retries == 0 {
			t.Errorf("%s: timeline never provoked a retry", pol)
		}
		if sheds == 0 {
			t.Errorf("%s: AQM/admission never shed under the timeline", pol)
		}
		// The pre-fault baseline must be calm: no retries before the
		// first phase.
		if rs[0].Retries != 0 {
			t.Errorf("%s: %d retries in the pre-fault baseline", pol, rs[0].Retries)
		}
	}
}

// TestChaosParallelismInvariance: the rendered chaos table is
// byte-identical whether the two policy cells run serially or fanned
// out — the -j1 vs -j8 determinism gate.
func TestChaosParallelismInvariance(t *testing.T) {
	serial := renderChaos(t, 1)
	fanned := renderChaos(t, 8)
	if !bytes.Equal(serial, fanned) {
		t.Fatalf("-j1 and -j8 chaos tables differ:\n--- j1 ---\n%s\n--- j8 ---\n%s", serial, fanned)
	}
}

// TestChaosSegmentLabels pins the segment-slicing logic: boundaries at
// every phase edge, "pre" before the first fault, "calm" gaps, and
// overlapping phases joined with "+".
func TestChaosSegmentLabels(t *testing.T) {
	tl := DefaultChaosOpts().Timeline
	segs := chaosSegments(tl)
	labels := make([]string, len(segs))
	for i, s := range segs {
		labels[i] = s.label
	}
	want := []string{"pre", "fabric/degrade", "calm", "nic/dma-stall", "calm", "dram/spike", "calm", "core/stall"}
	if len(labels) != len(want) {
		t.Fatalf("labels %v, want %v", labels, want)
	}
	for i := range want {
		if labels[i] != want[i] {
			t.Fatalf("segment %d labelled %q, want %q (%v)", i, labels[i], want[i], labels)
		}
	}
	if segs[0].start != 0 || segs[len(segs)-1].end != sim.Time(5300*sim.Microsecond) {
		t.Fatalf("segment span [%v, %v], want [0, 5.3ms]", segs[0].start, segs[len(segs)-1].end)
	}
}
