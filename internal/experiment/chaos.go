package experiment

import (
	"fmt"
	"sort"
	"strings"

	"idio"
	"idio/internal/apps"
	idiocore "idio/internal/core"
	"idio/internal/fault"
	fnet "idio/internal/net"
	"idio/internal/sim"
	"idio/internal/stats"
)

// ChaosRow is one phase of the chaos-and-recovery run for one policy:
// the RPC workload's behaviour while a scheduled fault was (or was
// not) active, measured at the clients. The final "recover" row
// carries the time-to-recover: how long after the last fault cleared
// the windowed p99 first returned within epsilon of the pre-fault
// baseline.
type ChaosRow struct {
	Policy idiocore.Policy
	// Phase labels the timeline segment: "pre", the active fault's
	// layer/kind, "calm" between faults, or "recover".
	Phase   string
	StartMS float64
	DurMS   float64

	Responses   uint64
	GoodputGbps float64
	P99US       float64
	P999US      float64
	// Retries counts backoff retransmissions issued during the phase;
	// Sheds counts load intentionally dropped by the AQM and the DUT
	// admission watermark.
	Retries uint64
	Sheds   uint64
	// TTRUS is set on the "recover" row only: microseconds from the
	// last fault clearing to the end of the first recovered window
	// (-1 elsewhere, and when recovery was never observed).
	TTRUS float64
}

// ChaosOpts parameterises the chaos experiment.
type ChaosOpts struct {
	// Cores is the DUT core count (one echoing L2Fwd NF per core);
	// Clients closed-loop RPC clients round-robin over them.
	Cores   int
	Clients int
	// Link is the per-hop fabric link template; AQMTarget/AQMInterval
	// within it enable CoDel-style shedding on every hop.
	Link     fnet.LinkConfig
	FrameLen int
	// Requests is the per-client budget; Window the per-client
	// closed-loop outstanding count.
	Requests uint64
	Window   int
	// Timeout bounds the per-attempt response wait.
	Timeout sim.Duration
	// Retry is the clients' backoff discipline; client i is seeded
	// Retry.Seed+i so retries do not phase-lock.
	Retry fnet.RetryConfig
	// AdmissionWatermark enables DUT load-shedding at this RX-ring
	// occupancy (0 disables).
	AdmissionWatermark int
	// Timeline is the scripted fault schedule. It should leave an
	// unfaulted warmup before the first phase: that span is the
	// recovery baseline.
	Timeline []fault.Phase
	// RecoverWindow is the width of the post-fault measurement windows;
	// recovery is declared at the first window whose p99 is within
	// Epsilon (relative) of the pre-fault baseline p99, checking at
	// most MaxRecoverWindows windows.
	RecoverWindow     sim.Duration
	MaxRecoverWindows int
	Epsilon           float64
	Horizon           sim.Duration
	// RingSize/MLCSize/LLCSize scale the DUT (0 = defaults).
	RingSize int
	MLCSize  int
	LLCSize  int
	// Parallelism bounds the worker pool (0 = GOMAXPROCS, 1 = serial).
	Parallelism int
}

// DefaultChaosOpts scripts three transient faults against a two-core
// DUT under steady closed-loop load: a 4x bandwidth degradation of the
// server downlink, a NIC DMA stall, and a DRAM latency spike, with
// AQM, admission control, and client backoff all engaged.
func DefaultChaosOpts() ChaosOpts {
	return ChaosOpts{
		Cores:   2,
		Clients: 2,
		Link: fnet.LinkConfig{
			RateBps:     100e9,
			Delay:       2 * sim.Microsecond,
			AQMTarget:   20 * sim.Microsecond,
			AQMInterval: 100 * sim.Microsecond,
		},
		FrameLen: 1514,
		Requests: 20000,
		Window:   32,
		Timeout:  200 * sim.Microsecond,
		Retry: fnet.RetryConfig{
			MaxRetries: 3,
			Backoff:    50 * sim.Microsecond,
			MaxBackoff: 400 * sim.Microsecond,
			JitterFrac: 0.25,
			Seed:       42,
		},
		AdmissionWatermark: 48,
		Timeline: []fault.Phase{
			{Layer: "fabric", Kind: "degrade", Start: sim.Time(1 * sim.Millisecond), Duration: 1 * sim.Millisecond, Magnitude: 0.02, Target: 0},
			{Layer: "nic", Kind: "dma-stall", Start: sim.Time(3 * sim.Millisecond), Duration: 300 * sim.Microsecond, Target: 0},
			{Layer: "dram", Kind: "spike", Start: sim.Time(4 * sim.Millisecond), Duration: 500 * sim.Microsecond, Magnitude: 2000},
			{Layer: "core", Kind: "stall", Start: sim.Time(5 * sim.Millisecond), Duration: 300 * sim.Microsecond, Target: 0},
		},
		RecoverWindow:     250 * sim.Microsecond,
		MaxRecoverWindows: 40,
		Epsilon:           0.5,
		Horizon:           40 * sim.Millisecond,
		RingSize:          1024,
	}
}

// chaosSegment is one statically-known timeline span.
type chaosSegment struct {
	label      string
	start, end sim.Time
}

// chaosSegments cuts [0, end-of-last-fault] at every phase boundary
// and labels each span by the fault(s) active in it.
func chaosSegments(tl []fault.Phase) []chaosSegment {
	bset := map[sim.Time]bool{0: true}
	for _, p := range tl {
		bset[p.Start] = true
		bset[p.Start.Add(p.Duration)] = true
	}
	times := make([]sim.Time, 0, len(bset))
	for t := range bset {
		times = append(times, t)
	}
	sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
	segs := make([]chaosSegment, 0, len(times)-1)
	for i := 0; i+1 < len(times); i++ {
		seg := chaosSegment{start: times[i], end: times[i+1]}
		var active []string
		for _, p := range tl {
			if p.Start <= seg.start && seg.start < p.Start.Add(p.Duration) {
				active = append(active, p.Layer+"/"+p.Kind)
			}
		}
		switch {
		case len(active) > 0:
			seg.label = strings.Join(active, "+")
		case i == 0:
			seg.label = "pre"
		default:
			seg.label = "calm"
		}
		segs = append(segs, seg)
	}
	return segs
}

// chaosSnap is one cumulative-counter + window-histogram snapshot.
type chaosSnap struct {
	at       sim.Time
	resp     uint64
	rxBytes  uint64
	retries  uint64
	sheds    uint64
	count    uint64
	p99      sim.Duration
	p999     sim.Duration
}

// chaosProbe samples the live cluster at phase boundaries and recovery
// windows, resetting the shared window histogram at every cut so each
// span's percentiles cover that span alone.
type chaosProbe struct {
	cl   *idio.Cluster
	hist *stats.Histogram
}

func (pr *chaosProbe) snap(at sim.Time) chaosSnap {
	s := chaosSnap{at: at, count: pr.hist.Count()}
	if s.count > 0 {
		s.p99 = pr.hist.Quantile(0.99)
		s.p999 = pr.hist.Quantile(0.999)
	}
	for _, c := range pr.cl.Clients {
		st := c.Stats()
		s.resp += st.Responses
		s.retries += st.Retries
		s.rxBytes += c.RxBytes()
	}
	for _, port := range pr.cl.DUT.Ports() {
		s.sheds += port.Stats().AdmissionDrops
	}
	links := []*fnet.Link{pr.cl.ServerDown, pr.cl.ServerUp}
	links = append(links, pr.cl.ClientUp...)
	for _, l := range pr.cl.ClientDown {
		if l != nil {
			links = append(links, l)
		}
	}
	for _, l := range links {
		s.sheds += l.Stats().AQMDrops
	}
	return s
}

// cut snapshots the current span and starts the next one.
func (pr *chaosProbe) cut(at sim.Time, out *[]chaosSnap) {
	*out = append(*out, pr.snap(at))
	pr.hist.Reset()
}

// row derives the phase row spanning prev → cur.
func chaosRowFrom(pol idiocore.Policy, label string, prev, cur chaosSnap) ChaosRow {
	row := ChaosRow{
		Policy:    pol,
		Phase:     label,
		StartMS:   float64(prev.at) / float64(sim.Millisecond),
		DurMS:     float64(cur.at.Sub(sim.Time(prev.at))) / float64(sim.Millisecond),
		Responses: cur.resp - prev.resp,
		Retries:   cur.retries - prev.retries,
		Sheds:     cur.sheds - prev.sheds,
		P99US:     cur.p99.Microseconds(),
		P999US:    cur.p999.Microseconds(),
		TTRUS:     -1,
	}
	if span := cur.at.Sub(prev.at); span > 0 {
		row.GoodputGbps = float64(cur.rxBytes-prev.rxBytes) * 8 * float64(sim.Second) / float64(span) / 1e9
	}
	return row
}

// runChaosCell runs the scripted timeline against one policy and
// reports one row per timeline segment plus the recovery row.
func runChaosCell(opts ChaosOpts, pol idiocore.Policy) []ChaosRow {
	ccfg := idio.DefaultClusterConfig(opts.Cores, opts.Clients)
	ccfg.ClientLink = opts.Link
	ccfg.ServerLink = opts.Link
	ccfg.Host.Policy = pol
	ccfg.Host.Hier.LLCSize = 3 << 20
	if opts.RingSize > 0 {
		ccfg.Host.NIC.RingSize = opts.RingSize
	}
	if opts.MLCSize > 0 {
		ccfg.Host.Hier.MLCSize = opts.MLCSize
	}
	if opts.LLCSize > 0 {
		ccfg.Host.Hier.LLCSize = opts.LLCSize
	}
	ccfg.Host.NIC.AdmissionWatermark = opts.AdmissionWatermark
	ccfg.Host.Faults = &fault.Config{Timeline: opts.Timeline}
	wd := sim.DefaultWatchdogConfig()
	ccfg.Host.Watchdog = &wd
	cl, err := idio.NewCluster(ccfg)
	if err != nil {
		panic(err)
	}
	for core := 0; core < opts.Cores; core++ {
		cl.DUT.AddNF(core, apps.L2Fwd{}, cl.DUT.DefaultFlow(core))
	}

	probe := &chaosProbe{cl: cl, hist: stats.NewHistogram(5)}
	for i := 0; i < opts.Clients; i++ {
		core := i % opts.Cores
		retry := opts.Retry
		retry.Seed += int64(i)
		ccfg := fnet.ClientConfig{
			Mode:        fnet.ModeClosed,
			Outstanding: opts.Window,
			Requests:    opts.Requests,
			Timeout:     opts.Timeout,
			Hist:        probe.hist,
			Retry:       &retry,
		}
		ccfg.Flow = cl.ClientFlow(i, core)
		if opts.FrameLen > 0 {
			ccfg.Flow.FrameLen = opts.FrameLen
		}
		cl.AddRPCClient(i, core, ccfg)
	}

	// Phase-boundary cuts end each timeline segment; the series of
	// snapshots turns into per-phase rows after the run.
	segs := chaosSegments(opts.Timeline)
	var cuts []chaosSnap
	for _, seg := range segs {
		end := seg.end
		cl.Sim.AtNamed(end, "chaos-cut", func(sm *sim.Simulator) {
			probe.cut(sm.Now(), &cuts)
		})
	}

	// Recovery windows: after the last fault clears, keep cutting every
	// RecoverWindow until the windowed p99 returns within epsilon of
	// the pre-fault baseline (cuts[0], the "pre" segment).
	faultEnd := segs[len(segs)-1].end
	var windows []chaosSnap
	recoveredAt := sim.Time(-1)
	var recoverEv func(sm *sim.Simulator)
	recoverEv = func(sm *sim.Simulator) {
		w := probe.snap(sm.Now())
		windows = append(windows, w)
		probe.hist.Reset()
		base := cuts[0].p99
		limit := base + sim.Duration(float64(base)*opts.Epsilon)
		if w.count > 0 && base > 0 && w.p99 <= limit {
			recoveredAt = sm.Now()
			return
		}
		if len(windows) >= opts.MaxRecoverWindows {
			return
		}
		for _, c := range cl.Clients {
			if c.Done() {
				return
			}
		}
		sm.After(opts.RecoverWindow, recoverEv)
	}
	cl.Sim.AtNamed(faultEnd.Add(opts.RecoverWindow), "chaos-recover", recoverEv)

	// Mirror the recovery verdict into the obs registry so metric CSV /
	// JSON outputs of chaos runs carry it alongside the shed and retry
	// counters the components register themselves.
	reg := cl.DUT.Observe().Registry()
	reg.GaugeFunc("chaos.ttr_us", func() float64 {
		if recoveredAt < 0 {
			return -1
		}
		return sim.Duration(recoveredAt.Sub(faultEnd)).Microseconds()
	})
	reg.GaugeFunc("chaos.timeline_segments", func() float64 { return float64(len(segs)) })

	cl.Run(idio.RunOpts{Horizon: opts.Horizon, UntilIdle: true})

	rows := make([]ChaosRow, 0, len(segs)+1)
	prev := chaosSnap{}
	for i, seg := range segs {
		if i >= len(cuts) {
			break
		}
		rows = append(rows, chaosRowFrom(pol, seg.label, prev, cuts[i]))
		prev = cuts[i]
	}
	// The recover row spans from the last fault clearing to the first
	// recovered window (percentiles are that window's); TTR is its
	// duration. Unrecovered runs report the full observed span, TTR -1.
	if len(windows) > 0 {
		last := windows[len(windows)-1]
		row := chaosRowFrom(pol, "recover", prev, last)
		row.P99US = last.p99.Microseconds()
		row.P999US = last.p999.Microseconds()
		if recoveredAt >= 0 {
			row.TTRUS = sim.Duration(recoveredAt.Sub(faultEnd)).Microseconds()
		}
		rows = append(rows, row)
	}
	return rows
}

// Chaos runs the scripted fault timeline for DDIO and IDIO, each an
// independent cluster, fanned out over the worker pool. Row order is
// fixed (policy-major, timeline order) regardless of parallelism.
func Chaos(opts ChaosOpts) []ChaosRow {
	policies := []idiocore.Policy{idiocore.PolicyDDIO, idiocore.PolicyIDIO}
	per := RunCells(opts.Parallelism, policies, func(pol idiocore.Policy) []ChaosRow {
		return runChaosCell(opts, pol)
	})
	var rows []ChaosRow
	for _, rs := range per {
		rows = append(rows, rs...)
	}
	return rows
}

// ChaosHeader describes the table columns.
func ChaosHeader() []string {
	return []string{"policy", "phase", "startms", "durms", "resp", "goodputGbps", "p99us", "p999us", "retries", "sheds", "ttrus"}
}

// Row renders one phase row.
func (r ChaosRow) Row() []string {
	ttr := "-"
	if r.Phase == "recover" {
		if r.TTRUS >= 0 {
			ttr = fmt.Sprintf("%.1f", r.TTRUS)
		} else {
			ttr = "inf"
		}
	}
	return []string{
		r.Policy.Name(),
		r.Phase,
		fmt.Sprintf("%.2f", r.StartMS),
		fmt.Sprintf("%.2f", r.DurMS),
		fmt.Sprintf("%d", r.Responses),
		fmt.Sprintf("%.2f", r.GoodputGbps),
		fmt.Sprintf("%.2f", r.P99US),
		fmt.Sprintf("%.2f", r.P999US),
		fmt.Sprintf("%d", r.Retries),
		fmt.Sprintf("%d", r.Sheds),
		ttr,
	}
}
