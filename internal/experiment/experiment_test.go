package experiment

import (
	"bytes"
	"strconv"
	"strings"
	"testing"

	idiocore "idio/internal/core"
	"idio/internal/sim"
	"idio/internal/stats"
)

// Small-scale variants of each figure keep test runtime low while
// preserving the physics (capacity ratios are scaled together).

func TestFig9SmallShapes(t *testing.T) {
	opts := Fig9Opts{
		RingSize: 256,
		Rates:    []float64{100, 25},
		Policies: []idiocore.Policy{idiocore.PolicyDDIO, idiocore.PolicyInvalidate, idiocore.PolicyIDIO},
		Horizon:  9 * sim.Millisecond,
		MLCSize:  256 << 10,
		LLCSize:  768 << 10,
	}
	cells := Fig9(opts)
	if len(cells) != 6 {
		t.Fatalf("cells = %d", len(cells))
	}
	byKey := map[string]Fig9Cell{}
	for _, c := range cells {
		byKey[c.Policy.Name()+"@"+itoa(int(c.RateGbps))] = c
		if c.Summary.Processed == 0 {
			t.Fatalf("%s@%v processed nothing", c.Policy.Name(), c.RateGbps)
		}
		if c.Summary.Drops != 0 {
			t.Fatalf("burst sized to ring must not drop: %s@%v dropped %d",
				c.Policy.Name(), c.RateGbps, c.Summary.Drops)
		}
	}
	// Headline claims at each rate: IDIO reduces MLC and LLC
	// writebacks relative to DDIO.
	for _, rate := range []int{100, 25} {
		ddio := byKey["DDIO@"+itoa(rate)].Summary
		idio := byKey["IDIO@"+itoa(rate)].Summary
		if idio.MLCWB >= ddio.MLCWB {
			t.Errorf("@%dG: IDIO MLC WB %d !< DDIO %d", rate, idio.MLCWB, ddio.MLCWB)
		}
		if idio.LLCWB >= ddio.LLCWB {
			t.Errorf("@%dG: IDIO LLC WB %d !< DDIO %d", rate, idio.LLCWB, ddio.LLCWB)
		}
		if idio.ExeTimeUS > ddio.ExeTimeUS {
			t.Errorf("@%dG: IDIO exe %v > DDIO %v", rate, idio.ExeTimeUS, ddio.ExeTimeUS)
		}
		// Invalidate alone eliminates (almost all) MLC writebacks but
		// not the DMA-phase LLC leaks at 100G (Fig. 9c).
		inv := byKey["Invalidate@"+itoa(rate)].Summary
		if inv.MLCWB*10 > ddio.MLCWB {
			t.Errorf("@%dG: Invalidate MLC WB %d not <<%d", rate, inv.MLCWB, ddio.MLCWB)
		}
	}
	// Timelines recorded.
	if byKey["DDIO@100"].MLCWB.Points == nil {
		t.Error("timeline series missing")
	}
}

func TestFig10SmallNormalization(t *testing.T) {
	opts := Fig10Opts{RingSize: 256, Rates: []float64{25}, Horizon: 9 * sim.Millisecond, CoRun: false, MLCSize: 256 << 10, LLCSize: 768 << 10}
	rows := Fig10(opts)
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.NormMLCWB > 1 {
			t.Errorf("%s: normalized MLC WB %.2f > 1", r.Config, r.NormMLCWB)
		}
		if r.NormExeTime > 1.001 {
			t.Errorf("%s: normalized exe %.2f > 1", r.Config, r.NormExeTime)
		}
	}
}

func TestFig11SmallShapes(t *testing.T) {
	opts := Fig11Opts{RingSize: 256, FrameLen: 1024, BurstGbps: 25, Horizon: 9 * sim.Millisecond}
	res := Fig11(opts)
	// Shallow NF: DDIO leaves the payload in LLC; IDIO cuts LLC WBs.
	if res.IDIO.Summary.LLCWB >= res.DDIO.Summary.LLCWB && res.DDIO.Summary.LLCWB > 0 {
		t.Errorf("IDIO LLC WB %d !< DDIO %d", res.IDIO.Summary.LLCWB, res.DDIO.Summary.LLCWB)
	}
	if res.DDIO.Summary.Processed == 0 || res.IDIO.Summary.Processed == 0 {
		t.Fatal("L2Fwd processed nothing")
	}
	// Direct-DRAM variant: payload goes to DRAM, so DRAM write
	// bandwidth approaches RX bandwidth (headers still go on-chip).
	dd := res.DirectDRAM
	if dd.Summary.Processed == 0 {
		t.Fatal("direct-DRAM variant processed nothing")
	}
	if dd.DRAMWriteGbps < dd.RxGbps*0.7 {
		t.Errorf("direct-DRAM write BW %.2f not ~ RX %.2f", dd.DRAMWriteGbps, dd.RxGbps)
	}
	if dd.Summary.DRAMWrites == 0 {
		t.Error("class-1 payload must be written to DRAM")
	}
}

func TestFig12SmallShapes(t *testing.T) {
	opts := Fig12Opts{RingSize: 256, Rates: []float64{25}, Horizon: 9 * sim.Millisecond}
	rows := Fig12(opts)
	// 1 rate x (solo DDIO ref, solo IDIO, corun DDIO, corun IDIO).
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	var soloDDIO, soloIDIO Fig12Row
	for _, r := range rows {
		if !r.CoRun && r.Policy == "DDIO" {
			soloDDIO = r
		}
		if !r.CoRun && r.Policy == "IDIO" {
			soloIDIO = r
		}
	}
	if soloDDIO.NormP99 != 1 {
		t.Fatalf("reference row p99 = %v", soloDDIO.NormP99)
	}
	if soloIDIO.NormP99 >= 1 {
		t.Errorf("IDIO p99 %.3f !< 1", soloIDIO.NormP99)
	}
}

func TestFig13SmallShapes(t *testing.T) {
	opts := Fig13Opts{RingSize: 256, Gbps: 10, Packets: 1024, Horizon: 10 * sim.Millisecond, MLCSize: 256 << 10, LLCSize: 768 << 10}
	res := Fig13(opts)
	if res.DDIO.Summary.Processed == 0 || res.IDIO.Summary.Processed == 0 {
		t.Fatal("steady run processed nothing")
	}
	// Steady traffic: DDIO shows consistent MLC writebacks; IDIO
	// removes (nearly all of) them (Fig. 13).
	if res.DDIO.Summary.MLCWB == 0 {
		t.Fatal("DDIO steady run must produce MLC writebacks")
	}
	if res.IDIO.Summary.MLCWB*10 > res.DDIO.Summary.MLCWB {
		t.Errorf("IDIO steady MLC WB %d not << DDIO %d",
			res.IDIO.Summary.MLCWB, res.DDIO.Summary.MLCWB)
	}
}

func TestFig14SmallSweep(t *testing.T) {
	opts := Fig14Opts{RingSize: 256, RateGbps: 100, THRs: []uint64{10, 50, 100}, Horizon: 9 * sim.Millisecond, MLCSize: 256 << 10, LLCSize: 768 << 10}
	rows := Fig14(opts)
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Insensitivity claim: every threshold value improves on DDIO.
	for _, r := range rows {
		if r.NormMLCWB >= 1 {
			t.Errorf("thr %d: normalized MLC WB %.2f >= 1", r.THRMTPS, r.NormMLCWB)
		}
		if r.NormExeTime >= 1.05 {
			t.Errorf("thr %d: normalized exe %.2f", r.THRMTPS, r.NormExeTime)
		}
	}
}

func TestFig4SmallSweep(t *testing.T) {
	opts := Fig4Opts{
		Rings:       []int{64, 512},
		Loads:       map[string]float64{"med": 2, "high": 8},
		RingCycles:  5,
		OneWayRings: []int{512},
		MLCSize:     256 << 10,
		LLCSize:     768 << 10,
	}
	rows := Fig4(opts)
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	get := func(ring int, load string, oneWay bool) Fig4Row {
		for _, r := range rows {
			if r.Ring == ring && r.Load == load && r.OneWay == oneWay {
				return r
			}
		}
		t.Fatalf("row %d/%s/%v missing", ring, load, oneWay)
		return Fig4Row{}
	}
	// Observation 2: small rings are invalidation-dominated; large
	// rings writeback-dominated.
	small := get(64, "high", false)
	large := get(512, "high", false)
	if small.NormMLCWB > 0.4 {
		t.Errorf("ring 64 MLC WB/RX = %.2f, want low", small.NormMLCWB)
	}
	if small.NormMLCInval < 0.6 {
		t.Errorf("ring 64 inval/RX = %.2f, want high", small.NormMLCInval)
	}
	if large.NormMLCWB < 0.65 {
		t.Errorf("ring 512 MLC WB/RX = %.2f, want ~1", large.NormMLCWB)
	}
	// Observation 3 (DMA bloating): way-partitioning forces DRAM
	// writes that the unpartitioned LLC absorbed.
	oneWay := get(512, "high", true)
	if oneWay.DRAMWriteGbps <= large.DRAMWriteGbps {
		t.Errorf("_1way DRAM wr %.2f !> full %.2f", oneWay.DRAMWriteGbps, large.DRAMWriteGbps)
	}
}

func TestFig5SmallTimeline(t *testing.T) {
	opts := Fig5Opts{RingSize: 256, NumBursts: 2, BurstGbps: 25, Horizon: 25 * sim.Millisecond, MLCSize: 256 << 10, LLCSize: 768 << 10}
	res := Fig5(opts)
	if res.Processed == 0 {
		t.Fatal("nothing processed")
	}
	if res.TotalMLCWB == 0 || res.TotalLLCWB == 0 {
		t.Fatalf("burst run must produce writebacks: mlc=%d llc=%d", res.TotalMLCWB, res.TotalLLCWB)
	}
	// The second burst (at 10 ms) must show activity in the timeline.
	foundLate := false
	for _, p := range res.MLCWB.Points {
		if p.TimeUS > 10000 && p.MTPS > 0 {
			foundLate = true
			break
		}
	}
	if !foundLate {
		t.Error("no writeback activity after the second burst")
	}
}

func TestRenderTable(t *testing.T) {
	rows := []TableRow{Fig14Row{THRMTPS: 50, NormMLCWB: 0.5, NormLLCWB: 0.4, NormDRAMRd: 0.3, NormDRAMWr: 0.2, NormExeTime: 0.9}}
	var buf bytes.Buffer
	if err := WriteTable(&buf, "fig14", Fig14Header(), rows); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "fig14") || !strings.Contains(out, "0.50") {
		t.Fatalf("table output:\n%s", out)
	}
}

func TestRenderSeriesCSV(t *testing.T) {
	s1 := Series{Name: "a", Points: []stats.SeriesPoint{{TimeUS: 0, MTPS: 1}, {TimeUS: 10, MTPS: 2}}}
	s2 := Series{Name: "b", Points: []stats.SeriesPoint{{TimeUS: 0, MTPS: 3}}}
	var buf bytes.Buffer
	if err := WriteSeriesCSV(&buf, s1, s2); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("csv lines: %v", lines)
	}
	if lines[0] != "time_us,a_mtps,b_mtps" {
		t.Fatalf("header %q", lines[0])
	}
}

func itoa(v int) string { return strconv.Itoa(v) }
