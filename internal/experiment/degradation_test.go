package experiment

import (
	"testing"

	idiocore "idio/internal/core"
)

// TestDegradationSweep runs the reduced-size fault-rate sweep and
// checks the acceptance properties: >= 3 fault rates per policy, each
// producing drop/latency/writeback statistics, injected faults scale
// with the rate, and no run aborts or hangs.
func TestDegradationSweep(t *testing.T) {
	opts := DefaultDegradationOpts()
	opts.RingSize = 256
	opts.MLCSize = 256 << 10
	opts.LLCSize = 768 << 10
	rows := Degradation(opts)

	perBlock := map[string][]DegradationRow{}
	for _, r := range rows {
		key := r.Layer + "/" + r.Policy.Name()
		perBlock[key] = append(perBlock[key], r)
	}
	// The fabric layer rides along with its own blocks: same
	// baseline-plus-rates shape, faults on the links instead of the
	// host.
	for _, layer := range []string{"host", "fabric"} {
		for _, pol := range []idiocore.Policy{idiocore.PolicyDDIO, idiocore.PolicyIDIO} {
			rs := perBlock[layer+"/"+pol.Name()]
			if len(rs) != 1+len(opts.Rates) {
				t.Fatalf("%s/%s: %d rows, want baseline + %d rates", layer, pol.Name(), len(rs), len(opts.Rates))
			}
			base := rs[0]
			if base.Rate != 0 || base.FaultsInjected != 0 {
				t.Fatalf("%s/%s: first row is not a fault-free baseline: %+v", layer, pol.Name(), base)
			}
			for _, r := range rs {
				if r.Aborted {
					t.Errorf("%s/%s rate %.3f aborted", layer, pol.Name(), r.Rate)
				}
				if r.Processed == 0 {
					t.Errorf("%s/%s rate %.3f processed nothing", layer, pol.Name(), r.Rate)
				}
				if r.Rate > 0 && r.FaultsInjected == 0 {
					t.Errorf("%s/%s rate %.3f injected nothing", layer, pol.Name(), r.Rate)
				}
			}
		}
	}
	for _, pol := range []idiocore.Policy{idiocore.PolicyDDIO, idiocore.PolicyIDIO} {
		rs := perBlock["host/"+pol.Name()]
		base := rs[0]
		if base.Rate != 0 || base.FaultsInjected != 0 {
			t.Fatalf("%s: first row is not a fault-free baseline: %+v", pol.Name(), base)
		}
		if base.Processed == 0 {
			t.Fatalf("%s baseline processed nothing", pol.Name())
		}
		var prevInjected uint64
		for _, r := range rs[1:] {
			if r.Aborted {
				t.Errorf("%s rate %.3f aborted", pol.Name(), r.Rate)
			}
			if r.FaultsInjected == 0 {
				t.Errorf("%s rate %.3f injected nothing", pol.Name(), r.Rate)
			}
			if r.FaultsInjected < prevInjected {
				t.Errorf("%s rate %.3f injected %d, less than lower rate's %d",
					pol.Name(), r.Rate, r.FaultsInjected, prevInjected)
			}
			prevInjected = r.FaultsInjected
			if r.Processed == 0 {
				t.Errorf("%s rate %.3f processed nothing: faults must degrade, not wedge", pol.Name(), r.Rate)
			}
			if r.WBInflation <= 0 {
				t.Errorf("%s rate %.3f: bad WB inflation %f", pol.Name(), r.Rate, r.WBInflation)
			}
		}
		// The highest rate corrupts 5% of TLPs: damage must be visible
		// in at least one loss channel (drops or degraded mis-steers).
		worst := rs[len(rs)-1]
		if worst.Drops == 0 && worst.MisSteers == 0 {
			t.Errorf("%s at rate %.3f recorded no drops or mis-steers", pol.Name(), worst.Rate)
		}
	}
}

// TestDegradationDeterminism: the sweep itself is reproducible.
func TestDegradationDeterminism(t *testing.T) {
	opts := DefaultDegradationOpts()
	opts.RingSize = 128
	opts.MLCSize = 256 << 10
	opts.LLCSize = 768 << 10
	opts.Rates = []float64{0.02}
	a := Degradation(opts)
	b := Degradation(opts)
	if len(a) != len(b) {
		t.Fatalf("row counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("row %d diverged:\n%+v\n%+v", i, a[i], b[i])
		}
	}
}
