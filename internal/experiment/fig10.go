package experiment

import (
	"fmt"

	idiocore "idio/internal/core"
	"idio/internal/sim"
)

// Fig10Row is one configuration group of Fig. 10: Static or IDIO stats
// normalized to baseline DDIO for the same scenario (lower is better),
// including the co-running-antagonist variant.
type Fig10Row struct {
	Config   string // "Static" | "IDIO" | "IDIO+Antagonist"
	RateGbps float64

	NormMLCWB   float64
	NormLLCWB   float64
	NormDRAMRd  float64
	NormDRAMWr  float64
	NormExeTime float64
	// AntagonistCPIGain is (CPI_DDIO - CPI_IDIO)/CPI_DDIO for co-run
	// rows; zero otherwise.
	AntagonistCPIGain float64
}

// Fig10Opts parameterises the normalized comparison.
type Fig10Opts struct {
	RingSize int
	Rates    []float64
	Horizon  sim.Duration
	// CoRun enables the TouchDrop.IDIO + LLCAntagonist rows.
	CoRun bool
	// MLCSize/LLCSize scale the caches for reduced-size runs.
	MLCSize int
	LLCSize int
	// Parallelism bounds the worker pool running independent cells
	// (0 = GOMAXPROCS, 1 = serial). Results are independent of the
	// setting.
	Parallelism int
}

// DefaultFig10Opts reproduces Fig. 10: 100/25/10 Gbps, Static and
// dynamic IDIO, plus the co-run scenario.
func DefaultFig10Opts() Fig10Opts {
	return Fig10Opts{
		RingSize: 1024,
		Rates:    []float64{100, 25, 10},
		Horizon:  9 * sim.Millisecond,
		CoRun:    true,
	}
}

// Fig10 runs the normalized comparison. Every raw run — including the
// per-rate DDIO baselines the other cells normalize against — is an
// independent cell, so the whole grid fans out at once; normalization
// happens afterwards over the index-addressed results.
func Fig10(opts Fig10Opts) []Fig10Row {
	spec := func(pol idiocore.Policy, antagonist bool) Spec {
		sp := DefaultSpec(pol)
		sp.RingSize = opts.RingSize
		sp.MLCSize = opts.MLCSize
		sp.LLCSize = opts.LLCSize
		sp.Antagonist = antagonist
		return sp
	}
	type cell struct {
		rate       float64
		pol        idiocore.Policy
		antagonist bool
	}
	perRate := 3 // DDIO base, Static, IDIO
	if opts.CoRun {
		perRate = 5 // + DDIO+ant base, IDIO+ant
	}
	var cells []cell
	for _, rate := range opts.Rates {
		cells = append(cells,
			cell{rate, idiocore.PolicyDDIO, false},
			cell{rate, idiocore.PolicyStatic, false},
			cell{rate, idiocore.PolicyIDIO, false})
		if opts.CoRun {
			cells = append(cells,
				cell{rate, idiocore.PolicyDDIO, true},
				cell{rate, idiocore.PolicyIDIO, true})
		}
	}
	sums := RunCells(opts.Parallelism, cells, func(c cell) BurstSummary {
		return runBurstCell(spec(c.pol, c.antagonist), c.rate, opts.Horizon).Summary
	})
	var rows []Fig10Row
	for ri, rate := range opts.Rates {
		s := sums[ri*perRate:]
		base := s[0]
		rows = append(rows,
			normalize(idiocore.PolicyStatic.Name(), rate, s[1], base),
			normalize(idiocore.PolicyIDIO.Name(), rate, s[2], base))
		if opts.CoRun {
			baseCo, co := s[3], s[4]
			row := normalize("IDIO+Antagonist", rate, co, baseCo)
			// Both runs must have exited the antagonist's warm-up
			// window for the CPI comparison to be meaningful.
			if baseCo.AntagonistCPI > 0 && co.AntagonistCPI > 0 {
				row.AntagonistCPIGain = (baseCo.AntagonistCPI - co.AntagonistCPI) / baseCo.AntagonistCPI
			}
			rows = append(rows, row)
		}
	}
	return rows
}

func normalize(name string, rate float64, s, base BurstSummary) Fig10Row {
	return Fig10Row{
		Config:      name,
		RateGbps:    rate,
		NormMLCWB:   ratio(float64(s.MLCWB), float64(base.MLCWB)),
		NormLLCWB:   ratio(float64(s.LLCWB), float64(base.LLCWB)),
		NormDRAMRd:  ratio(float64(s.DRAMReads), float64(base.DRAMReads)),
		NormDRAMWr:  ratio(float64(s.DRAMWrites), float64(base.DRAMWrites)),
		NormExeTime: ratio(s.ExeTimeUS, base.ExeTimeUS),
	}
}

// Fig10Header describes the table columns.
func Fig10Header() []string {
	return []string{"rate", "config", "MLCWB", "LLCWB", "DRAMrd", "DRAMwr", "ExeTime", "antCPI gain"}
}

// Row renders one row (values normalized to DDIO; lower is better).
func (r Fig10Row) Row() []string {
	f := func(v float64) string {
		if v < 0 {
			return "n/a"
		}
		return fmt.Sprintf("%.2f", v)
	}
	return []string{
		fmt.Sprintf("%.0fG", r.RateGbps), r.Config,
		f(r.NormMLCWB), f(r.NormLLCWB), f(r.NormDRAMRd), f(r.NormDRAMWr), f(r.NormExeTime),
		fmt.Sprintf("%.1f%%", r.AntagonistCPIGain*100),
	}
}
