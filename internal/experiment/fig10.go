package experiment

import (
	"fmt"

	idiocore "idio/internal/core"
	"idio/internal/sim"
)

// Fig10Row is one configuration group of Fig. 10: Static or IDIO stats
// normalized to baseline DDIO for the same scenario (lower is better),
// including the co-running-antagonist variant.
type Fig10Row struct {
	Config   string // "Static" | "IDIO" | "IDIO+Antagonist"
	RateGbps float64

	NormMLCWB   float64
	NormLLCWB   float64
	NormDRAMRd  float64
	NormDRAMWr  float64
	NormExeTime float64
	// AntagonistCPIGain is (CPI_DDIO - CPI_IDIO)/CPI_DDIO for co-run
	// rows; zero otherwise.
	AntagonistCPIGain float64
}

// Fig10Opts parameterises the normalized comparison.
type Fig10Opts struct {
	RingSize int
	Rates    []float64
	Horizon  sim.Duration
	// CoRun enables the TouchDrop.IDIO + LLCAntagonist rows.
	CoRun bool
	// MLCSize/LLCSize scale the caches for reduced-size runs.
	MLCSize int
	LLCSize int
}

// DefaultFig10Opts reproduces Fig. 10: 100/25/10 Gbps, Static and
// dynamic IDIO, plus the co-run scenario.
func DefaultFig10Opts() Fig10Opts {
	return Fig10Opts{
		RingSize: 1024,
		Rates:    []float64{100, 25, 10},
		Horizon:  9 * sim.Millisecond,
		CoRun:    true,
	}
}

// Fig10 runs the normalized comparison.
func Fig10(opts Fig10Opts) []Fig10Row {
	spec := func(pol idiocore.Policy, antagonist bool) Spec {
		sp := DefaultSpec(pol)
		sp.RingSize = opts.RingSize
		sp.MLCSize = opts.MLCSize
		sp.LLCSize = opts.LLCSize
		sp.Antagonist = antagonist
		return sp
	}
	var rows []Fig10Row
	for _, rate := range opts.Rates {
		base := runBurstCell(spec(idiocore.PolicyDDIO, false), rate, opts.Horizon).Summary
		for _, pol := range []idiocore.Policy{idiocore.PolicyStatic, idiocore.PolicyIDIO} {
			s := runBurstCell(spec(pol, false), rate, opts.Horizon).Summary
			rows = append(rows, normalize(pol.Name(), rate, s, base))
		}
		if opts.CoRun {
			baseCo := runBurstCell(spec(idiocore.PolicyDDIO, true), rate, opts.Horizon).Summary
			co := runBurstCell(spec(idiocore.PolicyIDIO, true), rate, opts.Horizon).Summary
			row := normalize("IDIO+Antagonist", rate, co, baseCo)
			// Both runs must have exited the antagonist's warm-up
			// window for the CPI comparison to be meaningful.
			if baseCo.AntagonistCPI > 0 && co.AntagonistCPI > 0 {
				row.AntagonistCPIGain = (baseCo.AntagonistCPI - co.AntagonistCPI) / baseCo.AntagonistCPI
			}
			rows = append(rows, row)
		}
	}
	return rows
}

func normalize(name string, rate float64, s, base BurstSummary) Fig10Row {
	return Fig10Row{
		Config:      name,
		RateGbps:    rate,
		NormMLCWB:   ratio(float64(s.MLCWB), float64(base.MLCWB)),
		NormLLCWB:   ratio(float64(s.LLCWB), float64(base.LLCWB)),
		NormDRAMRd:  ratio(float64(s.DRAMReads), float64(base.DRAMReads)),
		NormDRAMWr:  ratio(float64(s.DRAMWrites), float64(base.DRAMWrites)),
		NormExeTime: ratio(s.ExeTimeUS, base.ExeTimeUS),
	}
}

// Fig10Header describes the table columns.
func Fig10Header() []string {
	return []string{"rate", "config", "MLCWB", "LLCWB", "DRAMrd", "DRAMwr", "ExeTime", "antCPI gain"}
}

// Row renders one row (values normalized to DDIO; lower is better).
func (r Fig10Row) Row() []string {
	f := func(v float64) string {
		if v < 0 {
			return "n/a"
		}
		return fmt.Sprintf("%.2f", v)
	}
	return []string{
		fmt.Sprintf("%.0fG", r.RateGbps), r.Config,
		f(r.NormMLCWB), f(r.NormLLCWB), f(r.NormDRAMRd), f(r.NormDRAMWr), f(r.NormExeTime),
		fmt.Sprintf("%.1f%%", r.AntagonistCPIGain*100),
	}
}
