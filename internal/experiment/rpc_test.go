package experiment

import (
	"bytes"
	"testing"

	fnet "idio/internal/net"
	"idio/internal/sim"
)

// quickRPCOpts shrinks the sweep to CI size.
func quickRPCOpts() RPCOpts {
	opts := DefaultRPCOpts()
	opts.RingSize = 256
	opts.MLCSize = 256 << 10
	opts.LLCSize = 768 << 10
	opts.Requests = 256
	opts.LoadsGbps = []float64{5, 25}
	opts.Windows = []int{1, 16}
	return opts
}

// renderRPC runs the sweep at the given parallelism and renders the
// table exactly as idiosim prints it.
func renderRPC(t *testing.T, parallelism int) []byte {
	t.Helper()
	opts := quickRPCOpts()
	opts.Parallelism = parallelism
	var buf bytes.Buffer
	if err := WriteTable(&buf, "rpc", RPCHeader(), Rows(RPC(opts))); err != nil {
		t.Fatalf("WriteTable: %v", err)
	}
	return buf.Bytes()
}

// TestRPCSweep checks the sweep's shape and sanity: both policies,
// every load and window point, complete request budgets, and latency
// that grows with the closed-loop window.
func TestRPCSweep(t *testing.T) {
	opts := quickRPCOpts()
	rows := RPC(opts)
	perPoint := len(opts.LoadsGbps) + len(opts.Windows)
	if len(rows) != 2*perPoint {
		t.Fatalf("%d rows, want %d (2 policies x %d points)", len(rows), 2*perPoint, perPoint)
	}
	byWindow := map[int]RPCRow{}
	for _, r := range rows {
		if r.Aborted {
			t.Errorf("%s %s cell aborted", r.Policy.Name(), r.Mode)
		}
		if want := opts.Requests * uint64(opts.Clients); r.Issued != want {
			t.Errorf("%s %s: issued %d, want %d", r.Policy.Name(), r.Mode, r.Issued, want)
		}
		if r.Responses == 0 || r.GoodputGbps <= 0 || r.P50US <= 0 {
			t.Errorf("degenerate cell: %+v", r)
		}
		if r.P50US > r.P99US || r.P99US > r.P999US {
			t.Errorf("%s %s: unordered percentiles p50=%v p99=%v p999=%v",
				r.Policy.Name(), r.Mode, r.P50US, r.P99US, r.P999US)
		}
		if r.Mode == fnet.ModeClosed && r.Policy.Name() == "IDIO" {
			byWindow[r.Window] = r
		}
	}
	// A deeper closed-loop window queues more at the DUT: higher
	// goodput, higher p99.
	w1, w16 := byWindow[1], byWindow[16]
	if w16.GoodputGbps <= w1.GoodputGbps {
		t.Errorf("window 16 goodput %.2f not above window 1's %.2f", w16.GoodputGbps, w1.GoodputGbps)
	}
	if w16.P99US <= w1.P99US {
		t.Errorf("window 16 p99 %.2f not above window 1's %.2f", w16.P99US, w1.P99US)
	}
}

// TestRPCParallelismInvariance: the rendered table is byte-identical
// whether cells run serially or fanned out over 8 workers.
func TestRPCParallelismInvariance(t *testing.T) {
	serial := renderRPC(t, 1)
	fanned := renderRPC(t, 8)
	if !bytes.Equal(serial, fanned) {
		t.Fatalf("-j1 and -j8 tables differ:\n--- j1 ---\n%s\n--- j8 ---\n%s", serial, fanned)
	}
}

// TestRPCTimeoutBound: a sweep with a tight timeout still terminates
// (no stuck windows) within the horizon.
func TestRPCTimeoutBound(t *testing.T) {
	opts := quickRPCOpts()
	opts.LoadsGbps = nil
	opts.Windows = []int{64}
	opts.Timeout = 50 * sim.Microsecond
	for _, r := range RPC(opts) {
		if r.Aborted {
			t.Errorf("%s aborted under tight timeout", r.Policy.Name())
		}
		if r.Issued != opts.Requests*uint64(opts.Clients) {
			t.Errorf("%s: issued %d, want full budget", r.Policy.Name(), r.Issued)
		}
	}
}
