package experiment

import (
	"strings"
	"testing"
)

func TestWriteReportQuick(t *testing.T) {
	var buf strings.Builder
	if err := WriteReport(&buf, ReportOpts{Quick: true}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# IDIO reproduction report",
		"Fig. 4", "Fig. 9", "Fig. 10", "Fig. 11", "Fig. 12", "Fig. 13", "Fig. 14",
		"Latency breakdown", "Baselines", "Ablations", "Reproduction claims",
		"| rate | policy |", // a table header made it through
		"PASS",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q", want)
		}
	}
	if strings.Contains(out, "FAILED") {
		t.Fatal("report contains failed claims")
	}
	// Markdown tables are well-formed: every table line has matching
	// pipe counts with its header (spot check the Fig. 14 table).
	lines := strings.Split(out, "\n")
	for i, l := range lines {
		if strings.HasPrefix(l, "| mlcTHR |") {
			want := strings.Count(l, "|")
			for j := i + 1; j < len(lines) && strings.HasPrefix(lines[j], "|"); j++ {
				if strings.Count(lines[j], "|") != want {
					t.Fatalf("ragged table row %q", lines[j])
				}
			}
		}
		_ = i
	}
}

type failWriter struct{ n int }

func (f *failWriter) Write(p []byte) (int, error) {
	f.n += len(p)
	if f.n > 100 {
		return 0, strings.NewReader("").UnreadByte() // any non-nil error
	}
	return len(p), nil
}

func TestWriteReportPropagatesWriteErrors(t *testing.T) {
	if err := WriteReport(&failWriter{}, ReportOpts{Quick: true}); err == nil {
		t.Fatal("write errors must propagate")
	}
}
