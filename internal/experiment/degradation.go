package experiment

import (
	"fmt"

	"idio"
	idiocore "idio/internal/core"
	"idio/internal/fault"
	fnet "idio/internal/net"
	"idio/internal/sim"
)

// DegradationRow is one cell of the fault-rate sweep: a policy run
// under a given fault intensity, with its drop, tail-latency and
// writeback statistics plus the same-policy fault-free baseline's
// writeback count for inflation reporting.
type DegradationRow struct {
	Policy idiocore.Policy
	// Layer names the perturbed layer: "host" sweeps per-TLP PCIe
	// corruption plus DRAM/CPU background faults on a single-host
	// burst; "fabric" sweeps link flaps and rate degradation on a
	// 2-client closed-loop RPC topology.
	Layer string
	// Rate is the fault intensity: for host cells the per-TLP
	// probability of both corruption (metadata bit flip) and poisoning
	// (discarded write); for fabric cells the same value scales the
	// flap/degradation frequency.
	Rate float64

	Processed uint64
	// Drops aggregates every loss class: ring overflow, pool
	// exhaustion, link-down windows and mis-steered packets.
	Drops uint64
	P99US float64
	// MLCWB is the fault run's MLC writeback count; WBInflation is
	// MLCWB normalized to the same policy's zero-fault run (how much
	// extra data movement the faults provoked).
	MLCWB       uint64
	WBInflation float64
	// FaultsInjected totals the injector's perturbations; MisSteers is
	// how many corrupted TLPs decoded to a non-existent core and were
	// degraded to the LLC-default steering.
	FaultsInjected uint64
	MisSteers      uint64
	// Aborted records a watchdog trip (graceful structured abort
	// instead of a hang); healthy sweeps report false everywhere.
	Aborted bool
}

// DegradationOpts parameterises the sweep.
type DegradationOpts struct {
	RingSize int
	RateGbps float64
	// Rates are the per-TLP fault probabilities to sweep (0 is always
	// run first per policy as the normalization baseline).
	Rates []float64
	// Seed drives the fault layer's randomness; a fixed seed makes the
	// whole sweep reproducible.
	Seed    int64
	Horizon sim.Duration
	// MLCSize/LLCSize scale the caches for reduced-size runs.
	MLCSize int
	LLCSize int
	// Parallelism bounds the worker pool running independent sweep
	// cells (0 = GOMAXPROCS, 1 = serial).
	Parallelism int
}

// DefaultDegradationOpts sweeps three fault rates spanning "noisy
// link" (0.1%) to "failing link" (5%) at the Fig. 9 burst rate.
func DefaultDegradationOpts() DegradationOpts {
	return DegradationOpts{
		RingSize: 1024,
		RateGbps: 100,
		Rates:    []float64{0.001, 0.01, 0.05},
		Seed:     42,
		Horizon:  9 * sim.Millisecond,
	}
}

// faultConfigFor builds the injected-adversity profile for one sweep
// point: per-TLP corruption and poisoning at the swept rate, plus a
// fixed background of environmental faults (DRAM latency spikes and
// slow-core stalls) so the sweep also exercises the memory- and
// CPU-level injectors.
func faultConfigFor(rate float64, seed int64) *fault.Config {
	if rate <= 0 {
		return nil
	}
	return &fault.Config{
		Seed: seed,
		PCIe: &fault.PCIeConfig{CorruptProb: rate, PoisonProb: rate},
		DRAMSpike: &fault.DRAMSpikeConfig{
			Period: 500 * sim.Microsecond,
			Extra:  200 * sim.Nanosecond,
			Length: 50 * sim.Microsecond,
		},
		CoreStall: &fault.CoreStallConfig{
			Period: 1 * sim.Millisecond,
			Stall:  20 * sim.Microsecond,
			Core:   -1,
		},
	}
}

// fabricFaultConfigFor scales fabric adversity with the swept rate:
// the lightest rate (0.1%) flaps a link roughly every 2 ms and opens
// a rate-degradation window roughly every 1 ms; heavier rates shrink
// the periods proportionally (floored so events still serialize).
func fabricFaultConfigFor(rate float64, seed int64) *fault.Config {
	if rate <= 0 {
		return nil
	}
	scale := 0.001 / rate
	period := func(base sim.Duration) sim.Duration {
		d := sim.Duration(float64(base) * scale)
		if d < 20*sim.Microsecond {
			d = 20 * sim.Microsecond
		}
		return d
	}
	return &fault.Config{
		Seed: seed,
		FabricFlap: &fault.FabricFlapConfig{
			Period: period(2 * sim.Millisecond),
			Down:   15 * sim.Microsecond,
		},
		FabricDegrade: &fault.FabricDegradeConfig{
			Period: period(1 * sim.Millisecond),
			Factor: 0.25,
			Length: 100 * sim.Microsecond,
		},
	}
}

// fabricDegradationCell runs one fabric-layer sweep point: a 2-client
// closed-loop RPC topology (L2Fwd echo on each DUT core) whose links
// flap and degrade at the swept intensity. P99 here is end-to-end
// client latency, not server-side service time.
func fabricDegradationCell(pol idiocore.Policy, rate float64, opts DegradationOpts) DegradationRow {
	const nClients = 2
	ccfg := idio.DefaultClusterConfig(2, nClients)
	ccfg.Host.Policy = pol
	ccfg.Host.Hier.LLCSize = 3 << 20 // gem5 scale, like the host cells
	ccfg.Host.NIC.RingSize = opts.RingSize
	if opts.MLCSize > 0 {
		ccfg.Host.Hier.MLCSize = opts.MLCSize
	}
	if opts.LLCSize > 0 {
		ccfg.Host.Hier.LLCSize = opts.LLCSize
	}
	ccfg.Host.Faults = fabricFaultConfigFor(rate, opts.Seed)
	wd := sim.DefaultWatchdogConfig()
	ccfg.Host.Watchdog = &wd
	cl, err := idio.NewCluster(ccfg)
	if err != nil {
		panic(err)
	}
	for core := 0; core < 2; core++ {
		cl.DUT.AddNF(core, L2Fwd.app(), cl.DUT.DefaultFlow(core))
	}
	for i := 0; i < nClients; i++ {
		cl.AddRPCClient(i, i, fnet.ClientConfig{
			Mode:        fnet.ModeClosed,
			Outstanding: 16,
			Requests:    2048,
		})
	}
	res, _ := cl.Run(idio.RunOpts{Horizon: opts.Horizon, UntilIdle: true})

	row := DegradationRow{
		Policy:         pol,
		Layer:          "fabric",
		Rate:           rate,
		Processed:      res.TotalProcessed(),
		Drops:          res.NIC.RxDrops + res.NIC.PoolDrops + res.NIC.LinkDownDrops + res.NIC.MisSteers,
		MLCWB:          res.Hier.MLCWriteback,
		FaultsInjected: res.Faults.Total(),
		MisSteers:      res.CtrlMisSteers,
		Aborted:        res.Aborted != nil,
	}
	if f := res.Fabric; f != nil {
		for _, l := range f.Links {
			row.Drops += l.Stats.TailDrops + l.Stats.DownDrops
		}
	}
	if rpc := res.RPC; rpc != nil {
		row.P99US = rpc.P99.Microseconds()
	}
	return row
}

// Degradation runs the sweep: for DDIO and IDIO, a fault-free
// baseline followed by each fault rate — first on the host layer
// (PCIe/DRAM/CPU faults on a single-host burst), then on the fabric
// layer (link flaps and rate degradation on a closed-loop RPC
// topology) — reporting per-rate drops, p99 latency and writeback
// inflation. Every run arms the watchdog so a fault-induced livelock
// surfaces as a structured abort, not a hang.
func Degradation(opts DegradationOpts) []DegradationRow {
	// Every (layer, policy, rate) point is an independent cell; each
	// block's zero-fault baseline (cell 0 of the block) supplies the
	// WBInflation denominator once all cells return. Blocks stay
	// perPol-aligned: [DDIO host][IDIO host][DDIO fabric][IDIO fabric].
	type cell struct {
		pol    idiocore.Policy
		rate   float64
		fabric bool
	}
	perPol := 1 + len(opts.Rates)
	var cells []cell
	for _, fabric := range []bool{false, true} {
		for _, pol := range []idiocore.Policy{idiocore.PolicyDDIO, idiocore.PolicyIDIO} {
			for _, rate := range append([]float64{0}, opts.Rates...) {
				cells = append(cells, cell{pol: pol, rate: rate, fabric: fabric})
			}
		}
	}
	rows := RunCells(opts.Parallelism, cells, func(c cell) DegradationRow {
		if c.fabric {
			return fabricDegradationCell(c.pol, c.rate, opts)
		}
		sp := DefaultSpec(c.pol)
		sp.RingSize = opts.RingSize
		sp.MLCSize = opts.MLCSize
		sp.LLCSize = opts.LLCSize
		sp.Faults = faultConfigFor(c.rate, opts.Seed)
		wd := sim.DefaultWatchdogConfig()
		sp.Watchdog = &wd

		b := Build(sp)
		b.InstallBurst(opts.RateGbps, sp.RingSize, 1)
		res := b.RunBurstToCompletion(opts.Horizon)

		return DegradationRow{
			Policy:         c.pol,
			Layer:          "host",
			Rate:           c.rate,
			Processed:      res.TotalProcessed(),
			Drops:          res.NIC.RxDrops + res.NIC.PoolDrops + res.NIC.LinkDownDrops + res.NIC.MisSteers,
			P99US:          res.P99Across().Microseconds(),
			MLCWB:          res.Hier.MLCWriteback,
			FaultsInjected: res.Faults.Total(),
			MisSteers:      res.CtrlMisSteers,
			Aborted:        res.Aborted != nil,
		}
	})
	for i := range rows {
		baseWB := rows[(i/perPol)*perPol].MLCWB
		rows[i].WBInflation = ratio(float64(rows[i].MLCWB), float64(baseWB))
	}
	return rows
}

// DegradationHeader describes the table columns.
func DegradationHeader() []string {
	return []string{"layer", "policy", "faultRate", "processed", "drops", "p99us", "mlcWB", "wbInfl", "injected", "missteer", "aborted"}
}

// Row renders one sweep cell.
func (r DegradationRow) Row() []string {
	return []string{
		r.Layer,
		r.Policy.Name(),
		fmt.Sprintf("%.3f", r.Rate),
		fmt.Sprintf("%d", r.Processed),
		fmt.Sprintf("%d", r.Drops),
		fmt.Sprintf("%.1f", r.P99US),
		fmt.Sprintf("%d", r.MLCWB),
		fmt.Sprintf("%.2f", r.WBInflation),
		fmt.Sprintf("%d", r.FaultsInjected),
		fmt.Sprintf("%d", r.MisSteers),
		fmt.Sprintf("%t", r.Aborted),
	}
}
