// Package experiment regenerates every quantitative figure of the
// paper's analysis (Fig. 4, 5) and evaluation (Fig. 9-14). Each FigN
// function builds the scenario the paper describes, runs it, and
// returns structured rows/series mirroring what the figure reports;
// render.go formats them as ASCII tables and CSV for inspection.
//
// The experiments are parameterised by an options struct whose
// Default* constructor reproduces the paper's setup; tests shrink the
// parameters to keep runtimes small without changing the physics.
package experiment

import (
	"idio"
	"idio/internal/apps"
	"idio/internal/cache"
	idiocore "idio/internal/core"
	"idio/internal/cpu"
	"idio/internal/fault"
	"idio/internal/sim"
	"idio/internal/stats"
	"idio/internal/traffic"
)

// AppKind selects the network function on the NF cores.
type AppKind int

// Network functions from Table II (and the Sec. VII L2Fwd variant).
const (
	TouchDrop AppKind = iota
	L2Fwd
	L2FwdDropPayload
)

func (a AppKind) String() string {
	switch a {
	case TouchDrop:
		return "TouchDrop"
	case L2Fwd:
		return "L2Fwd"
	case L2FwdDropPayload:
		return "L2FwdDropPayload"
	default:
		return "unknown"
	}
}

func (a AppKind) app() cpu.App {
	switch a {
	case TouchDrop:
		return apps.TouchDrop{}
	case L2Fwd:
		return apps.L2Fwd{}
	case L2FwdDropPayload:
		return apps.L2FwdDropPayload{}
	default:
		panic("experiment: unknown app kind")
	}
}

// Spec assembles a complete scenario: the gem5-style two-NF system of
// Sec. VI plus optional co-running antagonist and configuration
// overrides used by individual figures.
type Spec struct {
	Policy   idiocore.Policy
	App      AppKind
	NumNFs   int
	RingSize int
	FrameLen int

	// ClassOne marks the NF flows as application class 1 via DSCP 46
	// (used by the selective-direct-DRAM experiments).
	ClassOne bool

	// Antagonist adds an LLCAntagonist on an extra core with a 256 KB
	// MLC and the given buffer size (Sec. VI).
	Antagonist    bool
	AntagonistBuf uint64

	// LLCSize overrides the scaled-down 3 MB gem5 LLC; 0 keeps it.
	LLCSize int
	// MLCSize overrides the per-core 1 MB MLC; 0 keeps it. Scaled-down
	// tests shrink MLC and LLC together with the ring so capacity
	// ratios (ring footprint vs. MLC, DDIO ways vs. burst) match the
	// full-size scenario.
	MLCSize int
	// AppWayMask partitions CPU-side LLC fills (Fig. 4's _1way runs).
	AppWayMask cache.WayMask
	// MLCTHR overrides the controller threshold (Fig. 14); 0 keeps 50.
	MLCTHR uint64
	// TimelineBucket overrides the 10 µs stats bucket; 0 keeps it.
	TimelineBucket sim.Duration

	// Ablation knobs (not part of any paper figure; used by the
	// design-choice sweeps in ablation.go).
	DDIOWays         int          // 0 keeps the default 2
	PrefetchDepth    int          // 0 keeps the default 32
	DescWBDelay      sim.Duration // <0 means zero delay; 0 keeps default
	AdaptivePrefetch bool         // enable the CPU-following throttle
	MSHRs            int          // memory-level parallelism; 0 keeps 1
	// ReplPolicy selects cache replacement (LRU default; SRRIP models
	// the RRIP family real LLCs approximate). Pointer so the LRU zero
	// value stays the default.
	ReplPolicy *cache.Policy
	// TraceCapacity enables per-packet stage tracing on every core.
	TraceCapacity int
	// RetainLLCOnHit selects NINE inclusion semantics for the LLC
	// (see hier.Config.RetainLLCOnHit).
	RetainLLCOnHit bool

	// Faults enables the deterministic fault-injection layer for
	// degradation experiments (nil = fault-free).
	Faults *fault.Config
	// Watchdog arms the simulator's no-progress/event-storm detector.
	Watchdog *sim.WatchdogConfig
}

// DefaultSpec is the common Sec. VI gem5 scenario: two TouchDrop NFs,
// 1024-entry rings, 1514-byte packets, 3 MB LLC.
func DefaultSpec(policy idiocore.Policy) Spec {
	return Spec{
		Policy:        policy,
		App:           TouchDrop,
		NumNFs:        2,
		RingSize:      1024,
		FrameLen:      1514,
		AntagonistBuf: 2 << 20,
	}
}

// Built is a wired system plus the experiment-level handles.
type Built struct {
	Sys        *idio.System
	Flows      []traffic.Flow
	Antagonist *apps.LLCAntagonist
}

// Build wires the scenario.
func Build(spec Spec) *Built {
	cores := spec.NumNFs
	if spec.Antagonist {
		cores++
	}
	cfg := idio.DefaultConfig(cores)
	cfg.Hier.LLCSize = 3 << 20 // scaled gem5 LLC (Sec. III / Fig. 5)
	if spec.LLCSize > 0 {
		cfg.Hier.LLCSize = spec.LLCSize
	}
	if spec.MLCSize > 0 {
		cfg.Hier.MLCSize = spec.MLCSize
	}
	if spec.AppWayMask != 0 {
		cfg.Hier.AppWayMask = spec.AppWayMask
	}
	if spec.MLCTHR > 0 {
		cfg.Controller.MLCTHR = spec.MLCTHR
	}
	if spec.TimelineBucket > 0 {
		cfg.Hier.TimelineBucket = spec.TimelineBucket
	}
	if spec.Antagonist {
		// The antagonist core gets a 256 KB MLC (Sec. VI).
		sizes := make([]int, cores)
		sizes[cores-1] = 256 << 10
		cfg.Hier.MLCSizePerCore = sizes
	}
	cfg.NIC.RingSize = spec.RingSize
	cfg.Policy = spec.Policy
	if spec.ClassOne {
		cfg.Classifier.ClassOneDSCPs = []uint8{46}
	}
	if spec.DDIOWays > 0 {
		cfg.Hier.DDIOWays = spec.DDIOWays
	}
	if spec.PrefetchDepth > 0 {
		cfg.Prefetcher.QueueDepth = spec.PrefetchDepth
	}
	if spec.DescWBDelay < 0 {
		cfg.NIC.DescWBDelay = 0
	} else if spec.DescWBDelay > 0 {
		cfg.NIC.DescWBDelay = spec.DescWBDelay
	}
	cfg.Prefetcher.Adaptive = spec.AdaptivePrefetch
	if spec.MSHRs > 0 {
		cfg.CPU.MSHRs = spec.MSHRs
	}
	if spec.ReplPolicy != nil {
		cfg.Hier.Policy = *spec.ReplPolicy
	}
	cfg.CPU.TraceCapacity = spec.TraceCapacity
	cfg.Hier.RetainLLCOnHit = spec.RetainLLCOnHit
	cfg.Faults = spec.Faults
	cfg.Watchdog = spec.Watchdog
	sys := idio.NewSystem(cfg)

	b := &Built{Sys: sys}
	for i := 0; i < spec.NumNFs; i++ {
		flow := sys.DefaultFlow(i)
		flow.FrameLen = spec.FrameLen
		if spec.ClassOne {
			flow.DSCP = 46
		}
		sys.AddNF(i, spec.App.app(), flow)
		b.Flows = append(b.Flows, flow)
	}
	if spec.Antagonist {
		buf := sys.AllocRegion(spec.AntagonistBuf)
		b.Antagonist = apps.NewLLCAntagonist(cores-1, buf, cfg.Hier.Clock, sys.Hier, 1)
	}
	return b
}

// InstallBurst schedules one synchronized burst per NF at the given
// per-NF rate (Sec. VI's construction: exactly ring-size packets per
// burst).
func (b *Built) InstallBurst(gbps float64, ringSize, numBursts int) {
	for _, flow := range b.Flows {
		traffic.Bursty{
			Flow:            flow,
			BurstRateBps:    traffic.Gbps(gbps),
			Period:          10 * sim.Millisecond,
			PacketsPerBurst: ringSize,
			NumBursts:       numBursts,
		}.Install(b.Sys.Sim, b.Sys.NIC)
	}
}

// InstallSteady schedules steady per-NF traffic.
func (b *Built) InstallSteady(gbps float64, count uint64) {
	for _, flow := range b.Flows {
		traffic.Steady{
			Flow:    flow,
			RateBps: traffic.Gbps(gbps),
			Count:   count,
		}.Install(b.Sys.Sim, b.Sys.NIC)
	}
}

// Start launches cores, controller and (if present) the antagonist.
func (b *Built) Start() {
	b.Sys.Start()
	if b.Antagonist != nil {
		b.Antagonist.Start(b.Sys.Sim)
	}
}

// RunBurstToCompletion runs until the rings drain (bounded by
// horizon) and returns results.
func (b *Built) RunBurstToCompletion(horizon sim.Duration) idio.Results {
	b.Start()
	return b.Sys.RunUntilIdle(horizon)
}

// Series is a named timeline in the units the paper plots (MTPS per
// 10 µs bucket by default).
type Series struct {
	Name   string
	Points []stats.SeriesPoint
}

// seriesOf snapshots a timeline (nil-safe).
func seriesOf(name string, tl *stats.Timeline) Series {
	if tl == nil {
		return Series{Name: name}
	}
	return Series{Name: name, Points: tl.Series()}
}

// ratio returns a/b guarding against a zero baseline.
func ratio(a, b float64) float64 {
	if b == 0 {
		if a == 0 {
			return 1 // both zero: no change
		}
		return -1 // undefined; callers render as n/a
	}
	return a / b
}
