package experiment

import (
	"fmt"

	"idio"
	"idio/internal/apps"
	idiocore "idio/internal/core"
	fnet "idio/internal/net"
	"idio/internal/qos"
	"idio/internal/sim"
	"idio/internal/stats"
	"idio/internal/traffic"
)

// QoSRow is one service class's outcome under one data-plane setup: a
// latency-critical EF population holding its SLO (or not) while bulk
// AF traffic and a CS1 scavenger antagonist saturate the server link.
type QoSRow struct {
	// Setup names the data plane: "ddio", "idio", or "idio+qos" (IDIO
	// placement plus the class-aware fabric/placement policy).
	Setup string
	// Class is the service class this row aggregates ("ef", "af41",
	// "af21", "cs1").
	Class   string
	Clients int

	Issued    uint64
	Responses uint64
	Timeouts  uint64
	// Drops is the class's own tail-drop count on the contended server
	// downlink when the scheduled egress is armed; for unscheduled
	// setups the per-class split does not exist and the column carries
	// the link's aggregate drops on every row.
	Drops       uint64
	GoodputGbps float64
	P50US       float64
	P99US       float64
	P999US      float64
	Aborted     bool
}

// QoSOpts parameterises the contention scenario.
type QoSOpts struct {
	// Cores is the DUT core count; EF clients pin to core 0, everyone
	// else round-robins over the remaining cores.
	Cores int
	// EFClients run closed-loop (window EFWindow, budget EFRequests
	// each) at DSCP 46 — the latency-critical population whose p99 the
	// experiment tracks.
	EFClients  int
	EFWindow   int
	EFRequests uint64
	// AF41/AF21 clients offer open-loop bulk load (per-client Gbps) at
	// DSCPs 34/18; the CS1 clients are the scavenger antagonist at
	// DSCP 8. Budgets are horizon-bounded, not request-bounded.
	AF41Clients int
	AF41Gbps    float64
	AF21Clients int
	AF21Gbps    float64
	CS1Clients  int
	CS1Gbps     float64
	// Link is the per-hop template; its rate is the contended resource
	// (offered bulk + scavenger load should exceed it).
	Link     fnet.LinkConfig
	FrameLen int
	Timeout  sim.Duration
	Horizon  sim.Duration
	// RingSize/MLCSize/LLCSize scale the DUT (0 = gem5-scale defaults).
	RingSize int
	MLCSize  int
	LLCSize  int
	// Shards partitions each cell's cluster into parallel event
	// domains (0/1 = single simulator); outputs are identical.
	Shards int
	// Parallelism bounds the worker pool over independent cells.
	Parallelism int
}

// DefaultQoSOpts saturates a 10 GbE server link at ~120% (4 Gbps AF41
// + 2 Gbps AF21 + 6 Gbps CS1) under two closed-loop EF clients.
func DefaultQoSOpts() QoSOpts {
	return QoSOpts{
		Cores:       2,
		EFClients:   2,
		EFWindow:    4,
		EFRequests:  96,
		AF41Clients: 2,
		AF41Gbps:    2,
		AF21Clients: 1,
		AF21Gbps:    2,
		CS1Clients:  1,
		CS1Gbps:     6,
		Link:        fnet.LinkConfig{RateBps: 10e9, Delay: 2 * sim.Microsecond},
		FrameLen:    1514,
		Horizon:     10 * sim.Millisecond,
		RingSize:    1024,
	}
}

// qosSetup is one column of the comparison: a placement policy plus
// whether the class-aware pipeline is armed.
type qosSetup struct {
	name  string
	pol   idiocore.Policy
	armed bool
}

func qosSetups() []qosSetup {
	return []qosSetup{
		{name: "ddio", pol: idiocore.PolicyDDIO},
		{name: "idio", pol: idiocore.PolicyIDIO},
		{name: "idio+qos", pol: idiocore.PolicyIDIO, armed: true},
	}
}

// qosClientPlan describes the client population in installation order,
// so result grouping never depends on the cluster's own (setup-
// dependent) class tracking.
type qosClientPlan struct {
	class qos.Class
	dscp  uint8
}

func (o QoSOpts) plan() []qosClientPlan {
	var plan []qosClientPlan
	add := func(n int, class qos.Class, dscp uint8) {
		for i := 0; i < n; i++ {
			plan = append(plan, qosClientPlan{class: class, dscp: dscp})
		}
	}
	add(o.EFClients, qos.ClassEF, 46)
	add(o.AF41Clients, qos.ClassAF41, 34)
	add(o.AF21Clients, qos.ClassAF21, 18)
	add(o.CS1Clients, qos.ClassCS1, 8)
	return plan
}

// runQoSCell builds one cluster, applies the setup, runs to drain or
// horizon, and summarises per class.
func runQoSCell(opts QoSOpts, setup qosSetup) []QoSRow {
	plan := opts.plan()
	ccfg := idio.DefaultClusterConfig(opts.Cores, len(plan))
	ccfg.ClientLink = opts.Link
	ccfg.ServerLink = opts.Link
	ccfg.Host.Policy = setup.pol
	ccfg.Host.Hier.LLCSize = 3 << 20 // gem5 scale, as the burst figures use
	if opts.RingSize > 0 {
		ccfg.Host.NIC.RingSize = opts.RingSize
	}
	if opts.MLCSize > 0 {
		ccfg.Host.Hier.MLCSize = opts.MLCSize
	}
	if opts.LLCSize > 0 {
		ccfg.Host.Hier.LLCSize = opts.LLCSize
	}
	wd := sim.DefaultWatchdogConfig()
	ccfg.Host.Watchdog = &wd
	ccfg.Shards = opts.Shards
	if setup.armed {
		ccfg.QoS = qos.DefaultConfig()
	}
	cl, err := idio.NewCluster(ccfg)
	if err != nil {
		panic(err)
	}
	for core := 0; core < opts.Cores; core++ {
		cl.DUT.AddNF(core, apps.L2Fwd{}, cl.DUT.DefaultFlow(core))
	}
	// Open-loop budgets: enough to keep offering for the whole horizon
	// (the run is horizon-bounded; leftover budget just never sends).
	frameBits := float64(opts.FrameLen * 8)
	bulkBudget := func(gbps float64) uint64 {
		return uint64(gbps*1e9*opts.Horizon.Seconds()/frameBits) + 64
	}
	bulk := 0
	for i, p := range plan {
		core := 0
		if opts.Cores > 1 && p.class != qos.ClassEF {
			core = 1 + bulk%(opts.Cores-1)
			bulk++
		}
		cc := fnet.ClientConfig{Timeout: opts.Timeout}
		switch p.class {
		case qos.ClassEF:
			cc.Mode = fnet.ModeClosed
			cc.Outstanding = opts.EFWindow
			cc.Requests = opts.EFRequests
		default:
			cc.Mode = fnet.ModeOpen
			var gbps float64
			switch p.class {
			case qos.ClassAF41:
				gbps = opts.AF41Gbps
			case qos.ClassAF21:
				gbps = opts.AF21Gbps
			case qos.ClassCS1:
				gbps = opts.CS1Gbps
			}
			cc.RateBps = traffic.Gbps(gbps)
			cc.Requests = bulkBudget(gbps)
		}
		cc.Flow = cl.ClientFlow(i, core)
		if opts.FrameLen > 0 {
			cc.Flow.FrameLen = opts.FrameLen
		}
		cc.Flow.DSCP = p.dscp
		cl.AddRPCClient(i, core, cc)
	}
	res, _ := cl.Run(idio.RunOpts{Horizon: opts.Horizon, UntilIdle: true})

	// Aggregate fabric drops for the unscheduled setups; the armed
	// setup reads the server downlink's per-class split instead.
	var totalDrops uint64
	classDrops := map[string]uint64{}
	if f := res.Fabric; f != nil {
		for _, l := range f.Links {
			totalDrops += l.Stats.TailDrops + l.Stats.DownDrops + l.Stats.AQMDrops
			for _, cc := range l.Classes {
				classDrops[cc.Class] += cc.Stats.TailDrops + cc.Stats.AQMDrops
			}
		}
	}

	var rows []QoSRow
	for class := 0; class < qos.NumClasses; class++ {
		row := QoSRow{
			Setup:   setup.name,
			Class:   qos.Class(class).String(),
			Aborted: res.Aborted != nil,
		}
		h := stats.NewHistogram(5)
		var rxBytes uint64
		var first, last sim.Time
		for j, c := range cl.Clients {
			if plan[j].class != qos.Class(class) {
				continue
			}
			st := c.Stats()
			row.Clients++
			row.Issued += st.Issued
			row.Responses += st.Responses
			row.Timeouts += st.Timeouts
			rxBytes += c.RxBytes()
			if fs := c.FirstSend(); row.Clients == 1 || fs < first {
				first = fs
			}
			if lr := c.LastResp(); lr > last {
				last = lr
			}
			h.Merge(c.Hist())
		}
		if row.Clients == 0 {
			continue
		}
		if setup.armed {
			row.Drops = classDrops[row.Class]
		} else {
			row.Drops = totalDrops
		}
		row.GoodputGbps = fnet.GoodputBps(rxBytes, first, last) / 1e9
		if h.Count() > 0 {
			row.P50US = h.Quantile(0.50).Microseconds()
			row.P99US = h.Quantile(0.99).Microseconds()
			row.P999US = h.Quantile(0.999).Microseconds()
		}
		rows = append(rows, row)
	}
	return rows
}

// QoS runs the class-isolation comparison: the same contended workload
// under plain DDIO, plain IDIO, and QoS-aware IDIO, reporting each
// service class's latency and goodput. The interesting contrast is the
// EF row: without the class-aware fabric its p99 rides the bulk queue;
// with it, strict priority holds the SLO through saturation.
func QoS(opts QoSOpts) []QoSRow {
	per := RunCells(opts.Parallelism, qosSetups(), func(s qosSetup) []QoSRow {
		return runQoSCell(opts, s)
	})
	var rows []QoSRow
	for _, p := range per {
		rows = append(rows, p...)
	}
	return rows
}

// QoSHeader describes the table columns.
func QoSHeader() []string {
	return []string{"setup", "class", "clients", "issued", "resp", "timeouts", "drops", "goodputGbps", "p50us", "p99us", "p999us", "aborted"}
}

// Row renders one class/setup cell.
func (r QoSRow) Row() []string {
	return []string{
		r.Setup,
		r.Class,
		fmt.Sprintf("%d", r.Clients),
		fmt.Sprintf("%d", r.Issued),
		fmt.Sprintf("%d", r.Responses),
		fmt.Sprintf("%d", r.Timeouts),
		fmt.Sprintf("%d", r.Drops),
		fmt.Sprintf("%.2f", r.GoodputGbps),
		fmt.Sprintf("%.2f", r.P50US),
		fmt.Sprintf("%.2f", r.P99US),
		fmt.Sprintf("%.2f", r.P999US),
		fmt.Sprintf("%t", r.Aborted),
	}
}
