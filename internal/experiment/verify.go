package experiment

import (
	"fmt"
	"io"

	idiocore "idio/internal/core"
	"idio/internal/sim"
)

// Verify runs reduced-scale versions of the paper's headline
// experiments and checks the qualitative claims hold, printing one
// PASS/FAIL line per claim. It returns the number of failed claims.
// This is the same set of assertions the test suite enforces, exposed
// as a user-facing reproduction check (`idiosim -exp verify`).
func Verify(w io.Writer) int {
	failed, total := 0, 0
	check := func(name string, ok bool, detail string) {
		total++
		status := "PASS"
		if !ok {
			status = "FAIL"
			failed++
		}
		fmt.Fprintf(w, "%-4s  %-58s %s\n", status, name, detail)
	}

	const (
		ring = 256
		mlc  = 256 << 10
		llc  = 768 << 10
	)
	horizon := 9 * sim.Millisecond

	// Claims from Fig. 9/10 at 100 and 25 Gbps.
	cells := Fig9(Fig9Opts{
		RingSize: ring, Rates: []float64{100, 25},
		Policies: []idiocore.Policy{
			idiocore.PolicyDDIO, idiocore.PolicyInvalidate, idiocore.PolicyPrefetch,
			idiocore.PolicyStatic, idiocore.PolicyIDIO,
		},
		Horizon: horizon, MLCSize: mlc, LLCSize: llc,
	})
	get := func(rate float64, pol idiocore.Policy) BurstSummary {
		for _, c := range cells {
			if c.RateGbps == rate && c.Policy == pol {
				return c.Summary
			}
		}
		panic("verify: missing cell")
	}
	for _, rate := range []float64{100, 25} {
		ddio := get(rate, idiocore.PolicyDDIO)
		idio := get(rate, idiocore.PolicyIDIO)
		inv := get(rate, idiocore.PolicyInvalidate)
		pf := get(rate, idiocore.PolicyPrefetch)
		check(fmt.Sprintf("IDIO reduces MLC writebacks @%vG", rate),
			idio.MLCWB < ddio.MLCWB,
			fmt.Sprintf("(%d vs %d)", idio.MLCWB, ddio.MLCWB))
		check(fmt.Sprintf("IDIO reduces LLC writebacks @%vG", rate),
			idio.LLCWB < ddio.LLCWB,
			fmt.Sprintf("(%d vs %d)", idio.LLCWB, ddio.LLCWB))
		check(fmt.Sprintf("IDIO shortens burst processing @%vG", rate),
			idio.ExeTimeUS <= ddio.ExeTimeUS,
			fmt.Sprintf("(%.0fus vs %.0fus)", idio.ExeTimeUS, ddio.ExeTimeUS))
		check(fmt.Sprintf("IDIO improves p99 @%vG", rate),
			idio.P99US < ddio.P99US,
			fmt.Sprintf("(%.1fus vs %.1fus)", idio.P99US, ddio.P99US))
		check(fmt.Sprintf("Invalidate alone kills MLC WB @%vG", rate),
			inv.MLCWB*10 <= ddio.MLCWB,
			fmt.Sprintf("(%d vs %d)", inv.MLCWB, ddio.MLCWB))
		check(fmt.Sprintf("Prefetch alone raises MLC WB @%vG", rate),
			pf.MLCWB > ddio.MLCWB,
			fmt.Sprintf("(%d vs %d)", pf.MLCWB, ddio.MLCWB))
	}
	// FSM regulation: dynamic IDIO keeps MLC pressure below Static at
	// the saturating rate (Fig. 9g vs 9i).
	check("dynamic FSM regulates MLC WB below Static @100G",
		get(100, idiocore.PolicyIDIO).MLCWB < get(100, idiocore.PolicyStatic).MLCWB,
		fmt.Sprintf("(%d vs %d)", get(100, idiocore.PolicyIDIO).MLCWB, get(100, idiocore.PolicyStatic).MLCWB))

	// Fig. 4 regimes.
	f4 := Fig4(Fig4Opts{
		Rings: []int{64, ring}, Loads: map[string]float64{"high": 8},
		RingCycles: 5, OneWayRings: []int{ring}, MLCSize: mlc, LLCSize: llc,
	})
	var small, large, oneWay Fig4Row
	for _, r := range f4 {
		switch {
		case r.Ring == 64 && !r.OneWay:
			small = r
		case r.Ring == ring && !r.OneWay:
			large = r
		case r.OneWay:
			oneWay = r
		}
	}
	check("small rings are invalidation-dominated (Fig. 4)",
		small.NormMLCInval > small.NormMLCWB,
		fmt.Sprintf("(inval %.2f vs wb %.2f)", small.NormMLCInval, small.NormMLCWB))
	check("large rings are writeback-dominated (Fig. 4)",
		large.NormMLCWB > 0.5,
		fmt.Sprintf("(wb/rx %.2f)", large.NormMLCWB))
	check("way partitioning exposes DMA bloating (Fig. 4 _1way)",
		oneWay.DRAMWriteGbps > large.DRAMWriteGbps,
		fmt.Sprintf("(%.2f vs %.2f Gbps)", oneWay.DRAMWriteGbps, large.DRAMWriteGbps))

	// Fig. 11: shallow NF and direct DRAM.
	f11 := Fig11(Fig11Opts{RingSize: ring, FrameLen: 1024, BurstGbps: 25, Horizon: horizon})
	check("IDIO cuts L2Fwd LLC writebacks (Fig. 11)",
		f11.IDIO.Summary.LLCWB < f11.DDIO.Summary.LLCWB,
		fmt.Sprintf("(%d vs %d)", f11.IDIO.Summary.LLCWB, f11.DDIO.Summary.LLCWB))
	check("class-1 payload goes direct to DRAM (Fig. 11)",
		f11.DirectDRAM.DRAMWriteGbps > f11.DirectDRAM.RxGbps*0.7,
		fmt.Sprintf("(%.1f vs RX %.1f Gbps)", f11.DirectDRAM.DRAMWriteGbps, f11.DirectDRAM.RxGbps))

	// Fig. 13: steady traffic.
	f13 := Fig13(Fig13Opts{RingSize: ring, Gbps: 10, Packets: 1024, Horizon: 10 * sim.Millisecond, MLCSize: mlc, LLCSize: llc})
	check("steady-traffic MLC WB removed by IDIO (Fig. 13)",
		f13.IDIO.Summary.MLCWB*10 <= f13.DDIO.Summary.MLCWB,
		fmt.Sprintf("(%d vs %d)", f13.IDIO.Summary.MLCWB, f13.DDIO.Summary.MLCWB))

	// Shortcoming S1: an IAT-style dynamic DDIO-way baseline reduces
	// LLC leaks but cannot touch the MLC writeback problem.
	baseRows := Baselines(AblationOpts{RingSize: ring, RateGbps: 100, Horizon: horizon, MLCSize: mlc, LLCSize: llc})
	sDDIO, sDyn, sIDIO := baseRows[0], baseRows[1], baseRows[2]
	check("dynamic DDIO ways reduce LLC leaks (prior work)",
		sDyn.LLCWB < sDDIO.LLCWB,
		fmt.Sprintf("(%d vs %d)", sDyn.LLCWB, sDDIO.LLCWB))
	check("dynamic DDIO ways cannot reduce MLC WB (S1)",
		sDyn.MLCWB >= sDDIO.MLCWB*9/10,
		fmt.Sprintf("(%d vs %d)", sDyn.MLCWB, sDDIO.MLCWB))
	check("IDIO beats the dynamic-ways baseline on both",
		sIDIO.MLCWB < sDyn.MLCWB && sIDIO.LLCWB < sDyn.LLCWB,
		fmt.Sprintf("(mlc %d<%d, llc %d<%d)", sIDIO.MLCWB, sDyn.MLCWB, sIDIO.LLCWB, sDyn.LLCWB))

	// Fig. 14: threshold insensitivity.
	f14 := Fig14(Fig14Opts{RingSize: ring, RateGbps: 100, THRs: []uint64{10, 50, 100}, Horizon: horizon, MLCSize: mlc, LLCSize: llc})
	insensitive := true
	for _, r := range f14 {
		if r.NormMLCWB >= 1 || r.NormExeTime >= 1.05 {
			insensitive = false
		}
	}
	check("IDIO improves for every mlcTHR (Fig. 14)", insensitive,
		fmt.Sprintf("(%d thresholds)", len(f14)))

	fmt.Fprintf(w, "\n%d claims checked, %d failed\n", total, failed)
	return failed
}
