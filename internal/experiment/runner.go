package experiment

// The experiment grids are embarrassingly parallel: every cell builds
// its own *idio.System, owns its own simulator and seeded RNGs, and
// shares nothing with its neighbours. RunCells fans a grid out over a
// bounded worker pool while keeping results index-addressed, so the
// output ordering — and, because each cell is deterministic in
// isolation, the output content — is byte-identical to a serial run at
// any parallelism level.

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// RunCells runs fn over every cell and returns the results in cell
// order. parallelism bounds the worker count: 0 (the usual zero value
// of an options struct) means GOMAXPROCS, 1 forces the serial path,
// and values above the cell count are clamped. fn must not touch
// shared mutable state; every figure cell satisfies this because Build
// constructs a private system per cell.
func RunCells[T, R any](parallelism int, cells []T, fn func(T) R) []R {
	out := make([]R, len(cells))
	p := workers(parallelism, len(cells))
	if p <= 1 {
		for i := range cells {
			out[i] = fn(cells[i])
		}
		return out
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < p; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(cells) {
					return
				}
				out[i] = fn(cells[i])
			}
		}()
	}
	wg.Wait()
	return out
}

// RunTasks runs heterogeneous closures (each writing its own disjoint
// destination) under the same pool bound. It is the fan-out for
// figures whose "grid" is a handful of differently-shaped runs
// (Fig. 11's three configurations, Fig. 13's two policies).
func RunTasks(parallelism int, tasks ...func()) {
	RunCells(parallelism, tasks, func(t func()) struct{} {
		t()
		return struct{}{}
	})
}

// workers resolves a Parallelism option against the cell count.
func workers(parallelism, cells int) int {
	p := parallelism
	if p <= 0 {
		p = runtime.GOMAXPROCS(0)
	}
	if p > cells {
		p = cells
	}
	return p
}
