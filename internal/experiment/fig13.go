package experiment

import (
	idiocore "idio/internal/core"
	"idio/internal/sim"
)

// Fig13Result compares DDIO and IDIO under steady (non-bursty)
// traffic: two TouchDrop instances each receiving a constant 10 Gbps
// (20 Gbps total), 1024-entry rings, 1514-byte packets.
type Fig13Result struct {
	DDIO Fig13Run
	IDIO Fig13Run
}

// Fig13Run is one policy's steady-state outcome.
type Fig13Run struct {
	MLCWB     Series
	LLCWB     Series
	Summary   BurstSummary
	RxPackets uint64
}

// Fig13Opts parameterises the steady-traffic run.
type Fig13Opts struct {
	RingSize int
	Gbps     float64 // per NF
	Packets  uint64  // per NF
	Horizon  sim.Duration
	// MLCSize/LLCSize scale the caches for reduced-size runs.
	MLCSize int
	LLCSize int
	// Parallelism bounds the worker pool running the two policies
	// (0 = GOMAXPROCS, 1 = serial).
	Parallelism int
}

// DefaultFig13Opts mirrors Fig. 13: 10 Gbps per TouchDrop. The paper
// notes drops appear above ~12 Gbps per core, so 10 Gbps is just
// below saturation.
func DefaultFig13Opts() Fig13Opts {
	return Fig13Opts{RingSize: 1024, Gbps: 10, Packets: 8192, Horizon: 40 * sim.Millisecond}
}

// Fig13 runs both policies concurrently.
func Fig13(opts Fig13Opts) Fig13Result {
	run := func(pol idiocore.Policy) Fig13Run {
		spec := DefaultSpec(pol)
		spec.RingSize = opts.RingSize
		spec.MLCSize = opts.MLCSize
		spec.LLCSize = opts.LLCSize
		b := Build(spec)
		b.InstallSteady(opts.Gbps, opts.Packets)
		b.Start()
		res := b.Sys.RunUntilIdle(opts.Horizon)
		return Fig13Run{
			MLCWB: seriesOf("mlcWB", res.MLCWBTL),
			LLCWB: seriesOf("llcWB", res.LLCWBTL),
			Summary: BurstSummary{
				MLCWB:      res.Hier.MLCWriteback,
				LLCWB:      res.Hier.LLCWriteback,
				DRAMReads:  res.DRAMReads,
				DRAMWrites: res.DRAMWrites,
				P50US:      res.P50Across().Microseconds(),
				P99US:      res.P99Across().Microseconds(),
				Processed:  res.TotalProcessed(),
				Drops:      res.NIC.RxDrops,
			},
			RxPackets: res.NIC.RxPackets,
		}
	}
	var out Fig13Result
	RunTasks(opts.Parallelism,
		func() { out.DDIO = run(idiocore.PolicyDDIO) },
		func() { out.IDIO = run(idiocore.PolicyIDIO) })
	return out
}
