package experiment

import (
	"fmt"

	idiocore "idio/internal/core"
	"idio/internal/sim"
)

// Fig9Cell is one subplot of Fig. 9: MLC/LLC writeback and DMA request
// rate timelines for one (policy, burst rate) pair processing a single
// burst of two TouchDrop instances, plus the aggregate counts Fig. 10
// normalizes.
type Fig9Cell struct {
	Policy   idiocore.Policy
	RateGbps float64
	MLCWB    Series
	LLCWB    Series
	DMA      Series
	Summary  BurstSummary
}

// BurstSummary is the aggregate outcome of processing one burst.
type BurstSummary struct {
	MLCWB      uint64
	LLCWB      uint64
	DRAMReads  uint64
	DRAMWrites uint64
	ExeTimeUS  float64
	P50US      float64
	P99US      float64
	Processed  uint64
	Drops      uint64
	// AntagonistCPI is non-zero for co-run scenarios.
	AntagonistCPI float64
}

// Fig9Opts parameterises the per-mechanism burst comparison.
type Fig9Opts struct {
	RingSize int
	Rates    []float64 // per-NF burst rates in Gbps
	Policies []idiocore.Policy
	Horizon  sim.Duration
	// MLCSize/LLCSize scale the caches for reduced-size runs (0 keeps
	// the paper's geometry).
	MLCSize int
	LLCSize int
	// Parallelism bounds the worker pool running independent grid
	// cells (0 = GOMAXPROCS, 1 = serial). Results are independent of
	// the setting.
	Parallelism int
}

// DefaultFig9Opts reproduces Fig. 9: {DDIO, Invalidate, Prefetch,
// Static, IDIO} at 100 and 25 Gbps, 1024-entry rings, 1514 B packets.
func DefaultFig9Opts() Fig9Opts {
	return Fig9Opts{
		RingSize: 1024,
		Rates:    []float64{100, 25},
		Policies: []idiocore.Policy{
			idiocore.PolicyDDIO, idiocore.PolicyInvalidate, idiocore.PolicyPrefetch,
			idiocore.PolicyStatic, idiocore.PolicyIDIO,
		},
		Horizon: 9 * sim.Millisecond,
	}
}

// Fig9 runs the full grid, fanning the independent (rate, policy)
// cells out over the worker pool.
func Fig9(opts Fig9Opts) []Fig9Cell {
	type point struct {
		rate float64
		pol  idiocore.Policy
	}
	var grid []point
	for _, rate := range opts.Rates {
		for _, pol := range opts.Policies {
			grid = append(grid, point{rate: rate, pol: pol})
		}
	}
	return RunCells(opts.Parallelism, grid, func(p point) Fig9Cell {
		spec := DefaultSpec(p.pol)
		spec.RingSize = opts.RingSize
		spec.MLCSize = opts.MLCSize
		spec.LLCSize = opts.LLCSize
		return runBurstCell(spec, p.rate, opts.Horizon)
	})
}

// runBurstCell runs one burst to completion for one scenario. It is
// shared by Fig. 10, 11, 12 and 14, which aggregate the same run.
func runBurstCell(spec Spec, rate float64, horizon sim.Duration) Fig9Cell {
	b := Build(spec)
	b.InstallBurst(rate, spec.RingSize, 1)
	res := b.RunBurstToCompletion(horizon)
	pol := spec.Policy
	cell := Fig9Cell{
		Policy:   pol,
		RateGbps: rate,
		MLCWB:    seriesOf("mlcWB", res.MLCWBTL),
		LLCWB:    seriesOf("llcWB", res.LLCWBTL),
		DMA:      seriesOf("dma", res.DMATL),
		Summary: BurstSummary{
			MLCWB:      res.Hier.MLCWriteback,
			LLCWB:      res.Hier.LLCWriteback,
			DRAMReads:  res.DRAMReads,
			DRAMWrites: res.DRAMWrites,
			ExeTimeUS:  res.ExeTime.Microseconds(),
			P50US:      res.P50Across().Microseconds(),
			P99US:      res.P99Across().Microseconds(),
			Processed:  res.TotalProcessed(),
			Drops:      res.NIC.RxDrops,
		},
	}
	if b.Antagonist != nil {
		// Measure the antagonist only while the burst was in flight
		// (first inbound DMA to last packet completion); outside that
		// window it runs uncontended and would dilute the comparison.
		cell.Summary.AntagonistCPI = b.Antagonist.CPI()
		if first, ok := b.Sys.FirstDMAAt(); ok {
			var lastDone sim.Time
			for _, cr := range res.Cores {
				if cr.LastDoneAt > lastDone {
					lastDone = cr.LastDoneAt
				}
			}
			if w := b.Antagonist.CPIBetween(first, lastDone); w > 0 {
				cell.Summary.AntagonistCPI = w
			}
		}
	}
	return cell
}

// Fig9Header describes the summary table columns.
func Fig9Header() []string {
	return []string{"rate", "policy", "mlcWB", "llcWB", "dramRd", "dramWr", "exe us", "p99 us"}
}

// Row renders the cell's summary for the table writer.
func (c Fig9Cell) Row() []string {
	s := c.Summary
	return []string{
		fmt.Sprintf("%.0fG", c.RateGbps), c.Policy.Name(),
		fmt.Sprintf("%d", s.MLCWB), fmt.Sprintf("%d", s.LLCWB),
		fmt.Sprintf("%d", s.DRAMReads), fmt.Sprintf("%d", s.DRAMWrites),
		fmt.Sprintf("%.0f", s.ExeTimeUS), fmt.Sprintf("%.1f", s.P99US),
	}
}
