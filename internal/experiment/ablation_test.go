package experiment

import (
	"testing"

	"idio/internal/sim"
)

func smallAblationOpts(rate float64) AblationOpts {
	return AblationOpts{
		RingSize: 256, RateGbps: rate, Horizon: 9 * sim.Millisecond,
		MLCSize: 256 << 10, LLCSize: 768 << 10,
	}
}

func TestAblationDDIOWays(t *testing.T) {
	// 25 Gbps: the rate where prefetch+invalidate fully absorb inbound
	// data, so IDIO's way-count insensitivity is unambiguous (at
	// 100 Gbps a single-way ingress bottleneck leaks under any policy).
	rows := AblationDDIOWays(smallAblationOpts(25), []int{1, 2, 4})
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Under the DDIO baseline, more DDIO ways means fewer DMA leaks
	// (monotone non-increasing LLC writebacks across 1 -> 4 ways).
	if rows[0].LLCWB < rows[2].LLCWB {
		t.Errorf("baseline: 1-way leaks %d < 4-way %d", rows[0].LLCWB, rows[2].LLCWB)
	}
	// IDIO removes the pressure to cede LLC ways to I/O: at every way
	// count its leaks stay well below the baseline's at the same count.
	for i := 0; i < 3; i++ {
		base, idio := rows[i], rows[i+3]
		if idio.LLCWB*2 > base.LLCWB {
			t.Errorf("ways=%s: IDIO LLC WB %d not << baseline %d", base.Value, idio.LLCWB, base.LLCWB)
		}
	}
}

func TestAblationRingSize(t *testing.T) {
	rows := AblationRingSize(smallAblationOpts(25), []int{64, 256})
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Observation 2: under DDIO the large ring writes back far more
	// than the small one.
	if rows[1].MLCWB <= rows[0].MLCWB {
		t.Errorf("DDIO ring 256 MLC WB %d !> ring 64 %d", rows[1].MLCWB, rows[0].MLCWB)
	}
	// IDIO flattens the ring-size sensitivity.
	if rows[3].MLCWB > rows[1].MLCWB/4 {
		t.Errorf("IDIO ring 256 MLC WB %d not << DDIO %d", rows[3].MLCWB, rows[1].MLCWB)
	}
}

func TestAblationPrefetchDepth(t *testing.T) {
	rows := AblationPrefetchDepth(smallAblationOpts(25), []int{4, 32, 128})
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Drops != 0 {
			t.Errorf("depth %s dropped packets", r.Value)
		}
	}
	// A deeper queue can only help (or tie) exe time at this rate.
	if rows[2].ExeTimeUS > rows[0].ExeTimeUS*1.05 {
		t.Errorf("depth 128 exe %.0f worse than depth 4 %.0f", rows[2].ExeTimeUS, rows[0].ExeTimeUS)
	}
}

func TestAblationDescCoalescing(t *testing.T) {
	rows := AblationDescCoalescing(smallAblationOpts(25),
		[]sim.Duration{0, 1900 * sim.Nanosecond, 20 * sim.Microsecond})
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Longer coalescing delays visibility and therefore stretches p99.
	if rows[2].P99US <= rows[0].P99US {
		t.Errorf("20us coalescing p99 %.1f !> immediate %.1f", rows[2].P99US, rows[0].P99US)
	}
}

func TestAblationMLPCompressesExeGap(t *testing.T) {
	rows := AblationMLP(smallAblationOpts(100), []int{1, 8})
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	// rows: ddio@1, ddio@8, idio@1, idio@8.
	gapSerial := rows[0].ExeTimeUS - rows[2].ExeTimeUS
	gapMLP := rows[1].ExeTimeUS - rows[3].ExeTimeUS
	if gapSerial <= 0 {
		t.Fatalf("IDIO must beat DDIO at MSHRs=1: ddio=%.0f idio=%.0f", rows[0].ExeTimeUS, rows[2].ExeTimeUS)
	}
	// Overlap hides memory latency, so the absolute exe-time gap
	// shrinks — the deviation-1 mechanism from EXPERIMENTS.md.
	if gapMLP >= gapSerial {
		t.Errorf("MLP should compress the exe gap: serial %.0fus, mlp8 %.0fus", gapSerial, gapMLP)
	}
	// And MLP speeds everything up outright.
	if rows[1].ExeTimeUS >= rows[0].ExeTimeUS {
		t.Errorf("DDIO with MSHRs must be faster: %.0f vs %.0f", rows[1].ExeTimeUS, rows[0].ExeTimeUS)
	}
}

func TestAblationReplacement(t *testing.T) {
	rows := AblationReplacement(smallAblationOpts(25))
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	// IDIO's advantage must hold under both replacement policies: its
	// writebacks stay far below the baseline's regardless of policy.
	for i := 0; i < 2; i++ {
		ddio, idio := rows[i], rows[i+2]
		if idio.MLCWB*4 > ddio.MLCWB {
			t.Errorf("%s: IDIO MLC WB %d not << DDIO %d", ddio.Value, idio.MLCWB, ddio.MLCWB)
		}
	}
	for _, r := range rows {
		if r.Drops != 0 {
			t.Errorf("%s/%s dropped packets", r.Param, r.Value)
		}
	}
}

func TestAblationInclusion(t *testing.T) {
	rows := AblationInclusion(smallAblationOpts(25))
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	// IDIO's benefit must hold under both inclusion behaviours.
	for i := 0; i < 2; i++ {
		ddio, idio := rows[i], rows[i+2]
		if idio.MLCWB*4 > ddio.MLCWB {
			t.Errorf("%s: IDIO MLC WB %d not << DDIO %d", ddio.Value, idio.MLCWB, ddio.MLCWB)
		}
		if ddio.Drops != 0 || idio.Drops != 0 {
			t.Errorf("%s: drops", ddio.Value)
		}
	}
}

func TestAblationFrameSize(t *testing.T) {
	rows := AblationFrameSize(smallAblationOpts(25), []int{128, 512, 1514})
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	// DDIO's writeback volume grows with frame size (more payload
	// lines per packet to consume and evict).
	if !(rows[0].MLCWB <= rows[1].MLCWB && rows[1].MLCWB <= rows[2].MLCWB) {
		t.Errorf("DDIO MLC WB must grow with frame size: %d %d %d",
			rows[0].MLCWB, rows[1].MLCWB, rows[2].MLCWB)
	}
	// LLC-leak elimination holds at every size; the MLC-writeback
	// benefit is size-dependent (at tiny frames descriptor churn makes
	// IDIO's MLC traffic comparable to DDIO's) and complete at MTU.
	for i := 0; i < 3; i++ {
		ddio, idio := rows[i], rows[i+3]
		if idio.LLCWB*4 > ddio.LLCWB {
			t.Errorf("%s: IDIO LLC WB %d not << DDIO %d", ddio.Value, idio.LLCWB, ddio.LLCWB)
		}
	}
	if rows[5].MLCWB*10 > rows[2].MLCWB {
		t.Errorf("MTU: IDIO MLC WB %d not << DDIO %d", rows[5].MLCWB, rows[2].MLCWB)
	}
	// The absolute IDIO-vs-DDIO exe gap widens with frame size
	// (payload orchestration pays off as payloads grow).
	gapSmall := rows[0].ExeTimeUS - rows[3].ExeTimeUS
	gapMTU := rows[2].ExeTimeUS - rows[5].ExeTimeUS
	if gapMTU <= gapSmall {
		t.Errorf("exe gap must widen with frames: %.0f (128B) vs %.0f (MTU)", gapSmall, gapMTU)
	}
}

func TestAblationAdaptivePrefetch(t *testing.T) {
	rows := AblationAdaptivePrefetch(smallAblationOpts(100))
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	none, fsm, adaptive := rows[0], rows[1], rows[2]
	// Any regulator must not lose packets.
	if none.Drops != 0 || fsm.Drops != 0 || adaptive.Drops != 0 {
		t.Error("no drops expected")
	}
	// The adaptive throttle regulates MLC pressure at least as well
	// as the unregulated Static prefetcher (the paper predicts "more
	// benefit" from following the CPU's consumption).
	if adaptive.MLCWB > none.MLCWB {
		t.Errorf("adaptive MLC WB %d !<= unregulated %d", adaptive.MLCWB, none.MLCWB)
	}
	_ = fsm
}
