package experiment

import (
	"fmt"
	"idio/internal/cache"

	idiocore "idio/internal/core"
	"idio/internal/sim"
)

// The ablations probe the design choices DESIGN.md calls out, beyond
// the paper's own figures:
//
//   - DDIO way count: how much LLC must be ceded to I/O under the
//     baseline, and whether IDIO removes that sensitivity,
//   - ring size: the footprint-vs-MLC crossover of Observation 2,
//   - prefetch queue depth: Sec. V-C fixes 32; what a smaller or
//     deeper queue changes,
//   - descriptor write-back coalescing: the ~1.9 µs visibility lag of
//     Sec. VII versus immediate visibility,
//   - the adaptive (CPU-following) prefetcher the paper sketches as
//     future work, versus the FSM-regulated one.

// AblationRow is one configuration of a one-dimensional sweep.
type AblationRow struct {
	Param string
	Value string

	MLCWB      uint64
	LLCWB      uint64
	DRAMWrites uint64
	ExeTimeUS  float64
	P99US      float64
	Drops      uint64
}

// Row renders for the table writer.
func (r AblationRow) Row() []string {
	return []string{
		r.Param, r.Value,
		fmt.Sprintf("%d", r.MLCWB), fmt.Sprintf("%d", r.LLCWB),
		fmt.Sprintf("%d", r.DRAMWrites),
		fmt.Sprintf("%.0f", r.ExeTimeUS), fmt.Sprintf("%.1f", r.P99US),
		fmt.Sprintf("%d", r.Drops),
	}
}

// AblationHeader describes the sweep table columns.
func AblationHeader() []string {
	return []string{"param", "value", "mlcWB", "llcWB", "dramWr", "exe us", "p99 us", "drops"}
}

// AblationOpts parameterises the sweeps. Zero values inherit the
// usual full-scale geometry.
type AblationOpts struct {
	RingSize int
	RateGbps float64
	Horizon  sim.Duration
	MLCSize  int
	LLCSize  int
	// Parallelism bounds the worker pool running independent sweep
	// cells (0 = GOMAXPROCS, 1 = serial).
	Parallelism int
}

// DefaultAblationOpts uses the Fig. 9 scenario (2x TouchDrop, one
// 25 Gbps burst each).
func DefaultAblationOpts() AblationOpts {
	return AblationOpts{RingSize: 1024, RateGbps: 25, Horizon: 9 * sim.Millisecond}
}

func (o AblationOpts) spec(pol idiocore.Policy) Spec {
	sp := DefaultSpec(pol)
	sp.RingSize = o.RingSize
	sp.MLCSize = o.MLCSize
	sp.LLCSize = o.LLCSize
	return sp
}

func summarise(param, value string, c Fig9Cell) AblationRow {
	s := c.Summary
	return AblationRow{
		Param: param, Value: value,
		MLCWB: s.MLCWB, LLCWB: s.LLCWB, DRAMWrites: s.DRAMWrites,
		ExeTimeUS: s.ExeTimeUS, P99US: s.P99US, Drops: s.Drops,
	}
}

// sweepCell is one configuration of a one-dimensional sweep: a fully
// prepared Spec plus its table labels. Every Ablation* sweep reduces
// to a list of these fanned out over the worker pool.
type sweepCell struct {
	param, value string
	spec         Spec
}

// runSweep fans the cells out and summarises each in order.
func runSweep(opts AblationOpts, cells []sweepCell) []AblationRow {
	return RunCells(opts.Parallelism, cells, func(c sweepCell) AblationRow {
		return summarise(c.param, c.value, runBurstCell(c.spec, opts.RateGbps, opts.Horizon))
	})
}

// AblationDDIOWays sweeps the number of LLC ways granted to DDIO under
// both the baseline and IDIO.
func AblationDDIOWays(opts AblationOpts, ways []int) []AblationRow {
	var cells []sweepCell
	for _, pol := range []idiocore.Policy{idiocore.PolicyDDIO, idiocore.PolicyIDIO} {
		for _, w := range ways {
			sp := opts.spec(pol)
			sp.DDIOWays = w
			cells = append(cells, sweepCell{"ddioWays/" + pol.Name(), fmt.Sprintf("%d", w), sp})
		}
	}
	return runSweep(opts, cells)
}

// AblationRingSize sweeps the DMA ring size under both policies,
// exposing the footprint-vs-MLC crossover.
func AblationRingSize(opts AblationOpts, rings []int) []AblationRow {
	var cells []sweepCell
	for _, pol := range []idiocore.Policy{idiocore.PolicyDDIO, idiocore.PolicyIDIO} {
		for _, ring := range rings {
			sp := opts.spec(pol)
			sp.RingSize = ring
			cells = append(cells, sweepCell{"ring/" + pol.Name(), fmt.Sprintf("%d", ring), sp})
		}
	}
	return runSweep(opts, cells)
}

// AblationPrefetchDepth sweeps the MLC prefetcher queue depth under
// IDIO.
func AblationPrefetchDepth(opts AblationOpts, depths []int) []AblationRow {
	var cells []sweepCell
	for _, d := range depths {
		sp := opts.spec(idiocore.PolicyIDIO)
		sp.PrefetchDepth = d
		cells = append(cells, sweepCell{"pfDepth", fmt.Sprintf("%d", d), sp})
	}
	return runSweep(opts, cells)
}

// AblationDescCoalescing compares descriptor write-back visibility
// delays (0 vs the default ~1.9 µs vs an exaggerated lag) under the
// baseline.
func AblationDescCoalescing(opts AblationOpts, delays []sim.Duration) []AblationRow {
	var cells []sweepCell
	for _, d := range delays {
		sp := opts.spec(idiocore.PolicyDDIO)
		if d == 0 {
			sp.DescWBDelay = -1 // explicit zero
		} else {
			sp.DescWBDelay = d
		}
		cells = append(cells, sweepCell{"descWB", fmt.Sprintf("%.1fus", d.Microseconds()), sp})
	}
	return runSweep(opts, cells)
}

// AblationMLP sweeps the core's MSHR budget under both policies,
// quantifying how memory-level parallelism compresses the
// execution-time gap between DDIO and IDIO (the main systematic
// deviation from the paper's out-of-order cores — see EXPERIMENTS.md).
func AblationMLP(opts AblationOpts, mshrs []int) []AblationRow {
	var cells []sweepCell
	for _, pol := range []idiocore.Policy{idiocore.PolicyDDIO, idiocore.PolicyIDIO} {
		for _, m := range mshrs {
			sp := opts.spec(pol)
			sp.MSHRs = m
			cells = append(cells, sweepCell{"mshrs/" + pol.Name(), fmt.Sprintf("%d", m), sp})
		}
	}
	return runSweep(opts, cells)
}

// AblationReplacement compares cache replacement policies under both
// the baseline and IDIO: SRRIP's scan-resistant insertion changes how
// fast dead DMA data ages out of the LLC relative to true LRU.
func AblationReplacement(opts AblationOpts) []AblationRow {
	var cells []sweepCell
	for _, pol := range []idiocore.Policy{idiocore.PolicyDDIO, idiocore.PolicyIDIO} {
		for _, repl := range []cache.Policy{cache.LRU, cache.SRRIP} {
			sp := opts.spec(pol)
			repl := repl
			sp.ReplPolicy = &repl
			cells = append(cells, sweepCell{"repl/" + pol.Name(), repl.String(), sp})
		}
	}
	return runSweep(opts, cells)
}

// AblationInclusion compares the two non-inclusive LLC behaviours:
// exclusive move-on-hit (the paper's described data movement) versus
// NINE retain-on-hit (a clean copy stays behind). NINE halves the
// effective on-chip capacity for streaming DMA data but absorbs MLC
// writebacks in place.
func AblationInclusion(opts AblationOpts) []AblationRow {
	var cells []sweepCell
	for _, pol := range []idiocore.Policy{idiocore.PolicyDDIO, idiocore.PolicyIDIO} {
		for _, retain := range []bool{false, true} {
			sp := opts.spec(pol)
			sp.RetainLLCOnHit = retain
			name := "exclusive"
			if retain {
				name = "nine"
			}
			cells = append(cells, sweepCell{"inclusion/" + pol.Name(), name, sp})
		}
	}
	return runSweep(opts, cells)
}

// AblationFrameSize sweeps the packet size under both policies. Small
// frames are header-dominated (one cacheline per packet), so DDIO's
// static LLC placement wastes little; at MTU the payload dominates and
// IDIO's payload orchestration pays off — the sweep locates that
// crossover.
func AblationFrameSize(opts AblationOpts, sizes []int) []AblationRow {
	var cells []sweepCell
	for _, pol := range []idiocore.Policy{idiocore.PolicyDDIO, idiocore.PolicyIDIO} {
		for _, fs := range sizes {
			sp := opts.spec(pol)
			sp.FrameLen = fs
			cells = append(cells, sweepCell{"frame/" + pol.Name(), fmt.Sprintf("%dB", fs), sp})
		}
	}
	return runSweep(opts, cells)
}

// AblationAdaptivePrefetch compares three prefetch regulators at the
// rate where regulation matters most (100 Gbps):
//
//   - none:     the Static policy (status hardwired to MLC),
//   - fsm:      the paper's Fig. 8 controller (dynamic IDIO),
//   - adaptive: the CPU-following throttle the paper sketches as
//     future work, layered on the unregulated Static policy so the
//     throttle is the only regulator.
func AblationAdaptivePrefetch(opts AblationOpts) []AblationRow {
	adaptive := opts.spec(idiocore.PolicyStatic)
	adaptive.AdaptivePrefetch = true
	cells := []sweepCell{
		{"pfRegulator", "none", opts.spec(idiocore.PolicyStatic)},
		{"pfRegulator", "fsm", opts.spec(idiocore.PolicyIDIO)},
		{"pfRegulator", "adaptive", adaptive},
	}
	return runSweep(opts, cells)
}
