package experiment

import (
	"bytes"
	"reflect"
	"sort"
	"sync"
	"sync/atomic"
	"testing"

	idiocore "idio/internal/core"
	"idio/internal/sim"
)

func TestRunCellsOrderAndCoverage(t *testing.T) {
	cells := make([]int, 100)
	for i := range cells {
		cells[i] = i
	}
	for _, par := range []int{0, 1, 3, 8, 200} {
		out := RunCells(par, cells, func(c int) int { return c * c })
		for i, v := range out {
			if v != i*i {
				t.Fatalf("par=%d: out[%d] = %d, want %d", par, i, v, i*i)
			}
		}
	}
}

func TestRunCellsEmpty(t *testing.T) {
	if out := RunCells(4, nil, func(c int) int { return c }); len(out) != 0 {
		t.Fatalf("expected empty result, got %v", out)
	}
}

func TestRunCellsEachCellOnce(t *testing.T) {
	var calls [64]atomic.Int32
	cells := make([]int, len(calls))
	for i := range cells {
		cells[i] = i
	}
	RunCells(8, cells, func(c int) struct{} {
		calls[c].Add(1)
		return struct{}{}
	})
	for i := range calls {
		if n := calls[i].Load(); n != 1 {
			t.Fatalf("cell %d ran %d times, want 1", i, n)
		}
	}
}

func TestRunTasksRunsAll(t *testing.T) {
	var mu sync.Mutex
	var got []int
	RunTasks(4,
		func() { mu.Lock(); got = append(got, 0); mu.Unlock() },
		func() { mu.Lock(); got = append(got, 1); mu.Unlock() },
		func() { mu.Lock(); got = append(got, 2); mu.Unlock() })
	sort.Ints(got)
	if !reflect.DeepEqual(got, []int{0, 1, 2}) {
		t.Fatalf("tasks ran: %v", got)
	}
}

// TestFig9ParallelDeterminism is the regression test for the PR's core
// claim: fanning a figure grid over the worker pool changes wall-clock
// time only. A reduced-scale Fig. 9 must produce deeply equal cells —
// and byte-identical rendered output — at Parallelism 1 and 8.
func TestFig9ParallelDeterminism(t *testing.T) {
	opts := Fig9Opts{
		RingSize: 128,
		Rates:    []float64{25},
		Policies: []idiocore.Policy{
			idiocore.PolicyDDIO, idiocore.PolicyStatic, idiocore.PolicyIDIO,
		},
		Horizon: 2 * sim.Millisecond,
		MLCSize: 128 << 10,
		LLCSize: 384 << 10,
	}
	serial := opts
	serial.Parallelism = 1
	parallel := opts
	parallel.Parallelism = 8

	a := Fig9(serial)
	b := Fig9(parallel)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("Fig9 cells differ between Parallelism 1 and 8:\nserial:   %+v\nparallel: %+v", a, b)
	}

	render := func(cells []Fig9Cell) []byte {
		var buf bytes.Buffer
		rows := make([]TableRow, len(cells))
		for i, c := range cells {
			rows[i] = c
		}
		if err := WriteTable(&buf, "fig9", Fig9Header(), rows); err != nil {
			t.Fatal(err)
		}
		for _, c := range cells {
			if err := WriteSeriesCSV(&buf, c.MLCWB, c.LLCWB, c.DMA); err != nil {
				t.Fatal(err)
			}
		}
		return buf.Bytes()
	}
	if ra, rb := render(a), render(b); !bytes.Equal(ra, rb) {
		t.Fatalf("rendered output differs between Parallelism 1 and 8:\n--- serial ---\n%s\n--- parallel ---\n%s", ra, rb)
	}
}
