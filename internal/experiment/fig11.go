package experiment

import (
	idiocore "idio/internal/core"
	"idio/internal/sim"
	"idio/internal/stats"
)

// Fig11Result compares DDIO and IDIO running the shallow zero-copy
// L2Fwd NF (1024-byte packets), plus the selective-direct-DRAM variant
// where the application drops payloads (class 1).
type Fig11Result struct {
	DDIO Fig9Cell
	IDIO Fig9Cell

	// DirectDRAM summarises the L2FwdDropPayload + class-1 run: the
	// paper expects LLC writeback rate and DRAM write bandwidth equal
	// to the RX bandwidth.
	DirectDRAM struct {
		Summary       BurstSummary
		RxGbps        float64
		DRAMWriteGbps float64
	}
}

// Fig11Opts parameterises the shallow-NF comparison.
type Fig11Opts struct {
	RingSize  int
	FrameLen  int
	BurstGbps float64
	Horizon   sim.Duration
	// Parallelism bounds the worker pool running the three
	// configurations (0 = GOMAXPROCS, 1 = serial).
	Parallelism int
}

// DefaultFig11Opts mirrors Fig. 11: 1024-entry rings, 1024-byte
// packets.
func DefaultFig11Opts() Fig11Opts {
	return Fig11Opts{RingSize: 1024, FrameLen: 1024, BurstGbps: 25, Horizon: 9 * sim.Millisecond}
}

// Fig11 runs the three configurations.
func Fig11(opts Fig11Opts) Fig11Result {
	spec := func(pol idiocore.Policy) Spec {
		sp := DefaultSpec(pol)
		sp.RingSize = opts.RingSize
		sp.App = L2Fwd
		sp.FrameLen = opts.FrameLen
		return sp
	}
	var out Fig11Result
	RunTasks(opts.Parallelism,
		func() { out.DDIO = runBurstCell(spec(idiocore.PolicyDDIO), opts.BurstGbps, opts.Horizon) },
		func() { out.IDIO = runBurstCell(spec(idiocore.PolicyIDIO), opts.BurstGbps, opts.Horizon) },
		func() {
			// Direct-DRAM variant: class-1 flows + payload-dropping app.
			ddSpec := DefaultSpec(idiocore.PolicyIDIO)
			ddSpec.RingSize = opts.RingSize
			ddSpec.App = L2FwdDropPayload
			ddSpec.FrameLen = opts.FrameLen
			ddSpec.ClassOne = true
			b := Build(ddSpec)
			b.InstallBurst(opts.BurstGbps, opts.RingSize, 1)
			res := b.RunBurstToCompletion(opts.Horizon)
			out.DirectDRAM.Summary = BurstSummary{
				MLCWB:      res.Hier.MLCWriteback,
				LLCWB:      res.Hier.LLCWriteback,
				DRAMReads:  res.DRAMReads,
				DRAMWrites: res.DRAMWrites,
				ExeTimeUS:  res.ExeTime.Microseconds(),
				Processed:  res.TotalProcessed(),
				Drops:      res.NIC.RxDrops,
			}
			span := res.Now.Sub(0)
			out.DirectDRAM.RxGbps = stats.Gbps(res.NIC.RxBytes, span)
			out.DirectDRAM.DRAMWriteGbps = stats.Gbps(res.DRAMWrites*64, span)
		})
	return out
}
