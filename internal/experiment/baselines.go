package experiment

import (
	"fmt"

	idiocore "idio/internal/core"
	"idio/internal/sim"
)

// Baselines reproduces the paper's Shortcoming S1 argument: static
// DDIO, an IAT-style dynamic DDIO-way policy (prior work [41]), and
// IDIO on the same bursty TouchDrop scenario. The dynamic baseline
// reduces DMA leaks by ceding more LLC ways to I/O, but — because all
// inbound data still lands in the LLC — it cannot touch the MLC
// writeback problem; IDIO addresses both.

// BaselineRow is one policy's outcome.
type BaselineRow struct {
	Name      string
	MLCWB     uint64
	LLCWB     uint64
	ExeTimeUS float64
	P99US     float64
	// PeakWays is the largest DDIO way allocation the dynamic
	// baseline reached during the run (the tuner shrinks back once the
	// burst drains, so the end-of-run value is uninformative).
	PeakWays int
}

// Row renders for the table writer.
func (r BaselineRow) Row() []string {
	return []string{
		r.Name, fmt.Sprintf("%d", r.MLCWB), fmt.Sprintf("%d", r.LLCWB),
		fmt.Sprintf("%.0f", r.ExeTimeUS), fmt.Sprintf("%.1f", r.P99US),
		fmt.Sprintf("%d", r.PeakWays),
	}
}

// BaselineHeader describes the table columns.
func BaselineHeader() []string {
	return []string{"policy", "mlcWB", "llcWB", "exe us", "p99 us", "ddioWays(peak)"}
}

// Baselines runs the three policies on the Fig. 9 scenario.
func Baselines(opts AblationOpts) []BaselineRow {
	run := func(name string, pol idiocore.Policy, tuner *idiocore.WayTunerConfig) BaselineRow {
		spec := opts.spec(pol)
		b := Build(spec)
		if tuner != nil {
			// Re-wire with the dynamic-way tuner enabled. Build does
			// not expose the knob (it is not part of any figure), so
			// construct the tuner against the built system directly.
			b.Sys.WayTuner = idiocore.NewWayTuner(*tuner, b.Sys.Hier.LLCWBIOCount, b.Sys.Hier.SetDDIOWays)
		}
		b.InstallBurst(opts.RateGbps, spec.RingSize, 1)
		res := b.RunBurstToCompletion(opts.Horizon)
		row := BaselineRow{
			Name:      name,
			MLCWB:     res.Hier.MLCWriteback,
			LLCWB:     res.Hier.LLCWriteback,
			ExeTimeUS: res.ExeTime.Microseconds(),
			P99US:     res.P99Across().Microseconds(),
			PeakWays:  b.Sys.Hier.DDIOWays(),
		}
		if b.Sys.WayTuner != nil {
			row.PeakWays = b.Sys.WayTuner.PeakWays
		}
		return row
	}
	cfg := idiocore.DefaultWayTunerConfig()
	type cell struct {
		name  string
		pol   idiocore.Policy
		tuner *idiocore.WayTunerConfig
	}
	cells := []cell{
		{"DDIO(static 2-way)", idiocore.PolicyDDIO, nil},
		{"DynamicWays(2..4)", idiocore.PolicyDDIO, &cfg},
		{"IDIO", idiocore.PolicyIDIO, nil},
	}
	return RunCells(opts.Parallelism, cells, func(c cell) BaselineRow {
		return run(c.name, c.pol, c.tuner)
	})
}

// DefaultBaselineOpts runs the comparison at the rate where DMA leaks
// are most severe.
func DefaultBaselineOpts() AblationOpts {
	return AblationOpts{RingSize: 1024, RateGbps: 100, Horizon: 9 * sim.Millisecond}
}
