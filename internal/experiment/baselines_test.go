package experiment

import (
	"testing"

	idiocore "idio/internal/core"
	"idio/internal/sim"
)

func TestBaselinesReproduceS1(t *testing.T) {
	opts := smallAblationOpts(100)
	rows := Baselines(opts)
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	ddio, dyn, idioRow := rows[0], rows[1], rows[2]

	// The dynamic baseline grows its allocation under leak pressure...
	if dyn.PeakWays <= 2 {
		t.Errorf("dynamic baseline never grew: peak %d ways", dyn.PeakWays)
	}
	// ...and thereby reduces LLC writebacks relative to static DDIO...
	if dyn.LLCWB >= ddio.LLCWB {
		t.Errorf("dynamic ways LLC WB %d !< static %d", dyn.LLCWB, ddio.LLCWB)
	}
	// ...but S1: it cannot touch the MLC writeback problem (all data
	// still lands in the LLC, dead buffers still evict from the MLC).
	if dyn.MLCWB < ddio.MLCWB*9/10 {
		t.Errorf("dynamic ways should not materially change MLC WB: %d vs %d", dyn.MLCWB, ddio.MLCWB)
	}
	// IDIO beats both on MLC writebacks.
	if idioRow.MLCWB >= dyn.MLCWB || idioRow.MLCWB >= ddio.MLCWB {
		t.Errorf("IDIO MLC WB %d must undercut both baselines (%d, %d)",
			idioRow.MLCWB, ddio.MLCWB, dyn.MLCWB)
	}
}

func TestWayTunerGrowAndShrink(t *testing.T) {
	leaks := uint64(0)
	ways := 0
	cfg := idiocore.WayTunerConfig{
		MinWays: 2, MaxWays: 4,
		SampleInterval: 100 * sim.Microsecond,
		GrowTHR:        10, ShrinkTHR: 2,
	}
	w := idiocore.NewWayTuner(cfg, func() uint64 { return leaks }, func(n int) { ways = n })
	s := sim.New()
	w.Start(s)
	s.RunUntil(0)
	if ways != 2 {
		t.Fatalf("tuner must start at MinWays: %d", ways)
	}
	// Heavy leaking: grows one way per interval up to the cap.
	leaks += 100
	s.RunUntil(sim.Time(100 * sim.Microsecond))
	if ways != 3 {
		t.Fatalf("ways = %d after one loaded interval, want 3", ways)
	}
	leaks += 100
	s.RunUntil(sim.Time(200 * sim.Microsecond))
	leaks += 100
	s.RunUntil(sim.Time(300 * sim.Microsecond))
	if ways != 4 || w.Ways() != 4 {
		t.Fatalf("ways = %d, want cap 4", ways)
	}
	// Quiet: shrinks back to the floor.
	s.RunUntil(sim.Time(600 * sim.Microsecond))
	if ways != 2 {
		t.Fatalf("ways = %d after quiet intervals, want 2", ways)
	}
	if w.Grows == 0 || w.Shrinks == 0 {
		t.Fatalf("tuner stats grows=%d shrinks=%d", w.Grows, w.Shrinks)
	}
}

func TestWayTunerValidation(t *testing.T) {
	for _, cfg := range []idiocore.WayTunerConfig{
		{MinWays: 0, MaxWays: 2, SampleInterval: 1},
		{MinWays: 3, MaxWays: 2, SampleInterval: 1},
		{MinWays: 1, MaxWays: 2, SampleInterval: 0},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("expected panic for %+v", cfg)
				}
			}()
			idiocore.NewWayTuner(cfg, func() uint64 { return 0 }, func(int) {})
		}()
	}
}
