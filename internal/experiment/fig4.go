package experiment

import (
	"fmt"

	"idio/internal/cache"
	idiocore "idio/internal/core"
	"idio/internal/sim"
	"idio/internal/stats"
	"idio/internal/traffic"
)

// Fig4Row is one bar group of Fig. 4: MLC writeback and invalidation
// rates normalized to the RX network bandwidth, plus DRAM read/write
// bandwidth, for a (ring size, load level[, way partition]) point
// under baseline DDIO.
type Fig4Row struct {
	Ring   int
	Load   string // "low" | "med" | "high"
	Gbps   float64
	OneWay bool // "_1way" LLC partition variant

	// NormMLCWB and NormMLCInval are MLC writeback / invalidation
	// byte-rates normalized to the RX byte-rate (Fig. 4 left).
	NormMLCWB    float64
	NormMLCInval float64
	// DRAM bandwidths in Gbps (Fig. 4 right).
	DRAMReadGbps  float64
	DRAMWriteGbps float64
}

// Fig4Opts parameterises the experiment.
type Fig4Opts struct {
	Rings []int
	// Loads are per-NF steady rates in Gbps. The paper's low/med/high
	// on the physical host are 8 Mbps / 1 Gbps / 20 Gbps.
	Loads map[string]float64
	// RingCycles controls how many times the DMA ring is cycled (the
	// steady-state the figure measures).
	RingCycles int
	// OneWayRings lists ring sizes additionally run with the
	// single-way LLC partition ("_1way" in Fig. 4 right).
	OneWayRings []int
	// MLCSize/LLCSize scale the caches for reduced-size runs.
	MLCSize int
	LLCSize int
	// Parallelism bounds the worker pool running independent sweep
	// cells (0 = GOMAXPROCS, 1 = serial). Results are independent of
	// the setting.
	Parallelism int
}

// DefaultFig4Opts reproduces the figure's sweep. The paper's loads are
// aggregate over ten NF instances (8 Mbps / 1 Gbps / 20 Gbps); with
// two NFs the same aggregates give per-NF rates of 4 Mbps / 500 Mbps /
// 10 Gbps. "low" is scaled to 50 Mbps per NF to keep simulated time
// sane; it sits in the same regime (each packet is fully consumed long
// before the next arrives). All loads keep the cores unsaturated, as
// in the figure — the ring cycles because the NIC head laps it, not
// because the CPU falls behind.
func DefaultFig4Opts() Fig4Opts {
	return Fig4Opts{
		Rings:       []int{64, 1024, 2048},
		Loads:       map[string]float64{"low": 0.05, "med": 0.5, "high": 10},
		RingCycles:  3,
		OneWayRings: []int{1024, 2048},
	}
}

// fig4Cell names one sweep point.
type fig4Cell struct {
	ring   int
	load   string
	gbps   float64
	oneWay bool
}

// Fig4 runs the sweep and returns rows ordered ring-major.
func Fig4(opts Fig4Opts) []Fig4Row {
	var cells []fig4Cell
	for _, ring := range opts.Rings {
		for _, load := range []string{"low", "med", "high"} {
			gbps, ok := opts.Loads[load]
			if !ok {
				continue
			}
			cells = append(cells, fig4Cell{ring: ring, load: load, gbps: gbps})
		}
	}
	for _, ring := range opts.OneWayRings {
		cells = append(cells, fig4Cell{ring: ring, load: "high", gbps: opts.Loads["high"], oneWay: true})
	}
	return RunCells(opts.Parallelism, cells, func(c fig4Cell) Fig4Row {
		return fig4Point(opts, c.ring, c.load, c.gbps, c.oneWay)
	})
}

func fig4Point(opts Fig4Opts, ring int, load string, gbps float64, oneWay bool) Fig4Row {
	spec := DefaultSpec(idiocore.PolicyDDIO)
	spec.RingSize = ring
	spec.MLCSize = opts.MLCSize
	spec.LLCSize = opts.LLCSize
	if oneWay {
		// Confine the application's LLC fills to a single non-DDIO way
		// (way 2), leaving the 2 DDIO ways untouched.
		spec.AppWayMask = cache.WayMask(1 << 2)
	}
	b := Build(spec)
	count := uint64(opts.RingCycles * ring)
	b.InstallSteady(gbps, count)
	b.Start()

	// Horizon: stream duration plus generous drain time.
	gap := traffic.InterArrival(traffic.Gbps(gbps), spec.FrameLen)
	horizon := sim.Duration(int64(gap)*int64(count)) + 50*sim.Millisecond
	res := b.Sys.RunUntilIdle(horizon)

	rxBytes := float64(res.NIC.RxBytes)
	wbBytes := float64(res.Hier.MLCWriteback * 64)
	invBytes := float64(res.Hier.MLCInval * 64)
	span := res.Now.Sub(0)
	return Fig4Row{
		Ring: ring, Load: load, Gbps: gbps, OneWay: oneWay,
		NormMLCWB:     ratio(wbBytes, rxBytes),
		NormMLCInval:  ratio(invBytes, rxBytes),
		DRAMReadGbps:  stats.Gbps(res.DRAMReads*64, span),
		DRAMWriteGbps: stats.Gbps(res.DRAMWrites*64, span),
	}
}

// Fig4Header describes the table columns.
func Fig4Header() []string {
	return []string{"ring", "load", "1way", "MLCWB/RX", "MLCInval/RX", "DRAMrd Gbps", "DRAMwr Gbps"}
}

// Row renders one row for the table writer.
func (r Fig4Row) Row() []string {
	return []string{
		fmt.Sprintf("%d", r.Ring), r.Load, fmt.Sprintf("%v", r.OneWay),
		fmt.Sprintf("%.2f", r.NormMLCWB), fmt.Sprintf("%.2f", r.NormMLCInval),
		fmt.Sprintf("%.2f", r.DRAMReadGbps), fmt.Sprintf("%.2f", r.DRAMWriteGbps),
	}
}
