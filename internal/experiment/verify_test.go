package experiment

import (
	"bytes"
	"strings"
	"testing"
)

func TestVerifyAllClaimsPass(t *testing.T) {
	var buf bytes.Buffer
	failed := Verify(&buf)
	if failed != 0 {
		t.Fatalf("verify failed %d claims:\n%s", failed, buf.String())
	}
	out := buf.String()
	if strings.Count(out, "PASS") < 23 {
		t.Fatalf("expected at least 23 PASS lines:\n%s", out)
	}
	if strings.Contains(out, "FAIL") {
		t.Fatalf("unexpected FAIL:\n%s", out)
	}
}
