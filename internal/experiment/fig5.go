package experiment

import (
	idiocore "idio/internal/core"
	"idio/internal/sim"
)

// Fig5Result carries the writeback timelines of Fig. 5: MLC and LLC
// writeback rates (MTPS) while two TouchDrop instances process bursty
// traffic under baseline DDIO, plus the DMA request rate used to mark
// the DMA/execution phases.
type Fig5Result struct {
	MLCWB Series
	LLCWB Series
	DMA   Series
	// Totals for assertions/summary.
	TotalMLCWB uint64
	TotalLLCWB uint64
	Processed  uint64
}

// Fig5Opts parameterises the timeline run.
type Fig5Opts struct {
	RingSize  int
	NumBursts int
	// BurstGbps is the per-NF burst rate; the figure's 30 ms window
	// shows multiple bursts at a rate that stresses the DDIO ways.
	BurstGbps float64
	Horizon   sim.Duration
	// MLCSize/LLCSize scale the caches for reduced-size runs.
	MLCSize int
	LLCSize int
}

// DefaultFig5Opts mirrors Fig. 5: 1024-entry rings, 1514-byte packets,
// three bursts over a 30 ms timeline.
func DefaultFig5Opts() Fig5Opts {
	return Fig5Opts{RingSize: 1024, NumBursts: 3, BurstGbps: 25, Horizon: 30 * sim.Millisecond}
}

// Fig5 runs the burst timeline under baseline DDIO.
func Fig5(opts Fig5Opts) Fig5Result {
	spec := DefaultSpec(idiocore.PolicyDDIO)
	spec.RingSize = opts.RingSize
	spec.MLCSize = opts.MLCSize
	spec.LLCSize = opts.LLCSize
	b := Build(spec)
	b.InstallBurst(opts.BurstGbps, opts.RingSize, opts.NumBursts)
	b.Start()
	res := b.Sys.Run(opts.Horizon)
	return Fig5Result{
		MLCWB:      seriesOf("mlcWB", res.MLCWBTL),
		LLCWB:      seriesOf("llcWB", res.LLCWBTL),
		DMA:        seriesOf("dma", res.DMATL),
		TotalMLCWB: res.Hier.MLCWriteback,
		TotalLLCWB: res.Hier.LLCWriteback,
		Processed:  res.TotalProcessed(),
	}
}
