package experiment

import (
	"fmt"
	"io"
	"strings"

	"idio/internal/sim"
)

// ReportOpts sizes a report run.
type ReportOpts struct {
	// Quick shrinks every experiment to the 256-entry-ring scale.
	Quick bool
	// Parallelism bounds each experiment's worker pool
	// (0 = GOMAXPROCS, 1 = serial). Per-cell results are independent
	// of this value; only wall-clock time changes.
	Parallelism int
}

// WriteReport regenerates the full evaluation — every paper figure,
// the baselines, the ablations and the latency breakdown — and writes
// a self-contained markdown report. This is the artifact a user would
// attach to a reproduction claim.
func WriteReport(w io.Writer, opts ReportOpts) error {
	rw := &reportWriter{w: w}
	scale := func(ring *int, mlc, llc *int) {
		if opts.Quick {
			*ring = 256
			*mlc = 256 << 10
			*llc = 768 << 10
		}
	}

	rw.h1("IDIO reproduction report")
	if opts.Quick {
		rw.p("Reduced-scale run (256-entry rings, caches scaled 4x down). " +
			"Run without -quick for the paper-scale geometry.")
	} else {
		rw.p("Paper-scale run: 1024-entry rings, 1 MB MLC per core, 3 MB shared LLC, " +
			"1514-byte packets unless stated otherwise.")
	}

	// Fig. 4.
	f4 := DefaultFig4Opts()
	f4.Parallelism = opts.Parallelism
	if opts.Quick {
		f4.Rings = []int{64, 256}
		f4.OneWayRings = []int{256}
		f4.MLCSize, f4.LLCSize = 256<<10, 768<<10
		f4.Loads["low"] = 0.5
	}
	rw.h2("Fig. 4 — MLC/DRAM leaks vs load and ring size (DDIO baseline)")
	rw.table(Fig4Header(), Rows(Fig4(f4)))

	// Fig. 9.
	f9 := DefaultFig9Opts()
	f9.Parallelism = opts.Parallelism
	scale(&f9.RingSize, &f9.MLCSize, &f9.LLCSize)
	cells := Fig9(f9)
	rw.h2("Fig. 9 — per-mechanism burst comparison (2x TouchDrop)")
	cr := make([]TableRow, len(cells))
	for i, c := range cells {
		cr[i] = c
	}
	rw.table(Fig9Header(), cr)

	// Fig. 10.
	f10 := DefaultFig10Opts()
	f10.Parallelism = opts.Parallelism
	scale(&f10.RingSize, &f10.MLCSize, &f10.LLCSize)
	rw.h2("Fig. 10 — Static/IDIO normalized to DDIO (lower is better)")
	rw.table(Fig10Header(), Rows(Fig10(f10)))

	// Fig. 11.
	f11 := DefaultFig11Opts()
	f11.Parallelism = opts.Parallelism
	if opts.Quick {
		f11.RingSize = 256
	}
	r11 := Fig11(f11)
	rw.h2("Fig. 11 — zero-copy shallow NF (L2Fwd)")
	rw.p(fmt.Sprintf("DDIO: mlcWB=%d llcWB=%d dramWr=%d exe=%.0fus — "+
		"IDIO: mlcWB=%d llcWB=%d dramWr=%d exe=%.0fus",
		r11.DDIO.Summary.MLCWB, r11.DDIO.Summary.LLCWB, r11.DDIO.Summary.DRAMWrites, r11.DDIO.Summary.ExeTimeUS,
		r11.IDIO.Summary.MLCWB, r11.IDIO.Summary.LLCWB, r11.IDIO.Summary.DRAMWrites, r11.IDIO.Summary.ExeTimeUS))
	rw.p(fmt.Sprintf("Selective direct DRAM (class-1 payloads): RX %.2f Gbps vs DRAM write %.2f Gbps.",
		r11.DirectDRAM.RxGbps, r11.DirectDRAM.DRAMWriteGbps))

	// Fig. 12.
	f12 := DefaultFig12Opts()
	f12.Parallelism = opts.Parallelism
	if opts.Quick {
		f12.RingSize = 256
	}
	rw.h2("Fig. 12 — p50/p99 latency normalized to DDIO solo")
	rw.table(Fig12Header(), Rows(Fig12(f12)))

	// Fig. 13.
	f13 := DefaultFig13Opts()
	f13.Parallelism = opts.Parallelism
	scale(&f13.RingSize, &f13.MLCSize, &f13.LLCSize)
	if opts.Quick {
		f13.Packets = 2048
	}
	r13 := Fig13(f13)
	rw.h2("Fig. 13 — steady traffic (10 Gbps per TouchDrop)")
	rw.p(fmt.Sprintf("DDIO: mlcWB=%d llcWB=%d p99=%.1fus — IDIO: mlcWB=%d llcWB=%d p99=%.1fus",
		r13.DDIO.Summary.MLCWB, r13.DDIO.Summary.LLCWB, r13.DDIO.Summary.P99US,
		r13.IDIO.Summary.MLCWB, r13.IDIO.Summary.LLCWB, r13.IDIO.Summary.P99US))

	// Fig. 14.
	f14 := DefaultFig14Opts()
	f14.Parallelism = opts.Parallelism
	scale(&f14.RingSize, &f14.MLCSize, &f14.LLCSize)
	rw.h2("Fig. 14 — mlcTHR sensitivity at 100 Gbps (normalized to DDIO)")
	rw.table(Fig14Header(), Rows(Fig14(f14)))

	// Breakdown.
	bo := DefaultBreakdownOpts()
	bo.Parallelism = opts.Parallelism
	scale(&bo.RingSize, &bo.MLCSize, &bo.LLCSize)
	rw.h2("Latency breakdown (µs)")
	rw.table(BreakdownHeader(), Rows(Breakdown(bo)))

	// Baselines.
	base := DefaultBaselineOpts()
	base.Parallelism = opts.Parallelism
	scale(&base.RingSize, &base.MLCSize, &base.LLCSize)
	rw.h2("Baselines — static DDIO vs IAT-style dynamic ways vs IDIO (100 Gbps)")
	rw.table(BaselineHeader(), Rows(Baselines(base)))

	// Ablations.
	ao := DefaultAblationOpts()
	ao.Parallelism = opts.Parallelism
	scale(&ao.RingSize, &ao.MLCSize, &ao.LLCSize)
	hot := ao
	hot.RateGbps = 100
	var arows []AblationRow
	arows = append(arows, AblationDDIOWays(ao, []int{1, 2, 4})...)
	arows = append(arows, AblationRingSize(ao, []int{64, 256, ao.RingSize})...)
	arows = append(arows, AblationPrefetchDepth(ao, []int{4, 32, 128})...)
	arows = append(arows, AblationDescCoalescing(ao, []sim.Duration{0, 1900 * sim.Nanosecond, 20 * sim.Microsecond})...)
	arows = append(arows, AblationAdaptivePrefetch(hot)...)
	arows = append(arows, AblationMLP(hot, []int{1, 4, 8, 32})...)
	arows = append(arows, AblationReplacement(ao)...)
	arows = append(arows, AblationInclusion(ao)...)
	arows = append(arows, AblationFrameSize(ao, []int{128, 512, 1514})...)
	rw.h2("Ablations — design-choice sweeps")
	rw.table(AblationHeader(), Rows(arows))

	// Claim verification.
	rw.h2("Reproduction claims")
	var claims strings.Builder
	failed := Verify(&claims)
	rw.pre(claims.String())
	if failed > 0 {
		rw.p(fmt.Sprintf("**%d claims FAILED.**", failed))
	}
	return rw.err
}

// reportWriter accumulates markdown, capturing the first write error.
type reportWriter struct {
	w   io.Writer
	err error
}

func (r *reportWriter) emit(format string, args ...interface{}) {
	if r.err != nil {
		return
	}
	_, r.err = fmt.Fprintf(r.w, format, args...)
}

func (r *reportWriter) h1(s string) { r.emit("# %s\n\n", s) }
func (r *reportWriter) h2(s string) { r.emit("## %s\n\n", s) }
func (r *reportWriter) p(s string)  { r.emit("%s\n\n", s) }
func (r *reportWriter) pre(s string) {
	r.emit("```\n%s```\n\n", s)
}

// table renders a markdown table.
func (r *reportWriter) table(header []string, rows []TableRow) {
	if r.err != nil {
		return
	}
	r.emit("| %s |\n", strings.Join(header, " | "))
	seps := make([]string, len(header))
	for i := range seps {
		seps[i] = "---"
	}
	r.emit("| %s |\n", strings.Join(seps, " | "))
	for _, row := range rows {
		r.emit("| %s |\n", strings.Join(row.Row(), " | "))
	}
	r.emit("\n")
}
