package experiment

import (
	"fmt"

	"idio"
	"idio/internal/apps"
	idiocore "idio/internal/core"
	fnet "idio/internal/net"
	"idio/internal/sim"
)

// ChurnRow is one (setup, flow population) cell of the million-flow
// sweep: constant offered load spread over an ever-larger concurrent
// flow population, under DDIO or IDIO placement.
type ChurnRow struct {
	Setup string
	// Flows is the aggregate concurrent flow population across clients.
	Flows int

	Issued    uint64
	Responses uint64
	Timeouts  uint64
	// Arrivals/Departures count flow lifecycle churn within the
	// horizon; Active is the resident population at the end.
	Arrivals   uint64
	Departures uint64
	Active     int
	// TableLoad is the worst per-client flow-table occupancy;
	// WheelCascades counts hashed-wheel long-deadline re-inspections
	// (non-zero exactly when think times outgrow the wheel span).
	TableLoad     float64
	WheelTicks    uint64
	WheelCascades uint64
	// NICTracked/NICRefusals expose the NIC flow-stats SRAM bound:
	// populations past its capacity show up as refusals, not evictions.
	NICTracked  int
	NICRefusals uint64
	// LLCIOLines is the LLC's I/O-classified occupancy at the end of
	// the run — the cache footprint the placement policy granted to
	// inbound DMA.
	LLCIOLines  int
	GoodputGbps float64
	P50US       float64
	P99US       float64
	P999US      float64
	Aborted     bool
}

// ChurnOpts parameterises the sweep.
type ChurnOpts struct {
	// Cores is the DUT core count; churn flows spread over all of them
	// through RSS (no per-flow steering rules exist at this scale).
	Cores int
	// Clients is the number of client hosts the population splits over.
	Clients int
	// Flows lists the aggregate concurrent-flow populations to sweep.
	Flows []int
	// OfferedGbps is the aggregate request load, held constant across
	// the sweep: per-flow think time scales proportionally to the
	// population, so a bigger population means colder per-flow state —
	// the regime that stresses flow-table and timer-wheel scale rather
	// than the link.
	OfferedGbps float64
	FrameLen    int
	Timeout     sim.Duration
	// Horizon bounds every cell; large populations are intentionally
	// cut mid-churn (Active carries the resident count).
	Horizon sim.Duration
	Seed    int64
	// RingSize/MLCSize/LLCSize scale the DUT (0 = defaults).
	RingSize int
	MLCSize  int
	LLCSize  int
	// Shards partitions each cell's cluster into parallel event
	// domains (0/1 = single simulator); outputs are identical.
	Shards int
	// Parallelism bounds the worker pool over independent cells.
	Parallelism int
}

// DefaultChurnOpts sweeps 1k -> 1M concurrent flows at ~8 Gbps of
// offered request load on the default 100 GbE fabric.
func DefaultChurnOpts() ChurnOpts {
	return ChurnOpts{
		Cores:       2,
		Clients:     2,
		Flows:       []int{1_000, 32_000, 1_000_000},
		OfferedGbps: 8,
		FrameLen:    1514,
		Horizon:     20 * sim.Millisecond,
		RingSize:    1024,
	}
}

// churnSetup is one placement-policy column of the comparison.
type churnSetup struct {
	name string
	pol  idiocore.Policy
}

func churnSetups() []churnSetup {
	return []churnSetup{
		{name: "ddio", pol: idiocore.PolicyDDIO},
		{name: "idio", pol: idiocore.PolicyIDIO},
	}
}

// churnCell is one grid cell: a policy setup at one flow population.
type churnCell struct {
	setup churnSetup
	flows int
}

// churnShare splits an aggregate count evenly over n slots, remainder
// to the lowest slots (the same convention the scenario schema uses).
func churnShare(total, n, i int) int {
	s := total / n
	if i < total%n {
		s++
	}
	return s
}

// runChurnCell builds one cluster, installs the split population, and
// runs to the horizon.
func runChurnCell(opts ChurnOpts, cell churnCell) ChurnRow {
	ccfg := idio.DefaultClusterConfig(opts.Cores, opts.Clients)
	ccfg.Host.Policy = cell.setup.pol
	ccfg.Host.Hier.LLCSize = 3 << 20 // gem5 scale, as the burst figures use
	if opts.RingSize > 0 {
		ccfg.Host.NIC.RingSize = opts.RingSize
	}
	if opts.MLCSize > 0 {
		ccfg.Host.Hier.MLCSize = opts.MLCSize
	}
	if opts.LLCSize > 0 {
		ccfg.Host.Hier.LLCSize = opts.LLCSize
	}
	ccfg.Shards = opts.Shards
	cl, err := idio.NewCluster(ccfg)
	if err != nil {
		panic(err)
	}
	for core := 0; core < opts.Cores; core++ {
		cl.DUT.AddNF(core, apps.L2Fwd{}, cl.DUT.DefaultFlow(core))
	}

	// Constant offered load: rate requests/s aggregate, so the mean
	// think time is population/rate. The request budget is sized past
	// what the horizon can spend — the horizon, not the budget, ends
	// every cell, keeping the offered process identical across cells.
	rate := opts.OfferedGbps * 1e9 / float64(opts.FrameLen*8)
	think := sim.Duration(float64(sim.Second) * float64(cell.flows) / rate)
	budget := uint64(rate*opts.Horizon.Seconds())*2 + 64
	for i := 0; i < opts.Clients; i++ {
		cc := fnet.ChurnConfig{
			Flows:    churnShare(cell.flows, opts.Clients, i),
			Requests: uint64(churnShare(int(budget), opts.Clients, i)),
			Timeout:  opts.Timeout,
			Think:    think,
			Seed:     opts.Seed + int64(i),
		}
		cc.Flow = cl.ClientFlow(i, 0)
		if opts.FrameLen > 0 {
			cc.Flow.FrameLen = opts.FrameLen
		}
		cl.AddChurnClient(i, cc)
	}
	res, _ := cl.Run(idio.RunOpts{Horizon: opts.Horizon})

	row := ChurnRow{
		Setup:      cell.setup.name,
		Flows:      cell.flows,
		LLCIOLines: cl.DUT.Hier.LLCOccupancyIO(),
		Aborted:    res.Aborted != nil,
	}
	if ch := res.Churn; ch != nil {
		row.Issued = ch.Issued
		row.Responses = ch.Responses
		row.Timeouts = ch.Timeouts
		row.Arrivals = ch.Arrivals
		row.Departures = ch.Departures
		row.Active = ch.ActiveFlows
		row.TableLoad = ch.TableLoad
		row.WheelTicks = ch.WheelTicks
		row.WheelCascades = ch.WheelCascades
		row.NICTracked = ch.NICFlowsTracked
		row.NICRefusals = ch.NICFlowRefusals
		row.GoodputGbps = ch.GoodputBps / 1e9
		row.P50US = ch.P50.Microseconds()
		row.P99US = ch.P99.Microseconds()
		row.P999US = ch.P999.Microseconds()
	}
	return row
}

// Churn runs the million-flow engine sweep: the same offered load over
// growing concurrent-flow populations, DDIO vs IDIO. The interesting
// columns are structural: per-request latency stays flat while the
// population grows three orders of magnitude (compact table + hashed
// wheel), the NIC's flow-stats SRAM overflows into refusals at the
// top of the sweep, and the LLC's I/O footprint tracks the placement
// policy rather than the flow count.
func Churn(opts ChurnOpts) []ChurnRow {
	var cells []churnCell
	for _, s := range churnSetups() {
		for _, n := range opts.Flows {
			cells = append(cells, churnCell{setup: s, flows: n})
		}
	}
	return RunCells(opts.Parallelism, cells, func(c churnCell) ChurnRow {
		return runChurnCell(opts, c)
	})
}

// ChurnHeader describes the table columns.
func ChurnHeader() []string {
	return []string{"setup", "flows", "issued", "resp", "timeouts", "arrivals", "departures", "active", "tableLoad", "wheelTicks", "cascades", "nicTracked", "nicRefusals", "llcIOLines", "goodputGbps", "p50us", "p99us", "p999us", "aborted"}
}

// Row renders one cell.
func (r ChurnRow) Row() []string {
	return []string{
		r.Setup,
		fmt.Sprintf("%d", r.Flows),
		fmt.Sprintf("%d", r.Issued),
		fmt.Sprintf("%d", r.Responses),
		fmt.Sprintf("%d", r.Timeouts),
		fmt.Sprintf("%d", r.Arrivals),
		fmt.Sprintf("%d", r.Departures),
		fmt.Sprintf("%d", r.Active),
		fmt.Sprintf("%.4f", r.TableLoad),
		fmt.Sprintf("%d", r.WheelTicks),
		fmt.Sprintf("%d", r.WheelCascades),
		fmt.Sprintf("%d", r.NICTracked),
		fmt.Sprintf("%d", r.NICRefusals),
		fmt.Sprintf("%d", r.LLCIOLines),
		fmt.Sprintf("%.2f", r.GoodputGbps),
		fmt.Sprintf("%.2f", r.P50US),
		fmt.Sprintf("%.2f", r.P99US),
		fmt.Sprintf("%.2f", r.P999US),
		fmt.Sprintf("%t", r.Aborted),
	}
}
