package experiment

import (
	"fmt"

	idiocore "idio/internal/core"
	"idio/internal/sim"
)

// Fig14Row is one sweep point of Fig. 14: IDIO's Fig. 10 statistics at
// 100 Gbps under a given mlcTHR value, normalized to baseline DDIO.
type Fig14Row struct {
	THRMTPS     uint64
	NormMLCWB   float64
	NormLLCWB   float64
	NormDRAMRd  float64
	NormDRAMWr  float64
	NormExeTime float64
}

// Fig14Opts parameterises the sensitivity sweep.
type Fig14Opts struct {
	RingSize int
	RateGbps float64
	// THRs are mlcTHR values in MTPS (writebacks per µs).
	THRs    []uint64
	Horizon sim.Duration
	// MLCSize/LLCSize scale the caches for reduced-size runs.
	MLCSize int
	LLCSize int
	// Parallelism bounds the worker pool running independent sweep
	// points (0 = GOMAXPROCS, 1 = serial).
	Parallelism int
}

// DefaultFig14Opts mirrors Fig. 14: mlcTHR from 10 to 100 MTPS at the
// 100 Gbps burst rate (the paper shows only 100 Gbps because lower
// rates are insensitive).
func DefaultFig14Opts() Fig14Opts {
	return Fig14Opts{
		RingSize: 1024,
		RateGbps: 100,
		THRs:     []uint64{10, 25, 50, 75, 100},
		Horizon:  9 * sim.Millisecond,
	}
}

// Fig14 runs the sweep.
func Fig14(opts Fig14Opts) []Fig14Row {
	spec := func(pol idiocore.Policy, thr uint64) Spec {
		sp := DefaultSpec(pol)
		sp.RingSize = opts.RingSize
		sp.MLCSize = opts.MLCSize
		sp.LLCSize = opts.LLCSize
		sp.MLCTHR = thr
		return sp
	}
	// Cell 0 is the DDIO baseline; cells 1..n are the IDIO sweep
	// points. All fan out together; normalization follows.
	type cell struct {
		pol idiocore.Policy
		thr uint64
	}
	cells := make([]cell, 0, len(opts.THRs)+1)
	cells = append(cells, cell{pol: idiocore.PolicyDDIO})
	for _, thr := range opts.THRs {
		cells = append(cells, cell{pol: idiocore.PolicyIDIO, thr: thr})
	}
	sums := RunCells(opts.Parallelism, cells, func(c cell) BurstSummary {
		return runBurstCell(spec(c.pol, c.thr), opts.RateGbps, opts.Horizon).Summary
	})
	base := sums[0]
	var rows []Fig14Row
	for i, thr := range opts.THRs {
		s := sums[i+1]
		rows = append(rows, Fig14Row{
			THRMTPS:     thr,
			NormMLCWB:   ratio(float64(s.MLCWB), float64(base.MLCWB)),
			NormLLCWB:   ratio(float64(s.LLCWB), float64(base.LLCWB)),
			NormDRAMRd:  ratio(float64(s.DRAMReads), float64(base.DRAMReads)),
			NormDRAMWr:  ratio(float64(s.DRAMWrites), float64(base.DRAMWrites)),
			NormExeTime: ratio(s.ExeTimeUS, base.ExeTimeUS),
		})
	}
	return rows
}

// Fig14Header describes the table columns.
func Fig14Header() []string {
	return []string{"mlcTHR", "MLCWB", "LLCWB", "DRAMrd", "DRAMwr", "ExeTime"}
}

// Row renders one row (normalized to DDIO; lower is better).
func (r Fig14Row) Row() []string {
	return []string{
		fmt.Sprintf("%d", r.THRMTPS),
		fmt.Sprintf("%.2f", r.NormMLCWB), fmt.Sprintf("%.2f", r.NormLLCWB),
		fmt.Sprintf("%.2f", r.NormDRAMRd), fmt.Sprintf("%.2f", r.NormDRAMWr),
		fmt.Sprintf("%.2f", r.NormExeTime),
	}
}
