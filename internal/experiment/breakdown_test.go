package experiment

import (
	"testing"

	"idio/internal/sim"
)

func TestBreakdownStages(t *testing.T) {
	opts := BreakdownOpts{
		RingSize: 256, RateGbps: 25, Horizon: 9 * sim.Millisecond,
		MLCSize: 256 << 10, LLCSize: 768 << 10,
	}
	rows := Breakdown(opts)
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	ddio, idio := rows[0], rows[1]
	if ddio.Policy != "DDIO" || idio.Policy != "IDIO" {
		t.Fatalf("row order: %s, %s", ddio.Policy, idio.Policy)
	}
	// The notification stage is policy-independent (descriptor
	// coalescing happens on the NIC).
	if diff := ddio.NotifyP50US - idio.NotifyP50US; diff > 0.5 || diff < -0.5 {
		t.Errorf("notify p50 should match: %.2f vs %.2f", ddio.NotifyP50US, idio.NotifyP50US)
	}
	// IDIO's service time shrinks (MLC hits) ...
	if idio.ServP50US >= ddio.ServP50US {
		t.Errorf("IDIO service p50 %.2f !< DDIO %.2f", idio.ServP50US, ddio.ServP50US)
	}
	// ... and that collapses the queueing tail.
	if idio.QueueP99US >= ddio.QueueP99US {
		t.Errorf("IDIO queue p99 %.2f !< DDIO %.2f", idio.QueueP99US, ddio.QueueP99US)
	}
	if idio.TotalP99US >= ddio.TotalP99US {
		t.Errorf("IDIO total p99 %.2f !< DDIO %.2f", idio.TotalP99US, ddio.TotalP99US)
	}
	// Sanity: stages are positive and queueing dominates the total p99
	// in the backlogged regime.
	for _, r := range rows {
		if r.ServP50US <= 0 || r.NotifyP50US <= 0 {
			t.Errorf("%s: non-positive stage: %+v", r.Policy, r)
		}
		if r.QueueP99US > r.TotalP99US {
			t.Errorf("%s: queue p99 exceeds total", r.Policy)
		}
	}
}
