package experiment

import (
	"fmt"

	idiocore "idio/internal/core"
	"idio/internal/sim"
)

// Fig12Row is one bar group of Fig. 12: 50th and 99th percentile
// TouchDrop latency for a (rate, policy, solo/co-run) point,
// normalized to DDIO's solo run at the same rate.
type Fig12Row struct {
	RateGbps float64
	Policy   string
	CoRun    bool
	NormP50  float64
	NormP99  float64
	// Raw values in microseconds for reference.
	P50US, P99US float64
}

// Fig12Opts parameterises the latency study.
type Fig12Opts struct {
	RingSize int
	Rates    []float64
	Horizon  sim.Duration
	// Parallelism bounds the worker pool running independent cells
	// (0 = GOMAXPROCS, 1 = serial).
	Parallelism int
}

// DefaultFig12Opts mirrors Fig. 12: 1514-byte packets, 1024-entry
// rings, 100/25/10 Gbps, solo and co-run with the LLC antagonist.
func DefaultFig12Opts() Fig12Opts {
	return Fig12Opts{RingSize: 1024, Rates: []float64{100, 25, 10}, Horizon: 9 * sim.Millisecond}
}

// Fig12 runs the latency comparison. The four raw runs per rate
// (DDIO/IDIO × solo/co-run) are independent cells; the DDIO-solo run
// doubles as the normalization baseline once all cells return.
func Fig12(opts Fig12Opts) []Fig12Row {
	spec := func(pol idiocore.Policy, antagonist bool) Spec {
		sp := DefaultSpec(pol)
		sp.RingSize = opts.RingSize
		sp.Antagonist = antagonist
		return sp
	}
	type cell struct {
		rate  float64
		pol   idiocore.Policy
		coRun bool
	}
	pols := []idiocore.Policy{idiocore.PolicyDDIO, idiocore.PolicyIDIO}
	var cells []cell
	for _, rate := range opts.Rates {
		for _, coRun := range []bool{false, true} {
			for _, pol := range pols {
				cells = append(cells, cell{rate: rate, pol: pol, coRun: coRun})
			}
		}
	}
	sums := RunCells(opts.Parallelism, cells, func(c cell) BurstSummary {
		return runBurstCell(spec(c.pol, c.coRun), c.rate, opts.Horizon).Summary
	})
	var rows []Fig12Row
	for ri, rate := range opts.Rates {
		perRate := sums[ri*4:]
		baseSolo := perRate[0] // DDIO solo
		for i, c := range cells[ri*4 : ri*4+4] {
			if !c.coRun && c.pol == idiocore.PolicyDDIO {
				// The normalization baseline itself: still reported
				// as the 1.0 reference row.
				rows = append(rows, Fig12Row{
					RateGbps: rate, Policy: c.pol.Name(), CoRun: false,
					NormP50: 1, NormP99: 1,
					P50US: baseSolo.P50US, P99US: baseSolo.P99US,
				})
				continue
			}
			s := perRate[i]
			rows = append(rows, Fig12Row{
				RateGbps: rate, Policy: c.pol.Name(), CoRun: c.coRun,
				NormP50: ratio(s.P50US, baseSolo.P50US),
				NormP99: ratio(s.P99US, baseSolo.P99US),
				P50US:   s.P50US, P99US: s.P99US,
			})
		}
	}
	return rows
}

// Fig12Header describes the table columns.
func Fig12Header() []string {
	return []string{"rate", "policy", "corun", "p50/ddio", "p99/ddio", "p50 us", "p99 us"}
}

// Row renders one row for the table writer.
func (r Fig12Row) Row() []string {
	return []string{
		fmt.Sprintf("%.0fG", r.RateGbps), r.Policy, fmt.Sprintf("%v", r.CoRun),
		fmt.Sprintf("%.3f", r.NormP50), fmt.Sprintf("%.3f", r.NormP99),
		fmt.Sprintf("%.2f", r.P50US), fmt.Sprintf("%.2f", r.P99US),
	}
}
