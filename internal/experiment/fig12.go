package experiment

import (
	"fmt"

	idiocore "idio/internal/core"
	"idio/internal/sim"
)

// Fig12Row is one bar group of Fig. 12: 50th and 99th percentile
// TouchDrop latency for a (rate, policy, solo/co-run) point,
// normalized to DDIO's solo run at the same rate.
type Fig12Row struct {
	RateGbps float64
	Policy   string
	CoRun    bool
	NormP50  float64
	NormP99  float64
	// Raw values in microseconds for reference.
	P50US, P99US float64
}

// Fig12Opts parameterises the latency study.
type Fig12Opts struct {
	RingSize int
	Rates    []float64
	Horizon  sim.Duration
}

// DefaultFig12Opts mirrors Fig. 12: 1514-byte packets, 1024-entry
// rings, 100/25/10 Gbps, solo and co-run with the LLC antagonist.
func DefaultFig12Opts() Fig12Opts {
	return Fig12Opts{RingSize: 1024, Rates: []float64{100, 25, 10}, Horizon: 9 * sim.Millisecond}
}

// Fig12 runs the latency comparison.
func Fig12(opts Fig12Opts) []Fig12Row {
	spec := func(pol idiocore.Policy, antagonist bool) Spec {
		sp := DefaultSpec(pol)
		sp.RingSize = opts.RingSize
		sp.Antagonist = antagonist
		return sp
	}
	var rows []Fig12Row
	for _, rate := range opts.Rates {
		baseSolo := runBurstCell(spec(idiocore.PolicyDDIO, false), rate, opts.Horizon).Summary
		for _, coRun := range []bool{false, true} {
			for _, pol := range []idiocore.Policy{idiocore.PolicyDDIO, idiocore.PolicyIDIO} {
				if !coRun && pol == idiocore.PolicyDDIO {
					// The normalization baseline itself: still reported
					// as the 1.0 reference row.
					rows = append(rows, Fig12Row{
						RateGbps: rate, Policy: pol.Name(), CoRun: false,
						NormP50: 1, NormP99: 1,
						P50US: baseSolo.P50US, P99US: baseSolo.P99US,
					})
					continue
				}
				s := runBurstCell(spec(pol, coRun), rate, opts.Horizon).Summary
				rows = append(rows, Fig12Row{
					RateGbps: rate, Policy: pol.Name(), CoRun: coRun,
					NormP50: ratio(s.P50US, baseSolo.P50US),
					NormP99: ratio(s.P99US, baseSolo.P99US),
					P50US:   s.P50US, P99US: s.P99US,
				})
			}
		}
	}
	return rows
}

// Fig12Header describes the table columns.
func Fig12Header() []string {
	return []string{"rate", "policy", "corun", "p50/ddio", "p99/ddio", "p50 us", "p99 us"}
}

// Row renders one row for the table writer.
func (r Fig12Row) Row() []string {
	return []string{
		fmt.Sprintf("%.0fG", r.RateGbps), r.Policy, fmt.Sprintf("%v", r.CoRun),
		fmt.Sprintf("%.3f", r.NormP50), fmt.Sprintf("%.3f", r.NormP99),
		fmt.Sprintf("%.2f", r.P50US), fmt.Sprintf("%.2f", r.P99US),
	}
}
