package experiment

import (
	"fmt"
	"io"
	"strings"
)

// TableRow is anything that renders itself as table cells.
type TableRow interface {
	Row() []string
}

// WriteTable renders an aligned ASCII table.
func WriteTable(w io.Writer, title string, header []string, rows []TableRow) error {
	cells := make([][]string, 0, len(rows)+1)
	cells = append(cells, header)
	for _, r := range rows {
		cells = append(cells, r.Row())
	}
	widths := make([]int, len(header))
	for _, row := range cells {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	if _, err := fmt.Fprintf(w, "== %s ==\n", title); err != nil {
		return err
	}
	for ri, row := range cells {
		var b strings.Builder
		for i, c := range row {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(pad(c, widths[i]))
		}
		if _, err := fmt.Fprintln(w, strings.TrimRight(b.String(), " ")); err != nil {
			return err
		}
		if ri == 0 {
			if _, err := fmt.Fprintln(w, strings.Repeat("-", totalWidth(widths))); err != nil {
				return err
			}
		}
	}
	return nil
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

func totalWidth(widths []int) int {
	t := 0
	for i, w := range widths {
		if i > 0 {
			t += 2
		}
		t += w
	}
	return t
}

// WriteSeriesCSV emits one or more timelines as CSV with a shared time
// axis (time_us, then one column per series).
func WriteSeriesCSV(w io.Writer, series ...Series) error {
	if len(series) == 0 {
		return nil
	}
	maxLen := 0
	for _, s := range series {
		if len(s.Points) > maxLen {
			maxLen = len(s.Points)
		}
	}
	cols := make([]string, 0, len(series)+1)
	cols = append(cols, "time_us")
	for _, s := range series {
		cols = append(cols, s.Name+"_mtps")
	}
	if _, err := fmt.Fprintln(w, strings.Join(cols, ",")); err != nil {
		return err
	}
	for i := 0; i < maxLen; i++ {
		row := make([]string, 0, len(series)+1)
		var ts float64
		for _, s := range series {
			if i < len(s.Points) {
				ts = s.Points[i].TimeUS
				break
			}
		}
		row = append(row, fmt.Sprintf("%.1f", ts))
		for _, s := range series {
			v := 0.0
			if i < len(s.Points) {
				v = s.Points[i].MTPS
			}
			row = append(row, fmt.Sprintf("%.3f", v))
		}
		if _, err := fmt.Fprintln(w, strings.Join(row, ",")); err != nil {
			return err
		}
	}
	return nil
}

// Rows adapts concrete row slices to []TableRow.
func Rows[T TableRow](in []T) []TableRow {
	out := make([]TableRow, len(in))
	for i, r := range in {
		out[i] = r
	}
	return out
}
