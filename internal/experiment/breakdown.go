package experiment

import (
	"fmt"

	idiocore "idio/internal/core"
	"idio/internal/sim"
	"idio/internal/stats"
)

// Breakdown splits per-packet latency into its three stages —
// notification (descriptor coalescing), queueing (waiting behind the
// ring backlog) and service (driver + NF processing) — for DDIO and
// IDIO on the Fig. 9 scenario. It makes visible *where* IDIO's tail
// win comes from: service time shrinks (MLC hits instead of LLC/DRAM)
// and the queue collapses behind the faster core.

// BreakdownRow is one policy's stage percentiles in microseconds.
type BreakdownRow struct {
	Policy      string
	NotifyP50US float64
	QueueP50US  float64
	ServP50US   float64
	QueueP99US  float64
	ServP99US   float64
	TotalP99US  float64
}

// Row renders for the table writer.
func (r BreakdownRow) Row() []string {
	f := func(v float64) string { return fmt.Sprintf("%.2f", v) }
	return []string{
		r.Policy, f(r.NotifyP50US), f(r.QueueP50US), f(r.ServP50US),
		f(r.QueueP99US), f(r.ServP99US), f(r.TotalP99US),
	}
}

// BreakdownHeader describes the table columns.
func BreakdownHeader() []string {
	return []string{"policy", "notify p50", "queue p50", "svc p50", "queue p99", "svc p99", "total p99"}
}

// BreakdownOpts parameterises the run.
type BreakdownOpts struct {
	RingSize int
	RateGbps float64
	Horizon  sim.Duration
	MLCSize  int
	LLCSize  int
	// Parallelism bounds the worker pool running the two policies
	// (0 = GOMAXPROCS, 1 = serial).
	Parallelism int
}

// DefaultBreakdownOpts uses the 25 Gbps burst where the paper's tail
// effect is largest.
func DefaultBreakdownOpts() BreakdownOpts {
	return BreakdownOpts{RingSize: 1024, RateGbps: 25, Horizon: 9 * sim.Millisecond}
}

// Breakdown runs both policies with tracing enabled.
func Breakdown(opts BreakdownOpts) []BreakdownRow {
	pols := []idiocore.Policy{idiocore.PolicyDDIO, idiocore.PolicyIDIO}
	return RunCells(opts.Parallelism, pols, func(pol idiocore.Policy) BreakdownRow {
		spec := DefaultSpec(pol)
		spec.RingSize = opts.RingSize
		spec.MLCSize = opts.MLCSize
		spec.LLCSize = opts.LLCSize
		spec.TraceCapacity = opts.RingSize * spec.NumNFs
		b := Build(spec)
		b.InstallBurst(opts.RateGbps, opts.RingSize, 1)
		b.RunBurstToCompletion(opts.Horizon)

		notify, queue, serv, total := stats.NewLatencyDist(), stats.NewLatencyDist(), stats.NewLatencyDist(), stats.NewLatencyDist()
		for _, c := range b.Sys.Cores {
			if c == nil {
				continue
			}
			for _, rec := range c.Trace {
				notify.Record(rec.NotifyDelay())
				queue.Record(rec.QueueDelay())
				serv.Record(rec.ServiceTime())
				total.Record(rec.Total())
			}
		}
		return BreakdownRow{
			Policy:      pol.Name(),
			NotifyP50US: notify.P50().Microseconds(),
			QueueP50US:  queue.P50().Microseconds(),
			ServP50US:   serv.P50().Microseconds(),
			QueueP99US:  queue.P99().Microseconds(),
			ServP99US:   serv.P99().Microseconds(),
			TotalP99US:  total.P99().Microseconds(),
		}
	})
}
