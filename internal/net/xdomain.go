// Cross-domain link plumbing: when a Cluster is sharded into multiple
// event domains, links are the only legal edge between domains. The
// source side of a bound link runs exactly the single-domain queueing,
// serialization and accounting, but instead of scheduling the delivery
// into a foreign simulator it copies the frame into its domain's
// Outbox. At every epoch barrier the coordinator drains all outboxes,
// sorts the accumulated entries by the canonical merge key
// (deliveryTime, sendTime, srcDomain, srcSeq) and injects them into
// the destination domains — so the destination observes deliveries in
// the same order the single shared simulator would have produced.
package net

import (
	"fmt"
	"slices"

	"idio/internal/pkt"
	"idio/internal/sim"
)

// XEntry is one packet handed across an event-domain boundary.
type XEntry struct {
	// DeliverAt is when the packet reaches the far end (serialization
	// end + propagation delay); SendAt is when the source accepted it.
	DeliverAt sim.Time
	SendAt    sim.Time
	// Src and Idx complete the deterministic merge key: the producing
	// domain's index and a per-outbox monotone sequence.
	Src int
	Idx uint64
	// Link is the crossing edge; its destination endpoint, simulator
	// and packet pool were fixed by BindCrossDomain.
	Link *Link
	// Seq and Arrival reproduce the packet's identity on the far side;
	// Frame is a private copy of the bytes (the source packet returns
	// to its own domain's pool at handoff).
	Seq     uint64
	Arrival int64
	Frame   []byte

	owner *Outbox
}

// Outbox accumulates one domain's outbound cross-domain handoffs
// during an epoch. It is owned by the producing domain while an epoch
// runs and by the barrier coordinator between epochs; it needs no
// locking. Frame buffers are recycled through a free list, so the
// steady state adds no allocations.
type Outbox struct {
	domain  int
	entries []XEntry
	spare   [][]byte
	idx     uint64
}

// NewOutbox builds the mailbox for the domain with the given index.
func NewOutbox(domain int) *Outbox { return &Outbox{domain: domain} }

// Pending reports entries accumulated since the last Flush — handoffs
// parked outside any simulator (sim.Domain.PendingExternal).
func (o *Outbox) Pending() int { return len(o.entries) }

// add copies p into the outbox. The caller releases p afterwards.
func (o *Outbox) add(deliverAt, sendAt sim.Time, l *Link, p *pkt.Packet) {
	var buf []byte
	if n := len(o.spare); n > 0 {
		buf = o.spare[n-1][:0]
		o.spare = o.spare[:n-1]
	}
	buf = append(buf, p.Frame...)
	o.entries = append(o.entries, XEntry{
		DeliverAt: deliverAt, SendAt: sendAt,
		Src: o.domain, Idx: o.idx,
		Link: l, Seq: p.Seq, Arrival: p.ArrivalTimePS,
		Frame: buf, owner: o,
	})
	o.idx++
}

// BindCrossDomain marks the link as an event-domain boundary: packets
// it accepts are copied into the source domain's outbox and
// re-materialized from the destination domain's packet pool when the
// coordinator flushes the mailboxes. dstSim must be the simulator of
// the domain owning the link's destination endpoint.
func (l *Link) BindCrossDomain(out *Outbox, dstSim *sim.Simulator, dstPool *pkt.Pool) {
	if out == nil || dstSim == nil || dstPool == nil {
		panic(fmt.Sprintf("net: link %q cross-domain binding needs outbox, destination simulator and pool", l.cfg.Name))
	}
	l.xOut, l.xDstSim, l.xDstPool = out, dstSim, dstPool
}

// CrossDomain reports whether the link crosses an event-domain
// boundary.
func (l *Link) CrossDomain() bool { return l.xOut != nil }

// Flush drains every outbox, sorts the union of their entries by the
// canonical merge key and injects each as a delivery event into its
// destination domain. Call only at an epoch barrier, with every
// domain quiescent at a time strictly before the earliest DeliverAt
// (the conservative lookahead guarantees this). scratch is reused
// across barriers to keep the flush allocation-free.
//
// Key order (DeliverAt, SendAt, Src, Idx) reproduces the shared
// simulator's same-instant FIFO: simultaneous deliveries sort by when
// their sources accepted them, then by domain index (clients are
// grouped in slot order), then by within-domain production order.
func Flush(outboxes []*Outbox, scratch *[]XEntry) {
	all := (*scratch)[:0]
	for _, o := range outboxes {
		all = append(all, o.entries...)
		o.entries = o.entries[:0]
	}
	// slices.SortFunc, not sort.Slice: the generic sort neither boxes
	// the slice nor builds a reflect-based swapper, keeping the barrier
	// flush allocation-free.
	slices.SortFunc(all, func(a, b XEntry) int {
		switch {
		case a.DeliverAt != b.DeliverAt:
			return cmpOrder(a.DeliverAt < b.DeliverAt)
		case a.SendAt != b.SendAt:
			return cmpOrder(a.SendAt < b.SendAt)
		case a.Src != b.Src:
			return cmpOrder(a.Src < b.Src)
		default:
			return cmpOrder(a.Idx < b.Idx)
		}
	})
	for i := range all {
		e := &all[i]
		l := e.Link
		p := l.xDstPool.Get(len(e.Frame))
		copy(p.Frame, e.Frame)
		p.Seq = e.Seq
		p.ArrivalTimePS = e.Arrival
		l.xDstSim.AtArgNamed(e.DeliverAt, "xdom-deliver", xDeliverEv, sim.Arg{Obj: l, Obj2: p})
		e.owner.spare = append(e.owner.spare, e.Frame)
		e.Frame, e.owner, e.Link = nil, nil, nil
	}
	*scratch = all[:0]
}

// cmpOrder maps a strict less-than to the -1/+1 contract of
// slices.SortFunc. The merge key is a total order (Idx is unique per
// Src), so no two entries ever compare equal and the sort's
// instability is unobservable.
func cmpOrder(less bool) int {
	if less {
		return -1
	}
	return 1
}

// xDeliverEv hands a cross-domain packet to the destination endpoint.
// It runs in the destination domain; the source side's delivery
// accounting happened in linkXDoneEv at the same instant.
func xDeliverEv(sm *sim.Simulator, a sim.Arg) {
	l := a.Obj.(*Link)
	l.dst.Receive(sm, a.Obj2.(*pkt.Packet))
}

// linkXDoneEv is the source-domain half of a cross-domain delivery:
// the stats and in-flight accounting linkDeliverEv would have done,
// scheduled at the same DeliverAt so Idle checks at barriers see the
// packet as in flight until it has actually landed.
func linkXDoneEv(_ *sim.Simulator, a sim.Arg) {
	l := a.Obj.(*Link)
	l.stats.Delivered++
	l.stats.DeliveredBytes += a.U0
	l.inflight--
}
