package net

import (
	"fmt"

	"idio/internal/obs"
	"idio/internal/pkt"
	"idio/internal/sim"
	"idio/internal/stats"
	"idio/internal/traffic"
)

// Mode selects how a Client offers load.
type Mode int

const (
	// ModeOpen issues requests at a fixed rate regardless of responses
	// (like traffic.Steady, but through the fabric and response-aware).
	ModeOpen Mode = iota
	// ModeClosed keeps a fixed number of requests outstanding: each
	// response (or timeout) triggers the next request, so offered load
	// reacts to service latency — the classic closed-loop client.
	ModeClosed
	// ModeRamp issues open-loop but sweeps the rate linearly from
	// RateBps to RampToBps across the request budget.
	ModeRamp
)

func (m Mode) String() string {
	switch m {
	case ModeOpen:
		return "open"
	case ModeClosed:
		return "closed"
	case ModeRamp:
		return "ramp"
	default:
		return "unknown"
	}
}

// DefaultTimeout bounds how long a closed-loop client waits for a
// response before reissuing the window slot.
const DefaultTimeout = sim.Duration(1) * sim.Millisecond

// ClientConfig describes one RPC client.
type ClientConfig struct {
	// Flow is the request template: Src must be the client's address
	// (the switch routes responses back by it), Dst the server's.
	Flow traffic.Flow
	Mode Mode
	// RateBps is the offered rate for open/ramp modes.
	RateBps int64
	// RampToBps is the final rate for ModeRamp.
	RampToBps int64
	// Outstanding is the closed-loop window (ModeClosed).
	Outstanding int
	// Requests bounds the run: total requests this client issues.
	Requests uint64
	// Start delays the first request.
	Start sim.Time
	// Timeout bounds the closed-loop wait per request; 0 means
	// DefaultTimeout. A timed-out slot reissues so lost packets cannot
	// deadlock the window.
	Timeout sim.Duration
	// Hist, when non-nil, additionally records every response latency
	// into this shared histogram (aggregate percentiles across
	// clients). Each client always keeps its own histogram too.
	Hist *stats.Histogram
}

// ClientStats summarises one client's run.
type ClientStats struct {
	Issued    uint64
	Responses uint64
	// Timeouts counts closed-loop window slots reissued after the
	// response deadline; Late counts responses that arrived after
	// their slot timed out (recorded in neither latency nor goodput).
	Timeouts uint64
	Late     uint64
	// GoodputBps is response payload bits per second of wall time from
	// first request sent to last response received.
	GoodputBps float64
	P50        sim.Duration
	P99        sim.Duration
	P999       sim.Duration
}

// Client is one simulated client host: a lightweight request issuer
// (no cache hierarchy) driving requests up its attached link and
// matching responses by sequence number.
type Client struct {
	cfg  ClientConfig
	up   *Link
	hist *stats.Histogram

	// tmpl is the request flow's prebuilt frame; pool recycles request
	// packets (the uplink's pool when one is installed, else private).
	tmpl *pkt.Template
	pool *pkt.Pool
	// sendPacedFn is the open/ramp pacing event, bound once so
	// rescheduling allocates nothing.
	sendPacedFn sim.Event

	inflight map[uint64]sim.Time // seq → send time
	issued   uint64
	resp     uint64
	timeouts uint64
	late     uint64
	rxBytes  uint64

	firstSend sim.Time
	lastResp  sim.Time
	sentAny   bool
	started   bool
}

// NewClient builds a client sending requests into up. The flow
// template is validated eagerly so a malformed config fails at build
// time, not mid-run.
func NewClient(cfg ClientConfig, up *Link) *Client {
	if up == nil {
		panic("net: client needs an uplink")
	}
	if cfg.Requests == 0 {
		panic("net: client needs a request budget")
	}
	if cfg.Flow.FrameLen == 0 {
		cfg.Flow.FrameLen = pkt.MTUFrameLen
	}
	tmpl, err := cfg.Flow.Template()
	if err != nil {
		panic(fmt.Sprintf("net: client flow: %v", err))
	}
	switch cfg.Mode {
	case ModeOpen:
		if cfg.RateBps <= 0 {
			panic("net: open-loop client needs RateBps")
		}
	case ModeClosed:
		if cfg.Outstanding <= 0 {
			panic("net: closed-loop client needs Outstanding")
		}
	case ModeRamp:
		if cfg.RateBps <= 0 || cfg.RampToBps <= 0 {
			panic("net: ramping client needs RateBps and RampToBps")
		}
	default:
		panic(fmt.Sprintf("net: unknown client mode %d", cfg.Mode))
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = DefaultTimeout
	}
	return &Client{
		cfg:      cfg,
		up:       up,
		tmpl:     tmpl,
		hist:     stats.NewHistogram(5),
		inflight: make(map[uint64]sim.Time),
	}
}

// Flow returns the client's request flow template.
func (c *Client) Flow() traffic.Flow { return c.cfg.Flow }

// Start schedules the client's first request(s). Call once.
func (c *Client) Start(s *sim.Simulator) {
	if c.started {
		panic("net: client already started")
	}
	c.started = true
	c.sendPacedFn = c.sendPaced
	// Draw request packets from the uplink's pool when the fabric
	// installed one (central recycling/accounting), else a private one.
	if c.pool = c.up.PacketPool(); c.pool == nil {
		c.pool = pkt.NewPool(c.tmpl.FrameLen())
	}
	s.AtNamed(c.cfg.Start, "client-start", func(sm *sim.Simulator) {
		switch c.cfg.Mode {
		case ModeClosed:
			// Fill the window back-to-back; the uplink serializes.
			w := uint64(c.cfg.Outstanding)
			if w > c.cfg.Requests {
				w = c.cfg.Requests
			}
			for i := uint64(0); i < w; i++ {
				c.send(sm)
			}
		default:
			c.sendPaced(sm)
		}
	})
}

// gap returns the open-loop inter-request spacing for the request
// about to be issued (ramp mode interpolates the rate linearly across
// the request budget).
func (c *Client) gap() sim.Duration {
	rate := c.cfg.RateBps
	if c.cfg.Mode == ModeRamp && c.cfg.Requests > 1 {
		rate += int64(float64(c.cfg.RampToBps-c.cfg.RateBps) *
			float64(c.issued) / float64(c.cfg.Requests-1))
		if rate < 1 {
			rate = 1
		}
	}
	return traffic.InterArrival(rate, c.cfg.Flow.FrameLen)
}

// sendPaced issues one open/ramp request and schedules the next.
func (c *Client) sendPaced(s *sim.Simulator) {
	c.send(s)
	if c.issued < c.cfg.Requests {
		s.After(c.gap(), c.sendPacedFn)
	}
}

// send issues one request at the current time and arms its timeout.
// The request frame is a recycled pool packet stamped from the flow
// template, so steady-state issue allocates nothing.
func (c *Client) send(s *sim.Simulator) {
	seq := c.issued
	c.issued++
	p := c.pool.Get(c.tmpl.FrameLen())
	c.tmpl.Stamp(p, seq)
	now := s.Now()
	if !c.sentAny {
		c.sentAny = true
		c.firstSend = now
	}
	c.inflight[seq] = now
	s.AfterArg(c.cfg.Timeout, clientTimeoutEv, sim.Arg{Obj: c, U0: seq})
	c.up.Receive(s, p)
}

// clientTimeoutEv fires at a request's response deadline: if the
// response is still missing, the window slot is released (and, in
// closed mode, reissued) so fabric losses cannot stall the loop.
// Arg.Obj is the *Client, U0 the request sequence number.
func clientTimeoutEv(sm *sim.Simulator, a sim.Arg) {
	c := a.Obj.(*Client)
	seq := a.U0
	if _, ok := c.inflight[seq]; !ok {
		return // answered in time
	}
	delete(c.inflight, seq)
	c.timeouts++
	if c.cfg.Mode == ModeClosed && c.issued < c.cfg.Requests {
		c.send(sm)
	}
}

// Receive consumes one response from the fabric (implements
// Endpoint). Responses are matched to requests by sequence number.
func (c *Client) Receive(s *sim.Simulator, p *pkt.Packet) {
	sent, ok := c.inflight[p.Seq]
	if !ok {
		c.late++ // timed out (or duplicate): not counted as goodput
		p.Release()
		return
	}
	delete(c.inflight, p.Seq)
	now := s.Now()
	lat := now.Sub(sent)
	c.hist.Record(lat)
	if c.cfg.Hist != nil {
		c.cfg.Hist.Record(lat)
	}
	c.resp++
	c.rxBytes += uint64(p.Len())
	c.lastResp = now
	p.Release() // the response dies here; recycle it
	if c.cfg.Mode == ModeClosed && c.issued < c.cfg.Requests {
		c.send(s)
	}
}

// Done reports whether the client has issued its full budget and has
// no request awaiting a response or timeout — the fabric idle check.
func (c *Client) Done() bool {
	return c.issued >= c.cfg.Requests && len(c.inflight) == 0
}

// Issued returns requests sent so far.
func (c *Client) Issued() uint64 { return c.issued }

// Responses returns responses matched so far.
func (c *Client) Responses() uint64 { return c.resp }

// RxBytes returns response bytes received (matched responses only).
func (c *Client) RxBytes() uint64 { return c.rxBytes }

// FirstSend and LastResp bracket the client's active span.
func (c *Client) FirstSend() sim.Time { return c.firstSend }

// LastResp returns when the last matched response arrived.
func (c *Client) LastResp() sim.Time { return c.lastResp }

// Hist exposes the client's private latency histogram.
func (c *Client) Hist() *stats.Histogram { return c.hist }

// Stats summarises the run so far.
func (c *Client) Stats() ClientStats {
	st := ClientStats{
		Issued:    c.issued,
		Responses: c.resp,
		Timeouts:  c.timeouts,
		Late:      c.late,
	}
	if c.hist.Count() > 0 {
		st.P50 = c.hist.Quantile(0.50)
		st.P99 = c.hist.Quantile(0.99)
		st.P999 = c.hist.Quantile(0.999)
	}
	st.GoodputBps = goodputBps(c.rxBytes, c.firstSend, c.lastResp)
	return st
}

// GoodputBps converts bytes received over a [first,last] span to bits
// per second (0 when the span is empty) — the goodput definition every
// client and aggregate summary shares.
func GoodputBps(bytes uint64, first, last sim.Time) float64 {
	return goodputBps(bytes, first, last)
}

// goodputBps converts bytes over a [first,last] span to bits/second.
func goodputBps(bytes uint64, first, last sim.Time) float64 {
	span := last.Sub(first)
	if span <= 0 {
		return 0
	}
	return float64(bytes) * 8 * float64(sim.Second) / float64(span)
}

// RegisterMetrics registers the client's counters under prefix (e.g.
// "rpc.c0.") into the observability registry.
func (c *Client) RegisterMetrics(reg *obs.Registry, prefix string) {
	reg.CounterFunc(prefix+"issued", func() uint64 { return c.issued })
	reg.CounterFunc(prefix+"responses", func() uint64 { return c.resp })
	reg.CounterFunc(prefix+"timeouts", func() uint64 { return c.timeouts })
	reg.CounterFunc(prefix+"late", func() uint64 { return c.late })
	reg.GaugeFunc(prefix+"goodput_gbps", func() float64 {
		return goodputBps(c.rxBytes, c.firstSend, c.lastResp) / 1e9
	})
	reg.GaugeFunc(prefix+"p50_us", func() float64 {
		if c.hist.Count() == 0 {
			return 0
		}
		return c.hist.Quantile(0.50).Microseconds()
	})
	reg.GaugeFunc(prefix+"p99_us", func() float64 {
		if c.hist.Count() == 0 {
			return 0
		}
		return c.hist.Quantile(0.99).Microseconds()
	})
	reg.GaugeFunc(prefix+"p999_us", func() float64 {
		if c.hist.Count() == 0 {
			return 0
		}
		return c.hist.Quantile(0.999).Microseconds()
	})
}
