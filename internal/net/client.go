package net

import (
	"errors"
	"fmt"
	"math/rand"

	"idio/internal/flow"
	"idio/internal/obs"
	"idio/internal/pkt"
	"idio/internal/sim"
	"idio/internal/stats"
	"idio/internal/traffic"
)

// Mode selects how a Client offers load.
type Mode int

const (
	// ModeOpen issues requests at a fixed rate regardless of responses
	// (like traffic.Steady, but through the fabric and response-aware).
	ModeOpen Mode = iota
	// ModeClosed keeps a fixed number of requests outstanding: each
	// response (or timeout) triggers the next request, so offered load
	// reacts to service latency — the classic closed-loop client.
	ModeClosed
	// ModeRamp issues open-loop but sweeps the rate linearly from
	// RateBps to RampToBps across the request budget.
	ModeRamp
)

func (m Mode) String() string {
	switch m {
	case ModeOpen:
		return "open"
	case ModeClosed:
		return "closed"
	case ModeRamp:
		return "ramp"
	default:
		return "unknown"
	}
}

// DefaultTimeout bounds how long a closed-loop client waits for a
// response before reissuing the window slot.
const DefaultTimeout = sim.Duration(1) * sim.Millisecond

// RetryConfig enables real retry discipline on a client: instead of
// the legacy fixed-timeout blind reissue (a timed-out slot issues a
// brand-new request), a timed-out request is retransmitted with
// exponential backoff and deterministic jitter, up to a per-request
// retry budget. Every attempt — original, retry, or hedge — carries a
// unique wire sequence number, so a response is always matched to the
// exact attempt that elicited it (Karn's rule: no retransmission
// ambiguity in the latency samples) and late responses to superseded
// attempts fall through to Late.
type RetryConfig struct {
	// MaxRetries bounds retransmissions per request beyond the first
	// attempt; a request whose budget is spent is abandoned (Failed).
	MaxRetries int
	// Backoff is the delay before the first retry; it doubles per
	// subsequent retry. 0 means the client's Timeout.
	Backoff sim.Duration
	// MaxBackoff caps the doubled delay. 0 means 8x Backoff.
	MaxBackoff sim.Duration
	// JitterFrac scales each backoff by a deterministic factor drawn
	// uniformly from [1-JitterFrac, 1+JitterFrac); 0 disables jitter.
	// Must be in [0,1).
	JitterFrac float64
	// Seed drives the jitter PRNG. Equal seeds give bit-identical
	// backoff schedules; give concurrent clients distinct seeds so
	// their retries do not phase-lock.
	Seed int64
	// Hedge, when > 0, issues one duplicate attempt this long after
	// the original if no response has arrived yet — the hedged-request
	// tail-latency defence. The first response wins; the loser counts
	// as Late.
	Hedge sim.Duration
}

// Validate checks the retry parameters.
func (r *RetryConfig) Validate() error {
	if r == nil {
		return nil
	}
	var errs []error
	if r.MaxRetries < 0 {
		errs = append(errs, fmt.Errorf("net: retry MaxRetries %d must be >= 0", r.MaxRetries))
	}
	if r.Backoff < 0 {
		errs = append(errs, fmt.Errorf("net: retry Backoff %v must be >= 0", r.Backoff))
	}
	if r.MaxBackoff < 0 {
		errs = append(errs, fmt.Errorf("net: retry MaxBackoff %v must be >= 0", r.MaxBackoff))
	}
	if r.JitterFrac < 0 || r.JitterFrac >= 1 {
		errs = append(errs, fmt.Errorf("net: retry JitterFrac %v outside [0,1)", r.JitterFrac))
	}
	if r.Hedge < 0 {
		errs = append(errs, fmt.Errorf("net: retry Hedge %v must be >= 0", r.Hedge))
	}
	return errors.Join(errs...)
}

// ClientConfig describes one RPC client.
type ClientConfig struct {
	// Flow is the request template: Src must be the client's address
	// (the switch routes responses back by it), Dst the server's.
	Flow traffic.Flow
	Mode Mode
	// RateBps is the offered rate for open/ramp modes.
	RateBps int64
	// RampToBps is the final rate for ModeRamp.
	RampToBps int64
	// Outstanding is the closed-loop window (ModeClosed).
	Outstanding int
	// Requests bounds the run: total requests this client issues.
	Requests uint64
	// Start delays the first request.
	Start sim.Time
	// Timeout bounds the closed-loop wait per request; 0 means
	// DefaultTimeout. A timed-out slot reissues so lost packets cannot
	// deadlock the window.
	Timeout sim.Duration
	// Hist, when non-nil, additionally records every response latency
	// into this shared histogram (aggregate percentiles across
	// clients). Each client always keeps its own histogram too.
	Hist *stats.Histogram
	// Retry, when non-nil, replaces the legacy blind reissue with
	// exponential-backoff retransmission (see RetryConfig). Nil keeps
	// the historical behaviour bit-for-bit.
	Retry *RetryConfig
	// Wheel, when non-nil, arms per-attempt timeouts on this hashed
	// timer wheel instead of scheduling one simulator event per
	// attempt: deadlines quantize to the wheel's granularity and a
	// matched response cancels its timer in O(1). The wheel must live
	// on the client's own simulator (its event domain, when sharded).
	// Nil keeps the legacy per-event path, whose event stream — and
	// therefore every existing output — is preserved bit-for-bit.
	Wheel *sim.TimerWheel
}

// ClientStats summarises one client's run.
type ClientStats struct {
	Issued    uint64
	Responses uint64
	// Timeouts counts attempts that hit the response deadline (in
	// legacy mode, window slots reissued); Late counts responses that
	// arrived after their attempt timed out or after another attempt
	// already answered the request (recorded in neither latency nor
	// goodput).
	Timeouts uint64
	Late     uint64
	// Retries counts backoff retransmissions, Hedges speculative
	// duplicates, and Failed requests abandoned after the retry budget
	// was spent (all zero with Retry unset).
	Retries uint64
	Hedges  uint64
	Failed  uint64
	// GoodputBps is response payload bits per second of wall time from
	// first request sent to last response received.
	GoodputBps float64
	P50        sim.Duration
	P99        sim.Duration
	P999       sim.Duration
}

// Client is one simulated client host: a lightweight request issuer
// (no cache hierarchy) driving requests up its attached link and
// matching responses by sequence number.
type Client struct {
	cfg  ClientConfig
	up   *Link
	hist *stats.Histogram

	// tmpl is the request flow's prebuilt frame; pool recycles request
	// packets (the uplink's pool when one is installed, else private).
	tmpl *pkt.Template
	pool *pkt.Pool
	// sendPacedFn is the open/ramp pacing event, bound once so
	// rescheduling allocates nothing.
	sendPacedFn sim.Event

	// inflight maps wire sequence numbers to their attempt. With Retry
	// unset there is exactly one attempt per request and the wire seq
	// IS the request id; with Retry set every attempt (original,
	// retry, hedge) gets a fresh wire seq from nextSeq, so responses
	// match the exact attempt that elicited them. Both tables are
	// compact open-addressing flow tables, not Go maps: inline slots,
	// deterministic layout, zero steady-state allocations — the
	// representation that scales to the million-flow engine.
	inflight *flow.Table[attempt]
	// reqs tracks open (unanswered, unabandoned) requests in retry
	// mode; nil in legacy mode.
	reqs    *flow.Table[reqState]
	rng     *rand.Rand // backoff jitter; nil in legacy mode
	nextSeq uint64

	issued   uint64
	resp     uint64
	timeouts uint64
	late     uint64
	retries  uint64
	hedges   uint64
	failed   uint64
	rxBytes  uint64

	firstSend sim.Time
	lastResp  sim.Time
	sentAny   bool
	started   bool
}

// attempt is one wire transmission awaiting a response or timeout.
type attempt struct {
	req  uint64 // owning request id
	sent sim.Time
	// timer is the attempt's armed wheel timeout (wheel mode only;
	// zero in the legacy per-event path).
	timer sim.TimerHandle
}

// reqState tracks one open request in retry mode.
type reqState struct {
	live    int32 // attempts currently in flight
	retries int32 // backoff retransmissions issued so far
	hedged  bool  // the speculative duplicate was issued
}

// NewClient builds a client sending requests into up. The flow
// template is validated eagerly so a malformed config fails at build
// time, not mid-run.
func NewClient(cfg ClientConfig, up *Link) *Client {
	if up == nil {
		panic("net: client needs an uplink")
	}
	if cfg.Requests == 0 {
		panic("net: client needs a request budget")
	}
	if cfg.Flow.FrameLen == 0 {
		cfg.Flow.FrameLen = pkt.MTUFrameLen
	}
	tmpl, err := cfg.Flow.Template()
	if err != nil {
		panic(fmt.Sprintf("net: client flow: %v", err))
	}
	switch cfg.Mode {
	case ModeOpen:
		if cfg.RateBps <= 0 {
			panic("net: open-loop client needs RateBps")
		}
	case ModeClosed:
		if cfg.Outstanding <= 0 {
			panic("net: closed-loop client needs Outstanding")
		}
	case ModeRamp:
		if cfg.RateBps <= 0 || cfg.RampToBps <= 0 {
			panic("net: ramping client needs RateBps and RampToBps")
		}
	default:
		panic(fmt.Sprintf("net: unknown client mode %d", cfg.Mode))
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = DefaultTimeout
	}
	if cfg.Retry != nil {
		if err := cfg.Retry.Validate(); err != nil {
			panic(fmt.Sprintf("net: client retry: %v", err))
		}
		// Resolve defaults on a copy so the caller's struct (possibly
		// shared across clients) is untouched.
		r := *cfg.Retry
		if r.Backoff <= 0 {
			r.Backoff = cfg.Timeout
		}
		if r.MaxBackoff <= 0 {
			r.MaxBackoff = 8 * r.Backoff
		}
		cfg.Retry = &r
	}
	c := &Client{
		cfg:      cfg,
		up:       up,
		tmpl:     tmpl,
		hist:     stats.NewHistogram(5),
		inflight: flow.New[attempt](cfg.Outstanding),
	}
	if cfg.Retry != nil {
		c.reqs = flow.New[reqState](cfg.Outstanding)
		c.rng = rand.New(rand.NewSource(cfg.Retry.Seed))
	}
	return c
}

// Flow returns the client's request flow template.
func (c *Client) Flow() traffic.Flow { return c.cfg.Flow }

// Start schedules the client's first request(s). Call once.
func (c *Client) Start(s *sim.Simulator) {
	if c.started {
		panic("net: client already started")
	}
	c.started = true
	c.sendPacedFn = c.sendPaced
	// Draw request packets from the uplink's pool when the fabric
	// installed one (central recycling/accounting), else a private one.
	if c.pool = c.up.PacketPool(); c.pool == nil {
		c.pool = pkt.NewPool(c.tmpl.FrameLen())
	}
	s.AtNamed(c.cfg.Start, "client-start", func(sm *sim.Simulator) {
		switch c.cfg.Mode {
		case ModeClosed:
			// Fill the window back-to-back; the uplink serializes.
			w := uint64(c.cfg.Outstanding)
			if w > c.cfg.Requests {
				w = c.cfg.Requests
			}
			for i := uint64(0); i < w; i++ {
				c.send(sm)
			}
		default:
			c.sendPaced(sm)
		}
	})
}

// gap returns the open-loop inter-request spacing for the request
// about to be issued (ramp mode interpolates the rate linearly across
// the request budget).
func (c *Client) gap() sim.Duration {
	rate := c.cfg.RateBps
	if c.cfg.Mode == ModeRamp && c.cfg.Requests > 1 {
		rate += int64(float64(c.cfg.RampToBps-c.cfg.RateBps) *
			float64(c.issued) / float64(c.cfg.Requests-1))
		if rate < 1 {
			rate = 1
		}
	}
	return traffic.InterArrival(rate, c.cfg.Flow.FrameLen)
}

// sendPaced issues one open/ramp request and schedules the next.
func (c *Client) sendPaced(s *sim.Simulator) {
	c.send(s)
	if c.issued < c.cfg.Requests {
		s.After(c.gap(), c.sendPacedFn)
	}
}

// send issues one new request (consuming request budget) and its first
// attempt. The request frame is a recycled pool packet stamped from
// the flow template, so steady-state issue allocates nothing.
func (c *Client) send(s *sim.Simulator) {
	req := c.issued
	c.issued++
	if c.reqs != nil {
		c.reqs.Put(req, reqState{})
		if c.cfg.Retry.Hedge > 0 {
			s.AfterArg(c.cfg.Retry.Hedge, clientHedgeEv, sim.Arg{Obj: c, U0: req})
		}
	}
	c.sendAttempt(s, req)
}

// sendAttempt puts one attempt for req on the wire and arms its
// timeout. In legacy mode the wire sequence number is the request id;
// in retry mode every attempt draws a fresh one so responses are
// matched to the exact transmission that elicited them.
func (c *Client) sendAttempt(s *sim.Simulator, req uint64) {
	w := req
	if c.reqs != nil {
		w = c.nextSeq
		c.nextSeq++
		if st := c.reqs.Ref(req); st != nil {
			st.live++
		}
	}
	p := c.pool.Get(c.tmpl.FrameLen())
	c.tmpl.Stamp(p, w)
	now := s.Now()
	if !c.sentAny {
		c.sentAny = true
		c.firstSend = now
	}
	att := attempt{req: req, sent: now}
	if c.cfg.Wheel != nil {
		att.timer = c.cfg.Wheel.Arm(c.cfg.Timeout, clientTimeoutEv, sim.Arg{Obj: c, U0: w})
	} else {
		s.AfterArg(c.cfg.Timeout, clientTimeoutEv, sim.Arg{Obj: c, U0: w})
	}
	c.inflight.Put(w, att)
	c.up.Receive(s, p)
}

// backoff returns the jittered delay before retry n (n >= 1):
// exponential from Retry.Backoff, capped at Retry.MaxBackoff, scaled
// by a deterministic factor from [1-JitterFrac, 1+JitterFrac).
func (c *Client) backoff(n int) sim.Duration {
	r := c.cfg.Retry
	d := r.Backoff
	for i := 1; i < n && d < r.MaxBackoff; i++ {
		d *= 2
	}
	if d > r.MaxBackoff {
		d = r.MaxBackoff
	}
	if r.JitterFrac > 0 {
		d = sim.Duration(float64(d) * (1 - r.JitterFrac + 2*r.JitterFrac*c.rng.Float64()))
	}
	if d < 1 {
		d = 1
	}
	return d
}

// clientTimeoutEv fires at an attempt's response deadline. Legacy
// mode: the window slot is released (and, in closed mode, reissued) so
// fabric losses cannot stall the loop. Retry mode: when no sibling
// attempt is still in flight, either a backoff retransmission is
// scheduled or — budget spent — the request is abandoned as Failed.
// Arg.Obj is the *Client, U0 the wire sequence number.
func clientTimeoutEv(sm *sim.Simulator, a sim.Arg) {
	c := a.Obj.(*Client)
	w := a.U0
	att, ok := c.inflight.Get(w)
	if !ok {
		return // answered in time
	}
	c.inflight.Delete(w)
	c.timeouts++
	if c.reqs == nil {
		if c.cfg.Mode == ModeClosed && c.issued < c.cfg.Requests {
			c.send(sm)
		}
		return
	}
	st, open := c.reqs.Get(att.req)
	if !open {
		return // a sibling attempt already answered this request
	}
	st.live--
	if st.live > 0 {
		c.reqs.Put(att.req, st)
		return // the hedge (or another retry) is still in flight
	}
	if int(st.retries) < c.cfg.Retry.MaxRetries {
		st.retries++
		c.reqs.Put(att.req, st)
		c.retries++
		sm.AfterArg(c.backoff(int(st.retries)), clientRetryEv, sim.Arg{Obj: c, U0: att.req})
		return
	}
	c.reqs.Delete(att.req)
	c.failed++
	if c.cfg.Mode == ModeClosed && c.issued < c.cfg.Requests {
		c.send(sm)
	}
}

// clientRetryEv fires when a request's backoff expires and puts the
// retransmission on the wire. Arg.Obj is the *Client, U0 the request
// id.
func clientRetryEv(sm *sim.Simulator, a sim.Arg) {
	c := a.Obj.(*Client)
	req := a.U0
	if _, open := c.reqs.Get(req); !open {
		return // answered while the backoff was pending
	}
	c.sendAttempt(sm, req)
}

// clientHedgeEv fires Retry.Hedge after a request was issued: if the
// request is still open, has not hit its timeout (no retries yet), and
// has exactly its original attempt in flight, one speculative
// duplicate goes out. The first response wins; the loser counts as
// Late. Arg.Obj is the *Client, U0 the request id.
func clientHedgeEv(sm *sim.Simulator, a sim.Arg) {
	c := a.Obj.(*Client)
	req := a.U0
	st, open := c.reqs.Get(req)
	if !open || st.hedged || st.retries > 0 || st.live == 0 {
		return
	}
	st.hedged = true
	c.reqs.Put(req, st)
	c.hedges++
	c.sendAttempt(sm, req)
}

// Receive consumes one response from the fabric (implements
// Endpoint). Responses are matched to requests by sequence number.
func (c *Client) Receive(s *sim.Simulator, p *pkt.Packet) {
	att, ok := c.inflight.Get(p.Seq)
	if !ok {
		c.late++ // timed out (or duplicate): not counted as goodput
		p.Release()
		return
	}
	c.inflight.Delete(p.Seq)
	if c.cfg.Wheel != nil {
		// The answered attempt's deadline is disarmed in O(1); the
		// legacy path instead lets the timeout event fire as a no-op.
		c.cfg.Wheel.Cancel(att.timer)
	}
	if c.reqs != nil {
		if _, open := c.reqs.Get(att.req); !open {
			// A sibling attempt (hedge or retry) already answered this
			// request: the slower copy is late by definition.
			c.late++
			p.Release()
			return
		}
		c.reqs.Delete(att.req)
	}
	now := s.Now()
	lat := now.Sub(att.sent)
	c.hist.Record(lat)
	if c.cfg.Hist != nil {
		c.cfg.Hist.Record(lat)
	}
	c.resp++
	c.rxBytes += uint64(p.Len())
	c.lastResp = now
	p.Release() // the response dies here; recycle it
	if c.cfg.Mode == ModeClosed && c.issued < c.cfg.Requests {
		c.send(s)
	}
}

// Done reports whether the client has issued its full budget and has
// no request awaiting a response, retry, or timeout — the fabric idle
// check.
func (c *Client) Done() bool {
	return c.issued >= c.cfg.Requests && c.inflight.Len() == 0 && c.reqs.Len() == 0
}

// Issued returns requests sent so far.
func (c *Client) Issued() uint64 { return c.issued }

// Responses returns responses matched so far.
func (c *Client) Responses() uint64 { return c.resp }

// RxBytes returns response bytes received (matched responses only).
func (c *Client) RxBytes() uint64 { return c.rxBytes }

// FirstSend and LastResp bracket the client's active span.
func (c *Client) FirstSend() sim.Time { return c.firstSend }

// LastResp returns when the last matched response arrived.
func (c *Client) LastResp() sim.Time { return c.lastResp }

// Hist exposes the client's private latency histogram.
func (c *Client) Hist() *stats.Histogram { return c.hist }

// Stats summarises the run so far.
func (c *Client) Stats() ClientStats {
	st := ClientStats{
		Issued:    c.issued,
		Responses: c.resp,
		Timeouts:  c.timeouts,
		Late:      c.late,
		Retries:   c.retries,
		Hedges:    c.hedges,
		Failed:    c.failed,
	}
	if c.hist.Count() > 0 {
		st.P50 = c.hist.Quantile(0.50)
		st.P99 = c.hist.Quantile(0.99)
		st.P999 = c.hist.Quantile(0.999)
	}
	st.GoodputBps = goodputBps(c.rxBytes, c.firstSend, c.lastResp)
	return st
}

// GoodputBps converts bytes received over a [first,last] span to bits
// per second (0 when the span is empty) — the goodput definition every
// client and aggregate summary shares.
func GoodputBps(bytes uint64, first, last sim.Time) float64 {
	return goodputBps(bytes, first, last)
}

// goodputBps converts bytes over a [first,last] span to bits/second.
func goodputBps(bytes uint64, first, last sim.Time) float64 {
	span := last.Sub(first)
	if span <= 0 {
		return 0
	}
	return float64(bytes) * 8 * float64(sim.Second) / float64(span)
}

// RegisterMetrics registers the client's counters under prefix (e.g.
// "rpc.c0.") into the observability registry.
func (c *Client) RegisterMetrics(reg *obs.Registry, prefix string) {
	reg.CounterFunc(prefix+"issued", func() uint64 { return c.issued })
	reg.CounterFunc(prefix+"responses", func() uint64 { return c.resp })
	reg.CounterFunc(prefix+"timeouts", func() uint64 { return c.timeouts })
	reg.CounterFunc(prefix+"late", func() uint64 { return c.late })
	if c.cfg.Retry != nil {
		reg.CounterFunc(prefix+"retries", func() uint64 { return c.retries })
		reg.CounterFunc(prefix+"hedges", func() uint64 { return c.hedges })
		reg.CounterFunc(prefix+"failed", func() uint64 { return c.failed })
	}
	reg.GaugeFunc(prefix+"goodput_gbps", func() float64 {
		return goodputBps(c.rxBytes, c.firstSend, c.lastResp) / 1e9
	})
	reg.GaugeFunc(prefix+"p50_us", func() float64 {
		if c.hist.Count() == 0 {
			return 0
		}
		return c.hist.Quantile(0.50).Microseconds()
	})
	reg.GaugeFunc(prefix+"p99_us", func() float64 {
		if c.hist.Count() == 0 {
			return 0
		}
		return c.hist.Quantile(0.99).Microseconds()
	})
	reg.GaugeFunc(prefix+"p999_us", func() float64 {
		if c.hist.Count() == 0 {
			return 0
		}
		return c.hist.Quantile(0.999).Microseconds()
	})
}
