package net

// Micro-benchmarks for the fabric's hot paths. A multi-host RPC sweep
// pushes every request and response through a client, two links and a
// switch, so per-packet transit cost bounds the end-to-end experiment
// wall-clock the same way the event kernel does. Run via
// scripts/bench.sh, which records them in BENCH_sim.json.

import (
	"testing"

	"idio/internal/pkt"
	"idio/internal/sim"
)

// countingSink counts deliveries and recycles each packet back to its
// pool, so pooled harnesses measure the steady state instead of pool
// growth.
type countingSink struct{ n uint64 }

func (k *countingSink) Receive(_ *sim.Simulator, p *pkt.Packet) {
	k.n++
	p.Release()
}

// BenchmarkLinkTransit measures one packet's full link traversal —
// enqueue, serialization, propagation, delivery. Packets are stamped
// from a prebuilt template out of a recycling pool (the production
// fast path) and offered in queue-sized batches so nothing tail-drops;
// one op is one delivered packet, zero allocations in steady state.
func BenchmarkLinkTransit(b *testing.B) {
	s := sim.New()
	dst := &countingSink{}
	l := NewLink(LinkConfig{Name: "b", RateBps: 100e9, Delay: sim.Microsecond, QueueDepth: 64}, dst)
	tmpl, err := testFlow(1514).Template()
	if err != nil {
		b.Fatalf("template: %v", err)
	}
	pool := pkt.NewPool(tmpl.FrameLen())
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; {
		batch := 64
		if b.N-n < batch {
			batch = b.N - n
		}
		for i := 0; i < batch; i++ {
			p := pool.Get(tmpl.FrameLen())
			tmpl.Stamp(p, uint64(n+i))
			l.Receive(s, p)
		}
		s.Run()
		n += batch
	}
	b.StopTimer()
	if got := l.Stats().Delivered; got != uint64(b.N) {
		b.Fatalf("delivered %d of %d offered", got, b.N)
	}
}

// BenchmarkSwitchForward measures destination-IP forwarding: decode,
// route lookup, and hand-off through a per-port egress link. Packets
// come stamped from templates out of a recycling pool; one op is one
// packet switched and delivered, zero allocations in steady state.
func BenchmarkSwitchForward(b *testing.B) {
	s := sim.New()
	a, c := &countingSink{}, &countingSink{}
	sw := NewSwitch("sw0")
	ipA, ipC := pkt.IPv4{10, 0, 2, 1}, pkt.IPv4{10, 0, 2, 2}
	sw.Route(ipA, sw.AddPort(NewLink(LinkConfig{Name: "a", RateBps: 100e9, QueueDepth: 64}, a)))
	sw.Route(ipC, sw.AddPort(NewLink(LinkConfig{Name: "c", RateBps: 100e9, QueueDepth: 64}, c)))
	flowA, flowC := testFlow(1514), testFlow(1514)
	flowA.Dst, flowC.Dst = ipA, ipC
	tmplA, err := flowA.Template()
	if err != nil {
		b.Fatalf("template: %v", err)
	}
	tmplC, err := flowC.Template()
	if err != nil {
		b.Fatalf("template: %v", err)
	}
	pool := pkt.NewPool(tmplA.FrameLen())
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; {
		batch := 64
		if b.N-n < batch {
			batch = b.N - n
		}
		for i := 0; i < batch; i++ {
			tmpl := tmplA
			if (n+i)&1 == 1 {
				tmpl = tmplC
			}
			p := pool.Get(tmpl.FrameLen())
			tmpl.Stamp(p, uint64(n+i))
			sw.Receive(s, p)
		}
		s.Run()
		n += batch
	}
	b.StopTimer()
	if got := a.n + c.n; got != uint64(b.N) {
		b.Fatalf("delivered %d of %d offered", got, b.N)
	}
}

// BenchmarkClientRoundTrip measures one closed-loop request-response
// cycle against a loopback echo: request pacing, uplink transit, echo,
// downlink transit, response matching and latency recording. One op is
// one completed round trip.
func BenchmarkClientRoundTrip(b *testing.B) {
	s := sim.New()
	echo := &echoEndpoint{}
	up := NewLink(LinkConfig{Name: "up", RateBps: 100e9, Delay: sim.Microsecond, QueueDepth: 64}, echo)
	c := NewClient(ClientConfig{
		Flow: testFlow(1514), Mode: ModeClosed, Outstanding: 4, Requests: uint64(b.N),
	}, up)
	echo.reply = NewLink(LinkConfig{Name: "down", RateBps: 100e9, Delay: sim.Microsecond, QueueDepth: 64}, c)
	b.ReportAllocs()
	b.ResetTimer()
	c.Start(s)
	s.Run()
	b.StopTimer()
	if !c.Done() || c.Responses() != uint64(b.N) {
		b.Fatalf("responses %d of %d issued", c.Responses(), b.N)
	}
}
