package net

import (
	"fmt"

	"idio/internal/obs"
	"idio/internal/pkt"
	"idio/internal/qos"
	"idio/internal/sim"
)

// SwitchStats counts the switch's forwarding decisions.
type SwitchStats struct {
	// Forwarded counts packets handed to an output link (the link's
	// own queue then admits or tail-drops them — output queueing).
	Forwarded uint64
	// NoRoute counts packets whose destination IP had no route.
	NoRoute uint64
	// ParseDrops counts frames too short to carry an IPv4 header.
	ParseDrops uint64
}

// Switch is a simple output-queued switch: it forwards by destination
// IPv4 address through a static route table, with zero internal
// switching delay — all queueing happens in the output links' finite
// egress queues, the classic output-queued idealization.
type Switch struct {
	name   string
	ports  []*Link
	routes map[pkt.IPv4]int
	stats  SwitchStats
	obs    *obs.Observer

	// qosCfg/qosMap, when set via ArmQoS, arm scheduled egress on
	// every output port — including ports attached afterwards.
	qosCfg *qos.Config
	qosMap *qos.Map
}

// NewSwitch builds an empty switch.
func NewSwitch(name string) *Switch {
	return &Switch{name: name, routes: make(map[pkt.IPv4]int)}
}

// Name returns the switch's label.
func (sw *Switch) Name() string { return sw.name }

// Stats returns a copy of the counters.
func (sw *Switch) Stats() SwitchStats { return sw.stats }

// SetObserver attaches the observability layer; sampled packets emit
// an EvSwitch instant at the forwarding decision.
func (sw *Switch) SetObserver(o *obs.Observer) { sw.obs = o }

// AddPort attaches an output link and returns its port index.
func (sw *Switch) AddPort(out *Link) int {
	if out == nil {
		panic(fmt.Sprintf("net: switch %q port needs a link", sw.name))
	}
	if sw.qosCfg != nil {
		out.ArmQoS(sw.qosCfg, sw.qosMap)
	}
	sw.ports = append(sw.ports, out)
	return len(sw.ports) - 1
}

// Route directs packets destined to ip out of the given port.
func (sw *Switch) Route(ip pkt.IPv4, port int) {
	if port < 0 || port >= len(sw.ports) {
		panic(fmt.Sprintf("net: switch %q route to unknown port %d", sw.name, port))
	}
	sw.routes[ip] = port
}

// Ports returns every attached output link (by port index).
func (sw *Switch) Ports() []*Link { return sw.ports }

// dstIPOff is the byte offset of the IPv4 destination address within
// an Ethernet frame (14-byte Ethernet header + 16 bytes into IPv4).
const dstIPOff = pkt.EthHeaderLen + 16

// Receive forwards one frame by destination IP (implements Endpoint).
// Unroutable or undecodable frames are counted and dropped — a switch
// must degrade, never crash.
func (sw *Switch) Receive(s *sim.Simulator, p *pkt.Packet) {
	if len(p.Frame) < dstIPOff+4 {
		sw.stats.ParseDrops++
		sw.traceDrop(s, p, "switch-parse")
		p.Release()
		return
	}
	var dst pkt.IPv4
	copy(dst[:], p.Frame[dstIPOff:dstIPOff+4])
	port, ok := sw.routes[dst]
	if !ok {
		sw.stats.NoRoute++
		sw.traceDrop(s, p, "no-route")
		p.Release()
		return
	}
	sw.stats.Forwarded++
	if sw.obs.TracingPacket(p.Seq) {
		sw.obs.Emit(obs.Event{Kind: obs.EvSwitch, Seq: p.Seq, Core: port, At: s.Now(), Bytes: p.Len(), Arg: sw.name})
	}
	sw.ports[port].Receive(s, p)
}

// traceDrop emits a drop event for a sampled packet.
func (sw *Switch) traceDrop(s *sim.Simulator, p *pkt.Packet, reason string) {
	if sw.obs.TracingPacket(p.Seq) {
		sw.obs.Emit(obs.Event{Kind: obs.EvDrop, Seq: p.Seq, Core: -1, At: s.Now(), Bytes: p.Len(), Arg: reason})
	}
}

// RegisterMetrics registers the switch counters under prefix (e.g.
// "fabric.switch.") into the observability registry.
func (sw *Switch) RegisterMetrics(reg *obs.Registry, prefix string) {
	reg.CounterFunc(prefix+"forwarded", func() uint64 { return sw.stats.Forwarded })
	reg.CounterFunc(prefix+"no_route", func() uint64 { return sw.stats.NoRoute })
	reg.CounterFunc(prefix+"parse_drops", func() uint64 { return sw.stats.ParseDrops })
}
