package net

import (
	"errors"
	"fmt"
	"math/rand"

	"idio/internal/flow"
	"idio/internal/obs"
	"idio/internal/pkt"
	"idio/internal/sim"
	"idio/internal/stats"
	"idio/internal/traffic"
)

// ChurnConfig describes a flow-churn client: a population of Flows
// concurrent flows, each issuing a Zipf-drawn budget of requests with
// exponential think times between them, departing when the budget is
// spent and being replaced by a fresh flow (new 5-tuple, new size
// draw) after an exponential arrival gap — the Poisson
// arrival/departure process of a real server's connection table. The
// point of the model is scale: per-flow state lives in a compact
// flow.Table and every think/timeout deadline rides one hashed timer
// wheel, so a million concurrent flows cost one scheduled event per
// wheel tick and zero steady-state allocations per request.
type ChurnConfig struct {
	// Flow is the base template: Src must be the client's address (the
	// switch routes responses back by it), Dst the server's. SrcPort
	// and DstPort are the bases of the per-flow port spaces: flow i
	// sends from SrcPort+i%SrcPorts to DstPort+(i/SrcPorts)%DstPorts,
	// so the NIC's RSS hash — not an explicit filter rule per flow —
	// spreads the million-key tuple space across cores.
	Flow traffic.Flow
	// Flows is the target concurrent flow population.
	Flows int
	// Requests bounds the run: total wire transmissions (first sends
	// and timeout resends) across all flows.
	Requests uint64
	// Start delays the first arrivals; the initial population arrives
	// at Start with think-staggered first requests (no thundering
	// herd).
	Start sim.Time
	// Timeout bounds the wait per request; 0 means DefaultTimeout. A
	// timed-out request is resent (budget permitting) under a fresh
	// attempt number, so the late response is never mistaken for the
	// resend's.
	Timeout sim.Duration
	// Think is the mean think time between a flow's requests
	// (exponential). 0 means 1ms. The experiment scales Think with the
	// population to hold offered load constant across the sweep.
	Think sim.Duration
	// ArrivalGap is the mean delay between a departure and its
	// replacement arrival (exponential); 0 means Think.
	ArrivalGap sim.Duration
	// SizeZipfS is the Zipf skew of per-flow request budgets (must be
	// > 1; 0 means 1.2): most flows draw small budgets, a heavy tail
	// draws large ones.
	SizeZipfS float64
	// MiceFrac is the fraction of arrivals classed as mice (0 means
	// 0.9); mice draw budgets in [1, MiceMax] (0 means 8), elephants
	// in (MiceMax, SizeMax] (0 means 128).
	MiceFrac float64
	MiceMax  uint64
	SizeMax  uint64
	// DSCPs assigns per-flow service classes round-robin by flow id;
	// empty means every flow uses Flow.DSCP. One immutable frame
	// template is built per distinct class (DSCP lives inside the IPv4
	// checksum; UDP ports do not, so ports are rewritten per flow with
	// no checksum work).
	DSCPs []uint8
	// SrcPorts and DstPorts size the per-flow port spaces (0 means
	// 16384 source ports and 1 destination port).
	SrcPorts int
	DstPorts int
	// Seed drives the size/think/arrival PRNG; equal seeds replay
	// bit-identically.
	Seed int64
	// WheelGran and WheelSlots shape the client's timer wheel (0 means
	// 64us granularity, 4096 slots). All think, timeout, and arrival
	// deadlines quantize to the granularity.
	WheelGran  sim.Duration
	WheelSlots int
	// Hist, when non-nil, additionally records every response latency
	// into this shared histogram.
	Hist *stats.Histogram
}

// Validate checks the churn parameters.
func (c *ChurnConfig) Validate() error {
	var errs []error
	if c.Flows <= 0 {
		errs = append(errs, fmt.Errorf("net: churn Flows %d must be > 0", c.Flows))
	}
	if c.Requests == 0 {
		errs = append(errs, errors.New("net: churn needs a request budget"))
	}
	if c.SizeZipfS != 0 && c.SizeZipfS <= 1 {
		errs = append(errs, fmt.Errorf("net: churn SizeZipfS %v must be > 1", c.SizeZipfS))
	}
	if c.MiceFrac < 0 || c.MiceFrac > 1 {
		errs = append(errs, fmt.Errorf("net: churn MiceFrac %v outside [0,1]", c.MiceFrac))
	}
	mice, size := c.MiceMax, c.SizeMax
	if mice == 0 {
		mice = 8
	}
	if size == 0 {
		size = 128
	}
	if size <= mice {
		errs = append(errs, fmt.Errorf("net: churn SizeMax %d must exceed MiceMax %d", size, mice))
	}
	sp, dp := c.SrcPorts, c.DstPorts
	if sp == 0 {
		sp = 16384
	}
	if dp == 0 {
		dp = 1
	}
	if sp < 0 || int(c.Flow.SrcPort)+sp > 1<<16 {
		errs = append(errs, fmt.Errorf("net: churn source ports [%d,%d) overflow", c.Flow.SrcPort, int(c.Flow.SrcPort)+sp))
	}
	if dp < 0 || int(c.Flow.DstPort)+dp > 1<<16 {
		errs = append(errs, fmt.Errorf("net: churn destination ports [%d,%d) overflow", c.Flow.DstPort, int(c.Flow.DstPort)+dp))
	}
	for _, d := range c.DSCPs {
		if d > 63 {
			errs = append(errs, fmt.Errorf("net: churn DSCP %d exceeds 6 bits", d))
		}
	}
	return errors.Join(errs...)
}

// ChurnStats summarises one churn client's run.
type ChurnStats struct {
	Issued    uint64 // wire transmissions (first sends + resends)
	Responses uint64
	Timeouts  uint64
	Late      uint64
	// Arrivals and Departures count flow lifecycle events; ActiveFlows
	// is the resident population at collection time.
	Arrivals    uint64
	Departures  uint64
	ActiveFlows int
	GoodputBps  float64
	P50         sim.Duration
	P99         sim.Duration
	P999        sim.Duration
	// Wheel is the timer wheel's activity (armed/fired/canceled
	// deadlines, ticks, cascade inspections).
	Wheel sim.TimerWheelStats
	// TableLoad is the flow table's occupancy fraction.
	TableLoad float64
}

// churnFlow is one resident flow's state: 24 bytes of inline value in
// the flow table, no pointers.
type churnFlow struct {
	sent      sim.Time        // last request's send time
	timer     sim.TimerHandle // armed think or timeout deadline
	remaining uint32          // requests left in this flow's budget
	attempt   uint16          // wire attempt counter (resends bump it)
	srcPort   uint16
	dstPort   uint16
	dscp      uint8 // index into tmpls
	waiting   bool  // a request is on the wire
}

// ChurnClient drives the flow-churn workload into an uplink. All
// per-flow state is a flow.Table keyed by flow id; the wire sequence
// number of a request is flowID<<16 | attempt, so responses match the
// exact transmission that elicited them even across timeout resends.
type ChurnClient struct {
	cfg   ChurnConfig
	up    *Link
	wheel *sim.TimerWheel
	hist  *stats.Histogram

	// tmpls holds one prebuilt frame per DSCP class; pool recycles
	// request packets.
	tmpls []*pkt.Template
	pool  *pkt.Pool

	flows    *flow.Table[churnFlow]
	nextFlow uint64
	rng      *rand.Rand
	miceZipf *rand.Zipf // budgets 1..MiceMax
	elepZipf *rand.Zipf // budgets MiceMax+1..SizeMax

	issued     uint64
	resp       uint64
	timeouts   uint64
	late       uint64
	arrivals   uint64
	departures uint64
	rxBytes    uint64

	firstSend sim.Time
	lastResp  sim.Time
	sentAny   bool
	started   bool
}

// NewChurnClient builds a churn client sending into up on s. The
// timer wheel is created on s, so the client is bound to one event
// domain: in sharded runs, s must be the client's own domain
// simulator.
func NewChurnClient(s *sim.Simulator, cfg ChurnConfig, up *Link) *ChurnClient {
	if up == nil {
		panic("net: churn client needs an uplink")
	}
	if err := cfg.Validate(); err != nil {
		panic(fmt.Sprintf("net: churn: %v", err))
	}
	if cfg.Flow.FrameLen == 0 {
		cfg.Flow.FrameLen = pkt.MTUFrameLen
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = DefaultTimeout
	}
	if cfg.Think <= 0 {
		cfg.Think = sim.Millisecond
	}
	if cfg.ArrivalGap <= 0 {
		cfg.ArrivalGap = cfg.Think
	}
	if cfg.SizeZipfS == 0 {
		cfg.SizeZipfS = 1.2
	}
	if cfg.MiceFrac == 0 {
		cfg.MiceFrac = 0.9
	}
	if cfg.MiceMax == 0 {
		cfg.MiceMax = 8
	}
	if cfg.SizeMax == 0 {
		cfg.SizeMax = 128
	}
	if cfg.SrcPorts == 0 {
		cfg.SrcPorts = 16384
	}
	if cfg.DstPorts == 0 {
		cfg.DstPorts = 1
	}
	if cfg.WheelGran <= 0 {
		cfg.WheelGran = 64 * sim.Microsecond
	}
	if cfg.WheelSlots <= 0 {
		cfg.WheelSlots = 4096
	}
	if len(cfg.DSCPs) == 0 {
		cfg.DSCPs = []uint8{cfg.Flow.DSCP}
	}
	c := &ChurnClient{
		cfg:   cfg,
		up:    up,
		wheel: sim.NewTimerWheel(s, cfg.WheelGran, cfg.WheelSlots),
		hist:  stats.NewHistogram(5),
		flows: flow.New[churnFlow](cfg.Flows),
		rng:   rand.New(rand.NewSource(cfg.Seed)),
	}
	c.miceZipf = rand.NewZipf(c.rng, cfg.SizeZipfS, 1, cfg.MiceMax-1)
	c.elepZipf = rand.NewZipf(c.rng, cfg.SizeZipfS, 1, cfg.SizeMax-cfg.MiceMax-1)
	for _, d := range cfg.DSCPs {
		fl := cfg.Flow
		fl.DSCP = d
		tmpl, err := fl.Template()
		if err != nil {
			panic(fmt.Sprintf("net: churn flow: %v", err))
		}
		c.tmpls = append(c.tmpls, tmpl)
	}
	return c
}

// Flow returns the client's base flow template.
func (c *ChurnClient) Flow() traffic.Flow { return c.cfg.Flow }

// Wheel exposes the client's timer wheel (stats, tests).
func (c *ChurnClient) Wheel() *sim.TimerWheel { return c.wheel }

// Table exposes the client's flow table (stats, tests).
func (c *ChurnClient) Table() *flow.Table[churnFlow] { return c.flows }

// Start schedules the initial population's arrival. Call once. The
// whole population arrives at cfg.Start, but each flow's first
// request is deferred by a think draw, so load ramps over roughly one
// think window instead of bursting.
func (c *ChurnClient) Start(s *sim.Simulator) {
	if c.started {
		panic("net: churn client already started")
	}
	c.started = true
	if c.pool = c.up.PacketPool(); c.pool == nil {
		c.pool = pkt.NewPool(c.cfg.Flow.FrameLen)
	}
	s.AtNamed(c.cfg.Start, "churn-start", func(sm *sim.Simulator) {
		for i := 0; i < c.cfg.Flows; i++ {
			fid := c.admit()
			f := c.flows.Ref(fid)
			f.timer = c.wheel.Arm(c.expDraw(c.cfg.Think), churnThinkEv, sim.Arg{Obj: c, U0: fid})
		}
	})
}

// admit creates one flow — id, budget draw, 5-tuple, class — and
// inserts it idle (no timer armed yet). Returns the flow id.
func (c *ChurnClient) admit() uint64 {
	fid := c.nextFlow
	c.nextFlow++
	var budget uint64
	if c.rng.Float64() < c.cfg.MiceFrac {
		budget = 1 + c.miceZipf.Uint64()
	} else {
		budget = c.cfg.MiceMax + 1 + c.elepZipf.Uint64()
	}
	c.arrivals++
	c.flows.Put(fid, churnFlow{
		remaining: uint32(budget),
		srcPort:   c.cfg.Flow.SrcPort + uint16(fid%uint64(c.cfg.SrcPorts)),
		dstPort:   c.cfg.Flow.DstPort + uint16(fid/uint64(c.cfg.SrcPorts)%uint64(c.cfg.DstPorts)),
		dscp:      uint8(fid % uint64(len(c.tmpls))),
	})
	return fid
}

// expDraw returns an exponential deviate with the given mean, floored
// at one picosecond.
func (c *ChurnClient) expDraw(mean sim.Duration) sim.Duration {
	d := sim.Duration(c.rng.ExpFloat64() * float64(mean))
	if d < 1 {
		d = 1
	}
	return d
}

// send puts flow fid's next request on the wire: a pool packet
// stamped from the flow's class template with the per-flow UDP ports
// rewritten in place (ports sit outside the IPv4 checksum, and the
// UDP checksum is unused, so the rewrite costs two stores). Arms the
// timeout on the wheel. Zero allocations once pool, slab, and table
// are warm.
func (c *ChurnClient) send(s *sim.Simulator, fid uint64, f *churnFlow) {
	w := fid<<16 | uint64(f.attempt)
	c.issued++
	tmpl := c.tmpls[f.dscp]
	p := c.pool.Get(tmpl.FrameLen())
	tmpl.Stamp(p, w)
	udp := p.Frame[pkt.EthHeaderLen+pkt.IPv4HeaderLen:]
	udp[0], udp[1] = byte(f.srcPort>>8), byte(f.srcPort)
	udp[2], udp[3] = byte(f.dstPort>>8), byte(f.dstPort)
	now := s.Now()
	if !c.sentAny {
		c.sentAny = true
		c.firstSend = now
	}
	f.sent = now
	f.waiting = true
	f.timer = c.wheel.Arm(c.cfg.Timeout, churnTimeoutEv, sim.Arg{Obj: c, U0: w})
	c.up.Receive(s, p)
}

// depart removes flow fid and, budget permitting, arms a replacement
// arrival after an exponential gap — the Poisson churn process.
func (c *ChurnClient) depart(fid uint64) {
	c.flows.Delete(fid)
	c.departures++
	if c.issued < c.cfg.Requests {
		c.wheel.Arm(c.expDraw(c.cfg.ArrivalGap), churnArriveEv, sim.Arg{Obj: c})
	}
}

// churnThinkEv fires when an idle flow's think time expires: it sends
// the flow's next request, or departs the flow when the global budget
// is spent. Arg.Obj is the *ChurnClient, U0 the flow id.
func churnThinkEv(sm *sim.Simulator, a sim.Arg) {
	c := a.Obj.(*ChurnClient)
	fid := a.U0
	f := c.flows.Ref(fid)
	if f == nil {
		return
	}
	if c.issued >= c.cfg.Requests {
		c.depart(fid)
		return
	}
	c.send(sm, fid, f)
}

// churnTimeoutEv fires at a request's response deadline. A stale fire
// (flow departed, or the attempt was already answered) is a no-op —
// the wheel cancels matched deadlines, so this only happens across a
// resend race. Otherwise the request is resent under the next attempt
// number (budget permitting) or the flow departs unanswered. Arg.Obj
// is the *ChurnClient, U0 the wire sequence number.
func churnTimeoutEv(sm *sim.Simulator, a sim.Arg) {
	c := a.Obj.(*ChurnClient)
	fid, att := a.U0>>16, uint16(a.U0)
	f := c.flows.Ref(fid)
	if f == nil || !f.waiting || f.attempt != att {
		return
	}
	c.timeouts++
	if c.issued >= c.cfg.Requests {
		c.depart(fid)
		return
	}
	f.attempt++
	c.send(sm, fid, f)
}

// churnArriveEv fires when a replacement flow's arrival gap expires:
// a fresh flow is admitted and immediately issues its first request.
// Arg.Obj is the *ChurnClient.
func churnArriveEv(sm *sim.Simulator, a sim.Arg) {
	c := a.Obj.(*ChurnClient)
	if c.issued >= c.cfg.Requests {
		return
	}
	fid := c.admit()
	c.send(sm, fid, c.flows.Ref(fid))
}

// Receive consumes one response from the fabric (implements
// Endpoint). The wire sequence number decomposes into flow id and
// attempt; only the exact outstanding attempt matches — responses to
// departed flows or superseded attempts count as Late.
func (c *ChurnClient) Receive(s *sim.Simulator, p *pkt.Packet) {
	fid, att := p.Seq>>16, uint16(p.Seq)
	f := c.flows.Ref(fid)
	if f == nil || !f.waiting || f.attempt != att {
		c.late++
		p.Release()
		return
	}
	c.wheel.Cancel(f.timer)
	now := s.Now()
	lat := now.Sub(f.sent)
	c.hist.Record(lat)
	if c.cfg.Hist != nil {
		c.cfg.Hist.Record(lat)
	}
	c.resp++
	c.rxBytes += uint64(p.Len())
	c.lastResp = now
	f.waiting = false
	f.attempt++
	f.remaining--
	p.Release()
	if f.remaining == 0 || c.issued >= c.cfg.Requests {
		c.depart(fid)
		return
	}
	f.timer = c.wheel.Arm(c.expDraw(c.cfg.Think), churnThinkEv, sim.Arg{Obj: c, U0: fid})
}

// Done reports whether the budget is spent and every flow has
// drained — the fabric idle check. (Residual arrival timers fire as
// no-ops and the wheel then suspends.)
func (c *ChurnClient) Done() bool {
	return c.issued >= c.cfg.Requests && c.flows.Len() == 0
}

// Issued returns wire transmissions so far.
func (c *ChurnClient) Issued() uint64 { return c.issued }

// Responses returns responses matched so far.
func (c *ChurnClient) Responses() uint64 { return c.resp }

// RxBytes returns response bytes received (matched responses only).
func (c *ChurnClient) RxBytes() uint64 { return c.rxBytes }

// FirstSend and LastResp bracket the client's active span.
func (c *ChurnClient) FirstSend() sim.Time { return c.firstSend }

// LastResp returns when the last matched response arrived.
func (c *ChurnClient) LastResp() sim.Time { return c.lastResp }

// Hist exposes the client's private latency histogram.
func (c *ChurnClient) Hist() *stats.Histogram { return c.hist }

// Stats summarises the run so far.
func (c *ChurnClient) Stats() ChurnStats {
	st := ChurnStats{
		Issued:      c.issued,
		Responses:   c.resp,
		Timeouts:    c.timeouts,
		Late:        c.late,
		Arrivals:    c.arrivals,
		Departures:  c.departures,
		ActiveFlows: c.flows.Len(),
		Wheel:       c.wheel.Stats(),
		TableLoad:   c.flows.LoadFactor(),
	}
	if c.hist.Count() > 0 {
		st.P50 = c.hist.Quantile(0.50)
		st.P99 = c.hist.Quantile(0.99)
		st.P999 = c.hist.Quantile(0.999)
	}
	st.GoodputBps = goodputBps(c.rxBytes, c.firstSend, c.lastResp)
	return st
}

// RegisterMetrics registers the churn client's counters and gauges
// under prefix (e.g. "churn.c0.") into the observability registry.
func (c *ChurnClient) RegisterMetrics(reg *obs.Registry, prefix string) {
	reg.CounterFunc(prefix+"issued", func() uint64 { return c.issued })
	reg.CounterFunc(prefix+"responses", func() uint64 { return c.resp })
	reg.CounterFunc(prefix+"timeouts", func() uint64 { return c.timeouts })
	reg.CounterFunc(prefix+"late", func() uint64 { return c.late })
	reg.CounterFunc(prefix+"arrivals", func() uint64 { return c.arrivals })
	reg.CounterFunc(prefix+"departures", func() uint64 { return c.departures })
	reg.GaugeFunc(prefix+"active_flows", func() float64 { return float64(c.flows.Len()) })
	reg.GaugeFunc(prefix+"table_load", func() float64 { return c.flows.LoadFactor() })
	reg.CounterFunc(prefix+"wheel_ticks", func() uint64 { return c.wheel.Stats().Ticks })
	reg.CounterFunc(prefix+"wheel_cascades", func() uint64 { return c.wheel.Stats().Cascades })
	reg.GaugeFunc(prefix+"wheel_pending", func() float64 { return float64(c.wheel.Len()) })
	reg.GaugeFunc(prefix+"goodput_gbps", func() float64 {
		return goodputBps(c.rxBytes, c.firstSend, c.lastResp) / 1e9
	})
	reg.GaugeFunc(prefix+"p99_us", func() float64 {
		if c.hist.Count() == 0 {
			return 0
		}
		return c.hist.Quantile(0.99).Microseconds()
	})
}
