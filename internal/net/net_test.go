package net

import (
	"testing"

	"idio/internal/pkt"
	"idio/internal/sim"
	"idio/internal/traffic"
)

// sink is a terminal endpoint counting deliveries.
type sink struct {
	n     uint64
	bytes uint64
}

func (k *sink) Receive(_ *sim.Simulator, p *pkt.Packet) {
	k.n++
	k.bytes += uint64(p.Len())
}

func testFlow(frameLen int) traffic.Flow {
	return traffic.Flow{
		Src: pkt.IPv4{10, 0, 2, 1}, Dst: pkt.IPv4{10, 0, 0, 1},
		SrcPort: 7000, DstPort: 9000, FrameLen: frameLen,
	}
}

// offer injects n back-to-back packets into the link at time zero.
func offer(t *testing.T, s *sim.Simulator, l *Link, flow traffic.Flow, n int) {
	t.Helper()
	s.At(0, func(sm *sim.Simulator) {
		for i := 0; i < n; i++ {
			p, err := flow.Packet(uint64(i))
			if err != nil {
				t.Fatalf("packet: %v", err)
			}
			l.Receive(sm, p)
		}
	})
}

// TestLinkConservation checks the fabric's packet-conservation
// invariant: every offered packet is exactly one of accepted
// (TxPackets) or dropped (tail/down), and after the fabric drains
// every accepted packet was delivered.
func TestLinkConservation(t *testing.T) {
	const offered = 100
	s := sim.New()
	dst := &sink{}
	l := NewLink(LinkConfig{Name: "t", RateBps: 10e9, Delay: sim.Microsecond, QueueDepth: 16}, dst)
	offer(t, s, l, testFlow(1514), offered)
	s.RunUntil(sim.Time(10 * sim.Millisecond))

	st := l.Stats()
	if st.TailDrops == 0 {
		t.Fatalf("expected tail drops with 16-deep queue and 100 back-to-back packets, got 0")
	}
	if got := st.TxPackets + st.TailDrops + st.DownDrops; got != offered {
		t.Fatalf("conservation: tx %d + tail %d + down %d = %d, want %d",
			st.TxPackets, st.TailDrops, st.DownDrops, got, offered)
	}
	if st.Delivered != st.TxPackets {
		t.Fatalf("drained link delivered %d of %d accepted", st.Delivered, st.TxPackets)
	}
	if dst.n != st.Delivered {
		t.Fatalf("sink saw %d, link says delivered %d", dst.n, st.Delivered)
	}
	if l.InFlight() != 0 {
		t.Fatalf("drained link reports %d in flight", l.InFlight())
	}
	if st.QueueHighWater != 16 {
		t.Fatalf("queue high-water %d, want the 16-packet bound", st.QueueHighWater)
	}
}

// TestLinkDownDrops checks that a downed link loses offered packets
// without breaking conservation, and recovers when raised.
func TestLinkDownDrops(t *testing.T) {
	s := sim.New()
	dst := &sink{}
	l := NewLink(LinkConfig{Name: "t", RateBps: 100e9}, dst)
	flow := testFlow(1514)
	s.At(0, func(sm *sim.Simulator) {
		l.SetDown(true)
		for i := 0; i < 5; i++ {
			p, _ := flow.Packet(uint64(i))
			l.Receive(sm, p)
		}
		l.SetDown(false)
		p, _ := flow.Packet(5)
		l.Receive(sm, p)
	})
	s.RunUntil(sim.Time(sim.Millisecond))
	st := l.Stats()
	if st.DownDrops != 5 || st.TxPackets != 1 || st.Delivered != 1 || dst.n != 1 {
		t.Fatalf("down=%d tx=%d delivered=%d sink=%d; want 5/1/1/1",
			st.DownDrops, st.TxPackets, st.Delivered, dst.n)
	}
}

// TestLinkRateDegradation checks that SetRateFactor stretches
// serialization time: the same burst takes proportionally longer to
// drain at a quarter of the rate.
func TestLinkRateDegradation(t *testing.T) {
	drainAt := func(factor float64) sim.Duration {
		s := sim.New()
		dst := &sink{}
		l := NewLink(LinkConfig{Name: "t", RateBps: 10e9, QueueDepth: 64}, dst)
		l.SetRateFactor(factor)
		offer(t, s, l, testFlow(1514), 32)
		s.RunUntil(sim.Time(10 * sim.Millisecond))
		if dst.n != 32 {
			t.Fatalf("factor %v: delivered %d of 32", factor, dst.n)
		}
		return l.Stats().BusyTime
	}
	full, quarter := drainAt(1), drainAt(0.25)
	if quarter != 4*full {
		t.Fatalf("busy time at 1/4 rate: %v, want 4x the full-rate %v", quarter, full)
	}
}

// TestSwitchRouting checks destination-IP forwarding and the graceful
// handling of unroutable and undecodable frames.
func TestSwitchRouting(t *testing.T) {
	s := sim.New()
	a, b := &sink{}, &sink{}
	sw := NewSwitch("sw0")
	pa := sw.AddPort(NewLink(LinkConfig{Name: "a", RateBps: 100e9}, a))
	pb := sw.AddPort(NewLink(LinkConfig{Name: "b", RateBps: 100e9}, b))
	ipA, ipB := pkt.IPv4{10, 0, 2, 1}, pkt.IPv4{10, 0, 2, 2}
	sw.Route(ipA, pa)
	sw.Route(ipB, pb)

	flowTo := func(ip pkt.IPv4) traffic.Flow {
		f := testFlow(256)
		f.Dst = ip
		return f
	}
	s.At(0, func(sm *sim.Simulator) {
		for i := 0; i < 3; i++ {
			p, _ := flowTo(ipA).Packet(uint64(i))
			sw.Receive(sm, p)
		}
		p, _ := flowTo(ipB).Packet(3)
		sw.Receive(sm, p)
		p, _ = flowTo(pkt.IPv4{192, 168, 0, 1}).Packet(4)
		sw.Receive(sm, p)
		sw.Receive(sm, &pkt.Packet{Frame: make([]byte, 8), Seq: 5})
	})
	s.RunUntil(sim.Time(sim.Millisecond))

	st := sw.Stats()
	if st.Forwarded != 4 || st.NoRoute != 1 || st.ParseDrops != 1 {
		t.Fatalf("forwarded=%d noroute=%d parse=%d; want 4/1/1", st.Forwarded, st.NoRoute, st.ParseDrops)
	}
	if a.n != 3 || b.n != 1 {
		t.Fatalf("port deliveries a=%d b=%d; want 3/1", a.n, b.n)
	}
}

// echoEndpoint bounces every request back as its response through a
// reply link — a one-packet-deep stand-in for the DUT.
type echoEndpoint struct{ reply *Link }

func (e *echoEndpoint) Receive(s *sim.Simulator, p *pkt.Packet) {
	e.reply.Receive(s, pkt.EchoResponse(p))
}

// TestClientClosedLoop runs a closed-loop client against a loopback
// echo and checks the window mechanics: the full budget issues, every
// request is answered, and the run is deterministic.
func TestClientClosedLoop(t *testing.T) {
	run := func() (ClientStats, sim.Time) {
		s := sim.New()
		echo := &echoEndpoint{}
		up := NewLink(LinkConfig{Name: "up", RateBps: 100e9, Delay: sim.Microsecond}, echo)
		c := NewClient(ClientConfig{
			Flow: testFlow(1514), Mode: ModeClosed, Outstanding: 4, Requests: 256,
		}, up)
		echo.reply = NewLink(LinkConfig{Name: "down", RateBps: 100e9, Delay: sim.Microsecond}, c)
		c.Start(s)
		s.RunUntil(sim.Time(100 * sim.Millisecond))
		if !c.Done() {
			t.Fatalf("client not done: issued=%d inflight=%d", c.Issued(), c.Issued()-c.Responses())
		}
		return c.Stats(), c.LastResp()
	}
	st, last := run()
	if st.Issued != 256 || st.Responses != 256 || st.Timeouts != 0 || st.Late != 0 {
		t.Fatalf("issued=%d resp=%d timeouts=%d late=%d; want 256/256/0/0",
			st.Issued, st.Responses, st.Timeouts, st.Late)
	}
	if st.GoodputBps <= 0 || st.P50 <= 0 || st.P999 < st.P50 {
		t.Fatalf("degenerate latency summary: goodput=%v p50=%v p999=%v", st.GoodputBps, st.P50, st.P999)
	}
	st2, last2 := run()
	if st != st2 || last != last2 {
		t.Fatalf("closed-loop replay diverged:\n  %+v @%v\n  %+v @%v", st, last, st2, last2)
	}
}

// TestClientTimeoutReissue checks that a lossy fabric cannot deadlock
// the closed loop: requests dropped by a downed link time out and the
// window slot reissues until the budget completes.
func TestClientTimeoutReissue(t *testing.T) {
	s := sim.New()
	echo := &echoEndpoint{}
	up := NewLink(LinkConfig{Name: "up", RateBps: 100e9}, echo)
	c := NewClient(ClientConfig{
		Flow: testFlow(1514), Mode: ModeClosed, Outstanding: 2, Requests: 8,
		Timeout: 10 * sim.Microsecond,
	}, up)
	echo.reply = NewLink(LinkConfig{Name: "down", RateBps: 100e9}, c)
	// Drop the first window: the link is down until after both initial
	// requests are offered.
	s.At(0, func(*sim.Simulator) { up.SetDown(true) })
	s.At(sim.Time(sim.Microsecond), func(*sim.Simulator) { up.SetDown(false) })
	c.Start(s)
	s.RunUntil(sim.Time(10 * sim.Millisecond))

	st := c.Stats()
	if !c.Done() {
		t.Fatalf("client not done after timeouts: %+v", st)
	}
	if st.Timeouts != 2 {
		t.Fatalf("timeouts=%d, want 2 (the dropped first window)", st.Timeouts)
	}
	// The budget counts issues, so the 2 dropped requests are spent:
	// 8 issued, 6 answered.
	if st.Issued != 8 || st.Responses != 6 {
		t.Fatalf("issued=%d responses=%d, want 8 issued / 6 answered", st.Issued, st.Responses)
	}
	if up.Stats().DownDrops != 2 {
		t.Fatalf("uplink down drops=%d, want 2", up.Stats().DownDrops)
	}
}

// TestOpenLoopPacing checks that an open-loop client offers at its
// configured rate independent of responses.
func TestOpenLoopPacing(t *testing.T) {
	s := sim.New()
	echo := &echoEndpoint{}
	up := NewLink(LinkConfig{Name: "up", RateBps: 100e9}, echo)
	c := NewClient(ClientConfig{
		Flow: testFlow(1514), Mode: ModeOpen, RateBps: traffic.Gbps(10), Requests: 100,
	}, up)
	echo.reply = NewLink(LinkConfig{Name: "down", RateBps: 100e9}, c)
	c.Start(s)
	// 100 MTU frames at 10 Gbps ≈ 121 us of inter-arrival spacing.
	s.RunUntil(sim.Time(60 * sim.Microsecond))
	if got := c.Issued(); got < 45 || got > 55 {
		t.Fatalf("issued %d after half the span, want about 50", got)
	}
	s.RunUntil(sim.Time(10 * sim.Millisecond))
	if c.Issued() != 100 || c.Responses() != 100 {
		t.Fatalf("issued=%d resp=%d, want 100/100", c.Issued(), c.Responses())
	}
}
