package net

import (
	"strings"
	"testing"

	"idio/internal/pkt"
	"idio/internal/sim"
	"idio/internal/traffic"
)

// sink is a terminal endpoint counting deliveries.
type sink struct {
	n     uint64
	bytes uint64
}

func (k *sink) Receive(_ *sim.Simulator, p *pkt.Packet) {
	k.n++
	k.bytes += uint64(p.Len())
}

func testFlow(frameLen int) traffic.Flow {
	return traffic.Flow{
		Src: pkt.IPv4{10, 0, 2, 1}, Dst: pkt.IPv4{10, 0, 0, 1},
		SrcPort: 7000, DstPort: 9000, FrameLen: frameLen,
	}
}

// offer injects n back-to-back packets into the link at time zero.
func offer(t *testing.T, s *sim.Simulator, l *Link, flow traffic.Flow, n int) {
	t.Helper()
	s.At(0, func(sm *sim.Simulator) {
		for i := 0; i < n; i++ {
			p, err := flow.Packet(uint64(i))
			if err != nil {
				t.Fatalf("packet: %v", err)
			}
			l.Receive(sm, p)
		}
	})
}

// TestLinkConservation checks the fabric's packet-conservation
// invariant: every offered packet is exactly one of accepted
// (TxPackets) or dropped (tail/down), and after the fabric drains
// every accepted packet was delivered.
func TestLinkConservation(t *testing.T) {
	const offered = 100
	s := sim.New()
	dst := &sink{}
	l := NewLink(LinkConfig{Name: "t", RateBps: 10e9, Delay: sim.Microsecond, QueueDepth: 16}, dst)
	offer(t, s, l, testFlow(1514), offered)
	s.RunUntil(sim.Time(10 * sim.Millisecond))

	st := l.Stats()
	if st.TailDrops == 0 {
		t.Fatalf("expected tail drops with 16-deep queue and 100 back-to-back packets, got 0")
	}
	if got := st.TxPackets + st.TailDrops + st.DownDrops; got != offered {
		t.Fatalf("conservation: tx %d + tail %d + down %d = %d, want %d",
			st.TxPackets, st.TailDrops, st.DownDrops, got, offered)
	}
	if st.Delivered != st.TxPackets {
		t.Fatalf("drained link delivered %d of %d accepted", st.Delivered, st.TxPackets)
	}
	if dst.n != st.Delivered {
		t.Fatalf("sink saw %d, link says delivered %d", dst.n, st.Delivered)
	}
	if l.InFlight() != 0 {
		t.Fatalf("drained link reports %d in flight", l.InFlight())
	}
	if st.QueueHighWater != 16 {
		t.Fatalf("queue high-water %d, want the 16-packet bound", st.QueueHighWater)
	}
}

// TestLinkDownDrops checks that a downed link loses offered packets
// without breaking conservation, and recovers when raised.
func TestLinkDownDrops(t *testing.T) {
	s := sim.New()
	dst := &sink{}
	l := NewLink(LinkConfig{Name: "t", RateBps: 100e9}, dst)
	flow := testFlow(1514)
	s.At(0, func(sm *sim.Simulator) {
		l.SetDown(true)
		for i := 0; i < 5; i++ {
			p, _ := flow.Packet(uint64(i))
			l.Receive(sm, p)
		}
		l.SetDown(false)
		p, _ := flow.Packet(5)
		l.Receive(sm, p)
	})
	s.RunUntil(sim.Time(sim.Millisecond))
	st := l.Stats()
	if st.DownDrops != 5 || st.TxPackets != 1 || st.Delivered != 1 || dst.n != 1 {
		t.Fatalf("down=%d tx=%d delivered=%d sink=%d; want 5/1/1/1",
			st.DownDrops, st.TxPackets, st.Delivered, dst.n)
	}
}

// TestLinkRateDegradation checks that SetRateFactor stretches
// serialization time: the same burst takes proportionally longer to
// drain at a quarter of the rate.
func TestLinkRateDegradation(t *testing.T) {
	drainAt := func(factor float64) sim.Duration {
		s := sim.New()
		dst := &sink{}
		l := NewLink(LinkConfig{Name: "t", RateBps: 10e9, QueueDepth: 64}, dst)
		l.SetRateFactor(factor)
		offer(t, s, l, testFlow(1514), 32)
		s.RunUntil(sim.Time(10 * sim.Millisecond))
		if dst.n != 32 {
			t.Fatalf("factor %v: delivered %d of 32", factor, dst.n)
		}
		return l.Stats().BusyTime
	}
	full, quarter := drainAt(1), drainAt(0.25)
	if quarter != 4*full {
		t.Fatalf("busy time at 1/4 rate: %v, want 4x the full-rate %v", quarter, full)
	}
}

// TestSwitchRouting checks destination-IP forwarding and the graceful
// handling of unroutable and undecodable frames.
func TestSwitchRouting(t *testing.T) {
	s := sim.New()
	a, b := &sink{}, &sink{}
	sw := NewSwitch("sw0")
	pa := sw.AddPort(NewLink(LinkConfig{Name: "a", RateBps: 100e9}, a))
	pb := sw.AddPort(NewLink(LinkConfig{Name: "b", RateBps: 100e9}, b))
	ipA, ipB := pkt.IPv4{10, 0, 2, 1}, pkt.IPv4{10, 0, 2, 2}
	sw.Route(ipA, pa)
	sw.Route(ipB, pb)

	flowTo := func(ip pkt.IPv4) traffic.Flow {
		f := testFlow(256)
		f.Dst = ip
		return f
	}
	s.At(0, func(sm *sim.Simulator) {
		for i := 0; i < 3; i++ {
			p, _ := flowTo(ipA).Packet(uint64(i))
			sw.Receive(sm, p)
		}
		p, _ := flowTo(ipB).Packet(3)
		sw.Receive(sm, p)
		p, _ = flowTo(pkt.IPv4{192, 168, 0, 1}).Packet(4)
		sw.Receive(sm, p)
		sw.Receive(sm, &pkt.Packet{Frame: make([]byte, 8), Seq: 5})
	})
	s.RunUntil(sim.Time(sim.Millisecond))

	st := sw.Stats()
	if st.Forwarded != 4 || st.NoRoute != 1 || st.ParseDrops != 1 {
		t.Fatalf("forwarded=%d noroute=%d parse=%d; want 4/1/1", st.Forwarded, st.NoRoute, st.ParseDrops)
	}
	if a.n != 3 || b.n != 1 {
		t.Fatalf("port deliveries a=%d b=%d; want 3/1", a.n, b.n)
	}
}

// echoEndpoint bounces every request back as its response through a
// reply link — a one-packet-deep stand-in for the DUT.
type echoEndpoint struct{ reply *Link }

func (e *echoEndpoint) Receive(s *sim.Simulator, p *pkt.Packet) {
	e.reply.Receive(s, pkt.EchoResponse(p))
}

// TestClientClosedLoop runs a closed-loop client against a loopback
// echo and checks the window mechanics: the full budget issues, every
// request is answered, and the run is deterministic.
func TestClientClosedLoop(t *testing.T) {
	run := func() (ClientStats, sim.Time) {
		s := sim.New()
		echo := &echoEndpoint{}
		up := NewLink(LinkConfig{Name: "up", RateBps: 100e9, Delay: sim.Microsecond}, echo)
		c := NewClient(ClientConfig{
			Flow: testFlow(1514), Mode: ModeClosed, Outstanding: 4, Requests: 256,
		}, up)
		echo.reply = NewLink(LinkConfig{Name: "down", RateBps: 100e9, Delay: sim.Microsecond}, c)
		c.Start(s)
		s.RunUntil(sim.Time(100 * sim.Millisecond))
		if !c.Done() {
			t.Fatalf("client not done: issued=%d inflight=%d", c.Issued(), c.Issued()-c.Responses())
		}
		return c.Stats(), c.LastResp()
	}
	st, last := run()
	if st.Issued != 256 || st.Responses != 256 || st.Timeouts != 0 || st.Late != 0 {
		t.Fatalf("issued=%d resp=%d timeouts=%d late=%d; want 256/256/0/0",
			st.Issued, st.Responses, st.Timeouts, st.Late)
	}
	if st.GoodputBps <= 0 || st.P50 <= 0 || st.P999 < st.P50 {
		t.Fatalf("degenerate latency summary: goodput=%v p50=%v p999=%v", st.GoodputBps, st.P50, st.P999)
	}
	st2, last2 := run()
	if st != st2 || last != last2 {
		t.Fatalf("closed-loop replay diverged:\n  %+v @%v\n  %+v @%v", st, last, st2, last2)
	}
}

// TestClientTimeoutReissue checks that a lossy fabric cannot deadlock
// the closed loop: requests dropped by a downed link time out and the
// window slot reissues until the budget completes.
func TestClientTimeoutReissue(t *testing.T) {
	s := sim.New()
	echo := &echoEndpoint{}
	up := NewLink(LinkConfig{Name: "up", RateBps: 100e9}, echo)
	c := NewClient(ClientConfig{
		Flow: testFlow(1514), Mode: ModeClosed, Outstanding: 2, Requests: 8,
		Timeout: 10 * sim.Microsecond,
	}, up)
	echo.reply = NewLink(LinkConfig{Name: "down", RateBps: 100e9}, c)
	// Drop the first window: the link is down until after both initial
	// requests are offered.
	s.At(0, func(*sim.Simulator) { up.SetDown(true) })
	s.At(sim.Time(sim.Microsecond), func(*sim.Simulator) { up.SetDown(false) })
	c.Start(s)
	s.RunUntil(sim.Time(10 * sim.Millisecond))

	st := c.Stats()
	if !c.Done() {
		t.Fatalf("client not done after timeouts: %+v", st)
	}
	if st.Timeouts != 2 {
		t.Fatalf("timeouts=%d, want 2 (the dropped first window)", st.Timeouts)
	}
	// The budget counts issues, so the 2 dropped requests are spent:
	// 8 issued, 6 answered.
	if st.Issued != 8 || st.Responses != 6 {
		t.Fatalf("issued=%d responses=%d, want 8 issued / 6 answered", st.Issued, st.Responses)
	}
	if up.Stats().DownDrops != 2 {
		t.Fatalf("uplink down drops=%d, want 2", up.Stats().DownDrops)
	}
}

// TestOpenLoopPacing checks that an open-loop client offers at its
// configured rate independent of responses.
func TestOpenLoopPacing(t *testing.T) {
	s := sim.New()
	echo := &echoEndpoint{}
	up := NewLink(LinkConfig{Name: "up", RateBps: 100e9}, echo)
	c := NewClient(ClientConfig{
		Flow: testFlow(1514), Mode: ModeOpen, RateBps: traffic.Gbps(10), Requests: 100,
	}, up)
	echo.reply = NewLink(LinkConfig{Name: "down", RateBps: 100e9}, c)
	c.Start(s)
	// 100 MTU frames at 10 Gbps ≈ 121 us of inter-arrival spacing.
	s.RunUntil(sim.Time(60 * sim.Microsecond))
	if got := c.Issued(); got < 45 || got > 55 {
		t.Fatalf("issued %d after half the span, want about 50", got)
	}
	s.RunUntil(sim.Time(10 * sim.Millisecond))
	if c.Issued() != 100 || c.Responses() != 100 {
		t.Fatalf("issued=%d resp=%d, want 100/100", c.Issued(), c.Responses())
	}
}

// paceInto injects n packets into the link at a fixed inter-arrival
// gap starting at time zero — sustained offered load, unlike offer's
// single-instant burst (CoDel needs the queue excursion to persist
// across wall time before it sheds).
func paceInto(t *testing.T, s *sim.Simulator, l *Link, flow traffic.Flow, n int, gap sim.Duration) {
	t.Helper()
	var i int
	var tick sim.Event
	tick = func(sm *sim.Simulator) {
		p, err := flow.Packet(uint64(i))
		if err != nil {
			t.Fatalf("packet: %v", err)
		}
		l.Receive(sm, p)
		if i++; i < n {
			sm.After(gap, tick)
		}
	}
	s.At(0, tick)
}

// TestLinkAQMSheds checks the CoDel-style manager: offered load
// slightly above service rate builds a standing queue, the sojourn
// excursion persists past the interval, and the link sheds via
// AQMDrops long before the tail would — with packet conservation
// extended to the new drop class.
func TestLinkAQMSheds(t *testing.T) {
	const offered = 400
	s := sim.New()
	dst := &sink{}
	// 1514B at 10 Gbps serializes in ~1.21us; a 1us arrival gap grows
	// the backlog ~0.21us per packet, crossing the 5us target around
	// packet 24 and persisting from then on.
	l := NewLink(LinkConfig{
		Name: "t", RateBps: 10e9, QueueDepth: 1024,
		AQMTarget: 5 * sim.Microsecond, AQMInterval: 20 * sim.Microsecond,
	}, dst)
	paceInto(t, s, l, testFlow(1514), offered, sim.Microsecond)
	s.RunUntil(sim.Time(10 * sim.Millisecond))

	st := l.Stats()
	if st.AQMDrops == 0 {
		t.Fatal("standing queue above target never shed via AQM")
	}
	if st.TailDrops != 0 {
		t.Fatalf("AQM should shed before the 1024-deep tail: %d tail drops", st.TailDrops)
	}
	if got := st.TxPackets + st.TailDrops + st.DownDrops + st.AQMDrops; got != offered {
		t.Fatalf("conservation: tx %d + tail %d + down %d + aqm %d = %d, want %d",
			st.TxPackets, st.TailDrops, st.DownDrops, st.AQMDrops, got, offered)
	}
	if st.Delivered != st.TxPackets || dst.n != st.Delivered {
		t.Fatalf("delivered %d of %d accepted (sink saw %d)", st.Delivered, st.TxPackets, dst.n)
	}
}

// TestLinkAQMBelowTargetPasses: the same AQM config under load the
// link can absorb (sojourn stays under target) sheds nothing — the
// manager only acts on persistent standing queues.
func TestLinkAQMBelowTargetPasses(t *testing.T) {
	s := sim.New()
	dst := &sink{}
	l := NewLink(LinkConfig{
		Name: "t", RateBps: 10e9, QueueDepth: 1024,
		AQMTarget: 5 * sim.Microsecond, AQMInterval: 20 * sim.Microsecond,
	}, dst)
	// 2us gap > 1.21us service time: the queue never builds.
	paceInto(t, s, l, testFlow(1514), 200, 2*sim.Microsecond)
	s.RunUntil(sim.Time(10 * sim.Millisecond))
	st := l.Stats()
	if st.AQMDrops != 0 {
		t.Fatalf("%d AQM drops with no standing queue", st.AQMDrops)
	}
	if dst.n != 200 {
		t.Fatalf("delivered %d of 200", dst.n)
	}
}

// TestRetryConfigValidate covers every retry parameter bound.
func TestRetryConfigValidate(t *testing.T) {
	var nilCfg *RetryConfig
	if err := nilCfg.Validate(); err != nil {
		t.Fatalf("nil retry config: %v", err)
	}
	if err := (&RetryConfig{MaxRetries: 3, Backoff: sim.Microsecond, JitterFrac: 0.5}).Validate(); err != nil {
		t.Fatalf("valid retry config rejected: %v", err)
	}
	cases := []struct {
		name   string
		cfg    RetryConfig
		substr string
	}{
		{"negative retries", RetryConfig{MaxRetries: -1}, "MaxRetries"},
		{"negative backoff", RetryConfig{Backoff: -1}, "Backoff"},
		{"negative max backoff", RetryConfig{MaxBackoff: -1}, "MaxBackoff"},
		{"jitter >= 1", RetryConfig{JitterFrac: 1}, "JitterFrac"},
		{"negative jitter", RetryConfig{JitterFrac: -0.1}, "JitterFrac"},
		{"negative hedge", RetryConfig{Hedge: -1}, "Hedge"},
	}
	for _, tc := range cases {
		err := tc.cfg.Validate()
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.substr) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.substr)
		}
	}
}

// TestClientRetryBackoff: with a retry discipline, requests dropped by
// a transiently-down link are retransmitted (not abandoned like the
// legacy blind reissue), so the full budget completes with Responses
// == Requests — and the run replays bit-identically.
func TestClientRetryBackoff(t *testing.T) {
	run := func() ClientStats {
		s := sim.New()
		echo := &echoEndpoint{}
		up := NewLink(LinkConfig{Name: "up", RateBps: 100e9}, echo)
		c := NewClient(ClientConfig{
			Flow: testFlow(1514), Mode: ModeClosed, Outstanding: 2, Requests: 8,
			Timeout: 10 * sim.Microsecond,
			Retry:   &RetryConfig{MaxRetries: 3, Backoff: 5 * sim.Microsecond, Seed: 1},
		}, up)
		echo.reply = NewLink(LinkConfig{Name: "down", RateBps: 100e9}, c)
		// Drop the first window: both initial requests are lost.
		s.At(0, func(*sim.Simulator) { up.SetDown(true) })
		s.At(sim.Time(sim.Microsecond), func(*sim.Simulator) { up.SetDown(false) })
		c.Start(s)
		s.RunUntil(sim.Time(10 * sim.Millisecond))
		if !c.Done() {
			t.Fatalf("client not done: %+v", c.Stats())
		}
		return c.Stats()
	}
	st := run()
	if st.Timeouts != 2 || st.Retries != 2 {
		t.Fatalf("timeouts=%d retries=%d, want 2/2 (one retransmission per dropped request)",
			st.Timeouts, st.Retries)
	}
	// The retransmissions recover the dropped requests: unlike legacy
	// reissue (8 issued / 6 answered), every request is answered.
	if st.Issued != 8 || st.Responses != 8 || st.Failed != 0 || st.Late != 0 {
		t.Fatalf("issued=%d resp=%d failed=%d late=%d; want 8/8/0/0",
			st.Issued, st.Responses, st.Failed, st.Late)
	}
	if st2 := run(); st != st2 {
		t.Fatalf("retry replay diverged:\n  %+v\n  %+v", st, st2)
	}
}

// TestClientRetryBudgetExhausted: against a dead fabric every request
// spends its retry budget and is abandoned as Failed; the closed loop
// never deadlocks and the client drains to Done.
func TestClientRetryBudgetExhausted(t *testing.T) {
	s := sim.New()
	echo := &echoEndpoint{}
	up := NewLink(LinkConfig{Name: "up", RateBps: 100e9}, echo)
	c := NewClient(ClientConfig{
		Flow: testFlow(1514), Mode: ModeClosed, Outstanding: 2, Requests: 4,
		Timeout: 10 * sim.Microsecond,
		Retry:   &RetryConfig{MaxRetries: 1, Backoff: 5 * sim.Microsecond, Seed: 1},
	}, up)
	echo.reply = NewLink(LinkConfig{Name: "down", RateBps: 100e9}, c)
	s.At(0, func(*sim.Simulator) { up.SetDown(true) })
	c.Start(s)
	s.RunUntil(sim.Time(10 * sim.Millisecond))

	st := c.Stats()
	if !c.Done() {
		t.Fatalf("client wedged on a dead fabric: %+v", st)
	}
	// Each of the 4 requests: original + 1 retry, both time out.
	if st.Issued != 4 || st.Responses != 0 || st.Failed != 4 {
		t.Fatalf("issued=%d resp=%d failed=%d; want 4/0/4", st.Issued, st.Responses, st.Failed)
	}
	if st.Retries != 4 || st.Timeouts != 8 {
		t.Fatalf("retries=%d timeouts=%d; want 4/8", st.Retries, st.Timeouts)
	}
	if got := up.Stats().DownDrops; got != 8 {
		t.Fatalf("uplink swallowed %d attempts, want 8", got)
	}
}

// dropFirst swallows the first request it sees and echoes the rest —
// a server that loses exactly one request.
type dropFirst struct {
	reply   *Link
	dropped bool
}

func (d *dropFirst) Receive(s *sim.Simulator, p *pkt.Packet) {
	if !d.dropped {
		d.dropped = true
		p.Release()
		return
	}
	d.reply.Receive(s, pkt.EchoResponse(p))
}

// TestClientHedge: a hedged client covers a lost request with the
// speculative duplicate before the timeout fires, so the request
// completes without a retry; requests answered before the hedge delay
// send no duplicate.
func TestClientHedge(t *testing.T) {
	s := sim.New()
	srv := &dropFirst{}
	up := NewLink(LinkConfig{Name: "up", RateBps: 100e9, Delay: sim.Microsecond}, srv)
	c := NewClient(ClientConfig{
		Flow: testFlow(1514), Mode: ModeClosed, Outstanding: 1, Requests: 4,
		Timeout: 20 * sim.Microsecond,
		Retry: &RetryConfig{
			MaxRetries: 3, Backoff: 50 * sim.Microsecond, Seed: 1,
			Hedge: 5 * sim.Microsecond,
		},
	}, up)
	srv.reply = NewLink(LinkConfig{Name: "down", RateBps: 100e9, Delay: sim.Microsecond}, c)
	c.Start(s)
	s.RunUntil(sim.Time(10 * sim.Millisecond))

	st := c.Stats()
	if !c.Done() {
		t.Fatalf("client not done: %+v", st)
	}
	// Request 0's original was eaten; its hedge answered. Requests 1-3
	// complete in ~4.5us RTT, under the 5us hedge delay, so no further
	// duplicates go out.
	if st.Hedges != 1 {
		t.Fatalf("hedges=%d, want exactly 1 (the lost request's cover)", st.Hedges)
	}
	if st.Issued != 4 || st.Responses != 4 || st.Retries != 0 || st.Failed != 0 {
		t.Fatalf("issued=%d resp=%d retries=%d failed=%d; want 4/4/0/0",
			st.Issued, st.Responses, st.Retries, st.Failed)
	}
	// The eaten original still hit its timeout after the hedge had
	// already answered; that must not double-account the request.
	if st.Timeouts != 1 || st.Late != 0 {
		t.Fatalf("timeouts=%d late=%d; want 1/0", st.Timeouts, st.Late)
	}
}

// slowFirst delays the first response past the client's timeout and
// echoes the rest promptly — the retransmission-ambiguity scenario
// Karn's rule exists for.
type slowFirst struct {
	reply *Link
	delay sim.Duration
	seen  bool
}

func (e *slowFirst) Receive(s *sim.Simulator, p *pkt.Packet) {
	r := pkt.EchoResponse(p)
	if !e.seen {
		e.seen = true
		s.After(e.delay, func(sm *sim.Simulator) { e.reply.Receive(sm, r) })
		return
	}
	e.reply.Receive(s, r)
}

// TestClientKarnLateResponse: a response that arrives after its
// attempt timed out (the retry already answered) is counted Late and
// released, never recorded as a latency sample — per-attempt wire
// sequence numbers make the match unambiguous.
func TestClientKarnLateResponse(t *testing.T) {
	s := sim.New()
	srv := &slowFirst{delay: 50 * sim.Microsecond}
	up := NewLink(LinkConfig{Name: "up", RateBps: 100e9}, srv)
	c := NewClient(ClientConfig{
		Flow: testFlow(1514), Mode: ModeClosed, Outstanding: 1, Requests: 4,
		Timeout: 10 * sim.Microsecond,
		Retry:   &RetryConfig{MaxRetries: 3, Backoff: 5 * sim.Microsecond, Seed: 1},
	}, up)
	srv.reply = NewLink(LinkConfig{Name: "down", RateBps: 100e9}, c)
	c.Start(s)
	s.RunUntil(sim.Time(10 * sim.Millisecond))

	st := c.Stats()
	if !c.Done() {
		t.Fatalf("client not done: %+v", st)
	}
	// Request 0: original delayed past the timeout, retry answered
	// promptly, the stale response surfaced later as Late.
	if st.Timeouts != 1 || st.Retries != 1 || st.Late != 1 {
		t.Fatalf("timeouts=%d retries=%d late=%d; want 1/1/1", st.Timeouts, st.Retries, st.Late)
	}
	if st.Issued != 4 || st.Responses != 4 || st.Failed != 0 {
		t.Fatalf("issued=%d resp=%d failed=%d; want 4/4/0", st.Issued, st.Responses, st.Failed)
	}
	// Karn's rule: the sample comes from the retry's own send time
	// (~2.5us RTT), never the original's 50us round trip.
	if st.P999 >= 40*sim.Microsecond {
		t.Fatalf("p999 %v polluted by the superseded attempt's round trip", st.P999)
	}
}
