package net

import (
	"testing"

	"idio/internal/pkt"
	"idio/internal/sim"
)

// seqSink records the delivery order and timing of packets reaching a
// cross-domain destination.
type seqSink struct {
	seqs []uint64
	at   []sim.Time
}

func (k *seqSink) Receive(s *sim.Simulator, p *pkt.Packet) {
	k.seqs = append(k.seqs, p.Seq)
	k.at = append(k.at, s.Now())
	p.Release()
}

// releaseSink frees every delivered packet without recording anything,
// so allocation measurements see only the handoff machinery.
type releaseSink struct{}

func (releaseSink) Receive(_ *sim.Simulator, p *pkt.Packet) { p.Release() }

// runEpochs mimics the engine's barrier loop for two simulators: run
// both to each barrier, then flush the outboxes.
func runEpochs(src, dst *sim.Simulator, horizon sim.Time, lookahead sim.Duration, outboxes []*Outbox, scratch *[]XEntry) {
	for now := sim.Time(0); now < horizon; {
		next := now + sim.Time(lookahead)
		if next > horizon {
			next = horizon
		}
		src.RunUntil(next)
		dst.RunUntil(next)
		Flush(outboxes, scratch)
		now = next
	}
}

// TestCrossDomainEquivalence runs the same offered load through an
// in-domain link and a cross-domain one and demands identical link
// stats, delivery order and delivery timing.
func TestCrossDomainEquivalence(t *testing.T) {
	const offered = 50
	lcfg := LinkConfig{Name: "t", RateBps: 10e9, Delay: 2 * sim.Microsecond, QueueDepth: 16}
	flow := testFlow(1514)

	// Reference: one simulator, plain link.
	refSim := sim.New()
	refSink := &seqSink{}
	ref := NewLink(lcfg, refSink)
	offer(t, refSim, ref, flow, offered)
	refSim.RunUntil(sim.Time(sim.Millisecond))

	// Cross-domain: source and destination on separate simulators,
	// handoffs through an outbox flushed at 2 µs barriers.
	srcSim, dstSim := sim.New(), sim.New()
	xSink := &seqSink{}
	x := NewLink(lcfg, xSink)
	x.BindCrossDomain(NewOutbox(0), dstSim, pkt.NewPool(0))
	if !x.CrossDomain() {
		t.Fatal("CrossDomain false after binding")
	}
	offer(t, srcSim, x, flow, offered)
	var scratch []XEntry
	runEpochs(srcSim, dstSim, sim.Time(sim.Millisecond), lcfg.Delay, []*Outbox{x.xOut}, &scratch)

	if rs, xs := ref.Stats(), x.Stats(); rs != xs {
		t.Fatalf("link stats diverge:\n  in-domain  %+v\n  cross-dom  %+v", rs, xs)
	}
	if len(refSink.seqs) != len(xSink.seqs) {
		t.Fatalf("delivered %d cross-domain, want %d", len(xSink.seqs), len(refSink.seqs))
	}
	for i := range refSink.seqs {
		if refSink.seqs[i] != xSink.seqs[i] || refSink.at[i] != xSink.at[i] {
			t.Fatalf("delivery %d: got seq=%d at %v, want seq=%d at %v",
				i, xSink.seqs[i], xSink.at[i], refSink.seqs[i], refSink.at[i])
		}
	}
	if x.InFlight() != 0 {
		t.Errorf("cross-domain link reports %d in flight after drain", x.InFlight())
	}
	if x.xOut.Pending() != 0 {
		t.Errorf("outbox holds %d entries after drain", x.xOut.Pending())
	}
}

// TestFlushMergeOrder checks the canonical merge key: same-instant
// deliveries from different domains are injected in (SendAt, Src, Idx)
// order, reproducing the shared simulator's FIFO.
func TestFlushMergeOrder(t *testing.T) {
	dstSim := sim.New()
	pool := pkt.NewPool(0)
	sink := &seqSink{}
	mk := func(domain int) (*Link, *Outbox) {
		l := NewLink(LinkConfig{Name: "x", RateBps: 100e9, Delay: sim.Microsecond}, sink)
		out := NewOutbox(domain)
		l.BindCrossDomain(out, dstSim, pool)
		return l, out
	}
	l1, o1 := mk(1)
	l2, o2 := mk(2)

	at := sim.Time(10 * sim.Microsecond)
	p := func(seq uint64) *pkt.Packet {
		pk := pool.Get(64)
		pk.Seq = seq
		return pk
	}
	// Same DeliverAt everywhere. Entries added out of global order:
	// domain 2 first, and within domain 1 a later SendAt before an
	// earlier one from domain 2.
	o2.add(at, 5, l2, p(20)) // key (10µs, 5, 2, 0)
	o1.add(at, 7, l1, p(11)) // key (10µs, 7, 1, 0)
	o1.add(at, 5, l1, p(10)) // key (10µs, 5, 1, 1)
	o2.add(at, 7, l2, p(21)) // key (10µs, 7, 2, 1)

	var scratch []XEntry
	Flush([]*Outbox{o1, o2}, &scratch)
	dstSim.RunUntil(at + 1)

	want := []uint64{10, 20, 11, 21} // SendAt asc, then Src asc, then Idx asc
	if len(sink.seqs) != len(want) {
		t.Fatalf("delivered %d packets, want %d", len(sink.seqs), len(want))
	}
	for i, w := range want {
		if sink.seqs[i] != w {
			t.Fatalf("merge order %v, want %v", sink.seqs, want)
		}
	}
}

// TestOutboxRecycling checks the steady state allocates nothing: frame
// buffers return to the free list at flush, and the scratch slice is
// reused across barriers.
func TestOutboxRecycling(t *testing.T) {
	dstSim := sim.New()
	pool := pkt.NewPool(0)
	l := NewLink(LinkConfig{Name: "x", RateBps: 100e9, Delay: sim.Microsecond}, releaseSink{})
	out := NewOutbox(0)
	l.BindCrossDomain(out, dstSim, pool)

	var scratch []XEntry
	// Warm up one barrier to size the free list and scratch.
	p := pool.Get(256)
	out.add(1, 0, l, p)
	p.Release()
	Flush([]*Outbox{out}, &scratch)
	dstSim.RunUntil(2)

	allocs := testing.AllocsPerRun(100, func() {
		q := pool.Get(256)
		out.add(dstSim.Now()+1, dstSim.Now(), l, q)
		q.Release()
		Flush([]*Outbox{out}, &scratch)
		dstSim.RunUntil(dstSim.Now() + 2)
	})
	if allocs > 0 {
		t.Errorf("steady-state cross-domain handoff allocates %.1f/op, want 0", allocs)
	}
}
