package net

import (
	"testing"

	"idio/internal/pkt"
	"idio/internal/qos"
	"idio/internal/sim"
	"idio/internal/traffic"
)

func dscpFlow(dscp uint8, srcHost byte) traffic.Flow {
	return traffic.Flow{
		Src: pkt.IPv4{10, 0, 2, srcHost}, Dst: pkt.IPv4{10, 0, 0, 1},
		SrcPort: 7000, DstPort: 9000, FrameLen: 1514, DSCP: dscp,
	}
}

func armedLink(t *testing.T, dst Endpoint, cfg LinkConfig) *Link {
	t.Helper()
	qcfg := qos.DefaultConfig()
	m, err := qcfg.BuildMap()
	if err != nil {
		t.Fatalf("BuildMap: %v", err)
	}
	l := NewLink(cfg, dst)
	l.ArmQoS(qcfg, m)
	return l
}

// TestScheduledLinkPriorityOverScavenger: EF and CS1 packets offered
// together at time zero; the scheduler must serialize every EF frame
// before any CS1 frame (after the one CS1 frame that can grab the
// idle serializer first is accounted for), and per-class counters must
// cover the offered load.
func TestScheduledLinkPriorityOverScavenger(t *testing.T) {
	s := sim.New()
	dst := &sink{}
	l := armedLink(t, dst, LinkConfig{Name: "t", RateBps: 10e9, Delay: sim.Microsecond, QueueDepth: 64})
	const each = 20
	s.At(0, func(sm *sim.Simulator) {
		// CS1 first in arrival order: it wins the idle serializer for
		// exactly one frame; everything after must be EF until EF drains.
		for i := 0; i < each; i++ {
			pc, err := dscpFlow(8, 1).Packet(uint64(i))
			if err != nil {
				t.Fatalf("packet: %v", err)
			}
			l.Receive(sm, pc)
			pe, err := dscpFlow(46, 2).Packet(uint64(1000 + i))
			if err != nil {
				t.Fatalf("packet: %v", err)
			}
			l.Receive(sm, pe)
		}
	})
	s.RunUntil(sim.Time(10 * sim.Millisecond))

	cs := l.ClassStats()
	if cs[qos.ClassEF].TxPackets != each || cs[qos.ClassCS1].TxPackets != each {
		t.Fatalf("per-class tx: ef=%d cs1=%d, want %d each",
			cs[qos.ClassEF].TxPackets, cs[qos.ClassCS1].TxPackets, each)
	}
	st := l.Stats()
	if st.TxPackets != 2*each || st.Delivered != 2*each {
		t.Fatalf("aggregate tx=%d delivered=%d, want %d", st.TxPackets, st.Delivered, 2*each)
	}
	if dst.n != 2*each {
		t.Fatalf("sink saw %d, want %d", dst.n, 2*each)
	}
}

// TestScheduledLinkPerClassTailDrop: a scavenger flood fills only the
// CS1 queue; EF frames arriving afterwards are still admitted, and the
// conservation invariant holds per class and in aggregate.
func TestScheduledLinkPerClassTailDrop(t *testing.T) {
	s := sim.New()
	dst := &sink{}
	l := armedLink(t, dst, LinkConfig{Name: "t", RateBps: 10e9, Delay: sim.Microsecond, QueueDepth: 8})
	const flood = 40
	const efN = 4
	s.At(0, func(sm *sim.Simulator) {
		for i := 0; i < flood; i++ {
			p, err := dscpFlow(8, 1).Packet(uint64(i))
			if err != nil {
				t.Fatalf("packet: %v", err)
			}
			l.Receive(sm, p)
		}
		for i := 0; i < efN; i++ {
			p, err := dscpFlow(46, 2).Packet(uint64(1000 + i))
			if err != nil {
				t.Fatalf("packet: %v", err)
			}
			l.Receive(sm, p)
		}
	})
	s.RunUntil(sim.Time(10 * sim.Millisecond))

	cs := l.ClassStats()
	if cs[qos.ClassCS1].TailDrops == 0 {
		t.Fatalf("expected CS1 tail drops with an 8-deep class queue and %d offered", flood)
	}
	if cs[qos.ClassEF].TailDrops != 0 || cs[qos.ClassEF].TxPackets != efN {
		t.Fatalf("EF should be untouched by the CS1 flood: tx=%d drops=%d",
			cs[qos.ClassEF].TxPackets, cs[qos.ClassEF].TailDrops)
	}
	st := l.Stats()
	if got := st.TxPackets + st.TailDrops + st.DownDrops + st.AQMDrops; got != flood+efN {
		t.Fatalf("conservation: %d, want %d", got, flood+efN)
	}
	if st.Delivered != st.TxPackets {
		t.Fatalf("drained link delivered %d of %d accepted", st.Delivered, st.TxPackets)
	}
	if l.InFlight() != 0 {
		t.Fatalf("drained link reports %d in flight", l.InFlight())
	}
}

// TestScheduledLinkWeightedShare: saturate an armed link with AF41 and
// AF21 together; the serialized byte split must approach the 3:1
// configured weights while both stay backlogged.
func TestScheduledLinkWeightedShare(t *testing.T) {
	s := sim.New()
	dst := &sink{}
	l := armedLink(t, dst, LinkConfig{Name: "t", RateBps: 10e9, Delay: sim.Microsecond, QueueDepth: 256})
	const each = 200
	s.At(0, func(sm *sim.Simulator) {
		for i := 0; i < each; i++ {
			p41, err := dscpFlow(34, 1).Packet(uint64(i))
			if err != nil {
				t.Fatalf("packet: %v", err)
			}
			l.Receive(sm, p41)
			p21, err := dscpFlow(18, 2).Packet(uint64(1000 + i))
			if err != nil {
				t.Fatalf("packet: %v", err)
			}
			l.Receive(sm, p21)
		}
	})
	// Run only long enough to serialize ~half the backlog, then check
	// the in-progress split: at 10 Gbps a 1514 B frame takes ~1.21 µs,
	// so 200 frames take ~242 µs.
	s.RunUntil(sim.Time(121 * sim.Microsecond))
	cs := l.ClassStats()
	tx41, tx21 := cs[qos.ClassAF41].TxBytes, cs[qos.ClassAF21].TxBytes
	if tx21 == 0 {
		t.Fatalf("AF21 starved: af41=%dB af21=0B", tx41)
	}
	ratio := float64(tx41) / float64(tx21)
	if ratio < 2.0 || ratio > 4.5 {
		t.Fatalf("AF41:AF21 byte ratio %.2f outside [2,4.5] (af41=%d af21=%d)", ratio, tx41, tx21)
	}
	// Drain and re-check conservation.
	s.RunUntil(sim.Time(10 * sim.Millisecond))
	st := l.Stats()
	if st.TxPackets+st.TailDrops != 2*each || st.Delivered != st.TxPackets {
		t.Fatalf("conservation after drain: tx=%d tail=%d delivered=%d", st.TxPackets, st.TailDrops, st.Delivered)
	}
}
