package net

import (
	"testing"

	"idio/internal/pkt"
	"idio/internal/sim"
)

// churnHarness wires a churn client to a loopback echo through a pair
// of fast links and runs it until the horizon.
func churnHarness(t *testing.T, cfg ChurnConfig, echo func(reply *Link) Endpoint) *ChurnClient {
	t.Helper()
	s := sim.New()
	var srv endpointHolder
	up := NewLink(LinkConfig{Name: "up", RateBps: 100e9, Delay: sim.Microsecond}, &srv)
	cfg.Flow = testFlow(1514)
	c := NewChurnClient(s, cfg, up)
	down := NewLink(LinkConfig{Name: "down", RateBps: 100e9, Delay: sim.Microsecond}, c)
	srv.ep = echo(down)
	c.Start(s)
	s.RunUntil(sim.Time(200 * sim.Millisecond))
	return c
}

// endpointHolder lets the echo be built after the uplink (which needs
// an endpoint at construction).
type endpointHolder struct{ ep Endpoint }

func (h *endpointHolder) Receive(s *sim.Simulator, p *pkt.Packet) { h.ep.Receive(s, p) }

// TestChurnLoopback drains a lossless churn run and checks the
// conservation laws: the full budget issues and is answered, every
// arrived flow eventually departs, the wheel accounts for every
// deadline it armed, and the whole run replays bit-identically.
func TestChurnLoopback(t *testing.T) {
	run := func() (ChurnStats, sim.Time) {
		c := churnHarness(t, ChurnConfig{
			Flows: 64, Requests: 512, Think: 50 * sim.Microsecond, Seed: 5,
		}, func(reply *Link) Endpoint {
			return &echoEndpoint{reply: reply}
		})
		if !c.Done() {
			t.Fatalf("churn not drained: issued=%d resp=%d active=%d",
				c.Issued(), c.Responses(), c.Table().Len())
		}
		return c.Stats(), c.LastResp()
	}
	st, last := run()
	if st.Issued != 512 || st.Responses != 512 || st.Timeouts != 0 || st.Late != 0 {
		t.Fatalf("issued=%d resp=%d timeouts=%d late=%d; want 512/512/0/0",
			st.Issued, st.Responses, st.Timeouts, st.Late)
	}
	if st.Arrivals != st.Departures {
		t.Fatalf("drained run must balance arrivals (%d) and departures (%d)",
			st.Arrivals, st.Departures)
	}
	if st.Arrivals < 64 {
		t.Fatalf("arrivals %d never replaced the initial population", st.Arrivals)
	}
	if st.ActiveFlows != 0 {
		t.Fatalf("drained run left %d resident flows", st.ActiveFlows)
	}
	if st.Wheel.Fired+st.Wheel.Canceled != st.Wheel.Armed {
		t.Fatalf("wheel leaked deadlines: %+v", st.Wheel)
	}
	st2, last2 := run()
	if st != st2 || last != last2 {
		t.Fatalf("same seed diverged:\n%+v @ %v\n%+v @ %v", st, last, st2, last2)
	}
}

// dropNthEcho answers requests through reply but silently drops every
// nth one — the lossy server that forces the timeout/resend path.
type dropNthEcho struct {
	reply *Link
	n     uint64
	seen  uint64
}

func (e *dropNthEcho) Receive(s *sim.Simulator, p *pkt.Packet) {
	e.seen++
	if e.seen%e.n == 0 {
		p.Release()
		return
	}
	e.reply.Receive(s, pkt.EchoResponse(p))
}

// TestChurnTimeoutResend drops every 8th request and checks that each
// loss times out on the wheel, is resent under a fresh attempt number,
// and the run still drains with the budget fully issued.
func TestChurnTimeoutResend(t *testing.T) {
	c := churnHarness(t, ChurnConfig{
		Flows: 32, Requests: 512,
		Think: 50 * sim.Microsecond, Timeout: 200 * sim.Microsecond, Seed: 9,
	}, func(reply *Link) Endpoint {
		return &dropNthEcho{reply: reply, n: 8}
	})
	if !c.Done() {
		t.Fatalf("lossy churn not drained: issued=%d resp=%d active=%d",
			c.Issued(), c.Responses(), c.Table().Len())
	}
	st := c.Stats()
	if st.Issued != 512 {
		t.Fatalf("issued %d of 512 budget", st.Issued)
	}
	wantDropped := st.Issued / 8
	if st.Timeouts != wantDropped {
		t.Fatalf("timeouts %d, want one per dropped request (%d)", st.Timeouts, wantDropped)
	}
	if st.Responses != st.Issued-st.Timeouts {
		t.Fatalf("resp %d + timeouts %d != issued %d", st.Responses, st.Timeouts, st.Issued)
	}
	if st.Late != 0 {
		t.Fatalf("drops cannot produce late responses, got %d", st.Late)
	}
}

// lateEcho answers every request after the client's timeout has
// already fired — every response is superseded by a resend in flight.
type lateEcho struct {
	reply *Link
	delay sim.Duration
}

func (e *lateEcho) Receive(s *sim.Simulator, p *pkt.Packet) {
	r := pkt.EchoResponse(p)
	s.After(e.delay, func(sm *sim.Simulator) {
		e.reply.Receive(sm, r)
	})
}

// TestChurnLateResponse delays every echo past the timeout: each
// response arrives bearing a superseded attempt number and must count
// as late, never be mistaken for the resend that replaced it.
func TestChurnLateResponse(t *testing.T) {
	c := churnHarness(t, ChurnConfig{
		Flows: 8, Requests: 64,
		Think: 50 * sim.Microsecond, Timeout: 100 * sim.Microsecond, Seed: 3,
	}, func(reply *Link) Endpoint {
		return &lateEcho{reply: reply, delay: 500 * sim.Microsecond}
	})
	st := c.Stats()
	if st.Issued != 64 {
		t.Fatalf("issued %d of 64 budget", st.Issued)
	}
	if st.Late == 0 {
		t.Fatal("uniformly late echoes produced no late responses")
	}
	if st.Timeouts == 0 {
		t.Fatal("uniformly late echoes produced no timeouts")
	}
}
