// Scheduled egress mode: when a link is armed with a QoS policy
// (ArmQoS), its single FIFO egress queue is replaced by per-class
// queues drained through a strict-priority + weighted-round-robin
// scheduler (internal/qos). Tail-drop bounds each class's own queue,
// and the CoDel controller — which cannot run at enqueue time any more
// because a scheduled packet's wait is unknown until it is picked —
// moves to dequeue time, operating per class on the actual sojourn.
//
// Accounting in scheduled mode: TxPackets/TxBytes/BusyTime count at
// dequeue-commit (when a packet is accepted into the serializer), so
// the conservation invariant "offered = TxPackets + TailDrops +
// DownDrops + AQMDrops" still holds after a drain. The delivery path
// beyond the serializer — propagation, cross-domain mailboxes, trace
// spans — is byte-for-byte the legacy one.

package net

import (
	"math"

	"idio/internal/obs"
	"idio/internal/pkt"
	"idio/internal/qos"
	"idio/internal/sim"
)

// ClassStats is one scheduled link's per-class counter set.
type ClassStats struct {
	TxPackets uint64
	TxBytes   uint64
	TailDrops uint64
	AQMDrops  uint64
}

// schedEntry is one queued packet with its arrival instant (the CoDel
// sojourn reference).
type schedEntry struct {
	p       *pkt.Packet
	arrival sim.Time
}

// classQueue is one class's fixed-capacity egress ring plus its
// private CoDel controller state and counters.
type classQueue struct {
	ring  []schedEntry
	head  int
	count int

	aqmFirstAbove sim.Time
	aqmDropNext   sim.Time
	aqmCount      int
	aqmDropping   bool

	stats ClassStats
}

// linkSched is the scheduled-mode state hung off a Link by ArmQoS.
type linkSched struct {
	qmap        *qos.Map
	sched       *qos.Sched
	classes     [qos.NumClasses]classQueue
	backlog     [qos.NumClasses]int
	serializing bool
}

// ArmQoS replaces the link's FIFO egress with per-class queues under
// the policy's scheduler. Class queue depths default to the link's
// own QueueDepth. Arming is idempotent and must happen before traffic
// flows; an unarmed link is byte-identical to pre-QoS builds.
func (l *Link) ArmQoS(cfg *qos.Config, m *qos.Map) {
	if l.qs != nil {
		return
	}
	qs := &linkSched{qmap: m, sched: qos.NewSched(cfg)}
	for c := range qs.classes {
		depth := cfg.Classes[c].QueueDepth
		if depth <= 0 {
			depth = l.cfg.QueueDepth
		}
		qs.classes[c].ring = make([]schedEntry, depth)
	}
	l.qs = qs
}

// QoSArmed reports whether the link runs the scheduled egress mode.
func (l *Link) QoSArmed() bool { return l.qs != nil }

// ClassStats returns the per-class counters (zero unless armed).
func (l *Link) ClassStats() [qos.NumClasses]ClassStats {
	var out [qos.NumClasses]ClassStats
	if l.qs == nil {
		return out
	}
	for c := range out {
		out[c] = l.qs.classes[c].stats
	}
	return out
}

// frameClass maps a frame's DSCP to its service class. Frames too
// short to carry a TOS byte get the map's default class.
func (l *Link) frameClass(p *pkt.Packet) qos.Class {
	const tosOff = pkt.EthHeaderLen + 1
	if len(p.Frame) <= tosOff {
		return l.qs.qmap.Class(0)
	}
	return l.qs.qmap.Class(p.Frame[tosOff] >> 2)
}

// receiveScheduled is Receive for an armed link: classify, tail-drop
// against the class queue, enqueue, and kick the serializer if idle.
func (l *Link) receiveScheduled(s *sim.Simulator, p *pkt.Packet) {
	if l.down {
		l.stats.DownDrops++
		l.traceDrop(s, p, "link-down")
		p.Release()
		return
	}
	class := int(l.frameClass(p))
	cq := &l.qs.classes[class]
	if cq.count >= len(cq.ring) {
		l.stats.TailDrops++
		cq.stats.TailDrops++
		l.traceDrop(s, p, "tail-drop")
		p.Release()
		return
	}
	cq.ring[(cq.head+cq.count)%len(cq.ring)] = schedEntry{p: p, arrival: s.Now()}
	cq.count++
	l.qs.backlog[class]++
	l.qlen++
	if l.qlen > l.stats.QueueHighWater {
		l.stats.QueueHighWater = l.qlen
	}
	l.inflight++
	if !l.qs.serializing {
		l.schedNext(s)
	}
}

// schedNext commits the scheduler's next pick to the serializer (or
// parks it when every queue is empty). Dequeue-time CoDel sheds
// over-sojourned packets here, before they consume line time.
func (l *Link) schedNext(s *sim.Simulator) {
	now := s.Now()
	for {
		class := l.qs.sched.Pick(&l.qs.backlog)
		if class < 0 {
			l.qs.serializing = false
			return
		}
		cq := &l.qs.classes[class]
		e := cq.ring[cq.head]
		cq.ring[cq.head] = schedEntry{}
		cq.head = (cq.head + 1) % len(cq.ring)
		cq.count--
		l.qs.backlog[class]--
		if l.cfg.AQMTarget > 0 && cq.aqmDrop(&l.cfg, now, now.Sub(e.arrival)) {
			l.stats.AQMDrops++
			cq.stats.AQMDrops++
			l.qlen--
			l.inflight--
			l.traceDrop(s, e.p, "aqm")
			e.p.Release()
			continue
		}
		l.qs.sched.Charge(class, e.p.Len())
		cq.stats.TxPackets++
		cq.stats.TxBytes += uint64(e.p.Len())
		l.stats.TxPackets++
		l.stats.TxBytes += uint64(e.p.Len())
		tx := l.txTime(e.p.Len())
		end := now.Add(tx)
		l.busyUntil = end
		l.stats.BusyTime += tx
		l.qs.serializing = true
		s.AtArgNamed(end, "link-qtx", linkQTxEv, sim.Arg{Obj: l, Obj2: e.p, U0: uint64(e.arrival)})
		return
	}
}

// linkQTxEv finishes one scheduled packet's serialization: Arg.Obj is
// the *Link, Obj2 the *pkt.Packet, U0 the link-arrival time. Delivery
// is exactly the legacy path (propagation event or cross-domain
// mailbox), then the serializer picks again.
func linkQTxEv(sm *sim.Simulator, a sim.Arg) {
	l := a.Obj.(*Link)
	p := a.Obj2.(*pkt.Packet)
	l.qlen--
	now := sm.Now()
	deliverAt := now.Add(l.cfg.Delay)
	if l.xOut != nil {
		l.xOut.add(deliverAt, now, l, p)
		sm.AtArgNamed(deliverAt, "link-xdone", linkXDoneEv,
			sim.Arg{Obj: l, U0: uint64(p.Len())})
		p.Release()
	} else {
		sm.AtArgNamed(deliverAt, "link-deliver", linkDeliverEv,
			sim.Arg{Obj: l, Obj2: p, U0: a.U0})
	}
	l.qs.serializing = false
	l.schedNext(sm)
}

// aqmDrop is the per-class dequeue-time CoDel control law — the same
// state machine as Link.aqmDrop, but fed actual sojourn times and
// keeping independent state per class so one bufferbloated class
// cannot arm drops against another.
func (cq *classQueue) aqmDrop(cfg *LinkConfig, now sim.Time, sojourn sim.Duration) bool {
	if sojourn < cfg.AQMTarget {
		cq.aqmFirstAbove = 0
		cq.aqmDropping = false
		return false
	}
	if cq.aqmFirstAbove == 0 {
		cq.aqmFirstAbove = now.Add(cfg.AQMInterval)
		return false
	}
	if now < cq.aqmFirstAbove {
		return false
	}
	if !cq.aqmDropping {
		cq.aqmDropping = true
		if cq.aqmCount > 2 && now.Sub(cq.aqmDropNext) < 8*cfg.AQMInterval {
			cq.aqmCount -= 2
		} else {
			cq.aqmCount = 1
		}
		cq.aqmDropNext = now.Add(cq.controlLaw(cfg))
		return true
	}
	if now >= cq.aqmDropNext {
		cq.aqmCount++
		cq.aqmDropNext = cq.aqmDropNext.Add(cq.controlLaw(cfg))
		return true
	}
	return false
}

func (cq *classQueue) controlLaw(cfg *LinkConfig) sim.Duration {
	return sim.Duration(float64(cfg.AQMInterval) / math.Sqrt(float64(cq.aqmCount)))
}

// registerClassMetrics adds the armed link's per-class counters to the
// registry (called from RegisterMetrics when armed).
func (l *Link) registerClassMetrics(reg *obs.Registry, prefix string) {
	for c := 0; c < qos.NumClasses; c++ {
		c := c
		cp := prefix + qos.Class(c).String() + "."
		reg.CounterFunc(cp+"tx_packets", func() uint64 { return l.qs.classes[c].stats.TxPackets })
		reg.CounterFunc(cp+"tail_drops", func() uint64 { return l.qs.classes[c].stats.TailDrops })
		if l.cfg.AQMTarget > 0 {
			reg.CounterFunc(cp+"aqm_drops", func() uint64 { return l.qs.classes[c].stats.AQMDrops })
		}
	}
}

// ArmQoS arms the scheduled egress mode on every attached output port
// and remembers the policy so ports attached later (AddPort) are armed
// too — the switch's egress is where inter-class contention happens.
func (sw *Switch) ArmQoS(cfg *qos.Config, m *qos.Map) {
	sw.qosCfg, sw.qosMap = cfg, m
	for _, port := range sw.ports {
		port.ArmQoS(cfg, m)
	}
}
