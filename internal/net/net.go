// Package net is the discrete-event network fabric that connects
// multiple simulated hosts on one sim.Simulator: point-to-point links
// with configurable bandwidth, propagation delay and finite egress
// queues (tail-drop), an output-queued switch, and closed-loop RPC
// clients. It turns the repo's single-server model into a topology —
// N client hosts reaching one DUT server through a switch — so
// experiments can measure end-to-end RPC latency and goodput rather
// than only server-side service time.
//
// Everything in the fabric delivers packets through the shared
// simulator's event queue, whose same-instant FIFO ordering is
// reproducible: two runs of the same topology are bit-identical.
//
// Layering: this package depends only on pkt/sim/obs/stats/traffic.
// Multi-host assembly (a DUT System plus clients) lives in the root
// idio package (Cluster); fault injection attaches from internal/fault.
package net

import (
	"fmt"
	"math"

	"idio/internal/obs"
	"idio/internal/pkt"
	"idio/internal/sim"
)

// Endpoint consumes packets delivered by the fabric. *nic.NIC,
// *Switch, *Client and *Link all satisfy it (the method is identical
// to traffic.Receiver, so generators can target fabric ingress points
// directly).
type Endpoint interface {
	Receive(s *sim.Simulator, p *pkt.Packet)
}

// LinkConfig describes one point-to-point link.
type LinkConfig struct {
	// Name labels the link in metrics and traces (e.g. "c0.up").
	Name string
	// RateBps is the serialization bandwidth in bits per second.
	RateBps int64
	// Delay is the propagation delay added after serialization.
	Delay sim.Duration
	// QueueDepth bounds the egress queue in packets; arrivals beyond
	// it are tail-dropped. 0 means DefaultQueueDepth.
	QueueDepth int
	// AQMTarget, when > 0, enables a CoDel-style active queue manager
	// next to tail-drop: once the queueing delay a packet would see has
	// stayed above AQMTarget for a full AQMInterval, arrivals are
	// dropped at an increasing rate (interval/sqrt(count)) until the
	// delay falls back under target — shedding load early instead of
	// building standing latency. 0 keeps pure tail-drop.
	AQMTarget sim.Duration
	// AQMInterval is the CoDel observation interval; 0 means
	// DefaultAQMInterval.
	AQMInterval sim.Duration
}

// DefaultQueueDepth is the egress queue bound used when a LinkConfig
// leaves QueueDepth zero.
const DefaultQueueDepth = 256

// DefaultAQMInterval is the CoDel observation interval used when a
// LinkConfig enables AQM but leaves AQMInterval zero (the classic
// 100ms RTT-scale default is far too long for a rack fabric).
const DefaultAQMInterval = 100 * sim.Microsecond

// LinkStats counts one link's traffic. Conservation invariant after
// the fabric drains: TxPackets = Delivered, and every offered packet
// is exactly one of {TxPackets, TailDrops, DownDrops, AQMDrops}.
type LinkStats struct {
	// TxPackets/TxBytes count packets accepted into the egress queue
	// (and therefore eventually serialized).
	TxPackets uint64
	TxBytes   uint64
	// Delivered/DeliveredBytes count packets handed to the far end.
	Delivered      uint64
	DeliveredBytes uint64
	// TailDrops counts arrivals rejected by the full egress queue.
	TailDrops uint64
	// DownDrops counts arrivals lost while the link was down (flaps).
	DownDrops uint64
	// AQMDrops counts arrivals shed by the CoDel controller (0 with
	// AQM disabled).
	AQMDrops uint64
	// QueueHighWater is the deepest the egress queue ever got.
	QueueHighWater int
	// BusyTime accumulates serialization time (utilization = BusyTime
	// divided by elapsed time).
	BusyTime sim.Duration
}

// Link is a point-to-point, store-and-forward link: packets serialize
// at RateBps in FIFO order out of a finite egress queue, then arrive
// at the destination Endpoint after the propagation delay.
type Link struct {
	cfg LinkConfig
	dst Endpoint

	// rateBps is the effective rate: cfg.RateBps scaled by an injected
	// degradation factor (SetRateFactor).
	rateBps int64
	factor  float64
	down    bool

	// busyUntil is when the serializer finishes its current queue.
	busyUntil sim.Time
	// qlen is the instantaneous egress-queue depth (packets queued or
	// serializing); inflight additionally counts packets propagating.
	qlen     int
	inflight int

	// CoDel controller state (AQMTarget > 0): firstAbove is when the
	// delay excursion will have persisted a full interval, dropNext the
	// next scheduled drop while in dropping state, count the drops in
	// the current dropping episode.
	aqmFirstAbove sim.Time
	aqmDropNext   sim.Time
	aqmCount      int
	aqmDropping   bool

	stats LinkStats
	obs   *obs.Observer

	// pktPool, when set, is the packet pool generators and clients
	// feeding this link draw from (recycling through the fabric).
	pktPool *pkt.Pool

	// Cross-domain binding (BindCrossDomain): when xOut is non-nil the
	// link is an event-domain edge — accepted packets are copied into
	// the source domain's outbox instead of being scheduled into the
	// destination's (foreign) simulator.
	xOut     *Outbox
	xDstSim  *sim.Simulator
	xDstPool *pkt.Pool

	// qs, when non-nil, switches the egress to scheduled mode: per-class
	// queues under a strict-priority + WRR scheduler (see qsched.go).
	// Nil keeps the exact single-FIFO path below.
	qs *linkSched
}

// SetPacketPool installs the packet pool that traffic sources feeding
// this link should draw from (traffic.PacketPooler).
func (l *Link) SetPacketPool(p *pkt.Pool) { l.pktPool = p }

// PacketPool returns the link's packet pool (nil when unset). It
// implements traffic.PacketPooler so generators targeting the link
// discover the pool automatically.
func (l *Link) PacketPool() *pkt.Pool { return l.pktPool }

// NewLink builds a link feeding dst. The destination may be any
// Endpoint: a switch, a NIC, a client, or another link.
func NewLink(cfg LinkConfig, dst Endpoint) *Link {
	if cfg.RateBps <= 0 {
		panic(fmt.Sprintf("net: link %q rate must be positive", cfg.Name))
	}
	if dst == nil {
		panic(fmt.Sprintf("net: link %q needs a destination", cfg.Name))
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = DefaultQueueDepth
	}
	if cfg.AQMTarget < 0 || cfg.AQMInterval < 0 {
		panic(fmt.Sprintf("net: link %q AQM target/interval must be >= 0", cfg.Name))
	}
	if cfg.AQMTarget > 0 && cfg.AQMInterval == 0 {
		cfg.AQMInterval = DefaultAQMInterval
	}
	return &Link{cfg: cfg, dst: dst, rateBps: cfg.RateBps, factor: 1}
}

// Name returns the link's label.
func (l *Link) Name() string { return l.cfg.Name }

// Stats returns a copy of the counters.
func (l *Link) Stats() LinkStats { return l.stats }

// InFlight reports packets accepted but not yet delivered (queued,
// serializing, or propagating) — the fabric's idle check.
func (l *Link) InFlight() int { return l.inflight }

// SetObserver attaches the observability layer; sampled packets emit
// an EvLink span covering queueing + serialization + propagation.
func (l *Link) SetObserver(o *obs.Observer) { l.obs = o }

// SetDown raises or drops the link. While down, offered packets are
// lost (DownDrops); packets already serializing or propagating still
// arrive, matching a MAC-level flap.
func (l *Link) SetDown(down bool) { l.down = down }

// Down reports whether the link is currently down.
func (l *Link) Down() bool { return l.down }

// SetRateFactor scales the link's bandwidth by f in (0,1] — the
// transient rate-degradation fault (auto-negotiation fallback,
// interference). Factor 1 restores the configured rate. Packets
// already accepted keep their computed serialization times.
func (l *Link) SetRateFactor(f float64) {
	if f <= 0 || f > 1 {
		panic(fmt.Sprintf("net: link %q rate factor %v outside (0,1]", l.cfg.Name, f))
	}
	l.factor = f
	l.rateBps = int64(f * float64(l.cfg.RateBps))
	if l.rateBps < 1 {
		l.rateBps = 1
	}
}

// RateFactor returns the current degradation factor (1 = full rate).
func (l *Link) RateFactor() float64 { return l.factor }

// txTime returns the serialization time of n bytes at the effective
// rate.
func (l *Link) txTime(n int) sim.Duration {
	return sim.Duration(int64(n) * 8 * int64(sim.Second) / l.rateBps)
}

// Receive offers one packet to the link at the current simulation
// time (implements Endpoint, and traffic.Receiver for generators).
// The packet is tail-dropped if the egress queue is full, lost if the
// link is down, and otherwise delivered to the destination after
// queueing + serialization + propagation.
func (l *Link) Receive(s *sim.Simulator, p *pkt.Packet) {
	if l.qs != nil {
		l.receiveScheduled(s, p)
		return
	}
	now := s.Now()
	if l.down {
		l.stats.DownDrops++
		l.traceDrop(s, p, "link-down")
		p.Release()
		return
	}
	if l.qlen >= l.cfg.QueueDepth {
		l.stats.TailDrops++
		l.traceDrop(s, p, "tail-drop")
		p.Release()
		return
	}
	start := now
	if l.busyUntil > start {
		start = l.busyUntil
	}
	// The queueing delay this packet would see is known at enqueue
	// time (FIFO serializer), so CoDel runs on it directly instead of
	// waiting for dequeue.
	if l.cfg.AQMTarget > 0 && l.aqmDrop(now, start.Sub(now)) {
		l.stats.AQMDrops++
		l.traceDrop(s, p, "aqm")
		p.Release()
		return
	}
	l.qlen++
	if l.qlen > l.stats.QueueHighWater {
		l.stats.QueueHighWater = l.qlen
	}
	l.inflight++
	l.stats.TxPackets++
	l.stats.TxBytes += uint64(p.Len())

	tx := l.txTime(p.Len())
	end := start.Add(tx)
	l.busyUntil = end
	l.stats.BusyTime += tx

	deliverAt := end.Add(l.cfg.Delay)
	s.AtArgNamed(end, "link-tx", linkTxEv, sim.Arg{Obj: l})
	if l.xOut != nil {
		// Event-domain edge: park the frame in the mailbox for the next
		// barrier flush and keep the delivery-side accounting local via
		// linkXDoneEv at the instant the far side receives it.
		l.xOut.add(deliverAt, now, l, p)
		s.AtArgNamed(deliverAt, "link-xdone", linkXDoneEv,
			sim.Arg{Obj: l, U0: uint64(p.Len())})
		p.Release()
		return
	}
	s.AtArgNamed(deliverAt, "link-deliver", linkDeliverEv,
		sim.Arg{Obj: l, Obj2: p, U0: uint64(now)})
}

// aqmDrop runs the CoDel control law on one arrival: sojourn is the
// queueing delay the packet would experience. It returns true when the
// packet should be shed. Below target the controller resets; above it,
// the first full AQMInterval of sustained excursion arms dropping,
// after which drops come every interval/sqrt(count) — with count
// carried over (minus 2) when a new episode starts soon after the
// last, so repeated overload ramps the drop rate quickly.
func (l *Link) aqmDrop(now sim.Time, sojourn sim.Duration) bool {
	if sojourn < l.cfg.AQMTarget {
		l.aqmFirstAbove = 0
		l.aqmDropping = false
		return false
	}
	if l.aqmFirstAbove == 0 {
		l.aqmFirstAbove = now.Add(l.cfg.AQMInterval)
		return false
	}
	if now < l.aqmFirstAbove {
		return false
	}
	if !l.aqmDropping {
		l.aqmDropping = true
		if l.aqmCount > 2 && now.Sub(l.aqmDropNext) < 8*l.cfg.AQMInterval {
			l.aqmCount -= 2
		} else {
			l.aqmCount = 1
		}
		l.aqmDropNext = now.Add(l.aqmControlLaw())
		return true
	}
	if now >= l.aqmDropNext {
		l.aqmCount++
		l.aqmDropNext = l.aqmDropNext.Add(l.aqmControlLaw())
		return true
	}
	return false
}

// aqmControlLaw returns the current inter-drop spacing.
func (l *Link) aqmControlLaw() sim.Duration {
	return sim.Duration(float64(l.cfg.AQMInterval) / math.Sqrt(float64(l.aqmCount)))
}

// linkTxEv finishes one packet's serialization: Arg.Obj is the *Link.
func linkTxEv(_ *sim.Simulator, a sim.Arg) {
	a.Obj.(*Link).qlen--
}

// linkDeliverEv hands a propagated packet to the far end: Arg.Obj is
// the *Link, Obj2 the *pkt.Packet, U0 the link-arrival time.
func linkDeliverEv(sm *sim.Simulator, a sim.Arg) {
	l := a.Obj.(*Link)
	p := a.Obj2.(*pkt.Packet)
	l.stats.Delivered++
	l.stats.DeliveredBytes += uint64(p.Len())
	l.inflight--
	if l.obs.TracingPacket(p.Seq) {
		l.obs.Emit(obs.Event{
			Kind: obs.EvLink, Seq: p.Seq, Core: -1, At: sm.Now(),
			Dur: sm.Now().Sub(sim.Time(a.U0)), Bytes: p.Len(), Arg: l.cfg.Name,
		})
	}
	l.dst.Receive(sm, p)
}

// traceDrop emits a drop event for a sampled packet.
func (l *Link) traceDrop(s *sim.Simulator, p *pkt.Packet, reason string) {
	if l.obs.TracingPacket(p.Seq) {
		l.obs.Emit(obs.Event{Kind: obs.EvDrop, Seq: p.Seq, Core: -1, At: s.Now(), Bytes: p.Len(), Arg: reason})
	}
}

// RegisterMetrics registers the link's counter set under prefix (e.g.
// "fabric.c0.up.") into the observability registry.
func (l *Link) RegisterMetrics(reg *obs.Registry, prefix string) {
	reg.CounterFunc(prefix+"tx_packets", func() uint64 { return l.stats.TxPackets })
	reg.CounterFunc(prefix+"tx_bytes", func() uint64 { return l.stats.TxBytes })
	reg.CounterFunc(prefix+"delivered", func() uint64 { return l.stats.Delivered })
	reg.CounterFunc(prefix+"rx_bytes", func() uint64 { return l.stats.DeliveredBytes })
	reg.CounterFunc(prefix+"tail_drops", func() uint64 { return l.stats.TailDrops })
	reg.CounterFunc(prefix+"down_drops", func() uint64 { return l.stats.DownDrops })
	if l.cfg.AQMTarget > 0 {
		reg.CounterFunc(prefix+"aqm_drops", func() uint64 { return l.stats.AQMDrops })
	}
	reg.GaugeFunc(prefix+"queue_hwm", func() float64 { return float64(l.stats.QueueHighWater) })
	reg.GaugeFunc(prefix+"busy_us", func() float64 { return l.stats.BusyTime.Microseconds() })
	if l.qs != nil {
		l.registerClassMetrics(reg, prefix)
	}
}
