package fault

import (
	"strings"
	"testing"

	"idio/internal/dram"
	fnet "idio/internal/net"
	"idio/internal/pcie"
	"idio/internal/pkt"
	"idio/internal/sim"
)

func TestConfigValidate(t *testing.T) {
	var nilCfg *Config
	if err := nilCfg.Validate(); err != nil {
		t.Fatalf("nil config: %v", err)
	}
	good := Config{
		PCIe:        &PCIeConfig{CorruptProb: 0.01, PoisonProb: 0.5},
		LinkFlap:    &LinkFlapConfig{Period: sim.Millisecond, Down: 10 * sim.Microsecond},
		DMAStall:    &DMAStallConfig{Period: sim.Millisecond, Stall: sim.Microsecond},
		MbufLeak:    &MbufLeakConfig{Period: sim.Millisecond, Count: 4, Hold: sim.Microsecond},
		DRAMSpike:   &DRAMSpikeConfig{Period: sim.Millisecond, Extra: sim.Nanosecond, Length: sim.Microsecond},
		SnoopThrash: &SnoopThrashConfig{Period: sim.Millisecond, Lines: 16},
		CoreStall:   &CoreStallConfig{Period: sim.Millisecond, Stall: sim.Microsecond, Core: -1},
	}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	cases := []struct {
		name   string
		mut    func(*Config)
		substr string
	}{
		{"corrupt prob > 1", func(c *Config) { c.PCIe.CorruptProb = 1.5 }, "CorruptProb"},
		{"poison prob < 0", func(c *Config) { c.PCIe.PoisonProb = -0.1 }, "PoisonProb"},
		{"flap period", func(c *Config) { c.LinkFlap.Period = 0 }, "LinkFlap.Period"},
		{"flap down", func(c *Config) { c.LinkFlap.Down = -1 }, "LinkFlap.Down"},
		{"stall period", func(c *Config) { c.DMAStall.Period = 0 }, "DMAStall.Period"},
		{"leak count", func(c *Config) { c.MbufLeak.Count = 0 }, "MbufLeak.Count"},
		{"spike extra", func(c *Config) { c.DRAMSpike.Extra = 0 }, "DRAMSpike.Extra"},
		{"thrash lines", func(c *Config) { c.SnoopThrash.Lines = 0 }, "SnoopThrash.Lines"},
		{"core index", func(c *Config) { c.CoreStall.Core = -2 }, "CoreStall.Core"},
	}
	for _, tc := range cases {
		c := good // sub-configs are shared pointers; rebuild per case
		c.PCIe = &PCIeConfig{CorruptProb: 0.01, PoisonProb: 0.5}
		c.LinkFlap = &LinkFlapConfig{Period: sim.Millisecond, Down: 10 * sim.Microsecond}
		c.DMAStall = &DMAStallConfig{Period: sim.Millisecond, Stall: sim.Microsecond}
		c.MbufLeak = &MbufLeakConfig{Period: sim.Millisecond, Count: 4, Hold: sim.Microsecond}
		c.DRAMSpike = &DRAMSpikeConfig{Period: sim.Millisecond, Extra: sim.Nanosecond, Length: sim.Microsecond}
		c.SnoopThrash = &SnoopThrashConfig{Period: sim.Millisecond, Lines: 16}
		c.CoreStall = &CoreStallConfig{Period: sim.Millisecond, Stall: sim.Microsecond, Core: -1}
		tc.mut(&c)
		err := c.Validate()
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.substr) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.substr)
		}
	}
}

func TestEnabled(t *testing.T) {
	var nilCfg *Config
	if nilCfg.Enabled() {
		t.Fatal("nil config enabled")
	}
	if (&Config{Seed: 7}).Enabled() {
		t.Fatal("seed-only config enabled")
	}
	if !(&Config{PCIe: &PCIeConfig{}}).Enabled() {
		t.Fatal("PCIe config not enabled")
	}
}

// recordingSink captures delivered TLPs.
type recordingSink struct {
	writes []pcie.WriteTLP
	reads  []uint64
}

func (r *recordingSink) DMAWrite(now sim.Time, tlp pcie.WriteTLP) sim.Duration {
	r.writes = append(r.writes, tlp)
	return 0
}

func (r *recordingSink) DMARead(now sim.Time, line uint64) sim.Duration {
	r.reads = append(r.reads, line)
	return 0
}

func TestWrapSinkPassthrough(t *testing.T) {
	next := &recordingSink{}
	in := New(Config{Seed: 1}) // no PCIe faults
	if got := in.WrapSink(next); got != next {
		t.Fatal("WrapSink should return the sink unwrapped when PCIe faults are off")
	}
}

func TestPoisonDiscardsTLP(t *testing.T) {
	next := &recordingSink{}
	in := New(Config{Seed: 1, PCIe: &PCIeConfig{PoisonProb: 1}})
	sink := in.WrapSink(next)
	for i := 0; i < 10; i++ {
		sink.DMAWrite(0, pcie.WriteTLP{LineAddr: uint64(i)})
	}
	if len(next.writes) != 0 {
		t.Fatalf("%d poisoned TLPs reached memory", len(next.writes))
	}
	if got := in.Stats().TLPsPoisoned; got != 10 {
		t.Fatalf("poisoned = %d, want 10", got)
	}
	// Reads pass through untouched.
	sink.DMARead(0, 99)
	if len(next.reads) != 1 {
		t.Fatal("read did not pass through")
	}
}

func TestCorruptFlipsExactlyOneMetaBit(t *testing.T) {
	next := &recordingSink{}
	in := New(Config{Seed: 3, PCIe: &PCIeConfig{CorruptProb: 1}})
	sink := in.WrapSink(next)
	dw, err := pcie.EncodeDW0(pcie.Meta{DestCore: 5, IsHeader: true})
	if err != nil {
		t.Fatal(err)
	}
	orig := pcie.WriteTLP{DW0: dw}
	for i := 0; i < 32; i++ {
		sink.DMAWrite(0, orig)
	}
	if got := in.Stats().TLPsCorrupted; got != 32 {
		t.Fatalf("corrupted = %d, want 32", got)
	}
	for _, tlp := range next.writes {
		diff := tlp.DW0 ^ orig.DW0
		if diff == 0 {
			t.Fatal("corrupted TLP identical to original")
		}
		if diff&(diff-1) != 0 {
			t.Fatalf("more than one bit flipped: %#x", diff)
		}
		// The flipped bit must be one of the IDIO metadata bits.
		found := false
		for _, b := range pcie.MetaBits() {
			if diff == 1<<b {
				found = true
			}
		}
		if !found {
			t.Fatalf("flip %#x is not a metadata bit", diff)
		}
	}
}

// TestInterposerDeterminism: same seed, same TLP stream — identical
// perturbation decisions.
func TestInterposerDeterminism(t *testing.T) {
	dw, err := pcie.EncodeDW0(pcie.Meta{DestCore: 1, IsBurst: true})
	if err != nil {
		t.Fatal(err)
	}
	run := func() []uint32 {
		next := &recordingSink{}
		in := New(Config{Seed: 99, PCIe: &PCIeConfig{CorruptProb: 0.3, PoisonProb: 0.2}})
		sink := in.WrapSink(next)
		for i := 0; i < 200; i++ {
			sink.DMAWrite(sim.Time(i), pcie.WriteTLP{LineAddr: uint64(i), DW0: dw})
		}
		var out []uint32
		for _, w := range next.writes {
			out = append(out, w.DW0)
		}
		return out
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("delivered %d vs %d TLPs", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("TLP %d diverged: %#x vs %#x", i, a[i], b[i])
		}
	}
}

// TestDRAMSpikeInjector: the periodic injector opens and closes
// latency-spike windows through the event queue.
func TestDRAMSpikeInjector(t *testing.T) {
	s := sim.New()
	d := dram.New(dram.FlatConfig(), 0)
	in := New(Config{Seed: 5, DRAMSpike: &DRAMSpikeConfig{
		Period: 100 * sim.Microsecond,
		Extra:  50 * sim.Nanosecond,
		Length: 10 * sim.Microsecond,
	}})
	in.AttachDRAM(d)
	in.Start(s)
	s.Every(0, sim.Microsecond, func(sm *sim.Simulator) { d.Read(sm.Now(), 1) })
	s.RunUntil(sim.Time(2 * sim.Millisecond))
	st := in.Stats()
	if st.DRAMSpikes == 0 {
		t.Fatal("no spikes injected")
	}
	if d.PenalizedAccesses() == 0 {
		t.Fatal("no access paid the injected penalty")
	}
	if d.PenalizedAccesses() >= d.Reads() {
		t.Fatalf("penalty stuck on: %d of %d reads penalized", d.PenalizedAccesses(), d.Reads())
	}
}

// TestTimelineValidate covers every timeline constraint with one case
// per error message.
func TestTimelineValidate(t *testing.T) {
	ms := sim.Millisecond
	at := func(msAt float64) sim.Time { return sim.Time(msAt * float64(ms)) }
	good := []Phase{
		{Layer: "fabric", Kind: "degrade", Start: at(1), Duration: ms, Magnitude: 0.25},
		{Layer: "fabric", Kind: "down", Start: at(1), Duration: ms, Target: 1},
		{Layer: "nic", Kind: "dma-stall", Start: at(3), Duration: ms},
		{Layer: "dram", Kind: "spike", Start: at(4), Duration: ms, Magnitude: 100},
		{Layer: "core", Kind: "stall", Start: at(5), Duration: ms, Target: 1},
		{Layer: "fabric", Kind: "down", Start: at(6), Duration: ms, Target: 1},
	}
	if err := (&Config{Timeline: good}).Validate(); err != nil {
		t.Fatalf("valid timeline rejected: %v", err)
	}
	cases := []struct {
		name   string
		tl     []Phase
		substr string
	}{
		{"unknown layer",
			[]Phase{{Layer: "disk", Kind: "down", Duration: ms}},
			`Timeline[0] unknown layer/kind "disk"/"down"`},
		{"unknown kind",
			[]Phase{{Layer: "fabric", Kind: "spike", Duration: ms}},
			`Timeline[0] unknown layer/kind "fabric"/"spike"`},
		{"negative start",
			[]Phase{{Layer: "fabric", Kind: "down", Start: -1, Duration: ms}},
			"Timeline[0] start"},
		{"zero duration",
			[]Phase{{Layer: "nic", Kind: "dma-stall", Start: at(1)}},
			"Timeline[0] duration 0 must be positive"},
		{"negative duration",
			[]Phase{{Layer: "core", Kind: "stall", Start: at(1), Duration: -ms}},
			"must be positive"},
		{"negative target",
			[]Phase{{Layer: "core", Kind: "stall", Duration: ms, Target: -1}},
			"Timeline[0] target -1"},
		{"degrade magnitude zero",
			[]Phase{{Layer: "fabric", Kind: "degrade", Duration: ms}},
			"fabric/degrade magnitude 0 outside (0,1)"},
		{"degrade magnitude one",
			[]Phase{{Layer: "fabric", Kind: "degrade", Duration: ms, Magnitude: 1}},
			"fabric/degrade magnitude"},
		{"dram magnitude missing",
			[]Phase{{Layer: "dram", Kind: "spike", Duration: ms}},
			"dram/spike magnitude"},
		{"overlap same layer and target",
			[]Phase{
				{Layer: "fabric", Kind: "down", Start: at(1), Duration: 2 * ms},
				{Layer: "fabric", Kind: "degrade", Start: at(2), Duration: 2 * ms, Magnitude: 0.5},
			},
			"Timeline[1] overlaps Timeline[0] on fabric target 0"},
		{"dram phases always share the device",
			[]Phase{
				{Layer: "dram", Kind: "spike", Start: at(1), Duration: 2 * ms, Magnitude: 10},
				{Layer: "dram", Kind: "spike", Start: at(2), Duration: ms, Magnitude: 10, Target: 7},
			},
			"Timeline[1] overlaps Timeline[0] on dram"},
	}
	for _, tc := range cases {
		err := (&Config{Timeline: tc.tl}).Validate()
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.substr) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.substr)
		}
	}
	// Concurrent phases on DIFFERENT targets of the same layer are
	// legal — that is how multi-link chaos scenarios are written.
	disjoint := []Phase{
		{Layer: "fabric", Kind: "down", Start: at(1), Duration: ms, Target: 0},
		{Layer: "fabric", Kind: "down", Start: at(1), Duration: ms, Target: 1},
	}
	if err := (&Config{Timeline: disjoint}).Validate(); err != nil {
		t.Fatalf("different-target concurrent phases rejected: %v", err)
	}
	if !(&Config{Timeline: disjoint}).Enabled() {
		t.Fatal("timeline-only config not Enabled")
	}
}

// nullEndpoint terminates fabric packets (timeline phase test).
type nullEndpoint struct{}

func (nullEndpoint) Receive(_ *sim.Simulator, p *pkt.Packet) { p.Release() }

// TestTimelineFabricPhase drives one scheduled fabric/down phase
// against an attached link and checks the full lifecycle: applied at
// Start, reverted at Start+Duration, counted once — and a phase whose
// target has no attached victim is skipped without effect.
func TestTimelineFabricPhase(t *testing.T) {
	s := sim.New()
	link := fnet.NewLink(fnet.LinkConfig{Name: "l0", RateBps: 100e9}, nullEndpoint{})
	in := New(Config{Timeline: []Phase{
		{Layer: "fabric", Kind: "down", Start: sim.Time(10 * sim.Microsecond), Duration: 20 * sim.Microsecond},
		{Layer: "fabric", Kind: "degrade", Start: sim.Time(50 * sim.Microsecond), Duration: 10 * sim.Microsecond, Magnitude: 0.5, Target: 9},
	}})
	in.AttachLink(link)
	in.Start(s)

	down := map[sim.Time]bool{}
	for _, at := range []sim.Time{
		sim.Time(5 * sim.Microsecond),  // before the phase
		sim.Time(15 * sim.Microsecond), // inside it
		sim.Time(45 * sim.Microsecond), // after the revert
		sim.Time(55 * sim.Microsecond), // inside the skipped phase's span
	} {
		at := at
		s.At(at, func(*sim.Simulator) { down[at] = link.Down() })
	}
	s.RunUntil(sim.Time(100 * sim.Microsecond))

	if down[sim.Time(5*sim.Microsecond)] || !down[sim.Time(15*sim.Microsecond)] || down[sim.Time(45*sim.Microsecond)] {
		t.Fatalf("down-phase lifecycle wrong: %v", down)
	}
	if f := link.RateFactor(); f != 1 {
		t.Fatalf("degrade phase with no attached target %d changed the rate factor to %v", 9, f)
	}
	st := in.Stats()
	if st.TimelinePhases != 1 || st.FabricFlaps != 1 || st.FabricDegrades != 0 {
		t.Fatalf("phases=%d flaps=%d degrades=%d; want 1/1/0 (second phase skipped)",
			st.TimelinePhases, st.FabricFlaps, st.FabricDegrades)
	}
	if st.Total() != 1 {
		t.Fatalf("Total %d, want 1 (timeline phases fold into their kind counters)", st.Total())
	}
}
