package fault

import (
	"strings"
	"testing"

	"idio/internal/dram"
	"idio/internal/pcie"
	"idio/internal/sim"
)

func TestConfigValidate(t *testing.T) {
	var nilCfg *Config
	if err := nilCfg.Validate(); err != nil {
		t.Fatalf("nil config: %v", err)
	}
	good := Config{
		PCIe:        &PCIeConfig{CorruptProb: 0.01, PoisonProb: 0.5},
		LinkFlap:    &LinkFlapConfig{Period: sim.Millisecond, Down: 10 * sim.Microsecond},
		DMAStall:    &DMAStallConfig{Period: sim.Millisecond, Stall: sim.Microsecond},
		MbufLeak:    &MbufLeakConfig{Period: sim.Millisecond, Count: 4, Hold: sim.Microsecond},
		DRAMSpike:   &DRAMSpikeConfig{Period: sim.Millisecond, Extra: sim.Nanosecond, Length: sim.Microsecond},
		SnoopThrash: &SnoopThrashConfig{Period: sim.Millisecond, Lines: 16},
		CoreStall:   &CoreStallConfig{Period: sim.Millisecond, Stall: sim.Microsecond, Core: -1},
	}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	cases := []struct {
		name   string
		mut    func(*Config)
		substr string
	}{
		{"corrupt prob > 1", func(c *Config) { c.PCIe.CorruptProb = 1.5 }, "CorruptProb"},
		{"poison prob < 0", func(c *Config) { c.PCIe.PoisonProb = -0.1 }, "PoisonProb"},
		{"flap period", func(c *Config) { c.LinkFlap.Period = 0 }, "LinkFlap.Period"},
		{"flap down", func(c *Config) { c.LinkFlap.Down = -1 }, "LinkFlap.Down"},
		{"stall period", func(c *Config) { c.DMAStall.Period = 0 }, "DMAStall.Period"},
		{"leak count", func(c *Config) { c.MbufLeak.Count = 0 }, "MbufLeak.Count"},
		{"spike extra", func(c *Config) { c.DRAMSpike.Extra = 0 }, "DRAMSpike.Extra"},
		{"thrash lines", func(c *Config) { c.SnoopThrash.Lines = 0 }, "SnoopThrash.Lines"},
		{"core index", func(c *Config) { c.CoreStall.Core = -2 }, "CoreStall.Core"},
	}
	for _, tc := range cases {
		c := good // sub-configs are shared pointers; rebuild per case
		c.PCIe = &PCIeConfig{CorruptProb: 0.01, PoisonProb: 0.5}
		c.LinkFlap = &LinkFlapConfig{Period: sim.Millisecond, Down: 10 * sim.Microsecond}
		c.DMAStall = &DMAStallConfig{Period: sim.Millisecond, Stall: sim.Microsecond}
		c.MbufLeak = &MbufLeakConfig{Period: sim.Millisecond, Count: 4, Hold: sim.Microsecond}
		c.DRAMSpike = &DRAMSpikeConfig{Period: sim.Millisecond, Extra: sim.Nanosecond, Length: sim.Microsecond}
		c.SnoopThrash = &SnoopThrashConfig{Period: sim.Millisecond, Lines: 16}
		c.CoreStall = &CoreStallConfig{Period: sim.Millisecond, Stall: sim.Microsecond, Core: -1}
		tc.mut(&c)
		err := c.Validate()
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.substr) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.substr)
		}
	}
}

func TestEnabled(t *testing.T) {
	var nilCfg *Config
	if nilCfg.Enabled() {
		t.Fatal("nil config enabled")
	}
	if (&Config{Seed: 7}).Enabled() {
		t.Fatal("seed-only config enabled")
	}
	if !(&Config{PCIe: &PCIeConfig{}}).Enabled() {
		t.Fatal("PCIe config not enabled")
	}
}

// recordingSink captures delivered TLPs.
type recordingSink struct {
	writes []pcie.WriteTLP
	reads  []uint64
}

func (r *recordingSink) DMAWrite(now sim.Time, tlp pcie.WriteTLP) sim.Duration {
	r.writes = append(r.writes, tlp)
	return 0
}

func (r *recordingSink) DMARead(now sim.Time, line uint64) sim.Duration {
	r.reads = append(r.reads, line)
	return 0
}

func TestWrapSinkPassthrough(t *testing.T) {
	next := &recordingSink{}
	in := New(Config{Seed: 1}) // no PCIe faults
	if got := in.WrapSink(next); got != next {
		t.Fatal("WrapSink should return the sink unwrapped when PCIe faults are off")
	}
}

func TestPoisonDiscardsTLP(t *testing.T) {
	next := &recordingSink{}
	in := New(Config{Seed: 1, PCIe: &PCIeConfig{PoisonProb: 1}})
	sink := in.WrapSink(next)
	for i := 0; i < 10; i++ {
		sink.DMAWrite(0, pcie.WriteTLP{LineAddr: uint64(i)})
	}
	if len(next.writes) != 0 {
		t.Fatalf("%d poisoned TLPs reached memory", len(next.writes))
	}
	if got := in.Stats().TLPsPoisoned; got != 10 {
		t.Fatalf("poisoned = %d, want 10", got)
	}
	// Reads pass through untouched.
	sink.DMARead(0, 99)
	if len(next.reads) != 1 {
		t.Fatal("read did not pass through")
	}
}

func TestCorruptFlipsExactlyOneMetaBit(t *testing.T) {
	next := &recordingSink{}
	in := New(Config{Seed: 3, PCIe: &PCIeConfig{CorruptProb: 1}})
	sink := in.WrapSink(next)
	dw, err := pcie.EncodeDW0(pcie.Meta{DestCore: 5, IsHeader: true})
	if err != nil {
		t.Fatal(err)
	}
	orig := pcie.WriteTLP{DW0: dw}
	for i := 0; i < 32; i++ {
		sink.DMAWrite(0, orig)
	}
	if got := in.Stats().TLPsCorrupted; got != 32 {
		t.Fatalf("corrupted = %d, want 32", got)
	}
	for _, tlp := range next.writes {
		diff := tlp.DW0 ^ orig.DW0
		if diff == 0 {
			t.Fatal("corrupted TLP identical to original")
		}
		if diff&(diff-1) != 0 {
			t.Fatalf("more than one bit flipped: %#x", diff)
		}
		// The flipped bit must be one of the IDIO metadata bits.
		found := false
		for _, b := range pcie.MetaBits() {
			if diff == 1<<b {
				found = true
			}
		}
		if !found {
			t.Fatalf("flip %#x is not a metadata bit", diff)
		}
	}
}

// TestInterposerDeterminism: same seed, same TLP stream — identical
// perturbation decisions.
func TestInterposerDeterminism(t *testing.T) {
	dw, err := pcie.EncodeDW0(pcie.Meta{DestCore: 1, IsBurst: true})
	if err != nil {
		t.Fatal(err)
	}
	run := func() []uint32 {
		next := &recordingSink{}
		in := New(Config{Seed: 99, PCIe: &PCIeConfig{CorruptProb: 0.3, PoisonProb: 0.2}})
		sink := in.WrapSink(next)
		for i := 0; i < 200; i++ {
			sink.DMAWrite(sim.Time(i), pcie.WriteTLP{LineAddr: uint64(i), DW0: dw})
		}
		var out []uint32
		for _, w := range next.writes {
			out = append(out, w.DW0)
		}
		return out
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("delivered %d vs %d TLPs", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("TLP %d diverged: %#x vs %#x", i, a[i], b[i])
		}
	}
}

// TestDRAMSpikeInjector: the periodic injector opens and closes
// latency-spike windows through the event queue.
func TestDRAMSpikeInjector(t *testing.T) {
	s := sim.New()
	d := dram.New(dram.FlatConfig(), 0)
	in := New(Config{Seed: 5, DRAMSpike: &DRAMSpikeConfig{
		Period: 100 * sim.Microsecond,
		Extra:  50 * sim.Nanosecond,
		Length: 10 * sim.Microsecond,
	}})
	in.AttachDRAM(d)
	in.Start(s)
	s.Every(0, sim.Microsecond, func(sm *sim.Simulator) { d.Read(sm.Now(), 1) })
	s.RunUntil(sim.Time(2 * sim.Millisecond))
	st := in.Stats()
	if st.DRAMSpikes == 0 {
		t.Fatal("no spikes injected")
	}
	if d.PenalizedAccesses() == 0 {
		t.Fatal("no access paid the injected penalty")
	}
	if d.PenalizedAccesses() >= d.Reads() {
		t.Fatalf("penalty stuck on: %d of %d reads penalized", d.PenalizedAccesses(), d.Reads())
	}
}
