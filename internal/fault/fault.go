// Package fault is the deterministic fault-injection layer: seedable
// injectors that perturb every level of the simulated system — PCIe
// (corrupted metadata bits, poisoned write TLPs), NIC (link flaps,
// paced-DMA stalls, mbuf-pool exhaustion), memory (transient DRAM
// latency spikes, snoop-filter pressure), and CPU (slow-core stalls
// that starve polling loops).
//
// Two properties make the layer a measurement instrument rather than
// a chaos monkey:
//
//  1. Determinism. Every random decision is drawn from one seeded
//     generator, and every perturbation is delivered through the
//     sim.Simulator event queue, whose same-instant FIFO ordering is
//     reproducible. Two runs with the same seed and configuration are
//     bit-identical (determinism_test.go asserts this).
//  2. Accounting. Each injector counts what it perturbed
//     (internal/stats counters, snapshotted by Stats), so degradation
//     experiments can correlate injected adversity with observed
//     drops, latency, and writeback inflation.
//
// Wiring: idio.Config.Faults enables the layer; idio.NewSystem builds
// the Injector, interposes it on the NIC→root-complex PCIe path
// (WrapSink), attaches ports/DRAM/hierarchy/cores/pools, and starts
// the periodic injectors alongside the cores.
package fault

import (
	"sync"
	"errors"
	"fmt"
	"math/rand"

	"idio/internal/cpu"
	"idio/internal/dram"
	"idio/internal/hier"
	"idio/internal/mem"
	fnet "idio/internal/net"
	"idio/internal/nic"
	"idio/internal/pcie"
	"idio/internal/sim"
	"idio/internal/stats"
)

// PCIeConfig perturbs individual inbound write TLPs. Probabilities
// are per transaction (one cacheline each), drawn in arrival order.
type PCIeConfig struct {
	// CorruptProb is the probability a TLP's IDIO metadata suffers a
	// single-bit flip in the reserved DW0 bits — exercising the
	// classifier consumer's mis-steer handling (wrong destination
	// core, spurious isHeader/isBurst, flipped app class).
	CorruptProb float64
	// PoisonProb is the probability a write TLP arrives poisoned (EP
	// bit set); the root complex discards it, so the line never lands
	// in memory and the packet is delivered torn.
	PoisonProb float64
}

// LinkFlapConfig schedules NIC link flaps: roughly every Period the
// link of one attached port drops for Down. Packets arriving while
// down are lost at the MAC.
type LinkFlapConfig struct {
	Period sim.Duration
	Down   sim.Duration
}

// DMAStallConfig schedules paced-DMA stalls: roughly every Period one
// attached port's DMA engine is held for Stall (credit exhaustion,
// link retraining), backing descriptor work up into the ring.
type DMAStallConfig struct {
	Period sim.Duration
	Stall  sim.Duration
}

// MbufLeakConfig schedules transient mbuf-pool exhaustion: roughly
// every Period, up to Count buffers are taken from one attached pool
// and returned after Hold — a leaky application or a slow deferred
// consumer. While held, rings backed by the pool take PoolDrops.
type MbufLeakConfig struct {
	Period sim.Duration
	Count  int
	Hold   sim.Duration
}

// DRAMSpikeConfig schedules transient memory-latency spikes: roughly
// every Period, each access pays Extra additional latency for Length
// (refresh storms, thermal throttling, channel contention).
type DRAMSpikeConfig struct {
	Period sim.Duration
	Extra  sim.Duration
	Length sim.Duration
}

// SnoopThrashConfig schedules snoop-filter pressure: roughly every
// Period, Lines synthetic directory entries are force-inserted,
// back-invalidating victims' MLC-resident lines as a coherent
// co-runner would.
type SnoopThrashConfig struct {
	Period sim.Duration
	Lines  int
}

// FabricFlapConfig schedules fabric link flaps: roughly every Period
// one attached fabric link (a client uplink or the server downlink)
// goes down for Down. Packets arriving while down are lost on the
// wire and count as the link's DownDrops.
type FabricFlapConfig struct {
	Period sim.Duration
	Down   sim.Duration
}

// FabricDegradeConfig schedules transient fabric link-rate
// degradation: roughly every Period one attached link's effective
// rate drops to Factor of nominal for Length (auto-negotiation
// fallback, a congested upstream port, a flaky optic).
type FabricDegradeConfig struct {
	Period sim.Duration
	Factor float64
	Length sim.Duration
}

// CoreStallConfig schedules slow-core stalls: roughly every Period
// one core's driver loop freezes for Stall while the NIC keeps
// producing into its ring. Core pins the victim; -1 rotates over all
// attached cores pseudo-randomly.
type CoreStallConfig struct {
	Period sim.Duration
	Stall  sim.Duration
	Core   int
}

// Phase is one scheduled entry of a fault timeline: a perturbation of
// one layer that begins at a fixed simulation time, persists for a
// fixed duration, and then clears. Unlike the periodic injectors,
// timeline phases draw nothing from the random generator — the whole
// schedule is declared up front, so chaos experiments can measure
// degradation AND recovery against known fault boundaries.
type Phase struct {
	// Layer and Kind name the perturbation. Supported pairs:
	//
	//	fabric / down      — attached fabric link Target held down
	//	fabric / degrade   — link Target's rate scaled to Magnitude (0,1)
	//	nic    / dma-stall — port Target's DMA engine held for Duration
	//	dram   / spike     — Magnitude ns of extra latency per access
	//	core   / stall     — core Target's driver loop frozen for Duration
	Layer string
	Kind  string
	// Start is when the phase begins; Duration how long it persists.
	Start    sim.Time
	Duration sim.Duration
	// Magnitude parameterises the perturbation: the rate factor in
	// (0,1) for fabric/degrade, the extra latency in nanoseconds for
	// dram/spike. Unused (and ignored) by the other kinds.
	Magnitude float64
	// Target selects the victim by attach order: links for fabric
	// phases, ports for nic, cores for core. Ignored for dram. A
	// target index with no attached victim skips the phase.
	Target int
	// Domain optionally names the event domain that owns the phase's
	// target ("dut", "switch", "clients.0", ...). Single-simulator runs
	// ignore it; a sharded Cluster verifies it against the target's
	// actual owner and runs the phase on that domain's simulator, so
	// the perturbation applies at exactly the declared instant of the
	// owning timeline. Empty lets the cluster resolve the owner itself.
	Domain string
}

// phaseKinds maps every supported layer to its kinds.
var phaseKinds = map[string][]string{
	"fabric": {"down", "degrade"},
	"nic":    {"dma-stall"},
	"dram":   {"spike"},
	"core":   {"stall"},
}

// validKind reports whether layer/kind is a supported pair.
func validKind(layer, kind string) bool {
	for _, k := range phaseKinds[layer] {
		if k == kind {
			return true
		}
	}
	return false
}

// Config aggregates every injector. Nil sub-configs are disabled; the
// zero value injects nothing.
type Config struct {
	// Seed drives every random decision. Two runs with equal Config
	// (and an otherwise deterministic system) are bit-identical.
	Seed int64

	PCIe          *PCIeConfig
	LinkFlap      *LinkFlapConfig
	DMAStall      *DMAStallConfig
	MbufLeak      *MbufLeakConfig
	DRAMSpike     *DRAMSpikeConfig
	SnoopThrash   *SnoopThrashConfig
	CoreStall     *CoreStallConfig
	FabricFlap    *FabricFlapConfig
	FabricDegrade *FabricDegradeConfig

	// Timeline schedules deterministic fault phases alongside (or
	// instead of) the periodic injectors.
	Timeline []Phase
}

// Enabled reports whether any injector is configured.
func (c *Config) Enabled() bool {
	return c != nil && (c.PCIe != nil || c.LinkFlap != nil || c.DMAStall != nil ||
		c.MbufLeak != nil || c.DRAMSpike != nil || c.SnoopThrash != nil || c.CoreStall != nil ||
		c.FabricFlap != nil || c.FabricDegrade != nil || len(c.Timeline) > 0)
}

// FabricRandomEnabled reports whether a periodic rng-driven fabric
// injector is configured. These pick victim links from the shared
// seeded stream and flip them mid-epoch from the DUT's timeline, so
// they cannot be split across event domains; a sharded cluster
// rejects them (deterministic Timeline phases remain available).
func (c *Config) FabricRandomEnabled() bool {
	return c != nil && (c.FabricFlap != nil || c.FabricDegrade != nil)
}

// Validate checks every enabled injector's parameters, returning one
// error per problem (joined).
func (c *Config) Validate() error {
	if c == nil {
		return nil
	}
	var errs []error
	bad := func(format string, args ...interface{}) {
		errs = append(errs, fmt.Errorf("fault: "+format, args...))
	}
	if p := c.PCIe; p != nil {
		if p.CorruptProb < 0 || p.CorruptProb > 1 {
			bad("PCIe.CorruptProb %v outside [0,1]", p.CorruptProb)
		}
		if p.PoisonProb < 0 || p.PoisonProb > 1 {
			bad("PCIe.PoisonProb %v outside [0,1]", p.PoisonProb)
		}
	}
	if f := c.LinkFlap; f != nil {
		if f.Period <= 0 {
			bad("LinkFlap.Period %v must be positive", f.Period)
		}
		if f.Down <= 0 {
			bad("LinkFlap.Down %v must be positive", f.Down)
		}
	}
	if d := c.DMAStall; d != nil {
		if d.Period <= 0 {
			bad("DMAStall.Period %v must be positive", d.Period)
		}
		if d.Stall <= 0 {
			bad("DMAStall.Stall %v must be positive", d.Stall)
		}
	}
	if m := c.MbufLeak; m != nil {
		if m.Period <= 0 {
			bad("MbufLeak.Period %v must be positive", m.Period)
		}
		if m.Count <= 0 {
			bad("MbufLeak.Count %d must be positive", m.Count)
		}
		if m.Hold <= 0 {
			bad("MbufLeak.Hold %v must be positive", m.Hold)
		}
	}
	if d := c.DRAMSpike; d != nil {
		if d.Period <= 0 {
			bad("DRAMSpike.Period %v must be positive", d.Period)
		}
		if d.Extra <= 0 {
			bad("DRAMSpike.Extra %v must be positive", d.Extra)
		}
		if d.Length <= 0 {
			bad("DRAMSpike.Length %v must be positive", d.Length)
		}
	}
	if s := c.SnoopThrash; s != nil {
		if s.Period <= 0 {
			bad("SnoopThrash.Period %v must be positive", s.Period)
		}
		if s.Lines <= 0 {
			bad("SnoopThrash.Lines %d must be positive", s.Lines)
		}
	}
	if cs := c.CoreStall; cs != nil {
		if cs.Period <= 0 {
			bad("CoreStall.Period %v must be positive", cs.Period)
		}
		if cs.Stall <= 0 {
			bad("CoreStall.Stall %v must be positive", cs.Stall)
		}
		if cs.Core < -1 {
			bad("CoreStall.Core %d must be -1 (rotate) or a core index", cs.Core)
		}
	}
	if f := c.FabricFlap; f != nil {
		if f.Period <= 0 {
			bad("FabricFlap.Period %v must be positive", f.Period)
		}
		if f.Down <= 0 {
			bad("FabricFlap.Down %v must be positive", f.Down)
		}
	}
	if d := c.FabricDegrade; d != nil {
		if d.Period <= 0 {
			bad("FabricDegrade.Period %v must be positive", d.Period)
		}
		if d.Factor <= 0 || d.Factor >= 1 {
			bad("FabricDegrade.Factor %v outside (0,1)", d.Factor)
		}
		if d.Length <= 0 {
			bad("FabricDegrade.Length %v must be positive", d.Length)
		}
	}
	for i, ph := range c.Timeline {
		if !validKind(ph.Layer, ph.Kind) {
			bad("Timeline[%d] unknown layer/kind %q/%q", i, ph.Layer, ph.Kind)
			continue
		}
		if ph.Start < 0 {
			bad("Timeline[%d] start %v must be >= 0", i, ph.Start)
		}
		if ph.Duration <= 0 {
			bad("Timeline[%d] duration %v must be positive", i, ph.Duration)
		}
		if ph.Target < 0 {
			bad("Timeline[%d] target %d must be >= 0", i, ph.Target)
		}
		switch {
		case ph.Layer == "fabric" && ph.Kind == "degrade":
			if ph.Magnitude <= 0 || ph.Magnitude >= 1 {
				bad("Timeline[%d] fabric/degrade magnitude %v outside (0,1)", i, ph.Magnitude)
			}
		case ph.Layer == "dram":
			if ph.Magnitude <= 0 {
				bad("Timeline[%d] dram/spike magnitude %v ns must be positive", i, ph.Magnitude)
			}
		}
		// Two phases on the same target of the same layer must not
		// overlap: the second's revert would clear (or double-apply)
		// the first's perturbation mid-window.
		for j := 0; j < i; j++ {
			prev := c.Timeline[j]
			// All dram phases share the one memory device regardless of
			// their Target field.
			sameTarget := prev.Target == ph.Target || ph.Layer == "dram"
			if prev.Layer != ph.Layer || !sameTarget || !validKind(prev.Layer, prev.Kind) {
				continue
			}
			if prev.Duration <= 0 || ph.Duration <= 0 {
				continue // already reported above
			}
			if ph.Start < prev.Start.Add(prev.Duration) && prev.Start < ph.Start.Add(ph.Duration) {
				bad("Timeline[%d] overlaps Timeline[%d] on %s target %d", i, j, ph.Layer, ph.Target)
			}
		}
	}
	return errors.Join(errs...)
}

// Stats is a snapshot of everything the injectors perturbed.
type Stats struct {
	TLPsCorrupted  uint64 // metadata bit flips delivered
	TLPsPoisoned   uint64 // write TLPs discarded at the root complex
	LinkFlaps      uint64 // link-down windows opened
	DMAStalls      uint64 // DMA-engine holds issued
	MbufsLeaked    uint64 // buffers transiently stolen from pools
	DRAMSpikes     uint64 // latency-spike windows opened
	SnoopThrashes  uint64 // directory-pressure rounds
	DirEvictions   uint64 // entries displaced by injected pressure
	CoreStalls     uint64 // slow-core stalls issued
	FabricFlaps    uint64 // fabric link-down windows opened
	FabricDegrades uint64 // fabric link-rate degradation windows opened
	// TimelinePhases counts scheduled timeline phases applied (each
	// phase also increments its kind's counter above, so Total stays
	// the sum of individual perturbations).
	TimelinePhases uint64
}

// Total sums every perturbation count (spike/flap windows count once).
func (s Stats) Total() uint64 {
	return s.TLPsCorrupted + s.TLPsPoisoned + s.LinkFlaps + s.DMAStalls +
		s.MbufsLeaked + s.DRAMSpikes + s.SnoopThrashes + s.CoreStalls +
		s.FabricFlaps + s.FabricDegrades
}

// Injector owns the seeded generator and the component handles, and
// delivers every perturbation through the simulator's event queue.
type Injector struct {
	cfg Config
	rng *rand.Rand

	ports []*nic.NIC
	pools []*nic.MbufPool
	mem   *dram.DRAM
	hier  *hier.Hierarchy
	cores []*cpu.Core
	links []*fnet.Link

	tlpsCorrupted  stats.Counter
	tlpsPoisoned   stats.Counter
	linkFlaps      stats.Counter
	dmaStalls      stats.Counter
	mbufsLeaked    stats.Counter
	dramSpikes     stats.Counter
	snoopThrashes  stats.Counter
	dirEvictions   stats.Counter
	coreStalls     stats.Counter
	fabricFlaps    stats.Counter
	fabricDegrades stats.Counter
	timelinePhases stats.Counter

	// phaseMu serialises applyPhase's shared counters when a sharded
	// cluster runs timeline phases on concurrent domain goroutines
	// (each phase still only touches components its domain owns).
	phaseMu sync.Mutex

	started          bool
	timelineExternal bool
}

// New builds an injector; the configuration must already have passed
// Validate.
func New(cfg Config) *Injector {
	return &Injector{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// AttachPort registers a NIC port as a link-flap / DMA-stall target.
func (in *Injector) AttachPort(n *nic.NIC) { in.ports = append(in.ports, n) }

// AttachPool registers an mbuf pool as an exhaustion target.
func (in *Injector) AttachPool(p *nic.MbufPool) { in.pools = append(in.pools, p) }

// AttachDRAM registers the memory device for latency spikes.
func (in *Injector) AttachDRAM(d *dram.DRAM) { in.mem = d }

// AttachHier registers the hierarchy for snoop-filter pressure.
func (in *Injector) AttachHier(h *hier.Hierarchy) { in.hier = h }

// AttachCore registers a core as a slow-core stall target.
func (in *Injector) AttachCore(c *cpu.Core) { in.cores = append(in.cores, c) }

// AttachLink registers a fabric link as a flap / rate-degradation
// target. Attach before Start, in deterministic order (the rng picks
// victims by index).
func (in *Injector) AttachLink(l *fnet.Link) { in.links = append(in.links, l) }

// Stats snapshots the perturbation counters.
func (in *Injector) Stats() Stats {
	return Stats{
		TLPsCorrupted:  in.tlpsCorrupted.Value(),
		TLPsPoisoned:   in.tlpsPoisoned.Value(),
		LinkFlaps:      in.linkFlaps.Value(),
		DMAStalls:      in.dmaStalls.Value(),
		MbufsLeaked:    in.mbufsLeaked.Value(),
		DRAMSpikes:     in.dramSpikes.Value(),
		SnoopThrashes:  in.snoopThrashes.Value(),
		DirEvictions:   in.dirEvictions.Value(),
		CoreStalls:     in.coreStalls.Value(),
		FabricFlaps:    in.fabricFlaps.Value(),
		FabricDegrades: in.fabricDegrades.Value(),
		TimelinePhases: in.timelinePhases.Value(),
	}
}

// --- PCIe interposition ---

// sinkInterposer sits between the NIC's DMA engine and the root
// complex, perturbing write TLPs per the PCIe config. Reads pass
// through untouched (read completions are CRC-protected end to end).
type sinkInterposer struct {
	next nic.Sink
	in   *Injector
}

// WrapSink interposes the injector on a NIC→root-complex path. With
// no PCIe faults configured the sink is returned unwrapped, so the
// happy path costs nothing.
func (in *Injector) WrapSink(next nic.Sink) nic.Sink {
	if in.cfg.PCIe == nil {
		return next
	}
	return &sinkInterposer{next: next, in: in}
}

// DMAWrite implements nic.Sink.
func (si *sinkInterposer) DMAWrite(now sim.Time, tlp pcie.WriteTLP) sim.Duration {
	cfg := si.in.cfg.PCIe
	// Draw in fixed order (poison, then corrupt) so the decision
	// stream is reproducible regardless of probabilities.
	poisoned := cfg.PoisonProb > 0 && si.in.rng.Float64() < cfg.PoisonProb
	corrupted := cfg.CorruptProb > 0 && si.in.rng.Float64() < cfg.CorruptProb
	if poisoned {
		si.in.tlpsPoisoned.Inc()
		return 0 // discarded at the root complex: never touches memory
	}
	if corrupted {
		tlp = tlp.FlipMetaBit(si.in.rng.Intn(len(pcie.MetaBits())))
		si.in.tlpsCorrupted.Inc()
	}
	return si.next.DMAWrite(now, tlp)
}

// DMARead implements nic.Sink.
func (si *sinkInterposer) DMARead(now sim.Time, line uint64) sim.Duration {
	return si.next.DMARead(now, line)
}

// --- periodic injectors ---

// jitter returns a uniformly random duration in [period/2, 3*period/2)
// so periodic faults do not phase-lock with the workload's own
// periodicity (bursts, control-plane loops).
func (in *Injector) jitter(period sim.Duration) sim.Duration {
	half := int64(period) / 2
	if half <= 0 {
		return period
	}
	return sim.Duration(half + in.rng.Int63n(2*half))
}

// chain schedules fn roughly every period (with jitter), rescheduling
// itself through the event queue forever.
func (in *Injector) chain(s *sim.Simulator, period sim.Duration, fn func(sm *sim.Simulator)) {
	var tick sim.Event
	tick = func(sm *sim.Simulator) {
		fn(sm)
		sm.After(in.jitter(period), tick)
	}
	s.After(in.jitter(period), tick)
}

// Start schedules every configured periodic injector. Call it once,
// after every target is attached (idio.System.Start does). The PCIe
// interposer needs no start — it perturbs inline.
func (in *Injector) Start(s *sim.Simulator) {
	if in.started {
		return
	}
	in.started = true
	if f := in.cfg.LinkFlap; f != nil && len(in.ports) > 0 {
		in.chain(s, f.Period, func(sm *sim.Simulator) {
			port := in.ports[in.rng.Intn(len(in.ports))]
			if !port.LinkUp() {
				return // already down from an overlapping flap
			}
			port.SetLinkState(false)
			in.linkFlaps.Inc()
			sm.After(f.Down, func(*sim.Simulator) { port.SetLinkState(true) })
		})
	}
	if d := in.cfg.DMAStall; d != nil && len(in.ports) > 0 {
		in.chain(s, d.Period, func(sm *sim.Simulator) {
			port := in.ports[in.rng.Intn(len(in.ports))]
			port.StallDMA(sm.Now(), d.Stall)
			in.dmaStalls.Inc()
		})
	}
	if m := in.cfg.MbufLeak; m != nil && len(in.pools) > 0 {
		in.chain(s, m.Period, func(sm *sim.Simulator) {
			pool := in.pools[in.rng.Intn(len(in.pools))]
			var held []mem.Region
			for i := 0; i < m.Count && pool.Available() > 0; i++ {
				if b, ok := pool.Alloc(); ok {
					held = append(held, b)
					in.mbufsLeaked.Inc()
				}
			}
			if len(held) == 0 {
				return
			}
			sm.After(m.Hold, func(*sim.Simulator) {
				for _, b := range held {
					pool.Free(b)
				}
			})
		})
	}
	if d := in.cfg.DRAMSpike; d != nil && in.mem != nil {
		in.chain(s, d.Period, func(sm *sim.Simulator) {
			if in.mem.ExtraLatency() > 0 {
				return // a spike is already active; skip overlap
			}
			in.mem.SetExtraLatency(d.Extra)
			in.dramSpikes.Inc()
			sm.After(d.Length, func(*sim.Simulator) { in.mem.SetExtraLatency(0) })
		})
	}
	if t := in.cfg.SnoopThrash; t != nil && in.hier != nil {
		in.chain(s, t.Period, func(sm *sim.Simulator) {
			lines := make([]uint64, t.Lines)
			for i := range lines {
				// Synthetic lines live in a high region no real
				// allocation reaches, so only directory SETS collide
				// with real traffic — which is the fault being modeled.
				lines[i] = 1<<40 | uint64(in.rng.Int63n(1<<24))
			}
			ev := in.hier.InjectSnoopPressure(sm.Now(), in.rng.Intn(maxInt(len(in.cores), 1)), lines)
			in.snoopThrashes.Inc()
			in.dirEvictions.Add(uint64(ev))
		})
	}
	if f := in.cfg.FabricFlap; f != nil && len(in.links) > 0 {
		in.chain(s, f.Period, func(sm *sim.Simulator) {
			link := in.links[in.rng.Intn(len(in.links))]
			if link.Down() {
				return // already down from an overlapping flap
			}
			link.SetDown(true)
			in.fabricFlaps.Inc()
			sm.After(f.Down, func(*sim.Simulator) { link.SetDown(false) })
		})
	}
	if d := in.cfg.FabricDegrade; d != nil && len(in.links) > 0 {
		in.chain(s, d.Period, func(sm *sim.Simulator) {
			link := in.links[in.rng.Intn(len(in.links))]
			if link.RateFactor() != 1 {
				return // a degradation window is already active
			}
			link.SetRateFactor(d.Factor)
			in.fabricDegrades.Inc()
			sm.After(d.Length, func(*sim.Simulator) { link.SetRateFactor(1) })
		})
	}
	if cs := in.cfg.CoreStall; cs != nil && len(in.cores) > 0 {
		in.chain(s, cs.Period, func(sm *sim.Simulator) {
			idx := cs.Core
			if idx < 0 || idx >= len(in.cores) {
				idx = in.rng.Intn(len(in.cores))
			}
			in.cores[idx].InjectStall(sm.Now(), cs.Stall)
			in.coreStalls.Inc()
		})
	}
	if !in.timelineExternal {
		in.SchedulePhases(s, nil)
	}
}

// ScheduleTimelineExternally tells Start to leave the timeline phases
// to the caller, which schedules them itself through SchedulePhases —
// the sharded-cluster path, where each phase must run on the event
// domain owning its target. Call before Start.
func (in *Injector) ScheduleTimelineExternally() { in.timelineExternal = true }

// SchedulePhases schedules onto s every timeline phase selected by
// keep (nil keeps all). A sharded cluster calls it once per event
// domain with a predicate matching the phases that domain owns;
// relative order among a domain's same-instant phases follows the
// timeline declaration order, exactly as in the single-simulator path.
func (in *Injector) SchedulePhases(s *sim.Simulator, keep func(Phase) bool) {
	for i := range in.cfg.Timeline {
		ph := in.cfg.Timeline[i]
		if keep != nil && !keep(ph) {
			continue
		}
		s.AtNamed(ph.Start, "fault-phase", func(sm *sim.Simulator) {
			in.applyPhase(sm, ph)
		})
	}
}

// applyPhase fires one timeline phase at its start instant: apply the
// perturbation, and (for the stateful kinds) schedule the revert at
// start+duration. Phases draw nothing from the rng, so a timeline is
// deterministic regardless of what else is configured.
func (in *Injector) applyPhase(sm *sim.Simulator, ph Phase) {
	in.phaseMu.Lock()
	defer in.phaseMu.Unlock()
	switch ph.Layer {
	case "fabric":
		if ph.Target >= len(in.links) {
			return
		}
		link := in.links[ph.Target]
		switch ph.Kind {
		case "down":
			link.SetDown(true)
			in.fabricFlaps.Inc()
			sm.After(ph.Duration, func(*sim.Simulator) { link.SetDown(false) })
		case "degrade":
			link.SetRateFactor(ph.Magnitude)
			in.fabricDegrades.Inc()
			sm.After(ph.Duration, func(*sim.Simulator) { link.SetRateFactor(1) })
		default:
			return
		}
	case "nic":
		if ph.Target >= len(in.ports) {
			return
		}
		in.ports[ph.Target].StallDMA(sm.Now(), ph.Duration)
		in.dmaStalls.Inc()
	case "dram":
		if in.mem == nil {
			return
		}
		mem := in.mem
		mem.SetExtraLatency(sim.Duration(ph.Magnitude * float64(sim.Nanosecond)))
		in.dramSpikes.Inc()
		sm.After(ph.Duration, func(*sim.Simulator) { mem.SetExtraLatency(0) })
	case "core":
		if ph.Target >= len(in.cores) {
			return
		}
		in.cores[ph.Target].InjectStall(sm.Now(), ph.Duration)
		in.coreStalls.Inc()
	default:
		return
	}
	in.timelinePhases.Inc()
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
