package obs

import (
	"testing"

	"idio/internal/mem"
	"idio/internal/sim"
)

// The disabled-observability benchmarks are part of the acceptance
// criteria: instrumented hot paths guard on these calls, so with a nil
// or disabled observer they must report 0 allocs/op (and a handful of
// nanoseconds). bench smoke in scripts/check.sh compiles and runs them.

var sinkBool bool

func BenchmarkDisabledTracingPacket(b *testing.B) {
	var o *Observer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sinkBool = o.TracingPacket(uint64(i))
	}
}

func BenchmarkDisabledEmit(b *testing.B) {
	o := New(Config{}) // registry only, tracer off
	e := Event{Kind: EvDone, Seq: 1, Core: 2, At: sim.Time(3 * sim.Microsecond)}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		o.Emit(e)
	}
}

func BenchmarkDisabledLineEvent(b *testing.B) {
	o := New(Config{})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		o.LineEvent(EvPlace, sim.Time(i), uint64(i), 0, "LLC", 0)
	}
}

func BenchmarkDisabledMarkLines(b *testing.B) {
	var o *Observer
	r := mem.Region{Base: 0, Size: 2048}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		o.MarkLines(uint64(i), r)
	}
}

func BenchmarkEnabledEmitNullSink(b *testing.B) {
	o := New(Config{TraceSampleN: 1})
	e := Event{Kind: EvRx, Seq: 1, Core: 0, At: sim.Time(sim.Microsecond)}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if o.TracingPacket(e.Seq) {
			o.Emit(e)
		}
	}
}

func BenchmarkRegistrySnapshot(b *testing.B) {
	r := NewRegistry()
	var n uint64
	for i := 0; i < 64; i++ {
		name := "m" + string(rune('a'+i/26)) + string(rune('a'+i%26))
		r.CounterFunc(name, func() uint64 { return n })
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		n++
		if len(r.Snapshot()) != 64 {
			b.Fatal("bad snapshot")
		}
	}
}
