package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"idio/internal/mem"
	"idio/internal/sim"
)

func TestRegistryOrderAndLookup(t *testing.T) {
	r := NewRegistry()
	var a, b uint64 = 7, 9
	r.CounterFunc("z.second", func() uint64 { return b })
	r.CounterFunc("a.first", func() uint64 { return a })
	r.GaugeFunc("m.gauge", func() float64 { return 1.5 })

	names := r.Names()
	want := []string{"z.second", "a.first", "m.gauge"}
	for i, n := range want {
		if names[i] != n {
			t.Fatalf("names[%d] = %q, want %q (registration order must win)", i, names[i], n)
		}
	}
	snap := r.Snapshot()
	if snap[0].Uint64() != 9 || snap[1].Uint64() != 7 {
		t.Fatalf("snapshot values = %v", snap)
	}
	if snap[2].Kind != KindGauge || snap[2].Value != 1.5 {
		t.Fatalf("gauge sample = %+v", snap[2])
	}
	a = 100
	if s, ok := r.Lookup("a.first"); !ok || s.Uint64() != 100 {
		t.Fatalf("Lookup after mutation = %+v, %v", s, ok)
	}
	if _, ok := r.Lookup("missing"); ok {
		t.Fatal("Lookup(missing) reported ok")
	}
}

func TestRegistryDuplicatePanics(t *testing.T) {
	r := NewRegistry()
	r.CounterFunc("dup", func() uint64 { return 0 })
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	r.CounterFunc("dup", func() uint64 { return 0 })
}

func TestOwnedCounterAndHistogram(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("events")
	h := r.Histogram("lat")
	c.Inc()
	c.Add(4)
	for _, v := range []uint64{100, 100, 100, 100, 100, 100, 100, 100, 100, 100000} {
		h.Observe(v)
	}
	if s, _ := r.Lookup("events"); s.Uint64() != 5 {
		t.Fatalf("counter = %v", s.Value)
	}
	if s, _ := r.Lookup("lat.count"); s.Uint64() != 10 {
		t.Fatalf("lat.count = %v", s.Value)
	}
	if s, _ := r.Lookup("lat.mean"); s.Value != (9*100+100000)/10.0 {
		t.Fatalf("lat.mean = %v", s.Value)
	}
	p50, _ := r.Lookup("lat.p50")
	if p50.Value < 64 || p50.Value > 128 {
		t.Fatalf("lat.p50 = %v, want within bucket [64,128)", p50.Value)
	}
	p99, _ := r.Lookup("lat.p99")
	if p99.Value < 65536 || p99.Value > 131072 {
		t.Fatalf("lat.p99 = %v, want within bucket [65536,131072)", p99.Value)
	}
}

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.Mean() != 0 || h.Quantile(0.5) != 0 || h.Count() != 0 {
		t.Fatal("empty histogram must read as zero")
	}
}

func TestSamplingAndSeriesCSV(t *testing.T) {
	o := New(Config{MetricsInterval: 10 * sim.Microsecond})
	var n uint64
	o.Registry().CounterFunc("n", func() uint64 { return n })
	o.Registry().GaugeFunc("g", func() float64 { return float64(n) / 2 })
	o.SampleMetrics(0)
	n = 4
	o.SampleMetrics(sim.Time(10 * sim.Microsecond))

	if o.Metrics().Len() != 2 {
		t.Fatalf("series len = %d", o.Metrics().Len())
	}
	var buf bytes.Buffer
	if err := o.Metrics().WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if lines[0] != "time_us,n,g" {
		t.Fatalf("header = %q", lines[0])
	}
	if lines[1] != "0.000,0,0" || lines[2] != "10.000,4,2" {
		t.Fatalf("rows = %q", lines[1:])
	}
}

func TestTracerSamplingAndLineAttribution(t *testing.T) {
	o := New(Config{TraceSampleN: 4})
	sink := &NullSink{}
	o.SetSink(sink)

	if !o.Tracing() {
		t.Fatal("Tracing() = false with TraceSampleN set")
	}
	for seq := uint64(0); seq < 8; seq++ {
		if got, want := o.TracingPacket(seq), seq%4 == 0; got != want {
			t.Fatalf("TracingPacket(%d) = %v, want %v", seq, got, want)
		}
	}

	o.MarkLines(4, mem.Region{Base: 0, Size: 128}) // lines 0 and 1
	o.LineEvent(EvPlace, 0, 0, 2, "LLC", 0)
	o.LineEvent(EvPlace, 0, 99, 2, "LLC", 0) // unmarked line: dropped
	if sink.Events != 1 {
		t.Fatalf("sink saw %d events, want 1 (unattributed line must be dropped)", sink.Events)
	}
	o.Emit(Event{Kind: EvRx, Seq: 4})
	if o.EventsEmitted() != 2 {
		t.Fatalf("EventsEmitted = %d", o.EventsEmitted())
	}
}

func TestNilAndDisabledObserverAreInert(t *testing.T) {
	for name, o := range map[string]*Observer{"nil": nil, "disabled": New(Config{})} {
		if o.Tracing() || o.TracingPacket(0) {
			t.Fatalf("%s observer reports tracing", name)
		}
		// None of these may panic.
		o.Emit(Event{Kind: EvRx})
		o.MarkLines(0, mem.Region{Base: 0, Size: 64})
		o.LineEvent(EvPlace, 0, 0, 0, "LLC", 0)
		o.SetSink(&NullSink{})
		if err := o.CloseSink(); err != nil {
			t.Fatalf("%s CloseSink: %v", name, err)
		}
		if o.EventsEmitted() != 0 {
			t.Fatalf("%s emitted events", name)
		}
		if o.MetricsInterval() != 0 {
			t.Fatalf("%s has a metrics interval", name)
		}
	}
	var o *Observer
	o.SampleMetrics(0)
	if o.Metrics() != nil || o.Registry() != nil {
		t.Fatal("nil observer exposes state")
	}
}

// journey emits a representative packet journey into the sink.
func journey(o *Observer) {
	o.MarkLines(0, mem.Region{Base: 4096, Size: 2048})
	o.Emit(Event{Kind: EvRx, Seq: 0, Core: 1, At: sim.Time(1 * sim.Microsecond), Bytes: 1500})
	o.Emit(Event{Kind: EvDMA, Seq: 0, Core: 1, At: sim.Time(1 * sim.Microsecond), Dur: 300 * sim.Nanosecond, Bytes: 1500})
	o.LineEvent(EvPlace, sim.Time(2*sim.Microsecond), 64, 1, "MLC", 10*sim.Nanosecond)
	o.LineEvent(EvPrefetch, sim.Time(2*sim.Microsecond), 64, 1, "fill", 0)
	o.LineEvent(EvInval, sim.Time(2*sim.Microsecond), 64, 1, "dma", 0)
	o.LineEvent(EvWriteback, sim.Time(3*sim.Microsecond), 64, 1, "", 0)
	o.Emit(Event{Kind: EvDrop, Seq: 0, Core: -1, At: sim.Time(3 * sim.Microsecond), Arg: "ring-full"})
	o.Emit(Event{
		Kind: EvDone, Seq: 0, Core: 1, At: sim.Time(5 * sim.Microsecond),
		Arrival: sim.Time(1 * sim.Microsecond), Ready: sim.Time(2 * sim.Microsecond), Start: sim.Time(3 * sim.Microsecond),
	})
	o.Emit(Event{Kind: EvFree, Seq: 0, Core: 1, At: sim.Time(5 * sim.Microsecond)})
}

func TestChromeSinkProducesValidTraceJSON(t *testing.T) {
	o := New(Config{TraceSampleN: 1})
	var buf bytes.Buffer
	o.SetSink(NewChromeSink(&buf))
	journey(o)
	if err := o.CloseSink(); err != nil {
		t.Fatal(err)
	}

	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, buf.String())
	}
	// MarkLines maps 32 lines but emits nothing; EvPlace on a marked
	// line must appear, and EvDone expands to three spans.
	phases := map[string]int{}
	names := map[string]int{}
	for _, ev := range doc.TraceEvents {
		ph, _ := ev["ph"].(string)
		name, _ := ev["name"].(string)
		phases[ph]++
		names[name]++
		if _, ok := ev["ts"].(float64); !ok && ph != "M" {
			t.Fatalf("event missing numeric ts: %v", ev)
		}
		if ph == "X" {
			if d, ok := ev["dur"].(float64); !ok || d < 0 {
				t.Fatalf("complete event with bad dur: %v", ev)
			}
		}
	}
	for _, want := range []string{"rx", "dma", "place", "prefetch", "inval", "writeback", "drop", "notify", "queue", "service", "free"} {
		if names[want] == 0 {
			t.Fatalf("trace missing %q events; got %v", want, names)
		}
	}
	if phases["M"] == 0 {
		t.Fatal("trace missing thread/process metadata")
	}
	if names["service"] != 1 || phases["X"] != 4 {
		t.Fatalf("span counts off: names=%v phases=%v", names, phases)
	}
}

func TestCSVSinkMatchesIdiotraceLayout(t *testing.T) {
	o := New(Config{TraceSampleN: 1})
	var buf bytes.Buffer
	o.SetSink(NewCSVSink(&buf))
	journey(o)
	if err := o.CloseSink(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if lines[0] != CSVHeader {
		t.Fatalf("header = %q", lines[0])
	}
	if len(lines) != 2 {
		t.Fatalf("CSV sink must keep only EvDone rows, got %d rows", len(lines)-1)
	}
	if lines[1] != "1,0,1.000,2.000,3.000,5.000,1.000,1.000,2.000,4.000" {
		t.Fatalf("row = %q", lines[1])
	}
}

// TestDisabledObserverZeroAllocs is the acceptance-criteria guard: with
// observability off (nil or disabled observer), every hot-path entry
// point must cost zero allocations.
func TestDisabledObserverZeroAllocs(t *testing.T) {
	for name, o := range map[string]*Observer{"nil": nil, "disabled": New(Config{})} {
		allocs := testing.AllocsPerRun(1000, func() {
			if o.Tracing() {
				t.Fatal("tracing unexpectedly on")
			}
			if o.TracingPacket(42) {
				t.Fatal("sampling unexpectedly on")
			}
			o.Emit(Event{Kind: EvRx, Seq: 42})
			o.LineEvent(EvPlace, 0, 42, 0, "LLC", 0)
			o.MarkLines(42, mem.Region{Base: 0, Size: 64})
		})
		if allocs != 0 {
			t.Fatalf("%s observer: %v allocs/op on disabled hot path, want 0", name, allocs)
		}
	}
}
