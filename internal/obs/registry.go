package obs

import (
	"fmt"
	"io"
	"math"
	"sort"

	"idio/internal/sim"
)

// MetricKind tells a consumer how to interpret a sample's value.
type MetricKind uint8

const (
	// KindCounter is a monotonically increasing integer count.
	KindCounter MetricKind = iota
	// KindGauge is an instantaneous float measurement.
	KindGauge
)

func (k MetricKind) String() string {
	if k == KindCounter {
		return "counter"
	}
	return "gauge"
}

type metric struct {
	name  string
	kind  MetricKind
	readU func() uint64
	readF func() float64
}

func (m metric) value() float64 {
	if m.kind == KindCounter {
		return float64(m.readU())
	}
	return m.readF()
}

// Sample is one metric's value at snapshot time.
type Sample struct {
	Name  string
	Kind  MetricKind
	Value float64
}

// Uint64 returns the counter value of a KindCounter sample.
func (s Sample) Uint64() uint64 { return uint64(s.Value) }

// Registry is an ordered collection of named metrics. Components
// register read closures over their existing counters at wiring time;
// snapshots walk the registry in registration order, which keeps every
// derived artifact (JSON results, metric CSVs) deterministic.
type Registry struct {
	metrics []metric
	index   map[string]int
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{index: make(map[string]int)}
}

func (r *Registry) add(m metric) {
	if r == nil {
		return
	}
	if _, dup := r.index[m.name]; dup {
		panic(fmt.Sprintf("obs: duplicate metric %q", m.name))
	}
	r.index[m.name] = len(r.metrics)
	r.metrics = append(r.metrics, m)
}

// CounterFunc registers a monotonic counter read through fn. The name
// should mirror the component's WriteStats key (e.g. "nic.rx_packets")
// so the two views agree. Duplicate names panic: registration happens
// once, at wiring time, and a collision is a programming error.
func (r *Registry) CounterFunc(name string, fn func() uint64) {
	r.add(metric{name: name, kind: KindCounter, readU: fn})
}

// GaugeFunc registers an instantaneous measurement read through fn.
func (r *Registry) GaugeFunc(name string, fn func() float64) {
	r.add(metric{name: name, kind: KindGauge, readF: fn})
}

// Counter registers and returns a registry-owned counter, for call
// sites that have no pre-existing component counter to wrap.
func (r *Registry) Counter(name string) *Counter {
	c := &Counter{}
	r.CounterFunc(name, c.Value)
	return c
}

// Histogram registers a registry-owned log-bucket histogram. It
// contributes four derived metrics — name.count (counter), name.mean,
// name.p50 and name.p99 (gauges) — to snapshots.
func (r *Registry) Histogram(name string) *Histogram {
	h := &Histogram{}
	r.CounterFunc(name+".count", func() uint64 { return h.count })
	r.GaugeFunc(name+".mean", h.Mean)
	r.GaugeFunc(name+".p50", func() float64 { return h.Quantile(0.50) })
	r.GaugeFunc(name+".p99", func() float64 { return h.Quantile(0.99) })
	return h
}

// Len returns the number of registered metrics.
func (r *Registry) Len() int {
	if r == nil {
		return 0
	}
	return len(r.metrics)
}

// Names returns metric names in registration order.
func (r *Registry) Names() []string {
	if r == nil {
		return nil
	}
	names := make([]string, len(r.metrics))
	for i, m := range r.metrics {
		names[i] = m.name
	}
	return names
}

// Lookup reads a single metric by name.
func (r *Registry) Lookup(name string) (Sample, bool) {
	if r == nil {
		return Sample{}, false
	}
	i, ok := r.index[name]
	if !ok {
		return Sample{}, false
	}
	m := r.metrics[i]
	return Sample{Name: m.name, Kind: m.kind, Value: m.value()}, true
}

// Snapshot reads every metric, in registration order.
func (r *Registry) Snapshot() []Sample {
	if r == nil {
		return nil
	}
	out := make([]Sample, len(r.metrics))
	for i, m := range r.metrics {
		out[i] = Sample{Name: m.name, Kind: m.kind, Value: m.value()}
	}
	return out
}

// Counter is a registry-owned monotonic counter.
type Counter struct{ n uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.n++ }

// Add adds d.
func (c *Counter) Add(d uint64) { c.n += d }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.n }

// Histogram accumulates non-negative integer observations (latencies
// in picoseconds, sizes in bytes) into power-of-two buckets. Quantiles
// are approximate — the geometric midpoint of the containing bucket —
// which is plenty for dashboard-grade percentiles and keeps Observe
// allocation-free and O(1).
type Histogram struct {
	buckets [65]uint64 // bucket i holds values with bit length i
	count   uint64
	sum     uint64
}

// Observe records one value.
func (h *Histogram) Observe(v uint64) {
	h.buckets[bitLen(v)]++
	h.count++
	h.sum += v
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count }

// Mean returns the exact arithmetic mean (0 when empty).
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Quantile returns the approximate q-quantile (q in [0,1], 0 when
// empty), resolved to the geometric midpoint of the matching bucket.
func (h *Histogram) Quantile(q float64) float64 {
	if h.count == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(h.count)))
	if rank == 0 {
		rank = 1
	}
	var seen uint64
	for i, n := range h.buckets {
		seen += n
		if seen >= rank {
			if i == 0 {
				return 0
			}
			lo := float64(uint64(1) << (i - 1))
			return lo * math.Sqrt2 // geometric mid of [2^(i-1), 2^i)
		}
	}
	return h.Mean()
}

func bitLen(v uint64) int {
	n := 0
	for v != 0 {
		v >>= 1
		n++
	}
	return n
}

// Series is a fixed-column time series of registry snapshots, one row
// per SampleMetrics call.
type Series struct {
	names []string
	times []sim.Time
	rows  [][]float64
}

func newSeries(names []string) *Series { return &Series{names: names} }

func (s *Series) record(now sim.Time, r *Registry) {
	row := make([]float64, len(s.names))
	for i, name := range s.names {
		if sm, ok := r.Lookup(name); ok {
			row[i] = sm.Value
		}
	}
	s.times = append(s.times, now)
	s.rows = append(s.rows, row)
}

// Len returns the number of recorded rows.
func (s *Series) Len() int {
	if s == nil {
		return 0
	}
	return len(s.rows)
}

// Names returns the column names (without the leading time column).
func (s *Series) Names() []string {
	if s == nil {
		return nil
	}
	return s.names
}

// Row returns the sample time (µs) and values of row i.
func (s *Series) Row(i int) (float64, []float64) {
	return s.times[i].Microseconds(), s.rows[i]
}

// WriteCSV writes the series as "time_us,<metric>,..." with one row
// per snapshot. Counter columns print as integers, gauges with three
// decimals, matching the registry's metric kinds by column order only
// when kinds are unknown here — so everything prints via %g, which
// round-trips exactly and loads cleanly in pandas/gnuplot.
func (s *Series) WriteCSV(w io.Writer) error {
	if s == nil {
		return nil
	}
	if _, err := fmt.Fprint(w, "time_us"); err != nil {
		return err
	}
	for _, n := range s.names {
		if _, err := fmt.Fprintf(w, ",%s", n); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintln(w); err != nil {
		return err
	}
	for i := range s.rows {
		if _, err := fmt.Fprintf(w, "%.3f", s.times[i].Microseconds()); err != nil {
			return err
		}
		for _, v := range s.rows[i] {
			if _, err := fmt.Fprintf(w, ",%g", v); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}

// SortedCopy returns the samples sorted by name — convenient for
// stable diffing in tests without disturbing registration order.
func SortedCopy(samples []Sample) []Sample {
	out := append([]Sample(nil), samples...)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
