package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"
)

// Sink consumes trace events. Sinks run only when tracing is enabled,
// so they may allocate and buffer freely; Close must flush.
type Sink interface {
	Emit(Event)
	Close() error
}

// NullSink counts events and discards them. It is the tracer's
// default sink and doubles as a cheap event counter in tests.
type NullSink struct{ Events uint64 }

// Emit discards e.
func (n *NullSink) Emit(Event) { n.Events++ }

// Close is a no-op.
func (n *NullSink) Close() error { return nil }

// Synthetic process IDs used to group trace tracks in Perfetto: core
// activity, NIC/PCIe activity, and cache/memory activity each get a
// process row, with one thread per core inside it.
const (
	pidCores  = 0
	pidNIC    = 1
	pidMem    = 2
	pidFabric = 3
)

var pidNames = map[int]string{
	pidCores:  "cores",
	pidNIC:    "nic/pcie",
	pidMem:    "cache/mem",
	pidFabric: "fabric",
}

// ChromeSink writes the Chrome trace-event JSON format (the
// "traceEvents" array form), loadable in Perfetto and chrome://tracing.
// Timestamps are microseconds with picosecond precision; packet
// service appears as notify/queue/service spans on the owning core's
// track, NIC DMA as spans on the NIC track, and cacheline placement,
// invalidation, prefetch and writeback as instants on the memory
// track.
type ChromeSink struct {
	w      *bufio.Writer
	closer io.Closer
	first  bool
	tracks map[[2]int]struct{} // (pid, tid) pairs seen
	err    error
}

// NewChromeSink writes trace JSON to w. If w is an io.Closer it is
// closed by Close.
func NewChromeSink(w io.Writer) *ChromeSink {
	s := &ChromeSink{w: bufio.NewWriter(w), first: true, tracks: make(map[[2]int]struct{})}
	if c, ok := w.(io.Closer); ok {
		s.closer = c
	}
	s.w.WriteString(`{"displayTimeUnit":"ns","traceEvents":[`)
	return s
}

func (s *ChromeSink) sep() {
	if s.first {
		s.first = false
		s.w.WriteByte('\n')
		return
	}
	s.w.WriteString(",\n")
}

// write emits one trace event object. ph is "i" (instant) or "X"
// (complete); args is pre-rendered JSON object members ("" for none).
func (s *ChromeSink) write(name string, ph byte, pid, tid int, tsUS, durUS float64, args string) {
	s.sep()
	s.tracks[[2]int{pid, tid}] = struct{}{}
	fmt.Fprintf(s.w, `{"name":%q,"ph":"%c","pid":%d,"tid":%d,"ts":%.6f`, name, ph, pid, tid, tsUS)
	if ph == 'X' {
		if durUS < 0 {
			durUS = 0
		}
		fmt.Fprintf(s.w, `,"dur":%.6f`, durUS)
	}
	if ph == 'i' {
		s.w.WriteString(`,"s":"t"`)
	}
	if args != "" {
		fmt.Fprintf(s.w, `,"args":{%s}`, args)
	}
	s.w.WriteByte('}')
}

func tid(core int) int {
	if core < 0 {
		return 0
	}
	return core
}

// Emit renders e as one or more trace events.
func (s *ChromeSink) Emit(e Event) {
	ts := e.At.Microseconds()
	switch e.Kind {
	case EvDone:
		// The queueing breakdown becomes three back-to-back spans on
		// the core's track so Perfetto shows where the latency went.
		seq := fmt.Sprintf(`"seq":%d`, e.Seq)
		s.write("notify", 'X', pidCores, tid(e.Core), e.Arrival.Microseconds(), e.Ready.Sub(e.Arrival).Microseconds(), seq)
		s.write("queue", 'X', pidCores, tid(e.Core), e.Ready.Microseconds(), e.Start.Sub(e.Ready).Microseconds(), seq)
		s.write("service", 'X', pidCores, tid(e.Core), e.Start.Microseconds(), e.At.Sub(e.Start).Microseconds(), seq)
	case EvDMA:
		s.write("dma", 'X', pidNIC, tid(e.Core), ts, e.Dur.Microseconds(),
			fmt.Sprintf(`"seq":%d,"bytes":%d`, e.Seq, e.Bytes))
	case EvRx:
		s.write("rx", 'i', pidNIC, tid(e.Core), ts, 0,
			fmt.Sprintf(`"seq":%d,"bytes":%d`, e.Seq, e.Bytes))
	case EvDrop:
		s.write("drop", 'i', pidNIC, tid(e.Core), ts, 0,
			fmt.Sprintf(`"seq":%d,"reason":%q`, e.Seq, e.Arg))
	case EvPlace:
		s.write("place", 'i', pidMem, tid(e.Core), ts, 0,
			fmt.Sprintf(`"seq":%d,"line":%d,"target":%q`, e.Seq, e.Line, e.Arg))
	case EvPrefetch:
		s.write("prefetch", 'i', pidMem, tid(e.Core), ts, 0,
			fmt.Sprintf(`"seq":%d,"line":%d,"outcome":%q`, e.Seq, e.Line, e.Arg))
	case EvInval:
		s.write("inval", 'i', pidMem, tid(e.Core), ts, 0,
			fmt.Sprintf(`"seq":%d,"line":%d,"kind":%q`, e.Seq, e.Line, e.Arg))
	case EvWriteback:
		s.write("writeback", 'i', pidMem, tid(e.Core), ts, 0,
			fmt.Sprintf(`"seq":%d,"line":%d`, e.Seq, e.Line))
	case EvFree:
		s.write("free", 'i', pidCores, tid(e.Core), ts, 0,
			fmt.Sprintf(`"seq":%d`, e.Seq))
	case EvLink:
		// The span ends at delivery time; shift back by Dur so it
		// covers egress queueing + serialization + propagation.
		s.write("link", 'X', pidFabric, 0, ts-e.Dur.Microseconds(), e.Dur.Microseconds(),
			fmt.Sprintf(`"seq":%d,"bytes":%d,"link":%q`, e.Seq, e.Bytes, e.Arg))
	case EvSwitch:
		s.write("switch", 'i', pidFabric, 0, ts, 0,
			fmt.Sprintf(`"seq":%d,"port":%d,"switch":%q`, e.Seq, tid(e.Core), e.Arg))
	}
}

// Close appends process/thread naming metadata, terminates the JSON
// document and flushes. Metadata order is sorted so output bytes are
// deterministic for a given event stream.
func (s *ChromeSink) Close() error {
	pids := make(map[int]struct{})
	tracks := make([][2]int, 0, len(s.tracks))
	for t := range s.tracks {
		tracks = append(tracks, t)
		pids[t[0]] = struct{}{}
	}
	sort.Slice(tracks, func(i, j int) bool {
		if tracks[i][0] != tracks[j][0] {
			return tracks[i][0] < tracks[j][0]
		}
		return tracks[i][1] < tracks[j][1]
	})
	pidList := make([]int, 0, len(pids))
	for p := range pids {
		pidList = append(pidList, p)
	}
	sort.Ints(pidList)
	for _, p := range pidList {
		s.sep()
		fmt.Fprintf(s.w, `{"name":"process_name","ph":"M","pid":%d,"tid":0,"args":{"name":%q}}`, p, pidNames[p])
	}
	for _, t := range tracks {
		s.sep()
		name := fmt.Sprintf("core %d", t[1])
		if t[0] == pidFabric {
			name = "wire"
		}
		fmt.Fprintf(s.w, `{"name":"thread_name","ph":"M","pid":%d,"tid":%d,"args":{"name":%q}}`, t[0], t[1], name)
	}
	s.w.WriteString("\n]}\n")
	if err := s.w.Flush(); err != nil {
		return err
	}
	if s.closer != nil {
		return s.closer.Close()
	}
	return nil
}

// CSVSink writes one row per completed packet in the column layout
// cmd/idiotrace has always produced; all other event kinds are
// ignored. Rows appear in completion order.
type CSVSink struct {
	w      *bufio.Writer
	closer io.Closer
}

// CSVHeader is the per-packet column layout shared with idiotrace.
const CSVHeader = "core,seq,arrival_us,ready_us,start_us,done_us,notify_us,queue_us,service_us,total_us"

// NewCSVSink writes per-packet CSV to w. If w is an io.Closer it is
// closed by Close.
func NewCSVSink(w io.Writer) *CSVSink {
	s := &CSVSink{w: bufio.NewWriter(w)}
	if c, ok := w.(io.Closer); ok {
		s.closer = c
	}
	s.w.WriteString(CSVHeader + "\n")
	return s
}

// Emit writes EvDone events as CSV rows and ignores everything else.
func (s *CSVSink) Emit(e Event) {
	if e.Kind != EvDone {
		return
	}
	fmt.Fprintf(s.w, "%d,%d,%.3f,%.3f,%.3f,%.3f,%.3f,%.3f,%.3f,%.3f\n",
		e.Core, e.Seq,
		e.Arrival.Microseconds(), e.Ready.Microseconds(),
		e.Start.Microseconds(), e.At.Microseconds(),
		e.Ready.Sub(e.Arrival).Microseconds(),
		e.Start.Sub(e.Ready).Microseconds(),
		e.At.Sub(e.Start).Microseconds(),
		e.At.Sub(e.Arrival).Microseconds())
}

// Close flushes the writer.
func (s *CSVSink) Close() error {
	if err := s.w.Flush(); err != nil {
		return err
	}
	if s.closer != nil {
		return s.closer.Close()
	}
	return nil
}
