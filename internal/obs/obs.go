// Package obs is the simulator-wide observability layer: a metric
// registry every component registers its counters and gauges into, a
// periodic time-series sampler over that registry, and a sampled
// structured event tracer that follows a packet's journey through the
// system — NIC DMA → PCIe TLP placement (LLC/DDIO, MLC hint, or DRAM
// detour) → MLC prefetch → core service → free — with pluggable sinks
// (Chrome trace-event JSON for Perfetto, per-packet CSV, null).
//
// The layer is designed to cost nothing when disabled: components hold
// a *Observer and guard every emission behind Tracing/TracingPacket,
// which compile to a couple of pointer loads and a branch (zero
// allocations — enforced by TestDisabledObserverZeroAllocs and the
// benchmarks in bench_test.go). A nil *Observer is valid and inert, so
// hand-wired components need no observability plumbing at all.
package obs

import (
	"idio/internal/mem"
	"idio/internal/sim"
)

// Config enables the optional observability features. The zero value
// disables everything (the registry itself is always available).
type Config struct {
	// TraceSampleN enables the structured event tracer, sampling every
	// N-th packet by generator sequence number (1 traces everything,
	// 0 disables tracing).
	TraceSampleN int
	// MetricsInterval enables periodic registry snapshots at this
	// simulated period (0 disables time-series collection).
	MetricsInterval sim.Duration
}

// Enabled reports whether any optional feature is on.
func (c Config) Enabled() bool { return c.TraceSampleN > 0 || c.MetricsInterval > 0 }

// Observer is the single handle components observe through: metric
// registration, trace emission, and periodic sampling. All methods are
// safe on a nil receiver (every call becomes a no-op), so wiring code
// may pass observers around unconditionally.
type Observer struct {
	reg      *Registry
	tr       *Tracer
	interval sim.Duration
	series   *Series
}

// New builds an observer with an empty registry. The tracer starts
// with a NullSink; attach a real sink with SetSink before running.
func New(cfg Config) *Observer {
	o := &Observer{reg: NewRegistry(), interval: cfg.MetricsInterval}
	if cfg.TraceSampleN > 0 {
		o.tr = newTracer(uint64(cfg.TraceSampleN), &NullSink{})
	}
	return o
}

// Registry returns the metric registry (nil on a nil observer).
func (o *Observer) Registry() *Registry {
	if o == nil {
		return nil
	}
	return o.reg
}

// Tracing reports whether the structured tracer is active. Hot paths
// branch on this before assembling line-level events.
func (o *Observer) Tracing() bool { return o != nil && o.tr != nil }

// TracingPacket reports whether the packet with the given sequence
// number is in the trace sample. Hot paths branch on this before
// assembling packet-level events.
func (o *Observer) TracingPacket(seq uint64) bool {
	return o != nil && o.tr != nil && seq%o.tr.sampleN == 0
}

// SetSink replaces the tracer's sink. It is a no-op when tracing is
// disabled; callers own the sink's lifecycle (call its Close after the
// run, or CloseSink to close through the observer).
func (o *Observer) SetSink(s Sink) {
	if o == nil || o.tr == nil || s == nil {
		return
	}
	o.tr.sink = s
}

// CloseSink flushes and closes the tracer's sink, returning its error.
func (o *Observer) CloseSink() error {
	if o == nil || o.tr == nil {
		return nil
	}
	return o.tr.sink.Close()
}

// Emit forwards a fully-formed event to the sink. Callers must have
// checked Tracing/TracingPacket; Emit itself tolerates a disabled
// tracer so guards can stay coarse.
func (o *Observer) Emit(e Event) {
	if o == nil || o.tr == nil {
		return
	}
	o.tr.emit(e)
}

// MarkLines associates every cacheline of a region with a sampled
// packet, so later line-level events (TLP placement, writebacks,
// prefetches) can be attributed to the packet's journey. Ring buffers
// are reused, so a line's attribution is simply overwritten when the
// next sampled packet lands in the same slot.
func (o *Observer) MarkLines(seq uint64, r mem.Region) {
	if o == nil || o.tr == nil {
		return
	}
	r.Lines(func(l mem.LineAddr) { o.tr.lines[uint64(l)] = seq })
}

// LineEvent emits an event for a cacheline if — and only if — the line
// belongs to a sampled packet's journey. Unattributed lines are
// dropped, which is what keeps tracing cheap at full DMA rate.
func (o *Observer) LineEvent(kind EventKind, at sim.Time, line uint64, core int, arg string, dur sim.Duration) {
	if o == nil || o.tr == nil {
		return
	}
	seq, ok := o.tr.lines[line]
	if !ok {
		return
	}
	o.tr.emit(Event{Kind: kind, Seq: seq, Core: core, At: at, Dur: dur, Line: line, Arg: arg})
}

// EventsEmitted returns how many events reached the sink.
func (o *Observer) EventsEmitted() uint64 {
	if o == nil || o.tr == nil {
		return 0
	}
	return o.tr.emitted
}

// MetricsInterval returns the configured snapshot period (0 when
// time-series collection is off).
func (o *Observer) MetricsInterval() sim.Duration {
	if o == nil {
		return 0
	}
	return o.interval
}

// SampleMetrics appends one registry snapshot to the metric series at
// simulated time now. The column set is frozen on the first call.
func (o *Observer) SampleMetrics(now sim.Time) {
	if o == nil {
		return
	}
	if o.series == nil {
		o.series = newSeries(o.reg.Names())
	}
	o.series.record(now, o.reg)
}

// Metrics returns the collected time series (nil when SampleMetrics
// never ran).
func (o *Observer) Metrics() *Series {
	if o == nil {
		return nil
	}
	return o.series
}
