package obs

import "idio/internal/sim"

// EventKind identifies a stage of a packet's journey through the
// simulated machine.
type EventKind uint8

const (
	// EvRx: the NIC admitted a packet into an RX ring.
	EvRx EventKind = iota
	// EvDrop: the packet was dropped (Arg carries the reason).
	EvDrop
	// EvDMA: the paced DMA of the packet's payload and descriptor
	// lines over PCIe (a span: At..At+Dur).
	EvDMA
	// EvPlace: a TLP placement decision for one cacheline (Arg is the
	// steering target — LLC, MLC, or DRAM; Dur is the write latency).
	EvPlace
	// EvPrefetch: the IDIO controller prefetched the line into an MLC
	// (Arg "fill") or the hint was dropped (Arg "drop").
	EvPrefetch
	// EvInval: inbound DMA invalidated an MLC- or LLC-resident copy of
	// the line (Arg names the mechanism).
	EvInval
	// EvWriteback: the line was written back toward DRAM.
	EvWriteback
	// EvDone: a core finished serving the packet. Arrival, Ready and
	// Start carry the queueing breakdown; At is completion time.
	EvDone
	// EvFree: the slot returned to the NIC (self-invalidation happens
	// here under the Invalidate/IDIO policies).
	EvFree
	// EvLink: a fabric link delivered the packet (a span: Dur covers
	// egress queueing + serialization + propagation; Arg is the link
	// name).
	EvLink
	// EvSwitch: the fabric switch forwarded the packet (Core carries
	// the output port; Arg is the switch name).
	EvSwitch
)

var kindNames = [...]string{
	EvRx:        "rx",
	EvDrop:      "drop",
	EvDMA:       "dma",
	EvPlace:     "place",
	EvPrefetch:  "prefetch",
	EvInval:     "inval",
	EvWriteback: "writeback",
	EvDone:      "service",
	EvFree:      "free",
	EvLink:      "link",
	EvSwitch:    "switch",
}

func (k EventKind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "unknown"
}

// Event is one structured trace record. It is passed by value through
// Observer.Emit into the sink, so emitting an event never allocates;
// Arg must therefore be a static label, not a formatted string.
type Event struct {
	Kind  EventKind
	Seq   uint64       // packet sequence number
	Core  int          // destination core (-1 when unknown)
	At    sim.Time     // event time (completion time for spans)
	Dur   sim.Duration // span length (EvDMA, EvPlace, EvDone phases)
	Line  uint64       // cacheline address for line-level events
	Bytes int          // payload size where meaningful
	Arg   string       // static label: steering target, drop reason, ...

	// Queueing breakdown, EvDone only.
	Arrival sim.Time // wire arrival
	Ready   sim.Time // descriptor visible to the core
	Start   sim.Time // service began
}

// Tracer samples packets by sequence number and forwards their events
// to the configured sink. The line map attributes cacheline-level
// events (placement, writeback, prefetch) back to the sampled packet
// that owns the line; unsampled lines simply miss the map.
type Tracer struct {
	sampleN uint64
	sink    Sink
	lines   map[uint64]uint64 // line address → packet seq
	emitted uint64
}

func newTracer(sampleN uint64, sink Sink) *Tracer {
	return &Tracer{sampleN: sampleN, sink: sink, lines: make(map[uint64]uint64)}
}

func (t *Tracer) emit(e Event) {
	t.emitted++
	t.sink.Emit(e)
}
