// Package scenario loads declarative simulation scenarios from JSON,
// so users can describe custom systems and workloads without writing
// Go. The schema covers the knobs the paper's evaluation varies:
// policy, cache geometry, ring size, thresholds, workloads per core,
// traffic shapes, and the optional LLC antagonist.
//
// Example:
//
//	{
//	  "name": "two-touchdrop-idio",
//	  "policy": "IDIO",
//	  "cores": 2,
//	  "ringSize": 1024,
//	  "horizonMS": 9,
//	  "nfs": [
//	    {"core": 0, "app": "TouchDrop", "frameLen": 1514,
//	     "traffic": {"kind": "bursty", "gbps": 25, "packetsPerBurst": 1024, "numBursts": 1}},
//	    {"core": 1, "app": "L2Fwd", "frameLen": 1024,
//	     "traffic": {"kind": "steady", "gbps": 10, "count": 4096}}
//	  ]
//	}
package scenario

import (
	"encoding/json"
	"fmt"
	"io"

	"idio"
	"idio/internal/apps"
	idiocore "idio/internal/core"
	"idio/internal/cpu"
	"idio/internal/obs"
	"idio/internal/sim"
	"idio/internal/traffic"
)

// Traffic describes one flow's arrival process.
type Traffic struct {
	// Kind is "steady" or "bursty".
	Kind string  `json:"kind"`
	Gbps float64 `json:"gbps"`
	// Count bounds a steady stream (packets).
	Count uint64 `json:"count,omitempty"`
	// PacketsPerBurst/NumBursts/PeriodMS shape a bursty stream.
	PacketsPerBurst int     `json:"packetsPerBurst,omitempty"`
	NumBursts       int     `json:"numBursts,omitempty"`
	PeriodMS        float64 `json:"periodMS,omitempty"`
}

// NF binds an application and its traffic to a core.
type NF struct {
	Core     int     `json:"core"`
	App      string  `json:"app"` // TouchDrop | L2Fwd | L2FwdQueued | L2FwdDropPayload | CopyNF | NAT | ReallocNF
	FrameLen int     `json:"frameLen,omitempty"`
	DSCP     uint8   `json:"dscp,omitempty"`
	Traffic  Traffic `json:"traffic"`
}

// Antagonist adds the LLC-thrashing co-runner.
type Antagonist struct {
	Core  int `json:"core"`
	BufKB int `json:"bufKB"`
	MLCKB int `json:"mlcKB,omitempty"`
}

// Scenario is the root document.
type Scenario struct {
	Name   string `json:"name"`
	Policy string `json:"policy"` // DDIO | Invalidate | Prefetch | Static | IDIO
	Cores  int    `json:"cores"`

	RingSize  int     `json:"ringSize,omitempty"`
	LLCSizeKB int     `json:"llcSizeKB,omitempty"`
	MLCSizeKB int     `json:"mlcSizeKB,omitempty"`
	DDIOWays  int     `json:"ddioWays,omitempty"`
	MLCTHR    uint64  `json:"mlcTHR,omitempty"`
	Driver    string  `json:"driver,omitempty"` // polling (default) | interrupt
	HorizonMS float64 `json:"horizonMS"`
	// ClassOneDSCPs marks application-class-1 code points.
	ClassOneDSCPs []uint8 `json:"classOneDSCPs,omitempty"`
	// TracePackets enables per-packet stage tracing, retaining up to
	// this many records per core.
	TracePackets int `json:"tracePackets,omitempty"`

	NFs        []NF        `json:"nfs"`
	Antagonist *Antagonist `json:"antagonist,omitempty"`
}

// Save writes the scenario as indented JSON (the inverse of Load).
func (sc Scenario) Save(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(sc)
}

// Load parses and validates a scenario document.
func Load(r io.Reader) (Scenario, error) {
	var sc Scenario
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&sc); err != nil {
		return sc, fmt.Errorf("scenario: %w", err)
	}
	if err := sc.Validate(); err != nil {
		return sc, err
	}
	return sc, nil
}

// Validate checks internal consistency.
func (sc Scenario) Validate() error {
	if sc.Cores <= 0 {
		return fmt.Errorf("scenario %q: cores must be positive", sc.Name)
	}
	if _, err := sc.policy(); err != nil {
		return err
	}
	if sc.HorizonMS <= 0 {
		return fmt.Errorf("scenario %q: horizonMS must be positive", sc.Name)
	}
	if len(sc.NFs) == 0 {
		return fmt.Errorf("scenario %q: at least one NF required", sc.Name)
	}
	switch sc.Driver {
	case "", "polling", "interrupt":
	default:
		return fmt.Errorf("scenario %q: unknown driver %q", sc.Name, sc.Driver)
	}
	seen := map[int]bool{}
	for i, nf := range sc.NFs {
		if nf.Core < 0 || nf.Core >= sc.Cores {
			return fmt.Errorf("scenario %q: nf %d core %d out of range", sc.Name, i, nf.Core)
		}
		if seen[nf.Core] {
			return fmt.Errorf("scenario %q: core %d has two NFs", sc.Name, nf.Core)
		}
		seen[nf.Core] = true
		if _, err := appFor(nf.App, nil); err != nil {
			return fmt.Errorf("scenario %q: nf %d: %w", sc.Name, i, err)
		}
		switch nf.Traffic.Kind {
		case "steady":
			if nf.Traffic.Count == 0 {
				return fmt.Errorf("scenario %q: nf %d steady traffic needs count", sc.Name, i)
			}
		case "bursty":
			if nf.Traffic.PacketsPerBurst <= 0 || nf.Traffic.NumBursts <= 0 {
				return fmt.Errorf("scenario %q: nf %d bursty traffic needs packetsPerBurst and numBursts", sc.Name, i)
			}
		default:
			return fmt.Errorf("scenario %q: nf %d unknown traffic kind %q", sc.Name, i, nf.Traffic.Kind)
		}
		if nf.Traffic.Gbps <= 0 {
			return fmt.Errorf("scenario %q: nf %d needs a positive rate", sc.Name, i)
		}
	}
	if sc.Antagonist != nil {
		if sc.Antagonist.Core < 0 || sc.Antagonist.Core >= sc.Cores {
			return fmt.Errorf("scenario %q: antagonist core out of range", sc.Name)
		}
		if seen[sc.Antagonist.Core] {
			return fmt.Errorf("scenario %q: antagonist shares core %d with an NF", sc.Name, sc.Antagonist.Core)
		}
		if sc.Antagonist.BufKB <= 0 {
			return fmt.Errorf("scenario %q: antagonist needs bufKB", sc.Name)
		}
	}
	return nil
}

func (sc Scenario) policy() (idiocore.Policy, error) {
	switch sc.Policy {
	case "DDIO", "":
		return idiocore.PolicyDDIO, nil
	case "Invalidate":
		return idiocore.PolicyInvalidate, nil
	case "Prefetch":
		return idiocore.PolicyPrefetch, nil
	case "Static":
		return idiocore.PolicyStatic, nil
	case "IDIO":
		return idiocore.PolicyIDIO, nil
	default:
		return idiocore.Policy{}, fmt.Errorf("scenario %q: unknown policy %q", sc.Name, sc.Policy)
	}
}

func appFor(name string, sys *idio.System) (cpu.App, error) {
	switch name {
	case "TouchDrop":
		return apps.TouchDrop{}, nil
	case "L2Fwd":
		return apps.L2Fwd{}, nil
	case "L2FwdQueued":
		return &apps.L2FwdQueued{}, nil
	case "L2FwdDropPayload":
		return apps.L2FwdDropPayload{}, nil
	case "CopyNF":
		if sys == nil {
			return &apps.CopyNF{}, nil // validation pass
		}
		return &apps.CopyNF{Dst: sys.AllocRegion(1 << 20)}, nil
	case "NAT":
		if sys == nil {
			return &apps.NAT{}, nil // validation pass
		}
		return &apps.NAT{Table: sys.AllocRegion(4 << 20)}, nil
	case "ReallocNF":
		return &apps.ReallocNF{}, nil
	default:
		return nil, fmt.Errorf("unknown app %q", name)
	}
}

// RunOpts carries run-time observability options that are deliberately
// not part of the scenario document: the same scenario file can be run
// untraced (production figures) or traced (debugging) without edits.
type RunOpts struct {
	// TraceSampleN > 0 enables the packet-journey tracer, following
	// every Nth packet (1 = all).
	TraceSampleN int
	// TraceSink receives trace events when tracing is enabled; nil
	// leaves the counting NullSink. The caller owns closing it.
	TraceSink obs.Sink
	// MetricsInterval > 0 records a metric-registry snapshot at this
	// period (see Results.MetricSeries).
	MetricsInterval sim.Duration
}

// Run builds, executes, and summarises the scenario. It returns the
// run results and the antagonist's CPI (zero when not configured).
func Run(sc Scenario) (idio.Results, float64, error) {
	_, res, cpi, err := RunSystem(sc)
	return res, cpi, err
}

// RunSystem is Run but additionally returns the live system so callers
// can inspect post-run state (per-packet traces, cache occupancies).
func RunSystem(sc Scenario) (*idio.System, idio.Results, float64, error) {
	return RunSystemOpts(sc, RunOpts{})
}

// RunSystemOpts is RunSystem with observability options layered on
// top of the scenario document.
func RunSystemOpts(sc Scenario, opts RunOpts) (*idio.System, idio.Results, float64, error) {
	pol, err := sc.policy()
	if err != nil {
		return nil, idio.Results{}, 0, err
	}
	cfg := idio.DefaultConfig(sc.Cores)
	cfg.Policy = pol
	if sc.RingSize > 0 {
		cfg.NIC.RingSize = sc.RingSize
	}
	if sc.LLCSizeKB > 0 {
		cfg.Hier.LLCSize = sc.LLCSizeKB << 10
	}
	if sc.MLCSizeKB > 0 {
		cfg.Hier.MLCSize = sc.MLCSizeKB << 10
	}
	if sc.DDIOWays > 0 {
		cfg.Hier.DDIOWays = sc.DDIOWays
	}
	if sc.MLCTHR > 0 {
		cfg.Controller.MLCTHR = sc.MLCTHR
	}
	if len(sc.ClassOneDSCPs) > 0 {
		cfg.Classifier.ClassOneDSCPs = sc.ClassOneDSCPs
	}
	if sc.Driver == "interrupt" {
		cfg.CPU.Driver = cpu.DriverInterrupt
	}
	if sc.TracePackets > 0 {
		cfg.CPU.TraceCapacity = sc.TracePackets
	}
	if sc.Antagonist != nil && sc.Antagonist.MLCKB > 0 {
		sizes := make([]int, sc.Cores)
		sizes[sc.Antagonist.Core] = sc.Antagonist.MLCKB << 10
		cfg.Hier.MLCSizePerCore = sizes
	}
	cfg.Obs.TraceSampleN = opts.TraceSampleN
	cfg.Obs.MetricsInterval = opts.MetricsInterval

	sys := idio.NewSystem(cfg)
	if opts.TraceSink != nil {
		sys.Observe().SetSink(opts.TraceSink)
	}
	for _, nf := range sc.NFs {
		app, err := appFor(nf.App, sys)
		if err != nil {
			return nil, idio.Results{}, 0, err
		}
		flow := sys.DefaultFlow(nf.Core)
		if nf.FrameLen > 0 {
			flow.FrameLen = nf.FrameLen
		}
		flow.DSCP = nf.DSCP
		if _, isRealloc := app.(*apps.ReallocNF); isRealloc {
			// The re-allocate mode needs pooled rings on every port.
			for _, port := range sys.Ports() {
				port.Ring(nf.Core).AttachPool(sys.NewMbufPool(2 * cfg.NIC.RingSize))
			}
		}
		sys.AddNF(nf.Core, app, flow)
		switch nf.Traffic.Kind {
		case "steady":
			traffic.Steady{
				Flow: flow, RateBps: traffic.Gbps(nf.Traffic.Gbps), Count: nf.Traffic.Count,
			}.Install(sys.Sim, sys.NIC)
		case "bursty":
			period := nf.Traffic.PeriodMS
			if period == 0 {
				period = 10
			}
			traffic.Bursty{
				Flow:            flow,
				BurstRateBps:    traffic.Gbps(nf.Traffic.Gbps),
				Period:          sim.Duration(period * float64(sim.Millisecond)),
				PacketsPerBurst: nf.Traffic.PacketsPerBurst,
				NumBursts:       nf.Traffic.NumBursts,
			}.Install(sys.Sim, sys.NIC)
		}
	}
	var ant *apps.LLCAntagonist
	if sc.Antagonist != nil {
		buf := sys.AllocRegion(uint64(sc.Antagonist.BufKB) << 10)
		ant = apps.NewLLCAntagonist(sc.Antagonist.Core, buf, cfg.Hier.Clock, sys.Hier, 1)
	}
	sys.Start()
	if ant != nil {
		ant.Start(sys.Sim)
	}
	res := sys.RunUntilIdle(sim.Duration(sc.HorizonMS * float64(sim.Millisecond)))
	cpi := 0.0
	if ant != nil {
		cpi = ant.CPI()
	}
	return sys, res, cpi, nil
}
