// Package scenario loads declarative simulation scenarios from JSON,
// so users can describe custom systems and workloads without writing
// Go. The schema covers the knobs the paper's evaluation varies:
// policy, cache geometry, ring size, thresholds, workloads per core,
// traffic shapes, and the optional LLC antagonist.
//
// Example:
//
//	{
//	  "name": "two-touchdrop-idio",
//	  "policy": "IDIO",
//	  "cores": 2,
//	  "ringSize": 1024,
//	  "horizonMS": 9,
//	  "nfs": [
//	    {"core": 0, "app": "TouchDrop", "frameLen": 1514,
//	     "traffic": {"kind": "bursty", "gbps": 25, "packetsPerBurst": 1024, "numBursts": 1}},
//	    {"core": 1, "app": "L2Fwd", "frameLen": 1024,
//	     "traffic": {"kind": "steady", "gbps": 10, "count": 4096}}
//	  ]
//	}
package scenario

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"idio"
	"idio/internal/apps"
	idiocore "idio/internal/core"
	"idio/internal/cpu"
	"idio/internal/fault"
	fnet "idio/internal/net"
	"idio/internal/obs"
	"idio/internal/qos"
	"idio/internal/sim"
	"idio/internal/traffic"
)

// Traffic describes one flow's arrival process.
type Traffic struct {
	// Kind is "steady" or "bursty".
	Kind string  `json:"kind"`
	Gbps float64 `json:"gbps"`
	// Count bounds a steady stream (packets).
	Count uint64 `json:"count,omitempty"`
	// PacketsPerBurst/NumBursts/PeriodMS shape a bursty stream.
	PacketsPerBurst int     `json:"packetsPerBurst,omitempty"`
	NumBursts       int     `json:"numBursts,omitempty"`
	PeriodMS        float64 `json:"periodMS,omitempty"`
}

// NF binds an application and its traffic to a core.
type NF struct {
	Core     int     `json:"core"`
	App      string  `json:"app"` // TouchDrop | L2Fwd | L2FwdQueued | L2FwdDropPayload | CopyNF | NAT | ReallocNF
	FrameLen int     `json:"frameLen,omitempty"`
	DSCP     uint8   `json:"dscp,omitempty"`
	Traffic  Traffic `json:"traffic"`
}

// Antagonist adds the LLC-thrashing co-runner.
type Antagonist struct {
	Core  int `json:"core"`
	BufKB int `json:"bufKB"`
	MLCKB int `json:"mlcKB,omitempty"`
}

// TopoLink describes one fabric link class.
type TopoLink struct {
	Gbps float64 `json:"gbps"`
	// DelayUS is the one-way propagation delay in microseconds.
	DelayUS float64 `json:"delayUS,omitempty"`
	// Queue bounds the egress queue in packets (0 = default 256).
	Queue int `json:"queue,omitempty"`
	// AQMTargetUS > 0 enables the CoDel-style queue manager on links
	// of this class (sojourn target, microseconds); AQMIntervalUS is
	// its observation interval (0 = 100us default).
	AQMTargetUS   float64 `json:"aqmTargetUS,omitempty"`
	AQMIntervalUS float64 `json:"aqmIntervalUS,omitempty"`
}

// LinkConfig converts to the fabric's link template (Name assigned
// per slot by the cluster).
func (l TopoLink) LinkConfig() fnet.LinkConfig {
	return fnet.LinkConfig{
		RateBps:     traffic.Gbps(l.Gbps),
		Delay:       sim.Duration(l.DelayUS * float64(sim.Microsecond)),
		QueueDepth:  l.Queue,
		AQMTarget:   sim.Duration(l.AQMTargetUS * float64(sim.Microsecond)),
		AQMInterval: sim.Duration(l.AQMIntervalUS * float64(sim.Microsecond)),
	}
}

// RPCSpec installs a closed/open-loop RPC client on every client host:
// requests travel the fabric to the DUT, each NF core echoes them
// back, and end-to-end latency is measured at the clients. Clients
// round-robin over the NF cores.
type RPCSpec struct {
	// Mode is "open", "closed", or "ramp".
	Mode string `json:"mode"`
	// Gbps is the aggregate open-loop offered load across clients
	// (open/ramp); RampToGbps is the final aggregate rate for ramp.
	Gbps       float64 `json:"gbps,omitempty"`
	RampToGbps float64 `json:"rampToGbps,omitempty"`
	// Outstanding is the per-client closed-loop window.
	Outstanding int `json:"outstanding,omitempty"`
	// Requests is the per-client request budget.
	Requests uint64 `json:"requests"`
	FrameLen int    `json:"frameLen,omitempty"`
	// TimeoutUS bounds the per-request response wait (0 = 1000).
	TimeoutUS float64 `json:"timeoutUS,omitempty"`
	// Retry enables exponential-backoff retransmission (and optional
	// hedging) on every client; omitted keeps the legacy blind reissue.
	Retry *RetrySpec `json:"retry,omitempty"`
}

// RetrySpec is the JSON form of fnet.RetryConfig. Client i derives its
// jitter stream from Seed+i so concurrent clients do not phase-lock.
type RetrySpec struct {
	MaxRetries   int     `json:"maxRetries"`
	BackoffUS    float64 `json:"backoffUS,omitempty"`
	MaxBackoffUS float64 `json:"maxBackoffUS,omitempty"`
	JitterFrac   float64 `json:"jitterFrac,omitempty"`
	Seed         int64   `json:"seed,omitempty"`
	HedgeUS      float64 `json:"hedgeUS,omitempty"`
}

// config converts to the client-level retry config for client i.
func (r *RetrySpec) config(i int) *fnet.RetryConfig {
	return &fnet.RetryConfig{
		MaxRetries: r.MaxRetries,
		Backoff:    sim.Duration(r.BackoffUS * float64(sim.Microsecond)),
		MaxBackoff: sim.Duration(r.MaxBackoffUS * float64(sim.Microsecond)),
		JitterFrac: r.JitterFrac,
		Seed:       r.Seed + int64(i),
		Hedge:      sim.Duration(r.HedgeUS * float64(sim.Microsecond)),
	}
}

// ChurnSpec installs a flow-churn client on every client host (see
// fnet.ChurnConfig): Flows concurrent flows in aggregate — split
// evenly across clients — each issuing a Zipf-drawn request budget
// with exponential think times, departing when spent and replaced by
// a fresh flow after an exponential gap. Flow state lives in compact
// flow tables and every deadline on hashed timer wheels, so the
// population scales to a million flows. Churn flows are steered by
// RSS (no per-flow filter rules — the key space is too large), and
// the first churn client arms the NIC's per-flow statistics table.
// Mutually exclusive with the rpc section (both claim client slots).
type ChurnSpec struct {
	// Flows is the aggregate concurrent flow population; Requests the
	// aggregate wire-transmission budget. Both split evenly across the
	// topology's clients (remainders to the lowest slots).
	Flows    int    `json:"flows"`
	Requests uint64 `json:"requests"`
	// TimeoutUS bounds the per-request response wait (0 = 1000).
	TimeoutUS float64 `json:"timeoutUS,omitempty"`
	// ThinkUS is the mean think time between a flow's requests
	// (0 = 1000); ArrivalGapUS the mean departure→replacement gap
	// (0 = ThinkUS).
	ThinkUS      float64 `json:"thinkUS,omitempty"`
	ArrivalGapUS float64 `json:"arrivalGapUS,omitempty"`
	// SizeZipfS (>1, 0 = 1.2), MiceFrac (0 = 0.9), MiceMax (0 = 8) and
	// SizeMax (0 = 128) shape the per-flow budget distribution.
	SizeZipfS float64 `json:"sizeZipfS,omitempty"`
	MiceFrac  float64 `json:"miceFrac,omitempty"`
	MiceMax   uint64  `json:"miceMax,omitempty"`
	SizeMax   uint64  `json:"sizeMax,omitempty"`
	// DSCPs round-robin per-flow service classes (empty = DSCP 0).
	DSCPs []uint8 `json:"dscps,omitempty"`
	// SrcPorts/DstPorts size the per-flow port spaces (0 = 16384/1).
	SrcPorts int `json:"srcPorts,omitempty"`
	DstPorts int `json:"dstPorts,omitempty"`
	// Seed drives each client's PRNG (client i uses Seed+i).
	Seed     int64 `json:"seed,omitempty"`
	FrameLen int   `json:"frameLen,omitempty"`
	// WheelGranUS and WheelSlots shape the timer wheels (0 = 64us,
	// 4096 slots).
	WheelGranUS float64 `json:"wheelGranUS,omitempty"`
	WheelSlots  int     `json:"wheelSlots,omitempty"`
}

// config converts to the client-level churn config for client i of
// nClients (splitting the aggregate population and budget).
func (c *ChurnSpec) config(i, nClients int) fnet.ChurnConfig {
	share := func(total uint64) uint64 {
		n := total / uint64(nClients)
		if uint64(i) < total%uint64(nClients) {
			n++
		}
		return n
	}
	return fnet.ChurnConfig{
		Flows:      int(share(uint64(c.Flows))),
		Requests:   share(c.Requests),
		Timeout:    sim.Duration(c.TimeoutUS * float64(sim.Microsecond)),
		Think:      sim.Duration(c.ThinkUS * float64(sim.Microsecond)),
		ArrivalGap: sim.Duration(c.ArrivalGapUS * float64(sim.Microsecond)),
		SizeZipfS:  c.SizeZipfS,
		MiceFrac:   c.MiceFrac,
		MiceMax:    c.MiceMax,
		SizeMax:    c.SizeMax,
		DSCPs:      c.DSCPs,
		SrcPorts:   c.SrcPorts,
		DstPorts:   c.DstPorts,
		Seed:       c.Seed + int64(i),
		WheelGran:  sim.Duration(c.WheelGranUS * float64(sim.Microsecond)),
		WheelSlots: c.WheelSlots,
	}
}

// Topology switches the scenario from a single host to a multi-host
// cluster: N client hosts reach the DUT through a switch over
// point-to-point links. NF generator traffic (when present) is routed
// through the fabric — client uplink → switch → server downlink → NIC
// — instead of injected directly, and an optional RPC section drives
// request/response load measured end to end.
type Topology struct {
	Clients    int        `json:"clients"`
	ClientLink TopoLink   `json:"clientLink"`
	ServerLink TopoLink   `json:"serverLink"`
	RPC        *RPCSpec   `json:"rpc,omitempty"`
	Churn      *ChurnSpec `json:"churn,omitempty"`
	// Shards partitions the cluster into parallel event domains (see
	// idio.ClusterConfig.Shards); 0 or 1 run everything on one
	// simulator. Output is byte-identical either way. The -shards CLI
	// flag overrides this field.
	Shards int `json:"shards,omitempty"`
}

// Scenario is the root document.
type Scenario struct {
	Name   string `json:"name"`
	Policy string `json:"policy"` // DDIO | Invalidate | Prefetch | Static | IDIO
	Cores  int    `json:"cores"`

	RingSize  int     `json:"ringSize,omitempty"`
	LLCSizeKB int     `json:"llcSizeKB,omitempty"`
	MLCSizeKB int     `json:"mlcSizeKB,omitempty"`
	DDIOWays  int     `json:"ddioWays,omitempty"`
	MLCTHR    uint64  `json:"mlcTHR,omitempty"`
	Driver    string  `json:"driver,omitempty"` // polling (default) | interrupt
	HorizonMS float64 `json:"horizonMS"`
	// ClassOneDSCPs marks application-class-1 code points.
	ClassOneDSCPs []uint8 `json:"classOneDSCPs,omitempty"`
	// TracePackets enables per-packet stage tracing, retaining up to
	// this many records per core.
	TracePackets int `json:"tracePackets,omitempty"`

	NFs        []NF        `json:"nfs"`
	Antagonist *Antagonist `json:"antagonist,omitempty"`
	Topology   *Topology   `json:"topology,omitempty"`

	// QoS arms the service-class pipeline; omit for the single-class
	// legacy data plane (see QoSSpec).
	QoS *QoSSpec `json:"qos,omitempty"`

	// Chaos schedules deterministic fault phases (fault.Phase) across
	// the run. Fabric-layer phases need a topology section: Target
	// indexes the fabric links in attach order (0 = server downlink,
	// 1 = server uplink, 2..N+1 = client uplinks, then client
	// downlinks).
	Chaos []ChaosPhase `json:"chaos,omitempty"`
	// AdmissionWatermark > 0 enables DUT admission control: packets
	// steered to an RX ring at or above this occupancy are shed.
	AdmissionWatermark int `json:"admissionWatermark,omitempty"`
}

// QoSSpec arms the service-class pipeline (internal/qos): the DSCP→
// class map in the NIC filter table, per-class placement policy (LLC
// way quota, prefetch stride, direct-to-DRAM), and — with a topology —
// the strict-priority/WRR scheduler on every switch egress port.
// Omitting the section keeps the single-class data plane and
// byte-identical legacy outputs.
type QoSSpec struct {
	// Classes overrides individual classes of the default policy by
	// name ("ef", "af41", "af21", "cs1"); omitted classes and omitted
	// fields keep their defaults.
	Classes []QoSClassSpec `json:"classes,omitempty"`
	// QuantumBytes is the WRR byte quantum per weight unit (0 = 2048).
	QuantumBytes int `json:"quantumBytes,omitempty"`
	// ClientDSCPs assigns request-flow DSCPs to topology RPC clients
	// round-robin, mixing service classes across client hosts. Empty
	// leaves every client at DSCP 0 (the default class).
	ClientDSCPs []uint8 `json:"clientDSCPs,omitempty"`
}

// QoSClassSpec overrides one service class's policy. Pointer fields
// distinguish "set to zero" from "keep the default".
type QoSClassSpec struct {
	Class         string  `json:"class"`
	DSCPs         []uint8 `json:"dscps,omitempty"`
	Priority      *bool   `json:"priority,omitempty"`
	Weight        *int    `json:"weight,omitempty"`
	Queue         int     `json:"queue,omitempty"`
	LLCWays       *int    `json:"llcWays,omitempty"`
	PrefetchEvery *int    `json:"prefetchEvery,omitempty"`
	DirectDRAM    *bool   `json:"directDRAM,omitempty"`
}

// qosClassIndex resolves a class name to its index.
func qosClassIndex(name string) (int, error) {
	for c := 0; c < qos.NumClasses; c++ {
		if qos.Class(c).String() == name {
			return c, nil
		}
	}
	return 0, fmt.Errorf("unknown qos class %q (want ef, af41, af21, or cs1)", name)
}

// config compiles the spec into the policy table: the default
// four-class policy with the listed overrides applied.
func (q *QoSSpec) config() (*qos.Config, error) {
	cfg := qos.DefaultConfig()
	cfg.Quantum = q.QuantumBytes
	for _, cs := range q.Classes {
		ci, err := qosClassIndex(cs.Class)
		if err != nil {
			return nil, err
		}
		p := &cfg.Classes[ci]
		if cs.DSCPs != nil {
			p.DSCPs = cs.DSCPs
		}
		if cs.Priority != nil {
			p.Priority = *cs.Priority
		}
		if cs.Weight != nil {
			p.Weight = *cs.Weight
		}
		if cs.Queue > 0 {
			p.QueueDepth = cs.Queue
		}
		if cs.LLCWays != nil {
			p.LLCWays = *cs.LLCWays
		}
		if cs.PrefetchEvery != nil {
			p.PrefetchEvery = *cs.PrefetchEvery
		}
		if cs.DirectDRAM != nil {
			p.DirectDRAM = *cs.DirectDRAM
		}
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return cfg, nil
}

// ChaosPhase is the JSON form of one scheduled fault phase.
type ChaosPhase struct {
	Layer string `json:"layer"` // fabric | nic | dram | core
	Kind  string `json:"kind"`  // down | degrade | dma-stall | spike | stall
	// StartMS / DurationMS bound the phase in milliseconds of sim time.
	StartMS    float64 `json:"startMS"`
	DurationMS float64 `json:"durationMS"`
	// Magnitude is kind-specific: fabric/degrade rate factor in (0,1),
	// dram/spike extra latency in nanoseconds; unused otherwise.
	Magnitude float64 `json:"magnitude,omitempty"`
	// Target selects the victim by attach order (link index, NIC port,
	// or core).
	Target int `json:"target,omitempty"`
	// Domain optionally names the event domain expected to own the
	// target in a sharded run ("dut", "switch", "clients.<g>"); a
	// mismatch fails the run instead of perturbing the wrong domain.
	Domain string `json:"domain,omitempty"`
}

// chaosTimeline converts the chaos section to fault phases.
func (sc Scenario) chaosTimeline() []fault.Phase {
	if len(sc.Chaos) == 0 {
		return nil
	}
	tl := make([]fault.Phase, len(sc.Chaos))
	for i, p := range sc.Chaos {
		tl[i] = fault.Phase{
			Layer:     p.Layer,
			Kind:      p.Kind,
			Start:     sim.Time(p.StartMS * float64(sim.Millisecond)),
			Duration:  sim.Duration(p.DurationMS * float64(sim.Millisecond)),
			Magnitude: p.Magnitude,
			Target:    p.Target,
			Domain:    p.Domain,
		}
	}
	return tl
}

// Save writes the scenario as indented JSON (the inverse of Load).
func (sc Scenario) Save(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(sc)
}

// Load parses and validates a scenario document.
func Load(r io.Reader) (Scenario, error) {
	var sc Scenario
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&sc); err != nil {
		return sc, fmt.Errorf("scenario: %w", err)
	}
	if err := sc.Validate(); err != nil {
		return sc, err
	}
	return sc, nil
}

// Validate checks internal consistency.
func (sc Scenario) Validate() error {
	if sc.Cores <= 0 {
		return fmt.Errorf("scenario %q: cores must be positive", sc.Name)
	}
	if _, err := sc.policy(); err != nil {
		return err
	}
	if sc.HorizonMS <= 0 {
		return fmt.Errorf("scenario %q: horizonMS must be positive", sc.Name)
	}
	if len(sc.NFs) == 0 {
		return fmt.Errorf("scenario %q: at least one NF required", sc.Name)
	}
	switch sc.Driver {
	case "", "polling", "interrupt":
	default:
		return fmt.Errorf("scenario %q: unknown driver %q", sc.Name, sc.Driver)
	}
	seen := map[int]bool{}
	for i, nf := range sc.NFs {
		if nf.Core < 0 || nf.Core >= sc.Cores {
			return fmt.Errorf("scenario %q: nf %d core %d out of range", sc.Name, i, nf.Core)
		}
		if seen[nf.Core] {
			return fmt.Errorf("scenario %q: core %d has two NFs", sc.Name, nf.Core)
		}
		seen[nf.Core] = true
		if _, err := appFor(nf.App, nil); err != nil {
			return fmt.Errorf("scenario %q: nf %d: %w", sc.Name, i, err)
		}
		switch nf.Traffic.Kind {
		case "steady":
			if nf.Traffic.Count == 0 {
				return fmt.Errorf("scenario %q: nf %d steady traffic needs count", sc.Name, i)
			}
		case "bursty":
			if nf.Traffic.PacketsPerBurst <= 0 || nf.Traffic.NumBursts <= 0 {
				return fmt.Errorf("scenario %q: nf %d bursty traffic needs packetsPerBurst and numBursts", sc.Name, i)
			}
		case "":
			// An NF may omit generator traffic only when topology RPC or
			// churn clients drive it instead.
			if sc.Topology == nil || (sc.Topology.RPC == nil && sc.Topology.Churn == nil) {
				return fmt.Errorf("scenario %q: nf %d needs traffic (or a topology rpc/churn section)", sc.Name, i)
			}
		default:
			return fmt.Errorf("scenario %q: nf %d unknown traffic kind %q", sc.Name, i, nf.Traffic.Kind)
		}
		if nf.Traffic.Kind != "" && nf.Traffic.Gbps <= 0 {
			return fmt.Errorf("scenario %q: nf %d needs a positive rate", sc.Name, i)
		}
	}
	if t := sc.Topology; t != nil {
		if t.Clients <= 0 {
			return fmt.Errorf("scenario %q: topology needs at least one client", sc.Name)
		}
		if t.ClientLink.Gbps <= 0 || t.ServerLink.Gbps <= 0 {
			return fmt.Errorf("scenario %q: topology links need positive gbps", sc.Name)
		}
		if rpc := t.RPC; rpc != nil {
			if rpc.Requests == 0 {
				return fmt.Errorf("scenario %q: topology rpc needs requests", sc.Name)
			}
			switch rpc.Mode {
			case "open":
				if rpc.Gbps <= 0 {
					return fmt.Errorf("scenario %q: open-loop rpc needs gbps", sc.Name)
				}
			case "closed":
				if rpc.Outstanding <= 0 {
					return fmt.Errorf("scenario %q: closed-loop rpc needs outstanding", sc.Name)
				}
			case "ramp":
				if rpc.Gbps <= 0 || rpc.RampToGbps <= 0 {
					return fmt.Errorf("scenario %q: ramp rpc needs gbps and rampToGbps", sc.Name)
				}
			default:
				return fmt.Errorf("scenario %q: unknown rpc mode %q", sc.Name, rpc.Mode)
			}
			if rpc.Retry != nil {
				if err := rpc.Retry.config(0).Validate(); err != nil {
					return fmt.Errorf("scenario %q: rpc retry: %w", sc.Name, err)
				}
			}
		}
		if ch := t.Churn; ch != nil {
			if t.RPC != nil {
				return fmt.Errorf("scenario %q: topology rpc and churn sections are mutually exclusive", sc.Name)
			}
			if ch.Flows < t.Clients {
				return fmt.Errorf("scenario %q: topology churn needs flows >= clients (%d < %d)", sc.Name, ch.Flows, t.Clients)
			}
			if ch.Requests == 0 {
				return fmt.Errorf("scenario %q: topology churn needs requests", sc.Name)
			}
			cc := ch.config(0, t.Clients)
			if err := cc.Validate(); err != nil {
				return fmt.Errorf("scenario %q: churn: %w", sc.Name, err)
			}
		}
		if t.ClientLink.AQMTargetUS < 0 || t.ServerLink.AQMTargetUS < 0 ||
			t.ClientLink.AQMIntervalUS < 0 || t.ServerLink.AQMIntervalUS < 0 {
			return fmt.Errorf("scenario %q: link AQM target/interval must be >= 0", sc.Name)
		}
	}
	if sc.AdmissionWatermark < 0 {
		return fmt.Errorf("scenario %q: admissionWatermark must be >= 0, got %d", sc.Name, sc.AdmissionWatermark)
	}
	if sc.QoS != nil {
		if _, err := sc.QoS.config(); err != nil {
			return fmt.Errorf("scenario %q: qos: %w", sc.Name, err)
		}
		if len(sc.QoS.ClientDSCPs) > 0 && (sc.Topology == nil || sc.Topology.RPC == nil) {
			return fmt.Errorf("scenario %q: qos clientDSCPs need a topology rpc section", sc.Name)
		}
	}
	if len(sc.Chaos) > 0 {
		// Delegate phase-shape checks (unknown layer/kind, negative
		// start, non-positive duration, overlapping same-target phases,
		// magnitude ranges) to the fault layer, which owns the rules.
		fc := fault.Config{Timeline: sc.chaosTimeline()}
		if err := fc.Validate(); err != nil {
			return fmt.Errorf("scenario %q: chaos: %w", sc.Name, err)
		}
		for i, p := range sc.Chaos {
			if p.Layer == "fabric" && sc.Topology == nil {
				return fmt.Errorf("scenario %q: chaos[%d] targets the fabric but no topology is declared", sc.Name, i)
			}
			if p.Layer == "core" && p.Target >= sc.Cores {
				return fmt.Errorf("scenario %q: chaos[%d] core target %d out of range", sc.Name, i, p.Target)
			}
		}
	}
	if sc.Antagonist != nil {
		if sc.Antagonist.Core < 0 || sc.Antagonist.Core >= sc.Cores {
			return fmt.Errorf("scenario %q: antagonist core out of range", sc.Name)
		}
		if seen[sc.Antagonist.Core] {
			return fmt.Errorf("scenario %q: antagonist shares core %d with an NF", sc.Name, sc.Antagonist.Core)
		}
		if sc.Antagonist.BufKB <= 0 {
			return fmt.Errorf("scenario %q: antagonist needs bufKB", sc.Name)
		}
	}
	return nil
}

func (sc Scenario) policy() (idiocore.Policy, error) {
	switch sc.Policy {
	case "DDIO", "":
		return idiocore.PolicyDDIO, nil
	case "Invalidate":
		return idiocore.PolicyInvalidate, nil
	case "Prefetch":
		return idiocore.PolicyPrefetch, nil
	case "Static":
		return idiocore.PolicyStatic, nil
	case "IDIO":
		return idiocore.PolicyIDIO, nil
	default:
		return idiocore.Policy{}, fmt.Errorf("scenario %q: unknown policy %q", sc.Name, sc.Policy)
	}
}

func appFor(name string, sys *idio.System) (cpu.App, error) {
	switch name {
	case "TouchDrop":
		return apps.TouchDrop{}, nil
	case "L2Fwd":
		return apps.L2Fwd{}, nil
	case "L2FwdQueued":
		return &apps.L2FwdQueued{}, nil
	case "L2FwdDropPayload":
		return apps.L2FwdDropPayload{}, nil
	case "CopyNF":
		if sys == nil {
			return &apps.CopyNF{}, nil // validation pass
		}
		return &apps.CopyNF{Dst: sys.AllocRegion(1 << 20)}, nil
	case "NAT":
		if sys == nil {
			return &apps.NAT{}, nil // validation pass
		}
		return &apps.NAT{Table: sys.AllocRegion(4 << 20)}, nil
	case "ReallocNF":
		return &apps.ReallocNF{}, nil
	default:
		return nil, fmt.Errorf("unknown app %q", name)
	}
}

// RunOpts carries run-time observability options that are deliberately
// not part of the scenario document: the same scenario file can be run
// untraced (production figures) or traced (debugging) without edits.
type RunOpts struct {
	// TraceSampleN > 0 enables the packet-journey tracer, following
	// every Nth packet (1 = all).
	TraceSampleN int
	// TraceSink receives trace events when tracing is enabled; nil
	// leaves the counting NullSink. The caller owns closing it.
	TraceSink obs.Sink
	// MetricsInterval > 0 records a metric-registry snapshot at this
	// period (see Results.MetricSeries).
	MetricsInterval sim.Duration
	// Shards overrides the topology's shard count when > 0 (so one
	// scenario file can be run single-domain or sharded without edits).
	// Ignored for single-host scenarios.
	Shards int
}

// Run builds, executes, and summarises the scenario. It returns the
// run results and the antagonist's CPI (zero when not configured).
func Run(sc Scenario) (idio.Results, float64, error) {
	_, res, cpi, err := RunSystem(sc)
	return res, cpi, err
}

// RunSystem is Run but additionally returns the live system so callers
// can inspect post-run state (per-packet traces, cache occupancies).
func RunSystem(sc Scenario) (*idio.System, idio.Results, float64, error) {
	return RunSystemOpts(sc, RunOpts{})
}

// RunSystemOpts is RunSystem with observability options layered on
// top of the scenario document.
func RunSystemOpts(sc Scenario, opts RunOpts) (*idio.System, idio.Results, float64, error) {
	pol, err := sc.policy()
	if err != nil {
		return nil, idio.Results{}, 0, err
	}
	cfg := idio.DefaultConfig(sc.Cores)
	cfg.Policy = pol
	if sc.RingSize > 0 {
		cfg.NIC.RingSize = sc.RingSize
	}
	if sc.LLCSizeKB > 0 {
		cfg.Hier.LLCSize = sc.LLCSizeKB << 10
	}
	if sc.MLCSizeKB > 0 {
		cfg.Hier.MLCSize = sc.MLCSizeKB << 10
	}
	if sc.DDIOWays > 0 {
		cfg.Hier.DDIOWays = sc.DDIOWays
	}
	if sc.MLCTHR > 0 {
		cfg.Controller.MLCTHR = sc.MLCTHR
	}
	if len(sc.ClassOneDSCPs) > 0 {
		cfg.Classifier.ClassOneDSCPs = sc.ClassOneDSCPs
	}
	if sc.Driver == "interrupt" {
		cfg.CPU.Driver = cpu.DriverInterrupt
	}
	if sc.TracePackets > 0 {
		cfg.CPU.TraceCapacity = sc.TracePackets
	}
	if sc.Antagonist != nil && sc.Antagonist.MLCKB > 0 {
		sizes := make([]int, sc.Cores)
		sizes[sc.Antagonist.Core] = sc.Antagonist.MLCKB << 10
		cfg.Hier.MLCSizePerCore = sizes
	}
	if sc.AdmissionWatermark > 0 {
		cfg.NIC.AdmissionWatermark = sc.AdmissionWatermark
	}
	if tl := sc.chaosTimeline(); tl != nil {
		cfg.Faults = &fault.Config{Timeline: tl}
	}
	cfg.Obs.TraceSampleN = opts.TraceSampleN
	cfg.Obs.MetricsInterval = opts.MetricsInterval
	var qcfg *qos.Config
	if sc.QoS != nil {
		var err error
		if qcfg, err = sc.QoS.config(); err != nil {
			return nil, idio.Results{}, 0, err
		}
	}

	// A topology section switches the run from a bare System to a
	// Cluster: same DUT, but traffic reaches it over the fabric.
	var (
		sys *idio.System
		cl  *idio.Cluster
	)
	if topo := sc.Topology; topo != nil {
		shards := topo.Shards
		if opts.Shards > 0 {
			shards = opts.Shards
		}
		c, err := idio.NewCluster(idio.ClusterConfig{
			Host:       cfg,
			Clients:    topo.Clients,
			ClientLink: topo.ClientLink.LinkConfig(),
			ServerLink: topo.ServerLink.LinkConfig(),
			QoS:        qcfg,
			Shards:     shards,
		})
		if err != nil {
			return nil, idio.Results{}, 0, err
		}
		cl, sys = c, c.DUT
	} else {
		// Single-host: the placement-side policy still applies (filter
		// table, way quotas, prefetch strides); there is no fabric to
		// schedule.
		cfg.QoS = qcfg
		sys = idio.NewSystem(cfg)
	}
	if opts.TraceSink != nil {
		sys.Observe().SetSink(opts.TraceSink)
	}
	var nfCores []int
	for i, nf := range sc.NFs {
		app, err := appFor(nf.App, sys)
		if err != nil {
			return nil, idio.Results{}, 0, err
		}
		flow := sys.DefaultFlow(nf.Core)
		if nf.FrameLen > 0 {
			flow.FrameLen = nf.FrameLen
		}
		flow.DSCP = nf.DSCP
		if _, isRealloc := app.(*apps.ReallocNF); isRealloc {
			// The re-allocate mode needs pooled rings on every port.
			for _, port := range sys.Ports() {
				port.Ring(nf.Core).AttachPool(sys.NewMbufPool(2 * cfg.NIC.RingSize))
			}
		}
		sys.AddNF(nf.Core, app, flow)
		nfCores = append(nfCores, nf.Core)
		// With a topology, generator traffic enters through a client
		// host's uplink and crosses the switch; single-host scenarios
		// keep the historical direct injection into the NIC. Generators
		// schedule on the simulator owning their injection point — the
		// client slot's domain when the cluster is sharded.
		var target traffic.Receiver = sys.NIC
		onSim := sys.Sim
		if cl != nil {
			slot := i % sc.Topology.Clients
			target = cl.ClientIngress(slot)
			onSim = cl.ClientSim(slot)
		}
		switch nf.Traffic.Kind {
		case "steady":
			traffic.Steady{
				Flow: flow, RateBps: traffic.Gbps(nf.Traffic.Gbps), Count: nf.Traffic.Count,
			}.Install(onSim, target)
		case "bursty":
			period := nf.Traffic.PeriodMS
			if period == 0 {
				period = 10
			}
			traffic.Bursty{
				Flow:            flow,
				BurstRateBps:    traffic.Gbps(nf.Traffic.Gbps),
				Period:          sim.Duration(period * float64(sim.Millisecond)),
				PacketsPerBurst: nf.Traffic.PacketsPerBurst,
				NumBursts:       nf.Traffic.NumBursts,
			}.Install(onSim, target)
		}
	}
	if cl != nil && sc.Topology.RPC != nil {
		if err := installRPCClients(cl, sc.Topology, sc.QoS, nfCores); err != nil {
			return nil, idio.Results{}, 0, err
		}
	}
	if cl != nil && sc.Topology.Churn != nil {
		installChurnClients(cl, sc.Topology)
	}
	var ant *apps.LLCAntagonist
	if sc.Antagonist != nil {
		buf := sys.AllocRegion(uint64(sc.Antagonist.BufKB) << 10)
		ant = apps.NewLLCAntagonist(sc.Antagonist.Core, buf, cfg.Hier.Clock, sys.Hier, 1)
	}
	if cl != nil {
		cl.Start()
	} else {
		sys.Start()
	}
	if ant != nil {
		ant.Start(sys.Sim)
	}
	horizon := sim.Duration(sc.HorizonMS * float64(sim.Millisecond))
	var res idio.Results
	if cl != nil {
		var rerr error
		res, rerr = cl.Run(idio.RunOpts{Horizon: horizon, UntilIdle: true})
		// Watchdog trips stay in Results.Aborted (degradation scenarios
		// report them as data); configuration errors fail the run.
		var wd *sim.WatchdogError
		if rerr != nil && !errors.As(rerr, &wd) {
			return nil, idio.Results{}, 0, rerr
		}
	} else {
		res = sys.RunUntilIdle(horizon)
	}
	cpi := 0.0
	if ant != nil {
		cpi = ant.CPI()
	}
	return sys, res, cpi, nil
}

// installChurnClients attaches one flow-churn client per client host,
// splitting the aggregate population and request budget evenly.
func installChurnClients(cl *idio.Cluster, topo *Topology) {
	for i := 0; i < topo.Clients; i++ {
		ccfg := topo.Churn.config(i, topo.Clients)
		ccfg.Flow = cl.ClientFlow(i, 0)
		if topo.Churn.FrameLen > 0 {
			ccfg.Flow.FrameLen = topo.Churn.FrameLen
		}
		cl.AddChurnClient(i, ccfg)
	}
}

// installRPCClients attaches one RPC client per client host, round-
// robining over the NF cores; aggregate open-loop rates split evenly
// across clients. A qos section's clientDSCPs round-robin over the
// clients, marking each request flow's service class.
func installRPCClients(cl *idio.Cluster, topo *Topology, qspec *QoSSpec, nfCores []int) error {
	rpc := topo.RPC
	var mode fnet.Mode
	switch rpc.Mode {
	case "open":
		mode = fnet.ModeOpen
	case "closed":
		mode = fnet.ModeClosed
	case "ramp":
		mode = fnet.ModeRamp
	default:
		return fmt.Errorf("scenario: unknown rpc mode %q", rpc.Mode)
	}
	for i := 0; i < topo.Clients; i++ {
		core := nfCores[i%len(nfCores)]
		ccfg := fnet.ClientConfig{
			Mode:        mode,
			RateBps:     traffic.Gbps(rpc.Gbps) / int64(topo.Clients),
			RampToBps:   traffic.Gbps(rpc.RampToGbps) / int64(topo.Clients),
			Outstanding: rpc.Outstanding,
			Requests:    rpc.Requests,
			Timeout:     sim.Duration(rpc.TimeoutUS * float64(sim.Microsecond)),
		}
		if rpc.Retry != nil {
			ccfg.Retry = rpc.Retry.config(i)
		}
		ccfg.Flow = cl.ClientFlow(i, core)
		if rpc.FrameLen > 0 {
			ccfg.Flow.FrameLen = rpc.FrameLen
		}
		if qspec != nil && len(qspec.ClientDSCPs) > 0 {
			ccfg.Flow.DSCP = qspec.ClientDSCPs[i%len(qspec.ClientDSCPs)]
		}
		cl.AddRPCClient(i, core, ccfg)
	}
	return nil
}
