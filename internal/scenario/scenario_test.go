package scenario

import (
	"os"
	"strings"
	"testing"
)

const validJSON = `{
  "name": "test",
  "policy": "IDIO",
  "cores": 2,
  "ringSize": 256,
  "mlcSizeKB": 256,
  "llcSizeKB": 768,
  "horizonMS": 9,
  "nfs": [
    {"core": 0, "app": "TouchDrop", "frameLen": 1514,
     "traffic": {"kind": "bursty", "gbps": 25, "packetsPerBurst": 256, "numBursts": 1}},
    {"core": 1, "app": "L2Fwd", "frameLen": 1024,
     "traffic": {"kind": "steady", "gbps": 5, "count": 512}}
  ]
}`

func TestLoadValidScenario(t *testing.T) {
	sc, err := Load(strings.NewReader(validJSON))
	if err != nil {
		t.Fatal(err)
	}
	if sc.Name != "test" || sc.Cores != 2 || len(sc.NFs) != 2 {
		t.Fatalf("parsed %+v", sc)
	}
}

func TestRunScenarioEndToEnd(t *testing.T) {
	sc, err := Load(strings.NewReader(validJSON))
	if err != nil {
		t.Fatal(err)
	}
	res, cpi, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalProcessed() != 256+512 {
		t.Fatalf("processed %d, want 768", res.TotalProcessed())
	}
	if cpi != 0 {
		t.Fatal("no antagonist configured")
	}
	// IDIO policy: self-invalidation ran.
	if res.Hier.SelfInval == 0 {
		t.Fatal("IDIO scenario must self-invalidate")
	}
}

func TestRunScenarioWithAntagonistAndInterrupts(t *testing.T) {
	doc := `{
	  "name": "co",
	  "policy": "DDIO",
	  "cores": 3,
	  "ringSize": 128,
	  "mlcSizeKB": 256,
	  "llcSizeKB": 768,
	  "driver": "interrupt",
	  "horizonMS": 9,
	  "nfs": [
	    {"core": 0, "app": "TouchDrop",
	     "traffic": {"kind": "steady", "gbps": 5, "count": 256}},
	    {"core": 1, "app": "L2FwdDropPayload",
	     "traffic": {"kind": "steady", "gbps": 5, "count": 256}}
	  ],
	  "antagonist": {"core": 2, "bufKB": 512, "mlcKB": 128}
	}`
	sc, err := Load(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	res, cpi, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalProcessed() != 512 {
		t.Fatalf("processed %d", res.TotalProcessed())
	}
	if cpi <= 0 {
		t.Fatalf("antagonist CPI %v", cpi)
	}
}

func TestLoadRejectsBadDocuments(t *testing.T) {
	cases := map[string]string{
		"unknown field":     `{"name":"x","cores":1,"horizonMS":1,"bogus":1,"nfs":[]}`,
		"no cores":          `{"name":"x","horizonMS":1,"nfs":[{"core":0,"app":"TouchDrop","traffic":{"kind":"steady","gbps":1,"count":1}}]}`,
		"bad policy":        `{"name":"x","policy":"MAGIC","cores":1,"horizonMS":1,"nfs":[{"core":0,"app":"TouchDrop","traffic":{"kind":"steady","gbps":1,"count":1}}]}`,
		"no nfs":            `{"name":"x","cores":1,"horizonMS":1,"nfs":[]}`,
		"core out of range": `{"name":"x","cores":1,"horizonMS":1,"nfs":[{"core":3,"app":"TouchDrop","traffic":{"kind":"steady","gbps":1,"count":1}}]}`,
		"duplicate core":    `{"name":"x","cores":1,"horizonMS":1,"nfs":[{"core":0,"app":"TouchDrop","traffic":{"kind":"steady","gbps":1,"count":1}},{"core":0,"app":"L2Fwd","traffic":{"kind":"steady","gbps":1,"count":1}}]}`,
		"bad app":           `{"name":"x","cores":1,"horizonMS":1,"nfs":[{"core":0,"app":"Nope","traffic":{"kind":"steady","gbps":1,"count":1}}]}`,
		"bad traffic kind":  `{"name":"x","cores":1,"horizonMS":1,"nfs":[{"core":0,"app":"TouchDrop","traffic":{"kind":"poisson","gbps":1}}]}`,
		"steady no count":   `{"name":"x","cores":1,"horizonMS":1,"nfs":[{"core":0,"app":"TouchDrop","traffic":{"kind":"steady","gbps":1}}]}`,
		"bursty no size":    `{"name":"x","cores":1,"horizonMS":1,"nfs":[{"core":0,"app":"TouchDrop","traffic":{"kind":"bursty","gbps":1}}]}`,
		"zero rate":         `{"name":"x","cores":1,"horizonMS":1,"nfs":[{"core":0,"app":"TouchDrop","traffic":{"kind":"steady","gbps":0,"count":1}}]}`,
		"bad driver":        `{"name":"x","cores":1,"driver":"dpdk","horizonMS":1,"nfs":[{"core":0,"app":"TouchDrop","traffic":{"kind":"steady","gbps":1,"count":1}}]}`,
		"antagonist clash":  `{"name":"x","cores":1,"horizonMS":1,"nfs":[{"core":0,"app":"TouchDrop","traffic":{"kind":"steady","gbps":1,"count":1}}],"antagonist":{"core":0,"bufKB":64}}`,
	}
	for name, doc := range cases {
		if _, err := Load(strings.NewReader(doc)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestShippedScenarioFileIsValid(t *testing.T) {
	f, err := os.Open("../../scenarios/mixed_nfs.json")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	sc, err := Load(f)
	if err != nil {
		t.Fatal(err)
	}
	if sc.Name != "mixed-nfs" || len(sc.NFs) != 3 {
		t.Fatalf("shipped scenario parsed as %+v", sc)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	sc, err := Load(strings.NewReader(validJSON))
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := sc.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Load(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatalf("re-load of saved scenario: %v\n%s", err, buf.String())
	}
	if back.Name != sc.Name || back.Policy != sc.Policy || len(back.NFs) != len(sc.NFs) {
		t.Fatalf("round trip mismatch: %+v vs %+v", back, sc)
	}
	for i := range sc.NFs {
		if back.NFs[i] != sc.NFs[i] {
			t.Fatalf("nf %d mismatch: %+v vs %+v", i, back.NFs[i], sc.NFs[i])
		}
	}
}

func TestReallocScenarioRuns(t *testing.T) {
	doc := `{
	  "name": "m2",
	  "policy": "IDIO",
	  "cores": 1,
	  "ringSize": 128,
	  "mlcSizeKB": 256,
	  "llcSizeKB": 768,
	  "horizonMS": 9,
	  "nfs": [{"core": 0, "app": "ReallocNF",
	           "traffic": {"kind": "steady", "gbps": 5, "count": 200}}]
	}`
	sc, err := Load(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	res, _, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalProcessed() != 200 {
		t.Fatalf("processed %d", res.TotalProcessed())
	}
}

func TestCopyNFScenario(t *testing.T) {
	doc := `{
	  "name": "copy",
	  "policy": "Invalidate",
	  "cores": 1,
	  "ringSize": 64,
	  "mlcSizeKB": 256,
	  "llcSizeKB": 768,
	  "horizonMS": 9,
	  "nfs": [{"core": 0, "app": "CopyNF",
	           "traffic": {"kind": "steady", "gbps": 2, "count": 128}}]
	}`
	sc, err := Load(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	res, _, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalProcessed() != 128 {
		t.Fatalf("processed %d", res.TotalProcessed())
	}
}

// topologyJSON is a closed-loop RPC topology: 2 L2Fwd cores with no
// generator traffic, 2 clients driving requests through the fabric.
const topologyJSON = `{
  "name": "topo",
  "policy": "IDIO",
  "cores": 2,
  "ringSize": 256,
  "mlcSizeKB": 256,
  "llcSizeKB": 768,
  "horizonMS": 20,
  "nfs": [
    {"core": 0, "app": "L2Fwd", "traffic": {}},
    {"core": 1, "app": "L2Fwd", "traffic": {}}
  ],
  "topology": {
    "clients": 2,
    "clientLink": {"gbps": 100, "delayUS": 2},
    "serverLink": {"gbps": 100, "delayUS": 2},
    "rpc": {"mode": "closed", "outstanding": 8, "requests": 256}
  }
}`

func TestTopologyScenarioRuns(t *testing.T) {
	sc, err := Load(strings.NewReader(topologyJSON))
	if err != nil {
		t.Fatal(err)
	}
	res, _, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if res.RPC == nil || res.Fabric == nil {
		t.Fatal("topology run must report RPC and Fabric sections")
	}
	const want = 2 * 256
	if res.RPC.Issued != want || res.RPC.Responses != want {
		t.Fatalf("rpc issued=%d responses=%d, want %d each", res.RPC.Issued, res.RPC.Responses, want)
	}
	if res.TotalProcessed() != want {
		t.Fatalf("DUT processed %d, want %d (every request served)", res.TotalProcessed(), want)
	}
}

// TestTopologyGeneratorTraffic: generator flows route through the
// fabric (client uplink -> switch -> server link -> NIC) instead of
// direct injection when a topology is present.
func TestTopologyGeneratorTraffic(t *testing.T) {
	doc := `{
	  "name": "topo-gen",
	  "policy": "DDIO",
	  "cores": 1,
	  "ringSize": 256,
	  "mlcSizeKB": 256,
	  "llcSizeKB": 768,
	  "horizonMS": 20,
	  "nfs": [
	    {"core": 0, "app": "TouchDrop", "traffic": {"kind": "steady", "gbps": 5, "count": 512}}
	  ],
	  "topology": {
	    "clients": 1,
	    "clientLink": {"gbps": 100, "delayUS": 2},
	    "serverLink": {"gbps": 100, "delayUS": 2}
	  }
	}`
	sc, err := Load(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	res, _, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalProcessed() != 512 {
		t.Fatalf("processed %d, want 512", res.TotalProcessed())
	}
	if res.Fabric == nil {
		t.Fatal("topology run must report fabric stats")
	}
	// Requests crossed the switch once each; TouchDrop sends nothing
	// back.
	if res.Fabric.Switch.Forwarded != 512 {
		t.Fatalf("switch forwarded %d, want 512", res.Fabric.Switch.Forwarded)
	}
}

func TestTopologyValidation(t *testing.T) {
	cases := map[string]string{
		"no clients":        `{"name":"x","cores":1,"horizonMS":1,"nfs":[{"core":0,"app":"L2Fwd","traffic":{"kind":"steady","gbps":1,"count":1}}],"topology":{"clientLink":{"gbps":100},"serverLink":{"gbps":100}}}`,
		"zero link rate":    `{"name":"x","cores":1,"horizonMS":1,"nfs":[{"core":0,"app":"L2Fwd","traffic":{"kind":"steady","gbps":1,"count":1}}],"topology":{"clients":1,"clientLink":{"gbps":0},"serverLink":{"gbps":100}}}`,
		"rpc no requests":   `{"name":"x","cores":1,"horizonMS":1,"nfs":[{"core":0,"app":"L2Fwd","traffic":{}}],"topology":{"clients":1,"clientLink":{"gbps":100},"serverLink":{"gbps":100},"rpc":{"mode":"closed","outstanding":1}}}`,
		"rpc bad mode":      `{"name":"x","cores":1,"horizonMS":1,"nfs":[{"core":0,"app":"L2Fwd","traffic":{}}],"topology":{"clients":1,"clientLink":{"gbps":100},"serverLink":{"gbps":100},"rpc":{"mode":"turbo","requests":1}}}`,
		"open no gbps":      `{"name":"x","cores":1,"horizonMS":1,"nfs":[{"core":0,"app":"L2Fwd","traffic":{}}],"topology":{"clients":1,"clientLink":{"gbps":100},"serverLink":{"gbps":100},"rpc":{"mode":"open","requests":1}}}`,
		"closed no window":  `{"name":"x","cores":1,"horizonMS":1,"nfs":[{"core":0,"app":"L2Fwd","traffic":{}}],"topology":{"clients":1,"clientLink":{"gbps":100},"serverLink":{"gbps":100},"rpc":{"mode":"closed","requests":1}}}`,
		"no traffic no rpc": `{"name":"x","cores":1,"horizonMS":1,"nfs":[{"core":0,"app":"L2Fwd","traffic":{}}],"topology":{"clients":1,"clientLink":{"gbps":100},"serverLink":{"gbps":100}}}`,
	}
	for name, doc := range cases {
		if _, err := Load(strings.NewReader(doc)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestShippedRPCScenarioRuns(t *testing.T) {
	f, err := os.Open("../../scenarios/rpc_closed_loop.json")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	sc, err := Load(f)
	if err != nil {
		t.Fatal(err)
	}
	if sc.Topology == nil || sc.Topology.RPC == nil {
		t.Fatal("shipped rpc scenario needs a topology rpc section")
	}
	res, _, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	want := uint64(sc.Topology.Clients) * sc.Topology.RPC.Requests
	if res.RPC == nil || res.RPC.Responses != want {
		t.Fatalf("shipped scenario responses: got %+v, want %d", res.RPC, want)
	}
}

// chaosJSON is the resilience kitchen sink: AQM on every hop, retrying
// clients, DUT admission control, and a two-phase fault timeline.
const chaosJSON = `{
  "name": "chaos",
  "policy": "IDIO",
  "cores": 2,
  "ringSize": 256,
  "mlcSizeKB": 256,
  "llcSizeKB": 768,
  "horizonMS": 20,
  "admissionWatermark": 32,
  "nfs": [
    {"core": 0, "app": "L2Fwd", "traffic": {}},
    {"core": 1, "app": "L2Fwd", "traffic": {}}
  ],
  "topology": {
    "clients": 2,
    "clientLink": {"gbps": 100, "delayUS": 2, "aqmTargetUS": 20},
    "serverLink": {"gbps": 100, "delayUS": 2, "aqmTargetUS": 20},
    "rpc": {"mode": "closed", "outstanding": 8, "requests": 4096, "timeoutUS": 200,
            "retry": {"maxRetries": 2, "backoffUS": 50, "jitterFrac": 0.25, "seed": 7}}
  },
  "chaos": [
    {"layer": "fabric", "kind": "degrade", "startMS": 1, "durationMS": 0.5, "magnitude": 0.1, "target": 0},
    {"layer": "core", "kind": "stall", "startMS": 2, "durationMS": 0.3, "target": 1}
  ]
}`

// TestChaosScenarioRuns: the chaos sections load, the run completes
// its full budget despite the injected phases (retries recover the
// losses), and the timeline is accounted.
func TestChaosScenarioRuns(t *testing.T) {
	sc, err := Load(strings.NewReader(chaosJSON))
	if err != nil {
		t.Fatal(err)
	}
	if len(sc.Chaos) != 2 || sc.AdmissionWatermark != 32 || sc.Topology.RPC.Retry == nil {
		t.Fatalf("chaos sections lost in parse: %+v", sc)
	}
	res, _, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if res.Faults.TimelinePhases != 2 {
		t.Fatalf("timeline phases not applied: %+v", res.Faults)
	}
	if res.RPC == nil || res.RPC.Issued != 2*4096 {
		t.Fatalf("rpc budget incomplete: %+v", res.RPC)
	}
	// Retrying clients recover everything the faults cost.
	if got := res.RPC.Responses + res.RPC.Failed; got != 2*4096 {
		t.Fatalf("responses %d + failed %d != issued %d", res.RPC.Responses, res.RPC.Failed, res.RPC.Issued)
	}
}

// TestChaosScenarioRoundTrip: Save/Load preserves the resilience
// sections bit-for-bit.
func TestChaosScenarioRoundTrip(t *testing.T) {
	sc, err := Load(strings.NewReader(chaosJSON))
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := sc.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Load(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatalf("re-load: %v\n%s", err, buf.String())
	}
	if len(back.Chaos) != len(sc.Chaos) || back.Chaos[0] != sc.Chaos[0] ||
		back.AdmissionWatermark != sc.AdmissionWatermark ||
		*back.Topology.RPC.Retry != *sc.Topology.RPC.Retry {
		t.Fatalf("round trip lost chaos sections:\n%+v\nvs\n%+v", back, sc)
	}
}

// TestChaosValidation rejects every malformed resilience section with
// a message naming the offender.
func TestChaosValidation(t *testing.T) {
	// base builds a minimal valid topology scenario with the given
	// extra top-level JSON spliced in.
	base := func(extra string) string {
		return `{"name":"x","cores":1,"horizonMS":1,` + extra +
			`"nfs":[{"core":0,"app":"L2Fwd","traffic":{}}],` +
			`"topology":{"clients":1,"clientLink":{"gbps":100},"serverLink":{"gbps":100},` +
			`"rpc":{"mode":"closed","outstanding":1,"requests":8`
	}
	cases := []struct {
		name   string
		doc    string
		substr string
	}{
		{"negative admission watermark",
			base(`"admissionWatermark":-1,`) + `}}}`,
			"admissionWatermark must be >= 0"},
		{"negative AQM target",
			`{"name":"x","cores":1,"horizonMS":1,"nfs":[{"core":0,"app":"L2Fwd","traffic":{}}],"topology":{"clients":1,"clientLink":{"gbps":100,"aqmTargetUS":-1},"serverLink":{"gbps":100},"rpc":{"mode":"closed","outstanding":1,"requests":8}}}`,
			"AQM target/interval"},
		{"bad retry",
			base(``) + `,"retry":{"maxRetries":-1}}}}`,
			"rpc retry"},
		{"retry jitter out of range",
			base(``) + `,"retry":{"maxRetries":1,"jitterFrac":1.5}}}}`,
			"JitterFrac"},
		{"chaos unknown kind",
			base(`"chaos":[{"layer":"fabric","kind":"melt","startMS":1,"durationMS":1}],`) + `}}}`,
			"unknown layer/kind"},
		{"chaos negative duration",
			base(`"chaos":[{"layer":"nic","kind":"dma-stall","startMS":1,"durationMS":-1}],`) + `}}}`,
			"must be positive"},
		{"chaos overlap same target",
			base(`"chaos":[{"layer":"fabric","kind":"down","startMS":1,"durationMS":2},{"layer":"fabric","kind":"down","startMS":2,"durationMS":2}],`) + `}}}`,
			"overlaps"},
		{"chaos core target out of range",
			base(`"chaos":[{"layer":"core","kind":"stall","startMS":1,"durationMS":1,"target":5}],`) + `}}}`,
			"core target 5 out of range"},
		{"chaos fabric needs topology",
			`{"name":"x","cores":1,"horizonMS":1,"chaos":[{"layer":"fabric","kind":"down","startMS":1,"durationMS":1}],"nfs":[{"core":0,"app":"TouchDrop","traffic":{"kind":"steady","gbps":1,"count":1}}]}`,
			"no topology"},
	}
	for _, tc := range cases {
		_, err := Load(strings.NewReader(tc.doc))
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.substr) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.substr)
		}
	}
}

// TestShippedChaosScenarioRuns: the shipped chaos_recovery.json is
// valid and drives a run whose timeline fully applies.
func TestShippedChaosScenarioRuns(t *testing.T) {
	f, err := os.Open("../../scenarios/chaos_recovery.json")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	sc, err := Load(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(sc.Chaos) != 4 || sc.Topology == nil || sc.Topology.RPC.Retry == nil {
		t.Fatalf("shipped chaos scenario parsed as %+v", sc)
	}
	res, _, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if res.Faults.TimelinePhases != 4 {
		t.Fatalf("shipped timeline applied %v phases, want 4", res.Faults)
	}
	if res.RPC == nil || res.RPC.Responses == 0 || res.RPC.Retries == 0 {
		t.Fatalf("shipped chaos run degenerate: %+v", res.RPC)
	}
}
