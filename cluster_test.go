package idio

import (
	"bytes"
	"testing"

	"idio/internal/apps"
	"idio/internal/core"
	fnet "idio/internal/net"
	"idio/internal/sim"
)

// runThreeClientCluster wires the canonical small topology — 2 DUT
// cores running L2Fwd, 3 closed-loop clients — runs it to completion,
// and returns the full stats dump.
func runThreeClientCluster(t *testing.T, pol core.Policy) (Results, []byte) {
	t.Helper()
	ccfg := DefaultClusterConfig(2, 3)
	ccfg.Host.Policy = pol
	cl, err := NewCluster(ccfg)
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	for c := 0; c < 2; c++ {
		cl.DUT.AddNF(c, apps.L2Fwd{}, cl.DUT.DefaultFlow(c))
	}
	for i := 0; i < 3; i++ {
		cl.AddRPCClient(i, i%2, fnet.ClientConfig{
			Mode: fnet.ModeClosed, Outstanding: 8, Requests: 512,
		})
	}
	res, err := cl.Run(RunOpts{Horizon: 20 * sim.Millisecond, UntilIdle: true})
	if err != nil {
		t.Fatalf("cluster run: %v", err)
	}
	// Every request and echoed response draws from the host pool; a
	// drained topology must have returned them all.
	if res.PktPool.Outstanding != 0 {
		t.Fatalf("packet pool leak after drain: %+v", res.PktPool)
	}
	var buf bytes.Buffer
	if err := res.WriteStats(&buf); err != nil {
		t.Fatalf("WriteStats: %v", err)
	}
	return res, buf.Bytes()
}

// TestClusterEndToEnd checks the full request/response journey:
// every request crosses the fabric, is echoed by the DUT, and returns
// to its issuing client, with fabric conservation holding on every
// link.
func TestClusterEndToEnd(t *testing.T) {
	res, _ := runThreeClientCluster(t, core.PolicyIDIO)
	if res.RPC == nil || res.Fabric == nil {
		t.Fatalf("cluster results missing RPC/Fabric sections")
	}
	const want = 3 * 512
	if res.RPC.Issued != want || res.RPC.Responses != want {
		t.Fatalf("issued=%d responses=%d, want %d each (lossless topology)",
			res.RPC.Issued, res.RPC.Responses, want)
	}
	if res.RPC.Timeouts != 0 || res.RPC.Late != 0 {
		t.Fatalf("timeouts=%d late=%d on a lossless topology", res.RPC.Timeouts, res.RPC.Late)
	}
	if res.RPC.GoodputBps <= 0 || res.RPC.P50 <= 0 || res.RPC.P999 < res.RPC.P50 {
		t.Fatalf("degenerate RPC summary: %+v", *res.RPC)
	}
	for _, l := range res.Fabric.Links {
		st := l.Stats
		if st.TailDrops != 0 || st.DownDrops != 0 {
			t.Fatalf("link %s dropped (tail=%d down=%d) on an uncongested run", l.Name, st.TailDrops, st.DownDrops)
		}
		if st.Delivered != st.TxPackets {
			t.Fatalf("link %s: delivered %d of %d accepted after drain", l.Name, st.Delivered, st.TxPackets)
		}
	}
	// Requests and responses each cross the switch once.
	if got := res.Fabric.Switch.Forwarded; got != 2*want {
		t.Fatalf("switch forwarded %d, want %d (each request + response once)", got, 2*want)
	}
	if res.Fabric.Switch.NoRoute != 0 || res.Fabric.Switch.ParseDrops != 0 {
		t.Fatalf("switch drops on a fully-routed topology: %+v", res.Fabric.Switch)
	}
}

// TestClusterDeterministicReplay runs the 3-client topology twice per
// policy and requires byte-identical stats dumps — the fabric must
// inherit the simulator's bit-identical replay guarantee.
func TestClusterDeterministicReplay(t *testing.T) {
	for _, pol := range []core.Policy{core.PolicyDDIO, core.PolicyIDIO} {
		_, a := runThreeClientCluster(t, pol)
		_, b := runThreeClientCluster(t, pol)
		if !bytes.Equal(a, b) {
			t.Fatalf("%s: replay diverged:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", pol.Name(), a, b)
		}
	}
}
