package idio_test

// End-to-end checks of the observability layer against a real
// scenario: the Chrome trace must be Perfetto-loadable, the metrics
// JSON must mirror the flat stats file, and — the load-bearing
// invariant — tracing must be purely observational: a traced run's
// stats are byte-identical to an untraced run's.

import (
	"bytes"
	"encoding/json"
	"os"
	"strconv"
	"strings"
	"testing"

	"idio/internal/obs"
	"idio/internal/scenario"
	"idio/internal/sim"
)

// loadMixedNFS parses the repo's showcase scenario.
func loadMixedNFS(t *testing.T) scenario.Scenario {
	t.Helper()
	f, err := os.Open("scenarios/mixed_nfs.json")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	sc, err := scenario.Load(f)
	if err != nil {
		t.Fatal(err)
	}
	return sc
}

func TestObservabilityEndToEnd(t *testing.T) {
	sc := loadMixedNFS(t)

	// Untraced reference run.
	_, plain, _, err := scenario.RunSystem(sc)
	if err != nil {
		t.Fatal(err)
	}
	var plainStats bytes.Buffer
	if err := plain.WriteStats(&plainStats); err != nil {
		t.Fatal(err)
	}

	// Fully observed run: every-4th-packet Chrome trace plus periodic
	// metric snapshots.
	var traceBuf bytes.Buffer
	sys, traced, _, err := scenario.RunSystemOpts(sc, scenario.RunOpts{
		TraceSampleN:    4,
		TraceSink:       obs.NewChromeSink(&traceBuf),
		MetricsInterval: 100 * sim.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Observe().CloseSink(); err != nil {
		t.Fatal(err)
	}
	if n := sys.Observe().EventsEmitted(); n == 0 {
		t.Fatal("traced run emitted no events")
	}

	t.Run("TracedRunByteIdentical", func(t *testing.T) {
		var tracedStats bytes.Buffer
		if err := traced.WriteStats(&tracedStats); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(plainStats.Bytes(), tracedStats.Bytes()) {
			t.Errorf("tracing perturbed the simulation:\n--- untraced ---\n%s\n--- traced ---\n%s",
				plainStats.String(), tracedStats.String())
		}
	})

	t.Run("ChromeTraceIsPerfettoValid", func(t *testing.T) {
		var doc struct {
			DisplayTimeUnit string                   `json:"displayTimeUnit"`
			TraceEvents     []map[string]interface{} `json:"traceEvents"`
		}
		if err := json.Unmarshal(traceBuf.Bytes(), &doc); err != nil {
			t.Fatalf("trace is not valid JSON: %v", err)
		}
		if doc.DisplayTimeUnit != "ns" {
			t.Errorf("displayTimeUnit = %q, want ns", doc.DisplayTimeUnit)
		}
		if len(doc.TraceEvents) == 0 {
			t.Fatal("no trace events")
		}
		phases := map[string]int{}
		names := map[string]int{}
		for i, ev := range doc.TraceEvents {
			ph, _ := ev["ph"].(string)
			name, _ := ev["name"].(string)
			if ph == "" || name == "" {
				t.Fatalf("event %d missing ph or name: %v", i, ev)
			}
			phases[ph]++
			names[name]++
			if ph == "M" {
				continue
			}
			ts, ok := ev["ts"].(float64)
			if !ok || ts < 0 {
				t.Fatalf("event %d has bad ts: %v", i, ev)
			}
			if ph == "X" {
				if dur, ok := ev["dur"].(float64); !ok || dur < 0 {
					t.Fatalf("complete event %d has bad dur: %v", i, ev)
				}
			}
		}
		// The journey stages the scenario must exercise: RX + DMA on the
		// NIC track, placement on the memory track, the three service
		// spans on the core track, buffer free, and metadata naming the
		// synthetic processes.
		for _, want := range []string{"rx", "dma", "place", "notify", "queue", "service", "free", "process_name"} {
			if names[want] == 0 {
				t.Errorf("no %q events in trace", want)
			}
		}
		if phases["X"] == 0 || phases["i"] == 0 || phases["M"] == 0 {
			t.Errorf("missing phases: got %v", phases)
		}
	})

	t.Run("WriteJSONMirrorsWriteStats", func(t *testing.T) {
		var jsonBuf bytes.Buffer
		if err := traced.WriteJSON(&jsonBuf); err != nil {
			t.Fatal(err)
		}
		var doc struct {
			Schema  int `json:"schema"`
			Metrics []struct {
				Name  string  `json:"name"`
				Kind  string  `json:"kind"`
				Value float64 `json:"value"`
			} `json:"metrics"`
			Series *struct {
				Names  []string    `json:"names"`
				TimeUS []float64   `json:"time_us"`
				Rows   [][]float64 `json:"rows"`
			} `json:"series"`
		}
		if err := json.Unmarshal(jsonBuf.Bytes(), &doc); err != nil {
			t.Fatalf("WriteJSON output is not valid JSON: %v", err)
		}
		if doc.Schema != 1 {
			t.Errorf("schema = %d, want 1", doc.Schema)
		}
		byName := map[string]float64{}
		for _, m := range doc.Metrics {
			byName[m.Name] = m.Value
		}
		// Every flat-stats counter under these component prefixes must
		// appear in the registry-backed JSON with the same value.
		prefixes := []string{"nic.", "hier.", "dram.", "iommu.", "ctrl."}
		checked := 0
		for _, line := range strings.Split(plainStats.String(), "\n") {
			fields := strings.Fields(line)
			if len(fields) != 2 {
				continue
			}
			key := fields[0]
			match := false
			for _, p := range prefixes {
				if strings.HasPrefix(key, p) {
					match = true
				}
			}
			if !match {
				continue
			}
			got, ok := byName[key]
			if !ok {
				t.Errorf("WriteStats key %q missing from WriteJSON metrics", key)
				continue
			}
			want, err := strconv.ParseFloat(fields[1], 64)
			if err != nil {
				t.Fatalf("unparseable WriteStats value %q for %q", fields[1], key)
			}
			if got != want {
				t.Errorf("%s: JSON value %g != stats value %g", key, got, want)
			}
			checked++
		}
		if checked < 30 {
			t.Errorf("only cross-checked %d keys; stats format changed?", checked)
		}
		if doc.Series == nil || len(doc.Series.Rows) == 0 {
			t.Fatal("metrics series missing from JSON despite MetricsInterval")
		}
		if len(doc.Series.Names) == 0 || len(doc.Series.Rows[0]) != len(doc.Series.Names) {
			t.Errorf("series shape mismatch: %d names, row width %d",
				len(doc.Series.Names), len(doc.Series.Rows[0]))
		}
	})
}

// TestCSVSinkFromScenario checks the idiotrace replacement path: a
// CSV sink attached through RunOpts yields the historical per-packet
// layout.
func TestCSVSinkFromScenario(t *testing.T) {
	sc := loadMixedNFS(t)
	var buf bytes.Buffer
	sys, res, _, err := scenario.RunSystemOpts(sc, scenario.RunOpts{
		TraceSampleN: 64,
		TraceSink:    obs.NewCSVSink(&buf),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Observe().CloseSink(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if lines[0] != obs.CSVHeader {
		t.Fatalf("header = %q, want %q", lines[0], obs.CSVHeader)
	}
	if len(lines) < 2 {
		t.Fatal("no data rows")
	}
	want := int(res.TotalProcessed())/64 + 1 // seq%64==0 per flow, 3 flows
	if got := len(lines) - 1; got < want/2 {
		t.Errorf("only %d rows for %d processed packets at 1/64 sampling", got, res.TotalProcessed())
	}
	for i, line := range lines[1:] {
		if cols := strings.Count(line, ","); cols != 9 {
			t.Fatalf("row %d has %d commas, want 9: %q", i, cols, line)
		}
	}
}
