#!/bin/sh
# Pre-merge gate: vet, build, full tests, the race detector over the
# internal packages, a forced-parallel race pass over the experiment
# worker pool, and a one-iteration compile-and-run smoke over every
# benchmark. Mirrors `make check` for environments without make.
set -eux
cd "$(dirname "$0")/.."
go vet ./...
go build ./...
go test ./...
go test -race ./internal/...
GOMAXPROCS=2 go test -race ./internal/experiment
GOMAXPROCS=2 go test -race ./internal/net
go test -run '^$' -bench . -benchtime=1x ./...
# Allocation regression gate: the steady-state packet loop must stay
# at zero heap allocations per packet (see alloc_test.go).
go test -run 'TestAllocsPerPacket|TestNullPoolByteIdentical' -count=1 .
# Observability smoke: run a short traced scenario and validate that
# the Chrome trace and the metrics JSON both parse.
obsdir=$(mktemp -d)
trap 'rm -rf "$obsdir"' EXIT
go run ./cmd/idiosim -scenario scenarios/mixed_nfs.json \
    -trace "$obsdir/trace.json" -trace-sample 16 \
    -json "$obsdir/results.json" > /dev/null
go run ./cmd/obscheck "$obsdir/trace.json" "$obsdir/results.json"
# Fabric smoke: the end-to-end RPC sweep must run, and its table must
# be byte-identical between serial and parallel cell execution.
go run ./cmd/idiosim -exp rpc -quick -j 2 > "$obsdir/rpc.txt"
go run ./cmd/idiosim -exp rpc -quick -j 1 | cmp - "$obsdir/rpc.txt"
go run ./cmd/idiosim -scenario scenarios/rpc_closed_loop.json > /dev/null
