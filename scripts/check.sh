#!/bin/sh
# Pre-merge gate: vet, build, full tests, the race detector over the
# internal packages, a forced-parallel race pass over the experiment
# worker pool, and a one-iteration compile-and-run smoke over every
# benchmark. Mirrors `make check` for environments without make.
set -eux
cd "$(dirname "$0")/.."
go vet ./...
go build ./...
go test ./...
go test -race ./internal/...
GOMAXPROCS=2 go test -race ./internal/experiment
GOMAXPROCS=2 go test -race ./internal/net
GOMAXPROCS=2 go test -race ./internal/fault
# Race pass over the sharded event-domain engine: the epoch barrier
# handshake and cross-domain mailbox flushes are the only goroutine
# synchronization in the simulator; drive them hard under the detector.
GOMAXPROCS=4 go test -race -count=1 -run 'TestEngine' ./internal/sim
GOMAXPROCS=4 go test -race -count=1 -run 'TestClusterShard|TestClusterRunOpts' .
go test -run '^$' -bench . -benchtime=1x ./...
# Perf gate, part 1: the fused packet-lifecycle smoke must run, and the
# steady-state loop must stay at zero heap allocations per packet —
# TestAllocsPerPacket measures the steady window directly and fails the
# gate on any per-packet allocation (see alloc_test.go). The same gate
# covers the million-flow engine (TestChurnAllocsPerRequest: 128k
# resident flows churning at zero allocs per request) and the pooled
# fabric benchmarks (link transit and switch forwarding at 0 allocs/op).
go test -run '^$' -bench 'BenchmarkPacketLifecycle' -benchtime=1x -benchmem .
go test -run 'TestAllocsPerPacket|TestNullPoolByteIdentical|TestChurnAllocsPerRequest' -count=1 .
go test -run '^$' -bench 'BenchmarkLinkTransit|BenchmarkSwitchForward' -benchtime=1x -benchmem ./internal/net
# Observability smoke: run a short traced scenario and validate that
# the Chrome trace and the metrics JSON both parse.
obsdir=$(mktemp -d)
trap 'rm -rf "$obsdir"' EXIT
go run ./cmd/idiosim -scenario scenarios/mixed_nfs.json \
    -trace "$obsdir/trace.json" -trace-sample 16 \
    -json "$obsdir/results.json" > /dev/null
go run ./cmd/obscheck "$obsdir/trace.json" "$obsdir/results.json"
# Fabric smoke: the end-to-end RPC sweep must run, and its table must
# be byte-identical between serial and parallel cell execution.
go run ./cmd/idiosim -exp rpc -quick -j 2 > "$obsdir/rpc.txt"
go run ./cmd/idiosim -exp rpc -quick -j 1 | cmp - "$obsdir/rpc.txt"
# Sharded smoke: the same scenario partitioned into 4 event domains
# must produce byte-identical stdout and stats to the single-domain
# run — the tentpole determinism guarantee, checked end to end.
go run ./cmd/idiosim -scenario scenarios/rpc_closed_loop.json \
    -stats "$obsdir/rpc1.stats" > "$obsdir/rpc1.out"
go run ./cmd/idiosim -scenario scenarios/rpc_closed_loop.json -shards 4 \
    -stats "$obsdir/rpc4.stats" > "$obsdir/rpc4.out"
cmp "$obsdir/rpc1.out" "$obsdir/rpc4.out"
cmp "$obsdir/rpc1.stats" "$obsdir/rpc4.stats"
# QoS smoke: the class-isolation comparison must run with byte-identical
# tables for serial and parallel cells, and the mixed-class scenario
# must stay byte-identical between single-domain and sharded runs —
# per-class histogram merging is order-independent by construction.
go run ./cmd/idiosim -exp qos -quick -j 2 > "$obsdir/qos.txt"
go run ./cmd/idiosim -exp qos -quick -j 1 | cmp - "$obsdir/qos.txt"
go run ./cmd/idiosim -scenario scenarios/qos_mix.json \
    -stats "$obsdir/qos1.stats" > "$obsdir/qos1.out"
go run ./cmd/idiosim -scenario scenarios/qos_mix.json -shards 4 \
    -stats "$obsdir/qos4.stats" > "$obsdir/qos4.out"
cmp "$obsdir/qos1.out" "$obsdir/qos4.out"
cmp "$obsdir/qos1.stats" "$obsdir/qos4.stats"
# Chaos smoke: the scripted fault timeline must run under both serial
# and parallel cell execution with byte-identical tables, and the
# chaos scenario's drained run must hold the pool-leak gate: a leak
# surfaces as the "pkt pool: outstanding=" line, absent when healthy.
go run ./cmd/idiosim -exp chaos -quick -j 2 > "$obsdir/chaos.txt"
go run ./cmd/idiosim -exp chaos -quick -j 1 | cmp - "$obsdir/chaos.txt"
go run ./cmd/idiosim -scenario scenarios/chaos_recovery.json > "$obsdir/chaos_scenario.txt"
if grep -q "pkt pool: outstanding=" "$obsdir/chaos_scenario.txt"; then
    echo "chaos scenario leaked packets" >&2
    exit 1
fi
# Churn smoke: the million-flow sweep must run with byte-identical
# tables for serial and parallel cells, and the churn scenario — whose
# per-flow state lives in the compact flow table with every deadline on
# the hashed timer wheel — must stay byte-identical between
# single-domain and sharded runs, stats dump included.
go run ./cmd/idiosim -exp churn -quick -j 2 > "$obsdir/churn.txt"
go run ./cmd/idiosim -exp churn -quick -j 1 | cmp - "$obsdir/churn.txt"
go run ./cmd/idiosim -scenario scenarios/churn_flows.json \
    -stats "$obsdir/churn1.stats" > "$obsdir/churn1.out"
go run ./cmd/idiosim -scenario scenarios/churn_flows.json -shards 4 \
    -stats "$obsdir/churn4.stats" > "$obsdir/churn4.out"
cmp "$obsdir/churn1.out" "$obsdir/churn4.out"
cmp "$obsdir/churn1.stats" "$obsdir/churn4.stats"
# Pool-leak gate after the chaos smokes: the lossy-fabric regression
# test asserts PktPool.Outstanding == 0 with every resilience path hit.
go test -run 'TestLossyFabricNoPoolLeak|TestClusterAllocsPerRequest' -count=1 .
# Perf gate, part 2: compare quick lifecycle runs — the packet loop and
# the million-flow churn loop — against the committed baseline;
# benchjson prints a WARNING for every >10% ns/pkt (or ns/req)
# regression. Advisory, not failing — wall-clock numbers on shared
# machines are too noisy for a hard gate, but the warning lands in the
# check output where a reviewer will see it.
if [ -f BENCH_sim.json ]; then
    go test -run '^$' -bench 'BenchmarkPacketLifecycle|BenchmarkMillionFlowSteadyState' -benchmem -benchtime=3x . > "$obsdir/lifecycle.txt"
    go run ./cmd/benchjson -baseline BENCH_sim.json -o "$obsdir/lifecycle.json" "$obsdir/lifecycle.txt"
fi
